// Package binio provides the little-endian wire primitives shared by
// every on-disk encoder and decoder of the persistence subsystem: a
// Writer that accumulates a running CRC64 alongside the bytes it emits,
// and a bounded Reader over an in-memory buffer whose every allocation
// is guarded by the bytes actually remaining, so a decoder fed
// truncated or bit-flipped input returns an error instead of panicking
// or allocating unbounded memory.
package binio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"math"
)

// CRCTable is the CRC64 polynomial table used by every persisted
// artifact (ECMA, the same polynomial as xz and RocksDB's crc64).
var CRCTable = crc64.MakeTable(crc64.ECMA)

// ErrCorrupt is the sentinel wrapped by every decode failure, so
// callers can distinguish corruption from I/O errors with errors.Is.
var ErrCorrupt = errors.New("corrupt data")

// Corruptf builds an ErrCorrupt-wrapped error.
func Corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
}

// Writer emits little-endian primitives to an underlying io.Writer,
// tracking a running CRC64 of everything written and holding the first
// error (sticky), so encode paths can write unconditionally and check
// once at the end.
type Writer struct {
	w   io.Writer
	crc uint64
	n   int64
	err error
	buf [8]byte
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	if _, err := w.w.Write(p); err != nil {
		w.err = err
		return
	}
	w.crc = crc64.Update(w.crc, CRCTable, p)
	w.n += int64(len(p))
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) {
	w.buf[0] = v
	w.write(w.buf[:1])
}

// U32 writes a little-endian uint32.
func (w *Writer) U32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.write(w.buf[:4])
}

// U64 writes a little-endian uint64.
func (w *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:8], v)
	w.write(w.buf[:8])
}

// I64 writes a little-endian int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 writes an IEEE-754 float64, little-endian.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bytes writes raw bytes (no length prefix).
func (w *Writer) Bytes(p []byte) { w.write(p) }

// Str writes a uint32 length prefix followed by the string bytes.
func (w *Writer) Str(s string) {
	w.U32(uint32(len(s)))
	w.write([]byte(s))
}

// Sum64 returns the CRC64 of everything written so far.
func (w *Writer) Sum64() uint64 { return w.crc }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int64 { return w.n }

// Err returns the first underlying write error, or nil.
func (w *Writer) Err() error { return w.err }

// Reader consumes little-endian primitives from an in-memory buffer.
// Every accessor returns the zero value once the reader has errored
// (truncation or a failed guard), and Err reports the first failure.
// Decoders must size allocations through Count, which refuses any
// element count whose minimum encoding exceeds the remaining bytes —
// the guard that turns a hostile 4-byte "length" into an error instead
// of a multi-gigabyte allocation.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader wraps buf.
func NewReader(buf []byte) *Reader { return &Reader{b: buf} }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b)-r.off < n {
		r.err = Corruptf("truncated: need %d bytes, %d remain", n, len(r.b)-r.off)
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads an IEEE-754 float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// FiniteF64 reads a float64 and errors on NaN or infinity — persisted
// model parameters are always finite, so a non-finite value is
// corruption, and rejecting it here keeps decoded indexes out of
// undefined float-to-int conversions.
func (r *Reader) FiniteF64() float64 {
	v := r.F64()
	if r.err == nil && (math.IsNaN(v) || math.IsInf(v, 0)) {
		r.err = Corruptf("non-finite float")
		return 0
	}
	return v
}

// Bytes reads exactly n raw bytes (a view into the buffer, not a copy).
func (r *Reader) Bytes(n int) []byte { return r.take(n) }

// Str reads a uint32-length-prefixed string, refusing lengths beyond
// the remaining bytes (so a corrupt prefix cannot trigger a huge
// allocation) or beyond maxLen.
func (r *Reader) Str(maxLen int) string {
	n := int(r.U32())
	if r.err != nil {
		return ""
	}
	if n > maxLen {
		r.err = Corruptf("string length %d exceeds limit %d", n, maxLen)
		return ""
	}
	p := r.take(n)
	if p == nil {
		return ""
	}
	return string(p)
}

// Count reads a uint32 element count and validates that count*elemSize
// bytes could still follow in the buffer. It is the mandatory gate in
// front of every count-driven allocation.
func (r *Reader) Count(elemSize int) int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if n < 0 || n > r.Remaining()/elemSize {
		r.err = Corruptf("count %d exceeds %d remaining bytes (elem %dB)", n, r.Remaining(), elemSize)
		return 0
	}
	return n
}

// Remaining reports the unconsumed byte count.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// Offset reports the bytes consumed so far.
func (r *Reader) Offset() int { return r.off }

// CRCSoFar returns the CRC64 of every byte consumed so far.
func (r *Reader) CRCSoFar() uint64 {
	return crc64.Checksum(r.b[:r.off], CRCTable)
}

// Fail records err (if the reader has not already failed).
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Err returns the first decode failure, or nil.
func (r *Reader) Err() error { return r.err }
