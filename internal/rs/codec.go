package rs

// Binary codec for built RadixSpline indexes: spline points, radix
// table and verified margins are serialized so Decode reconstructs a
// ready index without re-fitting the spline. Little-endian via binio;
// framing and checksums live in package persist.

import (
	"repro/internal/binio"
)

const pointWireBytes = 8 + 4

// Encode writes the built index to w.
func (idx *Index) Encode(w *binio.Writer) error {
	w.U32(uint32(idx.cfg.SplineErr))
	w.U32(uint32(idx.cfg.RadixBits))
	w.U64(uint64(idx.n))
	w.U64(idx.minKey)
	w.U32(uint32(idx.shift))
	w.U32(uint32(idx.errLo))
	w.U32(uint32(idx.errHi))
	w.U32(uint32(len(idx.points)))
	for _, p := range idx.points {
		w.U64(p.Key)
		w.U32(uint32(p.Pos))
	}
	w.U32(uint32(len(idx.radix)))
	for _, v := range idx.radix {
		w.U32(uint32(v))
	}
	return w.Err()
}

// Decode reconstructs a built index from r. The radix table's entries
// are offsets into the point array and are fully re-validated (bounds
// and monotonicity) — segmentFor indexes points through them, so a
// corrupt table would otherwise turn into an out-of-range access.
func Decode(r *binio.Reader) (*Index, error) {
	var cfg Config
	cfg.SplineErr = int(r.U32())
	cfg.RadixBits = int(r.U32())
	n := r.U64()
	minKey := r.U64()
	shift := r.U32()
	errLo := int(r.U32())
	errHi := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	const maxN = 1 << 48
	if n == 0 || n > maxN {
		return nil, binio.Corruptf("rs: implausible key count %d", n)
	}
	if cfg.RadixBits < 1 || cfg.RadixBits > 28 || cfg.SplineErr < 1 {
		return nil, binio.Corruptf("rs: config eps=%d r=%d out of range", cfg.SplineErr, cfg.RadixBits)
	}
	if shift > 63 {
		return nil, binio.Corruptf("rs: shift %d", shift)
	}
	if errLo < 0 || errHi < 0 {
		return nil, binio.Corruptf("rs: negative margins")
	}
	nPoints := r.Count(pointWireBytes)
	if err := r.Err(); err != nil {
		return nil, err
	}
	if nPoints < 1 {
		return nil, binio.Corruptf("rs: no spline points")
	}
	idx := &Index{cfg: cfg, n: int(n), minKey: minKey, shift: uint(shift), errLo: errLo, errHi: errHi}
	idx.points = make([]Point, nPoints)
	for i := range idx.points {
		idx.points[i].Key = r.U64()
		idx.points[i].Pos = int32(r.U32())
	}
	nRadix := r.Count(4)
	if err := r.Err(); err != nil {
		return nil, err
	}
	if nRadix != 1<<cfg.RadixBits+1 {
		return nil, binio.Corruptf("rs: radix table has %d entries, want %d", nRadix, 1<<cfg.RadixBits+1)
	}
	idx.radix = make([]int32, nRadix)
	for i := range idx.radix {
		idx.radix[i] = int32(r.U32())
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	prev := int32(0)
	for i, v := range idx.radix {
		if v < prev || int(v) > nPoints {
			return nil, binio.Corruptf("rs: radix entry %d = %d invalid (prev %d, points %d)", i, v, prev, nPoints)
		}
		prev = v
	}
	return idx, nil
}
