package indextest

import (
	"errors"
	"testing"

	"repro/internal/core"
)

// fullIndex is the trivial always-valid index: every lookup gets the
// full bound.
type fullIndex struct{ n int }

func (f fullIndex) Lookup(core.Key) core.Bound { return core.FullBound(f.n) }
func (f fullIndex) SizeBytes() int             { return 0 }
func (f fullIndex) Name() string               { return "full" }

type fullBuilder struct{ fail bool }

func (b fullBuilder) Build(keys []core.Key) (core.Index, error) {
	if b.fail {
		return nil, errors.New("forced build failure")
	}
	return fullIndex{n: len(keys)}, nil
}
func (fullBuilder) Name() string { return "full" }

// brokenIndex returns a bound that misses the key's lower bound.
type brokenIndex struct{ n int }

func (b brokenIndex) Lookup(core.Key) core.Bound { return core.Bound{Lo: b.n, Hi: b.n} }
func (b brokenIndex) SizeBytes() int             { return 0 }
func (b brokenIndex) Name() string               { return "broken" }

func TestProbesForCoverage(t *testing.T) {
	keys := []core.Key{5, 9, 9, 20}
	probes := ProbesFor(keys)
	want := map[core.Key]bool{
		0: false, 1: false, 4: false, 5: false, 6: false,
		8: false, 9: false, 10: false, 19: false, 20: false, 21: false,
		^core.Key(0): false, ^core.Key(0) - 1: false,
	}
	for _, p := range probes {
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("probe set missing %d", p)
		}
	}
}

func TestCheckBuilderAcceptsValidIndex(t *testing.T) {
	keys := []core.Key{1, 3, 3, 7, 100, 100, 100, 4096}
	idx := CheckBuilder(t, fullBuilder{}, keys)
	if idx == nil || idx.Name() != "full" {
		t.Fatal("CheckBuilder did not return the built index")
	}
	CheckValidity(t, idx, keys, ProbesFor(keys))
}

// TestHarnessRejectsInvalidBound verifies the harness's whole job —
// catching an index whose bound misses the lower bound. CheckValidity
// fails the test it is handed, so the broken index runs inside a
// sandboxed test runner whose outcome is inspected instead of
// propagated.
func TestHarnessRejectsInvalidBound(t *testing.T) {
	keys := []core.Key{1, 2, 3}
	ok := testing.RunTests(
		func(pat, str string) (bool, error) { return true, nil },
		[]testing.InternalTest{{
			Name: "brokenIndexProbe",
			F: func(st *testing.T) {
				CheckValidity(st, brokenIndex{n: len(keys)}, keys, []core.Key{1})
			},
		}})
	if ok {
		t.Fatal("CheckValidity accepted an invalid bound")
	}
	// And the probe it runs must be the one ValidBound rejects.
	if core.ValidBound(keys, 1, brokenIndex{n: len(keys)}.Lookup(1)) {
		t.Fatal("broken bound unexpectedly valid")
	}
}
