// Package report is the typed result model of the benchmark harness:
// every experiment produces Tables — rows of string dimensions (which
// structure, which dataset, which workload) and numeric metrics with
// units — instead of printing prose. Sinks render the same tables as
// aligned human-readable text, CSV, or JSON/JSONL with run metadata,
// so a run is consumable by regression tracking, Pareto re-plotting,
// and CI perf gates as well as by eyes. The model mirrors how
// internal/registry made index families self-describing: the schema
// travels with the data, and downstream tools never parse prose.
package report

import (
	"fmt"
	"strconv"
)

// Kind classifies a metric column. Values are stored as float64
// either way (counts stay exact up to 2^53); Kind controls rendering:
// Int metrics print without a fractional part.
type Kind string

const (
	Float Kind = "float"
	Int   Kind = "int"
)

// Dim is one string dimension column: a categorical axis of the
// experiment (family, config label, dataset, workload, thread count).
type Dim struct {
	Name string `json:"name"`
}

// Metric is one numeric column. Name is the display header (it may
// embed the unit for humans, e.g. "size(MB)"); Unit is the
// machine-readable unit; Prec is the decimal precision used when a
// Float metric is rendered as text or CSV.
type Metric struct {
	Name string `json:"name"`
	Unit string `json:"unit,omitempty"`
	Kind Kind   `json:"kind"`
	Prec int    `json:"prec,omitempty"`
}

// Schema declares a table's columns: dimensions first, then metrics.
type Schema struct {
	Dims    []Dim    `json:"dims"`
	Metrics []Metric `json:"metrics"`
}

// Row is one observation: len(Dims) == len(Schema.Dims) and
// len(Metrics) == len(Schema.Metrics), positionally matched.
type Row struct {
	Dims    []string  `json:"dims"`
	Metrics []float64 `json:"metrics"`
}

// Table is one result table of one experiment. An experiment may
// return several (e.g. a sweep plus a baseline section).
type Table struct {
	// Experiment is the catalog name of the experiment that produced
	// the table (e.g. "fig7").
	Experiment string `json:"experiment"`
	// Title is the human heading, e.g. the paper figure caption.
	Title  string   `json:"title,omitempty"`
	Schema Schema   `json:"schema"`
	Rows   []Row    `json:"rows"`
	// Notes are free-text footnotes rendered after the rows.
	Notes []string `json:"notes,omitempty"`
}

// New starts a table. Declare columns with Dims/Float/Int before
// appending rows.
func New(experiment, title string) *Table {
	return &Table{Experiment: experiment, Title: title}
}

// Dims declares the dimension columns, in order.
func (t *Table) Dims(names ...string) *Table {
	for _, n := range names {
		t.Schema.Dims = append(t.Schema.Dims, Dim{Name: n})
	}
	return t
}

// Float declares a float metric column with a unit and a text
// rendering precision.
func (t *Table) Float(name, unit string, prec int) *Table {
	t.Schema.Metrics = append(t.Schema.Metrics, Metric{Name: name, Unit: unit, Kind: Float, Prec: prec})
	return t
}

// Int declares an integer metric column.
func (t *Table) Int(name, unit string) *Table {
	t.Schema.Metrics = append(t.Schema.Metrics, Metric{Name: name, Unit: unit, Kind: Int})
	return t
}

// Row appends one observation. Arity must match the declared schema;
// a mismatch is a programming error in the experiment and panics.
func (t *Table) Row(dims []string, metrics ...float64) *Table {
	if len(dims) != len(t.Schema.Dims) || len(metrics) != len(t.Schema.Metrics) {
		panic(fmt.Sprintf("report: %s: row arity %d dims/%d metrics does not match schema %d/%d",
			t.Experiment, len(dims), len(metrics), len(t.Schema.Dims), len(t.Schema.Metrics)))
	}
	t.Rows = append(t.Rows, Row{Dims: dims, Metrics: append([]float64(nil), metrics...)})
	return t
}

// Notef appends a formatted footnote.
func (t *Table) Notef(format string, args ...any) *Table {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
	return t
}

// Validate checks the table's internal consistency: a named
// experiment, valid metric kinds, and schema-matching row arity.
// Decoded (untrusted) tables must pass it before use.
func (t *Table) Validate() error {
	if t.Experiment == "" {
		return fmt.Errorf("report: table with empty experiment name")
	}
	for _, m := range t.Schema.Metrics {
		if m.Kind != Float && m.Kind != Int {
			return fmt.Errorf("report: %s: metric %q has unknown kind %q", t.Experiment, m.Name, m.Kind)
		}
	}
	for i, r := range t.Rows {
		if len(r.Dims) != len(t.Schema.Dims) || len(r.Metrics) != len(t.Schema.Metrics) {
			return fmt.Errorf("report: %s: row %d arity %d dims/%d metrics does not match schema %d/%d",
				t.Experiment, i, len(r.Dims), len(r.Metrics), len(t.Schema.Dims), len(t.Schema.Metrics))
		}
	}
	return nil
}

// formatMetric renders one metric value per its column's kind.
func formatMetric(m Metric, v float64) string {
	if m.Kind == Int {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', m.Prec, 64)
}
