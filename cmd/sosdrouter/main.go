// Command sosdrouter fronts a replicated sosdserve topology with the
// range-aware scatter/gather router: reads fan out across the replicas
// by key range, writes go to the primary, and when the primary stops
// answering the router promotes the most-caught-up follower and keeps
// serving. Point it at one primary and any number of followers started
// with `sosdserve -repl` / `sosdserve -follow` (the -addrs list names
// their serving ports, not the replication port).
//
// Usage:
//
//	sosdrouter -addrs host:port,host:port,... [-primary i]
//	           [-check d] [-failafter n] [-report d]
//	           [-lookups m] [-dataset name] [-n keys] [-seed s]
//	           [-workers w]
//
// Without -lookups the router idles as a monitor, printing a
// lag-and-stats line every -report interval until SIGINT. With
// -lookups it additionally drives that many closed-loop point reads
// through the topology (the dataset flags must match the primary's) and
// prints goodput and the latency tail before exiting.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/dataset"
	"repro/internal/load"
	"repro/internal/repl"
)

func main() {
	addrsFlag := flag.String("addrs", "", "comma-separated serving addresses: primary plus followers")
	primary := flag.Int("primary", 0, "index of the primary in -addrs")
	check := flag.Duration("check", repl.DefaultCheckEvery, "health-check interval")
	failAfter := flag.Int("failafter", repl.DefaultFailAfter, "consecutive failed checks before failover")
	report := flag.Duration("report", 2*time.Second, "monitor report interval on stderr")
	lookups := flag.Int("lookups", 0, "closed-loop point reads to drive through the router (0 = monitor only)")
	dsName := flag.String("dataset", "amzn", "dataset the primary was started with")
	n := flag.Int("n", 200_000, "dataset size the primary was started with")
	seed := flag.Uint64("seed", bench.DefaultSeed, "dataset seed the primary was started with")
	workers := flag.Int("workers", 64, "closed-loop worker count for -lookups")
	flag.Parse()
	if flag.NArg() != 0 || *addrsFlag == "" {
		flag.Usage()
		os.Exit(2)
	}

	var addrs []string
	for _, a := range strings.Split(*addrsFlag, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if *primary < 0 || *primary >= len(addrs) {
		fatal(fmt.Errorf("-primary %d out of range for %d addresses", *primary, len(addrs)))
	}

	r, err := repl.NewRouter(addrs, *primary, repl.RouterConfig{
		CheckEvery: *check, FailAfter: *failAfter,
		OnFailover: func(addr string) {
			fmt.Fprintf(os.Stderr, "failover: promoted %s\n", addr)
		},
	})
	if err != nil {
		fatal(err)
	}
	defer r.Close()
	fmt.Fprintf(os.Stderr, "sosdrouter up: %d replicas, primary %s, check %v x%d\n",
		len(addrs), r.PrimaryAddr(), *check, *failAfter)

	if *lookups > 0 {
		fmt.Fprintf(os.Stderr, "generating %s, %d keys (seed %d)...\n", *dsName, *n, *seed)
		keys, err := dataset.Generate(dataset.Name(*dsName), *n, *seed)
		if err != nil {
			fatal(err)
		}
		stream := load.MixedOps(keys, *lookups, 1, 0, *seed)
		res := load.RunClosed(r, stream, load.Config{Workers: *workers})
		q := res.Hist.Summary()
		fmt.Fprintf(os.Stderr,
			"served %d, shed %d, errors %d, goodput %.1f kops/s, p50 %.1fµs p99 %.1fµs p99.9 %.1fµs\n",
			res.Ops, res.Sheds, res.Errors, res.Throughput/1e3,
			float64(q.P50)/1e3, float64(q.P99)/1e3, float64(q.P999)/1e3)
		printStats(r)
		return
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(*report)
	defer tick.Stop()
	for {
		select {
		case <-sig:
			printStats(r)
			return
		case <-tick.C:
			printStats(r)
		}
	}
}

// printStats renders one monitor line: router counters plus per-node
// lag, sorted by address so the output is stable.
func printStats(r *repl.Router) {
	s := r.Stats()
	lag := r.Lag()
	nodes := make([]string, 0, len(lag))
	for a := range lag {
		nodes = append(nodes, a)
	}
	sort.Strings(nodes)
	var b strings.Builder
	for _, a := range nodes {
		fmt.Fprintf(&b, " %s=%d", a, lag[a])
	}
	fmt.Fprintf(os.Stderr, "router primary=%s served=%d shed=%d retries=%d failovers=%d lag(ops):%s\n",
		r.PrimaryAddr(), s.Served, s.Shed, s.Retries, s.Failovers, b.String())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sosdrouter: %v\n", err)
	os.Exit(1)
}
