package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// A nil registry hands out nil handles; every method must no-op.
	var r *Registry
	c := r.Counter("x_total")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	g := r.Gauge("x")
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	r.CounterFunc("y_total", func() float64 { return 1 })
	r.GaugeFunc("y", func() float64 { return 1 })
	h := r.Histogram("z_ns")
	h.Observe(100)
	if h.Snapshot() != nil {
		t.Fatal("nil histogram has a snapshot")
	}
	if vars := r.Vars(); vars != nil {
		t.Fatalf("nil registry has vars: %v", vars)
	}
	tr := NewTracer(r, 1)
	if tr != nil {
		t.Fatal("tracer over nil registry must be nil")
	}
	if sp := tr.Sample(); sp != nil {
		t.Fatal("nil tracer sampled")
	}
	var sp *Span
	sp.Mark(PhaseQueueWait) // must not panic
	sp.Observe(PhaseMerge, time.Millisecond)
	var j *Journal
	j.Append(Event{Kind: "flush"})
	if j.Total() != 0 || j.Events() != nil || j.Count("flush") != 0 {
		t.Fatal("nil journal retained an event")
	}
}

func TestRegistryVarsAndValue(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a_total")
	c.Add(7)
	g := r.Gauge("b", Label{"shard", "0"})
	g.Set(-2)
	r.GaugeFunc("c", func() float64 { return 1.5 })
	r.CounterFunc("d_total", func() float64 { return 9 })
	h := r.Histogram("e_ns")
	h.Observe(100)
	h.Observe(300)

	want := map[string]float64{
		"a_total":        7,
		`b{shard="0"}`:   -2,
		"c":              1.5,
		"d_total":        9,
		"e_ns_count":     2,
		"e_ns_sum":       400,
		"e_ns_max":       300,
	}
	for id, v := range want {
		got, ok := r.Value(id)
		if !ok {
			t.Fatalf("missing var %q", id)
		}
		if got != v {
			t.Fatalf("var %q = %v, want %v", id, got, v)
		}
	}
	vars := r.Vars()
	for i := 1; i < len(vars); i++ {
		if vars[i].Name <= vars[i-1].Name {
			t.Fatalf("vars not sorted: %q after %q", vars[i].Name, vars[i-1].Name)
		}
	}
	if _, ok := r.Value("nope"); ok {
		t.Fatal("Value found a series that was never registered")
	}
}

func TestRegistryPanicsOnBadRegistration(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("dup_total", Label{"shard", "1"})
	expectPanic("duplicate series", func() { r.Counter("dup_total", Label{"shard", "1"}) })
	expectPanic("type clash", func() { r.Gauge("dup_total", Label{"shard", "2"}) })
	expectPanic("bad name", func() { r.Counter("has space") })
	expectPanic("bad label key", func() { r.Counter("ok_total", Label{"0bad", "v"}) })
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", Label{"kind", "get"}).Add(3)
	r.Counter("req_total", Label{"kind", "put"}).Add(1)
	r.Gauge("depth").Set(5)
	h := r.Histogram("lat_ns")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 1000)
	}
	r.Counter("esc_total", Label{"v", "a\"b\\c\nd"}).Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE req_total counter\n",
		"req_total{kind=\"get\"} 3\n",
		"req_total{kind=\"put\"} 1\n",
		"# TYPE depth gauge\n",
		"depth 5\n",
		"# TYPE lat_ns summary\n",
		"lat_ns{quantile=\"0.5\"}",
		"lat_ns_sum ",
		"lat_ns_count 100\n",
		`esc_total{v="a\"b\\c\nd"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per family, families contiguous.
	if strings.Count(out, "# TYPE req_total ") != 1 {
		t.Fatalf("req_total declared more than once:\n%s", out)
	}
}

func TestTracerSampling(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r, 4)
	sampled := 0
	for i := 0; i < 64; i++ {
		if sp := tr.Sample(); sp != nil {
			sampled++
			sp.Mark(PhaseShardRoute)
			sp.Mark(PhaseRunProbe)
			sp.Observe(PhaseMerge, 2*time.Microsecond)
		}
	}
	if sampled != 16 {
		t.Fatalf("sampled %d of 64 at stride 4, want 16", sampled)
	}
	if v, _ := r.Value("sosd_trace_sampled_total"); v != 16 {
		t.Fatalf("sampled counter %v, want 16", v)
	}
	if v, _ := r.Value(`sosd_trace_phase_ns{phase="run_probe"}_count`); v != 16 {
		t.Fatalf("run_probe count %v, want 16", v)
	}
	if v, _ := r.Value(`sosd_trace_phase_ns{phase="merge"}_count`); v != 16 {
		t.Fatalf("merge count %v, want 16", v)
	}
	// Stride rounds up to a power of two.
	tr3 := NewTracer(NewRegistry(), 3)
	if tr3.mask != 3 {
		t.Fatalf("stride 3 rounded to mask %d, want 3 (every 4)", tr3.mask)
	}
}

func TestJournalRing(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		kind := "flush"
		if i%3 == 0 {
			kind = "minor"
		}
		j.Append(Event{Shard: i, Kind: kind})
	}
	evs := j.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	// Oldest-first, the most recent 4 appends (shards 6..9).
	for k, e := range evs {
		if e.Shard != 6+k {
			t.Fatalf("event %d has shard %d, want %d", k, e.Shard, 6+k)
		}
		if e.Seq != uint64(7+k) {
			t.Fatalf("event %d has seq %d, want %d", k, e.Seq, 7+k)
		}
		if e.Time.IsZero() {
			t.Fatal("journal did not stamp event time")
		}
	}
	if j.Total() != 10 || j.Evicted() != 6 {
		t.Fatalf("total=%d evicted=%d, want 10/6", j.Total(), j.Evicted())
	}
	// Kind counts survive eviction.
	if j.Count("minor") != 4 || j.Count("flush") != 6 {
		t.Fatalf("kind counts minor=%d flush=%d, want 4/6", j.Count("minor"), j.Count("flush"))
	}
}

// TestConcurrentScrape hammers a registry with recorders while scraping
// Vars and the Prometheus text concurrently — the registry's scrape
// path must never race (run under -race in CI) and counters must land
// exactly.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total")
	h := r.Histogram("lat_ns")
	g := r.Gauge("depth")
	const workers, perWorker = 4, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = r.Vars()
			var b strings.Builder
			_ = r.WritePrometheus(&b)
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(int64(i))
				g.Add(1)
			}
		}()
	}
	// Wait for the recorders to land every sample, then stop the
	// scraper and join everything.
	for c.Value() != workers*perWorker {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if v, _ := r.Value("ops_total"); v != workers*perWorker {
		t.Fatalf("final counter %v, want %d", v, workers*perWorker)
	}
	if v, _ := r.Value("lat_ns_count"); v != workers*perWorker {
		t.Fatalf("final histogram count %v, want %d", v, workers*perWorker)
	}
	if v, _ := r.Value("depth"); v != workers*perWorker {
		t.Fatalf("final gauge %v, want %d", v, workers*perWorker)
	}
}
