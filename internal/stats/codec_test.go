package stats

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/binio"
)

func encodeHist(t *testing.T, h *Histogram) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := binio.NewWriter(&buf)
	h.EncodeTo(w)
	if w.Err() != nil {
		t.Fatal(w.Err())
	}
	return buf.Bytes()
}

// TestHistogramCodecRoundTrip checks that a decoded histogram reports
// identical counts, quantiles, mean, and max — and that it keeps
// working as a histogram (recording, merging) afterwards.
func TestHistogramCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := &Histogram{}
	for i := 0; i < 10_000; i++ {
		h.Record(rng.Int63n(1 << uint(10+rng.Intn(30))))
	}
	got, err := DecodeHistogram(binio.NewReader(encodeHist(t, h)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != h.Count() || got.Max() != h.Max() || got.Mean() != h.Mean() {
		t.Fatalf("summary drift: got n=%d max=%d mean=%f, want n=%d max=%d mean=%f",
			got.Count(), got.Max(), got.Mean(), h.Count(), h.Max(), h.Mean())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		if got.Quantile(q) != h.Quantile(q) {
			t.Fatalf("q%g: got %d, want %d", q, got.Quantile(q), h.Quantile(q))
		}
	}
	// The decoded histogram is live: merging it back doubles the count.
	got.Merge(h)
	if got.Count() != 2*h.Count() {
		t.Fatalf("decoded histogram not mergeable: %d", got.Count())
	}
}

func TestHistogramCodecEmpty(t *testing.T) {
	got, err := DecodeHistogram(binio.NewReader(encodeHist(t, &Histogram{})))
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != 0 || got.Max() != 0 {
		t.Fatalf("empty round-trip: n=%d max=%d", got.Count(), got.Max())
	}
}

// TestHistogramCodecCorrupt byte-flips and truncates an encoded
// histogram: every mutation must error or decode (CRC protection lives
// a layer up, in the frame), never panic.
func TestHistogramCodecCorrupt(t *testing.T) {
	h := &Histogram{}
	for i := int64(1); i < 2000; i += 7 {
		h.Record(i * i)
	}
	enc := encodeHist(t, h)
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeHistogram(binio.NewReader(enc[:i])); !errors.Is(err, binio.ErrCorrupt) {
			t.Fatalf("truncation at %d: got %v, want ErrCorrupt", i, err)
		}
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0xff
		_, _ = DecodeHistogram(binio.NewReader(mut)) // must not panic
	}
	// Targeted structural corruption: out-of-range bucket index.
	mut := append([]byte(nil), enc...)
	mut[5], mut[6], mut[7], mut[8] = 0xff, 0xff, 0xff, 0x7f
	if _, err := DecodeHistogram(binio.NewReader(mut)); !errors.Is(err, binio.ErrCorrupt) {
		t.Fatalf("wild bucket index: got %v, want ErrCorrupt", err)
	}
}

// TestHistogramCodecConcurrent encodes while writers are recording:
// the snapshot-based encode must produce a decodable histogram whose
// count matches what its buckets captured within documented slack.
func TestHistogramCodecConcurrent(t *testing.T) {
	h := &Histogram{}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
					h.Record(rng.Int63n(1 << 20))
				}
			}
		}(int64(w))
	}
	for i := 0; i < 50; i++ {
		if _, err := DecodeHistogram(binio.NewReader(encodeHist(t, h))); err != nil {
			t.Fatalf("mid-run encode %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}
