package main

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/bench"
)

// TestDocCommentMatchesCatalog guards the package doc comment's
// experiment list against catalog drift: every registered experiment
// must be named, and no stale name may linger. The list stays
// hand-formatted for godoc, but this check makes it effectively
// generated.
func TestDocCommentMatchesCatalog(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "main.go", nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	doc := f.Doc.Text()
	// The list is the paragraph starting "Experiments:"; it may wrap
	// over several lines and ends at the first blank line.
	i := strings.Index(doc, "Experiments:")
	if i < 0 {
		t.Fatal("doc comment has no \"Experiments:\" paragraph")
	}
	para := doc[i+len("Experiments:"):]
	if j := strings.Index(para, "\n\n"); j >= 0 {
		para = para[:j]
	}
	listed := map[string]bool{}
	for _, name := range strings.Fields(para) {
		listed[name] = true
	}

	var missing, known []string
	for _, exp := range bench.Experiments() {
		known = append(known, exp.Name)
		if !listed[exp.Name] {
			missing = append(missing, exp.Name)
		}
		delete(listed, exp.Name)
	}
	if len(missing) > 0 {
		t.Errorf("doc comment misses catalog experiments %v", missing)
	}
	for stale := range listed {
		t.Errorf("doc comment lists %q, which is not in the catalog (%v)", stale, known)
	}
}

func TestResolveAndSinks(t *testing.T) {
	exps, err := resolve([]string{"all"})
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != len(bench.Experiments()) {
		t.Errorf("all resolved to %d experiments, catalog has %d", len(exps), len(bench.Experiments()))
	}
	if _, err := resolve([]string{"nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	for _, f := range []string{"text", "csv", "json", "jsonl"} {
		if _, err := newSink(f, nil); err != nil {
			t.Errorf("format %s rejected: %v", f, err)
		}
	}
	if _, err := newSink("xml", nil); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestSplitNames(t *testing.T) {
	known := []string{"RMI", "PGM"}
	got, err := splitNames("RMI, PGM", known, "family")
	if err != nil || len(got) != 2 {
		t.Errorf("splitNames = %v, %v", got, err)
	}
	if _, err := splitNames("XYZ", known, "family"); err == nil {
		t.Error("unknown name accepted")
	}
	if got, err := splitNames("", known, "family"); got != nil || err != nil {
		t.Errorf("empty filter = %v, %v; want nil, nil", got, err)
	}
}
