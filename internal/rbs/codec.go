package rbs

// Binary codec for built radix-binary-search tables. Little-endian via
// binio; framing and checksums live in package persist.

import (
	"repro/internal/binio"
)

// Encode writes the built table to w.
func (idx *Index) Encode(w *binio.Writer) error {
	w.U32(uint32(idx.radixBits))
	w.U64(uint64(idx.n))
	w.U64(idx.minKey)
	w.U32(uint32(idx.shift))
	w.U32(uint32(len(idx.table)))
	for _, v := range idx.table {
		w.U32(uint32(v))
	}
	return w.Err()
}

// Decode reconstructs a built table from r, re-validating the offsets:
// Lookup turns two adjacent entries directly into a search bound, so
// entries must be non-decreasing and confined to [0, n].
func Decode(r *binio.Reader) (*Index, error) {
	radixBits := int(r.U32())
	n := r.U64()
	minKey := r.U64()
	shift := r.U32()
	if err := r.Err(); err != nil {
		return nil, err
	}
	const maxN = 1 << 48
	if n == 0 || n > maxN {
		return nil, binio.Corruptf("rbs: implausible key count %d", n)
	}
	if radixBits < 1 || radixBits > 28 {
		return nil, binio.Corruptf("rbs: radix bits %d out of range", radixBits)
	}
	if shift > 63 {
		return nil, binio.Corruptf("rbs: shift %d", shift)
	}
	size := r.Count(4)
	if err := r.Err(); err != nil {
		return nil, err
	}
	if size != 1<<radixBits+1 {
		return nil, binio.Corruptf("rbs: table has %d entries, want %d", size, 1<<radixBits+1)
	}
	idx := &Index{radixBits: radixBits, n: int(n), minKey: minKey, shift: uint(shift)}
	idx.table = make([]int32, size)
	for i := range idx.table {
		idx.table[i] = int32(r.U32())
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	prev := int32(0)
	for i, v := range idx.table {
		if v < prev || uint64(v) > n {
			return nil, binio.Corruptf("rbs: table entry %d = %d invalid (prev %d, n %d)", i, v, prev, n)
		}
		prev = v
	}
	return idx, nil
}
