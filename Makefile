GO ?= go

.PHONY: tier1 vet bench race serve

# tier1 is the verify recipe: everything must build and every test pass.
tier1:
	$(GO) build ./... && $(GO) test ./...

vet:
	$(GO) vet ./...

# bench runs the root benchmark subset exercising the serving layer.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkGetBatch|BenchmarkServeSharded|BenchmarkTable2' -benchtime 200000x .

# race runs the concurrency-sensitive packages under the race detector.
race:
	$(GO) test -race ./internal/serve/ ./internal/table/

# serve prints the serving-layer experiment at a quick scale.
serve:
	$(GO) run ./cmd/sosd -n 200000 -lookups 20000 serve
