package repl

import (
	"bytes"
	"errors"
	"fmt"
	stdnet "net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/net"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/serve"
)

// Follower defaults; see FollowerConfig.
const (
	DefaultSyncEvery   = 32
	DefaultRedialEvery = 50 * time.Millisecond
	dialTimeout        = time.Second
)

// FollowerConfig configures a replication follower.
type FollowerConfig struct {
	// Dir is the follower's replica directory: the shipped snapshot
	// lands here, the attached store journals here, and REPLSTATE holds
	// the durable stream position. Required.
	Dir string

	// PrimaryAddr is the primary's replication listener. Required.
	PrimaryAddr string

	// Store configures the attached read-only store (family, shards,
	// compaction policy). SyncWrites should stay off: the follower
	// batches durability behind SyncEvery.
	Store serve.Config

	// SyncEvery is the REPLSTATE cadence in applied wal-batches: after
	// this many, the store's WAL is synced and the position committed.
	// Lower is tighter crash recovery, higher is cheaper. 0 defaults to
	// DefaultSyncEvery.
	SyncEvery int

	// RedialEvery paces reconnect attempts to a dead primary. 0
	// defaults to DefaultRedialEvery.
	RedialEvery time.Duration

	// Metrics, when non-nil, receives the follower's apply counters.
	Metrics *obs.Registry
}

func (c FollowerConfig) withDefaults() FollowerConfig {
	if c.SyncEvery <= 0 {
		c.SyncEvery = DefaultSyncEvery
	}
	if c.RedialEvery <= 0 {
		c.RedialEvery = DefaultRedialEvery
	}
	return c
}

// Follower subscribes to a primary and maintains a read-only replica
// store: bootstrap from a shipped snapshot when its position is
// unknown, then apply the live stream, acking every batch on receipt
// (so applied <= acked <= streamed holds by construction) and
// committing its durable position only after its own WAL is synced.
// It survives being killed at any point — a restart resumes from
// REPLSTATE, and a primary that cannot serve that position re-ships a
// snapshot.
type Follower struct {
	cfg FollowerConfig

	mu      sync.Mutex
	st      *serve.Store // nil until bootstrapped or warm-opened
	epoch   uint64
	gen     uint64
	applied []uint64 // per-shard applied seq (may lead REPLSTATE)
	ready   chan struct{}
	readyOK bool

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	promoted atomic.Bool

	conMu sync.Mutex // current connection, severed by Stop/Promote
	nc    stdnet.Conn

	appliedOps atomic.Uint64
	ackedOps   atomic.Uint64
	lagOps     atomic.Uint64 // behind primary, from the last heartbeat
	resyncs    atomic.Uint64
	stateSyncs atomic.Uint64
}

// FollowerStats is a snapshot of the follower's apply accounting.
type FollowerStats struct {
	AppliedOps uint64 // ops folded into the store
	AckedOps   uint64 // ops acknowledged to the primary
	LagOps     uint64 // ops behind the primary at the last heartbeat
	Resyncs    uint64 // bootstraps this process ran
	StateSyncs uint64 // REPLSTATE commits
}

// StartFollower opens (or prepares) the replica directory and starts
// the subscription loop. A directory holding a committed snapshot is
// warm-opened immediately — the store serves stale reads while the
// stream catches up; a fresh directory serves nothing until the first
// bootstrap completes (WaitReady).
func StartFollower(cfg FollowerConfig) (*Follower, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" || cfg.PrimaryAddr == "" {
		return nil, errors.New("repl: follower needs Dir and PrimaryAddr")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	f := &Follower{cfg: cfg, ready: make(chan struct{}), stop: make(chan struct{})}
	f.registerMetrics(cfg.Metrics)

	// Warm start: a committed REPLSTATE names a position inside a
	// committed snapshot; open the store (its WAL replay may be ahead
	// of REPLSTATE — the primary re-streams that suffix, which replays
	// convergently). Any failure here falls back to a cold bootstrap.
	if state, err := ReadState(cfg.Dir); err == nil {
		if st, err := serve.Open(cfg.Dir, cfg.Store); err == nil {
			st.SetReadOnly(true)
			f.st = st
			f.epoch = state.Epoch
			f.gen = state.Gen
			f.applied = append([]uint64(nil), state.Seqs...)
			f.signalReady()
		}
	}

	f.wg.Add(1)
	go f.run()
	return f, nil
}

func (f *Follower) registerMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	cf := func(a *atomic.Uint64) func() float64 {
		return func() float64 { return float64(a.Load()) }
	}
	r.CounterFunc("sosd_repl_applied_ops_total", cf(&f.appliedOps))
	r.CounterFunc("sosd_repl_follower_acked_ops_total", cf(&f.ackedOps))
	r.CounterFunc("sosd_repl_follower_resyncs_total", cf(&f.resyncs))
	r.CounterFunc("sosd_repl_state_syncs_total", cf(&f.stateSyncs))
	r.GaugeFunc("sosd_repl_lag_ops", func() float64 { return float64(f.lagOps.Load()) })
}

func (f *Follower) signalReady() {
	if !f.readyOK {
		f.readyOK = true
		close(f.ready)
	}
}

// Store returns the replica store, or nil before the first bootstrap
// commits. The store stays valid until Stop.
func (f *Follower) Store() *serve.Store {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.st
}

// Stats snapshots the apply accounting.
func (f *Follower) Stats() FollowerStats {
	return FollowerStats{
		AppliedOps: f.appliedOps.Load(),
		AckedOps:   f.ackedOps.Load(),
		LagOps:     f.lagOps.Load(),
		Resyncs:    f.resyncs.Load(),
		StateSyncs: f.stateSyncs.Load(),
	}
}

// Applied snapshots the per-shard applied sequence vector.
func (f *Follower) Applied() []uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]uint64(nil), f.applied...)
}

// ReplStatHook adapts the follower to net.Config.ReplStat for its
// serving port: role flips to primary after promotion.
func (f *Follower) ReplStatHook() func() (uint8, uint64, uint64, []uint64) {
	return func() (uint8, uint64, uint64, []uint64) {
		f.mu.Lock()
		defer f.mu.Unlock()
		role := uint8(net.RoleFollower)
		if f.promoted.Load() {
			role = net.RolePrimary
		}
		return role, f.epoch, f.gen, append([]uint64(nil), f.applied...)
	}
}

// PromoteHook adapts Promote to net.Config.Promote.
func (f *Follower) PromoteHook() func() error { return func() error { return f.Promote() } }

// WaitReady blocks until the replica store exists (first bootstrap
// committed or warm-opened) or the timeout passes.
func (f *Follower) WaitReady(timeout time.Duration) error {
	select {
	case <-f.ready:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("repl: follower not ready after %v", timeout)
	}
}

// WaitCaughtUp blocks until the applied vector reaches want (the
// primary's Log.Seqs at some quiesced moment) or the timeout passes.
func (f *Follower) WaitCaughtUp(want []uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		f.mu.Lock()
		ok := f.st != nil && len(f.applied) == len(want)
		if ok {
			for i, q := range want {
				if f.applied[i] < q {
					ok = false
					break
				}
			}
		}
		f.mu.Unlock()
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("repl: not caught up to %v after %v (at %v)", want, timeout, f.Applied())
		}
		time.Sleep(time.Millisecond)
	}
}

// Promote ends the subscription and turns the replica writable: the
// stream is severed, the WAL synced, the read-only gate lifted. The
// store keeps serving throughout. Safe to call more than once; fails
// before the first bootstrap commits.
func (f *Follower) Promote() error {
	f.mu.Lock()
	st := f.st
	f.mu.Unlock()
	if st == nil {
		return errors.New("repl: cannot promote before bootstrap")
	}
	if f.promoted.Swap(true) {
		return nil
	}
	f.severConn()
	if err := st.SyncWAL(); err != nil {
		return err
	}
	st.SetReadOnly(false)
	return nil
}

// Promoted reports whether Promote has run.
func (f *Follower) Promoted() bool { return f.promoted.Load() }

// Stop ends the subscription loop gracefully: the final position is
// made durable (WAL sync + REPLSTATE) before the store closes. Not a
// crash simulation — use Kill for that.
func (f *Follower) Stop() {
	f.halt()
	f.mu.Lock()
	st := f.st
	f.st = nil
	f.mu.Unlock()
	if st != nil {
		_ = f.syncState(st)
		st.Close()
	}
}

// Kill simulates dying mid-work for recovery tests: the subscription
// stops and the store is closed WITHOUT a final WAL sync or REPLSTATE
// commit, so the durable position undercounts what was applied — the
// exact state a crash leaves. Restart with StartFollower on the same
// directory.
func (f *Follower) Kill() {
	f.halt()
	f.mu.Lock()
	st := f.st
	f.st = nil
	f.mu.Unlock()
	if st != nil {
		st.Close()
	}
}

func (f *Follower) halt() {
	f.stopOnce.Do(func() { close(f.stop) })
	f.severConn()
	f.wg.Wait()
}

func (f *Follower) severConn() {
	f.conMu.Lock()
	if f.nc != nil {
		_ = f.nc.Close()
	}
	f.conMu.Unlock()
}

func (f *Follower) stopping() bool {
	select {
	case <-f.stop:
		return true
	default:
		return f.promoted.Load()
	}
}

// run is the subscription loop: dial, subscribe from the current
// position, process the stream until the connection dies, repeat.
func (f *Follower) run() {
	defer f.wg.Done()
	for !f.stopping() {
		nc, err := stdnet.DialTimeout("tcp", f.cfg.PrimaryAddr, dialTimeout)
		if err != nil {
			select {
			case <-f.stop:
				return
			case <-time.After(f.cfg.RedialEvery):
			}
			continue
		}
		f.conMu.Lock()
		f.nc = nc
		f.conMu.Unlock()
		if f.stopping() {
			_ = nc.Close()
			return
		}
		f.session(nc)
		_ = nc.Close()
		if !f.stopping() {
			select {
			case <-f.stop:
				return
			case <-time.After(f.cfg.RedialEvery):
			}
		}
	}
}

// session runs one connection: subscribe, then the frame loop.
func (f *Follower) session(nc stdnet.Conn) {
	var wbuf bytes.Buffer
	f.mu.Lock()
	sub := &net.Msg{Type: net.MsgSubscribe, Epoch: f.epoch, Gen: f.gen,
		Seqs: append([]uint64(nil), f.applied...)}
	f.mu.Unlock()
	if err := net.WriteMsg(nc, &wbuf, sub); err != nil {
		return
	}

	var scratch []byte
	var boot *bootstrapRx
	sinceSync := 0
	for {
		m, sc, err := net.ReadMsg(nc, scratch)
		if err != nil {
			return
		}
		scratch = sc
		switch m.Type {
		case net.MsgResync:
			// A snapshot is coming (or the stream fell off the ring —
			// either way the local position is void). Drop the store;
			// the directory is overwritten file by file and re-committed
			// at the manifest rename.
			f.resyncs.Add(1)
			f.mu.Lock()
			st := f.st
			f.st = nil
			f.mu.Unlock()
			if st != nil {
				st.Close()
			}
			if boot != nil {
				boot.abort()
			}
			boot = &bootstrapRx{dir: f.cfg.Dir}
		case net.MsgSnapFile:
			if boot == nil {
				return // protocol violation: snapshot chunk outside a bootstrap
			}
			if err := boot.chunk(m); err != nil {
				boot.abort()
				return
			}
		case net.MsgSnapEnd:
			if boot == nil {
				return
			}
			if err := boot.commit(); err != nil {
				boot.abort()
				return
			}
			boot = nil
			st, err := serve.Open(f.cfg.Dir, f.cfg.Store)
			if err != nil {
				return
			}
			st.SetReadOnly(true)
			f.mu.Lock()
			f.st = st
			f.epoch = m.Epoch
			f.gen = m.Gen
			f.applied = append([]uint64(nil), m.Seqs...)
			f.signalReady()
			f.mu.Unlock()
			if err := WriteState(f.cfg.Dir, &State{Epoch: m.Epoch, Gen: m.Gen, Seqs: m.Seqs}); err != nil {
				return
			}
			f.stateSyncs.Add(1)
			if err := f.sendAck(nc, &wbuf); err != nil {
				return
			}
		case net.MsgWalBatch:
			f.mu.Lock()
			st := f.st
			okShard := st != nil && int(m.Shard) < len(f.applied)
			var have uint64
			if okShard {
				have = f.applied[m.Shard]
			}
			f.mu.Unlock()
			if !okShard || m.Seq > have+1 {
				return // no store yet, or a gap: resubscribe from REPLSTATE
			}
			ops := m.Ops
			if skip := have + 1 - m.Seq; skip > 0 {
				if skip >= uint64(len(ops)) {
					ops = nil // stale duplicate, already applied
				} else {
					ops = ops[skip:]
				}
			}
			// Ack on receipt, before the apply: acked may lead applied,
			// never trail it — applied <= acked <= streamed.
			f.ackedOps.Add(uint64(len(m.Ops)))
			f.mu.Lock()
			if end := m.Seq + uint64(len(m.Ops)) - 1; end > f.applied[m.Shard] {
				f.applied[m.Shard] = end
			}
			f.mu.Unlock()
			if err := f.sendAck(nc, &wbuf); err != nil {
				return
			}
			if len(ops) > 0 {
				if err := st.Apply(int(m.Shard), ops); err != nil {
					return
				}
				f.appliedOps.Add(uint64(len(ops)))
			}
			if sinceSync++; sinceSync >= f.cfg.SyncEvery {
				sinceSync = 0
				if err := f.syncState(st); err != nil {
					return
				}
			}
		case net.MsgHeartbeat:
			f.mu.Lock()
			var lag uint64
			if len(m.Seqs) == len(f.applied) {
				for i, q := range m.Seqs {
					if q > f.applied[i] {
						lag += q - f.applied[i]
					}
				}
			}
			f.mu.Unlock()
			f.lagOps.Store(lag)
		default:
			return
		}
	}
}

// sendAck reports the current applied vector back to the primary.
func (f *Follower) sendAck(nc stdnet.Conn, wbuf *bytes.Buffer) error {
	f.mu.Lock()
	seqs := append([]uint64(nil), f.applied...)
	f.mu.Unlock()
	return net.WriteMsg(nc, wbuf, &net.Msg{Type: net.MsgAck, Seqs: seqs})
}

// syncState makes the applied position durable: the store's WAL first
// (the ops themselves), REPLSTATE second (the claim). The order is the
// invariant — a position is never claimed before its ops are on disk.
func (f *Follower) syncState(st *serve.Store) error {
	if err := st.SyncWAL(); err != nil {
		return err
	}
	f.mu.Lock()
	state := &State{Epoch: f.epoch, Gen: f.gen, Seqs: append([]uint64(nil), f.applied...)}
	f.mu.Unlock()
	if err := WriteState(f.cfg.Dir, state); err != nil {
		return err
	}
	f.stateSyncs.Add(1)
	return nil
}

// bootstrapRx reassembles a shipped snapshot: data files land under
// their real names (harmless without a manifest), the manifest lands
// under a temp name and is renamed into place by commit — the same
// commit point the store's own persistence uses.
type bootstrapRx struct {
	dir      string
	cur      *os.File
	curName  string
	manifest string // temp path of the received manifest, "" until seen
}

func (b *bootstrapRx) abort() {
	if b.cur != nil {
		b.cur.Close()
		b.cur = nil
	}
	if b.manifest != "" {
		os.Remove(b.manifest)
		b.manifest = ""
	}
}

// chunk appends one MsgSnapFile frame to its file, opening on first
// chunk (offset 0) and closing+syncing on the last.
func (b *bootstrapRx) chunk(m *net.Msg) error {
	if !safeSnapName(m.Name) {
		return fmt.Errorf("repl: unsafe snapshot file name %q", m.Name)
	}
	if b.cur == nil {
		if m.Val != 0 {
			return fmt.Errorf("repl: snapshot chunk for %q starts at offset %d", m.Name, m.Val)
		}
		name := m.Name
		if name == persist.ManifestName {
			name = persist.ManifestName + ".shipped"
		}
		f, err := os.Create(filepath.Join(b.dir, name))
		if err != nil {
			return err
		}
		b.cur, b.curName = f, m.Name
		if m.Name == persist.ManifestName {
			b.manifest = f.Name()
		}
	} else if b.curName != m.Name {
		return fmt.Errorf("repl: interleaved snapshot files %q and %q", b.curName, m.Name)
	} else if off, _ := b.cur.Seek(0, 1); uint64(off) != m.Val {
		return fmt.Errorf("repl: %q chunk at offset %d, file at %d", m.Name, m.Val, off)
	}
	if _, err := b.cur.Write(m.Data); err != nil {
		return err
	}
	if m.Found { // last chunk
		if err := b.cur.Sync(); err != nil {
			return err
		}
		if err := b.cur.Close(); err != nil {
			return err
		}
		b.cur, b.curName = nil, ""
	}
	return nil
}

// commit renames the shipped manifest into place — the snapshot's
// atomic commit point, after which Open sees a complete generation.
func (b *bootstrapRx) commit() error {
	if b.cur != nil {
		return errors.New("repl: snapshot ended mid-file")
	}
	if b.manifest == "" {
		return errors.New("repl: snapshot ended without a manifest")
	}
	if err := os.Rename(b.manifest, filepath.Join(b.dir, persist.ManifestName)); err != nil {
		return err
	}
	b.manifest = ""
	return nil
}

// safeSnapName accepts only bare file names — no separators, no path
// tricks, bounded length — before any byte lands on the local disk.
func safeSnapName(name string) bool {
	if name == "" || len(name) > 255 || name == "." || name == ".." {
		return false
	}
	if strings.ContainsAny(name, "/\\") || strings.ContainsRune(name, 0) {
		return false
	}
	return name == filepath.Base(name)
}
