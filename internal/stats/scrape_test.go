package stats

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/binio"
)

// TestHistogramScrapeInvariants extends the concurrent property suite
// with the scraper's contract: while recorders run, every snapshot must
// (1) never lose counts relative to an earlier snapshot, (2) keep
// quantiles ordered and bounded by [0, Max], and (3) round-trip through
// the codec exactly — a snapshot is immutable, so unlike the live
// histogram its encode/decode must be byte-for-byte equivalent in every
// summary it reports. Run under -race in CI.
func TestHistogramScrapeInvariants(t *testing.T) {
	const (
		workers   = 4
		perWorker = 25_000
	)
	h := &Histogram{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			state := uint64(w)*0x9E3779B97F4A7C15 + 1
			for i := 0; i < perWorker; i++ {
				state ^= state << 13
				state ^= state >> 7
				state ^= state << 17
				h.Record(int64(state % (1 << 22)))
			}
		}(w)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	quantiles := []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1}
	var lastCount uint64
	scrape := func() {
		snap := h.Snapshot()
		// (1) counts are monotone across scrapes.
		if snap.Count() < lastCount {
			t.Fatalf("scrape lost counts: %d after %d", snap.Count(), lastCount)
		}
		lastCount = snap.Count()
		// (2) quantiles ordered and inside [0, Max].
		prev := int64(0)
		for _, q := range quantiles {
			v := snap.Quantile(q)
			if v < 0 || v > snap.Max() {
				t.Fatalf("q%g = %d outside [0, %d]", q, v, snap.Max())
			}
			if v < prev {
				t.Fatalf("quantiles regressed: q%g = %d below %d", q, v, prev)
			}
			prev = v
		}
		// (3) an immutable snapshot round-trips exactly.
		var buf bytes.Buffer
		w := binio.NewWriter(&buf)
		snap.EncodeTo(w)
		if w.Err() != nil {
			t.Fatal(w.Err())
		}
		dec, err := DecodeHistogram(binio.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if dec.Count() != snap.Count() || dec.Max() != snap.Max() || dec.Mean() != snap.Mean() {
			t.Fatalf("round-trip drift: n=%d/%d max=%d/%d",
				dec.Count(), snap.Count(), dec.Max(), snap.Max())
		}
		for _, q := range quantiles {
			if dec.Quantile(q) != snap.Quantile(q) {
				t.Fatalf("round-trip q%g: %d != %d", q, dec.Quantile(q), snap.Quantile(q))
			}
		}
	}

	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		scrape()
	}
	// Final scrape sees the exact total.
	if got := h.Snapshot().Count(); got != workers*perWorker {
		t.Fatalf("final count %d, want %d", got, workers*perWorker)
	}
}
