GO ?= go

.PHONY: tier1 vet bench race serve serve-write examples doccheck

# tier1 is the verify recipe: everything must build and every test pass.
tier1:
	$(GO) build ./... && $(GO) test ./...

vet:
	$(GO) vet ./...

# bench runs the root benchmark subset exercising the serving layer.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkGetBatch|BenchmarkServeSharded|BenchmarkServeMixed|BenchmarkTable2' -benchtime 200000x .

# race runs the concurrency-sensitive packages under the race detector.
race:
	$(GO) test -race ./internal/serve/ ./internal/table/

# serve prints the serving-layer experiment at a quick scale.
serve:
	$(GO) run ./cmd/sosd -n 200000 -lookups 20000 serve

# serve-write prints the mixed read/write experiment at a quick scale.
serve-write:
	$(GO) run ./cmd/sosd -n 200000 -lookups 20000 serve-write

# examples builds every walkthrough under examples/.
examples:
	$(GO) build ./examples/...

# doccheck fails when README.md does not mention every directory under
# internal/ — the doc-drift guard run in CI.
doccheck:
	@missing=0; \
	for d in internal/*/; do \
		p=$$(basename $$d); \
		grep -q "internal/$$p" README.md || { echo "README.md does not mention internal/$$p"; missing=1; }; \
	done; \
	exit $$missing
