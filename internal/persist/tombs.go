package persist

// Tombstone-bit serialization: the parallel tombstone array of an LSM
// tier run, packed eight bits per byte under the standard CRC64 frame.
// Runs without tombstones simply omit the artifact (RunMeta.Tombs
// empty), so the file always describes at least one set bit's worth of
// deletes.

import (
	"os"

	"repro/internal/binio"
)

var tombsMagic = []byte("sosdTMB1")

// EncodeTombs writes the tombstone bits of a run (tombs[i] == pair i
// is a delete marker) with the standard frame.
func EncodeTombs(w *binio.Writer, tombs []bool) error {
	w.Bytes(tombsMagic)
	w.U32(FormatVersion)
	w.U64(uint64(len(tombs)))
	var b byte
	for i, t := range tombs {
		if t {
			b |= 1 << (uint(i) & 7)
		}
		if i&7 == 7 {
			w.U8(b)
			b = 0
		}
	}
	if len(tombs)&7 != 0 {
		w.U8(b)
	}
	w.U64(w.Sum64())
	return w.Err()
}

// DecodeTombs parses and validates a tombstone image, returning the
// unpacked bit array. count must match the run's pair count; padding
// bits past count must be zero, so a tombstone file cannot smuggle
// undecoded state.
func DecodeTombs(data []byte, count int) ([]bool, error) {
	body, err := checkCRCFrame(data)
	if err != nil {
		return nil, err
	}
	r := binio.NewReader(body)
	if string(r.Bytes(len(tombsMagic))) != string(tombsMagic) {
		return nil, binio.Corruptf("persist: bad tombs magic")
	}
	if v := r.U32(); v != FormatVersion {
		return nil, binio.Corruptf("persist: tombs format version %d, want %d", v, FormatVersion)
	}
	n := r.U64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n != uint64(count) {
		return nil, binio.Corruptf("persist: tombs count %d, run has %d pairs", n, count)
	}
	packed := r.Bytes(int((n + 7) / 8))
	if err := r.Err(); err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, binio.Corruptf("persist: %d trailing bytes after tombs", r.Remaining())
	}
	tombs := make([]bool, count)
	for i := range tombs {
		tombs[i] = packed[i>>3]&(1<<(uint(i)&7)) != 0
	}
	if count&7 != 0 && len(packed) > 0 {
		if packed[len(packed)-1]>>uint(count&7) != 0 {
			return nil, binio.Corruptf("persist: tombs padding bits set")
		}
	}
	return tombs, nil
}

// WriteTombs atomically writes a run's tombstone bits to path.
func WriteTombs(path string, tombs []bool) error {
	return AtomicWrite(path, func(w *binio.Writer) error { return EncodeTombs(w, tombs) })
}

// ReadTombs loads and validates the tombstone file at path; count is
// the owning run's pair count.
func ReadTombs(path string, count int) ([]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeTombs(data, count)
}
