package binio

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFramedRoundTrip(t *testing.T) {
	bodies := [][]byte{
		{},
		{0x42},
		bytes.Repeat([]byte("frame"), 1000),
	}
	var buf bytes.Buffer
	for _, b := range bodies {
		if err := WriteFramed(&buf, b); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for _, want := range bodies {
		got, err := ReadFramed(&buf, scratch, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("body mismatch: got %d bytes, want %d", len(got), len(want))
		}
		scratch = got[:cap(got)]
	}
	if _, err := ReadFramed(&buf, scratch, 1<<20); err != io.EOF {
		t.Fatalf("exhausted stream: got %v, want io.EOF", err)
	}
}

func TestFramedOversizeRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFramed(&buf, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFramed(&buf, nil, 99); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversize frame: got %v, want ErrCorrupt", err)
	}
}

// TestFramedCorruption flips every byte of an encoded frame in turn:
// each flip must produce ErrCorrupt (or a valid-but-different body only
// if it somehow still checksums, which CRC64 makes effectively
// impossible at this size), never a panic.
func TestFramedCorruption(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("the quick brown fox jumps over the lazy dog")
	if err := WriteFramed(&buf, body); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	for i := range frame {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x40
		_, err := ReadFramed(bytes.NewReader(mut), nil, 1<<20)
		if err == nil {
			t.Fatalf("flip at byte %d went undetected", i)
		}
	}
	// Truncations: every proper prefix must error (io.EOF only at 0).
	for i := 0; i < len(frame); i++ {
		_, err := ReadFramed(bytes.NewReader(frame[:i]), nil, 1<<20)
		if i == 0 {
			if err != io.EOF {
				t.Fatalf("empty stream: got %v, want io.EOF", err)
			}
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: got %v, want ErrCorrupt", i, err)
		}
	}
}
