// Package serve implements the many-users serving scenario on top of
// the table layer: a Store range-partitions the keyspace across N
// shards, each an independent, atomically replaceable table.Table
// built from any registered index family, and answers batched lookups
// through a fixed goroutine pool.
//
// Concurrency model: reads (Get, GetBatch) are lock-free — they load
// each shard's current table through an atomic pointer — and may run
// from any number of goroutines. Writes are single-writer per shard:
// Replace serializes on a per-shard mutex, builds the new index off to
// the side, and publishes it with one pointer swap, so readers never
// block and never observe a half-built shard.
package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/search"
	"repro/internal/table"
)

// Config configures a Store.
type Config struct {
	// Shards is the number of range partitions; 0 defaults to
	// runtime.NumCPU(). Clamped to the number of distinct keys.
	Shards int

	// Family selects the registered index family used for every shard
	// (mid-sweep configuration); empty defaults to "PGM". Ignored when
	// BuilderFor is set.
	Family string

	// BuilderFor, when non-nil, supplies the index builder per shard,
	// allowing heterogeneous stores (e.g. a learned index on smooth
	// shards, a B-tree on adversarial ones).
	BuilderFor func(shard int, keys []core.Key) (core.Builder, error)

	// Search is the last-mile search function; nil defaults to binary.
	Search search.Fn

	// Workers is the goroutine-pool size serving batched lookups; 0
	// defaults to min(Shards, runtime.NumCPU()).
	Workers int
}

// Store is a sharded key→payload store. See the package comment for
// the concurrency model.
type Store struct {
	cfg        Config
	seps       []core.Key // seps[i] = first key owned by shard i
	shards     []atomic.Pointer[table.Table]
	writeMu    []sync.Mutex // per-shard single-writer locks
	builderFor func(shard int, keys []core.Key) (core.Builder, error)

	jobs      chan job
	workersWG sync.WaitGroup
	scratch   sync.Pool // *batchScratch
	closed    atomic.Bool
}

type job struct {
	t     *table.Table
	keys  []core.Key
	out   []uint64
	found *atomic.Int64
	wg    *sync.WaitGroup
}

type batchScratch struct {
	shard  []int32
	offs   []int32
	starts []int32
	gkeys  []core.Key
	gout   []uint64
	pos    []int32
}

// New builds a Store over sorted keys and payloads. The key array is
// split into contiguous, duplicate-respecting ranges of near-equal
// size; each range becomes one shard with its own index.
func New(keys []core.Key, payloads []uint64, cfg Config) (*Store, error) {
	if len(keys) == 0 {
		return nil, errors.New("serve: empty key set")
	}
	if len(keys) != len(payloads) {
		return nil, errors.New("serve: keys and payloads length mismatch")
	}
	if !core.IsSorted(keys) {
		return nil, errors.New("serve: keys not sorted")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.NumCPU()
	}
	if cfg.Shards > len(keys) {
		cfg.Shards = len(keys)
	}
	if cfg.Family == "" {
		cfg.Family = "PGM"
	}
	if cfg.Search == nil {
		cfg.Search = search.BinarySearch
	}
	if cfg.Workers <= 0 {
		cfg.Workers = cfg.Shards
		if ncpu := runtime.NumCPU(); cfg.Workers > ncpu {
			cfg.Workers = ncpu
		}
	}

	st := &Store{cfg: cfg, builderFor: cfg.BuilderFor}
	if st.builderFor == nil {
		family := cfg.Family
		if !registry.Has(family) {
			return nil, fmt.Errorf("serve: unknown index family %q", family)
		}
		st.builderFor = func(_ int, keys []core.Key) (core.Builder, error) {
			nb, ok := registry.Builder(family, keys)
			if !ok {
				return nil, fmt.Errorf("serve: empty sweep for family %q", family)
			}
			return nb.Builder, nil
		}
	}

	// Partition: shard i starts at the i-th near-equal cut, advanced
	// past any duplicate run so one key never straddles two shards.
	n := len(keys)
	starts := make([]int, 0, cfg.Shards)
	prev := -1
	for i := 0; i < cfg.Shards; i++ {
		s := i * n / cfg.Shards
		for s > 0 && s < n && keys[s] == keys[s-1] {
			s++
		}
		if s >= n || s <= prev {
			continue // duplicate-heavy data can exhaust distinct cuts
		}
		starts = append(starts, s)
		prev = s
	}
	nShards := len(starts)
	st.seps = make([]core.Key, nShards)
	st.shards = make([]atomic.Pointer[table.Table], nShards)
	st.writeMu = make([]sync.Mutex, nShards)

	// Build shard tables concurrently: builds are independent and the
	// learned families are CPU-bound.
	var wg sync.WaitGroup
	errs := make([]error, nShards)
	for i := 0; i < nShards; i++ {
		lo := starts[i]
		hi := n
		if i+1 < nShards {
			hi = starts[i+1]
		}
		st.seps[i] = keys[lo]
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			t, err := st.buildShard(i, keys[lo:hi], payloads[lo:hi])
			if err != nil {
				errs[i] = err
				return
			}
			st.shards[i].Store(t)
		}(i, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	st.scratch.New = func() any { return &batchScratch{} }
	st.jobs = make(chan job)
	for w := 0; w < cfg.Workers; w++ {
		st.workersWG.Add(1)
		go st.worker()
	}
	return st, nil
}

func (st *Store) buildShard(i int, keys []core.Key, payloads []uint64) (*table.Table, error) {
	b, err := st.builderFor(i, keys)
	if err != nil {
		return nil, err
	}
	t, err := table.Build(b, keys, payloads, st.cfg.Search)
	if err != nil {
		return nil, fmt.Errorf("serve: shard %d: %w", i, err)
	}
	return t, nil
}

func (st *Store) worker() {
	defer st.workersWG.Done()
	for j := range st.jobs {
		j.found.Add(int64(j.t.GetBatch(j.keys, j.out)))
		j.wg.Done()
	}
}

// Close stops the worker pool. Lookups must not be in flight or issued
// after Close; shard tables remain readable through Get.
func (st *Store) Close() {
	if st.closed.Swap(true) {
		return
	}
	close(st.jobs)
	st.workersWG.Wait()
}

// shardOf routes a key to the shard owning its range: the rightmost
// shard whose separator is <= key (keys below every separator belong
// to shard 0, where they are correctly reported absent).
func (st *Store) shardOf(x core.Key) int {
	i := sort.Search(len(st.seps), func(i int) bool { return st.seps[i] > x })
	if i == 0 {
		return 0
	}
	return i - 1
}

// NumShards reports the number of range partitions actually built.
func (st *Store) NumShards() int { return len(st.shards) }

// Len reports the total number of key/payload pairs.
func (st *Store) Len() int {
	total := 0
	for i := range st.shards {
		total += st.shards[i].Load().Len()
	}
	return total
}

// SizeBytes reports the summed index footprint across shards.
func (st *Store) SizeBytes() int {
	total := 0
	for i := range st.shards {
		total += st.shards[i].Load().SizeBytes()
	}
	return total
}

// Shard returns shard i's current table (a consistent immutable
// snapshot; a concurrent Replace does not affect it).
func (st *Store) Shard(i int) *table.Table { return st.shards[i].Load() }

// Get returns the payload for key, or false when absent.
func (st *Store) Get(key core.Key) (uint64, bool) {
	return st.shards[st.shardOf(key)].Load().Get(key)
}

// GetBatch looks up a batch of keys across all shards: out[i] receives
// the payload for keys[i] (0 when absent) and the number found is
// returned. Keys are gathered per shard, served by the worker pool as
// one batched job per shard, and scattered back, so a batch touching
// S shards runs on up to S workers concurrently.
func (st *Store) GetBatch(keys []core.Key, out []uint64) int {
	n := len(keys)
	if len(out) < n {
		panic("serve: GetBatch output shorter than key batch")
	}
	if n == 0 {
		return 0
	}
	nShards := len(st.shards)
	s := st.scratch.Get().(*batchScratch)
	s.ensure(n, nShards)

	// Count keys per shard, prefix-sum into gather offsets, then
	// stable-gather so each shard's keys are contiguous.
	counts := s.offs[:nShards+1]
	for i := range counts {
		counts[i] = 0
	}
	for i, x := range keys {
		sh := int32(st.shardOf(x))
		s.shard[i] = sh
		counts[sh+1]++
	}
	for i := 1; i <= nShards; i++ {
		counts[i] += counts[i-1]
	}
	starts := s.starts[:nShards+1]
	copy(starts, counts)
	for i, x := range keys {
		sh := s.shard[i]
		slot := counts[sh]
		counts[sh] = slot + 1
		s.gkeys[slot] = x
		s.pos[i] = slot
	}

	var wg sync.WaitGroup
	var found atomic.Int64
	for sh := 0; sh < nShards; sh++ {
		lo, hi := starts[sh], starts[sh+1]
		if lo == hi {
			continue
		}
		wg.Add(1)
		st.jobs <- job{
			t:     st.shards[sh].Load(),
			keys:  s.gkeys[lo:hi],
			out:   s.gout[lo:hi],
			found: &found,
			wg:    &wg,
		}
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		out[i] = s.gout[s.pos[i]]
	}
	st.scratch.Put(s)
	return int(found.Load())
}

func (s *batchScratch) ensure(n, nShards int) {
	if cap(s.shard) < n {
		s.shard = make([]int32, n)
		s.gkeys = make([]core.Key, n)
		s.gout = make([]uint64, n)
		s.pos = make([]int32, n)
	}
	s.shard = s.shard[:n]
	s.gkeys = s.gkeys[:n]
	s.gout = s.gout[:n]
	s.pos = s.pos[:n]
	if cap(s.offs) < nShards+1 {
		s.offs = make([]int32, nShards+1)
		s.starts = make([]int32, nShards+1)
	}
	s.offs = s.offs[:nShards+1]
	s.starts = s.starts[:nShards+1]
}

// Replace rebuilds shard i over new data. keys must be sorted, stay
// within the shard's key range (first key equal to the shard's
// separator, last key below the next separator), and match payloads in
// length. Replace is the single-writer path: concurrent Replace calls
// on one shard serialize, readers continue on the old table until the
// atomic swap.
func (st *Store) Replace(i int, keys []core.Key, payloads []uint64) error {
	if i < 0 || i >= len(st.shards) {
		return fmt.Errorf("serve: no shard %d", i)
	}
	if len(keys) == 0 {
		return errors.New("serve: empty replacement")
	}
	if keys[0] != st.seps[i] {
		return fmt.Errorf("serve: replacement must start at separator %d, got %d", st.seps[i], keys[0])
	}
	if i+1 < len(st.seps) && keys[len(keys)-1] >= st.seps[i+1] {
		return fmt.Errorf("serve: replacement key %d crosses into shard %d", keys[len(keys)-1], i+1)
	}
	st.writeMu[i].Lock()
	defer st.writeMu[i].Unlock()
	t, err := st.buildShard(i, keys, payloads)
	if err != nil {
		return err
	}
	st.shards[i].Store(t)
	return nil
}
