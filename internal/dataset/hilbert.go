package dataset

// hilbertD2 maps a 2-D point to its distance along a Hilbert curve of
// the given order (order bits per dimension, so the curve visits
// 2^(2*order) cells). This is the classic Lam–Shapiro loop. The osm
// dataset generator uses it to project clustered 2-D locations into
// one dimension, reproducing the locally-erratic CDF the paper
// attributes to OSM's Hilbert-projected cell IDs.
func hilbertD2(order uint, x, y uint64) uint64 {
	var d uint64
	for s := uint64(1) << (order - 1); s > 0; s >>= 1 {
		var rx, ry uint64
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += s * s * ((3 * rx) ^ ry)
		// Rotate the quadrant so the curve remains continuous.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}

// hilbertXY is the inverse of hilbertD2: it maps a curve distance back
// to 2-D coordinates. Exported only for testing the round trip.
func hilbertXY(order uint, d uint64) (x, y uint64) {
	t := d
	for s := uint64(1); s < uint64(1)<<order; s <<= 1 {
		rx := 1 & (t / 2)
		ry := 1 & (t ^ rx)
		// Rotate back.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}
