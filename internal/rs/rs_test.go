package rs

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/indextest"
)

func TestRSValidityAllDatasets(t *testing.T) {
	for _, name := range dataset.All() {
		keys := dataset.MustGenerate(name, 5000, 1)
		probes := indextest.ProbesFor(keys)
		for _, cfg := range []Config{
			{SplineErr: 1, RadixBits: 4},
			{SplineErr: 8, RadixBits: 10},
			{SplineErr: 32, RadixBits: 18},
			{SplineErr: 256, RadixBits: 2},
		} {
			idx, err := New(keys, cfg)
			if err != nil {
				t.Fatalf("%s %v: %v", name, cfg, err)
			}
			indextest.CheckValidity(t, idx, keys, probes)
		}
	}
}

func TestRSSplineErrorGuarantee(t *testing.T) {
	// On unique-key data, the verified margins stay close to the
	// configured spline error.
	keys := dataset.MustGenerate(dataset.Amzn, 20000, 1)
	for _, eps := range []int{2, 16, 128} {
		idx, _ := New(keys, Config{SplineErr: eps, RadixBits: 12})
		if idx.errLo > eps+2 || idx.errHi > eps+2 {
			t.Errorf("eps=%d: margins (%d, %d) exceed eps+2", eps, idx.errLo, idx.errHi)
		}
	}
}

func TestRSLinearDataFewPoints(t *testing.T) {
	keys := make([]core.Key, 10000)
	for i := range keys {
		keys[i] = core.Key(7 * i)
	}
	idx, _ := New(keys, Config{SplineErr: 8, RadixBits: 8})
	if idx.NumPoints() > 3 {
		t.Errorf("linear data needed %d spline points", idx.NumPoints())
	}
}

func TestRSSplineErrSizeTradeoff(t *testing.T) {
	keys := dataset.MustGenerate(dataset.OSM, 50000, 1)
	tight, _ := New(keys, Config{SplineErr: 2, RadixBits: 8})
	loose, _ := New(keys, Config{SplineErr: 256, RadixBits: 8})
	if tight.NumPoints() <= loose.NumPoints() {
		t.Errorf("tighter error should need more points: %d vs %d", tight.NumPoints(), loose.NumPoints())
	}
}

func TestRSRadixBitsSize(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Amzn, 10000, 1)
	small, _ := New(keys, Config{SplineErr: 32, RadixBits: 4})
	big, _ := New(keys, Config{SplineErr: 32, RadixBits: 16})
	if small.SizeBytes() >= big.SizeBytes() {
		t.Errorf("more radix bits should be larger: %d vs %d", small.SizeBytes(), big.SizeBytes())
	}
}

func TestRSFaceOutliersDegradeRadix(t *testing.T) {
	// With outliers at the top of the key space, most radix-table
	// buckets cover the dense bulk poorly; the spline search window
	// gets wide but validity must hold (checked) and the bulk prefix
	// becomes a single giant bucket (checked via table skew).
	keys := dataset.MustGenerate(dataset.Face, 20000, 1)
	idx, _ := New(keys, Config{SplineErr: 16, RadixBits: 12})
	indextest.CheckValidity(t, idx, keys, keys[:2000])
	// The bulk of keys (< 2^50) lives in bucket 0 of the prefix space
	// because outliers near 2^64 stretch the span.
	bulkPrefix := idx.prefix(keys[len(keys)/2])
	if bulkPrefix > 2 {
		t.Errorf("expected bulk to collapse into low buckets, got prefix %d", bulkPrefix)
	}
}

func TestRSEmpty(t *testing.T) {
	if _, err := New(nil, Config{SplineErr: 8, RadixBits: 8}); err == nil {
		t.Fatal("expected error")
	}
}

func TestRSSingleKey(t *testing.T) {
	keys := []core.Key{42}
	idx, err := New(keys, Config{SplineErr: 4, RadixBits: 6})
	if err != nil {
		t.Fatal(err)
	}
	indextest.CheckValidity(t, idx, keys, []core.Key{0, 41, 42, 43, ^core.Key(0)})
}

func TestRSDuplicates(t *testing.T) {
	keys := make([]core.Key, 0, 64)
	for i := 0; i < 40; i++ {
		keys = append(keys, 1000)
	}
	for i := 0; i < 24; i++ {
		keys = append(keys, core.Key(2000+i*3))
	}
	idx, err := New(keys, Config{SplineErr: 2, RadixBits: 6})
	if err != nil {
		t.Fatal(err)
	}
	indextest.CheckValidity(t, idx, keys, indextest.ProbesFor(keys))
}

func TestRSConfigClamps(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Wiki, 1000, 1)
	idx, err := New(keys, Config{SplineErr: 0, RadixBits: 0})
	if err != nil {
		t.Fatal(err)
	}
	indextest.CheckValidity(t, idx, keys, indextest.ProbesFor(keys))
	idx2, err := New(keys, Config{SplineErr: 1, RadixBits: 99})
	if err != nil {
		t.Fatal(err)
	}
	if idx2.ConfigUsed().RadixBits > 28 {
		t.Error("radix bits not clamped")
	}
}

func TestRSBuilderInterface(t *testing.T) {
	var b core.Builder = Builder{Config: Config{SplineErr: 16, RadixBits: 10}}
	if b.Name() != "RS" {
		t.Errorf("name %q", b.Name())
	}
	keys := dataset.MustGenerate(dataset.OSM, 3000, 1)
	idx := indextest.CheckBuilder(t, b, keys)
	if idx.Name() != "RS" || idx.SizeBytes() <= 0 {
		t.Error("bad metadata")
	}
}

func TestRSAvgLog2Error(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Amzn, 5000, 1)
	idx, _ := New(keys, Config{SplineErr: 8, RadixBits: 8})
	if e := idx.AvgLog2Error(); e <= 0 || e > 20 {
		t.Errorf("log2 error out of range: %f", e)
	}
}

func TestRSConfigString(t *testing.T) {
	c := Config{SplineErr: 32, RadixBits: 18}
	if c.String() != "rs[eps=32,r=18]" {
		t.Errorf("got %q", c.String())
	}
}
