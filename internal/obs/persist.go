package obs

import "repro/internal/persist"

// RegisterPersist binds the persistence layer's process-wide I/O
// counters (snapshot bytes, WAL bytes and appends, fsyncs) into r as
// scrape-time counters. Call at most once per registry.
func RegisterPersist(r *Registry) {
	if r == nil {
		return
	}
	r.CounterFunc("sosd_persist_snapshot_bytes_total", func() float64 {
		return float64(persist.CountersNow().SnapshotBytes)
	})
	r.CounterFunc("sosd_persist_wal_bytes_total", func() float64 {
		return float64(persist.CountersNow().WALBytes)
	})
	r.CounterFunc("sosd_persist_wal_appends_total", func() float64 {
		return float64(persist.CountersNow().WALAppends)
	})
	r.CounterFunc("sosd_persist_fsyncs_total", func() float64 {
		return float64(persist.CountersNow().Fsyncs)
	})
}
