package search

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func sortedKeys(rng *rand.Rand, n int, maxVal int) []core.Key {
	keys := make([]core.Key, n)
	for i := range keys {
		keys[i] = core.Key(rng.Intn(maxVal))
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// validBoundFor builds a random valid bound around the lower bound of x.
func validBoundFor(rng *rand.Rand, keys []core.Key, x core.Key) core.Bound {
	n := len(keys)
	lb := core.LowerBound(keys, x)
	if lb == n {
		lo := rng.Intn(n + 1)
		return core.Bound{Lo: lo, Hi: n}
	}
	lo := lb - rng.Intn(lb+1)
	hi := lb + 1 + rng.Intn(n-lb)
	return core.Bound{Lo: lo, Hi: hi}
}

func TestSearchFnsAgreeWithLowerBound(t *testing.T) {
	fns := map[string]Fn{
		"binary":        BinarySearch,
		"linear":        LinearSearch,
		"interpolation": InterpolationSearch,
		"exponential":   ExponentialSearch,
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		keys := sortedKeys(rng, n, 1000)
		for q := 0; q < 30; q++ {
			x := core.Key(rng.Intn(1200))
			want := core.LowerBound(keys, x)
			b := validBoundFor(rng, keys, x)
			for name, fn := range fns {
				if got := fn(keys, x, b); got != want {
					t.Fatalf("%s: search(%d, %v) = %d, want %d (keys[%d..%d]=%v)",
						name, x, b, got, want, b.Lo, b.Hi, keys[b.Lo:b.Hi])
				}
			}
		}
	}
}

func TestSearchFullBound(t *testing.T) {
	keys := []core.Key{1, 3, 9, 12, 56, 57, 58, 95, 98, 99}
	b := core.FullBound(len(keys))
	for _, fn := range []Fn{BinarySearch, LinearSearch, InterpolationSearch, ExponentialSearch} {
		if got := fn(keys, 72, b); got != 7 {
			t.Errorf("search(72) = %d, want 7", got)
		}
		if got := fn(keys, 1, b); got != 0 {
			t.Errorf("search(1) = %d, want 0", got)
		}
		if got := fn(keys, 1000, b); got != len(keys) {
			t.Errorf("search(1000) = %d, want %d", got, len(keys))
		}
	}
}

func TestSearchEmptyBound(t *testing.T) {
	keys := []core.Key{10, 20, 30}
	b := core.Bound{Lo: 3, Hi: 3} // overflow-key case: lb == n
	for _, fn := range []Fn{BinarySearch, LinearSearch, InterpolationSearch, ExponentialSearch} {
		if got := fn(keys, 99, b); got != 3 {
			t.Errorf("search on empty bound = %d, want 3", got)
		}
	}
}

func TestSearchSingleElementBound(t *testing.T) {
	keys := []core.Key{10, 20, 30}
	b := core.Bound{Lo: 1, Hi: 2}
	for _, fn := range []Fn{BinarySearch, LinearSearch, InterpolationSearch, ExponentialSearch} {
		if got := fn(keys, 15, b); got != 1 {
			t.Errorf("search(15) = %d, want 1", got)
		}
		if got := fn(keys, 20, b); got != 1 {
			t.Errorf("search(20) = %d, want 1", got)
		}
	}
}

func TestSearchAllDuplicates(t *testing.T) {
	keys := []core.Key{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7}
	b := core.FullBound(len(keys))
	for _, fn := range []Fn{BinarySearch, LinearSearch, InterpolationSearch, ExponentialSearch} {
		if got := fn(keys, 7, b); got != 0 {
			t.Errorf("search(7) over dups = %d, want 0", got)
		}
		if got := fn(keys, 6, b); got != 0 {
			t.Errorf("search(6) over dups = %d, want 0", got)
		}
	}
	// A key greater than all duplicates has lb == n; validity requires Hi == n.
	for _, fn := range []Fn{BinarySearch, LinearSearch, InterpolationSearch, ExponentialSearch} {
		if got := fn(keys, 8, b); got != len(keys) {
			t.Errorf("search(8) over dups = %d, want %d", got, len(keys))
		}
	}
}

func TestInterpolationExtremeSkew(t *testing.T) {
	// Outlier-heavy data like the face dataset: interpolation probes pile
	// up at one end; the probe cap must still terminate correctly.
	keys := make([]core.Key, 1000)
	for i := 0; i < 999; i++ {
		keys[i] = core.Key(i)
	}
	keys[999] = ^core.Key(0) // one huge outlier
	b := core.FullBound(len(keys))
	for x := core.Key(0); x < 999; x += 7 {
		want := core.LowerBound(keys, x)
		if got := InterpolationSearch(keys, x, b); got != want {
			t.Fatalf("interpolation(%d) = %d, want %d", x, got, want)
		}
	}
	if got := InterpolationSearch(keys, ^core.Key(0), b); got != 999 {
		t.Errorf("interpolation(max) = %d, want 999", got)
	}
}

func TestBinarySearch32(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 500
	keys := make([]core.Key32, n)
	for i := range keys {
		keys[i] = core.Key32(rng.Intn(10000))
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for q := 0; q < 200; q++ {
		x := core.Key32(rng.Intn(12000))
		want := core.LowerBound32(keys, x)
		if got := BinarySearch32(keys, x, core.FullBound(n)); got != want {
			t.Fatalf("BinarySearch32(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestBinarySteps(t *testing.T) {
	cases := []struct{ width, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{128, 7}, {129, 8}, {1 << 20, 20},
	}
	for _, tc := range cases {
		if got := BinarySteps(tc.width); got != tc.want {
			t.Errorf("BinarySteps(%d) = %d, want %d", tc.width, got, tc.want)
		}
	}
}

func TestKindString(t *testing.T) {
	if Binary.String() != "binary" || Linear.String() != "linear" || Interpolation.String() != "interpolation" {
		t.Error("Kind.String mismatch")
	}
	if Kind(99).String() != "unknown" {
		t.Error("unknown kind")
	}
}

func TestByKind(t *testing.T) {
	keys := []core.Key{1, 5, 9}
	for _, k := range []Kind{Binary, Linear, Interpolation, Kind(42)} {
		fn := ByKind(k)
		if got := fn(keys, 5, core.FullBound(3)); got != 1 {
			t.Errorf("ByKind(%v)(5) = %d, want 1", k, got)
		}
	}
}

// Property test: all search functions agree with core.LowerBound on the
// full bound for arbitrary sorted inputs.
func TestSearchProperty(t *testing.T) {
	f := func(raw []uint64, x uint64) bool {
		keys := make([]core.Key, len(raw))
		copy(keys, raw)
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		b := core.FullBound(len(keys))
		want := core.LowerBound(keys, x)
		return BinarySearch(keys, x, b) == want &&
			LinearSearch(keys, x, b) == want &&
			InterpolationSearch(keys, x, b) == want &&
			ExponentialSearch(keys, x, b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
