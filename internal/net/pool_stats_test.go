package net

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/stats"
)

// TestPoolStatsMergesServers drives two independent servers through
// one multi-server pool and checks Stats merges across them: counters
// sum, latency histograms merge, and nothing is double-counted.
func TestPoolStatsMergesServers(t *testing.T) {
	srvA, _, keys, _ := newServed(t, 2000, Config{})
	srvB, _, _, _ := newServed(t, 2000, Config{})

	// Two connections per server: per-address dedup must still count
	// each server once.
	p, err := DialPoolMulti([]string{srvA.Addr().String(), srvB.Addr().String()}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const ops = 40 // even: round-robin lands ops/2 on each server
	for i := 0; i < ops; i++ {
		if _, _, err := p.TryGet(keys[i]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := p.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if got.Accepted != ops {
		t.Fatalf("merged Accepted = %d, want %d", got.Accepted, ops)
	}
	if got.Latency == nil || got.Latency.Count() != ops {
		t.Fatalf("merged latency count = %d, want %d", got.Latency.Count(), ops)
	}
	// Both servers actually served: the merge is a sum of two live
	// halves, not one server counted twice.
	sa, sb := srvA.Stats(), srvB.Stats()
	if sa.Accepted == 0 || sb.Accepted == 0 {
		t.Fatalf("load did not split: serverA=%d serverB=%d", sa.Accepted, sb.Accepted)
	}
	if sa.Accepted+sb.Accepted != ops {
		t.Fatalf("server totals %d+%d != %d", sa.Accepted, sb.Accepted, ops)
	}
	if got.Conns != 4 {
		t.Fatalf("merged Conns = %d, want 4", got.Conns)
	}
}

// TestPoolStatsSingleServer pins the satellite fix's other edge: a
// single-server pool with many connections reports that server's stats
// exactly once.
func TestPoolStatsSingleServer(t *testing.T) {
	srv, _, keys, _ := newServed(t, 2000, Config{})
	p, err := DialPool(srv.Addr().String(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const ops = 30
	for i := 0; i < ops; i++ {
		if _, _, err := p.TryGet(keys[i]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := p.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if got.Accepted != ops {
		t.Fatalf("single-server pool Accepted = %d, want %d (double-counted?)", got.Accepted, ops)
	}
}

// TestStatsMerge pins the Merge arithmetic itself, including the
// name-summed vars and the max-of-max queue high-water.
func TestStatsMerge(t *testing.T) {
	ha, hb := &stats.Histogram{}, &stats.Histogram{}
	ha.Record(100)
	hb.Record(300)
	a := &Stats{
		Conns: 1, Accepted: 10, Shed: 2, QueueDepth: 3, MaxQueueDepth: 5,
		Latency: ha,
		Vars: []obs.Var{{Name: "alpha", Value: 1}, {Name: "beta", Value: 2}},
	}
	b := &Stats{
		Conns: 2, Accepted: 20, Shed: 1, QueueDepth: 1, MaxQueueDepth: 9,
		Latency: hb,
		Vars: []obs.Var{{Name: "beta", Value: 5}, {Name: "gamma", Value: 7}},
	}
	a.Merge(b)
	if a.Conns != 3 || a.Accepted != 30 || a.Shed != 3 || a.QueueDepth != 4 {
		t.Fatalf("summed counters wrong: %+v", a)
	}
	if a.MaxQueueDepth != 9 {
		t.Fatalf("MaxQueueDepth = %d, want max 9", a.MaxQueueDepth)
	}
	if a.Latency.Count() != 2 || a.Latency.Max() != 300 {
		t.Fatalf("latency merge wrong: %v", a.Latency)
	}
	want := []obs.Var{{Name: "alpha", Value: 1}, {Name: "beta", Value: 7}, {Name: "gamma", Value: 7}}
	if len(a.Vars) != len(want) {
		t.Fatalf("merged vars %v, want %v", a.Vars, want)
	}
	for i := range want {
		if a.Vars[i] != want[i] {
			t.Fatalf("merged vars[%d] = %v, want %v", i, a.Vars[i], want[i])
		}
	}
}
