// Package btree implements an STX-style B+tree baseline (Section 4.1.1
// of the paper), generic over 32- and 64-bit keys for the key-size
// experiment.
//
// The size/performance knob is the paper's subset-insertion technique:
// a stride-s tree indexes every s-th key of the data array, so any
// lookup resolves to a search bound of width s over the full array
// (Section 2.1's "B-Tree with an error bound of s-1").
//
// The tree is a real dynamic B+tree — bulk-loaded for the read-only
// benchmarks, with Insert support for completeness (Table 1 lists
// BTrees as update-capable).
package btree

import (
	"errors"
	"fmt"
)

// KeyT constrains the key types the tree supports.
type KeyT interface {
	~uint32 | ~uint64
}

// fanout is the maximum number of keys per node. 32 eight-byte keys
// fill four cache lines, matching STX's default node size class.
const fanout = 32

type node[K KeyT] struct {
	keys     []K
	children []*node[K] // inner nodes: len(children) == len(keys)+1
	vals     []int32    // leaves: data positions, parallel to keys
	next     *node[K]   // leaf chain
	prev     *node[K]
	id       int32 // stable node number for the perf-counter simulation
}

func (nd *node[K]) isLeaf() bool { return nd.children == nil }

// Tree is a dynamic B+tree mapping keys to data positions.
type Tree[K KeyT] struct {
	root   *node[K]
	height int
	nNodes int
	count  int
	// interpolate selects interpolation search inside nodes instead of
	// binary search — this is what turns the BTree into the paper's
	// IBTree (Graefe's interpolation-based B-tree).
	interpolate bool
}

// NewTree bulk-loads a tree from sorted (key, pos) pairs. keys must be
// sorted ascending.
func NewTree[K KeyT](keys []K, vals []int32, interpolate bool) (*Tree[K], error) {
	if len(keys) != len(vals) {
		return nil, errors.New("btree: keys/vals length mismatch")
	}
	t := &Tree[K]{interpolate: interpolate}
	if len(keys) == 0 {
		t.root = &node[K]{}
		t.nNodes = 1
		t.height = 1
		return t, nil
	}
	// Build full leaves left to right, then build inner levels over
	// the max key of each child.
	var leaves []*node[K]
	for i := 0; i < len(keys); i += fanout {
		end := i + fanout
		if end > len(keys) {
			end = len(keys)
		}
		lf := &node[K]{
			keys: append([]K(nil), keys[i:end]...),
			vals: append([]int32(nil), vals[i:end]...),
			id:   int32(len(leaves)),
		}
		if n := len(leaves); n > 0 {
			leaves[n-1].next = lf
			lf.prev = leaves[n-1]
		}
		leaves = append(leaves, lf)
	}
	t.nNodes = len(leaves)
	t.count = len(keys)
	level := leaves
	t.height = 1
	for len(level) > 1 {
		var upper []*node[K]
		for i := 0; i < len(level); i += fanout + 1 {
			end := i + fanout + 1
			if end > len(level) {
				end = len(level)
			}
			in := &node[K]{children: append([]*node[K](nil), level[i:end]...)}
			in.id = int32(t.nNodes + len(upper))
			// Separators are the max keys of all children but the last.
			in.keys = make([]K, end-i-1)
			for c := 0; c < end-i-1; c++ {
				in.keys[c] = maxKey(level[i+c])
			}
			upper = append(upper, in)
		}
		t.nNodes += len(upper)
		level = upper
		t.height++
	}
	t.root = level[0]
	return t, nil
}

func maxKey[K KeyT](nd *node[K]) K {
	for !nd.isLeaf() {
		nd = nd.children[len(nd.children)-1]
	}
	return nd.keys[len(nd.keys)-1]
}

// searchNode returns the first index i in nd.keys with keys[i] >= x
// (binary or interpolation search per tree configuration).
func (t *Tree[K]) searchNode(nd *node[K], x K) int {
	keys := nd.keys
	if t.interpolate && len(keys) > 8 {
		lo, hi := 0, len(keys)
		first, last := keys[0], keys[len(keys)-1]
		if x > first && x <= last && last > first {
			frac := float64(x-first) / float64(last-first)
			pos := int(frac * float64(len(keys)-1))
			// One interpolation probe, then fall back to binary search
			// on the surviving half — the in-node arrays are small.
			if keys[pos] < x {
				lo = pos + 1
			} else {
				hi = pos + 1
			}
		}
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if keys[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Ceiling returns the value of the smallest key >= x, with found=false
// when every key is smaller (or the tree is empty). The second return
// is the value (data position) of the predecessor entry — the largest
// key < x — with predOK=false when x is not greater than any key.
func (t *Tree[K]) Ceiling(x K) (val int32, found bool, pred int32, predOK bool) {
	nd := t.root
	for !nd.isLeaf() {
		i := t.searchNode(nd, x)
		// Inner separators are child maxima: child i holds keys <= keys[i].
		if i == len(nd.keys) {
			nd = nd.children[len(nd.children)-1]
		} else {
			nd = nd.children[i]
		}
	}
	i := t.searchNode(nd, x)
	if i == len(nd.keys) {
		// All keys in this leaf are < x. With max-separator routing
		// this only happens in the rightmost subtree; the ceiling is
		// in the next leaf if any.
		if len(nd.keys) > 0 {
			pred, predOK = nd.vals[len(nd.keys)-1], true
		} else if nd.prev != nil && len(nd.prev.keys) > 0 {
			pred, predOK = nd.prev.vals[len(nd.prev.keys)-1], true
		}
		if nd.next != nil && len(nd.next.keys) > 0 {
			return nd.next.vals[0], true, pred, predOK
		}
		return 0, false, pred, predOK
	}
	if i > 0 {
		pred, predOK = nd.vals[i-1], true
	} else if nd.prev != nil && len(nd.prev.keys) > 0 {
		pred, predOK = nd.prev.vals[len(nd.prev.keys)-1], true
	}
	return nd.vals[i], true, pred, predOK
}

// Insert adds a (key, pos) entry, keeping the tree balanced. Duplicate
// keys are allowed and stored adjacently.
func (t *Tree[K]) Insert(key K, pos int32) {
	newChild, sepKey := t.insert(t.root, key, pos)
	if newChild != nil {
		root := &node[K]{
			keys:     []K{sepKey},
			children: []*node[K]{t.root, newChild},
			id:       int32(t.nNodes),
		}
		t.root = root
		t.nNodes++
		t.height++
	}
	t.count++
}

// insert descends recursively; on child split it returns the new right
// sibling and the separator key (max of the left part).
func (t *Tree[K]) insert(nd *node[K], key K, pos int32) (*node[K], K) {
	var zero K
	if nd.isLeaf() {
		i := t.searchNode(nd, key)
		nd.keys = insertAt(nd.keys, i, key)
		nd.vals = insertAt(nd.vals, i, pos)
		if len(nd.keys) <= fanout {
			return nil, zero
		}
		// Split the leaf.
		mid := len(nd.keys) / 2
		right := &node[K]{
			keys: append([]K(nil), nd.keys[mid:]...),
			vals: append([]int32(nil), nd.vals[mid:]...),
			next: nd.next,
			prev: nd,
			id:   int32(t.nNodes),
		}
		if nd.next != nil {
			nd.next.prev = right
		}
		nd.keys = nd.keys[:mid]
		nd.vals = nd.vals[:mid]
		nd.next = right
		t.nNodes++
		return right, nd.keys[mid-1]
	}
	i := t.searchNode(nd, key)
	ci := i
	if ci == len(nd.keys) {
		ci = len(nd.children) - 1
	}
	newChild, sepKey := t.insert(nd.children[ci], key, pos)
	if newChild == nil {
		return nil, zero
	}
	nd.keys = insertAt(nd.keys, ci, sepKey)
	nd.children = insertAt(nd.children, ci+1, newChild)
	if len(nd.keys) <= fanout {
		return nil, zero
	}
	// Split the inner node.
	mid := len(nd.keys) / 2
	sep := nd.keys[mid]
	right := &node[K]{
		keys:     append([]K(nil), nd.keys[mid+1:]...),
		children: append([]*node[K](nil), nd.children[mid+1:]...),
		id:       int32(t.nNodes),
	}
	nd.keys = nd.keys[:mid]
	nd.children = nd.children[:mid+1]
	t.nNodes++
	return right, sep
}

func insertAt[T any](s []T, i int, v T) []T {
	s = append(s, v)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// Count returns the number of entries.
func (t *Tree[K]) Count() int { return t.count }

// Height returns the number of levels.
func (t *Tree[K]) Height() int { return t.height }

// SizeBytes estimates the in-memory footprint: per entry one key and
// one value, per node slice headers and child pointers.
func (t *Tree[K]) SizeBytes() int {
	var k K
	keySize := 8
	if _, ok := any(k).(uint32); ok {
		keySize = 4
	}
	const nodeOverhead = 5 * 24 // slice headers + leaf links
	inner := t.nNodes - (t.count+fanout-1)/fanout
	if inner < 0 {
		inner = 0
	}
	return t.count*(keySize+4) + t.nNodes*nodeOverhead + inner*fanout/2*8
}

// Validate checks B+tree structural invariants; used by tests.
func (t *Tree[K]) Validate() error {
	if t.root == nil {
		return errors.New("btree: nil root")
	}
	_, _, err := validate(t.root, t.height)
	return err
}

func validate[K KeyT](nd *node[K], levels int) (minK, maxK K, err error) {
	if nd.isLeaf() {
		if levels != 1 {
			return minK, maxK, errors.New("btree: leaves at different depths")
		}
		for i := 1; i < len(nd.keys); i++ {
			if nd.keys[i] < nd.keys[i-1] {
				return minK, maxK, errors.New("btree: leaf keys out of order")
			}
		}
		if len(nd.keys) == 0 {
			return minK, maxK, nil
		}
		return nd.keys[0], nd.keys[len(nd.keys)-1], nil
	}
	if len(nd.children) != len(nd.keys)+1 {
		return minK, maxK, fmt.Errorf("btree: inner node has %d keys, %d children", len(nd.keys), len(nd.children))
	}
	for ci, ch := range nd.children {
		cmin, cmax, err := validate(ch, levels-1)
		if err != nil {
			return minK, maxK, err
		}
		if ci == 0 {
			minK = cmin
		}
		if ci > 0 && cmin < nd.keys[ci-1] {
			return minK, maxK, errors.New("btree: child violates separator")
		}
		if ci < len(nd.keys) && cmax > nd.keys[ci] {
			return minK, maxK, errors.New("btree: child exceeds separator")
		}
		maxK = cmax
	}
	return minK, maxK, nil
}

// PathIDs appends the node ids visited when searching for x, root to
// leaf, to dst, returning the extended slice. It exists for the
// performance-counter simulation and follows the Ceiling descent.
func (t *Tree[K]) PathIDs(x K, dst []int32) []int32 {
	nd := t.root
	for {
		dst = append(dst, nd.id)
		if nd.isLeaf() {
			return dst
		}
		i := t.searchNode(nd, x)
		if i == len(nd.keys) {
			nd = nd.children[len(nd.children)-1]
		} else {
			nd = nd.children[i]
		}
	}
}

// NumNodes reports the node count.
func (t *Tree[K]) NumNodes() int { return t.nNodes }
