package bench

// The replication experiment: the serving story scaled out. A primary
// streams its writes to snapshot-bootstrapped followers, and the
// range-aware router fans reads across the topology — each server's
// coalescing window pins its read capacity, so R replicas buy close to
// R times the goodput by construction, and the experiment verifies the
// machine actually delivers it (>= 1.7x at two replicas is enforced,
// not just reported). Every row also enforces the stream's
// conservation laws (applied <= acked <= streamed, router served+shed
// == offered). The second table kills the primary under the router and
// measures the detect -> promote -> first-write-served timeline. See
// DESIGN.md "Replication".

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/load"
	"repro/internal/net"
	"repro/internal/repl"
	"repro/internal/report"
	"repro/internal/serve"
)

func init() {
	Register(Experiment{"serve-repl", "replication: scatter/gather read goodput vs replica count, stream conservation laws, and failover-to-ready time", serveReplSweep})
}

// Topology parameters. The per-server read capacity is pinned exactly
// as in serve-net (netBatchCap keys per netWindow); 12 shards divide
// evenly across 1, 2, and 3 replicas so every node serves an equal
// key range.
const (
	replShards   = 12
	replWriteOps = 4000
	replWorkers  = 96
)

// replReplicaCounts are the topology sizes of the goodput sweep.
var replReplicaCounts = []int{1, 2, 3}

// replNode is one serving endpoint of the benchmark topology.
type replNode struct {
	f   *repl.Follower
	srv *net.Server
}

// serveReplSweep builds, per replica count, a fresh primary plus
// followers, streams a write burst through, settles, then saturates
// the router with closed-loop point reads.
func serveReplSweep(r *Run) ([]report.Table, error) {
	o := r.Options
	e, err := r.Env(dataset.Amzn)
	if err != nil {
		return nil, err
	}
	ops := o.Lookups
	capacity := netCapacity()

	t := report.New("serve-repl",
		fmt.Sprintf("Replicated serving (amzn, loopback, %d shards, %.0f lookups/s pinned per server, %d streamed writes, %d ops/run)",
			replShards, capacity, replWriteOps, ops)).
		Dims("replicas").
		Float("boot", "ms", 1).
		Float("snap", "MB", 2).
		Float("streamed", "ops", 0).
		Float("acked", "ops", 0).
		Float("applied", "ops", 0).
		Float("goodput", "kops/s", 1).
		Float("speedup", "x", 2).
		Float("p99", "µs", 1).
		Notef("boot is the slowest follower's snapshot-bootstrap-to-ready time; snap is total shipped snapshot bytes").
		Notef("laws enforced per row: applied <= acked <= streamed (exact equality after settle), router served+shed == offered").
		Notef("speedup is goodput vs the 1-replica row; >= 1.7x at 2 replicas is enforced, not just reported")

	ft := report.New("serve-repl",
		"Failover under the router: primary killed mid-topology, most-caught-up follower promoted").
		Dims("phase").
		Float("time", "ms", 1).
		Notef("detect: kill to the router observing FailAfter missed polls and completing promotion; ready: kill to the first routed write served by the new primary")

	var baseGoodput float64
	for _, replicas := range replReplicaCounts {
		goodput, err := runReplTopology(r, e, replicas, ops, baseGoodput, t, ft,
			replicas == replReplicaCounts[len(replReplicaCounts)-1])
		if err != nil {
			return nil, err
		}
		if replicas == 1 {
			baseGoodput = goodput
		}
		if replicas == 2 && goodput < 1.7*baseGoodput {
			return nil, fmt.Errorf("serve-repl: 2-replica goodput %.0f < 1.7x single-replica %.0f",
				goodput, baseGoodput)
		}
	}
	return []report.Table{*t, *ft}, nil
}

// runReplTopology measures one replica count and appends its row
// (speedup is relative to base, the single-replica goodput); when
// failover is set it also kills the primary afterwards and appends
// the failover timeline.
func runReplTopology(r *Run, e *Env, replicas, ops int, base float64, t, ft *report.Table, failover bool) (float64, error) {
	o := r.Options
	tmp, err := os.MkdirTemp("", "serve-repl-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(tmp)
	// Primary: volatile store, hooked log, repl listener, serving port.
	log := repl.NewLog(replShards)
	st, err := serve.New(e.Keys, e.Payloads, serve.Config{
		Shards: replShards, Family: "PGM", WriteHook: log.Hook(),
	})
	if err != nil {
		return 0, err
	}
	defer st.Close()
	pri, err := repl.NewPrimary(st, log, "127.0.0.1:0", repl.PrimaryConfig{})
	if err != nil {
		return 0, err
	}
	defer pri.Close()
	srv, err := net.Listen("127.0.0.1:0", st, net.Config{
		CoalesceWindow: netWindow, BatchCap: netBatchCap, MaxPending: netMaxPending,
		ReplStat: pri.ReplStatHook(),
	})
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	addrs := []string{srv.Addr().String()}

	// Followers bootstrap by snapshot shipping; boot time is the
	// slowest follower's StartFollower-to-ready interval.
	var nodes []*replNode
	defer func() {
		for _, n := range nodes {
			_ = n.srv.Close()
			n.f.Stop()
		}
	}()
	var bootMs float64
	for i := 1; i < replicas; i++ {
		t0 := time.Now()
		f, err := repl.StartFollower(repl.FollowerConfig{
			Dir:         fmt.Sprintf("%s/replica-%d", tmp, i),
			PrimaryAddr: pri.Addr().String(),
			Store:       serve.Config{Family: "PGM"},
		})
		if err != nil {
			return 0, err
		}
		if err := f.WaitReady(60 * time.Second); err != nil {
			return 0, err
		}
		if ms := float64(time.Since(t0).Nanoseconds()) / 1e6; ms > bootMs {
			bootMs = ms
		}
		fsrv, err := net.Listen("127.0.0.1:0", f.Store(), net.Config{
			CoalesceWindow: netWindow, BatchCap: netBatchCap, MaxPending: netMaxPending,
			ReplStat: f.ReplStatHook(), Promote: f.PromoteHook(),
		})
		if err != nil {
			f.Stop()
			return 0, err
		}
		nodes = append(nodes, &replNode{f: f, srv: fsrv})
		addrs = append(addrs, fsrv.Addr().String())
	}

	// Write burst through the primary store: every op enters the
	// stream; then settle so the laws can be checked at a fixed point.
	writes := load.MixedOps(e.Keys, replWriteOps, 0, 0, o.Seed+uint64(replicas))
	for _, op := range writes {
		st.Put(op.Key, uint64(op.Key)^0xbeef)
	}
	want := log.Seqs()
	for _, n := range nodes {
		if err := n.f.WaitCaughtUp(want, 60*time.Second); err != nil {
			return 0, err
		}
	}
	if err := pri.WaitAcked(60 * time.Second); err != nil {
		return 0, err
	}

	ps := pri.Stats()
	var applied, acked uint64
	for _, n := range nodes {
		fs := n.f.Stats()
		applied += fs.AppliedOps
		if fs.AppliedOps > fs.AckedOps {
			return 0, fmt.Errorf("serve-repl %d: follower applied %d > acked %d", replicas, fs.AppliedOps, fs.AckedOps)
		}
		acked += fs.AckedOps
	}
	if ps.AckedOps > ps.StreamedOps {
		return 0, fmt.Errorf("serve-repl %d: acked %d > streamed %d", replicas, ps.AckedOps, ps.StreamedOps)
	}
	if replicas > 1 && ps.StreamedOps < uint64(replWriteOps) {
		return 0, fmt.Errorf("serve-repl %d: only %d of %d writes streamed", replicas, ps.StreamedOps, replWriteOps)
	}

	// Read phase: closed-loop point lookups through the router.
	router, err := repl.NewRouter(addrs, 0, repl.RouterConfig{})
	if err != nil {
		return 0, err
	}
	defer router.Close()
	stream := load.MixedOps(e.Keys, ops, 1, 0, o.Seed)
	res := load.RunClosed(router, stream, load.Config{Workers: replWorkers})
	if res.Errors > 0 {
		return 0, fmt.Errorf("serve-repl %d: %d hard errors", replicas, res.Errors)
	}
	if res.Ops+res.Sheds != len(stream) {
		return 0, fmt.Errorf("serve-repl %d: %d ops + %d sheds != %d offered", replicas, res.Ops, res.Sheds, len(stream))
	}
	rs := router.Stats()
	if rs.Served+rs.Shed < uint64(len(stream)) {
		return 0, fmt.Errorf("serve-repl %d: router served %d + shed %d < offered %d", replicas, rs.Served, rs.Shed, len(stream))
	}

	speedup := 1.0
	if base > 0 {
		speedup = res.Throughput / base
	}
	sum := res.Hist.Summary()
	t.Row([]string{fmt.Sprintf("%d", replicas)},
		bootMs, float64(ps.SnapBytes)/(1<<20),
		float64(ps.StreamedOps), float64(ps.AckedOps), float64(applied),
		res.Throughput/1e3,
		speedup,
		float64(sum.P99)/1e3)

	if failover && replicas >= 2 {
		if err := runReplFailover(st, pri, srv, router, e.Keys, ft); err != nil {
			return 0, err
		}
	}
	return res.Throughput, nil
}

// runReplFailover kills the primary under the router and measures the
// timeline: detect+promote (router Failovers counter moves), then
// ready (first routed write served by the new primary).
func runReplFailover(st *serve.Store, pri *repl.Primary, srv *net.Server, router *repl.Router, keys []core.Key, ft *report.Table) error {
	// Quiesce: the goodput phase issued no writes, so followers are
	// already settled; kill the primary node wholesale.
	t0 := time.Now()
	_ = srv.Close()
	_ = pri.Close()
	st.Close()

	deadline := time.Now().Add(60 * time.Second)
	for router.Stats().Failovers == 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("serve-repl failover: router never promoted")
		}
		time.Sleep(time.Millisecond)
	}
	detectMs := float64(time.Since(t0).Nanoseconds()) / 1e6

	var readyMs float64
	probe := keys[len(keys)/2]
	for {
		if err := router.TryPut(probe, 0xfeedface); err == nil {
			readyMs = float64(time.Since(t0).Nanoseconds()) / 1e6
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("serve-repl failover: no write served after promotion")
		}
		time.Sleep(time.Millisecond)
	}
	// Post-failover smoke: read-your-write through the router.
	if v, ok, err := router.TryGet(probe); err != nil || !ok || v != 0xfeedface {
		return fmt.Errorf("serve-repl failover: read-your-write got (%d,%v,%v)", v, ok, err)
	}

	ft.Row([]string{"detect+promote"}, detectMs)
	ft.Row([]string{"ready"}, readyMs)
	return nil
}
