// Package wormhole implements a Wormhole-style ordered index (Wu et
// al., EuroSys'19; Figure 8 of the paper): sorted leaves of bounded
// size located through a hash-accelerated anchor-prefix search.
//
// Wormhole's central idea is replacing the O(log n) anchor search of a
// B+tree with an O(log keylen) search: all prefixes of leaf anchor
// keys live in a hash table, and a binary search over the *prefix
// length* finds the longest prefix of the query present in that table,
// which pins the target leaf to the anchors sharing the prefix. Keys
// here are fixed 8-byte big-endian strings, so at most four hash
// probes resolve any lookup.
package wormhole

import (
	"encoding/binary"
	"errors"

	"repro/internal/core"
)

const keyLen = 8

// LeafSize is the number of subset keys per leaf (Wormhole's default
// leaf capacity class).
const LeafSize = 128

// span is the contiguous range of leaves whose anchors share a prefix.
type span struct {
	lo, hi int32 // inclusive leaf index range
}

// Index is a built wormhole index over a key subset.
type Index struct {
	n       int
	stride  int
	subset  []core.Key // every stride-th key
	anchors []core.Key // first subset key of each leaf
	meta    map[string]span
}

// Builder builds wormhole indexes.
type Builder struct {
	// Stride inserts every Stride-th key. Clamped to at least 1.
	Stride int
}

// Name implements core.Builder.
func (Builder) Name() string { return "Wormhole" }

// Build implements core.Builder.
func (b Builder) Build(keys []core.Key) (core.Index, error) {
	n := len(keys)
	if n == 0 {
		return nil, errors.New("wormhole: empty key set")
	}
	stride := b.Stride
	if stride < 1 {
		stride = 1
	}
	idx := &Index{n: n, stride: stride, meta: make(map[string]span)}
	for i := 0; i < n; i += stride {
		idx.subset = append(idx.subset, keys[i])
	}
	nLeaves := (len(idx.subset) + LeafSize - 1) / LeafSize
	idx.anchors = make([]core.Key, nLeaves)
	for l := 0; l < nLeaves; l++ {
		idx.anchors[l] = idx.subset[l*LeafSize]
	}
	// Register every anchor prefix with the leaf range it spans.
	var kb [keyLen]byte
	for l, a := range idx.anchors {
		binary.BigEndian.PutUint64(kb[:], a)
		for plen := 0; plen <= keyLen; plen++ {
			p := string(kb[:plen])
			if s, ok := idx.meta[p]; ok {
				if int32(l) < s.lo {
					s.lo = int32(l)
				}
				if int32(l) > s.hi {
					s.hi = int32(l)
				}
				idx.meta[p] = s
			} else {
				idx.meta[p] = span{int32(l), int32(l)}
			}
		}
	}
	return idx, nil
}

// leafFor returns the index of the last anchor <= x (the leaf whose
// key range contains x), or -1 when x precedes every anchor.
func (idx *Index) leafFor(x core.Key) int {
	var kb [keyLen]byte
	binary.BigEndian.PutUint64(kb[:], x)
	// Binary search the longest anchor prefix of x present in the meta
	// hash. Prefix presence is monotone in length.
	lo, hi := 0, keyLen // known-present, first-unknown
	var best span
	best = idx.meta[""]
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if s, ok := idx.meta[string(kb[:mid])]; ok {
			best = s
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	// The target leaf is within [best.lo-1, best.hi]: anchors sharing
	// the longest prefix, plus the one just before them.
	alo := int(best.lo) - 1
	if alo < 0 {
		alo = 0
	}
	ahi := int(best.hi)
	// Binary search for the last anchor <= x.
	for alo < ahi {
		mid := (alo + ahi + 1) / 2
		if idx.anchors[mid] <= x {
			alo = mid
		} else {
			ahi = mid - 1
		}
	}
	if idx.anchors[alo] > x {
		return -1
	}
	return alo
}

// Lookup implements core.Index.
func (idx *Index) Lookup(key core.Key) core.Bound {
	leaf := idx.leafFor(key)
	if leaf < 0 {
		return core.Bound{Lo: 0, Hi: 1}.Clamp(idx.n)
	}
	// Binary search inside the leaf for the first subset key >= x.
	start := leaf * LeafSize
	end := start + LeafSize
	if end > len(idx.subset) {
		end = len(idx.subset)
	}
	lo, hi := start, end
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if idx.subset[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// lo is the subset ceiling index (possibly the start of the next
	// leaf, or len(subset) when x exceeds every subset key). Duplicate
	// data keys can duplicate anchors across leaves, in which case the
	// global first-occurrence ceiling sits in an earlier leaf: walk
	// back to it (bounded by the duplicate run length; benchmark
	// datasets have unique keys).
	for lo > 0 && idx.subset[lo-1] >= key {
		lo--
	}
	m := len(idx.subset)
	switch {
	case lo == 0:
		return core.Bound{Lo: 0, Hi: 1}
	case lo == m:
		return core.Bound{Lo: (m-1)*idx.stride + 1, Hi: idx.n}.Clamp(idx.n)
	default:
		b := core.Bound{Lo: (lo-1)*idx.stride + 1, Hi: lo*idx.stride + 1}
		return b.Clamp(idx.n)
	}
}

// SizeBytes implements core.Index: subset keys, anchors, and the meta
// hash (per entry: string header+bytes, span, and map overhead).
func (idx *Index) SizeBytes() int {
	metaEntry := 16 + 8 + 8 + 16 // string header + avg prefix + span + bucket overhead
	return len(idx.subset)*8 + len(idx.anchors)*8 + len(idx.meta)*metaEntry
}

// Name implements core.Index.
func (idx *Index) Name() string { return "Wormhole" }

// NumLeaves reports the leaf count.
func (idx *Index) NumLeaves() int { return len(idx.anchors) }
