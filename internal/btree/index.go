package btree

import (
	"errors"

	"repro/internal/core"
)

// Index adapts Tree to the benchmark's core.Index contract using the
// paper's subset-insertion size knob: every Stride-th key of the data
// is inserted, so bounds have width at most Stride.
type Index struct {
	tree   *Tree[core.Key]
	n      int
	stride int
	name   string
}

// Builder builds B+tree indexes with a fixed stride.
type Builder struct {
	// Stride inserts every Stride-th key (1 = every key, maximum size
	// and accuracy). Clamped to at least 1.
	Stride int
	// Interpolate selects in-node interpolation search (IBTree).
	Interpolate bool
}

// Name implements core.Builder.
func (b Builder) Name() string {
	if b.Interpolate {
		return "IBTree"
	}
	return "BTree"
}

// Build implements core.Builder.
func (b Builder) Build(keys []core.Key) (core.Index, error) {
	n := len(keys)
	if n == 0 {
		return nil, errors.New("btree: empty key set")
	}
	stride := b.Stride
	if stride < 1 {
		stride = 1
	}
	subsetKeys := make([]core.Key, 0, n/stride+1)
	subsetVals := make([]int32, 0, n/stride+1)
	for i := 0; i < n; i += stride {
		subsetKeys = append(subsetKeys, keys[i])
		subsetVals = append(subsetVals, int32(i))
	}
	t, err := NewTree(subsetKeys, subsetVals, b.Interpolate)
	if err != nil {
		return nil, err
	}
	return &Index{tree: t, n: n, stride: stride, name: b.Name()}, nil
}

// Lookup implements core.Index.
func (idx *Index) Lookup(key core.Key) core.Bound {
	ceilPos, found, predPos, predOK := idx.tree.Ceiling(key)
	lo := 0
	if predOK {
		lo = int(predPos) + 1
	}
	hi := idx.n
	if found {
		hi = int(ceilPos) + 1
	}
	if hi > idx.n {
		hi = idx.n
	}
	if lo > hi {
		lo = hi
	}
	return core.Bound{Lo: lo, Hi: hi}
}

// SizeBytes implements core.Index.
func (idx *Index) SizeBytes() int { return idx.tree.SizeBytes() }

// Name implements core.Index.
func (idx *Index) Name() string { return idx.name }

// Height exposes the underlying tree height (one cache miss per level
// in the paper's cost discussion).
func (idx *Index) Height() int { return idx.tree.Height() }

// Stride returns the subset stride the index was built with.
func (idx *Index) Stride() int { return idx.stride }

// PathIDs exposes the node-id descent path for the performance-counter
// simulation.
func (idx *Index) PathIDs(key core.Key, dst []int32) []int32 {
	return idx.tree.PathIDs(key, dst)
}

// NumNodes reports the underlying tree's node count.
func (idx *Index) NumNodes() int { return idx.tree.NumNodes() }

// NodeKeys reports the per-node key capacity (for size modelling).
func (idx *Index) NodeKeys() int { return fanout }
