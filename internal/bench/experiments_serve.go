package bench

// The serving-layer experiment: not a figure from the paper, but the
// end-to-end scenario the ROADMAP grows toward — full key→payload
// lookups through the table layer, batched, and sharded across cores.
// It quantifies what each serving-layer mechanism buys on top of the
// paper's bare bound-prediction microbenchmarks.

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/report"
	"repro/internal/search"
	"repro/internal/serve"
)

func init() {
	Register(Experiment{"serve", "serving layer: batched table lookups + sharded store sweep", serveSweep})
}

// ServeBatchSize is the default lookup batch size of the serving
// experiments: large enough to amortize the per-batch passes, small
// enough to be a realistic request size.
const ServeBatchSize = 256

// MeasureServeThroughput drives clients goroutines, each pushing the
// environment's lookup workload through st.GetBatch in batches of
// batch keys; the result is aggregate lookups per second.
func MeasureServeThroughput(e *Env, st *serve.Store, clients, batch int) float64 {
	if clients < 1 {
		clients = 1
	}
	if batch < 1 {
		batch = ServeBatchSize
	}
	run := func(tid int) {
		out := make([]uint64, batch)
		n := len(e.Lookups)
		off := (tid * 7919) % n // stagger clients across the workload
		for done := 0; done < n; {
			lo := (off + done) % n
			hi := lo + batch
			if hi > n {
				hi = n
			}
			chunk := e.Lookups[lo:hi]
			st.GetBatch(chunk, out[:len(chunk)])
			done += len(chunk)
		}
	}
	run(0) // warm caches and fault pages before timing
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < clients; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			run(tid)
		}(t)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	return float64(clients*len(e.Lookups)) / elapsed
}

// serveSweep reports the serving-layer experiment: per-key vs batched
// table lookups per family, then sharded-store throughput across shard
// counts and client counts.
func serveSweep(r *Run) ([]report.Table, error) {
	e, err := r.Env(dataset.Amzn)
	if err != nil {
		return nil, err
	}
	families := r.Families(registry.ServeFamilies)

	batchedT := report.New("serve", "Serving layer: Table batched lookups (amzn, mid-sweep configs)").
		Dims("index").
		Float("per-key(ns)", "ns", 1).
		Float("batched(ns)", "ns", 1).
		Float("speedup", "x", 2)
	for _, family := range families {
		nb, ok := registry.Builder(family, e.Keys)
		if !ok {
			continue
		}
		idx, err := nb.Builder.Build(e.Keys)
		if err != nil {
			continue
		}
		t := e.Table(idx, search.BinarySearch)
		perKey := MeasureWarm(e, idx, search.BinarySearch)
		batched := MeasureWarmBatch(e, t, ServeBatchSize)
		if batched.Checksum != perKey.Checksum {
			return nil, fmt.Errorf("serve: %s batched checksum mismatch", family)
		}
		batchedT.Row([]string{family},
			perKey.NsPerLookup, batched.NsPerLookup, perKey.NsPerLookup/batched.NsPerLookup)
	}

	shardedT := report.New("serve", "Sharded store: concurrent GetBatch throughput (amzn)").
		Dims("index", "shards", "clients").
		Float("Mlookups/s", "M/s", 2)
	for _, family := range families {
		for _, shards := range []int{1, 4, 8} {
			// Full observability wiring at default sampling: perfgate
			// runs this sweep, so the gate measures the instrumented
			// path, not a metrics-free special case.
			reg := obs.NewRegistry()
			st, err := serve.New(e.Keys, e.Payloads, serve.Config{
				Shards: shards, Family: family,
				Metrics: reg,
				Journal: obs.NewJournal(obs.DefaultJournalCap),
				Tracer:  obs.NewTracer(reg, obs.DefaultTraceEvery),
			})
			if err != nil {
				return nil, err
			}
			for _, clients := range []int{1, 4, 8} {
				tp := MeasureServeThroughput(e, st, clients, ServeBatchSize)
				shardedT.Row([]string{family, strconv.Itoa(st.NumShards()), strconv.Itoa(clients)}, tp/1e6)
			}
			st.Close()
		}
	}
	return []report.Table{*batchedT, *shardedT}, nil
}
