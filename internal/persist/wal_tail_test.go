package persist

import (
	"os"
	"path/filepath"
	"testing"
)

func tailTestOps(n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{Key: uint64(i * 7), Val: uint64(i) | 1, Tomb: i%5 == 0}
	}
	return ops
}

func TestWALTailFrom(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.wal")
	seed := tailTestOps(10)
	w, err := CreateWAL(path, seed)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appended := tailTestOps(2500)[10:] // distinct suffix past the seed
	for _, op := range appended {
		if err := w.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	all := append(append([]Op(nil), seed...), appended...)
	if w.Records() != len(all) {
		t.Fatalf("Records() = %d, want %d", w.Records(), len(all))
	}

	for _, from := range []int{0, 1, 10, 1024, 1025, len(all) - 1, len(all), len(all) + 5, -3} {
		got, err := w.TailFrom(from)
		if err != nil {
			t.Fatalf("TailFrom(%d): %v", from, err)
		}
		lo := from
		if lo < 0 {
			lo = 0
		}
		if lo > len(all) {
			lo = len(all)
		}
		want := all[lo:]
		if len(got) != len(want) {
			t.Fatalf("TailFrom(%d): %d ops, want %d", from, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("TailFrom(%d): op %d = %+v, want %+v", from, i, got[i], want[i])
			}
		}
	}

	// The standalone reader sees the same records through its own
	// descriptor while the WAL is still open for appends.
	got, err := TailWAL(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(all)-100 || got[0] != all[100] {
		t.Fatalf("TailWAL(100): %d ops (first %+v), want %d (first %+v)",
			len(got), got[0], len(all)-100, all[100])
	}
}

func TestWALTailTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.wal")
	w, err := CreateWAL(path, tailTestOps(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record in half and corrupt the one before it: the
	// tail readers must stop cleanly at record 6, like ReplayWAL.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[walHeaderLen+6*walRecordLen+4] ^= 0xff             // corrupt record 6's key
	torn := data[:walHeaderLen+7*walRecordLen+walRecordLen/2] // record 7 half-written
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	ops, err := TailWAL(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 6 {
		t.Fatalf("TailWAL over torn log: %d ops, want 6", len(ops))
	}
	ops, err = TailWAL(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 {
		t.Fatalf("TailWAL(4) over torn log: %d ops, want 2", len(ops))
	}
	// Reads entirely inside the corrupt region see nothing.
	ops, err = TailWAL(path, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 0 {
		t.Fatalf("TailWAL(6) over torn log: %d ops, want 0", len(ops))
	}
}

func TestWALTailBadHeader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.wal")
	if err := os.WriteFile(path, []byte("notawal!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := TailWAL(path, 0); err == nil {
		t.Fatal("TailWAL accepted a file shorter than the header")
	}
	if err := os.WriteFile(path, []byte("sosdXXX90123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := TailWAL(path, 0); err == nil {
		t.Fatal("TailWAL accepted a bad magic")
	}
}
