// Package perfsim simulates the performance counters the paper reads
// from hardware (Section 4.3): last-level cache misses via a
// set-associative LRU cache model, branch mispredictions via a 2-bit
// saturating predictor, and instruction counts via a per-operation
// cost model. Traced index wrappers replay each structure's lookup
// path against a Machine, reproducing the paper's counter profiles
// (B-Trees: one miss per level; two-stage RMIs: at most two inference
// misses plus last-mile misses; PGM: one miss per level; hash tables:
// one or two probe misses) without PMU access, which Go's standard
// library does not provide. See DESIGN.md substitution 3.
package perfsim

import "fmt"

// Config sizes the simulated memory hierarchy. The defaults model a
// modest last-level cache so that laptop-scale datasets exhibit the
// same cached-index/uncached-data split as the paper's 200M-key runs.
type Config struct {
	CacheBytes int // total capacity; default 4 MiB
	LineBytes  int // cache line size; default 64
	Ways       int // associativity; default 16
}

func (c Config) withDefaults() Config {
	if c.CacheBytes == 0 {
		c.CacheBytes = 4 << 20
	}
	if c.LineBytes == 0 {
		c.LineBytes = 64
	}
	if c.Ways == 0 {
		c.Ways = 16
	}
	return c
}

// Counters accumulates simulated performance events.
type Counters struct {
	Accesses     uint64
	CacheMisses  uint64
	Branches     uint64
	BranchMisses uint64
	Instructions uint64
}

// Sub returns c - o, for per-interval measurement.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		Accesses:     c.Accesses - o.Accesses,
		CacheMisses:  c.CacheMisses - o.CacheMisses,
		Branches:     c.Branches - o.Branches,
		BranchMisses: c.BranchMisses - o.BranchMisses,
		Instructions: c.Instructions - o.Instructions,
	}
}

// String implements fmt.Stringer.
func (c Counters) String() string {
	return fmt.Sprintf("acc=%d miss=%d br=%d brmiss=%d instr=%d",
		c.Accesses, c.CacheMisses, c.Branches, c.BranchMisses, c.Instructions)
}

// Region is a handle to a simulated memory allocation.
type Region struct {
	base uint64
	size int
}

// Machine is a simulated memory hierarchy plus branch predictor.
type Machine struct {
	cfg     Config
	nSets   int
	lineSz  uint64
	tags    [][]uint64 // per set, per way: line tag (0 = empty)
	ticks   [][]uint64 // per set, per way: last-touch tick for LRU
	tick    uint64
	nextMem uint64
	branch  []uint8 // 2-bit saturating counters
	ctr     Counters
}

// New builds a machine with the given configuration.
func New(cfg Config) *Machine {
	cfg = cfg.withDefaults()
	nSets := cfg.CacheBytes / cfg.LineBytes / cfg.Ways
	if nSets < 1 {
		nSets = 1
	}
	m := &Machine{
		cfg:     cfg,
		nSets:   nSets,
		lineSz:  uint64(cfg.LineBytes),
		tags:    make([][]uint64, nSets),
		ticks:   make([][]uint64, nSets),
		nextMem: uint64(cfg.LineBytes), // keep tag 0 meaning "empty"
		branch:  make([]uint8, 4096),
	}
	for s := range m.tags {
		m.tags[s] = make([]uint64, cfg.Ways)
		m.ticks[s] = make([]uint64, cfg.Ways)
	}
	return m
}

// Alloc reserves a region of the simulated address space, aligned to a
// cache line.
func (m *Machine) Alloc(size int) Region {
	if size < 1 {
		size = 1
	}
	r := Region{base: m.nextMem, size: size}
	aligned := (uint64(size) + m.lineSz - 1) / m.lineSz * m.lineSz
	m.nextMem += aligned + m.lineSz // one-line gap between regions
	return r
}

// Access touches [offset, offset+size) of the region, counting one
// instruction (a load) and probing the cache for every spanned line.
func (m *Machine) Access(r Region, offset, size int) {
	if size < 1 {
		size = 1
	}
	m.ctr.Instructions++
	first := (r.base + uint64(offset)) / m.lineSz
	last := (r.base + uint64(offset) + uint64(size) - 1) / m.lineSz
	for line := first; line <= last; line++ {
		m.touchLine(line)
	}
}

func (m *Machine) touchLine(line uint64) {
	m.ctr.Accesses++
	m.tick++
	set := int(line % uint64(m.nSets))
	tags := m.tags[set]
	for w, t := range tags {
		if t == line {
			m.ticks[set][w] = m.tick
			return
		}
	}
	// Miss: evict the LRU way.
	m.ctr.CacheMisses++
	lru, lruTick := 0, m.ticks[set][0]
	for w := 1; w < len(tags); w++ {
		if m.ticks[set][w] < lruTick {
			lru, lruTick = w, m.ticks[set][w]
		}
	}
	tags[lru] = line
	m.ticks[set][lru] = m.tick
}

// Branch records a conditional branch at the given site with the given
// outcome, consulting a 2-bit saturating predictor.
func (m *Machine) Branch(site uint32, taken bool) {
	m.ctr.Branches++
	m.ctr.Instructions++
	idx := site & uint32(len(m.branch)-1)
	state := m.branch[idx]
	predictTaken := state >= 2
	if predictTaken != taken {
		m.ctr.BranchMisses++
	}
	if taken && state < 3 {
		m.branch[idx] = state + 1
	} else if !taken && state > 0 {
		m.branch[idx] = state - 1
	}
}

// Instr counts n ALU instructions.
func (m *Machine) Instr(n int) { m.ctr.Instructions += uint64(n) }

// FlushCache empties the cache (the cold-cache experiments).
func (m *Machine) FlushCache() {
	for s := range m.tags {
		for w := range m.tags[s] {
			m.tags[s][w] = 0
			m.ticks[s][w] = 0
		}
	}
}

// Counters returns the accumulated counters.
func (m *Machine) Counters() Counters { return m.ctr }

// ResetCounters zeroes the counters, keeping cache and predictor state
// (so a warm-up pass can precede measurement).
func (m *Machine) ResetCounters() { m.ctr = Counters{} }
