package serve

import (
	"bytes"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/registry"
)

// checkOracle verifies the store's full read surface — Get, GetBatch,
// GetBatchFound, Scan/Range order and content, Len — against a map
// oracle over the given key universe (distinct keys).
func checkOracle(t *testing.T, st *Store, oracle map[core.Key]uint64, universe []core.Key, stage string) {
	t.Helper()
	for _, x := range universe {
		wantV, wantOK := oracle[x]
		gotV, gotOK := st.Get(x)
		if gotOK != wantOK || (wantOK && gotV != wantV) {
			t.Fatalf("%s: Get(%d) = (%d,%v), want (%d,%v)", stage, x, gotV, gotOK, wantV, wantOK)
		}
	}
	out := make([]uint64, len(universe))
	found := make([]bool, len(universe))
	n := st.GetBatchFound(universe, out, found)
	if n != len(oracle) {
		t.Fatalf("%s: GetBatchFound found %d, want %d", stage, n, len(oracle))
	}
	for i, x := range universe {
		wantV, wantOK := oracle[x]
		if found[i] != wantOK || (wantOK && out[i] != wantV) {
			t.Fatalf("%s: GetBatchFound key %d -> (%d,%v), want (%d,%v)", stage, x, out[i], found[i], wantV, wantOK)
		}
	}
	if st.Len() != len(oracle) {
		t.Fatalf("%s: Len = %d, want %d", stage, st.Len(), len(oracle))
	}
	ks, vs := st.Range(0, ^core.Key(0))
	wantN := len(oracle)
	if _, hasMax := oracle[^core.Key(0)]; hasMax {
		wantN--
	}
	if len(ks) != wantN {
		t.Fatalf("%s: Range returned %d pairs, want %d", stage, len(ks), wantN)
	}
	for i := range ks {
		if i > 0 && ks[i] <= ks[i-1] {
			t.Fatalf("%s: Range keys not strictly ascending at %d", stage, i)
		}
		if want := oracle[ks[i]]; vs[i] != want {
			t.Fatalf("%s: Range key %d -> %d, want %d", stage, ks[i], vs[i], want)
		}
	}
}

// TestTieredRunsOracle drives the tiered write path explicitly: a low
// threshold stacks several flushed runs per shard, deletions land as
// tombstones in runs newer than the base pairs they shadow, and the
// full read surface is checked against a map oracle while the shards
// are dirty (multiple runs plus a pending delta), after the background
// tier merges, and after a forced full merge back to one run.
func TestTieredRunsOracle(t *testing.T) {
	for _, family := range []string{"PGM", "BTree"} {
		t.Run(family, func(t *testing.T) {
			keys, payloads := testData(t, 8000)
			st, err := New(keys, payloads, Config{
				Shards: 2, Family: family, CompactThreshold: 64, MaxRuns: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			oracle := make(map[core.Key]uint64, len(keys))
			for i, k := range keys {
				oracle[k] = payloads[i]
			}
			inserts := dataset.InsertKeys(keys, 3000, 5)
			universe := append(append([]core.Key{}, keys...), inserts...)

			// Interleave inserts with deletions of base keys so flushed
			// runs carry tombstones shadowing pairs in older runs.
			for i, k := range inserts {
				st.Put(k, uint64(i)+1)
				oracle[k] = uint64(i) + 1
				if i%3 == 0 {
					victim := keys[(i*7)%len(keys)]
					st.Delete(victim)
					delete(oracle, victim)
				}
			}
			st.WaitCompactions()
			if st.Flushes() == 0 {
				t.Fatal("no delta flushes despite tiering enabled and threshold crossed")
			}
			if st.MaxRunCount() < 2 {
				t.Fatalf("max run count %d, want >= 2 (tiering never stacked a run)", st.MaxRunCount())
			}
			for i := 0; i < st.NumShards(); i++ {
				if n := st.RunCount(i); n > st.cfg.MaxRuns+1 {
					t.Fatalf("shard %d holds %d runs, policy bound %d", i, n, st.cfg.MaxRuns)
				}
			}

			// Dirty check: runs plus a fresh pending delta on top.
			for i := 0; i < 40; i++ {
				k := inserts[i*17%len(inserts)]
				st.Put(k, uint64(i)<<20|3)
				oracle[k] = uint64(i)<<20 | 3
			}
			checkOracle(t, st, oracle, universe, "dirty")

			st.WaitCompactions()
			checkOracle(t, st, oracle, universe, "post-flush")

			if err := st.Compact(); err != nil {
				t.Fatal(err)
			}
			if st.DeltaLen() != 0 {
				t.Fatalf("DeltaLen = %d after Compact", st.DeltaLen())
			}
			for i := 0; i < st.NumShards(); i++ {
				if n := st.RunCount(i); n != 1 {
					t.Fatalf("shard %d holds %d runs after Compact, want 1", i, n)
				}
				if st.Shard(i).HasTombs() {
					t.Fatalf("shard %d base carries tombstones after full merge", i)
				}
			}
			checkOracle(t, st, oracle, universe, "post-merge")
		})
	}
}

// TestTombstoneShadowsOlderRuns pins the shadowing precedence across
// run boundaries deterministically: a pair in the base run is deleted
// (tombstone flushed into a newer run), must read as absent through
// every read path, and a still newer re-insert must win again.
func TestTombstoneShadowsOlderRuns(t *testing.T) {
	keys, payloads := testData(t, 4000)
	st, err := New(keys, payloads, Config{
		Shards: 1, Family: "PGM", CompactThreshold: 32, MaxRuns: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	victim := keys[len(keys)/2]

	st.Delete(victim)
	// Pad the delta past the threshold so the tombstone flushes into a
	// tier run above the base.
	pad := dataset.InsertKeys(keys, 64, 9)
	for i, k := range pad {
		st.Put(k, uint64(i)+100)
	}
	st.WaitCompactions()
	if st.RunCount(0) < 2 {
		t.Fatalf("run count %d, want >= 2", st.RunCount(0))
	}
	if st.DeltaLen() != 0 {
		t.Fatalf("delta not flushed: %d pending", st.DeltaLen())
	}

	if _, ok := st.Get(victim); ok {
		t.Fatal("tombstone in newer run did not shadow base pair (Get)")
	}
	out := make([]uint64, 1)
	fb := make([]bool, 1)
	if n := st.GetBatchFound([]core.Key{victim}, out, fb); n != 0 || fb[0] {
		t.Fatal("tombstone in newer run did not shadow base pair (GetBatchFound)")
	}
	st.Scan(victim, victim+1, func(k core.Key, _ uint64) bool {
		if k == victim {
			t.Fatal("tombstone in newer run did not shadow base pair (Scan)")
		}
		return true
	})

	// A newer re-insert shadows the tombstone in turn.
	st.Put(victim, 4242)
	if v, ok := st.Get(victim); !ok || v != 4242 {
		t.Fatalf("re-insert above tombstone = (%d,%v), want (4242,true)", v, ok)
	}
	for i, k := range pad {
		st.Put(k, uint64(i)+500) // flush the re-insert into its own run
	}
	st.WaitCompactions()
	if v, ok := st.Get(victim); !ok || v != 4242 {
		t.Fatalf("re-insert after flush = (%d,%v), want (4242,true)", v, ok)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if v, ok := st.Get(victim); !ok || v != 4242 {
		t.Fatalf("re-insert after full merge = (%d,%v), want (4242,true)", v, ok)
	}
}

// TestTieredMixedRace is TestMixedRace with the tiering policy active
// and aggressive: concurrent writers, batch readers, and scanners race
// flushes, minor merges, and major merges. Run under -race this is the
// tiered write path's safety test.
func TestTieredMixedRace(t *testing.T) {
	keys, payloads := testData(t, 6000)
	st, err := New(keys, payloads, Config{
		Shards: 4, Family: "PGM", CompactThreshold: 96, MaxRuns: 3, AmpBound: 1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const writers = 4
	const readers = 3
	inserts := dataset.InsertKeys(keys, 2000, 78)
	var wg sync.WaitGroup
	errs := make(chan string, writers+readers+1)

	for c := 0; c < writers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				for i := c; i < len(inserts); i += writers {
					st.Put(inserts[i], uint64(rep)<<32|uint64(i))
				}
				// Churn deletes and re-inserts on owned insert keys so
				// tombstones cross run boundaries mid-race.
				for i := c; i < len(inserts); i += 4 * writers {
					st.Delete(inserts[i])
					st.Put(inserts[i], uint64(rep)<<32|uint64(i))
				}
			}
		}(c)
	}
	for c := 0; c < readers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			probes := dataset.Lookups(keys, 512, uint64(c+41))
			out := make([]uint64, len(probes))
			for rep := 0; rep < 30; rep++ {
				if found := st.GetBatch(probes, out); found != len(probes) {
					errs <- "batch lost a base key (never deleted)"
					return
				}
				for _, x := range probes[:8] {
					if _, ok := st.Get(x); !ok {
						errs <- "point read lost a base key"
						return
					}
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for rep := 0; rep < 10; rep++ {
			prev := core.Key(0)
			first := true
			st.Scan(0, ^core.Key(0), func(k core.Key, _ uint64) bool {
				if !first && k <= prev {
					errs <- "scan keys not strictly ascending"
					return false
				}
				first, prev = false, k
				return true
			})
		}
	}()
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	st.WaitCompactions()
	if st.Flushes() == 0 {
		t.Error("race workload never flushed a tier run")
	}

	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	for i, k := range inserts {
		want := uint64(2)<<32 | uint64(i)
		if v, ok := st.Get(k); !ok || v != want {
			t.Fatalf("insert %d = (%d,%v), want (%d,true)", k, v, ok, want)
		}
	}
	if st.Len() != len(keys)+len(inserts) {
		t.Fatalf("Len = %d, want %d", st.Len(), len(keys)+len(inserts))
	}
}

// gatedBuilder wraps a real builder and, while armed, parks every
// Build call on a gate channel (announcing itself on entered first) —
// a deterministic stand-in for a slow learned-index re-tune.
type gatedBuilder struct {
	inner   core.Builder
	armed   *atomic.Bool
	entered chan struct{}
	gate    chan struct{}
}

func (g gatedBuilder) Build(keys []core.Key) (core.Index, error) {
	if g.armed.Load() {
		g.entered <- struct{}{}
		<-g.gate
	}
	return g.inner.Build(keys)
}

func (g gatedBuilder) Name() string { return g.inner.Name() }

func newGatedStore(t *testing.T, shards, threshold int) (*Store, []core.Key, gatedBuilder) {
	t.Helper()
	keys, payloads := testData(t, 4000)
	g := gatedBuilder{
		armed:   &atomic.Bool{},
		entered: make(chan struct{}, 64),
		gate:    make(chan struct{}),
	}
	st, err := New(keys, payloads, Config{
		Shards:           shards,
		CompactThreshold: threshold,
		MaxRuns:          1, // classic mode: every compaction rebuilds through the builder
		BuilderFor: func(shard int, ks []core.Key) (core.Builder, error) {
			nb, _ := registry.Builder("RBS", ks)
			return gatedBuilder{inner: nb.Builder, armed: g.armed, entered: g.entered, gate: g.gate}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return st, keys, g
}

// waitGoroutineState polls the full goroutine dump until some
// goroutine whose stack contains fn is in the wanted state, returning
// its header line; it fails the test on timeout.
func waitGoroutineState(t *testing.T, fn, want string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	buf := make([]byte, 1<<20)
	var last string
	for time.Now().Before(deadline) {
		n := runtime.Stack(buf, true)
		for _, blk := range bytes.Split(buf[:n], []byte("\n\n")) {
			if !bytes.Contains(blk, []byte(fn)) {
				continue
			}
			header := string(blk[:bytes.IndexByte(blk, '\n')])
			last = header
			if bytes.Contains([]byte(header), []byte(want)) {
				return header
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("no goroutine in %s reached state %q (last seen: %q)", fn, want, last)
	return ""
}

// TestWaitCompactionsParksNotSpins: a WaitCompactions caller blocked
// behind a slow index rebuild must be parked on a condition variable —
// goroutine state [sync.Cond.Wait] — not burning a core in a
// Gosched/poll loop (state [runnable]). The rebuild is held on a gate
// so the window is arbitrarily wide and the check deterministic.
func TestWaitCompactionsParksNotSpins(t *testing.T) {
	st, keys, g := newGatedStore(t, 1, 8)
	defer st.Close()

	g.armed.Store(true)
	for i := 0; i < 8; i++ {
		st.Put(keys[i*13], uint64(i)+1)
	}
	<-g.entered // the background rebuild is now parked on the gate

	done := make(chan struct{})
	go func() {
		st.WaitCompactions()
		close(done)
	}()
	waitGoroutineState(t, "WaitCompactions", "[sync.Cond.Wait")
	select {
	case <-done:
		t.Fatal("WaitCompactions returned while a compaction was still in flight")
	default:
	}

	g.armed.Store(false)
	close(g.gate)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("WaitCompactions never woke after the compaction finished")
	}
	if st.DeltaLen() != 0 {
		t.Fatalf("delta not drained: %d", st.DeltaLen())
	}
}

// TestCompactionLivenessWhenWritesStop: compaction requests issued
// while the compactor is busy must survive with no further writes to
// re-fire them. The old channel-based queue dropped the request on a
// full channel and cleared the queued flag, so a shard whose writes
// stopped right after crossing the threshold was never compacted.
func TestCompactionLivenessWhenWritesStop(t *testing.T) {
	st, keys, g := newGatedStore(t, 4, 8)
	defer st.Close()

	// Park the compactor inside shard 0's rebuild.
	g.armed.Store(true)
	st.Put(keys[0], 1)
	for i := 0; i < 8; i++ {
		st.Put(keys[i*3+1], uint64(i)+1) // shard 0 spans the low keys
	}
	<-g.entered

	// Push the other shards past the threshold while the compactor is
	// busy, then stop writing entirely.
	for sh := 1; sh < st.NumShards(); sh++ {
		lo := st.seps[sh]
		for i := 0; i < 9; i++ {
			st.Put(lo+core.Key(i), uint64(sh)<<16|uint64(i))
		}
	}

	g.armed.Store(false)
	close(g.gate)
	st.WaitCompactions()
	if got := st.DeltaLen(); got != 0 {
		t.Fatalf("deltas still pending after WaitCompactions with no further writes: %d", got)
	}
	if st.Compactions() < uint64(st.NumShards()) {
		t.Fatalf("only %d compactions for %d over-threshold shards", st.Compactions(), st.NumShards())
	}
}

// TestCloseDrainsCompactionQueue: requests accepted before Close must
// complete (the compactor drains its queue before exiting), and
// requests after Close are refused rather than accepted-and-dropped.
func TestCloseDrainsCompactionQueue(t *testing.T) {
	st, keys, g := newGatedStore(t, 4, 8)

	g.armed.Store(true)
	for i := 0; i < 9; i++ {
		st.Put(keys[i*3], uint64(i)+1)
	}
	<-g.entered
	for sh := 1; sh < st.NumShards(); sh++ {
		lo := st.seps[sh]
		for i := 0; i < 9; i++ {
			st.Put(lo+core.Key(i), uint64(sh)<<16|uint64(i))
		}
	}

	closed := make(chan struct{})
	go func() {
		st.Close()
		close(closed)
	}()
	// Close must block on the in-flight compaction, not abandon it.
	select {
	case <-closed:
		t.Fatal("Close returned while a compaction was parked on the gate")
	case <-time.After(50 * time.Millisecond):
	}
	g.armed.Store(false)
	close(g.gate)
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close never returned after the gate opened")
	}
	if got := st.DeltaLen(); got != 0 {
		t.Fatalf("queued compactions abandoned by Close: %d pending", got)
	}
}

// TestMinorMergeChosenWhenMajorExpensive: with measured major cost
// priced prohibitively high and minor cost near zero, a run-count
// trigger must consolidate the upper tiers only — base run untouched,
// tombstones preserved inside the merged tier run — and reads stay
// correct through and after the minor merge.
func TestMinorMergeChosenWhenMajorExpensive(t *testing.T) {
	keys, payloads := testData(t, 16000)
	st, err := New(keys, payloads, Config{
		Shards: 1, Family: "PGM", CompactThreshold: 32, MaxRuns: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.stats[0].majorNsPerKey.Store(math.Float64bits(1e9))
	st.stats[0].minorNsPerKey.Store(math.Float64bits(1))

	oracle := make(map[core.Key]uint64, len(keys))
	for i, k := range keys {
		oracle[k] = payloads[i]
	}
	base := st.Shard(0)
	ins := dataset.InsertKeys(keys, 200, 21)
	for i, k := range ins {
		st.Put(k, uint64(i)+1)
		oracle[k] = uint64(i) + 1
		if i%5 == 0 {
			victim := keys[(i*13)%len(keys)]
			st.Delete(victim)
			delete(oracle, victim)
		}
		if i%33 == 0 {
			st.WaitCompactions() // pace the flushes so runs stack one by one
		}
	}
	st.WaitCompactions()
	if st.MinorMerges() == 0 {
		t.Fatalf("no minor merge despite prohibitive major pricing (flushes=%d majors=%d runs=%d)",
			st.Flushes(), st.MajorMerges(), st.RunCount(0))
	}
	if st.MajorMerges() != 0 {
		t.Fatalf("%d major merges despite prohibitive pricing", st.MajorMerges())
	}
	if st.Shard(0) != base {
		t.Fatal("minor merges rewrote the base run")
	}
	universe := append(append([]core.Key{}, keys...), ins...)
	checkOracle(t, st, oracle, universe, "post-minor-merge")
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	checkOracle(t, st, oracle, universe, "post-full-merge")
}

// TestReadAmpTriggersMerge: a tiered shard whose writes stopped but
// whose reads keep paying multi-run probes past the amplification
// bound must get merged from the read path alone.
func TestReadAmpTriggersMerge(t *testing.T) {
	keys, payloads := testData(t, 16000)
	st, err := New(keys, payloads, Config{
		Shards: 1, Family: "PGM", CompactThreshold: 32, MaxRuns: 8, AmpBound: 1.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Stack a few tier runs, below the run-count bound.
	ins := dataset.InsertKeys(keys, 100, 31)
	for i, k := range ins {
		st.Put(k, uint64(i)+1)
		if i%33 == 0 {
			st.WaitCompactions()
		}
	}
	st.WaitCompactions()
	if st.RunCount(0) < 3 {
		t.Fatalf("run count %d, want >= 3", st.RunCount(0))
	}

	// Read-only from here: base-resolving keys pay one probe per run,
	// so measured amplification sits near the run count, far over 1.2.
	deadline := time.Now().Add(30 * time.Second)
	for st.RunCount(0) >= 3 {
		for i := 0; i < 2048; i++ {
			st.Get(keys[(i*37)%len(keys)])
		}
		st.WaitCompactions()
		if time.Now().After(deadline) {
			t.Fatalf("read amplification %.2f over bound never triggered a merge (runs=%d)",
				st.ReadAmp(), st.RunCount(0))
		}
	}
	if st.ReadAmp() <= 1 {
		t.Fatalf("multi-run reads not accounted: ReadAmp = %.2f", st.ReadAmp())
	}
	for i, k := range ins {
		if v, ok := st.Get(k); !ok || v != uint64(i)+1 {
			t.Fatalf("insert %d = (%d,%v) after amp merge", k, v, ok)
		}
	}
}
