package repl

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/net"
)

// Router defaults; see RouterConfig.
const (
	DefaultCheckEvery = 25 * time.Millisecond
	DefaultFailAfter  = 3
)

// RouterConfig configures a scatter/gather router.
type RouterConfig struct {
	// CheckEvery paces the monitor's liveness and lag polls. 0
	// defaults to DefaultCheckEvery.
	CheckEvery time.Duration

	// FailAfter is the consecutive failed primary polls before the
	// router declares the primary dead and promotes. 0 defaults to
	// DefaultFailAfter.
	FailAfter int

	// OnFailover, when non-nil, is called (from the monitor goroutine)
	// after a promotion completes, with the new primary's address.
	OnFailover func(addr string)
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.CheckEvery <= 0 {
		c.CheckEvery = DefaultCheckEvery
	}
	if c.FailAfter <= 0 {
		c.FailAfter = DefaultFailAfter
	}
	return c
}

// routerNode is one replica endpoint the router knows.
type routerNode struct {
	addr string
	c    *net.Client
	lag  atomic.Uint64 // ops behind the primary at the last poll
	dead atomic.Bool   // excluded from read routing after failover
}

// RouterStats is a snapshot of the router's routing accounting.
// Served+Shed == operations offered through the Try methods that
// reached a decision (errors after retry surface to the caller and
// count as neither).
type RouterStats struct {
	Served    uint64
	Shed      uint64
	Retries   uint64 // sub-calls re-routed to the primary after a replica error
	Failovers uint64
}

// Router fans reads across a replication topology and points writes at
// the primary. Reads route by key range: the store's shard separators
// (fetched once via MsgTopo) partition a batch into per-shard
// sub-batches, and a contiguous band of shards maps to each replica —
// the same range-affinity the store's own shards use, so a replica
// serves a stable working set. A monitor goroutine polls replication
// status; when the primary stops answering it promotes the
// most-caught-up follower and re-points writes, and reads route around
// replicas marked dead. The Router satisfies load.Target and
// load.ErrTarget, so the workload generators can drive a topology
// exactly as they drive one store.
type Router struct {
	cfg RouterConfig

	mu      sync.RWMutex
	nodes   []*routerNode
	primary int        // index into nodes
	seps    []core.Key // shard separators (seps[i] = first key of shard i)
	assign  []int      // shard -> node index

	served    atomic.Uint64
	shed      atomic.Uint64
	retries   atomic.Uint64
	failovers atomic.Uint64

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewRouter dials every address (addrs[primaryIdx] is the current
// primary), fetches the topology from the primary, and starts the
// failover monitor.
func NewRouter(addrs []string, primaryIdx int, cfg RouterConfig) (*Router, error) {
	if len(addrs) == 0 {
		return nil, errors.New("repl: router needs at least one address")
	}
	if primaryIdx < 0 || primaryIdx >= len(addrs) {
		return nil, fmt.Errorf("repl: primary index %d out of %d addresses", primaryIdx, len(addrs))
	}
	r := &Router{cfg: cfg.withDefaults(), primary: primaryIdx, stop: make(chan struct{})}
	for _, addr := range addrs {
		c, err := net.Dial(addr)
		if err != nil {
			for _, n := range r.nodes {
				_ = n.c.Close()
			}
			return nil, err
		}
		r.nodes = append(r.nodes, &routerNode{addr: addr, c: c})
	}
	seps, err := r.nodes[primaryIdx].c.Topo()
	if err != nil {
		for _, n := range r.nodes {
			_ = n.c.Close()
		}
		return nil, fmt.Errorf("repl: fetch topology: %w", err)
	}
	r.seps = seps
	r.assign = assignShards(len(seps), len(r.nodes))
	r.wg.Add(1)
	go r.monitor()
	return r, nil
}

// assignShards maps nShards contiguous shard ranges onto nNodes
// replicas: node k serves shards [k*S/N, (k+1)*S/N).
func assignShards(nShards, nNodes int) []int {
	assign := make([]int, nShards)
	for i := range assign {
		assign[i] = i * nNodes / nShards
	}
	return assign
}

// Close stops the monitor and every client connection.
func (r *Router) Close() error {
	close(r.stop)
	r.wg.Wait()
	var first error
	for _, n := range r.nodes {
		if err := n.c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats snapshots the routing accounting.
func (r *Router) Stats() RouterStats {
	return RouterStats{
		Served:    r.served.Load(),
		Shed:      r.shed.Load(),
		Retries:   r.retries.Load(),
		Failovers: r.failovers.Load(),
	}
}

// PrimaryAddr is the address writes currently route to.
func (r *Router) PrimaryAddr() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.nodes[r.primary].addr
}

// Lag reports each replica's ops-behind-primary at the last poll,
// keyed by address.
func (r *Router) Lag() map[string]uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]uint64, len(r.nodes))
	for _, n := range r.nodes {
		if !n.dead.Load() {
			out[n.addr] = n.lag.Load()
		}
	}
	return out
}

// shardOf mirrors serve.Store's routing: the shard whose separator is
// the greatest <= key (keys below every separator route to shard 0).
func (r *Router) shardOf(key core.Key, seps []core.Key) int {
	i := sort.Search(len(seps), func(i int) bool { return seps[i] > key })
	if i == 0 {
		return 0
	}
	return i - 1
}

// nodeFor picks the serving node for a shard under the read lock:
// its assigned replica, or the primary when that replica is dead.
func (r *Router) nodeFor(shard int) (*routerNode, *routerNode) {
	n := r.nodes[r.assign[shard]]
	pri := r.nodes[r.primary]
	if n.dead.Load() {
		n = pri
	}
	return n, pri
}

// TryGet routes one point lookup to the key's range replica, retrying
// once against the primary if the replica fails outright.
func (r *Router) TryGet(key core.Key) (uint64, bool, error) {
	r.mu.RLock()
	n, pri := r.nodeFor(r.shardOf(key, r.seps))
	r.mu.RUnlock()
	v, ok, err := n.c.Get(key)
	if err != nil && !errors.Is(err, net.ErrRetryLater) && n != pri {
		r.retries.Add(1)
		v, ok, err = pri.c.Get(key)
	}
	return v, ok, r.account(err)
}

// TryGetBatch scatters the batch by key range into per-replica
// sub-batches, gathers concurrently, and returns the total found. A
// failed sub-batch retries once on the primary; a shed anywhere sheds
// the whole batch (the caller retries it whole).
func (r *Router) TryGetBatch(keys []core.Key, out []uint64) (int, error) {
	if len(out) < len(keys) {
		return 0, errors.New("repl: router batch output shorter than key batch")
	}
	r.mu.RLock()
	seps := r.seps
	type bucket struct {
		node *routerNode
		idx  []int
		keys []core.Key
	}
	buckets := map[*routerNode]*bucket{}
	pri := r.nodes[r.primary]
	for i, k := range keys {
		n, _ := r.nodeFor(r.shardOf(k, seps))
		b := buckets[n]
		if b == nil {
			b = &bucket{node: n}
			buckets[n] = b
		}
		b.idx = append(b.idx, i)
		b.keys = append(b.keys, k)
	}
	r.mu.RUnlock()

	var wg sync.WaitGroup
	errs := make([]error, 0, len(buckets))
	var errMu sync.Mutex
	found := atomic.Int64{}
	for _, b := range buckets {
		wg.Add(1)
		go func(b *bucket) {
			defer wg.Done()
			sub := make([]uint64, len(b.keys))
			n, err := b.node.c.GetBatch(b.keys, sub)
			if err != nil && !errors.Is(err, net.ErrRetryLater) && b.node != pri {
				r.retries.Add(1)
				n, err = pri.c.GetBatch(b.keys, sub)
			}
			if err != nil {
				errMu.Lock()
				errs = append(errs, err)
				errMu.Unlock()
				return
			}
			for j, i := range b.idx {
				out[i] = sub[j]
			}
			found.Add(int64(n))
		}(b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, r.account(err)
		}
	}
	return int(found.Load()), r.account(nil)
}

// TryPut routes a write to the primary, retrying once after a
// re-check (a failover may have moved the primary under the call).
func (r *Router) TryPut(key core.Key, val uint64) error {
	r.mu.RLock()
	pri := r.nodes[r.primary]
	r.mu.RUnlock()
	err := pri.c.Put(key, val)
	if err != nil && !errors.Is(err, net.ErrRetryLater) {
		r.mu.RLock()
		pri2 := r.nodes[r.primary]
		r.mu.RUnlock()
		if pri2 != pri {
			r.retries.Add(1)
			err = pri2.c.Put(key, val)
		}
	}
	return r.account(err)
}

// account classifies one routed operation for the conservation law:
// every offered op is served, shed, or an explicit error.
func (r *Router) account(err error) error {
	switch {
	case err == nil:
		r.served.Add(1)
		return nil
	case errors.Is(err, net.ErrRetryLater):
		r.shed.Add(1)
		return err
	default:
		return err
	}
}

// Get, GetBatch, and Put complete the load.Target surface (the
// generators prefer the Try variants on an ErrTarget).
func (r *Router) Get(key core.Key) (uint64, bool) {
	v, ok, err := r.TryGet(key)
	if err != nil {
		return 0, false
	}
	return v, ok
}

func (r *Router) GetBatch(keys []core.Key, out []uint64) int {
	n, err := r.TryGetBatch(keys, out)
	if err != nil {
		return 0
	}
	return n
}

func (r *Router) Put(key core.Key, val uint64) { _ = r.TryPut(key, val) }

// monitor polls the primary's replication status every CheckEvery;
// FailAfter consecutive failures trigger a failover. Follower polls
// ride along to keep the lag view fresh.
func (r *Router) monitor() {
	defer r.wg.Done()
	tick := time.NewTicker(r.cfg.CheckEvery)
	defer tick.Stop()
	failures := 0
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
		}
		r.mu.RLock()
		pri := r.nodes[r.primary]
		r.mu.RUnlock()
		_, _, _, priSeqs, err := pri.c.ReplStat()
		if err != nil {
			failures++
			if failures >= r.cfg.FailAfter {
				r.failover(pri)
				failures = 0
			}
			continue
		}
		failures = 0
		var priSum uint64
		for _, q := range priSeqs {
			priSum += q
		}
		r.mu.RLock()
		nodes := append([]*routerNode(nil), r.nodes...)
		r.mu.RUnlock()
		for _, n := range nodes {
			if n == pri || n.dead.Load() {
				continue
			}
			if _, _, _, seqs, err := n.c.ReplStat(); err == nil {
				var sum uint64
				for _, q := range seqs {
					sum += q
				}
				if priSum > sum {
					n.lag.Store(priSum - sum)
				} else {
					n.lag.Store(0)
				}
			}
		}
	}
}

// failover marks the dead primary, asks every reachable follower for
// its position, promotes the most-caught-up one, and re-points the
// topology at it. On total failure (no follower answered) the dead
// primary stays primary and the next poll cycle retries.
func (r *Router) failover(dead *routerNode) {
	dead.dead.Store(true)
	type cand struct {
		node *routerNode
		sum  uint64
	}
	var best *cand
	r.mu.RLock()
	nodes := append([]*routerNode(nil), r.nodes...)
	r.mu.RUnlock()
	for _, n := range nodes {
		if n == dead || n.dead.Load() {
			continue
		}
		_, _, _, seqs, err := n.c.ReplStat()
		if err != nil {
			continue
		}
		var sum uint64
		for _, q := range seqs {
			sum += q
		}
		if best == nil || sum > best.sum {
			best = &cand{node: n, sum: sum}
		}
	}
	if best == nil {
		dead.dead.Store(false) // nothing to promote; keep trying the old primary
		return
	}
	if err := best.node.c.Promote(); err != nil {
		return
	}
	r.mu.Lock()
	for i, n := range r.nodes {
		if n == best.node {
			r.primary = i
			break
		}
	}
	r.mu.Unlock()
	r.failovers.Add(1)
	if r.cfg.OnFailover != nil {
		r.cfg.OnFailover(best.node.addr)
	}
}
