// SSTable scenario: the paper's motivating workload for read-only
// learned indexes (Section 1 cites LSM-trees whose immutable runs are
// "moving towards immutable read-only data structures").
//
// This example models one immutable sorted run of key/value pairs and
// serves point reads, short range scans, and batched reads through the
// table layer with three interchangeable indexes — a learned RMI, a
// PGM index, and a B+tree — comparing their footprints on the same
// data.
package main

import (
	"fmt"
	"log"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/pgm"
	"repro/internal/rmi"
	"repro/internal/search"
	"repro/internal/table"
)

func main() {
	const n = 500_000
	// Timestamps, as in a time-series ingest: the wiki generator.
	keys := dataset.MustGenerate(dataset.Wiki, n, 3)
	values := dataset.Payloads(n, 3)

	builders := []struct {
		name  string
		build func() (core.Index, error)
	}{
		{"RMI", func() (core.Index, error) {
			return rmi.New(keys, rmi.Tune(keys, 256<<10))
		}},
		{"PGM", func() (core.Index, error) { return pgm.New(keys, 64) }},
		{"BTree", func() (core.Index, error) { return btree.Builder{Stride: 16}.Build(keys) }},
	}

	for _, b := range builders {
		idx, err := b.build()
		if err != nil {
			log.Fatal(err)
		}
		run, err := table.New(keys, values, idx, search.BinarySearch)
		if err != nil {
			log.Fatal(err)
		}

		// Point reads of present and absent keys.
		hit, ok := run.Get(keys[n/3])
		if !ok {
			log.Fatalf("%s: present key missing", b.name)
		}
		if _, ok := run.Get(keys[n/3] + 1); ok {
			log.Fatalf("%s: absent key found", b.name)
		}

		// A short range scan, e.g. "all edits in a 10-minute window".
		lo := keys[n/2]
		hi := lo + 600_000 // 600s at millisecond resolution
		var sum uint64
		count := run.Scan(lo, hi, func(_ core.Key, v uint64) bool {
			sum += v
			return true
		})

		// A batched multi-get, as issued by an LSM read path that
		// collected one fetch list across memtable misses.
		batch := make([]core.Key, 0, 64)
		for i := 0; i < 64; i++ {
			batch = append(batch, keys[(n/64)*i])
		}
		got := make([]uint64, len(batch))
		foundInBatch := run.GetBatch(batch, got)

		fmt.Printf("%-6s index %8.1f KiB: point read=%#x, scan[%d keys] sum=%#x, batch %d/%d hits\n",
			b.name, float64(run.SizeBytes())/1024, hit, count, sum, foundInBatch, len(batch))
	}
}
