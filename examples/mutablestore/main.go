// Mutable store walkthrough: the write path the source paper leaves
// open. "Benchmarking Learned Indexes" evaluates learned structures as
// static, read-only predictors; this example shows the repo's answer
// to updates — per-shard delta buffers absorbing writes in front of
// the learned index, with a background compactor merging them back and
// rebuilding the model off the read path (the delta + compaction
// design of learned-index LSM systems, see DESIGN.md "Write path").
//
// The walkthrough loads a dataset into a sharded store, measures the
// clean batched-read latency, streams inserts while watching the delta
// buffers fill and compactions fire, measures the read latency again
// with deltas pending, then lets compaction drain and measures a third
// time: the rebuild restores clean-read speed and makes every insert
// part of the learned index.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/serve"
)

const (
	n         = 200_000
	inserts   = 40_000
	threshold = 4_096
	family    = "PGM"
)

// measureReads times batched lookups of present keys and reports mean
// ns per lookup.
func measureReads(st *serve.Store, probes []core.Key) float64 {
	out := make([]uint64, 256)
	// Warm up one pass, then time.
	for pass := 0; pass < 2; pass++ {
		start := time.Now()
		for off := 0; off < len(probes); off += 256 {
			end := off + 256
			if end > len(probes) {
				end = len(probes)
			}
			st.GetBatch(probes[off:end], out[:end-off])
		}
		if pass == 1 {
			return float64(time.Since(start).Nanoseconds()) / float64(len(probes))
		}
	}
	panic("unreachable")
}

func main() {
	keys := dataset.MustGenerate(dataset.Amzn, n, 7)
	payloads := dataset.Payloads(n, 7)
	st, err := serve.New(keys, payloads, serve.Config{
		Shards: 4, Family: family, CompactThreshold: threshold,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	fmt.Printf("store: %d keys, %d shards, %s indexes, compact threshold %d\n",
		st.Len(), st.NumShards(), family, threshold)

	probes := dataset.Lookups(keys, 50_000, 11)
	clean := measureReads(st, probes)
	fmt.Printf("clean read latency: %.0f ns/lookup (index %d KiB)\n\n", clean, st.SizeBytes()>>10)

	// Stream inserts; the per-shard deltas fill and the background
	// compactor swaps rebuilt indexes in as thresholds trip.
	fresh := dataset.InsertKeys(keys, inserts, 13)
	fmt.Println("streaming inserts:")
	for i, k := range fresh {
		st.Put(k, uint64(i)+1)
		if (i+1)%10_000 == 0 {
			fmt.Printf("  %6d inserts: pending delta %6d entries, compactions %d\n",
				i+1, st.DeltaLen(), st.Compactions())
		}
	}
	dirty := measureReads(st, probes)
	fmt.Printf("\nread latency with %d pending delta entries: %.0f ns/lookup\n",
		st.DeltaLen(), dirty)

	// Let the background compactor finish whatever the stream queued,
	// then force-merge the remainder (a checkpoint).
	st.WaitCompactions()
	if err := st.Compact(); err != nil {
		log.Fatal(err)
	}
	compacted := measureReads(st, probes)
	fmt.Printf("after compaction (%d total, %.1f ms rebuild time): %.0f ns/lookup (index %d KiB)\n",
		st.Compactions(), float64(st.CompactTime().Nanoseconds())/1e6, compacted, st.SizeBytes()>>10)

	// Every insert is now served by the rebuilt learned indexes.
	missing := 0
	for i, k := range fresh {
		if v, ok := st.Get(k); !ok || v != uint64(i)+1 {
			missing++
		}
	}
	fmt.Printf("inserts visible after compaction: %d/%d (store now %d keys, delta %d)\n",
		inserts-missing, inserts, st.Len(), st.DeltaLen())
	if missing > 0 {
		log.Fatalf("%d inserts lost", missing)
	}
}
