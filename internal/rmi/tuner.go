package rmi

import (
	"math"
	"sort"

	"repro/internal/core"
)

// The tuner plays the role of CDFShop (Marcus et al., SIGMOD'20 demo):
// given a dataset, it explores stage-model combinations and branching
// factors, scores each architecture with a latency proxy, and returns
// either the best configuration under a size budget or a Pareto sweep
// of configurations across sizes.
//
// The latency proxy combines model inference cost with the expected
// number of last-mile binary-search steps (the paper's "log2 error"),
// the two terms the paper identifies learned indexes as trading off.

// inferenceCost is a relative per-eval cost for each model kind, in
// binary-search-step-equivalent units.
func inferenceCost(k ModelKind) float64 {
	switch k {
	case ModelRadix:
		return 0.5
	case ModelLinearSpline:
		return 0.8
	case ModelLinear:
		return 0.8
	case ModelCubic:
		return 1.6
	default:
		return 1
	}
}

// proxyCost scores a trained RMI: two model evaluations (one per
// stage), one likely cache miss for the leaf array when B is large,
// plus the expected binary-search steps.
func proxyCost(idx *Index) float64 {
	c := inferenceCost(idx.cfg.Stage1) + inferenceCost(idx.cfg.Stage2)
	return c + idx.AvgLog2Error()
}

// candidateCombos is the architecture grid the tuner explores. The
// reference CDFShop grid is larger; these are the combinations that
// win on the SOSD datasets.
var candidateCombos = []struct{ s1, s2 ModelKind }{
	{ModelLinear, ModelLinear},
	{ModelLinearSpline, ModelLinear},
	{ModelRadix, ModelLinear},
	{ModelCubic, ModelLinear},
	{ModelLinear, ModelLinearSpline},
	{ModelCubic, ModelLinearSpline},
}

// tuneSampleMax caps the number of keys used while exploring
// architectures; final indexes are always trained on the full data.
const tuneSampleMax = 131072

// sample returns at most m evenly spaced keys.
func sample(keys []core.Key, m int) []core.Key {
	n := len(keys)
	if n <= m {
		return keys
	}
	out := make([]core.Key, m)
	for i := 0; i < m; i++ {
		out[i] = keys[i*(n-1)/(m-1)]
	}
	// Evenly spaced sampling can repeat endpoints on tiny inputs;
	// uniqueness is not required by the trainer.
	return out
}

// bestComboFor returns the lowest-proxy-cost (stage1, stage2) pair for
// the given branch factor, tuned on a sample of keys.
func bestComboFor(keys []core.Key, branch int) (Config, float64) {
	s := sample(keys, tuneSampleMax)
	// Scale the branch factor to the sample so leaf occupancy (and
	// hence log2 error) is comparable to the full build.
	sb := branch * len(s) / len(keys)
	if sb < 1 {
		sb = 1
	}
	best := Config{Stage1: ModelLinear, Stage2: ModelLinear, Branch: branch}
	bestCost := math.Inf(1)
	for _, combo := range candidateCombos {
		cfg := Config{Stage1: combo.s1, Stage2: combo.s2, Branch: sb}
		idx, err := New(s, cfg)
		if err != nil {
			continue
		}
		if c := proxyCost(idx); c < bestCost {
			bestCost = c
			best = Config{Stage1: combo.s1, Stage2: combo.s2, Branch: branch}
		}
	}
	return best, bestCost
}

// branchGrid returns the branching factors explored for a dataset of n
// keys: powers of four from 64 up to n/2, capped at 4M leaves.
func branchGrid(n int) []int {
	var grid []int
	for b := 64; b <= n/2 && b <= 1<<22; b *= 4 {
		grid = append(grid, b)
	}
	if len(grid) == 0 {
		grid = []int{1}
	}
	return grid
}

// ParetoConfigs returns up to count tuned configurations spanning the
// size range (small to large), one per branching factor, mirroring the
// paper's "ten configurations ranging from minimum to maximum size".
func ParetoConfigs(keys []core.Key, count int) []Config {
	grid := branchGrid(len(keys))
	if count > 0 && len(grid) > count {
		// Thin the grid evenly, keeping the extremes.
		thin := make([]int, count)
		for i := 0; i < count; i++ {
			thin[i] = grid[i*(len(grid)-1)/(count-1)]
		}
		grid = thin
	}
	cfgs := make([]Config, 0, len(grid))
	for _, b := range grid {
		cfg, _ := bestComboFor(keys, b)
		cfgs = append(cfgs, cfg)
	}
	return cfgs
}

// Tune returns the best configuration whose index size fits within
// sizeBudget bytes (0 means unlimited). This is the entry point used
// by Table 2 ("fastest variant").
func Tune(keys []core.Key, sizeBudget int) Config {
	type scored struct {
		cfg  Config
		cost float64
		size int
	}
	var all []scored
	for _, b := range branchGrid(len(keys)) {
		size := modelSizeBytes + b*leafSizeBytes
		if sizeBudget > 0 && size > sizeBudget {
			continue
		}
		cfg, cost := bestComboFor(keys, b)
		all = append(all, scored{cfg, cost, size})
	}
	if len(all) == 0 {
		return Config{Stage1: ModelLinear, Stage2: ModelLinear, Branch: 64}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].cost < all[j].cost })
	return all[0].cfg
}
