package pgm

import (
	"errors"
	"math"

	"repro/internal/core"
)

// Dynamic is the fully-dynamic PGM extension (the paper's Section 3.3
// notes "the PGM index can also handle inserts", which the benchmark
// does not evaluate; it is provided and tested here for completeness).
//
// It uses the classic logarithmic method, as the PGM paper does: keys
// live in O(log n) sorted runs of doubling capacity, each indexed by a
// static PGM. An insert that overflows run 0 merges all full runs into
// the first empty one, giving O(log n) amortized insert cost while
// every run keeps the static index's query guarantees.
type Dynamic struct {
	eps   int
	base  int
	runs  []dynRun // runs[i] holds up to base<<i keys (or is empty)
	count int
}

type dynRun struct {
	keys []core.Key
	vals []uint64
	idx  *Index
}

// NewDynamic creates an empty dynamic PGM with the given epsilon.
func NewDynamic(eps int) *Dynamic {
	if eps < 1 {
		eps = 1
	}
	return &Dynamic{eps: eps, base: 64}
}

// Len returns the number of stored entries.
func (d *Dynamic) Len() int { return d.count }

// Insert adds key -> val (duplicates allowed; all are retained).
func (d *Dynamic) Insert(key core.Key, val uint64) error {
	carryK := []core.Key{key}
	carryV := []uint64{val}
	for i := 0; ; i++ {
		if i == len(d.runs) {
			d.runs = append(d.runs, dynRun{})
		}
		r := &d.runs[i]
		capI := d.base << i
		if len(r.keys)+len(carryK) <= capI {
			merged, mergedV := mergeRuns(r.keys, r.vals, carryK, carryV)
			idx, err := New(merged, d.eps)
			if err != nil {
				return err
			}
			d.runs[i] = dynRun{keys: merged, vals: mergedV, idx: idx}
			d.count++
			return nil
		}
		// Run i overflows: carry its contents down and empty it.
		carryK, carryV = mergeRuns(r.keys, r.vals, carryK, carryV)
		d.runs[i] = dynRun{}
	}
}

func mergeRuns(ak []core.Key, av []uint64, bk []core.Key, bv []uint64) ([]core.Key, []uint64) {
	outK := make([]core.Key, 0, len(ak)+len(bk))
	outV := make([]uint64, 0, len(av)+len(bv))
	i, j := 0, 0
	for i < len(ak) && j < len(bk) {
		if ak[i] <= bk[j] {
			outK = append(outK, ak[i])
			outV = append(outV, av[i])
			i++
		} else {
			outK = append(outK, bk[j])
			outV = append(outV, bv[j])
			j++
		}
	}
	outK = append(outK, ak[i:]...)
	outV = append(outV, av[i:]...)
	outK = append(outK, bk[j:]...)
	outV = append(outV, bv[j:]...)
	return outK, outV
}

// ErrNotFound reports an empty result from Ceiling.
var ErrNotFound = errors.New("pgm: no key at or above the query")

// Ceiling returns the smallest stored key >= x and its value, scanning
// each run through its static PGM index.
func (d *Dynamic) Ceiling(x core.Key) (core.Key, uint64, error) {
	bestKey := core.Key(math.MaxUint64)
	var bestVal uint64
	found := false
	for i := range d.runs {
		r := &d.runs[i]
		if r.idx == nil || len(r.keys) == 0 {
			continue
		}
		b := r.idx.Lookup(x)
		pos := lowerBoundIn(r.keys, x, b)
		if pos == len(r.keys) {
			continue
		}
		if !found || r.keys[pos] < bestKey {
			bestKey, bestVal, found = r.keys[pos], r.vals[pos], true
		}
	}
	if !found {
		return 0, 0, ErrNotFound
	}
	return bestKey, bestVal, nil
}

// Get returns the value of the first entry with exactly key.
func (d *Dynamic) Get(key core.Key) (uint64, bool) {
	k, v, err := d.Ceiling(key)
	if err != nil || k != key {
		return 0, false
	}
	return v, true
}

func lowerBoundIn(keys []core.Key, x core.Key, b core.Bound) int {
	lo, hi := b.Lo, b.Hi
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// SizeBytes reports the total footprint of all run indexes (the key
// and value arrays are the data, as in the static case).
func (d *Dynamic) SizeBytes() int {
	total := 0
	for i := range d.runs {
		if d.runs[i].idx != nil {
			total += d.runs[i].idx.SizeBytes()
		}
	}
	return total
}

// NumRuns reports how many non-empty runs exist (O(log n)).
func (d *Dynamic) NumRuns() int {
	n := 0
	for i := range d.runs {
		if len(d.runs[i].keys) > 0 {
			n++
		}
	}
	return n
}
