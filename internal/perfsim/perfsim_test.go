package perfsim

import (
	"testing"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hashidx"
	"repro/internal/pgm"
	"repro/internal/rbs"
	"repro/internal/rmi"
	"repro/internal/rs"

	artpkg "repro/internal/art"
	fastpkg "repro/internal/fast"
)

func TestCacheBasics(t *testing.T) {
	m := New(Config{CacheBytes: 1 << 12, LineBytes: 64, Ways: 2})
	r := m.Alloc(1024)
	m.Access(r, 0, 8)
	c := m.Counters()
	if c.CacheMisses != 1 || c.Accesses != 1 {
		t.Fatalf("first access: %v", c)
	}
	m.Access(r, 8, 8) // same line: hit
	if got := m.Counters().CacheMisses; got != 1 {
		t.Fatalf("same-line access missed: %d", got)
	}
	m.Access(r, 64, 8) // next line: miss
	if got := m.Counters().CacheMisses; got != 2 {
		t.Fatalf("next-line access: %d misses", got)
	}
	m.Access(r, 0, 8) // still cached
	if got := m.Counters().CacheMisses; got != 2 {
		t.Fatalf("cached line missed: %d", got)
	}
}

func TestCacheEviction(t *testing.T) {
	// 2 ways, 2 sets of 64B lines = 256B cache. Touching 3 lines that
	// map to the same set evicts the LRU.
	m := New(Config{CacheBytes: 256, LineBytes: 64, Ways: 2})
	r := m.Alloc(4096)
	m.Access(r, 0, 1)   // set 0, miss
	m.Access(r, 128, 1) // set 0, miss
	m.Access(r, 256, 1) // set 0, miss, evicts line 0
	m.ResetCounters()
	m.Access(r, 0, 1) // must miss again
	if got := m.Counters().CacheMisses; got != 1 {
		t.Fatalf("evicted line hit: %d misses", got)
	}
}

func TestCacheSpanningAccess(t *testing.T) {
	m := New(Config{})
	r := m.Alloc(4096)
	m.Access(r, 60, 16) // spans two lines
	if got := m.Counters().Accesses; got != 2 {
		t.Fatalf("spanning access touched %d lines", got)
	}
}

func TestFlushCache(t *testing.T) {
	m := New(Config{})
	r := m.Alloc(4096)
	m.Access(r, 0, 8)
	m.FlushCache()
	m.ResetCounters()
	m.Access(r, 0, 8)
	if got := m.Counters().CacheMisses; got != 1 {
		t.Fatalf("flushed line hit: %d", got)
	}
}

func TestBranchPredictor(t *testing.T) {
	m := New(Config{})
	// A always-taken branch trains to near-perfect prediction.
	for i := 0; i < 100; i++ {
		m.Branch(1, true)
	}
	c := m.Counters()
	if c.BranchMisses > 2 {
		t.Fatalf("always-taken mispredicted %d times", c.BranchMisses)
	}
	// An alternating branch at a different site mispredicts heavily.
	m.ResetCounters()
	for i := 0; i < 100; i++ {
		m.Branch(2, i%2 == 0)
	}
	if got := m.Counters().BranchMisses; got < 40 {
		t.Fatalf("alternating branch only missed %d times", got)
	}
}

func TestCountersSubString(t *testing.T) {
	a := Counters{10, 5, 3, 2, 100}
	b := Counters{4, 1, 1, 1, 40}
	d := a.Sub(b)
	if d.Accesses != 6 || d.CacheMisses != 4 || d.Instructions != 60 {
		t.Fatalf("Sub = %+v", d)
	}
	if a.String() == "" {
		t.Error("empty String")
	}
}

// buildTraced builds every traced structure over the same dataset.
func buildTraced(t *testing.T, keys []core.Key) map[string]Traced {
	t.Helper()
	out := map[string]Traced{}
	mk := func() *Machine { return New(Config{CacheBytes: 1 << 20}) }

	ri, err := rmi.New(keys, rmi.Config{Stage1: rmi.ModelLinear, Stage2: rmi.ModelLinear, Branch: 256})
	if err != nil {
		t.Fatal(err)
	}
	out["RMI"] = NewTracedRMI(ri, mk(), keys)

	pi, err := pgm.New(keys, 32)
	if err != nil {
		t.Fatal(err)
	}
	out["PGM"] = NewTracedPGM(pi, mk(), keys)

	si, err := rs.New(keys, rs.Config{SplineErr: 32, RadixBits: 10})
	if err != nil {
		t.Fatal(err)
	}
	out["RS"] = NewTracedRS(si, mk(), keys)

	bi, err := rbs.New(keys, 10)
	if err != nil {
		t.Fatal(err)
	}
	out["RBS"] = NewTracedRBS(bi, mk(), keys)

	bt, err := (btree.Builder{Stride: 1}).Build(keys)
	if err != nil {
		t.Fatal(err)
	}
	out["BTree"] = NewTracedBTree(bt.(*btree.Index), mk(), keys)

	ib, err := (btree.Builder{Stride: 1, Interpolate: true}).Build(keys)
	if err != nil {
		t.Fatal(err)
	}
	out["IBTree"] = NewTracedBTree(ib.(*btree.Index), mk(), keys)

	ai, err := (artpkg.Builder{Stride: 1}).Build(keys)
	if err != nil {
		t.Fatal(err)
	}
	out["ART"] = NewTracedART(ai.(*artpkg.Index), mk(), keys)

	fi, err := (fastpkg.Builder{Stride: 1}).Build(keys)
	if err != nil {
		t.Fatal(err)
	}
	out["FAST"] = NewTracedFAST(fi.(*fastpkg.Index), mk(), keys)

	rh, err := hashidx.NewRobinHood(len(keys), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		rh.Insert(k, int32(i))
	}
	out["RobinHash"] = NewTracedRobin(rh, mk(), keys)
	return out
}

func TestTracedBoundsMatchPlainLookups(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Amzn, 20000, 1)
	lookups := dataset.Lookups(keys, 500, 3)
	for name, tr := range buildTraced(t, keys) {
		for _, x := range lookups {
			b := tr.Lookup(x)
			if !core.ValidBound(keys, x, b) {
				t.Fatalf("%s: traced lookup produced invalid bound %v for %d", name, b, x)
			}
		}
	}
}

func TestTracedCounterProfiles(t *testing.T) {
	// The relative profiles the paper reports: the RMI needs far fewer
	// cache misses per lookup than a full B-Tree; RobinHood needs the
	// fewest of all ordered-vs-hash comparisons aside; the B-Tree's
	// misses scale with its height.
	// The working set (keys + payloads + index) must exceed the 1 MiB
	// simulated cache, as the paper's 200M-key datasets exceed the LLC;
	// otherwise every structure runs at zero misses.
	keys := dataset.MustGenerate(dataset.Amzn, 100000, 1)
	lookups := dataset.Lookups(keys, 30000, 3)
	traced := buildTraced(t, keys)
	missRate := map[string]float64{}
	for name, tr := range traced {
		var m *Machine
		switch v := tr.(type) {
		case *tracedRMI:
			m = v.m
		case *tracedPGM:
			m = v.m
		case *tracedRS:
			m = v.m
		case *tracedRBS:
			m = v.m
		case *tracedBTree:
			m = v.m
		case *tracedART:
			m = v.m
		case *tracedFAST:
			m = v.m
		case *tracedRobin:
			m = v.m
		}
		// Warm up, then measure.
		for _, x := range lookups {
			tr.Lookup(x)
		}
		m.ResetCounters()
		for _, x := range lookups {
			tr.Lookup(x)
		}
		missRate[name] = float64(m.Counters().CacheMisses) / float64(len(lookups))
	}
	if missRate["RMI"] >= missRate["BTree"] {
		t.Errorf("RMI misses (%f) should be below BTree (%f)", missRate["RMI"], missRate["BTree"])
	}
	// Every structure must incur real traffic once the working set
	// exceeds the cache (at laptop scale the hash-vs-tree ordering of
	// Figure 16c is height-dependent, so only positivity is asserted).
	for name, rate := range missRate {
		if rate <= 0 {
			t.Errorf("%s: zero cache misses with an out-of-cache working set", name)
		}
	}
}
