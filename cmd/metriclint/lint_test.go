package main

import (
	"strings"
	"testing"
)

// goodExposition mirrors what obs.WritePrometheus emits: typed
// contiguous families, a labelled counter, and a summary with
// quantile pseudo-series.
const goodExposition = `# TYPE sosd_net_accepted_total counter
sosd_net_accepted_total 100
# TYPE sosd_net_batched_keys_total counter
sosd_net_batched_keys_total 60
# TYPE sosd_net_latency_ns summary
sosd_net_latency_ns{quantile="0.5"} 1500
sosd_net_latency_ns{quantile="0.99"} 90000
sosd_net_latency_ns_sum 1.2e+06
sosd_net_latency_ns_count 100
# TYPE sosd_shard_runs gauge
sosd_shard_runs{shard="0"} 2
sosd_shard_runs{shard="1"} 1
# TYPE sosd_store_flushes_total counter
sosd_store_flushes_total 12
# TYPE sosd_store_delta_freezes_total counter
sosd_store_delta_freezes_total 12
# TYPE sosd_store_run_probes_total counter
sosd_store_run_probes_total 340
# TYPE sosd_store_multirun_ops_total counter
sosd_store_multirun_ops_total 200
`

func TestLintClean(t *testing.T) {
	if problems := Lint(goodExposition); len(problems) != 0 {
		t.Fatalf("clean exposition flagged: %v", problems)
	}
	if problems := CheckLaws(Values(goodExposition)); len(problems) != 0 {
		t.Fatalf("law-satisfying exposition flagged: %v", problems)
	}
}

func TestLintAcceptsLiveRegistry(t *testing.T) {
	// The linter's contract is with obs.WritePrometheus; an escaped
	// label value with a space must parse.
	text := "# TYPE esc_total counter\n" +
		`esc_total{v="a b\"c\\d"} 1` + "\n"
	if problems := Lint(text); len(problems) != 0 {
		t.Fatalf("escaped labels flagged: %v", problems)
	}
}

func TestLintRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, text, want string
	}{
		{"untyped sample", "x_total 1\n", "no TYPE"},
		{"bad type", "# TYPE x sidecounter\nx 1\n", "unknown metric type"},
		{"dup family", "# TYPE x counter\nx 1\n# TYPE x counter\n", "declared twice"},
		{"dup series", "# TYPE x counter\nx 1\nx 2\n", "duplicate series"},
		{"bad value", "# TYPE x counter\nx one\n", "unparseable value"},
		{"bad name", "# TYPE 0x counter\n", "invalid metric name"},
		{"bad label name", "# TYPE x counter\nx{0bad=\"v\"} 1\n", "invalid label name"},
		{"unquoted label", "# TYPE x counter\nx{k=v} 1\n", "unquoted label value"},
		{"interleaved families", "# TYPE a counter\na 1\n# TYPE b counter\na{k=\"v\"} 2\nb 1\n", "contiguous"},
		{"resumed family", "# TYPE a counter\na 1\n# TYPE b counter\nb 1\n# TYPE c counter\na{k=\"v\"} 2\n", "contiguous"},
		{"blank line inside", "# TYPE x counter\n\nx 1\n", "blank line"},
		{"missing value", "# TYPE x counter\nx\n", "malformed sample"},
	}
	for _, c := range cases {
		problems := Lint(c.text)
		found := false
		for _, p := range problems {
			if strings.Contains(p, c.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: want a problem containing %q, got %v", c.name, c.want, problems)
		}
	}
}

func TestCheckLawsViolations(t *testing.T) {
	base := Values(goodExposition)
	mutate := func(id string, v float64) map[string]float64 {
		m := map[string]float64{}
		for k, val := range base {
			m[k] = val
		}
		m[id] = v
		return m
	}
	cases := []struct {
		name string
		vals map[string]float64
		want string
	}{
		{"keys exceed accepted", mutate("sosd_net_batched_keys_total", 101), "batched keys"},
		{"lost flush", mutate("sosd_store_flushes_total", 11), "delta freezes"},
		{"probes below ops", mutate("sosd_store_run_probes_total", 100), "run probes"},
		{"latency overcount", mutate("sosd_net_latency_ns_count", 150), "latency count"},
	}
	for _, c := range cases {
		problems := CheckLaws(c.vals)
		found := false
		for _, p := range problems {
			if strings.Contains(p, c.want) && strings.Contains(p, "violated") {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: want a violation containing %q, got %v", c.name, c.want, problems)
		}
	}
	// A missing series is itself a failure, not a silent pass.
	short := map[string]float64{"sosd_net_accepted_total": 1}
	problems := CheckLaws(short)
	if len(problems) == 0 {
		t.Fatal("missing law series not reported")
	}
}
