package bench

// The tail-latency experiment: not a figure from the paper, whose
// serving numbers are means over tight loops, but the measurement the
// paper's serving claims actually need — per-operation latency
// *distributions*. A closed loop reports each family's capacity and
// latency under saturation; an open loop replays a fixed Poisson
// arrival schedule at a sweep of rates and measures every operation
// from its scheduled arrival, so queueing delay during compaction
// stalls is charged to the requests that suffered it (no coordinated
// omission). The output per family × workload × rate is a
// throughput-vs-tail curve. See DESIGN.md "Measurement".

import (
	"fmt"
	"runtime"

	"repro/internal/dataset"
	"repro/internal/load"
	"repro/internal/registry"
	"repro/internal/report"
	"repro/internal/serve"
)

func init() {
	Register(Experiment{"serve-tail", "tail latency: closed vs open-loop (Poisson) load, p50..p99.9 per arrival rate", serveTailSweep})
}

// TailWorkloads lists the YCSB-style mixes of the tail experiment:
// A (50/50), B (95/5), and C (read-only), all zipfian.
func TailWorkloads() []MixedWorkload {
	return []MixedWorkload{
		{"A", 0.50, true},
		{"B", 0.95, true},
		{"C", 1.00, true},
	}
}

// TailRateFractions are the open-loop offered rates of the sweep, as
// fractions of the measured closed-loop capacity: comfortably below,
// at half, and near saturation — the knee of the latency curve.
var TailRateFractions = []float64{0.25, 0.5, 0.8}

// TailWorkers sizes the generator pool for the tail experiments (and
// the root BenchmarkServeTail): enough concurrency to saturate the
// store without drowning the machine in pure scheduler overhead.
func TailWorkers() int {
	w := runtime.NumCPU()
	if w > 8 {
		w = 8
	}
	return w
}

// MeasureTail drives one tail-latency run against st: the workload's
// operation stream (reads under its key distribution, writes
// alternating fresh inserts and updates) generated from e, executed by
// the open-loop generator when cfg.Rate > 0 and the closed-loop
// generator otherwise. The result's histogram holds one latency per
// operation — measured from scheduled arrival in the open loop.
func MeasureTail(e *Env, st *serve.Store, wl MixedWorkload, ops int, cfg load.Config) *load.Result {
	theta := 0.0
	if wl.Zipfian {
		theta = YCSBTheta
	}
	stream := load.MixedOps(e.Keys, ops, wl.ReadFrac, theta, cfg.Seed)
	if cfg.Rate > 0 {
		return load.RunOpen(st, stream, cfg)
	}
	return load.RunClosed(st, stream, cfg)
}

// tailRow appends one result line of the sweep. offered is 0 for the
// closed loop (no fixed arrival schedule).
func tailRow(t *report.Table, family, wlName, loop string, offered float64, res *load.Result) {
	s := res.Hist.Summary()
	t.Row([]string{family, wlName, loop},
		offered/1e3, res.Throughput/1e3,
		float64(s.P50)/1e3, float64(s.P90)/1e3, float64(s.P99)/1e3,
		float64(s.P999)/1e3, float64(s.Max)/1e3)
}

// serveTailSweep reports the tail-latency experiment: per index family
// and YCSB-style workload, a closed-loop saturation run (capacity and
// latency under full load) followed by open-loop runs at fractions of
// that capacity — the throughput-vs-p99 curve. Each run gets a fresh
// store so earlier writes and compactions cannot leak into later rows.
func serveTailSweep(r *Run) ([]report.Table, error) {
	o := r.Options
	e, err := r.Env(dataset.Amzn)
	if err != nil {
		return nil, err
	}
	ops := o.Lookups
	const shards = 4
	threshold := ops / 32
	if threshold < 64 {
		threshold = 64
	}
	workers := TailWorkers()

	t := report.New("serve-tail",
		fmt.Sprintf("Tail latency (amzn, mid-sweep configs, %d shards, %d workers, %d ops/run, compact threshold %d)",
			shards, workers, ops, threshold)).
		Dims("index", "wl", "loop").
		Float("rate(k/s)", "kops/s", 1).
		Float("kops/s", "kops/s", 1).
		Float("p50", "µs", 1).
		Float("p90", "µs", 1).
		Float("p99", "µs", 1).
		Float("p99.9", "µs", 1).
		Float("max", "µs", 1).
		Notef("open-loop latency is measured from each operation's scheduled Poisson arrival (coordinated-omission-free); latencies in µs").
		Notef("rate(k/s) is the offered open-loop arrival rate; 0 for the closed loop (saturation)")
	for _, family := range r.Families(registry.WriteFamilies) {
		for _, wl := range TailWorkloads() {
			newStore := func() (*serve.Store, error) {
				return serve.New(e.Keys, e.Payloads, serve.Config{
					Shards: shards, Family: family, CompactThreshold: threshold,
				})
			}

			st, err := newStore()
			if err != nil {
				return nil, err
			}
			closed := MeasureTail(e, st, wl, ops, load.Config{Workers: workers, Seed: o.Seed})
			st.Close()
			tailRow(t, family, wl.Name, "closed", 0, closed)

			for _, frac := range TailRateFractions {
				rate := frac * closed.Throughput
				if rate <= 0 {
					continue
				}
				st, err := newStore()
				if err != nil {
					return nil, err
				}
				open := MeasureTail(e, st, wl, ops, load.Config{
					Workers: workers, Rate: rate, Seed: o.Seed,
				})
				st.Close()
				tailRow(t, family, wl.Name, fmt.Sprintf("open%.0f%%", frac*100), rate, open)
			}
		}
	}
	return []report.Table{*t}, nil
}
