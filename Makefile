GO ?= go

.PHONY: tier1 vet bench bench-smoke report-smoke obs-smoke race serve serve-write serve-lsm serve-tail serve-net serve-obs serve-repl persist fuzz-smoke examples doccheck perfgate perfgate-update build-audit

# tier1 is the verify recipe: everything must build and every test pass.
tier1:
	$(GO) build ./... && $(GO) test ./...

vet:
	$(GO) vet ./...

# bench runs the root benchmark subset exercising the serving layer.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkGetBatch|BenchmarkServeSharded|BenchmarkServeMixed|BenchmarkTable2' -benchtime 200000x .

# bench-smoke runs every benchmark in the repo exactly once so they
# cannot bit-rot (no timing value, just the code paths), plus a tiny
# serve-lsm run so the tier-policy sweep exercises flushes and merges
# end to end.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
	$(GO) run ./cmd/sosd -n 20000 -lookups 2000 serve-lsm

# report-smoke produces a machine-readable result artifact from one
# experiment and validates that it parses as a report document — the
# check CI uploads as BENCH_smoke.json.
report-smoke:
	$(GO) run ./cmd/sosd -n 20000 -lookups 2000 -format json -o BENCH_smoke.json fig13
	$(GO) run ./cmd/reportlint BENCH_smoke.json

# obs-smoke is the live observability gate: start sosdserve with the
# admin listener, scrape /metrics with metriclint (well-formedness plus
# the serving conservation laws), and shut the server down. Fails if
# the exposition is malformed or the counters contradict each other.
obs-smoke:
	$(GO) build -o /tmp/obs-smoke-sosdserve ./cmd/sosdserve
	/tmp/obs-smoke-sosdserve -n 20000 -addr 127.0.0.1:17461 -admin 127.0.0.1:17462 & \
	pid=$$!; \
	$(GO) run ./cmd/metriclint -wait 10s -laws http://127.0.0.1:17462/metrics; ok=$$?; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	exit $$ok

# race runs the concurrency-sensitive packages under the race detector
# (serve includes the snapshot/restore map-oracle suite; net runs
# concurrent clients against the server with compactions and a
# snapshot racing the traffic; obs scrapes a registry while recorders
# hammer it; repl streams a primary into followers killed mid-flight).
race:
	$(GO) test -race ./internal/serve/ ./internal/table/ ./internal/stats/ ./internal/load/ ./internal/persist/ ./internal/net/ ./internal/obs/ ./internal/repl/

# serve prints the serving-layer experiment at a quick scale.
serve:
	$(GO) run ./cmd/sosd -n 200000 -lookups 20000 serve

# serve-write prints the mixed read/write experiment at a quick scale.
serve-write:
	$(GO) run ./cmd/sosd -n 200000 -lookups 20000 serve-write

# serve-lsm prints the tiered-run write-path experiment (tier policy x
# family over YCSB A/B: throughput, read p99, compaction cost, read
# amplification) at a quick scale.
serve-lsm:
	$(GO) run ./cmd/sosd -n 200000 -lookups 20000 serve-lsm

# serve-tail prints the tail-latency experiment (closed vs open loop,
# p50..p99.9 per family x workload x arrival rate) at a quick scale.
serve-tail:
	$(GO) run ./cmd/sosd -n 200000 -lookups 20000 serve-tail

# serve-net prints the network serving experiment (goodput vs tail
# through coalescing + admission control, below and past capacity).
serve-net:
	$(GO) run ./cmd/sosd -n 200000 -lookups 20000 serve-net

# serve-obs prints the observability conservation-law experiment
# (metrics, traces, and journal checked against each other under a
# mixed workload with compactions in flight).
serve-obs:
	$(GO) run ./cmd/sosd -n 200000 -lookups 20000 serve-obs

# serve-repl prints the replication experiment (read goodput vs
# replica count through the scatter/gather router, stream conservation
# laws, and the failover-to-ready timeline).
serve-repl:
	$(GO) run ./cmd/sosd -n 200000 -lookups 20000 serve-repl

# persist prints the cold-vs-warm restart experiment at a quick scale.
persist:
	$(GO) run ./cmd/sosd -n 200000 -lookups 20000 persist

# fuzz-smoke runs every decoder fuzz target briefly (10s each):
# truncated/bit-flipped snapshots, WALs, tables, manifests, and wire
# frames must error, never panic or over-allocate.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME) ./internal/persist/
	$(GO) test -run '^$$' -fuzz '^FuzzWAL$$' -fuzztime $(FUZZTIME) ./internal/persist/
	$(GO) test -run '^$$' -fuzz '^FuzzTable$$' -fuzztime $(FUZZTIME) ./internal/persist/
	$(GO) test -run '^$$' -fuzz '^FuzzManifest$$' -fuzztime $(FUZZTIME) ./internal/persist/
	$(GO) test -run '^$$' -fuzz '^FuzzFrame$$' -fuzztime $(FUZZTIME) ./internal/net/

# perfgate is the perf regression gate: a fresh 1M-key serve run (RMI +
# PGM batched-lookup latency and sharded-store throughput) rendered as
# JSON and compared against the checked-in BENCH_baseline.json by
# cmd/perfdiff. The gate fails on any directional metric drifting more
# than PERFGATE_THRESHOLD percent in the bad direction. The default is
# deliberately loose: the baseline's absolute numbers are pinned to the
# machine that ran perfgate-update, and shared CI runners both differ
# from it and jitter by tens of percent — the gate exists to catch
# order-of-magnitude mistakes (a lost fast path, an accidental linear
# scan), not 10% noise. Tighten it on quiet dedicated hardware. After
# an intentional perf change, refresh with `make perfgate-update` and
# commit the new baseline.
PERFGATE_RUN = $(GO) run ./cmd/sosd -n 1000000 -lookups 100000 -families RMI,PGM -format json -o BENCH_current.json serve
PERFGATE_THRESHOLD ?= 75
perfgate:
	$(PERFGATE_RUN)
	$(GO) run ./cmd/perfdiff -threshold $(PERFGATE_THRESHOLD) BENCH_current.json

perfgate-update:
	$(PERFGATE_RUN)
	$(GO) run ./cmd/perfdiff -update BENCH_current.json

# build-audit is the GOAMD64=v3 check from the roadmap's hot-path
# item: the whole tree must compile at the wider instruction baseline
# (POPCNT/BMI2/AVX guaranteed, no runtime feature dispatch), and the
# root benchmark subset re-runs under it so the delta vs a plain
# `make bench` on the same machine shows what v3 buys the hot path.
build-audit:
	GOAMD64=v3 $(GO) build ./...
	GOAMD64=v3 $(GO) vet ./...
	GOAMD64=v3 $(GO) test -run '^$$' -bench 'BenchmarkGetBatch|BenchmarkServeSharded|BenchmarkServeMixed|BenchmarkTable2' -benchtime 200000x .

# examples builds every walkthrough under examples/.
examples:
	$(GO) build ./examples/...

# doccheck fails when README.md does not mention every directory under
# internal/ — the doc-drift guard run in CI.
doccheck:
	@missing=0; \
	for d in internal/*/; do \
		p=$$(basename $$d); \
		grep -q "internal/$$p" README.md || { echo "README.md does not mention internal/$$p"; missing=1; }; \
	done; \
	exit $$missing
