// Package serve implements the many-users serving scenario on top of
// the table layer: a Store range-partitions the keyspace across N
// shards, each an independent, atomically replaceable table.Table
// built from any registered index family, answers batched lookups
// through a fixed goroutine pool, and absorbs writes into per-shard
// delta buffers that a background compactor merges back into the
// learned indexes.
//
// Concurrency model: reads (Get, GetBatch, Scan, Range) are lock-free —
// they load each shard's current state (base table + delta buffers)
// through one atomic pointer — and may run from any number of
// goroutines. Writes are single-writer per shard: Put, Delete, and
// Replace serialize on a per-shard mutex, derive the new state off to
// the side (copy-on-write delta, or a freshly built table), and publish
// it with one pointer swap, so readers never block and never observe a
// half-applied write. Compaction freezes a shard's delta, merges and
// rebuilds off the write lock (writes continue into a fresh active
// delta), and republishes the shard with another swap. See DESIGN.md
// "Write path".
package serve

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/registry"
	"repro/internal/search"
	"repro/internal/table"
)

// DefaultCompactThreshold is the per-shard pending-write count at which
// background compaction kicks in when Config.CompactThreshold is zero.
// It bounds both read-path overlay work and the copy-on-write cost of
// individual writes.
const DefaultCompactThreshold = 4096

// Config configures a Store.
type Config struct {
	// Shards is the number of range partitions; 0 defaults to
	// runtime.NumCPU(). Clamped to the number of distinct keys.
	Shards int

	// Family selects the registered index family used for every shard
	// (mid-sweep configuration); empty defaults to "PGM". Ignored when
	// BuilderFor is set.
	Family string

	// BuilderFor, when non-nil, supplies the index builder per shard,
	// allowing heterogeneous stores (e.g. a learned index on smooth
	// shards, a B-tree on adversarial ones).
	BuilderFor func(shard int, keys []core.Key) (core.Builder, error)

	// Search is the last-mile search function; nil defaults to binary.
	Search search.Fn

	// Workers is the goroutine-pool size serving batched lookups; 0
	// defaults to min(Shards, runtime.NumCPU()).
	Workers int

	// CompactThreshold is the number of pending delta entries at which
	// a shard is queued for background compaction. 0 defaults to
	// DefaultCompactThreshold; negative disables background compaction
	// entirely (writes still land, Compact merges on demand).
	CompactThreshold int

	// SyncWrites, for a store attached to a snapshot directory (Open),
	// fsyncs the shard's write-ahead log on every Put/Delete. Off by
	// default: appends still reach the OS immediately (surviving a
	// process crash), and SyncWAL provides an explicit storage barrier.
	SyncWrites bool
}

// Store is a sharded, mutable key→payload store. See the package
// comment for the concurrency model.
type Store struct {
	cfg        Config
	seps       []core.Key // seps[i] = first key owned by shard i
	shards     []atomic.Pointer[shardState]
	writeMu    []sync.Mutex   // per-shard single-writer locks
	builders   []core.Builder // last builder used per shard; guarded by writeMu; nil until resolved on warm-opened shards
	builderIDs []string       // registry config ID per shard (manifest codec tag); guarded by writeMu
	builderFor func(shard int, keys []core.Key) (core.Builder, string, error)

	// Persistence state (zero unless the store was opened from a
	// snapshot directory): the attached directory (absolute), one live
	// WAL per shard (slots guarded by writeMu), a mutex serializing
	// snapshot/manifest commits, the last committed generation and
	// manifest entries (guarded by persistMu), and the first background
	// persistence failure.
	dir           string
	wals          []*persist.WAL
	persistMu     sync.Mutex
	exportMu      sync.Mutex // serializes foreign-directory Snapshots only
	gen           uint64
	meta          []persist.ShardMeta
	lastPersisted []*table.Table // base committed at meta[i]; guarded by persistMu
	persistErrMu  sync.Mutex
	persistErr    error

	jobs      chan job
	workersWG sync.WaitGroup
	scratch   sync.Pool // *batchScratch
	closed    atomic.Bool

	compactC       chan int      // shard ids queued for background compaction
	compactQueued  []atomic.Bool // per-shard: a request is already in compactC
	compactWG      sync.WaitGroup
	compactPending atomic.Int64 // queued or in-flight background requests
	compactions    atomic.Uint64
	compactNs      atomic.Int64
}

type job struct {
	s     *shardState
	keys  []core.Key
	out   []uint64
	fbits []bool // per-key found bits when non-nil (GetBatchFound)
	found *atomic.Int64
	wg    *sync.WaitGroup
}

type batchScratch struct {
	shard  []int32
	offs   []int32
	starts []int32
	gkeys  []core.Key
	gout   []uint64
	gfound []bool
	pos    []int32
}

// New builds a Store over sorted keys and payloads. The key array is
// split into contiguous, duplicate-respecting ranges of near-equal
// size; each range becomes one shard with its own index.
func New(keys []core.Key, payloads []uint64, cfg Config) (*Store, error) {
	if len(keys) == 0 {
		return nil, errors.New("serve: empty key set")
	}
	if len(keys) != len(payloads) {
		return nil, errors.New("serve: keys and payloads length mismatch")
	}
	if !core.IsSorted(keys) {
		return nil, errors.New("serve: keys not sorted")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.NumCPU()
	}
	if cfg.Shards > len(keys) {
		cfg.Shards = len(keys)
	}
	if cfg.Family == "" {
		cfg.Family = "PGM"
	}
	if cfg.Search == nil {
		cfg.Search = search.BinarySearch
	}
	if cfg.Workers <= 0 {
		cfg.Workers = cfg.Shards
		if ncpu := runtime.NumCPU(); cfg.Workers > ncpu {
			cfg.Workers = ncpu
		}
	}
	if cfg.CompactThreshold == 0 {
		cfg.CompactThreshold = DefaultCompactThreshold
	}

	st := &Store{cfg: cfg}
	if cfg.BuilderFor != nil {
		st.builderFor = wrapBuilderFor(cfg.BuilderFor)
	} else {
		family := cfg.Family
		if !registry.Has(family) {
			return nil, fmt.Errorf("serve: unknown index family %q", family)
		}
		st.builderFor = familyBuilderFor(family)
	}

	// Partition: shard i starts at the i-th near-equal cut, advanced
	// past any duplicate run so one key never straddles two shards.
	n := len(keys)
	starts := make([]int, 0, cfg.Shards)
	prev := -1
	for i := 0; i < cfg.Shards; i++ {
		s := i * n / cfg.Shards
		for s > 0 && s < n && keys[s] == keys[s-1] {
			s++
		}
		if s >= n || s <= prev {
			continue // duplicate-heavy data can exhaust distinct cuts
		}
		starts = append(starts, s)
		prev = s
	}
	nShards := len(starts)
	st.seps = make([]core.Key, nShards)
	st.shards = make([]atomic.Pointer[shardState], nShards)
	st.writeMu = make([]sync.Mutex, nShards)
	st.builders = make([]core.Builder, nShards)
	st.builderIDs = make([]string, nShards)

	// Build shard tables concurrently: builds are independent and the
	// learned families are CPU-bound.
	var wg sync.WaitGroup
	errs := make([]error, nShards)
	for i := 0; i < nShards; i++ {
		lo := starts[i]
		hi := n
		if i+1 < nShards {
			hi = starts[i+1]
		}
		st.seps[i] = keys[lo]
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			t, err := st.buildShard(i, keys[lo:hi], payloads[lo:hi])
			if err != nil {
				errs[i] = err
				return
			}
			st.shards[i].Store(&shardState{tab: t, del: emptyDelta})
		}(i, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	st.start()
	return st, nil
}

// familyBuilderFor is the registry-backed shard builder used when no
// custom BuilderFor is configured: the family's mid-sweep entry, with
// its catalog label recorded as the shard's codec tag.
func familyBuilderFor(family string) func(int, []core.Key) (core.Builder, string, error) {
	return func(_ int, keys []core.Key) (core.Builder, string, error) {
		nb, ok := registry.Builder(family, keys)
		if !ok {
			return nil, "", fmt.Errorf("serve: empty sweep for family %q", family)
		}
		return nb.Builder, registry.ID(family, nb.Label), nil
	}
}

// start launches the worker pool and the background compactor over the
// already-populated shard array (shared by New and Open).
func (st *Store) start() {
	nShards := len(st.shards)
	st.scratch.New = func() any { return &batchScratch{} }
	st.jobs = make(chan job)
	for w := 0; w < st.cfg.Workers; w++ {
		st.workersWG.Add(1)
		go st.worker()
	}
	// One compactor: merges are CPU-bound index rebuilds, and a single
	// goroutine keeps them off the serving cores; requests queue.
	st.compactC = make(chan int, 2*nShards)
	st.compactQueued = make([]atomic.Bool, nShards)
	st.compactWG.Add(1)
	go st.compactor()
}

// buildShard picks (and records) the shard's builder and constructs its
// table. Callers that can race hold writeMu[i]; during New each shard
// is touched by exactly one goroutine.
func (st *Store) buildShard(i int, keys []core.Key, payloads []uint64) (*table.Table, error) {
	b, id, err := st.builderFor(i, keys)
	if err != nil {
		return nil, err
	}
	st.builders[i] = b
	st.builderIDs[i] = id
	t, err := table.Build(b, keys, payloads, st.cfg.Search)
	if err != nil {
		return nil, fmt.Errorf("serve: shard %d: %w", i, err)
	}
	return t, nil
}

func (st *Store) worker() {
	defer st.workersWG.Done()
	for j := range st.jobs {
		if j.fbits != nil {
			j.found.Add(int64(j.s.getBatchFound(j.keys, j.out, j.fbits)))
		} else {
			j.found.Add(int64(j.s.getBatch(j.keys, j.out)))
		}
		j.wg.Done()
	}
}

// Close stops the worker pool and the background compactor, then syncs
// and closes any attached write-ahead logs. No reads or writes may be
// in flight or issued after Close; shard states remain readable
// through Get.
func (st *Store) Close() {
	if st.closed.Swap(true) {
		return
	}
	close(st.jobs)
	st.workersWG.Wait()
	close(st.compactC)
	st.compactWG.Wait()
	for i := range st.wals {
		st.writeMu[i].Lock()
		w := st.wals[i]
		st.wals[i] = nil
		st.writeMu[i].Unlock()
		if w != nil {
			if err := w.Close(); err != nil {
				st.notePersistErr(err)
			}
		}
	}
}

// shardOf routes a key to the shard owning its range: the rightmost
// shard whose separator is <= key (keys below every separator belong
// to shard 0, where they are correctly reported absent). It sits on
// every single Get/Put and GetBatch gather, so the generic sort.Search
// closure (an indirect call per probe plus a mispredict-prone branch)
// is replaced by an inlined branch-free ladder: one conditional step
// reduces the separator count to a power of two, then each halving is
// a compare materialized with SETcc and folded in by mask arithmetic.
func (st *Store) shardOf(x core.Key) int {
	seps := st.seps
	lo, width := 0, len(seps)
	if width > 0 {
		w := 1 << (bits.Len(uint(width)) - 1)
		if w != width {
			c := 0
			if seps[width-w] <= x {
				c = 1
			}
			lo = (width - w) & -c
		}
		for w > 1 {
			half := w >> 1
			c := 0
			if seps[lo+half-1] <= x {
				c = 1
			}
			lo += half & -c
			w = half
		}
		c := 0
		if seps[lo] <= x {
			c = 1
		}
		lo += c
	}
	// lo is now the first separator above x; its predecessor owns the
	// key, with below-all-separators keys clamped into shard 0.
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// NumShards reports the number of range partitions actually built.
func (st *Store) NumShards() int { return len(st.shards) }

// Len reports the total number of live key/payload pairs, counting
// pending inserts and deletions not yet compacted.
func (st *Store) Len() int {
	total := 0
	for i := range st.shards {
		total += st.shards[i].Load().liveLen()
	}
	return total
}

// SizeBytes reports the summed index footprint across shards plus the
// pending delta buffers.
func (st *Store) SizeBytes() int {
	total := 0
	for i := range st.shards {
		s := st.shards[i].Load()
		total += s.tab.SizeBytes() + s.del.sizeBytes()
		if s.frozen != nil {
			total += s.frozen.sizeBytes()
		}
	}
	return total
}

// DeltaLen reports the pending (uncompacted) write entries across all
// shards — the staleness axis of the write-path tradeoff.
func (st *Store) DeltaLen() int {
	total := 0
	for i := range st.shards {
		total += st.shards[i].Load().deltaLen()
	}
	return total
}

// Compactions reports the number of completed shard compactions
// (background and manual).
func (st *Store) Compactions() uint64 { return st.compactions.Load() }

// CompactTime reports the cumulative wall time spent merging deltas
// and rebuilding shard indexes — the rebuild-cost axis of the
// write-path tradeoff.
func (st *Store) CompactTime() time.Duration {
	return time.Duration(st.compactNs.Load())
}

// Shard returns shard i's current base table (a consistent immutable
// snapshot; pending delta writes are not reflected in it).
func (st *Store) Shard(i int) *table.Table { return st.shards[i].Load().tab }

// Get returns the live payload for key, or false when absent. Pending
// writes shadow the base table.
func (st *Store) Get(key core.Key) (uint64, bool) {
	return st.shards[st.shardOf(key)].Load().get(key)
}

// Put inserts or updates key with payload. The write is visible to
// every subsequent read (same or other goroutines) as soon as Put
// returns; it lands in the shard's delta buffer and is merged into the
// shard's index by a later compaction.
func (st *Store) Put(key core.Key, payload uint64) {
	st.write(key, payload, false)
}

// Delete removes key. Deleting an absent key is a no-op that still
// costs a tombstone until the next compaction.
func (st *Store) Delete(key core.Key) {
	st.write(key, 0, true)
}

func (st *Store) write(key core.Key, payload uint64, tomb bool) {
	i := st.shardOf(key)
	st.writeMu[i].Lock()
	// WAL-before-state: the record must be on its way to disk before
	// any reader can observe the write, or a crash could lose an
	// acknowledged update. WAL failures (disk full, dead device) are
	// stashed rather than dropped: the write stays visible in memory
	// and PersistErr reports the store's durability is degraded.
	if st.wals != nil && st.wals[i] != nil {
		if err := st.wals[i].Append(persist.Op{Key: key, Val: payload, Tomb: tomb}); err != nil {
			st.notePersistErr(err)
		} else if st.cfg.SyncWrites {
			if err := st.wals[i].Sync(); err != nil {
				st.notePersistErr(err)
			}
		}
	}
	s := st.shards[i].Load()
	ns := &shardState{tab: s.tab, del: s.del.with(key, payload, tomb), frozen: s.frozen}
	st.shards[i].Store(ns)
	trigger := st.cfg.CompactThreshold > 0 &&
		ns.del.len() >= st.cfg.CompactThreshold && ns.frozen == nil
	st.writeMu[i].Unlock()
	if trigger {
		st.requestCompact(i)
	}
}

// requestCompact queues shard i for background compaction, at most one
// outstanding request per shard (a burst of writes past the threshold
// would otherwise flood the queue with duplicates and starve the other
// shards). A dropped or deduplicated signal is recovered by the next
// write past the threshold: the trigger re-fires on every such write.
func (st *Store) requestCompact(i int) {
	if st.closed.Load() {
		return
	}
	if st.compactQueued[i].Swap(true) {
		return // already queued
	}
	// Pending is raised before the send: the compactor may pop and
	// finish the request immediately, and WaitCompactions must never
	// observe a queued-or-running compaction as already drained.
	st.compactPending.Add(1)
	select {
	case st.compactC <- i:
	default: // unreachable at cap 2*shards, but never wedge
		st.compactPending.Add(-1)
		st.compactQueued[i].Store(false)
	}
}

// WaitCompactions blocks until every background compaction queued so
// far has completed. Unlike Compact it forces nothing: shards below
// the threshold keep their deltas.
func (st *Store) WaitCompactions() {
	for st.compactPending.Load() > 0 {
		runtime.Gosched()
	}
}

// compactor drains the request queue. A shard whose active delta
// refilled past the threshold during its own merge is re-compacted in
// place (looping here rather than re-queueing keeps the compactor the
// channel's only consumer and never a producer, so Close can close the
// queue without racing a send). Rebuild errors fold the delta back and
// stop the loop for that request; see compactShard.
func (st *Store) compactor() {
	defer st.compactWG.Done()
	for i := range st.compactC {
		st.compactQueued[i].Store(false)
		for {
			if err := st.compactShard(i); err != nil {
				break
			}
			s := st.shards[i].Load()
			if st.cfg.CompactThreshold <= 0 || s.frozen != nil ||
				s.del.len() < st.cfg.CompactThreshold {
				break
			}
		}
		st.compactPending.Add(-1)
	}
}

// compactShard freezes shard i's active delta, merges it with the base
// run and rebuilds the shard's index off the write lock (writes
// continue into a fresh active delta, readers continue on the frozen
// snapshot), then publishes the merged table with one pointer swap —
// the same build-aside machinery as Replace. A shard already being
// compacted, or with nothing pending, is a no-op.
func (st *Store) compactShard(i int) error {
	st.writeMu[i].Lock()
	s := st.shards[i].Load()
	if s.frozen != nil || s.del.len() == 0 {
		st.writeMu[i].Unlock()
		return nil
	}
	frozen := s.del
	st.shards[i].Store(&shardState{tab: s.tab, del: emptyDelta, frozen: frozen})
	base := s.tab
	builder := st.builders[i]
	builderID := st.builderIDs[i]
	st.writeMu[i].Unlock()

	start := time.Now()
	keys, vals := mergeDelta(base.Keys(), base.Payloads(), frozen)
	var nt *table.Table
	var err error
	if len(keys) == 0 {
		nt = table.Empty(st.cfg.Search)
	} else {
		// Learned families re-tune for the merged key set via their
		// registry rebuild hook; everyone else reuses the shard's
		// builder. A warm-opened shard has no builder value yet — its
		// codec tag names the catalog entry to resolve lazily, here at
		// first compaction rather than at Open, so warm loads never
		// pay a training cost up front.
		var b core.Builder
		var id string
		b, id, err = resolveRebuild(builder, builderID, keys)
		if err == nil {
			nt, err = table.Build(b, keys, vals, st.cfg.Search)
			if err == nil {
				builder, builderID = b, id
			}
		}
	}

	st.writeMu[i].Lock()
	s2 := st.shards[i].Load()
	if s2.frozen != frozen {
		// A Replace superseded the shard wholesale; drop the merge.
		st.writeMu[i].Unlock()
		return nil
	}
	if err != nil {
		// Rebuild failed: fold the frozen delta back under the writes
		// that arrived meanwhile so nothing is lost.
		st.shards[i].Store(&shardState{tab: s2.tab, del: frozen.overlay(s2.del)})
		st.writeMu[i].Unlock()
		return fmt.Errorf("serve: compact shard %d: %w", i, err)
	}
	st.builders[i] = builder
	st.builderIDs[i] = builderID // keeps the manifest codec tag tracking re-tunes
	st.shards[i].Store(&shardState{tab: nt, del: s2.del})
	st.writeMu[i].Unlock()
	st.compactions.Add(1)
	st.compactNs.Add(time.Since(start).Nanoseconds())
	// For an attached store the merge is made durable now: the new
	// base and index are committed to the snapshot directory, then the
	// shard's WAL is truncated to the still-pending writes. On failure
	// the old on-disk pair stays authoritative — replaying the full
	// old WAL over the old base reproduces exactly the state just
	// published, so nothing is lost, and PersistErr reports it.
	if st.dir != "" {
		if perr := st.persistShard(i); perr != nil {
			st.notePersistErr(perr)
		}
	}
	return nil
}

// resolveRebuild picks the builder (and its codec tag) for re-indexing
// a compacted shard. prev non-nil follows the standard rebuild-hook
// path — when the hook re-tunes, the old label no longer describes the
// builder, so the tag degrades to the bare family. prev nil (a
// warm-opened shard) resolves the codec tag against the catalog —
// exact label first, mid-sweep fallback when the tuned ladder no
// longer contains it.
func resolveRebuild(prev core.Builder, id string, keys []core.Key) (core.Builder, string, error) {
	if prev != nil {
		if !registry.HasRebuild(prev.Name()) {
			return prev, id, nil // hookless family: builder and tag unchanged
		}
		b := registry.RebuildBuilder(prev.Name(), prev, keys)
		return b, registry.ID(b.Name(), ""), nil
	}
	family, label := registry.ParseID(id)
	if nb, ok := registry.SweepEntry(family, label, keys); ok {
		return nb.Builder, id, nil
	}
	if nb, ok := registry.Builder(family, keys); ok {
		return nb.Builder, registry.ID(family, nb.Label), nil
	}
	return nil, "", fmt.Errorf("serve: cannot resolve builder for codec tag %q", id)
}

// Compact synchronously merges every shard's pending writes into its
// base table, waiting out any in-flight background compactions. It is
// safe alongside concurrent reads and writes, but it keeps re-merging
// a shard until its delta is empty, so a continuous concurrent write
// load can keep it from returning — quiesce writers when a
// guaranteed-complete checkpoint is needed. Intended for checkpoints,
// tests, and read-latency-sensitive phases.
func (st *Store) Compact() error {
	for i := range st.shards {
		for {
			s := st.shards[i].Load()
			if s.frozen != nil {
				runtime.Gosched() // background merge in flight; wait for its publish
				continue
			}
			if s.del.len() == 0 {
				break
			}
			if err := st.compactShard(i); err != nil {
				return err
			}
		}
	}
	return nil
}

// GetBatch looks up a batch of keys across all shards: out[i] receives
// the live payload for keys[i] (0 when absent) and the number found is
// returned. Keys are gathered per shard, served by the worker pool as
// one batched job per shard (base-table fast path plus delta overlay),
// and scattered back, so a batch touching S shards runs on up to S
// workers concurrently.
func (st *Store) GetBatch(keys []core.Key, out []uint64) int {
	if len(out) < len(keys) {
		panic("serve: GetBatch output shorter than key batch")
	}
	return st.getBatchInto(keys, out, nil)
}

// GetBatchFound is GetBatch plus an explicit per-key found bit: a zero
// payload is indistinguishable from absence in out alone, and found[i]
// is resolved against the same per-shard snapshot as the batch itself —
// unlike a follow-up Get, it cannot observe a write that landed after
// the batch was served.
func (st *Store) GetBatchFound(keys []core.Key, out []uint64, found []bool) int {
	if len(out) < len(keys) || len(found) < len(keys) {
		panic("serve: GetBatchFound output shorter than key batch")
	}
	return st.getBatchInto(keys, out, found)
}

func (st *Store) getBatchInto(keys []core.Key, out []uint64, fbits []bool) int {
	n := len(keys)
	if n == 0 {
		return 0
	}
	nShards := len(st.shards)
	s := st.scratch.Get().(*batchScratch)
	s.ensure(n, nShards)

	// Count keys per shard, prefix-sum into gather offsets, then
	// stable-gather so each shard's keys are contiguous.
	counts := s.offs[:nShards+1]
	for i := range counts {
		counts[i] = 0
	}
	for i, x := range keys {
		sh := int32(st.shardOf(x))
		s.shard[i] = sh
		counts[sh+1]++
	}
	for i := 1; i <= nShards; i++ {
		counts[i] += counts[i-1]
	}
	starts := s.starts[:nShards+1]
	copy(starts, counts)
	for i, x := range keys {
		sh := s.shard[i]
		slot := counts[sh]
		counts[sh] = slot + 1
		s.gkeys[slot] = x
		s.pos[i] = slot
	}

	var wg sync.WaitGroup
	var found atomic.Int64
	for sh := 0; sh < nShards; sh++ {
		lo, hi := starts[sh], starts[sh+1]
		if lo == hi {
			continue
		}
		wg.Add(1)
		j := job{
			s:     st.shards[sh].Load(),
			keys:  s.gkeys[lo:hi],
			out:   s.gout[lo:hi],
			found: &found,
			wg:    &wg,
		}
		if fbits != nil {
			j.fbits = s.gfound[lo:hi]
		}
		st.jobs <- j
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		out[i] = s.gout[s.pos[i]]
	}
	if fbits != nil {
		for i := 0; i < n; i++ {
			fbits[i] = s.gfound[s.pos[i]]
		}
	}
	st.scratch.Put(s)
	return int(found.Load())
}

// Scan visits the store's live pairs with key in [lo, hi) in ascending
// key order, stopping early when visit returns false; it returns the
// number of pairs visited. Each shard is scanned at one consistent
// snapshot (pending writes merged in); the snapshots of different
// shards are taken as the scan reaches them.
func (st *Store) Scan(lo, hi core.Key, visit func(core.Key, uint64) bool) int {
	if hi < lo {
		hi = lo
	}
	n := 0
	counting := func(k core.Key, v uint64) bool {
		n++
		return visit(k, v)
	}
	start := st.shardOf(lo)
	for sh := start; sh < len(st.shards); sh++ {
		if sh > start && st.seps[sh] >= hi {
			break
		}
		if !st.shards[sh].Load().scan(lo, hi, counting) {
			break
		}
	}
	return n
}

// Range returns the store's live pairs with key in [lo, hi) as freshly
// allocated slices, merged across shards and pending writes.
func (st *Store) Range(lo, hi core.Key) ([]core.Key, []uint64) {
	var ks []core.Key
	var vs []uint64
	st.Scan(lo, hi, func(k core.Key, v uint64) bool {
		ks = append(ks, k)
		vs = append(vs, v)
		return true
	})
	return ks, vs
}

func (s *batchScratch) ensure(n, nShards int) {
	if cap(s.shard) < n {
		s.shard = make([]int32, n)
		s.gkeys = make([]core.Key, n)
		s.gout = make([]uint64, n)
		s.gfound = make([]bool, n)
		s.pos = make([]int32, n)
	}
	s.shard = s.shard[:n]
	s.gkeys = s.gkeys[:n]
	s.gout = s.gout[:n]
	s.gfound = s.gfound[:n]
	s.pos = s.pos[:n]
	if cap(s.offs) < nShards+1 {
		s.offs = make([]int32, nShards+1)
		s.starts = make([]int32, nShards+1)
	}
	s.offs = s.offs[:nShards+1]
	s.starts = s.starts[:nShards+1]
}

// Replace rebuilds shard i over new data, discarding the shard's
// pending delta writes (Replace supersedes them wholesale; an in-flight
// compaction of the shard is abandoned at publish time). keys must be
// sorted, stay within the shard's key range (first key equal to the
// shard's separator, last key below the next separator), and match
// payloads in length. Replace is the single-writer path: concurrent
// writes on one shard serialize, readers continue on the old state
// until the atomic swap.
func (st *Store) Replace(i int, keys []core.Key, payloads []uint64) error {
	if i < 0 || i >= len(st.shards) {
		return fmt.Errorf("serve: no shard %d", i)
	}
	if len(keys) == 0 {
		return errors.New("serve: empty replacement")
	}
	if keys[0] != st.seps[i] {
		return fmt.Errorf("serve: replacement must start at separator %d, got %d", st.seps[i], keys[0])
	}
	if i+1 < len(st.seps) && keys[len(keys)-1] >= st.seps[i+1] {
		return fmt.Errorf("serve: replacement key %d crosses into shard %d", keys[len(keys)-1], i+1)
	}
	st.writeMu[i].Lock()
	t, err := st.buildShard(i, keys, payloads)
	if err != nil {
		st.writeMu[i].Unlock()
		return err
	}
	st.shards[i].Store(&shardState{tab: t, del: emptyDelta})
	st.writeMu[i].Unlock()
	// An attached store makes the replacement durable immediately (and
	// truncates the superseded WAL entries with it). The replacement
	// is already published either way, so a commit failure — like the
	// identical failure on the compaction path — degrades durability,
	// not the return value: it is surfaced through PersistErr, and a
	// crash before a later successful commit reverts to the
	// pre-Replace state.
	if st.dir != "" {
		if perr := st.persistShard(i); perr != nil {
			st.notePersistErr(perr)
		}
	}
	return nil
}
