package rmi

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

func allConfigs() []Config {
	kinds := []ModelKind{ModelLinear, ModelLinearSpline, ModelCubic, ModelRadix}
	var cfgs []Config
	for _, s1 := range kinds {
		for _, s2 := range kinds {
			for _, b := range []int{1, 16, 256, 4096} {
				cfgs = append(cfgs, Config{Stage1: s1, Stage2: s2, Branch: b})
			}
		}
	}
	return cfgs
}

func checkValidity(t *testing.T, idx core.Index, keys []core.Key, probes []core.Key) {
	t.Helper()
	for _, x := range probes {
		b := idx.Lookup(x)
		if !core.ValidBound(keys, x, b) {
			t.Fatalf("%s: invalid bound %v for key %d (lb=%d)", idx.Name(), b, x, core.LowerBound(keys, x))
		}
	}
}

// probesFor builds a thorough probe set: every key, absent neighbours,
// and extremes.
func probesFor(keys []core.Key) []core.Key {
	probes := make([]core.Key, 0, 3*len(keys)+4)
	for _, k := range keys {
		probes = append(probes, k)
		probes = append(probes, k+1)
		if k > 0 {
			probes = append(probes, k-1)
		}
	}
	probes = append(probes, 0, 1, ^core.Key(0), ^core.Key(0)-1)
	return probes
}

func TestRMIValidityAllConfigsAllDatasets(t *testing.T) {
	for _, name := range dataset.All() {
		keys := dataset.MustGenerate(name, 5000, 1)
		probes := probesFor(keys)
		for _, cfg := range allConfigs() {
			idx, err := New(keys, cfg)
			if err != nil {
				t.Fatalf("%s %v: %v", name, cfg, err)
			}
			checkValidity(t, idx, keys, probes)
		}
	}
}

func TestRMIExactOnLinearData(t *testing.T) {
	// Perfectly linear data must yield near-zero error: width <= 3
	// (the ±1 absent-key widening).
	keys := make([]core.Key, 1000)
	for i := range keys {
		keys[i] = core.Key(1000 + 10*i)
	}
	idx, err := New(keys, Config{Stage1: ModelLinear, Stage2: ModelLinear, Branch: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		b := idx.Lookup(k)
		if b.Width() > 3 {
			t.Fatalf("bound %v too wide for linear data at key %d", b, k)
		}
		if b.Lo > i || i >= b.Hi {
			t.Fatalf("bound %v misses position %d", b, i)
		}
	}
}

func TestRMIEmptyKeys(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("expected error for empty keys")
	}
}

func TestRMISingleKey(t *testing.T) {
	keys := []core.Key{42}
	idx, err := New(keys, Config{Stage1: ModelLinear, Stage2: ModelLinear, Branch: 8})
	if err != nil {
		t.Fatal(err)
	}
	checkValidity(t, idx, keys, []core.Key{0, 41, 42, 43, ^core.Key(0)})
}

func TestRMIDuplicateKeys(t *testing.T) {
	keys := []core.Key{5, 5, 5, 10, 10, 20, 20, 20, 20, 30}
	idx, err := New(keys, Config{Stage1: ModelLinear, Stage2: ModelLinear, Branch: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkValidity(t, idx, keys, probesFor(keys))
}

func TestRMIBranchClamping(t *testing.T) {
	keys := []core.Key{1, 2, 3}
	idx, err := New(keys, Config{Stage1: ModelLinear, Stage2: ModelLinear, Branch: 100})
	if err != nil {
		t.Fatal(err)
	}
	if idx.NumLeaves() > 3 {
		t.Errorf("branch not clamped: %d leaves", idx.NumLeaves())
	}
	idx2, err := New(keys, Config{Stage1: ModelLinear, Stage2: ModelLinear, Branch: 0})
	if err != nil {
		t.Fatal(err)
	}
	if idx2.NumLeaves() != 1 {
		t.Errorf("zero branch should clamp to 1, got %d", idx2.NumLeaves())
	}
}

func TestRMISizeGrowsWithBranch(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Amzn, 10000, 1)
	small, _ := New(keys, Config{Stage1: ModelLinear, Stage2: ModelLinear, Branch: 16})
	large, _ := New(keys, Config{Stage1: ModelLinear, Stage2: ModelLinear, Branch: 1024})
	if small.SizeBytes() >= large.SizeBytes() {
		t.Errorf("size should grow with branch: %d vs %d", small.SizeBytes(), large.SizeBytes())
	}
}

func TestRMIErrorShrinksWithBranch(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Amzn, 50000, 1)
	prev := math.Inf(1)
	for _, b := range []int{16, 256, 4096} {
		idx, _ := New(keys, Config{Stage1: ModelLinear, Stage2: ModelLinear, Branch: b})
		e := idx.AvgLog2Error()
		if e > prev+0.5 { // allow small non-monotonic wiggle
			t.Errorf("log2 error should shrink with branch: B=%d e=%f prev=%f", b, e, prev)
		}
		prev = e
	}
}

func TestRMIOSMHarderThanAmzn(t *testing.T) {
	// The paper's core observation about osm: at equal architecture,
	// the model error is much larger.
	n := 50000
	amzn := dataset.MustGenerate(dataset.Amzn, n, 1)
	osm := dataset.MustGenerate(dataset.OSM, n, 1)
	cfg := Config{Stage1: ModelLinear, Stage2: ModelLinear, Branch: 1024}
	ia, _ := New(amzn, cfg)
	io, _ := New(osm, cfg)
	if io.AvgLog2Error() <= ia.AvgLog2Error() {
		t.Errorf("osm log2 error (%f) should exceed amzn (%f)", io.AvgLog2Error(), ia.AvgLog2Error())
	}
}

func TestRMIBuilderInterface(t *testing.T) {
	var b core.Builder = Builder{Config: Config{Stage1: ModelLinear, Stage2: ModelLinear, Branch: 64}}
	if b.Name() != "RMI" {
		t.Errorf("builder name = %q", b.Name())
	}
	keys := dataset.MustGenerate(dataset.Wiki, 2000, 1)
	idx, err := b.Build(keys)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Name() != "RMI" {
		t.Errorf("index name = %q", idx.Name())
	}
	if idx.SizeBytes() <= 0 {
		t.Error("size must be positive")
	}
	checkValidity(t, idx, keys, probesFor(keys))
}

func TestRMIMaxErrorWidth(t *testing.T) {
	keys := dataset.MustGenerate(dataset.OSM, 5000, 1)
	idx, _ := New(keys, Config{Stage1: ModelLinear, Stage2: ModelLinear, Branch: 64})
	w := idx.MaxErrorWidth()
	if w < 1 {
		t.Errorf("max error width %d < 1", w)
	}
	// Every bound must be no wider than the max error width.
	for _, k := range keys[:500] {
		if b := idx.Lookup(k); b.Width() > w {
			t.Errorf("bound %v wider than MaxErrorWidth %d", b, w)
		}
	}
}

func TestParetoConfigs(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Amzn, 100000, 1)
	cfgs := ParetoConfigs(keys, 5)
	if len(cfgs) == 0 || len(cfgs) > 5 {
		t.Fatalf("got %d configs", len(cfgs))
	}
	// Branch factors must span small to large.
	if cfgs[0].Branch >= cfgs[len(cfgs)-1].Branch {
		t.Errorf("configs not spanning sizes: %v", cfgs)
	}
	for _, cfg := range cfgs {
		idx, err := New(keys, cfg)
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		checkValidity(t, idx, keys, keys[:200])
	}
}

func TestTuneRespectsBudget(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Amzn, 100000, 1)
	budget := 64 * 1024
	cfg := Tune(keys, budget)
	idx, err := New(keys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if idx.SizeBytes() > budget {
		t.Errorf("tuned size %d exceeds budget %d", idx.SizeBytes(), budget)
	}
}

func TestConfigString(t *testing.T) {
	c := Config{Stage1: ModelCubic, Stage2: ModelLinear, Branch: 128}
	if got := c.String(); got != "rmi[cubic,linear,B=128]" {
		t.Errorf("String = %q", got)
	}
	if ModelKind(99).String() != "unknown" {
		t.Error("unknown kind string")
	}
}

func TestModelFitMonotone(t *testing.T) {
	// Whatever the data, fitted models must be monotone non-decreasing
	// over the training range (validity depends on it).
	keyset := [][]float64{
		{1, 2, 3, 4, 5, 6, 7, 8},
		{1, 10, 11, 12, 1000, 1001, 5000, 100000},
		{5, 5, 5, 5, 5}, // all equal
		{0, 1e18, 2e18, 3e18},
		{1, 2, 4, 8, 16, 32, 64, 128, 256, 512},
	}
	for _, keys := range keyset {
		for _, kind := range []ModelKind{ModelLinear, ModelLinearSpline, ModelCubic, ModelRadix} {
			m := fitModel(kind, keys, 0)
			prev := math.Inf(-1)
			for _, k := range keys {
				p := m.predict(k)
				if p < prev-1e-6 {
					t.Fatalf("kind %v on %v: non-monotone at key %v (%f < %f)", kind, keys, k, p, prev)
				}
				prev = p
			}
		}
	}
}

func TestCubicMonotoneCheck(t *testing.T) {
	if !cubicMonotoneOn01(1, 0, 0) {
		t.Error("linear-in-cubic should be monotone")
	}
	if cubicMonotoneOn01(-1, 0, 0) {
		t.Error("negative slope should not be monotone")
	}
	// Derivative dips negative in the middle: 1 - 6t + 6t² at t=0.5 is -0.5.
	if cubicMonotoneOn01(1, -3, 2) {
		t.Error("mid-dip cubic should not be monotone")
	}
}

func TestFitCubicFallback(t *testing.T) {
	// Fewer than 4 points cannot fit a cubic; must fall back to linear.
	m := fitModel(ModelCubic, []float64{1, 2, 3}, 0)
	if m.kind == ModelCubic {
		t.Error("cubic fit on 3 points should fall back")
	}
}
