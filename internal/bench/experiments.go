package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fast"
	"repro/internal/hashidx"
	"repro/internal/perfsim"
	"repro/internal/pgm"
	"repro/internal/rbs"
	"repro/internal/registry"
	"repro/internal/rmi"
	"repro/internal/rs"
	"repro/internal/search"
	"repro/internal/stats"

	artpkg "repro/internal/art"
)

// Options scales the experiments. Scale 1 corresponds to the default
// laptop-scale dataset size (the paper's 200M keys map to DefaultN).
type Options struct {
	N       int // dataset size; 0 = dataset.DefaultN/10 (quick)
	Lookups int // lookup count; 0 = N/10
	Seed    uint64
}

func (o Options) withDefaults() Options {
	if o.N == 0 {
		o.N = dataset.DefaultN / 10
	}
	if o.Lookups == 0 {
		o.Lookups = o.N / 10
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

func (o Options) env(name dataset.Name) (*Env, error) {
	return NewEnv(name, o.N, o.Lookups, o.Seed)
}

// Table1 prints the capability matrix of Table 1 (static facts about
// the implemented structures).
func Table1(w io.Writer) {
	fmt.Fprintln(w, "Table 1: search techniques evaluated")
	fmt.Fprintf(w, "%-10s %-8s %-8s %s\n", "Method", "Updates", "Ordered", "Type")
	rows := [][4]string{
		{"PGM", "Yes", "Yes", "Learned"},
		{"RS", "No", "Yes", "Learned"},
		{"RMI", "No", "Yes", "Learned"},
		{"BTree", "Yes", "Yes", "Tree"},
		{"IBTree", "Yes", "Yes", "Tree"},
		{"FAST", "No", "Yes", "Tree"},
		{"ART", "Yes", "Yes", "Trie"},
		{"FST", "No", "Yes", "Trie"},
		{"Wormhole", "Yes", "Yes", "Hybrid hash/trie"},
		{"CuckooMap", "Yes", "No", "Hash"},
		{"RobinHash", "Yes", "No", "Hash"},
		{"RBS", "No", "Yes", "Lookup table"},
		{"BS", "No", "Yes", "Binary search"},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-8s %-8s %s\n", r[0], r[1], r[2], r[3])
	}
}

// Fig6 prints CDF samples for each dataset (Figure 6).
func Fig6(w io.Writer, o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(w, "Figure 6: dataset CDFs (normalized key -> relative position)")
	for _, name := range dataset.All() {
		keys, err := dataset.Generate(name, o.N, o.Seed)
		if err != nil {
			return err
		}
		xs, ys := dataset.CDF(keys, 21)
		fmt.Fprintf(w, "%s:\n", name)
		minK, maxK := float64(xs[0]), float64(xs[len(xs)-1])
		for i := range xs {
			nk := 0.0
			if maxK > minK {
				nk = (float64(xs[i]) - minK) / (maxK - minK)
			}
			fmt.Fprintf(w, "  key=%.3f cdf=%.3f\n", nk, ys[i])
		}
	}
	return nil
}

// Fig7 prints the Pareto sweep of Figure 7: size vs warm lookup time
// for every structure family on every dataset, plus the BS baseline.
func Fig7(w io.Writer, o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(w, "Figure 7: performance/size tradeoffs (warm cache, tight loop)")
	fmt.Fprintf(w, "%-6s %-8s %-24s %12s %12s\n", "data", "index", "config", "size(MB)", "ns/lookup")
	for _, name := range dataset.All() {
		e, err := o.env(name)
		if err != nil {
			return err
		}
		bs := MeasureWarm(e, mustBS(e), search.BinarySearch)
		fmt.Fprintf(w, "%-6s %-8s %-24s %12.4f %12.1f   <- baseline (size 0)\n",
			name, "BS", "", 0.0, bs.NsPerLookup)
		for _, family := range registry.ParetoFamilies {
			for _, nb := range registry.Sweep(family, e.Keys) {
				idx, err := nb.Builder.Build(e.Keys)
				if err != nil {
					continue
				}
				m := MeasureWarm(e, idx, search.BinarySearch)
				fmt.Fprintf(w, "%-6s %-8s %-24s %12.4f %12.1f\n",
					name, family, nb.Label, MB(idx.SizeBytes()), m.NsPerLookup)
			}
		}
	}
	return nil
}

// Fig8 prints the string-structure comparison of Figure 8 on amzn and
// face: FST and Wormhole against RMI and BTree.
func Fig8(w io.Writer, o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(w, "Figure 8: structures designed for strings, on integer keys")
	fmt.Fprintf(w, "%-6s %-9s %-24s %12s %12s\n", "data", "index", "config", "size(MB)", "ns/lookup")
	for _, name := range []dataset.Name{dataset.Amzn, dataset.Face} {
		e, err := o.env(name)
		if err != nil {
			return err
		}
		bs := MeasureWarm(e, mustBS(e), search.BinarySearch)
		fmt.Fprintf(w, "%-6s %-9s %-24s %12.4f %12.1f   <- baseline\n", name, "BS", "", 0.0, bs.NsPerLookup)
		for _, family := range registry.StringFamilies {
			for _, nb := range registry.Sweep(family, e.Keys) {
				idx, err := nb.Builder.Build(e.Keys)
				if err != nil {
					continue
				}
				m := MeasureWarm(e, idx, search.BinarySearch)
				fmt.Fprintf(w, "%-6s %-9s %-24s %12.4f %12.1f\n",
					name, family, nb.Label, MB(idx.SizeBytes()), m.NsPerLookup)
			}
		}
	}
	return nil
}

// Table2 prints the fastest variant of each structure against the two
// hashing techniques on amzn (Table 2).
func Table2(w io.Writer, o Options) error {
	o = o.withDefaults()
	e, err := o.env(dataset.Amzn)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table 2: fastest variant of each index vs hashing (amzn)")
	fmt.Fprintf(w, "%-10s %12s %12s   %s\n", "Method", "ns/lookup", "size(MB)", "config")
	for _, family := range registry.Table2Families {
		nb, idx, ns := BestVariant(e, family, func(e *Env, idx core.Index) float64 {
			return MeasureWarm(e, idx, search.BinarySearch).NsPerLookup
		})
		if idx == nil {
			continue
		}
		fmt.Fprintf(w, "%-10s %12.1f %12.4f   %s\n", family, ns, MB(idx.SizeBytes()), nb.Label)
	}
	return nil
}

// Fig9 prints the dataset-size scaling of Figure 9: amzn at 1x..4x.
func Fig9(w io.Writer, o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(w, "Figure 9: performance/size across dataset sizes (amzn)")
	fmt.Fprintf(w, "%-9s %-8s %-24s %12s %12s\n", "keys", "index", "config", "size(MB)", "ns/lookup")
	for mult := 1; mult <= 4; mult++ {
		e, err := NewEnv(dataset.Amzn, o.N*mult, o.Lookups, o.Seed)
		if err != nil {
			return err
		}
		for _, family := range []string{"RMI", "PGM", "RS", "BTree"} {
			for _, nb := range registry.Sweep(family, e.Keys) {
				idx, err := nb.Builder.Build(e.Keys)
				if err != nil {
					continue
				}
				m := MeasureWarm(e, idx, search.BinarySearch)
				fmt.Fprintf(w, "%-9d %-8s %-24s %12.4f %12.1f\n",
					o.N*mult, family, nb.Label, MB(idx.SizeBytes()), m.NsPerLookup)
			}
		}
	}
	return nil
}

// Fig10 prints the 32-bit vs 64-bit key comparison of Figure 10 on
// amzn. Learned structures run on rank-preserving 32-bit rescalings
// widened back to uint64 (the paper's RMI/RS implementations widen to
// float64 anyway); BTree and FAST additionally run native 32-bit
// instantiations where key packing matters architecturally.
func Fig10(w io.Writer, o Options) error {
	o = o.withDefaults()
	e64, err := o.env(dataset.Amzn)
	if err != nil {
		return err
	}
	k32 := dataset.To32(e64.Keys)
	widened := make([]core.Key, len(k32))
	for i, k := range k32 {
		widened[i] = core.Key(k)
	}
	e32 := &Env{Dataset: "amzn32", Keys: widened, Payloads: e64.Payloads,
		Lookups: dataset.Lookups(widened, o.Lookups, o.Seed)}

	fmt.Fprintln(w, "Figure 10: 32-bit vs 64-bit keys (amzn)")
	fmt.Fprintf(w, "%-8s %-6s %-24s %12s %12s\n", "index", "bits", "config", "size(MB)", "ns/lookup")
	for _, family := range []string{"RMI", "RS", "PGM", "BTree", "FAST"} {
		for _, nb := range registry.Sweep(family, e64.Keys) {
			idx, err := nb.Builder.Build(e64.Keys)
			if err != nil {
				continue
			}
			m := MeasureWarm(e64, idx, search.BinarySearch)
			fmt.Fprintf(w, "%-8s %-6s %-24s %12.4f %12.1f\n", family, "64", nb.Label, MB(idx.SizeBytes()), m.NsPerLookup)
		}
		for _, nb := range registry.Sweep(family, e32.Keys) {
			idx, err := nb.Builder.Build(e32.Keys)
			if err != nil {
				continue
			}
			m := MeasureWarm(e32, idx, search.BinarySearch)
			size := idx.SizeBytes()
			if family == "BTree" || family == "FAST" {
				// Native 32-bit trees halve key storage; report the
				// native footprint measured below.
				size = native32Size(family, k32)
			}
			fmt.Fprintf(w, "%-8s %-6s %-24s %12.4f %12.1f\n", family, "32", nb.Label, MB(size), m.NsPerLookup)
		}
	}
	// Native 32-bit lookup loops for the tree structures.
	fmt.Fprintln(w, "native 32-bit tree loops (Ceiling only):")
	fmt.Fprintf(w, "  BTree32: %.1f ns/op\n", native32BTreeNs(k32, e32))
	fmt.Fprintf(w, "  FAST32:  %.1f ns/op\n", native32FASTNs(k32, e32))
	return nil
}

func native32Size(family string, k32 []core.Key32) int {
	switch family {
	case "BTree":
		vals := make([]int32, len(k32))
		for i := range vals {
			vals[i] = int32(i)
		}
		t, err := btree.NewTree(k32, vals, false)
		if err != nil {
			return 0
		}
		return t.SizeBytes()
	case "FAST":
		t, err := fast.NewTree(k32)
		if err != nil {
			return 0
		}
		return t.SizeBytes()
	}
	return 0
}

func native32BTreeNs(k32 []core.Key32, e *Env) float64 {
	vals := make([]int32, len(k32))
	for i := range vals {
		vals[i] = int32(i)
	}
	t, err := btree.NewTree(k32, vals, false)
	if err != nil {
		return 0
	}
	lookups := make([]core.Key32, len(e.Lookups))
	for i, x := range e.Lookups {
		lookups[i] = core.Key32(x)
	}
	var sum int64
	start := time.Now()
	for _, x := range lookups {
		v, found, _, _ := t.Ceiling(x)
		if found {
			sum += int64(v)
		}
	}
	elapsed := time.Since(start)
	_ = sum
	return float64(elapsed.Nanoseconds()) / float64(len(lookups))
}

func native32FASTNs(k32 []core.Key32, e *Env) float64 {
	t, err := fast.NewTree(k32)
	if err != nil {
		return 0
	}
	lookups := make([]core.Key32, len(e.Lookups))
	for i, x := range e.Lookups {
		lookups[i] = core.Key32(x)
	}
	var sum int
	start := time.Now()
	for _, x := range lookups {
		sum += t.Ceiling(x)
	}
	elapsed := time.Since(start)
	_ = sum
	return float64(elapsed.Nanoseconds()) / float64(len(lookups))
}

// Fig11 prints the last-mile search comparison of Figure 11: binary,
// linear and interpolation search for each learned structure on amzn
// and osm.
func Fig11(w io.Writer, o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(w, "Figure 11: last-mile search functions")
	fmt.Fprintf(w, "%-6s %-8s %-24s %-14s %12s\n", "data", "index", "config", "search", "ns/lookup")
	for _, name := range []dataset.Name{dataset.Amzn, dataset.OSM} {
		e, err := o.env(name)
		if err != nil {
			return err
		}
		for _, family := range []string{"RMI", "PGM", "RS", "RBS"} {
			for _, nb := range registry.Sweep(family, e.Keys) {
				idx, err := nb.Builder.Build(e.Keys)
				if err != nil {
					continue
				}
				for _, kind := range []search.Kind{search.Binary, search.Linear, search.Interpolation} {
					m := MeasureWarm(e, idx, search.ByKind(kind))
					fmt.Fprintf(w, "%-6s %-8s %-24s %-14s %12.1f\n",
						name, family, nb.Label, kind, m.NsPerLookup)
				}
			}
		}
	}
	return nil
}

// CounterRow is one structure+configuration sample of Figure 12 /
// Section 4.3: measured lookup latency alongside simulated counters.
type CounterRow struct {
	Dataset      dataset.Name
	Family       string
	Label        string
	SizeMB       float64
	Log2Err      float64
	NsPerLookup  float64
	CacheMisses  float64
	BranchMisses float64
	Instructions float64
}

// CollectCounters measures warm lookup latency and simulated counters
// for every configuration of the given families on a dataset.
func CollectCounters(o Options, name dataset.Name, families []string) ([]CounterRow, error) {
	o = o.withDefaults()
	e, err := o.env(name)
	if err != nil {
		return nil, err
	}
	var rows []CounterRow
	for _, family := range families {
		for _, nb := range registry.Sweep(family, e.Keys) {
			idx, err := nb.Builder.Build(e.Keys)
			if err != nil {
				continue
			}
			tr, m := traceFor(family, idx, e)
			if tr == nil {
				continue
			}
			meas := measureWarmBest(e, idx, 3)
			// Warm the simulated cache, then measure.
			for _, x := range e.Lookups {
				tr.Lookup(x)
			}
			m.ResetCounters()
			for _, x := range e.Lookups {
				tr.Lookup(x)
			}
			c := m.Counters()
			nl := float64(len(e.Lookups))
			rows = append(rows, CounterRow{
				Dataset:      name,
				Family:       family,
				Label:        nb.Label,
				SizeMB:       MB(idx.SizeBytes()),
				Log2Err:      AvgLog2Width(e, idx),
				NsPerLookup:  meas.NsPerLookup,
				CacheMisses:  float64(c.CacheMisses) / nl,
				BranchMisses: float64(c.BranchMisses) / nl,
				Instructions: float64(c.Instructions) / nl,
			})
		}
	}
	return rows, nil
}

// traceFor wires a built index into a fresh simulated machine. The
// simulated cache is sized relative to the data so the paper's regime
// (working set far larger than the LLC) holds at laptop scale: one
// byte of cache per key keeps the ratio near the paper's 3.2 GB data
// to 27.5 MB LLC.
func traceFor(family string, idx core.Index, e *Env) (perfsim.Traced, *perfsim.Machine) {
	cache := len(e.Keys)
	if cache < 128<<10 {
		cache = 128 << 10
	}
	if cache > 4<<20 {
		cache = 4 << 20
	}
	m := perfsim.New(perfsim.Config{CacheBytes: cache})
	switch v := idx.(type) {
	case *rmi.Index:
		return perfsim.NewTracedRMI(v, m, e.Keys), m
	case *pgm.Index:
		return perfsim.NewTracedPGM(v, m, e.Keys), m
	case *rs.Index:
		return perfsim.NewTracedRS(v, m, e.Keys), m
	case *rbs.Index:
		return perfsim.NewTracedRBS(v, m, e.Keys), m
	case *btree.Index:
		return perfsim.NewTracedBTree(v, m, e.Keys), m
	case *artpkg.Index:
		return perfsim.NewTracedART(v, m, e.Keys), m
	case *fast.Index:
		return perfsim.NewTracedFAST(v, m, e.Keys), m
	}
	if family == "RobinHash" {
		tbl, err := hashidx.NewRobinHood(len(e.Keys), 0.25)
		if err != nil {
			return nil, nil
		}
		for i, k := range e.Keys {
			tbl.Insert(k, int32(i))
		}
		return perfsim.NewTracedRobin(tbl, m, e.Keys), m
	}
	return nil, nil
}

// Fig12 prints lookup time against each candidate explanatory metric
// (Figure 12) for amzn and osm.
func Fig12(w io.Writer, o Options) error {
	fmt.Fprintln(w, "Figure 12: lookup time vs candidate explanatory metrics")
	fmt.Fprintf(w, "%-6s %-8s %-24s %10s %8s %10s %10s %10s %10s\n",
		"data", "index", "config", "size(MB)", "log2err", "ns/lookup", "c-miss", "br-miss", "instr")
	for _, name := range []dataset.Name{dataset.Amzn, dataset.OSM} {
		rows, err := CollectCounters(o, name, registry.Fig12Families)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Fprintf(w, "%-6s %-8s %-24s %10.4f %8.2f %10.1f %10.2f %10.2f %10.1f\n",
				r.Dataset, r.Family, r.Label, r.SizeMB, r.Log2Err, r.NsPerLookup,
				r.CacheMisses, r.BranchMisses, r.Instructions)
		}
	}
	return nil
}

// measureWarmBest returns the fastest of reps warm measurements,
// suppressing scheduler noise for the regression analysis.
func measureWarmBest(e *Env, idx core.Index, reps int) Measurement {
	best := MeasureWarm(e, idx, search.BinarySearch)
	for r := 1; r < reps; r++ {
		if m := MeasureWarm(e, idx, search.BinarySearch); m.NsPerLookup < best.NsPerLookup {
			best = m
		}
	}
	return best
}

// Regress runs the Section 4.3 analysis: an OLS of lookup time on
// cache misses, branch misses and instruction count across every
// structure and dataset, and a second model adding size and log2
// error to confirm they add no significant explanatory power.
//
// The paper's R² ≈ 0.95 arises in a memory-bound regime (200M keys vs
// a 27 MB LLC); the dataset size is floored here so the working set
// exceeds the host LLC, otherwise lookup latency decouples from memory
// behaviour and the regression degenerates.
func Regress(w io.Writer, o Options) error {
	o = o.withDefaults()
	if o.N < 2_000_000 {
		o.N = 2_000_000
	}
	if o.Lookups < 100_000 {
		o.Lookups = 100_000
	}
	var rows []CounterRow
	for _, name := range dataset.All() {
		r, err := CollectCounters(o, name, registry.Fig12Families)
		if err != nil {
			return err
		}
		rows = append(rows, r...)
	}
	y := make([]float64, len(rows))
	cm := make([]float64, len(rows))
	bm := make([]float64, len(rows))
	in := make([]float64, len(rows))
	sz := make([]float64, len(rows))
	le := make([]float64, len(rows))
	for i, r := range rows {
		y[i] = r.NsPerLookup
		cm[i] = r.CacheMisses
		bm[i] = r.BranchMisses
		in[i] = r.Instructions
		sz[i] = r.SizeMB
		le[i] = r.Log2Err
	}
	fmt.Fprintln(w, "Section 4.3 regression: lookup time ~ cache misses + branch misses + instructions")
	reg, err := stats.OLS(y, []string{"cache_misses", "branch_misses", "instructions"}, cm, bm, in)
	if err != nil {
		return err
	}
	fmt.Fprint(w, reg.String())
	fmt.Fprintln(w, "extended model (+size, +log2err):")
	reg2, err := stats.OLS(y, []string{"cache_misses", "branch_misses", "instructions", "size_mb", "log2_err"},
		cm, bm, in, sz, le)
	if err != nil {
		return err
	}
	fmt.Fprint(w, reg2.String())
	return nil
}

// Fig13 prints the compression view of Figure 13: size vs log2 error
// for the learned structures and the BTree.
func Fig13(w io.Writer, o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(w, "Figure 13: size vs log2 error (learned indexes as compression)")
	fmt.Fprintf(w, "%-6s %-8s %-24s %12s %10s\n", "data", "index", "config", "size(MB)", "log2err")
	for _, name := range []dataset.Name{dataset.Amzn, dataset.OSM} {
		e, err := o.env(name)
		if err != nil {
			return err
		}
		for _, family := range []string{"RS", "RMI", "PGM", "BTree"} {
			for _, nb := range registry.Sweep(family, e.Keys) {
				idx, err := nb.Builder.Build(e.Keys)
				if err != nil {
					continue
				}
				fmt.Fprintf(w, "%-6s %-8s %-24s %12.4f %10.2f\n",
					name, family, nb.Label, MB(idx.SizeBytes()), AvgLog2Width(e, idx))
			}
		}
	}
	return nil
}

// Fig14 prints the warm/cold cache comparison of Figure 14 on amzn.
func Fig14(w io.Writer, o Options) error {
	o = o.withDefaults()
	e, err := o.env(dataset.Amzn)
	if err != nil {
		return err
	}
	coldOps := o.Lookups / 20
	if coldOps < 50 {
		coldOps = 50
	}
	fmt.Fprintln(w, "Figure 14: warm vs cold cache (amzn)")
	fmt.Fprintf(w, "%-8s %-24s %12s %12s %12s\n", "index", "config", "size(MB)", "warm(ns)", "cold(ns)")
	for _, family := range []string{"RMI", "RS", "PGM", "BTree", "FAST"} {
		for _, nb := range registry.Sweep(family, e.Keys) {
			idx, err := nb.Builder.Build(e.Keys)
			if err != nil {
				continue
			}
			warm := MeasureWarm(e, idx, search.BinarySearch)
			cold := MeasureCold(e, idx, search.BinarySearch, coldOps)
			fmt.Fprintf(w, "%-8s %-24s %12.4f %12.1f %12.1f\n",
				family, nb.Label, MB(idx.SizeBytes()), warm.NsPerLookup, cold.NsPerLookup)
		}
	}
	return nil
}

// Fig15 prints the fence comparison of Figure 15 on amzn.
func Fig15(w io.Writer, o Options) error {
	o = o.withDefaults()
	e, err := o.env(dataset.Amzn)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 15: serialized (\"fenced\") vs pipelined lookups (amzn)")
	fmt.Fprintf(w, "%-8s %-24s %12s %12s %12s\n", "index", "config", "size(MB)", "no-fence", "fence")
	for _, family := range []string{"RMI", "RS", "PGM", "BTree", "FAST"} {
		for _, nb := range registry.Sweep(family, e.Keys) {
			idx, err := nb.Builder.Build(e.Keys)
			if err != nil {
				continue
			}
			plain := MeasureWarm(e, idx, search.BinarySearch)
			fenced := MeasureFenced(e, idx, search.BinarySearch)
			fmt.Fprintf(w, "%-8s %-24s %12.4f %12.1f %12.1f\n",
				family, nb.Label, MB(idx.SizeBytes()), plain.NsPerLookup, fenced.NsPerLookup)
		}
	}
	return nil
}

// Fig16a prints multithreaded throughput against thread count, with
// and without the serialized loop, at a mid-size configuration.
func Fig16a(w io.Writer, o Options) error {
	o = o.withDefaults()
	e, err := o.env(dataset.Amzn)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 16a: threads vs throughput (amzn, mid-size configs)")
	fmt.Fprintf(w, "%-10s %-8s %16s %16s\n", "index", "threads", "Mlookups/s", "Mlookups/s(fence)")
	for _, family := range registry.Fig16Families {
		idx := midVariant(e, family)
		if idx == nil {
			continue
		}
		for _, threads := range MaxThreads() {
			plain := MeasureThroughput(e, idx, search.BinarySearch, threads, false)
			fenced := MeasureThroughput(e, idx, search.BinarySearch, threads, true)
			fmt.Fprintf(w, "%-10s %-8d %16.2f %16.2f\n",
				family, threads, plain/1e6, fenced/1e6)
		}
	}
	return nil
}

// midVariant picks the middle configuration of a family's sweep (the
// paper fixes ~50MB models for Figure 16a).
func midVariant(e *Env, family string) core.Index {
	sweep := registry.Sweep(family, e.Keys)
	if len(sweep) == 0 {
		return nil
	}
	nb := sweep[len(sweep)/2]
	idx, err := nb.Builder.Build(e.Keys)
	if err != nil {
		return nil
	}
	return idx
}

// Fig16b prints size vs max-thread throughput.
func Fig16b(w io.Writer, o Options) error {
	o = o.withDefaults()
	e, err := o.env(dataset.Amzn)
	if err != nil {
		return err
	}
	threads := MaxThreads()
	maxT := threads[len(threads)-1]
	fmt.Fprintln(w, "Figure 16b: size vs throughput at max threads (amzn)")
	fmt.Fprintf(w, "%-10s %-24s %12s %16s\n", "index", "config", "size(MB)", "Mlookups/s")
	for _, family := range []string{"RMI", "PGM", "RS", "BTree", "ART"} {
		for _, nb := range registry.Sweep(family, e.Keys) {
			idx, err := nb.Builder.Build(e.Keys)
			if err != nil {
				continue
			}
			tp := MeasureThroughput(e, idx, search.BinarySearch, maxT, false)
			fmt.Fprintf(w, "%-10s %-24s %12.4f %16.2f\n",
				family, nb.Label, MB(idx.SizeBytes()), tp/1e6)
		}
	}
	return nil
}

// Fig16c prints simulated cache misses per lookup per second: the
// simulated misses-per-lookup of each structure divided by its
// measured lookup time.
func Fig16c(w io.Writer, o Options) error {
	fmt.Fprintln(w, "Figure 16c: cache misses per lookup per second (simulated misses / measured ns)")
	fmt.Fprintf(w, "%-10s %12s %12s %16s\n", "index", "c-miss/op", "ns/lookup", "miss/op/s (M)")
	rows, err := CollectCountersMid(o, dataset.Amzn, registry.Fig16Families)
	if err != nil {
		return err
	}
	for _, r := range rows {
		perSec := r.CacheMisses / (r.NsPerLookup * 1e-9) / 1e6
		fmt.Fprintf(w, "%-10s %12.2f %12.1f %16.1f\n", r.Family, r.CacheMisses, r.NsPerLookup, perSec)
	}
	return nil
}

// CollectCountersMid is CollectCounters restricted to each family's
// middle configuration.
func CollectCountersMid(o Options, name dataset.Name, families []string) ([]CounterRow, error) {
	o = o.withDefaults()
	e, err := o.env(name)
	if err != nil {
		return nil, err
	}
	var rows []CounterRow
	for _, family := range families {
		sweep := registry.Sweep(family, e.Keys)
		if len(sweep) == 0 {
			continue
		}
		nb := sweep[len(sweep)/2]
		idx, err := nb.Builder.Build(e.Keys)
		if err != nil {
			continue
		}
		tr, m := traceFor(family, idx, e)
		if tr == nil {
			continue
		}
		meas := MeasureWarm(e, idx, search.BinarySearch)
		for _, x := range e.Lookups {
			tr.Lookup(x)
		}
		m.ResetCounters()
		for _, x := range e.Lookups {
			tr.Lookup(x)
		}
		c := m.Counters()
		nl := float64(len(e.Lookups))
		rows = append(rows, CounterRow{
			Dataset: name, Family: family, Label: nb.Label,
			SizeMB:      MB(idx.SizeBytes()),
			NsPerLookup: meas.NsPerLookup,
			CacheMisses: float64(c.CacheMisses) / nl,
		})
	}
	return rows, nil
}

// Fig17 prints single-threaded build times at 1x..4x dataset scale
// for the fastest-lookup variant of each structure (Figure 17).
func Fig17(w io.Writer, o Options) error {
	o = o.withDefaults()
	families := []string{"PGM", "RS", "RMI", "RBS", "ART", "BTree", "IBTree", "FAST", "FST", "Wormhole", "RobinHash"}
	fmt.Fprintln(w, "Figure 17: build times (fastest lookup variants, amzn)")
	fmt.Fprintf(w, "%-10s %-9s %12s\n", "index", "keys", "build(ms)")
	for mult := 1; mult <= 4; mult++ {
		e, err := NewEnv(dataset.Amzn, o.N*mult, o.Lookups, o.Seed)
		if err != nil {
			return err
		}
		for _, family := range families {
			nb, idx, _ := BestVariant(e, family, func(e *Env, idx core.Index) float64 {
				return MeasureWarm(e, idx, search.BinarySearch).NsPerLookup
			})
			if idx == nil {
				continue
			}
			_, dur, err := MeasureBuild(nb.Builder, e.Keys)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "%-10s %-9d %12.2f\n", family, o.N*mult, float64(dur.Microseconds())/1000)
		}
	}
	return nil
}

func mustBS(e *Env) core.Index {
	idx, err := rbs.BinarySearchBuilder{}.Build(e.Keys)
	if err != nil {
		panic(err)
	}
	return idx
}
