package net

import (
	"testing"
	"time"

	"repro/internal/load"
)

// TestShedNotCollapse is the satellite overload regression: the server
// is pinned well below the offered rate (service capacity is
// BatchCap/CoalesceWindow by construction of the paced coalescer), then
// driven with the open-loop generator past capacity. Under overload the
// server must shed — every shed surfacing to the client as an explicit
// RetryLater, never a silent drop — while the latency of the requests
// it does accept stays bounded instead of growing with the backlog.
func TestShedNotCollapse(t *testing.T) {
	// Capacity = BatchCap/CoalesceWindow = 16 keys / 2ms = 8k ops/s.
	srv, _, keys, _ := newServed(t, 4000, Config{
		CoalesceWindow: 2 * time.Millisecond,
		BatchCap:       16,
		MaxPending:     32,
	})
	pool, err := DialPool(srv.Addr().String(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Offer ~2x capacity. Plenty of workers so the generator's issue
	// capacity is not the bottleneck — lateness must come from the
	// schedule, not from starved workers — and a moderate multiple so
	// that holds even under race instrumentation.
	ops := load.MixedOps(keys, 6000, 1, 0, 7)
	res := load.RunOpen(pool, ops, load.Config{Workers: 128, Rate: 16000})

	if res.Errors != 0 {
		t.Fatalf("overload produced hard errors (sheds must be RetryLater): %+v", res)
	}
	if res.Sheds == 0 {
		t.Fatalf("no sheds at 5x capacity: %+v", res)
	}
	// Conservation: every operation was either served or explicitly
	// refused. Nothing vanished.
	if res.Ops+res.Sheds != len(ops) {
		t.Fatalf("ops %d + sheds %d != offered %d", res.Ops, res.Sheds, len(ops))
	}
	if res.Hist.Count() != uint64(res.Ops) {
		t.Fatalf("histogram holds %d samples for %d accepted ops", res.Hist.Count(), res.Ops)
	}

	// The server saw the same story: its shed counter matches the
	// client's count and nothing was silently dropped mid-response.
	s, err := pool.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Shed != uint64(res.Sheds) {
		t.Fatalf("server counted %d sheds, clients saw %d", s.Shed, res.Sheds)
	}
	if s.DroppedConns != 0 {
		t.Fatalf("server severed %d connections during overload", s.DroppedConns)
	}

	// Bounded accepted latency: an accepted request waits at most
	// ~MaxPending/capacity = 32/8k = 4ms in queue plus a coalesce
	// window; the headroom covers scheduler and race-detector noise. A
	// server that queued instead of shedding would blow far past this
	// (the offered backlog alone runs to hundreds of milliseconds).
	p99 := time.Duration(res.Hist.Quantile(0.99))
	if p99 > 150*time.Millisecond {
		t.Fatalf("accepted p99 %v not bounded under overload (p50 %v)",
			p99, time.Duration(res.Hist.Quantile(0.5)))
	}

	// Goodput plateaus at roughly capacity rather than tracking the
	// offered rate. Allow generous slack: pacing quantization and the
	// leading-edge flush let short runs land above nominal.
	if res.Throughput > 3*8000 {
		t.Fatalf("goodput %.0f ops/s tracked offered load past capacity 8000", res.Throughput)
	}
}
