package serve

// The write path of the mutable Store: each shard carries a sorted,
// immutable delta buffer of pending writes (upserts and tombstones) on
// top of its immutable base table. Writers publish a new delta by
// copy-on-write under the shard's single-writer lock; readers always
// load one consistent (base, delta, frozen-delta) snapshot through the
// shard's atomic pointer and merge on the fly. When a delta grows past
// the compaction threshold it is frozen, merged into the base run off
// the write lock, and the shard's index is rebuilt and republished in
// one pointer swap. See DESIGN.md "Write path".

import (
	"repro/internal/core"
	"repro/internal/table"
)

// delta is an immutable sorted run of pending writes for one shard:
// keys ascending and unique, vals the upserted payloads, tombs marking
// deletions. A delta is never mutated after publication; writers derive
// a new delta with `with` and swap the shard state pointer.
type delta struct {
	keys  []core.Key
	vals  []uint64
	tombs []bool
}

// emptyDelta is the shared zero-length delta; shard states never hold
// a nil active delta, so readers skip nil checks on the hot path.
var emptyDelta = &delta{}

// len reports the number of pending entries (tombstones included).
func (d *delta) len() int { return len(d.keys) }

// get returns the pending write for key: ok reports whether the delta
// holds an entry for key, tomb whether that entry is a deletion.
func (d *delta) get(x core.Key) (val uint64, tomb, ok bool) {
	pos := core.LowerBound(d.keys, x)
	if pos < len(d.keys) && d.keys[pos] == x {
		return d.vals[pos], d.tombs[pos], true
	}
	return 0, false, false
}

// with returns a new delta with the write applied: an existing entry
// for key is replaced, otherwise the entry is inserted at its sorted
// position. The receiver is not modified (copy-on-write), so readers
// holding the old delta are unaffected. Cost is O(len), which the
// compaction threshold keeps bounded.
func (d *delta) with(key core.Key, val uint64, tomb bool) *delta {
	pos := core.LowerBound(d.keys, key)
	if pos < len(d.keys) && d.keys[pos] == key {
		nd := &delta{
			keys:  d.keys, // keys unchanged: share
			vals:  make([]uint64, len(d.vals)),
			tombs: make([]bool, len(d.tombs)),
		}
		copy(nd.vals, d.vals)
		copy(nd.tombs, d.tombs)
		nd.vals[pos] = val
		nd.tombs[pos] = tomb
		return nd
	}
	n := len(d.keys)
	nd := &delta{
		keys:  make([]core.Key, n+1),
		vals:  make([]uint64, n+1),
		tombs: make([]bool, n+1),
	}
	copy(nd.keys, d.keys[:pos])
	copy(nd.vals, d.vals[:pos])
	copy(nd.tombs, d.tombs[:pos])
	nd.keys[pos], nd.vals[pos], nd.tombs[pos] = key, val, tomb
	copy(nd.keys[pos+1:], d.keys[pos:])
	copy(nd.vals[pos+1:], d.vals[pos:])
	copy(nd.tombs[pos+1:], d.tombs[pos:])
	return nd
}

// window returns the half-open sub-run of d with keys in [lo, hi).
func (d *delta) window(lo, hi core.Key) (keys []core.Key, vals []uint64, tombs []bool) {
	start := core.LowerBound(d.keys, lo)
	end := core.LowerBound(d.keys, hi)
	return d.keys[start:end], d.vals[start:end], d.tombs[start:end]
}

// overlay merges d under top: entries of top win on equal keys. It is
// the recovery path when a compaction's index rebuild fails and the
// frozen delta must fold back under the writes that arrived meanwhile.
func (d *delta) overlay(top *delta) *delta {
	if top.len() == 0 {
		return d
	}
	if d.len() == 0 {
		return top
	}
	nd := &delta{
		keys:  make([]core.Key, 0, d.len()+top.len()),
		vals:  make([]uint64, 0, d.len()+top.len()),
		tombs: make([]bool, 0, d.len()+top.len()),
	}
	i, j := 0, 0
	for i < d.len() || j < top.len() {
		if j >= top.len() || (i < d.len() && d.keys[i] < top.keys[j]) {
			nd.keys = append(nd.keys, d.keys[i])
			nd.vals = append(nd.vals, d.vals[i])
			nd.tombs = append(nd.tombs, d.tombs[i])
			i++
			continue
		}
		if i < d.len() && d.keys[i] == top.keys[j] {
			i++
		}
		nd.keys = append(nd.keys, top.keys[j])
		nd.vals = append(nd.vals, top.vals[j])
		nd.tombs = append(nd.tombs, top.tombs[j])
		j++
	}
	return nd
}

// sizeBytes reports the delta's memory footprint.
func (d *delta) sizeBytes() int { return d.len() * 17 } // 8B key + 8B val + 1B tomb

// mergeDelta merges a base run with a delta into a fresh sorted run:
// delta entries shadow every base occurrence of their key (duplicate
// base runs collapse to the single upserted value) and tombstoned keys
// are dropped. The inputs are not modified.
func mergeDelta(bk []core.Key, bv []uint64, d *delta) ([]core.Key, []uint64) {
	outK := make([]core.Key, 0, len(bk)+d.len())
	outV := make([]uint64, 0, len(bk)+d.len())
	i, j := 0, 0
	for i < len(bk) || j < d.len() {
		if j >= d.len() || (i < len(bk) && bk[i] < d.keys[j]) {
			outK = append(outK, bk[i])
			outV = append(outV, bv[i])
			i++
			continue
		}
		x := d.keys[j]
		for i < len(bk) && bk[i] == x {
			i++ // shadowed by the delta entry
		}
		if !d.tombs[j] {
			outK = append(outK, x)
			outV = append(outV, d.vals[j])
		}
		j++
	}
	return outK, outV
}

// shardState is the atomically published read view of one shard: the
// base table, the active delta absorbing writes, and (while a
// compaction is in flight) the frozen delta being merged. Every
// transition — write, freeze, publish, replace — installs a fresh
// shardState under the shard's write lock, so a reader's single atomic
// load always observes a mutually consistent triple.
type shardState struct {
	tab    *table.Table
	del    *delta // active delta; emptyDelta when clean, never nil
	frozen *delta // delta being compacted; nil when no merge in flight
}

// pending returns the newest pending write for key, consulting the
// active delta first (newer writes shadow frozen ones).
func (s *shardState) pending(x core.Key) (val uint64, tomb, ok bool) {
	if v, tb, hit := s.del.get(x); hit {
		return v, tb, true
	}
	if s.frozen != nil {
		if v, tb, hit := s.frozen.get(x); hit {
			return v, tb, true
		}
	}
	return 0, false, false
}

// deltaLen reports the shard's pending entries across both buffers.
func (s *shardState) deltaLen() int {
	n := s.del.len()
	if s.frozen != nil {
		n += s.frozen.len()
	}
	return n
}

// get serves a merged point read: pending writes shadow the base.
func (s *shardState) get(x core.Key) (uint64, bool) {
	if v, tomb, ok := s.pending(x); ok {
		if tomb {
			return 0, false
		}
		return v, true
	}
	return s.tab.Get(x)
}

// getBatch serves a merged batched read: the base table's batched fast
// path answers the bulk, then the (small, bounded) deltas overlay their
// keys. The extra base probe per delta-hit key keeps the found count
// exact without threading per-key presence out of table.GetBatch.
func (s *shardState) getBatch(keys []core.Key, out []uint64) int {
	found := s.tab.GetBatch(keys, out)
	if s.del.len() == 0 && s.frozen == nil {
		return found
	}
	for i, x := range keys {
		v, tomb, ok := s.pending(x)
		if !ok {
			continue
		}
		if _, inBase := s.tab.Get(x); inBase {
			found--
		}
		if tomb {
			out[i] = 0
		} else {
			out[i] = v
			found++
		}
	}
	return found
}

// getBatchFound is getBatch plus per-key found bits, resolved against
// this same shard snapshot: out alone cannot distinguish a zero payload
// from absence. Only zero out-values need the extra probe — a nonzero
// payload is proof of presence.
func (s *shardState) getBatchFound(keys []core.Key, out []uint64, found []bool) int {
	n := s.getBatch(keys, out)
	for i, x := range keys {
		if out[i] != 0 {
			found[i] = true
			continue
		}
		if _, tomb, ok := s.pending(x); ok {
			found[i] = !tomb // a pending non-tombstone zero is present
		} else {
			_, found[i] = s.tab.Get(x)
		}
	}
	return n
}

// scan visits the shard's live pairs with key in [lo, hi) in ascending
// order: a three-way merge of active delta, frozen delta, and base
// table with precedence active > frozen > base and tombstones dropping
// their key. Returns false when visit stopped the scan.
func (s *shardState) scan(lo, hi core.Key, visit func(core.Key, uint64) bool) bool {
	bk, bv := s.tab.Range(lo, hi)
	ak, av, at := s.del.window(lo, hi)
	var fk []core.Key
	var fv []uint64
	var ft []bool
	if s.frozen != nil {
		fk, fv, ft = s.frozen.window(lo, hi)
	}
	i, j, k := 0, 0, 0
	for i < len(ak) || j < len(fk) || k < len(bk) {
		// Smallest key among the three runs.
		var x core.Key
		switch {
		case i < len(ak):
			x = ak[i]
		case j < len(fk):
			x = fk[j]
		default:
			x = bk[k]
		}
		if j < len(fk) && fk[j] < x {
			x = fk[j]
		}
		if k < len(bk) && bk[k] < x {
			x = bk[k]
		}
		// Consume x from every run, keeping the highest-precedence value.
		var v uint64
		var tomb, have bool
		if i < len(ak) && ak[i] == x {
			v, tomb, have = av[i], at[i], true
			i++
		}
		if j < len(fk) && fk[j] == x {
			if !have {
				v, tomb, have = fv[j], ft[j], true
			}
			j++
		}
		for k < len(bk) && bk[k] == x {
			if !have {
				v, have = bv[k], true
			}
			k++
		}
		if tomb {
			continue
		}
		if !visit(x, v) {
			return false
		}
	}
	return true
}

// liveLen reports the shard's live pair count: the base length adjusted
// by each pending entry's effect (a tombstone removes every base
// occurrence of its key; an upsert collapses a duplicate run to one
// pair or adds a new key). Walks the union of active and frozen with
// active shadowing frozen, mirroring the read path's precedence.
func (s *shardState) liveLen() int {
	n := s.tab.Len()
	f := s.frozen
	if f == nil {
		f = emptyDelta
	}
	a := s.del
	i, j := 0, 0
	for i < a.len() || j < f.len() {
		var x core.Key
		var tomb bool
		if j >= f.len() || (i < a.len() && a.keys[i] <= f.keys[j]) {
			x, tomb = a.keys[i], a.tombs[i]
			if j < f.len() && f.keys[j] == x {
				j++
			}
			i++
		} else {
			x, tomb = f.keys[j], f.tombs[j]
			j++
		}
		c := s.tab.CountKey(x)
		switch {
		case tomb:
			n -= c
		case c == 0:
			n++
		default:
			n -= c - 1
		}
	}
	return n
}
