package fst

import "math/bits"

// bitvector is an append-only bit sequence with O(1) rank and sampled
// select support, the building block of LOUDS-encoded tries.
type bitvector struct {
	words []uint64
	n     int // bits appended
	// ranks[i] = number of ones in words[:i]; built by finish().
	ranks []int32
	// selects[k] = bit position of the (k*selectSample+1)-th one.
	selects []int32
	ones    int
}

const selectSample = 64

// append adds one bit.
func (b *bitvector) append(bit bool) {
	w := b.n >> 6
	if w == len(b.words) {
		b.words = append(b.words, 0)
	}
	if bit {
		b.words[w] |= 1 << (uint(b.n) & 63)
	}
	b.n++
}

// finish builds the rank/select directories; must be called before
// rank1/select1 and after the last append.
func (b *bitvector) finish() {
	b.ranks = make([]int32, len(b.words)+1)
	total := int32(0)
	for i, w := range b.words {
		b.ranks[i] = total
		total += int32(bits.OnesCount64(w))
	}
	b.ranks[len(b.words)] = total
	b.ones = int(total)
	b.selects = b.selects[:0]
	seen := 0
	for i, w := range b.words {
		c := bits.OnesCount64(w)
		for seen+c >= len(b.selects)*selectSample+1 && len(b.selects)*selectSample+1 <= b.ones {
			// The (len(selects)*selectSample+1)-th one is inside word i.
			target := len(b.selects)*selectSample + 1 - seen
			pos := i*64 + selectOneInWord(w, target)
			b.selects = append(b.selects, int32(pos))
		}
		seen += c
	}
}

// selectOneInWord returns the bit offset of the k-th (1-based) one in w.
func selectOneInWord(w uint64, k int) int {
	for i := 0; i < 64; i++ {
		if w&(1<<uint(i)) != 0 {
			k--
			if k == 0 {
				return i
			}
		}
	}
	return -1
}

// get returns bit i.
func (b *bitvector) get(i int) bool {
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// rank1 returns the number of ones in positions [0, i] (inclusive).
func (b *bitvector) rank1(i int) int {
	w := i >> 6
	mask := ^uint64(0) >> (63 - (uint(i) & 63))
	return int(b.ranks[w]) + bits.OnesCount64(b.words[w]&mask)
}

// select1 returns the position of the k-th one (1-based); k must be in
// [1, ones].
func (b *bitvector) select1(k int) int {
	// Jump to the sampled position, then scan forward by word.
	s := (k - 1) / selectSample
	pos := int(b.selects[s])
	seen := s*selectSample + 1
	if seen == k {
		return pos
	}
	// Continue scanning after pos: clear bits <= pos in its word.
	w := pos >> 6
	word := b.words[w] &^ (^uint64(0) >> (63 - (uint(pos) & 63)))
	for {
		c := bits.OnesCount64(word)
		if seen+c >= k {
			return w*64 + selectOneInWord(word, k-seen)
		}
		seen += c
		w++
		word = b.words[w]
	}
}

// size returns the footprint in bytes including directories.
func (b *bitvector) size() int {
	return len(b.words)*8 + len(b.ranks)*4 + len(b.selects)*4
}
