package bench

// The observability experiment: run the full serving stack — store,
// network front end, metrics registry, tracer, and compaction journal —
// under a mixed YCSB-A workload with compactions in flight, and check
// the conservation laws that make the metrics trustworthy. Every row
// is only reported after the laws hold: served + shed == offered on
// both sides of the wire, delta freezes == flushes == journal flush
// events, merge counts match the journal, and the registry's probe
// counters reproduce the store's measured read amplification. A
// metrics layer that can drop or double-count under load is worse than
// none; this experiment is the regression gate for that claim. See
// DESIGN.md "Observability".

import (
	"fmt"
	"math"
	"time"

	"repro/internal/dataset"
	"repro/internal/load"
	"repro/internal/net"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/serve"
)

func init() {
	Register(Experiment{"serve-obs", "observability layer: conservation laws for metrics, traces, and the compaction journal under mixed load", serveObsSweep})
}

// obsTraceEvery samples aggressively (1 in 64) so a default-sized run
// exercises the trace path thousands of times, not dozens.
const obsTraceEvery = 64

// obsLaws checks every conservation law after a run has quiesced.
// offered is the number of operations the client attempted.
func obsLaws(phase string, offered int, res *load.Result, s *net.Stats,
	st *serve.Store, reg *obs.Registry, j *obs.Journal) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("serve-obs %s: %s", phase, fmt.Sprintf(format, args...))
	}
	// Client side: nothing silently dropped.
	if res.Errors > 0 {
		return fail("%d hard errors (sheds must be RetryLater)", res.Errors)
	}
	if res.Ops+res.Sheds != offered {
		return fail("%d ops + %d sheds != %d offered", res.Ops, res.Sheds, offered)
	}
	// Server side agrees with the client, request for request.
	if s.Accepted+s.Shed != uint64(offered) {
		return fail("server accepted %d + shed %d != %d offered", s.Accepted, s.Shed, offered)
	}
	if s.Accepted != uint64(res.Ops) || s.Shed != uint64(res.Sheds) {
		return fail("server (%d, %d) disagrees with client (%d, %d)",
			s.Accepted, s.Shed, res.Ops, res.Sheds)
	}
	// Every admitted request records exactly one service-time sample.
	if s.Latency == nil || s.Latency.Count() != s.Accepted {
		return fail("latency count %d != accepted %d", s.Latency.Count(), s.Accepted)
	}
	// Coalesced keys can never exceed admissions, and with no sheds
	// every admitted Get went through the coalescer exactly once.
	if s.BatchedKeys > s.Accepted {
		return fail("batched keys %d > accepted %d", s.BatchedKeys, s.Accepted)
	}
	// The wire carries the registry: the stats frame's vars must agree
	// with the server's own counter (end-to-end codec check).
	wire := varValue(s.Vars, "sosd_net_accepted_total")
	if wire != float64(s.Accepted) {
		return fail("wire var accepted %v != %d", wire, s.Accepted)
	}
	// Write path: every frozen delta was flushed, and the journal saw
	// each flush and merge the store counted.
	if st.Flushes() != st.DeltaFreezes() {
		return fail("flushes %d != delta freezes %d (lost flush work)", st.Flushes(), st.DeltaFreezes())
	}
	if j.Count("flush") != st.Flushes() {
		return fail("journal flushes %d != store flushes %d", j.Count("flush"), st.Flushes())
	}
	if j.Count("minor") != st.MinorMerges() || j.Count("major") != st.MajorMerges() {
		return fail("journal merges (%d, %d) != store (%d, %d)",
			j.Count("minor"), j.Count("major"), st.MinorMerges(), st.MajorMerges())
	}
	if j.Total() != j.Count("flush")+j.Count("minor")+j.Count("major") {
		return fail("journal total %d != sum of kinds", j.Total())
	}
	// The registry's probe counters reproduce the store's measured
	// read amplification exactly (same atomics, quiescent store).
	probes, _ := reg.Value("sosd_store_run_probes_total")
	mops, _ := reg.Value("sosd_store_multirun_ops_total")
	if mops > 0 && math.Abs(probes/mops-st.ReadAmp()) > 1e-9 {
		return fail("registry read amp %v != store %v", probes/mops, st.ReadAmp())
	}
	// Sampling actually happened.
	if v, _ := reg.Value("sosd_trace_sampled_total"); v == 0 {
		return fail("tracer sampled nothing at 1/%d", obsTraceEvery)
	}
	return nil
}

func varValue(vars []obs.Var, name string) float64 {
	for _, v := range vars {
		if v.Name == name {
			return v.Value
		}
	}
	return math.NaN()
}

// serveObsSweep runs a closed-loop YCSB-A phase at full capacity (no
// sheds, compactions in flight) and an open-loop deep-overload phase
// (sheds guaranteed), each on a freshly instrumented stack, asserting
// the conservation laws before reporting the row.
func serveObsSweep(r *Run) ([]report.Table, error) {
	o := r.Options
	e, err := r.Env(dataset.Amzn)
	if err != nil {
		return nil, err
	}
	// A lower floor than serve-lsm's: the law checks need flushes to
	// actually happen even at test-suite (tiny) scale.
	ops := o.Lookups
	threshold := ops / 32
	if threshold < 16 {
		threshold = 16
	}
	const shards = 4

	tbl := report.New("serve-obs",
		fmt.Sprintf("Observability conservation laws (amzn, zipfian YCSB A, %d shards, compact threshold %d, trace 1/%d): rows appear only after every law held",
			shards, threshold, obsTraceEvery)).
		Dims("index", "phase").
		Float("kops/s", "kops/s", 1).
		Float("sheds", "", 0).
		Float("flush", "", 0).
		Float("minor", "", 0).
		Float("major", "", 0).
		Float("journal", "events", 0).
		Float("readamp", "probes/op", 2).
		Float("traces", "sampled", 0).
		Float("p99", "µs", 1).
		Notef("laws: ops+sheds==offered on both sides; latency count==accepted; freezes==flushes==journal flush events; merge counts match journal; registry probes reproduce read amp").
		Notef("closed phase runs at full capacity with compactions in flight; open phase offers 2x a pinned capacity so admission control must shed")

	for _, family := range r.Families([]string{"PGM"}) {
		run := func(phase string, ncfg net.Config, rate float64) error {
			reg := obs.NewRegistry()
			journal := obs.NewJournal(obs.DefaultJournalCap)
			tracer := obs.NewTracer(reg, obsTraceEvery)
			// MaxRuns 2 makes the tier bound bite within a default-sized
			// run, so the merge laws are exercised, not vacuous.
			st, err := serve.New(e.Keys, e.Payloads, serve.Config{
				Shards: shards, Family: family, CompactThreshold: threshold,
				MaxRuns: 2,
				Metrics: reg, Journal: journal, Tracer: tracer,
			})
			if err != nil {
				return err
			}
			defer st.Close()
			ncfg.Metrics = reg
			ncfg.Tracer = tracer
			srv, err := net.Listen("127.0.0.1:0", st, ncfg)
			if err != nil {
				return err
			}
			defer srv.Close()
			pool, err := net.DialPool(srv.Addr().String(), 8)
			if err != nil {
				return err
			}
			defer pool.Close()

			stream := load.MixedOps(e.Keys, ops, 0.50, YCSBTheta, o.Seed)
			var res *load.Result
			if rate > 0 {
				res = load.RunOpen(pool, stream, load.Config{Workers: 96, Rate: rate, Seed: o.Seed})
			} else {
				res = load.RunClosed(pool, stream, load.Config{Workers: 32})
			}
			st.WaitCompactions()
			s, err := pool.Stats()
			if err != nil {
				return err
			}
			if err := obsLaws(phase, len(stream), res, s, st, reg, journal); err != nil {
				return err
			}
			if rate == 0 && st.Flushes() == 0 {
				return fmt.Errorf("serve-obs %s: no flushes — the write-path laws were vacuous", phase)
			}
			traces, _ := reg.Value("sosd_trace_sampled_total")
			sum := res.Hist.Summary()
			tbl.Row([]string{family, phase},
				res.Throughput/1e3, float64(res.Sheds),
				float64(st.Flushes()), float64(st.MinorMerges()), float64(st.MajorMerges()),
				float64(journal.Total()), st.ReadAmp(), traces,
				float64(sum.P99)/1e3)
			return nil
		}

		// Full capacity, closed loop: compactions in flight, no sheds.
		if err := run("closed", net.Config{}, 0); err != nil {
			return nil, err
		}
		// Deep overload, open loop: pin capacity low and offer 2x, so
		// the shed side of every law is exercised.
		pinned := net.Config{
			CoalesceWindow: time.Millisecond,
			BatchCap:       16,
			MaxPending:     32,
		}
		capacity := float64(pinned.BatchCap) / pinned.CoalesceWindow.Seconds()
		if err := run("open200%", pinned, 2*capacity); err != nil {
			return nil, err
		}
	}
	return []report.Table{*tbl}, nil
}
