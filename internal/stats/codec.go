package stats

// Wire codec for Histogram: the sparse encoding the network serving
// front end uses to ship a server's live latency histogram to a
// monitoring client in one stats frame. Latency histograms are
// overwhelmingly sparse — a serving run touches a few dozen of the
// 1888 buckets — so the encoding is (bucket index, count) pairs for
// the non-zero buckets, plus the sample count, sum, and running max.
//
// Encoding happens from a Snapshot, so a histogram under concurrent
// recording ships a per-counter-consistent copy; Decode reconstructs a
// Histogram that merges and quantiles exactly like the original.

import (
	"repro/internal/binio"
)

// histCodecVersion guards the wire layout; bump on any change.
const histCodecVersion = 1

// EncodeTo writes a snapshot of h through w: version, non-zero
// (index, count) pairs in ascending index order, then count, sum, max.
func (h *Histogram) EncodeTo(w *binio.Writer) {
	s := h.Snapshot()
	w.U8(histCodecVersion)
	nz := uint32(0)
	for i := range s.counts {
		if s.counts[i].Load() != 0 {
			nz++
		}
	}
	w.U32(nz)
	for i := range s.counts {
		if c := s.counts[i].Load(); c != 0 {
			w.U32(uint32(i))
			w.U64(c)
		}
	}
	w.U64(s.count.Load())
	w.I64(s.sum.Load())
	w.I64(s.max.Load())
}

// DecodeHistogram reads a histogram encoded by EncodeTo. Structural
// invariants are enforced — version, bucket indexes in range and
// strictly ascending — so corrupt input errors instead of producing a
// histogram that panics later; the sample count and sum are taken as
// recorded (a snapshot under concurrent writers is per-counter
// consistent, not cross-counter consistent, by documented contract).
func DecodeHistogram(r *binio.Reader) (*Histogram, error) {
	if v := r.U8(); r.Err() == nil && v != histCodecVersion {
		r.Fail(binio.Corruptf("histogram codec version %d, want %d", v, histCodecVersion))
	}
	n := r.Count(12) // each pair is at least u32 idx + u64 count
	h := &Histogram{}
	prev := -1
	for i := 0; i < n; i++ {
		idx := int(r.U32())
		c := r.U64()
		if r.Err() != nil {
			return nil, r.Err()
		}
		if idx >= histBuckets {
			return nil, binio.Corruptf("histogram bucket index %d out of range", idx)
		}
		if idx <= prev {
			return nil, binio.Corruptf("histogram bucket indexes not ascending at %d", idx)
		}
		prev = idx
		h.counts[idx].Store(c)
	}
	h.count.Store(r.U64())
	h.sum.Store(r.I64())
	max := r.I64()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if max < 0 {
		return nil, binio.Corruptf("histogram max %d negative", max)
	}
	h.max.Store(max)
	return h, nil
}
