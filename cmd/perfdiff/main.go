// Command perfdiff is the CI perf regression gate: it compares a fresh
// `sosd -format json` run against a checked-in baseline document and
// fails (exit 1) when any watched metric regresses by more than the
// threshold.
//
// Rows are matched by (experiment, title, dimension values) and metrics
// by column name; the metric's declared unit decides which direction is
// a regression (ns/ms/µs/MB up is bad, M/s / kops/s / speedup down is
// bad). Metrics whose units carry no better/worse direction (model
// coefficients, CDF fractions, counts) are ignored, so the gate watches
// exactly the performance surface and nothing else. Rows present on
// only one side are reported but never fail the gate: the baseline is
// pinned to a machine and a knob set, and a changed experiment catalog
// should not masquerade as a perf regression.
//
// Usage:
//
//	perfdiff [-baseline BENCH_baseline.json] [-threshold 40] current.json
//	perfdiff -update current.json    # bless current as the new baseline
//
// The threshold is deliberately generous (default 40%): CI machines are
// noisy and shared, and the gate exists to catch order-of-magnitude
// mistakes — an accidental O(n) scan in the probe loop, a lost
// fast path — not 5% jitter. Tighten it on quiet dedicated hardware.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline document to compare against")
	threshold := flag.Float64("threshold", 40, "regression threshold in percent")
	update := flag.Bool("update", false, "replace the baseline with the current document and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: perfdiff [-baseline file] [-threshold pct] [-update] <current.json | ->\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	current, err := readAll(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *update {
		if err := os.WriteFile(*baselinePath, current, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "perfdiff: baseline %s updated\n", *baselinePath)
		return
	}

	baseline, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(fmt.Errorf("%w (run `perfdiff -update` to create it)", err))
	}
	result, err := Compare(baseline, current, *threshold)
	if err != nil {
		fatal(err)
	}
	result.Print(os.Stdout)
	if len(result.Regressions) > 0 {
		fmt.Fprintf(os.Stderr, "perfdiff: %d metric(s) regressed beyond %.0f%%\n", len(result.Regressions), *threshold)
		os.Exit(1)
	}
}

// readAll reads a file argument, with "-" meaning stdin.
func readAll(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "perfdiff: %v\n", err)
	os.Exit(1)
}
