package bench

import (
	"fmt"

	"repro/internal/art"
	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/fast"
	"repro/internal/fst"
	"repro/internal/hashidx"
	"repro/internal/ibtree"
	"repro/internal/pgm"
	"repro/internal/rbs"
	"repro/internal/rmi"
	"repro/internal/rs"
	"repro/internal/wormhole"
)

// NamedBuilder pairs a builder with its configuration label.
type NamedBuilder struct {
	Label   string
	Builder core.Builder
}

// strides is the subset-stride sweep used for every tree structure
// ("ten configurations ranging from minimum to maximum size").
var strides = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// Sweep returns the configuration sweep for a structure family, small
// index to large. Learned structures are tuned per dataset (keys),
// mirroring the paper's author-tuned configurations.
func Sweep(family string, keys []core.Key) []NamedBuilder {
	switch family {
	case "RMI":
		cfgs := rmi.ParetoConfigs(keys, 10)
		out := make([]NamedBuilder, 0, len(cfgs))
		for _, c := range cfgs {
			out = append(out, NamedBuilder{c.String(), rmi.Builder{Config: c}})
		}
		return out
	case "PGM":
		var out []NamedBuilder
		for _, eps := range []int{4096, 1024, 512, 256, 128, 64, 32, 16, 8, 4} {
			out = append(out, NamedBuilder{lbl("eps=%d", eps), pgm.Builder{Eps: eps}})
		}
		return out
	case "RS":
		var out []NamedBuilder
		type rc struct{ err, bits int }
		for _, c := range []rc{{4096, 4}, {1024, 6}, {512, 8}, {256, 10}, {128, 12},
			{64, 14}, {32, 16}, {16, 18}, {8, 20}, {4, 22}} {
			out = append(out, NamedBuilder{lbl("eps=%d,r=%d", c.err, c.bits),
				rs.Builder{Config: rs.Config{SplineErr: c.err, RadixBits: c.bits}}})
		}
		return out
	case "RBS":
		var out []NamedBuilder
		for _, bits := range []int{4, 6, 8, 10, 12, 14, 16, 18, 20, 22} {
			out = append(out, NamedBuilder{lbl("r=%d", bits), rbs.Builder{RadixBits: bits}})
		}
		return out
	case "BTree":
		return strideSweep(func(s int) core.Builder { return btree.Builder{Stride: s} })
	case "IBTree":
		return strideSweep(func(s int) core.Builder { return ibtree.Builder{Stride: s} })
	case "ART":
		return strideSweep(func(s int) core.Builder { return art.Builder{Stride: s} })
	case "FAST":
		return strideSweep(func(s int) core.Builder { return fast.Builder{Stride: s} })
	case "FST":
		var out []NamedBuilder
		for _, s := range []int{1, 4, 16, 64} {
			out = append(out, NamedBuilder{lbl("stride=%d", s), fst.Builder{Stride: s}})
		}
		return out
	case "Wormhole":
		var out []NamedBuilder
		for _, s := range []int{1, 4, 16, 64} {
			out = append(out, NamedBuilder{lbl("stride=%d", s), wormhole.Builder{Stride: s}})
		}
		return out
	case "BS":
		return []NamedBuilder{{"", rbs.BinarySearchBuilder{}}}
	case "RobinHash":
		return []NamedBuilder{{"lf=0.25", hashidx.RobinHoodBuilder{}}}
	case "CuckooMap":
		return []NamedBuilder{{"lf=0.99", hashidx.CuckooBuilder{}}}
	default:
		return nil
	}
}

func strideSweep(mk func(int) core.Builder) []NamedBuilder {
	out := make([]NamedBuilder, 0, len(strides))
	// Large stride = small index first, matching the sweep order of
	// the learned structures.
	for i := len(strides) - 1; i >= 0; i-- {
		out = append(out, NamedBuilder{lbl("stride=%d", strides[i]), mk(strides[i])})
	}
	return out
}

func lbl(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}

// ParetoFamilies is the structure set of Figure 7.
var ParetoFamilies = []string{"RMI", "PGM", "RS", "RBS", "ART", "BTree", "IBTree", "FAST"}

// StringFamilies is the structure set of Figure 8.
var StringFamilies = []string{"FST", "Wormhole", "RMI", "BTree"}

// Table2Families is the structure set of Table 2.
var Table2Families = []string{"PGM", "RS", "RMI", "BTree", "IBTree", "FAST", "BS", "CuckooMap", "RobinHash"}

// BestVariant builds every configuration of a family and returns the
// one with the lowest warm lookup time (the paper's "fastest variant").
func BestVariant(e *Env, family string, fn func(*Env, core.Index) float64) (NamedBuilder, core.Index, float64) {
	var bestNB NamedBuilder
	var bestIdx core.Index
	best := -1.0
	for _, nb := range Sweep(family, e.Keys) {
		idx, err := nb.Builder.Build(e.Keys)
		if err != nil {
			continue
		}
		v := fn(e, idx)
		if best < 0 || v < best {
			best, bestIdx, bestNB = v, idx, nb
		}
	}
	return bestNB, bestIdx, best
}
