package repl

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/binio"
	"repro/internal/persist"
)

// StateName is the follower's durable-position file inside its replica
// directory, committed with the same temp+fsync+rename discipline as
// every other persisted artifact.
const StateName = "REPLSTATE"

var stateMagic = []byte("sosdREP1")

// maxStateShards guards the decode allocation; mirrors the wire
// protocol's shard-vector bound.
const maxStateShards = 4096

// State is a follower's durable replication position: the primary
// epoch it is subscribed under, the snapshot generation it bootstrapped
// from, and the per-shard sequence numbers applied AND synced to its
// own WAL. It is written only after SyncWAL, so it never overestimates
// what the store durably holds — a crash replays a suffix, never skips
// one.
type State struct {
	Epoch uint64
	Gen   uint64
	Seqs  []uint64
}

// WriteState atomically commits s as dir's REPLSTATE.
func WriteState(dir string, s *State) error {
	if len(s.Seqs) > maxStateShards {
		return fmt.Errorf("repl: state has %d shards, limit %d", len(s.Seqs), maxStateShards)
	}
	return persist.AtomicWrite(filepath.Join(dir, StateName), func(w *binio.Writer) error {
		w.Bytes(stateMagic)
		w.U32(persist.FormatVersion)
		w.U64(s.Epoch)
		w.U64(s.Gen)
		w.U32(uint32(len(s.Seqs)))
		for _, q := range s.Seqs {
			w.U64(q)
		}
		w.U64(w.Sum64())
		return w.Err()
	})
}

// ReadState loads and validates dir's REPLSTATE. A missing file is
// returned as os.ErrNotExist (a fresh follower); a corrupt one is an
// error — the caller resyncs from scratch.
func ReadState(dir string) (*State, error) {
	data, err := os.ReadFile(filepath.Join(dir, StateName))
	if err != nil {
		return nil, err
	}
	if len(data) < len(stateMagic)+4+8+8+4+8 {
		return nil, binio.Corruptf("repl: state file too short (%d bytes)", len(data))
	}
	body, tail := data[:len(data)-8], data[len(data)-8:]
	r := binio.NewReader(body)
	if string(r.Bytes(len(stateMagic))) != string(stateMagic) {
		return nil, binio.Corruptf("repl: bad state magic")
	}
	if v := r.U32(); v != persist.FormatVersion {
		return nil, binio.Corruptf("repl: state format version %d, want %d", v, persist.FormatVersion)
	}
	s := &State{Epoch: r.U64(), Gen: r.U64()}
	n := r.Count(8)
	if n > maxStateShards {
		return nil, binio.Corruptf("repl: state shard count %d exceeds %d", n, maxStateShards)
	}
	if n > 0 {
		s.Seqs = make([]uint64, n)
		for i := range s.Seqs {
			s.Seqs[i] = r.U64()
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, binio.Corruptf("repl: %d trailing bytes in state file", r.Remaining())
	}
	if got, want := r.CRCSoFar(), binary.LittleEndian.Uint64(tail); got != want {
		return nil, binio.Corruptf("repl: state checksum mismatch")
	}
	return s, nil
}
