package bench

// The network serving experiment: the paper's serving story measured
// through a socket instead of a function call. A net.Server fronts the
// store over loopback with the coalescing window pinning its service
// capacity (BatchCap keys per CoalesceWindow), and the open-loop
// generator offers fractions of that capacity from below to well past
// it. The interesting region is past 1.0x: a server with admission
// control sheds the excess with explicit RetryLater responses and keeps
// the latency of what it accepts bounded — goodput plateaus at capacity
// instead of collapsing under its own queue. See DESIGN.md "Network
// serving".

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/load"
	"repro/internal/net"
	"repro/internal/report"
	"repro/internal/serve"
)

func init() {
	Register(Experiment{"serve-net", "network serving: goodput vs tail latency over loopback, coalescing + admission control (shed, don't collapse)", serveNetSweep})
}

// Serving parameters of the sweep. The coalescer's pacing makes
// capacity = netBatchCap/netWindow by construction — 16k lookups/s —
// machine-independent as long as the store can drain a 16-key batch in
// under a millisecond (every family can, by orders of magnitude). The
// small admission queue keeps accepted-request queueing delay within a
// few windows, so "bounded p99" is a property of the policy, not of
// how fast the box is.
const (
	netWindow     = time.Millisecond
	netBatchCap   = 16
	netMaxPending = 32
	netShards     = 4
	netConns      = 8
	netWorkers    = 96
)

// NetRateFractions are the offered open-loop rates as fractions of the
// server's pinned capacity: two points below the knee, one just past
// it, and one at 2x — deep overload.
var NetRateFractions = []float64{0.5, 0.8, 1.2, 2.0}

func netCapacity() float64 {
	return float64(netBatchCap) / netWindow.Seconds()
}

// netRow appends one sweep row: offered and achieved goodput, the
// server's shed count and mean coalesced batch size for the run, and
// the accepted-request latency tail (from scheduled arrival in the
// open loop).
func netRow(t *report.Table, family, loop string, offered float64, res *load.Result, s *net.Stats) {
	sum := res.Hist.Summary()
	batch := 0.0
	if s.Batches > 0 {
		batch = float64(s.BatchedKeys) / float64(s.Batches)
	}
	t.Row([]string{family, loop},
		offered/1e3, res.Throughput/1e3,
		float64(s.Shed), batch,
		float64(sum.P50)/1e3, float64(sum.P99)/1e3, float64(sum.P999)/1e3)
}

// serveNetSweep reports the network serving experiment: per family, a
// closed-loop saturation run through the socket (which the pacing caps
// at the pinned capacity), then open-loop runs at NetRateFractions of
// that capacity. Each row gets a fresh store and server, so sheds and
// histograms are per-run, not cumulative.
func serveNetSweep(r *Run) ([]report.Table, error) {
	o := r.Options
	e, err := r.Env(dataset.Amzn)
	if err != nil {
		return nil, err
	}
	ops := o.Lookups
	capacity := netCapacity()

	t := report.New("serve-net",
		fmt.Sprintf("Network serving (amzn, loopback, %d shards, capacity %.0f lookups/s = %d keys per %v window, admission queue %d, %d conns, %d workers, %d ops/run)",
			netShards, capacity, netBatchCap, netWindow, netMaxPending, netConns, netWorkers, ops)).
		Dims("index", "loop").
		Float("rate(k/s)", "kops/s", 1).
		Float("goodput", "kops/s", 1).
		Float("sheds", "", 0).
		Float("batch", "keys", 1).
		Float("p50", "µs", 1).
		Float("p99", "µs", 1).
		Float("p99.9", "µs", 1).
		Notef("goodput counts served requests only; sheds are explicit RetryLater refusals (server count for the run)").
		Notef("batch is the mean coalesced GetBatch size; open-loop latency runs from each operation's scheduled Poisson arrival").
		Notef("rate(k/s) is the offered arrival rate; 0 for the closed loop (saturation). past 1.0x capacity the server sheds and goodput plateaus")

	for _, family := range r.Families([]string{"PGM"}) {
		run := func(loop string, offered float64, rate float64) error {
			st, err := serve.New(e.Keys, e.Payloads, serve.Config{
				Shards: netShards, Family: family,
			})
			if err != nil {
				return err
			}
			defer st.Close()
			srv, err := net.Listen("127.0.0.1:0", st, net.Config{
				CoalesceWindow: netWindow,
				BatchCap:       netBatchCap,
				MaxPending:     netMaxPending,
			})
			if err != nil {
				return err
			}
			defer srv.Close()
			pool, err := net.DialPool(srv.Addr().String(), netConns)
			if err != nil {
				return err
			}
			defer pool.Close()

			stream := load.MixedOps(e.Keys, ops, 1, 0, o.Seed)
			var res *load.Result
			if rate > 0 {
				res = load.RunOpen(pool, stream, load.Config{Workers: netWorkers, Rate: rate, Seed: o.Seed})
			} else {
				res = load.RunClosed(pool, stream, load.Config{Workers: netWorkers})
			}
			if res.Errors > 0 {
				return fmt.Errorf("serve-net %s/%s: %d hard errors (sheds must be RetryLater)", family, loop, res.Errors)
			}
			if res.Ops+res.Sheds != len(stream) {
				return fmt.Errorf("serve-net %s/%s: %d ops + %d sheds != %d offered (silent drop)",
					family, loop, res.Ops, res.Sheds, len(stream))
			}
			s, err := pool.Stats()
			if err != nil {
				return err
			}
			netRow(t, family, loop, offered, res, s)
			return nil
		}

		if err := run("closed", 0, 0); err != nil {
			return nil, err
		}
		for _, frac := range NetRateFractions {
			rate := frac * capacity
			if err := run(fmt.Sprintf("open%.0f%%", frac*100), rate, rate); err != nil {
				return nil, err
			}
		}
	}
	return []report.Table{*t}, nil
}
