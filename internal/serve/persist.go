package serve

// Snapshot/Open: the durability face of the Store, composed from the
// artifacts of internal/persist. A snapshot directory holds, per
// shard, one file set per sorted run — a block-aligned table file, an
// encoded index (when the run's codec tag has one), and a tombstone
// bitmap for tier runs that carry deletions — plus a write-ahead log
// seeded with the shard's pending delta; the manifest names them all
// and its rename is the commit point. Shard files are written under
// generation-suffixed names and the manifest commits a complete
// generation at once, so a crash at any instant leaves either the full
// old file set or the full new one — never a mixed pair.
//
// A store opened from a snapshot is "attached": every Put/Delete
// appends to its shard's WAL before becoming visible, and every
// compaction or Replace commits the new run set and truncates the WAL
// to the writes still pending — the commit (manifest rename) happens
// under the shard's write lock, so no write can slip between the WAL
// seed it captures and the moment it takes effect. At any instant,
// replaying a shard's committed WAL over its committed runs reproduces
// the shard's live state. Runs are immutable, so a commit rewrites
// only the runs that changed since the last one: a flush adds one
// small file set, a minor merge replaces the upper tiers, and only a
// major merge rewrites the base. See DESIGN.md "Persistence".

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/registry"
	"repro/internal/search"
	"repro/internal/table"
)

func runTabName(i int, gen uint64, r int) string {
	return fmt.Sprintf("shard-%04d-g%06d-r%02d.tab", i, gen, r)
}
func runIdxName(i int, gen uint64, r int) string {
	return fmt.Sprintf("shard-%04d-g%06d-r%02d.idx", i, gen, r)
}
func runTmbName(i int, gen uint64, r int) string {
	return fmt.Sprintf("shard-%04d-g%06d-r%02d.tmb", i, gen, r)
}
func walFileName(i int, gen uint64) string { return fmt.Sprintf("shard-%04d-g%06d.wal", i, gen) }

// notePersistErr records the store's first background persistence
// failure (WAL append, compaction commit); PersistErr surfaces it.
func (st *Store) notePersistErr(err error) {
	st.persistErrMu.Lock()
	if st.persistErr == nil {
		st.persistErr = err
	}
	st.persistErrMu.Unlock()
}

// PersistErr reports the first persistence failure the store has
// swallowed on a background path (WAL appends, compaction commits).
// A non-nil result means the in-memory state is fine but durability
// is degraded: the next Snapshot to a healthy location should be
// treated as urgent.
func (st *Store) PersistErr() error {
	st.persistErrMu.Lock()
	defer st.persistErrMu.Unlock()
	return st.persistErr
}

// Dir reports the attached snapshot directory ("" for a volatile
// store built with New).
func (st *Store) Dir() string { return st.dir }

// SyncWAL fsyncs every attached write-ahead log: an explicit storage
// barrier for stores running without SyncWrites. Safe alongside
// concurrent writes and compactions.
func (st *Store) SyncWAL() error {
	if st.wals == nil {
		return nil // volatile store: nothing to sync
	}
	for i := range st.writeMu {
		st.writeMu[i].Lock()
		w := st.wals[i]
		var err error
		if w != nil {
			err = w.Sync()
		}
		st.writeMu[i].Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// pendingOps flattens a shard state's pending writes (frozen delta
// under active, newest wins) into WAL seed records. An in-flight
// frozen delta rides in the WAL rather than as a run: it has not been
// committed as a run yet, and replaying it over the committed run set
// reproduces the same merged view.
func pendingOps(s *shardState) []persist.Op {
	d := s.del
	if s.frozen != nil {
		d = s.frozen.overlay(s.del)
	}
	if d.len() == 0 {
		return nil
	}
	ops := make([]persist.Op, d.len())
	for i := range ops {
		ops[i] = persist.Op{Key: d.keys[i], Val: d.vals[i], Tomb: d.tombs[i]}
	}
	return ops
}

// deltaFromOps replays WAL records into a delta: last write per key
// wins, entries sorted. Linear in the op count (not the quadratic
// one-at-a-time copy-on-write path used for live writes).
func deltaFromOps(ops []persist.Op) *delta {
	if len(ops) == 0 {
		return emptyDelta
	}
	last := make(map[core.Key]persist.Op, len(ops))
	for _, op := range ops {
		last[op.Key] = op
	}
	keys := make([]core.Key, 0, len(last))
	for k := range last {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	d := &delta{
		keys:  keys,
		vals:  make([]uint64, len(keys)),
		tombs: make([]bool, len(keys)),
	}
	for i, k := range keys {
		d.vals[i] = last[k].Val
		d.tombs[i] = last[k].Tomb
	}
	return d
}

// writeShardRun writes one immutable run of shard i into dir at
// generation gen: its table file, the encoded index when the family
// has a codec (otherwise "" marks rebuild-at-load), and its tombstone
// bitmap when it carries deletions.
func (st *Store) writeShardRun(dir string, i int, gen uint64, r int, tab *table.Table, codec string) (persist.RunMeta, error) {
	rm := persist.RunMeta{Codec: codec, Table: runTabName(i, gen, r)}
	if err := persist.WriteTable(filepath.Join(dir, rm.Table), tab.Keys(), tab.Payloads()); err != nil {
		return persist.RunMeta{}, err
	}
	if tab.Len() > 0 {
		if _, ok := registry.CodecFor(tab.Index().Name()); ok {
			rm.Index = runIdxName(i, gen, r)
			if err := persist.WriteIndex(filepath.Join(dir, rm.Index), tab.Index()); err != nil {
				return persist.RunMeta{}, err
			}
		}
	}
	if tab.HasTombs() {
		rm.Tombs = runTmbName(i, gen, r)
		if err := persist.WriteTombs(filepath.Join(dir, rm.Tombs), tab.Tombs()); err != nil {
			return persist.RunMeta{}, err
		}
	}
	return rm, nil
}

// cleanStaleShardFiles removes generation files the committed manifest
// no longer references. Best-effort: leftovers waste space, never
// correctness.
func cleanStaleShardFiles(dir string, m *persist.Manifest) {
	keep := map[string]bool{}
	for _, s := range m.Shards {
		keep[s.WAL] = true
		for _, r := range s.Runs {
			keep[r.Table], keep[r.Index], keep[r.Tombs] = true, true, true
		}
	}
	matches, err := filepath.Glob(filepath.Join(dir, "shard-*"))
	if err != nil {
		return
	}
	for _, path := range matches {
		if !keep[filepath.Base(path)] {
			os.Remove(path)
		}
	}
}

// Snapshot atomically persists the store's full state into dir: every
// shard's run set (tables, encoded indexes, tombstone bitmaps) and a
// WAL seeded with the shard's pending writes, committed by the
// manifest rename. It runs alongside concurrent reads and writes —
// each shard is captured at one consistent (runs, pending) point — and
// leaves the store serving throughout. Snapshotting an attached store
// to its own directory commits shard by shard and swaps the live WALs,
// truncating each to the pending writes just captured.
func (st *Store) Snapshot(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return err
	}
	if st.dir != "" && abs == st.dir {
		st.persistMu.Lock()
		defer st.persistMu.Unlock()
		for i := range st.shards {
			if err := st.persistShardLocked(i); err != nil {
				return err
			}
		}
		return nil
	}

	return st.exportTo(abs, nil)
}

// SnapshotWith is Snapshot restricted to a foreign directory, with a
// per-shard capture callback: onShard(i) runs under shard i's write
// lock at the exact moment the shard's state is captured, so no write
// can land between the callback and the captured (runs, pending)
// point. The replication primary uses it to record, per shard, the
// stream position a bootstrap snapshot corresponds to — the exported
// state contains precisely the writes the callback has seen.
func (st *Store) SnapshotWith(dir string, onShard func(shard int)) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return err
	}
	if st.dir != "" && abs == st.dir {
		return fmt.Errorf("serve: SnapshotWith targets the attached directory %s", dir)
	}
	return st.exportTo(abs, onShard)
}

// exportTo writes a complete generation of the store's state into the
// foreign directory abs: capture each shard from one atomic state load
// under the shard's write lock (with the optional capture callback),
// then commit with a single manifest rename. Exports serialize only
// against each other (exportMu), never against the attached
// directory's compaction commits — a long backup must not stall the
// compactor behind persistMu.
func (st *Store) exportTo(abs string, onShard func(shard int)) error {
	st.exportMu.Lock()
	defer st.exportMu.Unlock()
	gen := uint64(1)
	if old, err := persist.ReadManifest(filepath.Join(abs, persist.ManifestName)); err == nil {
		gen = old.Gen + 1
	}
	m := &persist.Manifest{
		Family: st.cfg.Family,
		Gen:    gen,
		Shards: make([]persist.ShardMeta, len(st.shards)),
	}
	for i := range st.shards {
		st.writeMu[i].Lock()
		s := st.shards[i].Load()
		tag := st.builderIDs[i] // read with its state under the lock
		if onShard != nil {
			onShard(i)
		}
		st.writeMu[i].Unlock()
		runs := make([]persist.RunMeta, len(s.runs))
		for r, t := range s.runs {
			rm, err := st.writeShardRun(abs, i, gen, r, t, s.runIDs[r])
			if err != nil {
				return err
			}
			runs[r] = rm
		}
		walName := walFileName(i, gen)
		w, err := persist.CreateWAL(filepath.Join(abs, walName), pendingOps(s))
		if err != nil {
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		m.Shards[i] = persist.ShardMeta{Sep: st.seps[i], Codec: tag, WAL: walName, Runs: runs}
	}
	if err := persist.WriteManifest(filepath.Join(abs, persist.ManifestName), m); err != nil {
		return err
	}
	cleanStaleShardFiles(abs, m)
	return nil
}

// persistShard commits shard i's current state to the attached
// directory at a fresh generation: file sets for any runs not already
// committed, a WAL seeded with the still-pending writes, and the
// manifest naming them. It is the incremental, single-shard form of
// Snapshot, run after every compaction and Replace on an attached
// store.
func (st *Store) persistShard(i int) error {
	st.persistMu.Lock()
	defer st.persistMu.Unlock()
	return st.persistShardLocked(i)
}

// sameRuns reports whether two run sets are the identical tables in
// the identical order (pointer identity: runs are immutable).
func sameRuns(a, b []*table.Table) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// persistShardLocked (persistMu held) does the work. The heavy run
// writes happen off the shard's write lock against the immutable
// tables (retrying if a compaction republishes the run set mid-write);
// runs already committed by an earlier generation reuse their files,
// so the common checkpoint of an unchanged shard is a WAL+manifest-
// only commit (~one fsync), and a tiered flush commits just its one
// small new run. The WAL seed and the manifest rename happen under the
// lock, so the commit point and the captured pending set agree exactly
// — this is what keeps the replay invariant through compaction
// truncations and through Replace's wholesale discard of pending
// writes. Writers to this one shard stall for the WAL+manifest commit;
// readers and other shards are unaffected.
func (st *Store) persistShardLocked(i int) error {
	dir := st.dir
	gen := st.gen + 1
	for {
		s := st.shards[i].Load()
		runs := make([]persist.RunMeta, len(s.runs))
		for r, t := range s.runs {
			if rm, ok := st.persistedRuns[i][t]; ok {
				runs[r] = rm
				continue
			}
			rm, err := st.writeShardRun(dir, i, gen, r, t, s.runIDs[r])
			if err != nil {
				return err
			}
			runs[r] = rm
		}

		st.writeMu[i].Lock()
		s2 := st.shards[i].Load()
		if !sameRuns(s2.runs, s.runs) {
			st.writeMu[i].Unlock()
			continue // run set republished mid-write; redo (same gen, files overwritten)
		}
		walName := walFileName(i, gen)
		w, err := persist.CreateWAL(filepath.Join(dir, walName), pendingOps(s2))
		if err != nil {
			st.writeMu[i].Unlock()
			return err
		}
		shards := append([]persist.ShardMeta(nil), st.meta...)
		shards[i] = persist.ShardMeta{Sep: st.seps[i], Codec: st.builderIDs[i], WAL: walName, Runs: runs}
		m := &persist.Manifest{Family: st.cfg.Family, Gen: gen, Shards: shards}
		if err := persist.WriteManifest(filepath.Join(dir, persist.ManifestName), m); err != nil {
			w.Close()
			st.writeMu[i].Unlock()
			return err
		}
		// Committed: swap the live WAL, retire the old generation.
		if old := st.wals[i]; old != nil {
			old.Close()
		}
		st.wals[i] = w
		st.writeMu[i].Unlock()
		st.meta = shards
		st.gen = gen
		// Re-key the committed-run map to exactly the current run set so
		// superseded runs drop out and their tables can be collected.
		committed := make(map[*table.Table]persist.RunMeta, len(s.runs))
		for r, t := range s.runs {
			committed[t] = runs[r]
		}
		st.persistedRuns[i] = committed
		cleanStaleShardFiles(dir, m)
		return nil
	}
}

// wrapBuilderFor adapts a Config.BuilderFor callback to the internal
// (builder, codec tag, error) shape shared by New and Open. Custom
// builders have no catalog label; the family name alone is still a
// usable codec tag.
func wrapBuilderFor(custom func(shard int, keys []core.Key) (core.Builder, error)) func(int, []core.Key) (core.Builder, string, error) {
	return func(shard int, keys []core.Key) (core.Builder, string, error) {
		b, err := custom(shard, keys)
		if err != nil {
			return nil, "", err
		}
		return b, registry.ID(b.Name(), ""), nil
	}
}

// Open loads a store from a snapshot directory: each shard's runs are
// read through io.ReaderAt into their final arrays, their indexes
// decoded from trained parameters (no retraining; runs without an
// encoded index are rebuilt from the loaded keys), tombstone bitmaps
// restored, and the WAL replayed into the pending delta — so the store
// serves exactly the state current when the snapshot (plus any logged
// writes) was taken. The returned store is attached: subsequent writes
// append to the WALs and compactions advance the on-disk state. cfg
// supplies the runtime knobs (Search, Workers, CompactThreshold,
// MaxRuns, AmpBound, SyncWrites, BuilderFor); the shard structure,
// family and index configuration come from the manifest.
func Open(dir string, cfg Config) (*Store, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	m, err := persist.ReadManifest(filepath.Join(abs, persist.ManifestName))
	if err != nil {
		return nil, fmt.Errorf("serve: open %s: %w", dir, err)
	}
	if cfg.Search == nil {
		cfg.Search = search.BinarySearch
	}
	cfg.Family = m.Family
	nShards := len(m.Shards)
	if cfg.Workers <= 0 {
		cfg.Workers = nShards
		if ncpu := runtime.NumCPU(); cfg.Workers > ncpu {
			cfg.Workers = ncpu
		}
	}
	if cfg.CompactThreshold == 0 {
		cfg.CompactThreshold = DefaultCompactThreshold
	}
	normalizeTierConfig(&cfg)

	st := &Store{cfg: cfg, dir: abs, gen: m.Gen}
	st.meta = append([]persist.ShardMeta(nil), m.Shards...)
	st.seps = make([]core.Key, nShards)
	st.shards = make([]atomic.Pointer[shardState], nShards)
	st.writeMu = make([]sync.Mutex, nShards)
	st.builders = make([]core.Builder, nShards) // resolved lazily at first compaction
	st.builderIDs = make([]string, nShards)
	st.wals = make([]*persist.WAL, nShards)
	switch {
	case cfg.BuilderFor != nil:
		st.builderFor = wrapBuilderFor(cfg.BuilderFor)
	case m.Family != "" && registry.Has(m.Family):
		st.builderFor = familyBuilderFor(m.Family)
	default:
		st.builderFor = func(int, []core.Key) (core.Builder, string, error) {
			return nil, "", fmt.Errorf("serve: store family %q not in registry; Replace unavailable", m.Family)
		}
	}

	// Populate the boundary metadata first: the shard loaders below
	// read neighbouring separators for their routing checks.
	for i := range m.Shards {
		st.seps[i] = m.Shards[i].Sep
		st.builderIDs[i] = m.Shards[i].Codec
	}
	// Load shards concurrently: table reads are I/O-bound, decodes
	// cheap, and the occasional no-codec rebuild CPU-bound.
	var wg sync.WaitGroup
	errs := make([]error, nShards)
	for i := range m.Shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = st.openShard(abs, i, &m.Shards[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, w := range st.wals {
				if w != nil {
					w.Close()
				}
			}
			return nil, err
		}
	}
	// The just-loaded runs are exactly what the manifest committed, so
	// the first checkpoint of an unchanged shard can reuse every file.
	st.persistedRuns = make([]map[*table.Table]persist.RunMeta, nShards)
	for i := range st.shards {
		s := st.shards[i].Load()
		committed := make(map[*table.Table]persist.RunMeta, len(s.runs))
		for r, t := range s.runs {
			committed[t] = m.Shards[i].Runs[r]
		}
		st.persistedRuns[i] = committed
	}
	st.start()
	// Replayed deltas past the threshold compact in the background
	// right away instead of waiting for the next write.
	if cfg.CompactThreshold > 0 {
		for i := range st.shards {
			if st.shards[i].Load().del.len() >= cfg.CompactThreshold {
				st.requestCompact(i)
			}
		}
	}
	return st, nil
}

// openShard loads one shard: its runs (table, index, tombstones per
// run) and its WAL.
func (st *Store) openShard(dir string, i int, meta *persist.ShardMeta) error {
	runs := make([]*table.Table, len(meta.Runs))
	runIDs := make([]string, len(meta.Runs))
	for r := range meta.Runs {
		tab, err := st.openRun(dir, i, r, &meta.Runs[r])
		if err != nil {
			return err
		}
		runs[r] = tab
		runIDs[r] = meta.Runs[r].Codec
	}

	wal, ops, err := persist.OpenWAL(filepath.Join(dir, meta.WAL))
	if err != nil {
		return fmt.Errorf("serve: shard %d wal: %w", i, err)
	}
	for _, op := range ops {
		if st.shardOf(op.Key) != i {
			wal.Close()
			return fmt.Errorf("serve: shard %d wal holds key %d owned by shard %d", i, op.Key, st.shardOf(op.Key))
		}
	}
	st.wals[i] = wal
	st.shards[i].Store(&shardState{runs: runs, runIDs: runIDs, del: deltaFromOps(ops)})
	return nil
}

// openRun loads one run of shard i: table, tombstone bitmap, index.
func (st *Store) openRun(dir string, i, r int, rm *persist.RunMeta) (*table.Table, error) {
	keys, payloads, err := persist.ReadTable(filepath.Join(dir, rm.Table))
	if err != nil {
		return nil, fmt.Errorf("serve: shard %d run %d table: %w", i, r, err)
	}
	// Boundary check: a table file swapped between shards would pass
	// its own checksums but violate the routing invariant. Shard 0 has
	// no lower fence — keys below every separator route to it (see
	// shardOf), so any of its runs may legitimately start below seps[0].
	if len(keys) > 0 {
		if i > 0 && keys[0] < st.seps[i] {
			return nil, fmt.Errorf("serve: shard %d run %d starts at %d, before separator %d", i, r, keys[0], st.seps[i])
		}
		if i+1 < len(st.seps) && keys[len(keys)-1] >= st.seps[i+1] {
			return nil, fmt.Errorf("serve: shard %d run %d crosses into shard %d", i, r, i+1)
		}
	}
	var tombs []bool
	if rm.Tombs != "" {
		tombs, err = persist.ReadTombs(filepath.Join(dir, rm.Tombs), len(keys))
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d run %d tombs: %w", i, r, err)
		}
	}

	switch {
	case len(keys) == 0:
		return table.Empty(st.cfg.Search), nil
	case rm.Index != "":
		idx, err := persist.ReadIndex(filepath.Join(dir, rm.Index))
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d run %d index: %w", i, r, err)
		}
		if fam, _ := registry.ParseID(rm.Codec); fam != idx.Name() {
			// A mismatch between the manifest tag and the frame's own
			// family is tampering — except when the tag names a custom
			// builder (no codec of its own) that produced an index of a
			// codec family; there the frame's self-description wins.
			if _, tagHasCodec := registry.CodecFor(fam); tagHasCodec {
				return nil, fmt.Errorf("serve: shard %d run %d index family %q does not match codec tag %q", i, r, idx.Name(), rm.Codec)
			}
		}
		if err := sampleValidate(keys, idx); err != nil {
			return nil, fmt.Errorf("serve: shard %d run %d: %w", i, r, err)
		}
		tab, err := table.NewTombed(keys, payloads, tombs, idx, st.cfg.Search)
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d run %d: %w", i, r, err)
		}
		return tab, nil
	default:
		// No encoded index (a family without a codec, or a plain
		// binary-search tier run): rebuild from the loaded keys — the
		// documented retraining fallback. For the base run a caller-
		// supplied BuilderFor wins over the catalog: it may be the only
		// way to build a family the registry does not know.
		var b core.Builder
		var id string
		var err error
		if r == 0 && st.cfg.BuilderFor != nil {
			b, id, err = st.builderFor(i, keys)
		} else {
			b, id, err = resolveRebuild(nil, rm.Codec, keys)
		}
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d run %d: %w", i, r, err)
		}
		tab, err := table.BuildTombed(b, keys, payloads, tombs, st.cfg.Search)
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d run %d rebuild: %w", i, r, err)
		}
		if r == 0 {
			st.builders[i] = b
			st.builderIDs[i] = id
		}
		return tab, nil
	}
}

// sampleValidate spot-checks a decoded index against the run's keys: a
// sample of present keys (plus both extremes) must produce valid
// lower-bound search bounds. Checksums catch bit rot; this catches a
// structurally-valid index paired with the wrong table (sizes or key
// ranges that drifted apart), at a cost independent of table size.
func sampleValidate(keys []core.Key, idx core.Index) error {
	n := len(keys)
	const samples = 64
	step := n / samples
	if step < 1 {
		step = 1
	}
	check := func(pos int) error {
		x := keys[pos]
		if b := idx.Lookup(x); !core.ValidBound(keys, x, b) {
			return fmt.Errorf("decoded index returns invalid bound %v for key %d", idx.Lookup(x), x)
		}
		return nil
	}
	for pos := 0; pos < n; pos += step {
		if err := check(pos); err != nil {
			return err
		}
	}
	return check(n - 1)
}
