// Package search implements the "last mile" search functions of the
// benchmark (Section 4.2.3 of the paper): given a valid search bound
// produced by an index structure, locate the exact lower-bound position
// of the lookup key using binary, linear, or interpolation search.
//
// Every consumer of an index — the measurement harness, the table
// layer, the sharded store — finishes lookups through a pluggable Fn,
// so the paper's index-vs-search-function cross product (Figure 11)
// falls out of composition. Binary search is the robust default;
// linear wins on very tight bounds (no branch mispredicts), and
// interpolation wins when keys are near-uniform within the bound.
package search

import "repro/internal/core"

// Fn is a last-mile search function: it returns the lower bound of key
// within keys[b.Lo:b.Hi], as an absolute position into keys. The bound
// must be valid for key (see core.ValidBound); behaviour is undefined
// otherwise.
type Fn func(keys []core.Key, key core.Key, b core.Bound) int

// Kind enumerates the last-mile search strategies evaluated in the paper.
type Kind int

const (
	Binary Kind = iota
	Linear
	Interpolation
	Branchless
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Binary:
		return "binary"
	case Linear:
		return "linear"
	case Interpolation:
		return "interpolation"
	case Branchless:
		return "branchless"
	default:
		return "unknown"
	}
}

// ByKind returns the search function for k.
func ByKind(k Kind) Fn {
	switch k {
	case Binary:
		return BinarySearch
	case Linear:
		return LinearSearch
	case Interpolation:
		return InterpolationSearch
	case Branchless:
		return BranchlessSearch
	default:
		return BinarySearch
	}
}

// BinarySearch locates the lower bound of key within the bound using
// classic branch-light binary search.
func BinarySearch(keys []core.Key, key core.Key, b core.Bound) int {
	lo, hi := b.Lo, b.Hi
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// linearBlock is the LinearSearch block width: one block is eight keys
// (a cache line), compared without branches; the scan branches only
// between blocks.
const linearBlock = 8

// LinearSearch scans forward from the start of the bound. It is fastest
// only for very narrow bounds (the paper finds binary search wins above
// a small threshold). The scan is a sentinel-free compare-accumulate:
// each block of eight keys is compared unconditionally and the match
// count (the keys still below the lookup key) added to the cursor, so
// the only branch is the once-per-block exit test — the classic
// per-element `keys[i] < key` exit branch, mispredicted exactly at the
// answer, is gone.
func LinearSearch(keys []core.Key, key core.Key, b core.Bound) int {
	i := b.Lo
	for i+linearBlock <= b.Hi {
		blk := keys[i : i+linearBlock : i+linearBlock]
		c := 0
		for _, k := range blk {
			if k < key { // compiles to SETcc + add: no data-dependent branch
				c++
			}
		}
		i += c
		if c < linearBlock {
			return i
		}
	}
	// Residual tail (< one block): compare-accumulate without the exit
	// test; sorted keys make the count the lower-bound offset.
	c := 0
	for _, k := range keys[i:b.Hi] {
		if k < key {
			c++
		}
	}
	return i + c
}

// InterpolationSearch repeatedly estimates the key's position assuming
// keys are uniformly distributed between the bound's endpoints, then
// narrows the bound around the probe. It falls back to binary search
// when the range stops shrinking quickly, guaranteeing O(log n) worst
// case while keeping the O(log log n) behaviour on smooth data.
func InterpolationSearch(keys []core.Key, key core.Key, b core.Bound) int {
	lo, hi := b.Lo, b.Hi
	// Invariant: the lower bound of key lies in [lo, hi], with lb == hi
	// only possible when every key in the range is less than key.
	const maxProbes = 16
	for probes := 0; probes < maxProbes && hi-lo > 8; probes++ {
		first, last := keys[lo], keys[hi-1]
		if key <= first {
			return lo
		}
		if key > last {
			return hi
		}
		// first < key <= last here, so first < last and interpolation
		// is well-defined. float64 avoids overflow in the product.
		frac := float64(key-first) / float64(last-first)
		pos := lo + int(frac*float64(hi-1-lo))
		if pos < lo {
			pos = lo
		}
		if pos >= hi {
			pos = hi - 1
		}
		if keys[pos] < key {
			lo = pos + 1
		} else {
			hi = pos + 1
		}
	}
	return BinarySearch(keys, key, core.Bound{Lo: lo, Hi: hi})
}

// ExponentialSearch searches forward from b.Lo with doubling steps, then
// binary-searches the final gallop range. The paper mentions integrating
// exponential search as future work; it is provided for the ablation
// benchmarks.
func ExponentialSearch(keys []core.Key, key core.Key, b core.Bound) int {
	if b.Lo >= b.Hi {
		return b.Lo
	}
	if keys[b.Lo] >= key {
		return b.Lo
	}
	step := 1
	lo := b.Lo
	for lo+step < b.Hi && keys[lo+step] < key {
		lo += step
		step <<= 1
	}
	hi := lo + step
	if hi > b.Hi {
		hi = b.Hi
	}
	return BinarySearch(keys, key, core.Bound{Lo: lo, Hi: hi})
}

// BinarySearch32 is BinarySearch for 32-bit keys.
func BinarySearch32(keys []core.Key32, key core.Key32, b core.Bound) int {
	lo, hi := b.Lo, b.Hi
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// BinarySteps reports the number of binary-search iterations needed to
// resolve a bound of the given width: ceil(log2(width)) for width >= 2.
// It is the paper's "log2 error" unit for a single bound.
func BinarySteps(width int) int {
	if width <= 1 {
		return 0
	}
	steps := 0
	w := uint(width - 1)
	for w > 0 {
		steps++
		w >>= 1
	}
	return steps
}
