// Package rbs implements radix binary search (Kipf et al., SOSD): a
// lookup table over r-bit key prefixes that maps each prefix to the
// range of data positions holding keys with that prefix. It is the
// paper's naive-but-strong baseline: a search bound costs one bit
// shift and one array lookup.
package rbs

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/core"
)

// Builder builds RBS tables with a fixed prefix width.
type Builder struct {
	// RadixBits is the number of prefix bits (table size 2^RadixBits+1).
	RadixBits int
}

// Name implements core.Builder.
func (b Builder) Name() string { return "RBS" }

// Build implements core.Builder.
func (b Builder) Build(keys []core.Key) (core.Index, error) {
	return New(keys, b.RadixBits)
}

// Index is a built radix binary search table.
type Index struct {
	radixBits int
	n         int
	minKey    core.Key
	shift     uint
	table     []int32 // table[p] = first data position with prefix >= p
}

// New builds an RBS table over sorted keys.
func New(keys []core.Key, radixBits int) (*Index, error) {
	n := len(keys)
	if n == 0 {
		return nil, errors.New("rbs: empty key set")
	}
	if radixBits < 1 {
		radixBits = 1
	}
	if radixBits > 28 {
		radixBits = 28
	}
	idx := &Index{radixBits: radixBits, n: n, minKey: keys[0]}
	span := keys[n-1] - keys[0]
	if spanBits := bits.Len64(span); spanBits > radixBits {
		idx.shift = uint(spanBits - radixBits)
	}
	size := 1<<radixBits + 1
	idx.table = make([]int32, size)
	di := 0
	for p := 0; p < size; p++ {
		for di < n && idx.prefix(keys[di]) < uint64(p) {
			di++
		}
		idx.table[p] = int32(di)
	}
	return idx, nil
}

func (idx *Index) prefix(x core.Key) uint64 {
	if x <= idx.minKey {
		return 0
	}
	p := (x - idx.minKey) >> idx.shift
	max := uint64(1)<<idx.radixBits - 1
	if p > max {
		p = max
	}
	return p
}

// Lookup implements core.Index. The lower bound of x lies within the
// run of keys sharing x's prefix (inclusive of the position just past
// the run, for keys greater than every key in the run).
func (idx *Index) Lookup(key core.Key) core.Bound {
	p := idx.prefix(key)
	lo := int(idx.table[p])
	hi := int(idx.table[p+1]) + 1
	if hi > idx.n {
		hi = idx.n
	}
	if lo > hi {
		lo = hi
	}
	return core.Bound{Lo: lo, Hi: hi}
}

// LookupBatch implements core.BatchIndex. RBS bounds are two adjacent
// table loads per key; the batched loop issues them back to back with
// the shift and clamp constants held in registers and every clamp in
// conditional-move shape, which lets the out-of-order core overlap the
// (random) table misses across keys with no mispredict flushes in
// between. The table slice and output window are hoisted so the loop
// body carries no per-iteration bounds checks on the output store.
func (idx *Index) LookupBatch(keys []core.Key, out []core.Bound) {
	minKey, shift, n := idx.minKey, idx.shift, idx.n
	max := uint64(1)<<idx.radixBits - 1
	table := idx.table
	out = out[:len(keys)]
	for i, x := range keys {
		var p uint64
		if x > minKey {
			p = (x - minKey) >> shift
			if p > max {
				p = max
			}
		}
		lo := int(table[p])
		hi := int(table[p+1]) + 1
		if hi > n {
			hi = n
		}
		if lo > hi {
			lo = hi
		}
		out[i] = core.Bound{Lo: lo, Hi: hi}
	}
}

// SizeBytes implements core.Index.
func (idx *Index) SizeBytes() int { return len(idx.table) * 4 }

// Name implements core.Index.
func (idx *Index) Name() string { return "RBS" }

// String implements fmt.Stringer.
func (idx *Index) String() string { return fmt.Sprintf("rbs[r=%d]", idx.radixBits) }

// RadixBits returns the configured prefix width.
func (idx *Index) RadixBits() int { return idx.radixBits }

// BinarySearchBuilder builds the zero-size pure binary search baseline
// (BS in the paper): the index is the trivial full bound.
type BinarySearchBuilder struct{}

// Name implements core.Builder.
func (BinarySearchBuilder) Name() string { return "BS" }

// Build implements core.Builder.
func (BinarySearchBuilder) Build(keys []core.Key) (core.Index, error) {
	if len(keys) == 0 {
		return nil, errors.New("bs: empty key set")
	}
	return binarySearch{n: len(keys)}, nil
}

type binarySearch struct{ n int }

func (b binarySearch) Lookup(core.Key) core.Bound { return core.Bound{Lo: 0, Hi: b.n} }
func (b binarySearch) SizeBytes() int             { return 0 }
func (b binarySearch) Name() string               { return "BS" }

// Bucket exposes the radix bucket probed for a key, for the
// performance-counter simulation.
func (idx *Index) Bucket(key core.Key) uint64 { return idx.prefix(key) }

// TableLen reports the number of table entries.
func (idx *Index) TableLen() int { return len(idx.table) }
