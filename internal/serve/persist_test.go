package serve

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/persist"
	"repro/internal/registry"
)

// snapshotManifest reads a snapshot directory's committed manifest —
// shard file names are generation-suffixed, so tests resolve them
// through it exactly as Open does.
func snapshotManifest(t *testing.T, dir string) *persist.Manifest {
	t.Helper()
	m, err := persist.ReadManifest(filepath.Join(dir, persist.ManifestName))
	if err != nil {
		t.Fatalf("read manifest: %v", err)
	}
	return m
}

// collectState scans the store's full live state into a map.
func collectState(st *Store) map[core.Key]uint64 {
	out := map[core.Key]uint64{}
	st.Scan(0, ^core.Key(0), func(k core.Key, v uint64) bool {
		out[k] = v
		return true
	})
	// The open upper bound misses the max key; probe it directly.
	if v, ok := st.Get(^core.Key(0)); ok {
		out[^core.Key(0)] = v
	}
	return out
}

func assertStateEqual(t *testing.T, st *Store, want map[core.Key]uint64, label string) {
	t.Helper()
	got := collectState(st)
	if len(got) != len(want) {
		t.Fatalf("%s: %d live keys, want %d", label, len(got), len(want))
	}
	for k, v := range want {
		gv, ok := got[k]
		if !ok || gv != v {
			t.Fatalf("%s: key %d = (%d,%v), want %d", label, k, gv, ok, v)
		}
		// Scan and Get must agree.
		pv, pok := st.Get(k)
		if !pok || pv != v {
			t.Fatalf("%s: Get(%d) = (%d,%v), want %d", label, k, pv, pok, v)
		}
	}
}

// TestSnapshotOpenRoundTrip covers every codec family end to end:
// build, write, snapshot, open, and verify the exact live state plus
// that the warm store decoded (rather than rebuilt) its indexes.
func TestSnapshotOpenRoundTrip(t *testing.T) {
	keys, payloads := testData(t, 6000)
	for _, family := range []string{"RMI", "PGM", "RS", "RBS", "BTree"} {
		st, err := New(keys, payloads, Config{Shards: 4, Family: family, CompactThreshold: -1})
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		oracle := map[core.Key]uint64{}
		for i, k := range keys {
			oracle[k] = payloads[i]
		}
		// A mix of pending writes so the snapshot captures a dirty store.
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 500; i++ {
			k := keys[rng.Intn(len(keys))]
			switch rng.Intn(3) {
			case 0:
				st.Put(k, uint64(i)+1_000_000)
				oracle[k] = uint64(i) + 1_000_000
			case 1:
				st.Delete(k)
				delete(oracle, k)
			case 2:
				nk := k + 1
				st.Put(nk, uint64(i))
				oracle[nk] = uint64(i)
			}
		}

		dir := filepath.Join(t.TempDir(), family)
		if err := st.Snapshot(dir); err != nil {
			t.Fatalf("%s: snapshot: %v", family, err)
		}
		st.Close()

		warm, err := Open(dir, Config{})
		if err != nil {
			t.Fatalf("%s: open: %v", family, err)
		}
		if warm.NumShards() != st.NumShards() {
			t.Fatalf("%s: %d shards after open, want %d", family, warm.NumShards(), st.NumShards())
		}
		for i := 0; i < warm.NumShards(); i++ {
			if n := warm.Shard(i).Len(); n > 0 {
				if got := warm.Shard(i).Index().Name(); got != family {
					t.Fatalf("%s: shard %d index decoded as %q", family, i, got)
				}
			}
		}
		assertStateEqual(t, warm, oracle, family)
		warm.Close()
	}
}

// TestOpenCrashSimulatedWALTail is the acceptance scenario: snapshot,
// reopen attached, write, then "crash" (no Close, a torn record
// appended to a WAL) and verify the reopened store serves the exact
// pre-crash state.
func TestOpenCrashSimulatedWALTail(t *testing.T) {
	keys, payloads := testData(t, 5000)
	st, err := New(keys, payloads, Config{Shards: 3, Family: "PGM"})
	if err != nil {
		t.Fatal(err)
	}
	oracle := map[core.Key]uint64{}
	for i, k := range keys {
		oracle[k] = payloads[i]
	}
	dir := t.TempDir()
	if err := st.Snapshot(dir); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	st.Close()

	live, err := Open(dir, Config{CompactThreshold: 200})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// Enough writes to cross the compaction threshold (so a WAL
	// truncation happens mid-stream) plus deletes and fresh keys.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1500; i++ {
		k := keys[rng.Intn(len(keys))]
		switch rng.Intn(4) {
		case 0, 1:
			live.Put(k, uint64(i)+5_000_000)
			oracle[k] = uint64(i) + 5_000_000
		case 2:
			live.Delete(k)
			delete(oracle, k)
		case 3:
			nk := k + 2
			live.Put(nk, uint64(i))
			oracle[nk] = uint64(i)
		}
		if i%97 == 0 {
			// Explicit barrier racing the background compactor's WAL
			// swaps — must be safe and never sync a closed log.
			if err := live.SyncWAL(); err != nil {
				t.Fatalf("SyncWAL: %v", err)
			}
		}
	}
	live.WaitCompactions()
	if err := live.PersistErr(); err != nil {
		t.Fatalf("persist err: %v", err)
	}
	assertStateEqual(t, live, oracle, "live pre-crash")
	// Crash: abandon the store without Close or Snapshot, then tear the
	// tail of one WAL (a record cut mid-write by the crash).
	walPath := filepath.Join(dir, snapshotManifest(t, dir).Shards[1].WAL)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(bytes.Repeat([]byte{0x5A}, 17)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recovered, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("open after crash: %v", err)
	}
	assertStateEqual(t, recovered, oracle, "recovered")
	recovered.Close()
	live.Close()
}

// TestSnapshotWithConcurrentWritersAndCompaction is the map-oracle
// stress: writers on disjoint key ranges run while a mid-stream
// snapshot (with compactions in flight) is taken; the mid-stream
// snapshot must open to a consistent store, and a final quiesced
// snapshot must reproduce the oracle exactly.
func TestSnapshotWithConcurrentWritersAndCompaction(t *testing.T) {
	keys, payloads := testData(t, 8000)
	st, err := New(keys, payloads, Config{Shards: 4, Family: "RBS", CompactThreshold: 128})
	if err != nil {
		t.Fatal(err)
	}
	oracle := map[core.Key]uint64{}
	for i, k := range keys {
		oracle[k] = payloads[i]
	}

	const writers = 4
	const opsPerWriter = 2000
	var wg sync.WaitGroup
	oracles := make([]map[core.Key]uint64, writers)
	span := len(keys) / writers
	for wid := 0; wid < writers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			// Each writer owns a disjoint slice of the key space, so the
			// final oracle is the overlay of per-writer oracles.
			mine := map[core.Key]uint64{}
			rng := rand.New(rand.NewSource(int64(wid) * 31))
			lo := wid * span
			for i := 0; i < opsPerWriter; i++ {
				k := keys[lo+rng.Intn(span)]
				if rng.Intn(3) == 0 {
					st.Delete(k)
					mine[k] = ^uint64(0) // tombstone marker
				} else {
					v := uint64(wid*opsPerWriter + i)
					st.Put(k, v)
					mine[k] = v
				}
			}
			oracles[wid] = mine
		}(wid)
	}

	// Snapshot mid-stream, twice, while writers and background
	// compactions are running.
	midDir := filepath.Join(t.TempDir(), "mid")
	for round := 0; round < 2; round++ {
		if err := st.Snapshot(midDir); err != nil {
			t.Fatalf("mid-stream snapshot: %v", err)
		}
	}
	wg.Wait()

	// The mid-stream snapshot is a consistent point-in-time capture:
	// it must open cleanly and agree with itself (Get vs Scan).
	mid, err := Open(midDir, Config{})
	if err != nil {
		t.Fatalf("open mid-stream snapshot: %v", err)
	}
	state := collectState(mid)
	if len(state) == 0 {
		t.Fatal("mid-stream snapshot is empty")
	}
	for k, v := range state {
		gv, ok := mid.Get(k)
		if !ok || gv != v {
			t.Fatalf("mid snapshot: Get(%d) = (%d,%v), scan says %d", k, gv, ok, v)
		}
	}
	mid.Close()

	// Fold writer oracles into the base oracle.
	for _, mine := range oracles {
		for k, v := range mine {
			if v == ^uint64(0) {
				delete(oracle, k)
			} else {
				oracle[k] = v
			}
		}
	}
	assertStateEqual(t, st, oracle, "store after writers")

	finalDir := filepath.Join(t.TempDir(), "final")
	if err := st.Snapshot(finalDir); err != nil {
		t.Fatalf("final snapshot: %v", err)
	}
	st.Close()
	warm, err := Open(finalDir, Config{})
	if err != nil {
		t.Fatalf("open final: %v", err)
	}
	assertStateEqual(t, warm, oracle, "final restored")
	warm.Close()
}

// TestCompactionTruncatesWAL verifies the WAL contract on an attached
// store: after compactions quiesce, each shard's log holds only the
// still-pending writes, and a reopen agrees with the live state.
func TestCompactionTruncatesWAL(t *testing.T) {
	keys, payloads := testData(t, 4000)
	st, err := New(keys, payloads, Config{Shards: 2, Family: "BTree"})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := st.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	st.Close()

	live, err := Open(dir, Config{CompactThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	oracle := map[core.Key]uint64{}
	for i, k := range keys {
		oracle[k] = payloads[i]
	}
	for i := 0; i < 1000; i++ {
		k := keys[(i*37)%len(keys)]
		live.Put(k, uint64(i))
		oracle[k] = uint64(i)
	}
	live.WaitCompactions()
	if err := live.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if err := live.PersistErr(); err != nil {
		t.Fatalf("persist err: %v", err)
	}
	if got := live.DeltaLen(); got != 0 {
		t.Fatalf("delta len %d after full compact", got)
	}
	// Fully compacted: every committed WAL should be empty (header
	// only).
	for i, sm := range snapshotManifest(t, dir).Shards {
		fi, err := os.Stat(filepath.Join(dir, sm.WAL))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != 16 { // header-only log
			t.Fatalf("shard %d wal is %d bytes after compact, want 16", i, fi.Size())
		}
	}
	live.Close()

	warm, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	assertStateEqual(t, warm, oracle, "after truncated reopen")
	warm.Close()
}

// TestEmptyShardPersistence deletes every key of shard 0, compacts it
// to an empty table, and round-trips through a snapshot.
func TestEmptyShardPersistence(t *testing.T) {
	keys, payloads := testData(t, 3000)
	st, err := New(keys, payloads, Config{Shards: 3, Family: "PGM", CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	oracle := map[core.Key]uint64{}
	for i, k := range keys {
		oracle[k] = payloads[i]
	}
	// Empty out shard 0 (all keys below the second separator).
	end := core.LowerBound(keys, st.seps[1])
	for _, k := range keys[:end] {
		st.Delete(k)
		delete(oracle, k)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if st.Shard(0).Len() != 0 {
		t.Fatalf("shard 0 not empty: %d", st.Shard(0).Len())
	}
	dir := t.TempDir()
	if err := st.Snapshot(dir); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	st.Close()
	warm, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	assertStateEqual(t, warm, oracle, "empty-shard restore")
	// Writes into the emptied shard must still route and persist.
	warm.Put(keys[0], 77)
	oracle[keys[0]] = 77
	if err := warm.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	warm.Close()
	again, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	assertStateEqual(t, again, oracle, "write into empty shard")
	again.Close()
}

// TestOpenRejectsTamperedSnapshot swaps two shards' table files; the
// boundary validation must refuse to serve them.
func TestOpenRejectsTamperedSnapshot(t *testing.T) {
	keys, payloads := testData(t, 4000)
	st, err := New(keys, payloads, Config{Shards: 2, Family: "RBS"})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := st.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	st.Close()
	m := snapshotManifest(t, dir)
	a := filepath.Join(dir, m.Shards[0].Runs[0].Table)
	b := filepath.Join(dir, m.Shards[1].Runs[0].Table)
	tmp := filepath.Join(dir, "x")
	os.Rename(a, tmp)
	os.Rename(b, a)
	os.Rename(tmp, b)
	if _, err := Open(dir, Config{}); err == nil {
		t.Fatal("swapped shard tables opened without error")
	}
}

// TestOpenNoCodecFallback snapshots a family without a registered
// codec (ART) and verifies Open rebuilds its indexes from the loaded
// keys.
func TestOpenNoCodecFallback(t *testing.T) {
	keys, payloads := testData(t, 3000)
	st, err := New(keys, payloads, Config{Shards: 2, Family: "ART"})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := st.Snapshot(dir); err != nil {
		t.Fatalf("snapshot without codec: %v", err)
	}
	st.Close()
	warm, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	oracle := map[core.Key]uint64{}
	for i, k := range keys {
		oracle[k] = payloads[i]
	}
	assertStateEqual(t, warm, oracle, "ART fallback")
	for i := 0; i < warm.NumShards(); i++ {
		if got := warm.Shard(i).Index().Name(); got != "ART" {
			t.Fatalf("shard %d rebuilt as %q", i, got)
		}
	}
	warm.Close()
}

// TestStableIDsAcrossProcesses pins the satellite contract: catalog
// entries are addressable by deterministic string IDs, and the IDs in
// a written manifest resolve back to the same configuration.
func TestStableIDsAcrossProcesses(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Amzn, 3000, 11)
	for _, family := range []string{"BTree", "RBS", "PGM", "RS"} {
		nb, ok := registry.Builder(family, keys)
		if !ok {
			t.Fatalf("%s: no builder", family)
		}
		id := registry.ID(family, nb.Label)
		fam, label := registry.ParseID(id)
		if fam != family || label != nb.Label {
			t.Fatalf("ParseID(%q) = %q,%q", id, fam, label)
		}
		// The same ID must resolve to the same catalog entry in a
		// fresh lookup (as a new process would).
		got, ok := registry.SweepEntry(fam, label, keys)
		if !ok {
			t.Fatalf("%s: SweepEntry(%q) not found", family, label)
		}
		if got.Builder != nb.Builder {
			t.Fatalf("%s: SweepEntry(%q) resolved a different builder: %+v vs %+v", family, label, got.Builder, nb.Builder)
		}
	}
}

// TestReplaceDurability is the Replace crash-consistency regression:
// a logged write superseded wholesale by Replace must not be
// resurrected by WAL replay after a crash, because Replace commits a
// full generation (base + truncated WAL + manifest) atomically.
func TestReplaceDurability(t *testing.T) {
	keys, payloads := testData(t, 3000)
	st, err := New(keys, payloads, Config{Shards: 2, Family: "PGM", CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := st.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	st.Close()

	live, err := Open(dir, Config{CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	// A logged write into shard 0, then a Replace that deliberately
	// discards it.
	k := keys[0]
	live.Put(k, 111)
	end := core.LowerBound(keys, live.seps[1])
	repVals := make([]uint64, end)
	for i := range repVals {
		repVals[i] = 5000 + uint64(i)
	}
	if err := live.Replace(0, append([]core.Key(nil), keys[:end]...), repVals); err != nil {
		t.Fatal(err)
	}
	if err := live.PersistErr(); err != nil {
		t.Fatal(err)
	}
	// Crash (no Close) and recover: the replacement wins everywhere.
	rec, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("open after crash: %v", err)
	}
	if v, ok := rec.Get(k); !ok || v != 5000 {
		t.Fatalf("Get(%d) = (%d,%v) after Replace+crash, want 5000 (discarded Put resurrected?)", k, v, ok)
	}
	if v, ok := rec.Get(keys[end-1]); !ok || v != 5000+uint64(end-1) {
		t.Fatalf("replacement payload lost: Get(%d) = (%d,%v)", keys[end-1], v, ok)
	}
	rec.Close()
	live.Close()
}

// TestSnapshotAttachedBySpelledPath ensures attached-directory
// detection is path-identity based, not string based: snapshotting the
// attached directory under a different spelling must still refresh the
// live WALs instead of orphaning them.
func TestSnapshotAttachedBySpelledPath(t *testing.T) {
	keys, payloads := testData(t, 2000)
	st, err := New(keys, payloads, Config{Shards: 2, Family: "RBS"})
	if err != nil {
		t.Fatal(err)
	}
	parent := t.TempDir()
	dir := filepath.Join(parent, "snap")
	if err := st.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	st.Close()

	live, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	live.Put(keys[0], 42)
	// Same directory, different spelling.
	if err := live.Snapshot(filepath.Join(parent, ".", "snap")); err != nil {
		t.Fatal(err)
	}
	// Writes after the snapshot must still be durable (the live WAL
	// must be the committed one, not an orphaned inode).
	live.Put(keys[1], 43)
	rec, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := rec.Get(keys[0]); !ok || v != 42 {
		t.Fatalf("pre-snapshot write lost: (%d,%v)", v, ok)
	}
	if v, ok := rec.Get(keys[1]); !ok || v != 43 {
		t.Fatalf("post-snapshot write lost: (%d,%v) — WAL orphaned by re-spelled Snapshot", v, ok)
	}
	rec.Close()
	live.Close()
}

// TestBelowSeparatorKeySurvivesReopen is the shard-0 lower-fence
// regression: keys below every separator route to shard 0 (shardOf),
// so a compacted shard-0 base legitimately starting below seps[0]
// must snapshot and reopen.
func TestBelowSeparatorKeySurvivesReopen(t *testing.T) {
	keys, payloads := testData(t, 3000)
	st, err := New(keys, payloads, Config{Shards: 3, Family: "PGM", CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	low := keys[0] - 7 // below the store's entire key range
	st.Put(low, 999)
	if err := st.Compact(); err != nil {
		t.Fatal(err) // merges `low` into shard 0's base, below seps[0]
	}
	dir := t.TempDir()
	if err := st.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	st.Close()
	warm, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("open after below-separator compaction: %v", err)
	}
	if v, ok := warm.Get(low); !ok || v != 999 {
		t.Fatalf("below-separator key lost: (%d,%v)", v, ok)
	}
	warm.Close()
}

// customBuilder is a builder under a family name the registry does not
// know, exercising the BuilderFor rebuild path at Open. wrapIndex
// selects whether the built index also reports the custom family
// (true: no codec applies, snapshots carry no index file) or keeps the
// inner family's name (false: the index is encodable even though the
// builder is custom).
type customBuilder struct {
	inner     core.Builder
	wrapIndex bool
}

func (customBuilder) Name() string { return "CustomFamily" }
func (b customBuilder) Build(keys []core.Key) (core.Index, error) {
	idx, err := b.inner.Build(keys)
	if err != nil || !b.wrapIndex {
		return idx, err
	}
	return customIndex{idx}, nil
}

type customIndex struct{ core.Index }

func (customIndex) Name() string { return "CustomFamily" }

// TestOpenCustomBuilderFor: a store built (and snapshotted) through a
// caller-supplied BuilderFor whose family is not in the registry must
// reopen when the caller supplies the same BuilderFor to Open.
func TestOpenCustomBuilderFor(t *testing.T) {
	keys, payloads := testData(t, 2500)
	oracle := map[core.Key]uint64{}
	for i, k := range keys {
		oracle[k] = payloads[i]
	}
	mk := func(wrapIndex bool) func(int, []core.Key) (core.Builder, error) {
		return func(_ int, ks []core.Key) (core.Builder, error) {
			nb, ok := registry.Builder("RBS", ks)
			if !ok {
				t.Fatal("no RBS builder")
			}
			return customBuilder{inner: nb.Builder, wrapIndex: wrapIndex}, nil
		}
	}

	// Fully custom index family: no codec, so the snapshot carries no
	// index files and reopening needs the caller's builder.
	builderFor := mk(true)
	st, err := New(keys, payloads, Config{Shards: 2, BuilderFor: builderFor})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := st.Snapshot(dir); err != nil {
		t.Fatalf("snapshot custom family: %v", err)
	}
	st.Close()
	if _, err := Open(dir, Config{}); err == nil {
		t.Fatal("open without BuilderFor unexpectedly succeeded")
	}
	warm, err := Open(dir, Config{BuilderFor: builderFor})
	if err != nil {
		t.Fatalf("open with BuilderFor: %v", err)
	}
	assertStateEqual(t, warm, oracle, "custom-builder restore")
	warm.Close()

	// Custom builder whose index keeps a codec family's name: the
	// index is encoded under its own family and must warm-load even
	// though the manifest codec tag names the custom builder.
	st2, err := New(keys, payloads, Config{Shards: 2, BuilderFor: mk(false)})
	if err != nil {
		t.Fatal(err)
	}
	dir2 := t.TempDir()
	if err := st2.Snapshot(dir2); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	warm2, err := Open(dir2, Config{})
	if err != nil {
		t.Fatalf("open wrapper-builder snapshot: %v", err)
	}
	for i := 0; i < warm2.NumShards(); i++ {
		if got := warm2.Shard(i).Index().Name(); got != "RBS" {
			t.Fatalf("shard %d not warm-decoded: %q", i, got)
		}
	}
	assertStateEqual(t, warm2, oracle, "wrapper-builder restore")
	warm2.Close()
}

// TestCheckpointReusesUnchangedBase: an attached checkpoint of a shard
// whose base has not changed since its last commit must reuse the
// committed table/index files (WAL+manifest-only commit) while still
// capturing the pending writes.
func TestCheckpointReusesUnchangedBase(t *testing.T) {
	keys, payloads := testData(t, 2000)
	st, err := New(keys, payloads, Config{Shards: 2, Family: "PGM"})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := st.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	st.Close()
	live, err := Open(dir, Config{CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	m1 := snapshotManifest(t, dir)
	live.Put(keys[0], 7777) // delta-only; bases untouched
	if err := live.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	m2 := snapshotManifest(t, dir)
	if m2.Gen <= m1.Gen {
		t.Fatalf("checkpoint did not advance generation: %d -> %d", m1.Gen, m2.Gen)
	}
	for i := range m2.Shards {
		if m2.Shards[i].Runs[0].Table != m1.Shards[i].Runs[0].Table || m2.Shards[i].Runs[0].Index != m1.Shards[i].Runs[0].Index {
			t.Fatalf("shard %d base rewritten on unchanged-base checkpoint: %+v -> %+v", i, m1.Shards[i], m2.Shards[i])
		}
		if m2.Shards[i].WAL == m1.Shards[i].WAL {
			t.Fatalf("shard %d WAL not recommitted", i)
		}
	}
	live.Close()
	warm, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := warm.Get(keys[0]); !ok || v != 7777 {
		t.Fatalf("checkpointed write lost: (%d,%v)", v, ok)
	}
	warm.Close()
}

// TestTieredPersistenceRoundTrip: an attached tiered store commits its
// run sets incrementally — a flush adds one small run file set, the
// base files are reused — and a reopen restores the multi-run shards
// (tables, tier indexes, tombstone bitmaps) plus the WAL'd pending
// writes exactly.
func TestTieredPersistenceRoundTrip(t *testing.T) {
	keys, payloads := testData(t, 6000)
	st, err := New(keys, payloads, Config{Shards: 2, Family: "PGM"})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := st.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	st.Close()
	m0 := snapshotManifest(t, dir)

	live, err := Open(dir, Config{CompactThreshold: 64, MaxRuns: 4})
	if err != nil {
		t.Fatal(err)
	}
	oracle := map[core.Key]uint64{}
	for i, k := range keys {
		oracle[k] = payloads[i]
	}
	// Inserts plus deletions of base keys: the flushed tier runs carry
	// tombstones that must survive the round trip.
	ins := dataset.InsertKeys(keys, 600, 13)
	for i, k := range ins {
		live.Put(k, uint64(i)+1)
		oracle[k] = uint64(i) + 1
		if i%4 == 0 {
			victim := keys[(i*11)%len(keys)]
			live.Delete(victim)
			delete(oracle, victim)
		}
	}
	live.WaitCompactions()
	if live.MaxRunCount() < 2 {
		t.Fatalf("max run count %d, want >= 2", live.MaxRunCount())
	}
	if err := live.PersistErr(); err != nil {
		t.Fatalf("persist err: %v", err)
	}
	m1 := snapshotManifest(t, dir)
	multiRun, tombed, baseReused := false, false, false
	for i, sm := range m1.Shards {
		if len(sm.Runs) > 1 {
			multiRun = true
		}
		for _, rm := range sm.Runs[1:] {
			if rm.Tombs != "" {
				tombed = true
			}
		}
		if sm.Runs[0].Table == m0.Shards[i].Runs[0].Table {
			baseReused = true
		}
	}
	if !multiRun {
		t.Fatal("committed manifest holds no multi-run shard")
	}
	if !tombed {
		t.Fatal("no committed tier run carries a tombstone bitmap")
	}
	if !baseReused {
		t.Fatal("flush commits rewrote every base run instead of reusing committed files")
	}

	// A few more writes stay in the WAL as the pending delta.
	for i := 0; i < 20; i++ {
		k := ins[i*7%len(ins)]
		live.Put(k, uint64(i)<<16|9)
		oracle[k] = uint64(i)<<16 | 9
	}
	live.Close()

	warm, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	assertStateEqual(t, warm, oracle, "tiered reopen")
	if warm.MaxRunCount() < 2 {
		t.Fatalf("reopened store lost its tier runs: max run count %d", warm.MaxRunCount())
	}
	// And the reopened store keeps compacting: full merge, then check.
	if err := warm.Compact(); err != nil {
		t.Fatal(err)
	}
	assertStateEqual(t, warm, oracle, "tiered reopen + merge")
	warm.Close()
}

// TestAttachedCheckpointUnderWrites is the attached-mode stress: a
// store opened from its own directory takes repeated own-dir
// checkpoints (Snapshot to the attached path commits shard by shard
// and swaps the live WALs) while writers land ops and background
// compactions run. Whatever interleaving the race produces, a reopen
// from the directory must serve exactly the final oracle — a
// checkpoint can never tear the WAL-swap against an in-flight write.
func TestAttachedCheckpointUnderWrites(t *testing.T) {
	keys, payloads := testData(t, 6000)
	seed, err := New(keys, payloads, Config{Shards: 4, Family: "PGM"})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := seed.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	seed.Close()

	st, err := Open(dir, Config{CompactThreshold: 128})
	if err != nil {
		t.Fatal(err)
	}
	oracle := map[core.Key]uint64{}
	for i, k := range keys {
		oracle[k] = payloads[i]
	}

	const writers = 4
	const opsPerWriter = 1500
	var wg sync.WaitGroup
	oracles := make([]map[core.Key]uint64, writers)
	span := len(keys) / writers
	for wid := 0; wid < writers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			mine := map[core.Key]uint64{}
			rng := rand.New(rand.NewSource(int64(wid)*97 + 5))
			lo := wid * span
			for i := 0; i < opsPerWriter; i++ {
				k := keys[lo+rng.Intn(span)]
				if rng.Intn(4) == 0 {
					st.Delete(k)
					mine[k] = ^uint64(0)
				} else {
					v := uint64(wid)<<32 | uint64(i)
					st.Put(k, v)
					mine[k] = v
				}
			}
			oracles[wid] = mine
		}(wid)
	}

	// Checkpoint the attached directory repeatedly while the writers
	// run — each call commits every shard at some consistent cut and
	// truncates its WAL to the writes still pending at that cut.
	checkpointErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 6; round++ {
			if err := st.Snapshot(dir); err != nil {
				checkpointErr <- err
				return
			}
		}
		checkpointErr <- nil
	}()
	wg.Wait()
	if err := <-checkpointErr; err != nil {
		t.Fatalf("attached checkpoint: %v", err)
	}

	for _, mine := range oracles {
		for k, v := range mine {
			if v == ^uint64(0) {
				delete(oracle, k)
			} else {
				oracle[k] = v
			}
		}
	}
	assertStateEqual(t, st, oracle, "attached store after checkpoints")
	if err := st.PersistErr(); err != nil {
		t.Fatalf("background persistence failed: %v", err)
	}
	st.WaitCompactions()
	st.Close()

	warm, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("reopen after checkpoint churn: %v", err)
	}
	assertStateEqual(t, warm, oracle, "reopened after checkpoint churn")
	warm.Close()
}
