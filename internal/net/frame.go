// Package net is the network serving front end: a TCP server that
// fronts a serve.Store behind a length-prefixed binary frame protocol,
// and the matching client. The server coalesces concurrent point
// lookups into single GetBatch rounds against the store (the batched
// fast path built in the serving layer), applies admission control
// with explicit backpressure — a bounded request queue that sheds with
// a RetryLater response instead of queueing without bound — and ships
// its live latency histogram and queue/shed counters to any client in
// one stats frame. See DESIGN.md "Network serving".
//
// Wire format: every message travels as one binio framed message
// (u32 length | body | u64 CRC64 of the body). The body is a binio
// little-endian encoding of one Msg: a type byte, a request id the
// client uses to match responses to in-flight calls (responses may
// arrive out of order: coalescing reorders Gets relative to writes),
// and the type's fields. Corrupt frames are errors that sever the
// connection, never panics — the decoder runs under the same bounded
// Reader contract as the persistence subsystem, and FuzzFrame holds it
// there.
package net

import (
	"bytes"
	"io"
	"math"

	"repro/internal/binio"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/stats"
)

const (
	// MaxFrameBody bounds any frame body on the wire; a peer claiming
	// more is corrupt (or hostile) and is disconnected.
	MaxFrameBody = 1 << 20

	// MaxBatch bounds the key count of one GetBatch request — the
	// largest count whose request and response frames both fit
	// MaxFrameBody with room to spare.
	MaxBatch = 1 << 16

	// maxErrLen bounds an error string on the wire.
	maxErrLen = 4096

	// maxVars bounds a stats frame's registry snapshot (a registry holds
	// tens of series per layer; thousands is corruption), and
	// maxVarNameLen bounds one rendered series id.
	maxVars       = 4096
	maxVarNameLen = 512

	// MaxSnapChunk bounds one snapshot-file chunk on the wire (with
	// frame overhead it sits comfortably inside MaxFrameBody).
	MaxSnapChunk = 256 << 10

	// MaxWalOps bounds the op count of one replication wal-batch — the
	// largest count whose 17-byte encodings fit MaxFrameBody with room
	// to spare.
	MaxWalOps = 16384

	// maxShards bounds per-shard vectors (sequence numbers, separators)
	// in replication frames; a store has tens of shards, not thousands.
	maxShards = 4096

	// maxSnapNameLen bounds a shipped snapshot file name.
	maxSnapNameLen = 255
)

// Message types. Requests flow client→server, responses server→client.
const (
	MsgGet        uint8 = iota + 1 // point lookup: Key
	MsgGetBatch                    // batched lookup: Keys
	MsgPut                         // insert/update: Key, Val
	MsgDelete                      // delete: Key
	MsgStats                       // server stats snapshot request
	MsgValue                       // Get response: Val, Found
	MsgValueBatch                  // GetBatch response: Vals, FoundN
	MsgOK                          // Put/Delete ack
	MsgRetryLater                  // admission refusal: retry later
	MsgError                       // request failed server-side: Err
	MsgStatsReply                  // stats response: Stats

	// Replication stream (see internal/repl): Subscribe..Heartbeat flow
	// on a dedicated follower→primary connection, Topo..Promote on the
	// ordinary serving port.
	MsgSubscribe     // follower→primary: Epoch, Gen, Seqs (applied per shard)
	MsgResync        // primary→follower: state unusable, snapshot follows
	MsgSnapFile      // snapshot chunk: Name, Val (byte offset), Data, Found (last chunk)
	MsgSnapEnd       // bootstrap commit: Epoch, Gen, Seqs (per-shard stream base)
	MsgWalBatch      // live stream: Shard, Seq (of Ops[0]), Ops
	MsgAck           // follower→primary: Seqs received per shard
	MsgHeartbeat     // primary→follower: Epoch, Seqs written per shard
	MsgTopo          // request: shard topology
	MsgTopoReply     // topology: Keys (separators), Gen
	MsgReplStat      // request: replication status
	MsgReplStatReply // status: Role, Epoch, Gen, Seqs
	MsgPromote       // request: promote this follower to writable
	msgTypeEnd       // sentinel: first invalid type
)

// Replication roles carried by MsgReplStatReply.
const (
	RoleNone     uint8 = iota // server without a replication hook
	RolePrimary               // accepts writes, streams to followers
	RoleFollower              // read-only, applying the stream
	roleEnd                   // sentinel: first invalid role
)

// Msg is one protocol message; Type selects which fields are
// meaningful. One struct for all types keeps encode/decode and the
// fuzz surface in one place — the protocol has eleven small shapes,
// not eleven packages.
type Msg struct {
	Type   uint8
	ID     uint64
	Key    core.Key
	Val    uint64 // MsgPut value; MsgSnapFile byte offset
	Found  bool   // MsgValue found bit; MsgSnapFile last-chunk bit
	Keys   []core.Key // MsgGetBatch; MsgTopoReply separators
	Vals   []uint64   // MsgValueBatch
	FoundN uint32     // MsgValueBatch: number of keys found
	Err    string     // MsgError
	Stats  *Stats     // MsgStatsReply

	// Replication fields.
	Epoch uint64       // primary incarnation (MsgSubscribe, MsgSnapEnd, MsgHeartbeat, MsgReplStatReply)
	Gen   uint64       // snapshot generation (MsgSubscribe, MsgSnapEnd, MsgTopoReply, MsgReplStatReply)
	Shard uint32       // MsgWalBatch
	Seq   uint64       // MsgWalBatch: sequence number of Ops[0]
	Seqs  []uint64     // per-shard sequence vector
	Name  string       // MsgSnapFile
	Data  []byte       // MsgSnapFile chunk payload
	Ops   []persist.Op // MsgWalBatch
	Role  uint8        // MsgReplStatReply
}

// Stats is the server's live counter snapshot, shipped in a stats
// frame. Counters are cumulative since server start; QueueDepth is
// instantaneous.
type Stats struct {
	Conns         uint64 // live connections
	Accepted      uint64 // requests admitted past admission control
	Shed          uint64 // requests refused with RetryLater
	ShedConns     uint64 // connections refused at accept (MaxConns)
	DroppedConns  uint64 // connections severed for not draining responses
	Batches       uint64 // coalesced GetBatch rounds executed
	BatchedKeys   uint64 // point lookups served through those rounds
	QueueDepth    uint64 // admission-queue occupancy now
	MaxQueueDepth uint64 // high-water admission-queue occupancy

	// Latency is the server-side service-time histogram (ns): frame
	// decode to response enqueue, per accepted request.
	Latency *stats.Histogram

	// Vars is the server's flattened obs registry snapshot (empty when
	// the server runs without a registry), sorted by name — the wire
	// form is canonical, so decode enforces strictly ascending names.
	Vars []obs.Var
}

// Merge folds o into s: counters and occupancy sum, the queue
// high-water takes the max (a summed high-water would claim a depth no
// server saw), latency histograms merge, and vars sum by name. The
// pool-wide truth for multi-connection and multi-server stats.
func (s *Stats) Merge(o *Stats) {
	s.Conns += o.Conns
	s.Accepted += o.Accepted
	s.Shed += o.Shed
	s.ShedConns += o.ShedConns
	s.DroppedConns += o.DroppedConns
	s.Batches += o.Batches
	s.BatchedKeys += o.BatchedKeys
	s.QueueDepth += o.QueueDepth
	if o.MaxQueueDepth > s.MaxQueueDepth {
		s.MaxQueueDepth = o.MaxQueueDepth
	}
	if o.Latency != nil {
		if s.Latency == nil {
			s.Latency = &stats.Histogram{}
		}
		s.Latency.Merge(o.Latency)
	}
	s.Vars = mergeVars(s.Vars, o.Vars)
}

// mergeVars sums two sorted var lists by name, keeping the result
// sorted. Summing is right for counters and occupancy gauges, the bulk
// of a registry snapshot; per-server readings are one Stats call away.
func mergeVars(a, b []obs.Var) []obs.Var {
	if len(b) == 0 {
		return a
	}
	out := make([]obs.Var, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Name == b[j].Name:
			out = append(out, obs.Var{Name: a[i].Name, Value: a[i].Value + b[j].Value})
			i++
			j++
		case a[i].Name < b[j].Name:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// encodeMsg appends m's body encoding to buf (reset first) and returns
// the body bytes.
func encodeMsg(buf *bytes.Buffer, m *Msg) ([]byte, error) {
	buf.Reset()
	w := binio.NewWriter(buf)
	w.U8(m.Type)
	w.U64(m.ID)
	switch m.Type {
	case MsgGet:
		w.U64(uint64(m.Key))
	case MsgGetBatch:
		w.U32(uint32(len(m.Keys)))
		for _, k := range m.Keys {
			w.U64(uint64(k))
		}
	case MsgPut:
		w.U64(uint64(m.Key))
		w.U64(m.Val)
	case MsgDelete:
		w.U64(uint64(m.Key))
	case MsgStats, MsgOK, MsgRetryLater:
		// header only
	case MsgValue:
		w.U64(m.Val)
		found := uint8(0)
		if m.Found {
			found = 1
		}
		w.U8(found)
	case MsgValueBatch:
		w.U32(m.FoundN)
		w.U32(uint32(len(m.Vals)))
		for _, v := range m.Vals {
			w.U64(v)
		}
	case MsgError:
		w.Str(m.Err)
	case MsgStatsReply:
		s := m.Stats
		w.U64(s.Conns)
		w.U64(s.Accepted)
		w.U64(s.Shed)
		w.U64(s.ShedConns)
		w.U64(s.DroppedConns)
		w.U64(s.Batches)
		w.U64(s.BatchedKeys)
		w.U64(s.QueueDepth)
		w.U64(s.MaxQueueDepth)
		s.Latency.EncodeTo(w)
		if len(s.Vars) > maxVars {
			return nil, binio.Corruptf("encode: %d vars exceeds limit %d", len(s.Vars), maxVars)
		}
		w.U32(uint32(len(s.Vars)))
		for i, v := range s.Vars {
			// The wire form is canonical (FuzzFrame re-encodes decoded
			// frames byte-for-byte), so the sorted-ascending invariant is
			// enforced on both sides.
			if len(v.Name) > maxVarNameLen || (i > 0 && v.Name <= s.Vars[i-1].Name) {
				return nil, binio.Corruptf("encode: vars not strictly ascending by name")
			}
			if math.IsNaN(v.Value) || math.IsInf(v.Value, 0) {
				return nil, binio.Corruptf("encode: non-finite var %q", v.Name)
			}
			w.Str(v.Name)
			w.F64(v.Value)
		}
	case MsgSubscribe:
		w.U64(m.Epoch)
		w.U64(m.Gen)
		if err := encodeSeqs(w, m.Seqs); err != nil {
			return nil, err
		}
	case MsgResync, MsgTopo, MsgReplStat, MsgPromote:
		// header only
	case MsgSnapFile:
		if len(m.Name) == 0 || len(m.Name) > maxSnapNameLen {
			return nil, binio.Corruptf("encode: snap file name length %d out of range", len(m.Name))
		}
		if len(m.Data) > MaxSnapChunk {
			return nil, binio.Corruptf("encode: snap chunk of %d bytes exceeds limit %d", len(m.Data), MaxSnapChunk)
		}
		w.Str(m.Name)
		w.U64(m.Val)
		last := uint8(0)
		if m.Found {
			last = 1
		}
		w.U8(last)
		w.U32(uint32(len(m.Data)))
		w.Bytes(m.Data)
	case MsgSnapEnd:
		w.U64(m.Epoch)
		w.U64(m.Gen)
		if err := encodeSeqs(w, m.Seqs); err != nil {
			return nil, err
		}
	case MsgWalBatch:
		if len(m.Ops) > MaxWalOps {
			return nil, binio.Corruptf("encode: wal batch of %d ops exceeds limit %d", len(m.Ops), MaxWalOps)
		}
		w.U32(m.Shard)
		w.U64(m.Seq)
		w.U32(uint32(len(m.Ops)))
		for _, op := range m.Ops {
			tomb := uint8(0)
			if op.Tomb {
				tomb = 1
			}
			w.U8(tomb)
			w.U64(uint64(op.Key))
			w.U64(op.Val)
		}
	case MsgAck:
		if err := encodeSeqs(w, m.Seqs); err != nil {
			return nil, err
		}
	case MsgHeartbeat:
		w.U64(m.Epoch)
		if err := encodeSeqs(w, m.Seqs); err != nil {
			return nil, err
		}
	case MsgTopoReply:
		w.U64(m.Gen)
		if len(m.Keys) > maxShards {
			return nil, binio.Corruptf("encode: %d separators exceed limit %d", len(m.Keys), maxShards)
		}
		w.U32(uint32(len(m.Keys)))
		for i, k := range m.Keys {
			// Separators strictly increase by construction; the wire form
			// is canonical, so the invariant is enforced on both sides.
			if i > 0 && k <= m.Keys[i-1] {
				return nil, binio.Corruptf("encode: separators not strictly ascending")
			}
			w.U64(uint64(k))
		}
	case MsgReplStatReply:
		if m.Role >= roleEnd {
			return nil, binio.Corruptf("encode: unknown role %d", m.Role)
		}
		w.U8(m.Role)
		w.U64(m.Epoch)
		w.U64(m.Gen)
		if err := encodeSeqs(w, m.Seqs); err != nil {
			return nil, err
		}
	default:
		return nil, binio.Corruptf("encode: unknown message type %d", m.Type)
	}
	if w.Err() != nil {
		return nil, w.Err()
	}
	return buf.Bytes(), nil
}

// encodeSeqs writes a bounded per-shard sequence vector.
func encodeSeqs(w *binio.Writer, seqs []uint64) error {
	if len(seqs) > maxShards {
		return binio.Corruptf("encode: %d shard seqs exceed limit %d", len(seqs), maxShards)
	}
	w.U32(uint32(len(seqs)))
	for _, s := range seqs {
		w.U64(s)
	}
	return nil
}

// decodeSeqs reads a bounded per-shard sequence vector.
func decodeSeqs(r *binio.Reader) ([]uint64, error) {
	n := r.Count(8)
	if n > maxShards {
		return nil, binio.Corruptf("%d shard seqs exceed limit %d", n, maxShards)
	}
	if n == 0 {
		return nil, r.Err()
	}
	seqs := make([]uint64, n)
	for i := range seqs {
		seqs[i] = r.U64()
	}
	return seqs, r.Err()
}

// decodeMsg parses one message body. The returned Msg owns its memory:
// slices and strings are copied out of body, which the transport
// reuses for the next frame. Every count is bounds-checked through the
// binio Reader before it sizes an allocation.
func decodeMsg(body []byte) (*Msg, error) {
	r := binio.NewReader(body)
	m := &Msg{Type: r.U8(), ID: r.U64()}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if m.Type == 0 || m.Type >= msgTypeEnd {
		return nil, binio.Corruptf("decode: unknown message type %d", m.Type)
	}
	switch m.Type {
	case MsgGet, MsgDelete:
		m.Key = core.Key(r.U64())
	case MsgGetBatch:
		n := r.Count(8)
		if n > MaxBatch {
			return nil, binio.Corruptf("batch of %d keys exceeds limit %d", n, MaxBatch)
		}
		m.Keys = make([]core.Key, n)
		for i := range m.Keys {
			m.Keys[i] = core.Key(r.U64())
		}
	case MsgPut:
		m.Key = core.Key(r.U64())
		m.Val = r.U64()
	case MsgStats, MsgOK, MsgRetryLater:
		// header only
	case MsgValue:
		m.Val = r.U64()
		switch r.U8() {
		case 0:
		case 1:
			m.Found = true
		default:
			if r.Err() == nil {
				return nil, binio.Corruptf("found flag out of range")
			}
		}
	case MsgValueBatch:
		m.FoundN = r.U32()
		n := r.Count(8)
		if n > MaxBatch {
			return nil, binio.Corruptf("batch of %d values exceeds limit %d", n, MaxBatch)
		}
		if int(m.FoundN) > n {
			return nil, binio.Corruptf("found count %d exceeds batch %d", m.FoundN, n)
		}
		m.Vals = make([]uint64, n)
		for i := range m.Vals {
			m.Vals[i] = r.U64()
		}
	case MsgError:
		m.Err = r.Str(maxErrLen)
	case MsgStatsReply:
		s := &Stats{
			Conns:         r.U64(),
			Accepted:      r.U64(),
			Shed:          r.U64(),
			ShedConns:     r.U64(),
			DroppedConns:  r.U64(),
			Batches:       r.U64(),
			BatchedKeys:   r.U64(),
			QueueDepth:    r.U64(),
			MaxQueueDepth: r.U64(),
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		h, err := stats.DecodeHistogram(r)
		if err != nil {
			return nil, err
		}
		s.Latency = h
		nv := r.Count(12) // 4-byte name length + 8-byte value at minimum
		if nv > maxVars {
			return nil, binio.Corruptf("%d vars exceeds limit %d", nv, maxVars)
		}
		if nv > 0 {
			s.Vars = make([]obs.Var, nv)
			for i := range s.Vars {
				s.Vars[i] = obs.Var{Name: r.Str(maxVarNameLen), Value: r.FiniteF64()}
				if r.Err() == nil && i > 0 && s.Vars[i].Name <= s.Vars[i-1].Name {
					return nil, binio.Corruptf("vars not strictly ascending by name")
				}
			}
		}
		m.Stats = s
	case MsgSubscribe, MsgSnapEnd:
		m.Epoch = r.U64()
		m.Gen = r.U64()
		seqs, err := decodeSeqs(r)
		if err != nil {
			return nil, err
		}
		m.Seqs = seqs
	case MsgResync, MsgTopo, MsgReplStat, MsgPromote:
		// header only
	case MsgSnapFile:
		m.Name = r.Str(maxSnapNameLen)
		if r.Err() == nil && len(m.Name) == 0 {
			return nil, binio.Corruptf("empty snap file name")
		}
		m.Val = r.U64()
		switch r.U8() {
		case 0:
		case 1:
			m.Found = true
		default:
			if r.Err() == nil {
				return nil, binio.Corruptf("last-chunk flag out of range")
			}
		}
		n := r.Count(1)
		if n > MaxSnapChunk {
			return nil, binio.Corruptf("snap chunk of %d bytes exceeds limit %d", n, MaxSnapChunk)
		}
		if r.Err() != nil {
			return nil, r.Err()
		}
		if n > 0 {
			m.Data = append([]byte(nil), r.Bytes(n)...)
		}
	case MsgWalBatch:
		m.Shard = r.U32()
		m.Seq = r.U64()
		n := r.Count(17)
		if n > MaxWalOps {
			return nil, binio.Corruptf("wal batch of %d ops exceeds limit %d", n, MaxWalOps)
		}
		if r.Err() != nil {
			return nil, r.Err()
		}
		if n > 0 {
			m.Ops = make([]persist.Op, n)
			for i := range m.Ops {
				switch r.U8() {
				case 0:
				case 1:
					m.Ops[i].Tomb = true
				default:
					if r.Err() == nil {
						return nil, binio.Corruptf("tombstone flag out of range")
					}
				}
				m.Ops[i].Key = core.Key(r.U64())
				m.Ops[i].Val = r.U64()
			}
		}
	case MsgAck:
		seqs, err := decodeSeqs(r)
		if err != nil {
			return nil, err
		}
		m.Seqs = seqs
	case MsgHeartbeat:
		m.Epoch = r.U64()
		seqs, err := decodeSeqs(r)
		if err != nil {
			return nil, err
		}
		m.Seqs = seqs
	case MsgTopoReply:
		m.Gen = r.U64()
		n := r.Count(8)
		if n > maxShards {
			return nil, binio.Corruptf("%d separators exceed limit %d", n, maxShards)
		}
		if r.Err() != nil {
			return nil, r.Err()
		}
		if n > 0 {
			m.Keys = make([]core.Key, n)
			for i := range m.Keys {
				m.Keys[i] = core.Key(r.U64())
				if r.Err() == nil && i > 0 && m.Keys[i] <= m.Keys[i-1] {
					return nil, binio.Corruptf("separators not strictly ascending")
				}
			}
		}
	case MsgReplStatReply:
		m.Role = r.U8()
		if r.Err() == nil && m.Role >= roleEnd {
			return nil, binio.Corruptf("unknown role %d", m.Role)
		}
		m.Epoch = r.U64()
		m.Gen = r.U64()
		seqs, err := decodeSeqs(r)
		if err != nil {
			return nil, err
		}
		m.Seqs = seqs
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, binio.Corruptf("%d trailing bytes after message", r.Remaining())
	}
	return m, nil
}

// writeMsg encodes m and writes it as one framed message, using buf as
// the encode scratch. Callers serialize access to (w, buf).
func writeMsg(w io.Writer, buf *bytes.Buffer, m *Msg) error {
	body, err := encodeMsg(buf, m)
	if err != nil {
		return err
	}
	return binio.WriteFramed(w, body)
}

// readMsg reads and decodes one framed message, reusing scratch; it
// returns the (possibly grown) scratch for the next call.
func readMsg(r io.Reader, scratch []byte) (*Msg, []byte, error) {
	body, err := binio.ReadFramed(r, scratch, MaxFrameBody)
	if err != nil {
		return nil, scratch, err
	}
	m, err := decodeMsg(body)
	if cap(body) > cap(scratch) {
		scratch = body[:cap(body)]
	}
	return m, scratch, err
}

// WriteMsg encodes m and writes it as one framed message, using buf as
// the encode scratch. Callers serialize access to (w, buf). Exported
// for the replication subsystem, whose streaming connections speak the
// same frame protocol outside the Server's request/response loop.
func WriteMsg(w io.Writer, buf *bytes.Buffer, m *Msg) error {
	return writeMsg(w, buf, m)
}

// ReadMsg reads and decodes one framed message, reusing scratch; it
// returns the (possibly grown) scratch for the next call. The exported
// face of readMsg (see WriteMsg).
func ReadMsg(r io.Reader, scratch []byte) (*Msg, []byte, error) {
	return readMsg(r, scratch)
}
