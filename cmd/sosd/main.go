// Command sosd runs the benchmark experiments of "Benchmarking Learned
// Indexes" (Marcus et al., VLDB 2020). Each experiment regenerates one
// table or figure of the paper's evaluation; see DESIGN.md for the
// per-experiment index. The catalog is self-registering
// (bench.Register); `sosd -list` is derived from it, and the list
// below is checked against it by TestDocCommentMatchesCatalog.
//
// Usage:
//
//	sosd [-n keys] [-lookups m] [-seed s] [-format text|csv|json|jsonl]
//	     [-o file] [-families f1,f2] [-datasets d1,d2]
//	     [-cpuprofile file] [-memprofile file] [-admin host:port]
//	     <experiment> [...]
//
// Experiments: table1 fig6 fig7 fig8 table2 fig9 fig10 fig11 fig12
// regress fig13 fig14 fig15 fig16a fig16b fig16c fig17 persist serve
// serve-tail serve-write serve-lsm serve-net serve-obs serve-repl
//
// Results go to stdout (or -o); progress and timing go to stderr, so
// the machine-readable formats emit pure data:
//
//	sosd -format json -o results.json fig7
//	sosd -format csv -families RMI,PGM fig13
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/report"
)

func main() {
	n := flag.Int("n", 200_000, "dataset size in keys (the paper uses 200M)")
	lookups := flag.Int("lookups", 20_000, "number of lookups per measurement")
	seed := flag.Uint64("seed", bench.DefaultSeed, "dataset/workload seed (0 is honored as seed 0)")
	format := flag.String("format", "text", "output format: text, csv, json, or jsonl")
	out := flag.String("o", "", "write results to this file instead of stdout")
	familiesFlag := flag.String("families", "", "comma-separated index families to restrict sweeps to")
	datasetsFlag := flag.String("datasets", "", "comma-separated datasets to restrict sweeps to")
	list := flag.Bool("list", false, "list experiments and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	adminAddr := flag.String("admin", "", "admin HTTP listener for /metrics and /debug/pprof during the run (empty = off)")
	flag.Usage = usage
	flag.Parse()

	if *list {
		listExperiments(os.Stdout)
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	o := bench.Options{N: *n, Lookups: *lookups, Seed: *seed}
	var err error
	if o.Families, err = splitNames(*familiesFlag, registry.Families(), "family"); err != nil {
		fatal(err)
	}
	var datasetNames []string
	for _, d := range dataset.All() {
		datasetNames = append(datasetNames, string(d))
	}
	if o.Datasets, err = splitNames(*datasetsFlag, datasetNames, "dataset"); err != nil {
		fatal(err)
	}

	exps, err := resolve(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sosd: %v\n", err)
		listExperiments(os.Stderr)
		os.Exit(2)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	sink, err := newSink(*format, w)
	if err != nil {
		fatal(err)
	}

	// The admin listener gives a long experiment run live /debug/pprof
	// profiles plus the process-wide persist counters on /metrics.
	// Per-store series live in the stores experiments build and tear
	// down; sosdserve is the long-running scrape target for those.
	if *adminAddr != "" {
		reg := obs.NewRegistry()
		obs.RegisterPersist(reg)
		admin, err := obs.ListenAdmin(*adminAddr, reg, nil)
		if err != nil {
			fatal(err)
		}
		defer admin.Close()
		fmt.Fprintf(os.Stderr, "admin listener on http://%s\n", admin.Addr())
	}

	// Profiles cover the experiment loop only — build, flag parsing, and
	// sink setup are excluded so `go tool pprof` shows the hot path.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	run := bench.NewRun(o)
	for _, exp := range exps {
		start := time.Now()
		tables, err := exp.Run(run)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", exp.Name, err))
		}
		for i := range tables {
			if err := sink.Table(&tables[i]); err != nil {
				fatal(fmt.Errorf("%s: %w", exp.Name, err))
			}
		}
		// Progress and timing are operator feedback, never data: they go
		// to stderr so piped/machine-readable output stays pure.
		fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", exp.Name, time.Since(start).Round(time.Millisecond))
	}

	meta := report.NewMeta("sosd")
	meta.Options = map[string]any{
		"n": *n, "lookups": *lookups, "seed": *seed,
		"families": o.Families, "datasets": o.Datasets,
	}
	meta.Datasets = run.DatasetChecksums()
	if err := sink.Close(meta); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s results to %s\n", *format, *out)
	}
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
		fmt.Fprintf(os.Stderr, "wrote CPU profile to %s\n", *cpuprofile)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC() // settle live heap before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote heap profile to %s\n", *memprofile)
	}
}

// resolve maps CLI arguments to catalog entries, expanding "all".
func resolve(args []string) ([]bench.Experiment, error) {
	var exps []bench.Experiment
	for _, name := range args {
		if name == "all" {
			exps = append(exps, bench.Experiments()...)
			continue
		}
		exp, ok := bench.Find(name)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q", name)
		}
		exps = append(exps, exp)
	}
	return exps, nil
}

// newSink picks the report sink for a -format value.
func newSink(format string, w io.Writer) (report.Sink, error) {
	switch format {
	case "text":
		return report.NewText(w), nil
	case "csv":
		return report.NewCSV(w), nil
	case "json":
		return report.NewJSON(w), nil
	case "jsonl":
		return report.NewJSONL(w), nil
	}
	return nil, fmt.Errorf("unknown format %q (want text, csv, json, or jsonl)", format)
}

// splitNames parses a comma-separated filter flag, rejecting names not
// in the known set so a typo fails loudly instead of producing an
// empty report.
func splitNames(s string, known []string, kind string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	var out []string
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, k := range known {
			if k == name {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown %s %q (known: %s)", kind, name, strings.Join(known, ", "))
		}
		out = append(out, name)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sosd: %v\n", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: sosd [-n keys] [-lookups m] [-seed s] [-format text|csv|json|jsonl] [-o file] [-families f1,f2] [-datasets d1,d2] [-cpuprofile file] [-memprofile file] <experiment>...\n\n")
	listExperiments(os.Stderr)
}

func listExperiments(w io.Writer) {
	fmt.Fprintln(w, "experiments:")
	for _, exp := range bench.Experiments() {
		fmt.Fprintf(w, "  %-12s %s\n", exp.Name, exp.Desc)
	}
	fmt.Fprintln(w, "  all          run everything")
}
