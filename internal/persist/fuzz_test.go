package persist

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/binio"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/registry"
)

// fuzzKeys is the small key set the seed corpus encodes over.
func fuzzKeys() []core.Key {
	return dataset.MustGenerate(dataset.Amzn, 400, 99)
}

// seedIndexFrames returns one encoded index frame per codec family.
func seedIndexFrames(tb testing.TB) map[string][]byte {
	keys := fuzzKeys()
	out := map[string][]byte{}
	for _, family := range registry.CodecFamilies() {
		nb, ok := registry.Builder(family, keys)
		if !ok {
			tb.Fatalf("%s: no builder", family)
		}
		idx, err := nb.Builder.Build(keys)
		if err != nil {
			tb.Fatalf("%s: %v", family, err)
		}
		var buf bytes.Buffer
		if err := EncodeIndex(binio.NewWriter(&buf), idx); err != nil {
			tb.Fatalf("%s: encode: %v", family, err)
		}
		out[family] = buf.Bytes()
	}
	return out
}

// FuzzDecode feeds arbitrary bytes to every index decoder: the first
// byte routes to the framed DecodeIndex path (0) or directly into one
// family's codec decoder, and the rest is the payload. The contract
// under fuzz: an error or a structurally usable index — never a panic,
// never an allocation beyond the input's own size class.
func FuzzDecode(f *testing.F) {
	frames := seedIndexFrames(f)
	families := registry.CodecFamilies()
	for _, fam := range families {
		f.Add(append([]byte{0}, frames[fam]...))
	}
	for fi, fam := range families {
		// Raw codec payload: strip the frame header (magic, version,
		// tag) and trailing checksum to seed the direct decoder path.
		frame := frames[fam]
		body := frame[8+4+4+len(fam) : len(frame)-8]
		f.Add(append([]byte{byte(fi + 1)}, body...))
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		sel, payload := data[0], data[1:]
		var idx core.Index
		var err error
		if sel == 0 {
			idx, err = DecodeIndex(payload)
		} else {
			codec, _ := registry.CodecFor(families[int(sel-1)%len(families)])
			idx, err = codec.Decode(binio.NewReader(payload))
		}
		if err != nil {
			if idx != nil {
				t.Fatalf("decoder returned both an index and an error: %v", err)
			}
			return
		}
		if idx == nil {
			t.Fatal("decoder returned nil index with nil error")
		}
		// A successfully decoded index must survive lookups across the
		// key space without panicking and produce ordered bounds.
		for _, x := range []core.Key{0, 1, 1 << 20, 1 << 40, ^core.Key(0)} {
			b := idx.Lookup(x)
			if b.Lo < 0 || b.Lo > b.Hi {
				t.Fatalf("decoded index produced malformed bound %v for %d", b, x)
			}
		}
		_ = idx.SizeBytes()
	})
}

// FuzzWAL feeds arbitrary bytes to the WAL replayer.
func FuzzWAL(f *testing.F) {
	seed := encodeSeedWAL(f, []Op{{Key: 1, Val: 2}, {Key: 3, Tomb: true}})
	f.Add(seed)
	f.Add(seed[:len(seed)-5]) // torn tail
	f.Add([]byte("sosdWAL1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		ops, validLen, err := ReplayWAL(data)
		if err != nil {
			return
		}
		if validLen < walHeaderLen || validLen > int64(len(data)) {
			t.Fatalf("validLen %d outside [header, %d]", validLen, len(data))
		}
		// Replay is deterministic and the valid prefix replays to the
		// same ops.
		ops2, validLen2, err2 := ReplayWAL(data[:validLen])
		if err2 != nil || validLen2 != validLen || len(ops2) != len(ops) {
			t.Fatalf("replay of valid prefix diverged: %v, %d vs %d ops", err2, len(ops2), len(ops))
		}
	})
}

func encodeSeedWAL(tb testing.TB, ops []Op) []byte {
	tb.Helper()
	dir := tb.(interface{ TempDir() string }).TempDir()
	path := filepath.Join(dir, "seed.wal")
	w, err := CreateWAL(path, ops)
	if err != nil {
		tb.Fatal(err)
	}
	w.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzTable feeds arbitrary bytes to the table loader.
func FuzzTable(f *testing.F) {
	keys := fuzzKeys()
	payloads := make([]uint64, len(keys))
	for i := range payloads {
		payloads[i] = uint64(i)
	}
	path := filepath.Join(f.TempDir(), "seed.tab")
	if err := WriteTable(path, keys, payloads); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:4096])
	f.Add([]byte("sosdTAB1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		gk, gp, err := ReadTableFrom(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		if len(gk) != len(gp) {
			t.Fatalf("keys/payloads length diverged: %d vs %d", len(gk), len(gp))
		}
		if !core.IsSorted(gk) {
			t.Fatal("loader returned unsorted keys")
		}
	})
}

// FuzzManifest feeds arbitrary bytes to the manifest decoder; a
// successful decode must re-encode to a byte-identical manifest.
func FuzzManifest(f *testing.F) {
	m := &Manifest{
		Family: "PGM",
		Shards: []ShardMeta{
			{Sep: 0, Codec: "PGM/eps=64", WAL: "shard-0000.wal", Runs: []RunMeta{
				{Codec: "PGM/eps=64", Table: "shard-0000-r00.tab", Index: "shard-0000-r00.idx"},
				{Codec: "BS", Table: "shard-0000-r01.tab", Tombs: "shard-0000-r01.tmb"},
			}},
			{Sep: 9999, Codec: "PGM/eps=64", WAL: "shard-0001.wal", Runs: []RunMeta{
				{Codec: "PGM/eps=64", Table: "shard-0001-r00.tab"},
			}},
		},
	}
	var buf bytes.Buffer
	if err := EncodeManifest(binio.NewWriter(&buf), m); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("sosdMAN2"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeManifest(data)
		if err != nil {
			return
		}
		var re bytes.Buffer
		if err := EncodeManifest(binio.NewWriter(&re), got); err != nil {
			t.Fatalf("re-encode of decoded manifest failed: %v", err)
		}
		if !bytes.Equal(re.Bytes(), data) {
			t.Fatalf("manifest round-trip not byte-identical")
		}
	})
}

// FuzzTombs feeds arbitrary bytes to the tombstone-bit decoder at a
// few plausible run sizes.
func FuzzTombs(f *testing.F) {
	tombs := make([]bool, 37)
	for i := range tombs {
		tombs[i] = i%3 == 0
	}
	var buf bytes.Buffer
	if err := EncodeTombs(binio.NewWriter(&buf), tombs); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("sosdTMB1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, count := range []int{0, 1, 37, 64, 4096} {
			got, err := DecodeTombs(data, count)
			if err != nil {
				continue
			}
			if len(got) != count {
				t.Fatalf("decoded %d bits for count %d", len(got), count)
			}
		}
	})
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpus under
// testdata/fuzz when PERSIST_WRITE_CORPUS=1 — run it after a format
// change and commit the result so `go test -fuzz` always starts from
// valid artifacts of the current version.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("PERSIST_WRITE_CORPUS") == "" {
		t.Skip("set PERSIST_WRITE_CORPUS=1 to regenerate testdata/fuzz")
	}
	write := func(target, name string, data []byte) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	frames := seedIndexFrames(t)
	families := registry.CodecFamilies()
	for fi, fam := range families {
		write("FuzzDecode", "frame-"+fam, append([]byte{0}, frames[fam]...))
		frame := frames[fam]
		body := frame[8+4+4+len(fam) : len(frame)-8]
		write("FuzzDecode", "raw-"+fam, append([]byte{byte(fi + 1)}, body...))
		// A truncated and a bit-flipped variant per family keep the
		// error paths in the corpus too.
		write("FuzzDecode", "trunc-"+fam, append([]byte{0}, frames[fam][:len(frames[fam])/2]...))
		flipped := append([]byte{0}, frames[fam]...)
		flipped[len(flipped)/2] ^= 0x20
		write("FuzzDecode", "flip-"+fam, flipped)
	}

	wal := encodeSeedWAL(t, []Op{{Key: 7, Val: 8}, {Key: 9, Tomb: true}, {Key: 10, Val: 11}})
	write("FuzzWAL", "clean", wal)
	write("FuzzWAL", "torn", wal[:len(wal)-9])
	flippedWAL := append([]byte(nil), wal...)
	flippedWAL[walHeaderLen+walRecordLen+4] ^= 1
	write("FuzzWAL", "flipped", flippedWAL)

	keys := fuzzKeys()
	payloads := make([]uint64, len(keys))
	path := filepath.Join(t.TempDir(), "c.tab")
	if err := WriteTable(path, keys, payloads); err != nil {
		t.Fatal(err)
	}
	tab, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	write("FuzzTable", "clean", tab)
	write("FuzzTable", "trunc", tab[:5000])

	var mbuf bytes.Buffer
	m := &Manifest{Family: "RMI", Shards: []ShardMeta{{Sep: 0, Codec: "RMI/rmi[linear,linear,B=64]", WAL: "shard-0000.wal", Runs: []RunMeta{
		{Codec: "RMI/rmi[linear,linear,B=64]", Table: "shard-0000-r00.tab", Index: "shard-0000-r00.idx"},
		{Codec: "BS", Table: "shard-0000-r01.tab", Tombs: "shard-0000-r01.tmb"},
	}}}}
	if err := EncodeManifest(binio.NewWriter(&mbuf), m); err != nil {
		t.Fatal(err)
	}
	write("FuzzManifest", "clean", mbuf.Bytes())

	var tbuf bytes.Buffer
	tombs := make([]bool, 37)
	for i := range tombs {
		tombs[i] = i%3 == 0
	}
	if err := EncodeTombs(binio.NewWriter(&tbuf), tombs); err != nil {
		t.Fatal(err)
	}
	write("FuzzTombs", "clean", tbuf.Bytes())
	fmt.Println("fuzz corpus regenerated")
}
