package serve

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// TestGetBatchFound holds the per-key found bits to the Get oracle
// across the cases where out alone is ambiguous: zero payloads (base
// and delta), tombstones over base keys, fresh delta inserts, and
// absent keys — before and after compaction.
func TestGetBatchFound(t *testing.T) {
	keys, payloads := testData(t, 4000)
	// Zero payloads in the base on purpose: every 7th key.
	for i := 0; i < len(payloads); i += 7 {
		payloads[i] = 0
	}
	st, err := New(keys, payloads, Config{Shards: 4, Family: "PGM", CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	rng := rand.New(rand.NewSource(3))
	var fresh []core.Key
	for i := 0; i < 200; i++ {
		k := keys[rng.Intn(len(keys))] + 1
		st.Put(k, uint64(i%3)) // zeros among the delta inserts too
		fresh = append(fresh, k)
	}
	for i := 0; i < len(keys); i += 11 {
		st.Delete(keys[i]) // tombstones over base keys
	}

	check := func(stage string) {
		t.Helper()
		var probes []core.Key
		probes = append(probes, keys[:500]...)
		probes = append(probes, fresh...)
		for i := 0; i < 200; i++ {
			probes = append(probes, core.Key(rng.Uint64()))
		}
		out := make([]uint64, len(probes))
		fbits := make([]bool, len(probes))
		n := st.GetBatchFound(probes, out, fbits)
		plain := make([]uint64, len(probes))
		if m := st.GetBatch(probes, plain); m != n {
			t.Fatalf("%s: GetBatchFound count %d != GetBatch %d", stage, n, m)
		}
		nbits := 0
		for i, x := range probes {
			wantV, wantOK := st.Get(x)
			if out[i] != wantV || fbits[i] != wantOK {
				t.Fatalf("%s: key %d: batch (%d,%v), Get (%d,%v)", stage, x, out[i], fbits[i], wantV, wantOK)
			}
			if fbits[i] {
				nbits++
			}
		}
		if nbits != n {
			t.Fatalf("%s: %d found bits set, count says %d", stage, nbits, n)
		}
	}

	check("dirty")
	st.Compact()
	st.WaitCompactions()
	check("compacted")
}
