// Command reportlint validates machine-readable benchmark results: it
// parses each argument as a JSON report document (sosd -format json),
// validates every table against its schema, and prints a one-line
// summary per file. A non-zero exit means the file is not a valid
// report — the check CI runs on the BENCH_smoke.json artifact, and the
// front gate for anything ingesting result files (regression tracking,
// perf dashboards).
//
// Usage:
//
//	reportlint results.json [...]
//	sosd -format json fig7 | reportlint -
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/report"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: reportlint <results.json|-> [...]")
		os.Exit(2)
	}
	failed := false
	for _, arg := range args {
		if err := lint(arg); err != nil {
			fmt.Fprintf(os.Stderr, "reportlint: %s: %v\n", arg, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func lint(path string) error {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	doc, err := report.DecodeDocument(r)
	if err != nil {
		return err
	}
	if doc.Meta.Tool == "" {
		return fmt.Errorf("document has no meta.tool")
	}
	rows := 0
	for _, t := range doc.Tables {
		rows += len(t.Rows)
	}
	fmt.Printf("%s: ok: %s %s, %d tables, %d rows, %d datasets\n",
		path, doc.Meta.Tool, doc.Meta.Version, len(doc.Tables), rows, len(doc.Meta.Datasets))
	return nil
}
