package serve

// Snapshot/Open: the durability face of the Store, composed from the
// artifacts of internal/persist. A snapshot directory holds, per
// shard, a block-aligned table file, an encoded index (when the
// shard's family has a codec), and a write-ahead log seeded with the
// shard's pending delta; the manifest names them all and its rename is
// the commit point. Shard files are written under generation-suffixed
// names and the manifest commits a complete generation at once, so a
// crash at any instant leaves either the full old file set or the full
// new one — never a mixed pair.
//
// A store opened from a snapshot is "attached": every Put/Delete
// appends to its shard's WAL before becoming visible, and every
// compaction or Replace commits the new base and truncates the WAL to
// the writes still pending — the commit (manifest rename) happens
// under the shard's write lock, so no write can slip between the WAL
// seed it captures and the moment it takes effect. At any instant,
// replaying a shard's committed WAL over its committed base reproduces
// the shard's live state. See DESIGN.md "Persistence".

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/registry"
	"repro/internal/search"
	"repro/internal/table"
)

func tabFileName(i int, gen uint64) string { return fmt.Sprintf("shard-%04d-g%06d.tab", i, gen) }
func idxFileName(i int, gen uint64) string { return fmt.Sprintf("shard-%04d-g%06d.idx", i, gen) }
func walFileName(i int, gen uint64) string { return fmt.Sprintf("shard-%04d-g%06d.wal", i, gen) }

// notePersistErr records the store's first background persistence
// failure (WAL append, compaction commit); PersistErr surfaces it.
func (st *Store) notePersistErr(err error) {
	st.persistErrMu.Lock()
	if st.persistErr == nil {
		st.persistErr = err
	}
	st.persistErrMu.Unlock()
}

// PersistErr reports the first persistence failure the store has
// swallowed on a background path (WAL appends, compaction commits).
// A non-nil result means the in-memory state is fine but durability
// is degraded: the next Snapshot to a healthy location should be
// treated as urgent.
func (st *Store) PersistErr() error {
	st.persistErrMu.Lock()
	defer st.persistErrMu.Unlock()
	return st.persistErr
}

// Dir reports the attached snapshot directory ("" for a volatile
// store built with New).
func (st *Store) Dir() string { return st.dir }

// SyncWAL fsyncs every attached write-ahead log: an explicit storage
// barrier for stores running without SyncWrites. Safe alongside
// concurrent writes and compactions.
func (st *Store) SyncWAL() error {
	if st.wals == nil {
		return nil // volatile store: nothing to sync
	}
	for i := range st.writeMu {
		st.writeMu[i].Lock()
		w := st.wals[i]
		var err error
		if w != nil {
			err = w.Sync()
		}
		st.writeMu[i].Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// pendingOps flattens a shard state's pending writes (frozen delta
// under active, newest wins) into WAL seed records.
func pendingOps(s *shardState) []persist.Op {
	d := s.del
	if s.frozen != nil {
		d = s.frozen.overlay(s.del)
	}
	if d.len() == 0 {
		return nil
	}
	ops := make([]persist.Op, d.len())
	for i := range ops {
		ops[i] = persist.Op{Key: d.keys[i], Val: d.vals[i], Tomb: d.tombs[i]}
	}
	return ops
}

// deltaFromOps replays WAL records into a delta: last write per key
// wins, entries sorted. Linear in the op count (not the quadratic
// one-at-a-time copy-on-write path used for live writes).
func deltaFromOps(ops []persist.Op) *delta {
	if len(ops) == 0 {
		return emptyDelta
	}
	last := make(map[core.Key]persist.Op, len(ops))
	for _, op := range ops {
		last[op.Key] = op
	}
	keys := make([]core.Key, 0, len(last))
	for k := range last {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	d := &delta{
		keys:  keys,
		vals:  make([]uint64, len(keys)),
		tombs: make([]bool, len(keys)),
	}
	for i, k := range keys {
		d.vals[i] = last[k].Val
		d.tombs[i] = last[k].Tomb
	}
	return d
}

// writeShardBase writes shard i's immutable base (table file, and the
// encoded index when the family has a codec) into dir at generation
// gen, returning the file names ("" index = rebuild-at-load marker).
func (st *Store) writeShardBase(dir string, i int, gen uint64, tab *table.Table) (tabName, idxName string, err error) {
	tabName = tabFileName(i, gen)
	if err := persist.WriteTable(filepath.Join(dir, tabName), tab.Keys(), tab.Payloads()); err != nil {
		return "", "", err
	}
	if tab.Len() > 0 {
		if _, ok := registry.CodecFor(tab.Index().Name()); ok {
			idxName = idxFileName(i, gen)
			if err := persist.WriteIndex(filepath.Join(dir, idxName), tab.Index()); err != nil {
				return "", "", err
			}
		}
	}
	return tabName, idxName, nil
}

// cleanStaleShardFiles removes generation files the committed manifest
// no longer references. Best-effort: leftovers waste space, never
// correctness.
func cleanStaleShardFiles(dir string, m *persist.Manifest) {
	keep := map[string]bool{}
	for _, s := range m.Shards {
		keep[s.Table], keep[s.Index], keep[s.WAL] = true, true, true
	}
	matches, err := filepath.Glob(filepath.Join(dir, "shard-*"))
	if err != nil {
		return
	}
	for _, path := range matches {
		if !keep[filepath.Base(path)] {
			os.Remove(path)
		}
	}
}

// Snapshot atomically persists the store's full state into dir: every
// shard's base table, its index (encoded without its training data
// when the family has a codec), and a WAL seeded with the shard's
// pending writes, committed by the manifest rename. It runs alongside
// concurrent reads and writes — each shard is captured at one
// consistent (base, pending) point — and leaves the store serving
// throughout. Snapshotting an attached store to its own directory
// commits shard by shard and swaps the live WALs, truncating each to
// the pending writes just captured.
func (st *Store) Snapshot(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return err
	}
	if st.dir != "" && abs == st.dir {
		st.persistMu.Lock()
		defer st.persistMu.Unlock()
		for i := range st.shards {
			if err := st.persistShardLocked(i); err != nil {
				return err
			}
		}
		return nil
	}

	// Export to a foreign directory: capture each shard from one
	// atomic state load (tab, active, frozen are individually
	// immutable, so no locks or retries are needed), then commit a
	// complete generation with a single manifest rename. Exports
	// serialize only against each other (exportMu), never against the
	// attached directory's compaction commits — a long backup must not
	// stall the compactor behind persistMu.
	st.exportMu.Lock()
	defer st.exportMu.Unlock()
	gen := uint64(1)
	if old, err := persist.ReadManifest(filepath.Join(abs, persist.ManifestName)); err == nil {
		gen = old.Gen + 1
	}
	m := &persist.Manifest{
		Family: st.cfg.Family,
		Gen:    gen,
		Shards: make([]persist.ShardMeta, len(st.shards)),
	}
	for i := range st.shards {
		st.writeMu[i].Lock()
		s := st.shards[i].Load()
		tag := st.builderIDs[i] // read with its state under the lock
		st.writeMu[i].Unlock()
		tabName, idxName, err := st.writeShardBase(abs, i, gen, s.tab)
		if err != nil {
			return err
		}
		walName := walFileName(i, gen)
		w, err := persist.CreateWAL(filepath.Join(abs, walName), pendingOps(s))
		if err != nil {
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		m.Shards[i] = persist.ShardMeta{
			Sep: st.seps[i], Codec: tag,
			Table: tabName, Index: idxName, WAL: walName,
		}
	}
	if err := persist.WriteManifest(filepath.Join(abs, persist.ManifestName), m); err != nil {
		return err
	}
	cleanStaleShardFiles(abs, m)
	return nil
}

// persistShard commits shard i's current state to the attached
// directory at a fresh generation: new table + index files, a WAL
// seeded with the still-pending writes, and the manifest naming them.
// It is the incremental, single-shard form of Snapshot, run after
// every compaction and Replace on an attached store.
func (st *Store) persistShard(i int) error {
	st.persistMu.Lock()
	defer st.persistMu.Unlock()
	return st.persistShardLocked(i)
}

// persistShardLocked (persistMu held) does the work. The heavy base
// write happens off the shard's write lock against the immutable
// table (retrying if a compaction republishes it mid-write); the WAL
// seed and the manifest rename happen under the lock, so the commit
// point and the captured pending set agree exactly — this is what
// keeps the replay invariant through compaction truncations and
// through Replace's wholesale discard of pending writes. Writers to
// this one shard stall for the WAL+manifest commit (~one fsync);
// readers and other shards are unaffected.
func (st *Store) persistShardLocked(i int) error {
	dir := st.dir
	gen := st.gen + 1
	for {
		s := st.shards[i].Load()
		var tabName, idxName string
		if st.lastPersisted[i] == s.tab {
			// Base unchanged since its last commit: reuse the committed
			// files and make this a WAL+manifest-only commit (~one
			// fsync) — the common shape of a periodic checkpoint.
			tabName, idxName = st.meta[i].Table, st.meta[i].Index
		} else {
			var err error
			tabName, idxName, err = st.writeShardBase(dir, i, gen, s.tab)
			if err != nil {
				return err
			}
		}

		st.writeMu[i].Lock()
		s2 := st.shards[i].Load()
		if s2.tab != s.tab {
			st.writeMu[i].Unlock()
			continue // base republished mid-write; redo (same gen, files overwritten)
		}
		walName := walFileName(i, gen)
		w, err := persist.CreateWAL(filepath.Join(dir, walName), pendingOps(s2))
		if err != nil {
			st.writeMu[i].Unlock()
			return err
		}
		shards := append([]persist.ShardMeta(nil), st.meta...)
		shards[i] = persist.ShardMeta{
			Sep: st.seps[i], Codec: st.builderIDs[i],
			Table: tabName, Index: idxName, WAL: walName,
		}
		m := &persist.Manifest{Family: st.cfg.Family, Gen: gen, Shards: shards}
		if err := persist.WriteManifest(filepath.Join(dir, persist.ManifestName), m); err != nil {
			w.Close()
			st.writeMu[i].Unlock()
			return err
		}
		// Committed: swap the live WAL, retire the old generation.
		if old := st.wals[i]; old != nil {
			old.Close()
		}
		st.wals[i] = w
		st.writeMu[i].Unlock()
		st.meta = shards
		st.gen = gen
		st.lastPersisted[i] = s.tab
		cleanStaleShardFiles(dir, m)
		return nil
	}
}

// wrapBuilderFor adapts a Config.BuilderFor callback to the internal
// (builder, codec tag, error) shape shared by New and Open. Custom
// builders have no catalog label; the family name alone is still a
// usable codec tag.
func wrapBuilderFor(custom func(shard int, keys []core.Key) (core.Builder, error)) func(int, []core.Key) (core.Builder, string, error) {
	return func(shard int, keys []core.Key) (core.Builder, string, error) {
		b, err := custom(shard, keys)
		if err != nil {
			return nil, "", err
		}
		return b, registry.ID(b.Name(), ""), nil
	}
}

// Open loads a store from a snapshot directory: each shard's table is
// read through io.ReaderAt into its final arrays, its index decoded
// from trained parameters (no retraining; families without a codec are
// rebuilt from the loaded keys), and its WAL replayed into the pending
// delta — so the store serves exactly the state current when the
// snapshot (plus any logged writes) was taken. The returned store is
// attached: subsequent writes append to the WALs and compactions
// advance the on-disk state. cfg supplies the runtime knobs (Search,
// Workers, CompactThreshold, SyncWrites, BuilderFor); the shard
// structure, family and index configuration come from the manifest.
func Open(dir string, cfg Config) (*Store, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	m, err := persist.ReadManifest(filepath.Join(abs, persist.ManifestName))
	if err != nil {
		return nil, fmt.Errorf("serve: open %s: %w", dir, err)
	}
	if cfg.Search == nil {
		cfg.Search = search.BinarySearch
	}
	cfg.Family = m.Family
	nShards := len(m.Shards)
	if cfg.Workers <= 0 {
		cfg.Workers = nShards
		if ncpu := runtime.NumCPU(); cfg.Workers > ncpu {
			cfg.Workers = ncpu
		}
	}
	if cfg.CompactThreshold == 0 {
		cfg.CompactThreshold = DefaultCompactThreshold
	}

	st := &Store{cfg: cfg, dir: abs, gen: m.Gen}
	st.meta = append([]persist.ShardMeta(nil), m.Shards...)
	st.seps = make([]core.Key, nShards)
	st.shards = make([]atomic.Pointer[shardState], nShards)
	st.writeMu = make([]sync.Mutex, nShards)
	st.builders = make([]core.Builder, nShards) // resolved lazily at first compaction
	st.builderIDs = make([]string, nShards)
	st.wals = make([]*persist.WAL, nShards)
	switch {
	case cfg.BuilderFor != nil:
		st.builderFor = wrapBuilderFor(cfg.BuilderFor)
	case m.Family != "" && registry.Has(m.Family):
		st.builderFor = familyBuilderFor(m.Family)
	default:
		st.builderFor = func(int, []core.Key) (core.Builder, string, error) {
			return nil, "", fmt.Errorf("serve: store family %q not in registry; Replace unavailable", m.Family)
		}
	}

	// Populate the boundary metadata first: the shard loaders below
	// read neighbouring separators for their routing checks.
	for i := range m.Shards {
		st.seps[i] = m.Shards[i].Sep
		st.builderIDs[i] = m.Shards[i].Codec
	}
	// Load shards concurrently: table reads are I/O-bound, decodes
	// cheap, and the occasional no-codec rebuild CPU-bound.
	var wg sync.WaitGroup
	errs := make([]error, nShards)
	for i := range m.Shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = st.openShard(abs, i, &m.Shards[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, w := range st.wals {
				if w != nil {
					w.Close()
				}
			}
			return nil, err
		}
	}
	// The just-loaded bases are exactly what the manifest committed, so
	// the first checkpoint of an unchanged shard can skip rewriting them.
	st.lastPersisted = make([]*table.Table, nShards)
	for i := range st.shards {
		st.lastPersisted[i] = st.shards[i].Load().tab
	}
	st.start()
	// Replayed deltas past the threshold compact in the background
	// right away instead of waiting for the next write.
	if cfg.CompactThreshold > 0 {
		for i := range st.shards {
			if st.shards[i].Load().del.len() >= cfg.CompactThreshold {
				st.requestCompact(i)
			}
		}
	}
	return st, nil
}

// openShard loads one shard: table, index, WAL.
func (st *Store) openShard(dir string, i int, meta *persist.ShardMeta) error {
	keys, payloads, err := persist.ReadTable(filepath.Join(dir, meta.Table))
	if err != nil {
		return fmt.Errorf("serve: shard %d table: %w", i, err)
	}
	// Boundary check: a table file swapped between shards would pass
	// its own checksums but violate the routing invariant. Shard 0 has
	// no lower fence — keys below every separator route to it (see
	// shardOf), so its compacted base may legitimately start below
	// seps[0].
	if len(keys) > 0 {
		if i > 0 && keys[0] < st.seps[i] {
			return fmt.Errorf("serve: shard %d table starts at %d, before separator %d", i, keys[0], st.seps[i])
		}
		if i+1 < len(st.seps) && keys[len(keys)-1] >= st.seps[i+1] {
			return fmt.Errorf("serve: shard %d table crosses into shard %d", i, i+1)
		}
	}

	var tab *table.Table
	switch {
	case len(keys) == 0:
		tab = table.Empty(st.cfg.Search)
	case meta.Index != "":
		idx, err := persist.ReadIndex(filepath.Join(dir, meta.Index))
		if err != nil {
			return fmt.Errorf("serve: shard %d index: %w", i, err)
		}
		if fam, _ := registry.ParseID(meta.Codec); fam != idx.Name() {
			// A mismatch between the manifest tag and the frame's own
			// family is tampering — except when the tag names a custom
			// builder (no codec of its own) that produced an index of a
			// codec family; there the frame's self-description wins.
			if _, tagHasCodec := registry.CodecFor(fam); tagHasCodec {
				return fmt.Errorf("serve: shard %d index family %q does not match codec tag %q", i, idx.Name(), meta.Codec)
			}
		}
		if err := sampleValidate(keys, idx); err != nil {
			return fmt.Errorf("serve: shard %d: %w", i, err)
		}
		tab, err = table.New(keys, payloads, idx, st.cfg.Search)
		if err != nil {
			return fmt.Errorf("serve: shard %d: %w", i, err)
		}
	default:
		// No encoded index (family without a codec): rebuild from the
		// loaded keys — the documented retraining fallback. A caller-
		// supplied BuilderFor wins over the catalog: it may be the only
		// way to build a family the registry does not know.
		var b core.Builder
		var id string
		var err error
		if st.cfg.BuilderFor != nil {
			b, id, err = st.builderFor(i, keys)
		} else {
			b, id, err = resolveRebuild(nil, meta.Codec, keys)
		}
		if err != nil {
			return fmt.Errorf("serve: shard %d: %w", i, err)
		}
		tab, err = table.Build(b, keys, payloads, st.cfg.Search)
		if err != nil {
			return fmt.Errorf("serve: shard %d rebuild: %w", i, err)
		}
		st.builders[i] = b
		st.builderIDs[i] = id
	}

	wal, ops, err := persist.OpenWAL(filepath.Join(dir, meta.WAL))
	if err != nil {
		return fmt.Errorf("serve: shard %d wal: %w", i, err)
	}
	for _, op := range ops {
		if st.shardOf(op.Key) != i {
			wal.Close()
			return fmt.Errorf("serve: shard %d wal holds key %d owned by shard %d", i, op.Key, st.shardOf(op.Key))
		}
	}
	st.wals[i] = wal
	st.shards[i].Store(&shardState{tab: tab, del: deltaFromOps(ops)})
	return nil
}

// sampleValidate spot-checks a decoded index against the shard's keys:
// a sample of present keys (plus both extremes) must produce valid
// lower-bound search bounds. Checksums catch bit rot; this catches a
// structurally-valid index paired with the wrong table (sizes or key
// ranges that drifted apart), at a cost independent of table size.
func sampleValidate(keys []core.Key, idx core.Index) error {
	n := len(keys)
	const samples = 64
	step := n / samples
	if step < 1 {
		step = 1
	}
	check := func(pos int) error {
		x := keys[pos]
		if b := idx.Lookup(x); !core.ValidBound(keys, x, b) {
			return fmt.Errorf("decoded index returns invalid bound %v for key %d", idx.Lookup(x), x)
		}
		return nil
	}
	for pos := 0; pos < n; pos += step {
		if err := check(pos); err != nil {
			return err
		}
	}
	return check(n - 1)
}
