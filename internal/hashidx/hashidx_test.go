package hashidx

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dataset"
)

func TestRobinHoodBasic(t *testing.T) {
	tbl, err := NewRobinHood(100, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		tbl.Insert(uint64(i*17), int32(i))
	}
	if tbl.Count() != 100 {
		t.Fatalf("count = %d", tbl.Count())
	}
	for i := 0; i < 100; i++ {
		v, ok := tbl.Get(uint64(i * 17))
		if !ok || v != int32(i) {
			t.Fatalf("Get(%d) = (%d, %v)", i*17, v, ok)
		}
	}
	if _, ok := tbl.Get(5); ok {
		t.Error("absent key found")
	}
}

func TestRobinHoodOverwrite(t *testing.T) {
	tbl, _ := NewRobinHood(10, 0.5)
	tbl.Insert(7, 1)
	tbl.Insert(7, 2)
	if tbl.Count() != 1 {
		t.Fatalf("count = %d", tbl.Count())
	}
	if v, _ := tbl.Get(7); v != 2 {
		t.Fatalf("Get(7) = %d", v)
	}
}

func TestRobinHoodHighLoad(t *testing.T) {
	// 0.99 load factor forces long probe chains and displacement.
	tbl, _ := NewRobinHood(1000, 0.99)
	rng := rand.New(rand.NewSource(2))
	keys := map[uint64]int32{}
	for i := 0; i < 1000; i++ {
		k := rng.Uint64()
		keys[k] = int32(i)
		tbl.Insert(k, int32(i))
	}
	for k, v := range keys {
		got, ok := tbl.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%d) = (%d, %v), want %d", k, got, ok, v)
		}
	}
}

func TestRobinHoodInvalidLoadFactor(t *testing.T) {
	for _, lf := range []float64{0, -1, 1.5} {
		if _, err := NewRobinHood(10, lf); err == nil {
			t.Errorf("load factor %f should error", lf)
		}
	}
}

func TestCuckooBasic(t *testing.T) {
	tbl, err := NewCuckoo(100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		tbl.Insert(uint64(i*31+7), int32(i))
	}
	if tbl.Count() != 100 {
		t.Fatalf("count = %d", tbl.Count())
	}
	for i := 0; i < 100; i++ {
		v, ok := tbl.Get(uint64(i*31 + 7))
		if !ok || v != int32(i) {
			t.Fatalf("Get = (%d, %v)", v, ok)
		}
	}
	if _, ok := tbl.Get(1); ok {
		t.Error("absent key found")
	}
}

func TestCuckooHighLoad(t *testing.T) {
	// The paper runs Cuckoo at 0.99 load; eviction chains and grow
	// must keep every entry reachable.
	tbl, _ := NewCuckoo(5000, 0.99)
	rng := rand.New(rand.NewSource(3))
	keys := map[uint64]int32{}
	for i := 0; i < 5000; i++ {
		k := rng.Uint64()
		keys[k] = int32(i)
		tbl.Insert(k, int32(i))
	}
	for k, v := range keys {
		got, ok := tbl.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%d) = (%d, %v), want %d", k, got, ok, v)
		}
	}
}

func TestCuckooOverwrite(t *testing.T) {
	tbl, _ := NewCuckoo(10, 0.5)
	tbl.Insert(9, 1)
	tbl.Insert(9, 5)
	if tbl.Count() != 1 {
		t.Fatalf("count = %d", tbl.Count())
	}
	if v, _ := tbl.Get(9); v != 5 {
		t.Fatalf("Get(9) = %d", v)
	}
}

func TestBuildersOnDataset(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Amzn, 20000, 1)
	for _, b := range []core.Builder{RobinHoodBuilder{}, CuckooBuilder{}} {
		idx, err := b.Build(keys)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		// Present keys: exact single-position bounds.
		for i, k := range keys[:2000] {
			bd := idx.Lookup(k)
			if bd.Width() != 1 || bd.Lo != i {
				t.Fatalf("%s: Lookup(%d) = %v, want [%d,%d)", b.Name(), k, bd, i, i+1)
			}
		}
		// Absent keys fall back to the full (valid) bound.
		for _, k := range dataset.AbsentLookups(keys, 200, 1) {
			bd := idx.Lookup(k)
			if !core.ValidBound(keys, k, bd) {
				t.Fatalf("%s: invalid bound for absent key", b.Name())
			}
		}
		if idx.SizeBytes() <= 0 {
			t.Errorf("%s: non-positive size", b.Name())
		}
	}
}

func TestBuildersDuplicates(t *testing.T) {
	keys := []core.Key{4, 4, 4, 9, 9, 12}
	for _, b := range []core.Builder{RobinHoodBuilder{}, CuckooBuilder{}} {
		idx, err := b.Build(keys)
		if err != nil {
			t.Fatal(err)
		}
		bd := idx.Lookup(4)
		if bd.Lo != 0 {
			t.Errorf("%s: duplicate key should map to first position, got %v", b.Name(), bd)
		}
	}
}

func TestBuildersEmpty(t *testing.T) {
	for _, b := range []core.Builder{RobinHoodBuilder{}, CuckooBuilder{}} {
		if _, err := b.Build(nil); err == nil {
			t.Errorf("%s: expected error", b.Name())
		}
	}
}

func TestSizeReflectsLoadFactor(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Amzn, 10000, 1)
	dense, _ := RobinHoodBuilder{LoadFactor: 0.9}.Build(keys)
	sparse, _ := RobinHoodBuilder{LoadFactor: 0.25}.Build(keys)
	if dense.SizeBytes() >= sparse.SizeBytes() {
		t.Errorf("0.9 load (%d B) should be smaller than 0.25 load (%d B)",
			dense.SizeBytes(), sparse.SizeBytes())
	}
}

// Property: both tables behave like map[uint64]int32 under random
// insert sequences with overwrites.
func TestHashTablesProperty(t *testing.T) {
	f := func(raw []uint64) bool {
		rh, _ := NewRobinHood(len(raw), 0.5)
		ck, _ := NewCuckoo(len(raw), 0.5)
		ref := map[uint64]int32{}
		for i, k := range raw {
			ref[k] = int32(i)
			rh.Insert(k, int32(i))
			ck.Insert(k, int32(i))
		}
		for k, v := range ref {
			if got, ok := rh.Get(k); !ok || got != v {
				return false
			}
			if got, ok := ck.Get(k); !ok || got != v {
				return false
			}
		}
		return rh.Count() == len(ref) && ck.Count() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
