package rmi

import "math"

// ModelKind enumerates the model types available to RMI stages,
// mirroring the CDFShop model zoo (Section 3.1; Marcus et al. use
// linear, linear-spline, cubic and radix models for in-memory RMIs).
type ModelKind int

const (
	// ModelLinear is an ordinary-least-squares linear fit with the
	// slope clamped to be non-negative (CDFs are monotone).
	ModelLinear ModelKind = iota
	// ModelLinearSpline connects the first and last training points;
	// cheaper to train than OLS and exact at the segment endpoints.
	ModelLinearSpline
	// ModelCubic is a least-squares cubic fit, used when a stage must
	// capture curvature; falls back to linear when the fit would be
	// non-monotone over the training range.
	ModelCubic
	// ModelRadix predicts from the key's top bits — a pure bit shift,
	// the cheapest possible stage-1 model.
	ModelRadix
)

// String implements fmt.Stringer.
func (k ModelKind) String() string {
	switch k {
	case ModelLinear:
		return "linear"
	case ModelLinearSpline:
		return "linear_spline"
	case ModelCubic:
		return "cubic"
	case ModelRadix:
		return "radix"
	default:
		return "unknown"
	}
}

// model is a trained CDF sub-model: a monotone non-decreasing function
// from key to predicted position (float64). Monotonicity is what makes
// per-leaf error bounds valid for absent lookup keys (see the package
// comment).
type model struct {
	kind ModelKind
	// Key normalization: t = (key - keyOff) * keyScale, mapping the
	// training key range onto [0, 1] before evaluating coefficients.
	// This keeps the fits numerically sane for 64-bit keys.
	keyOff   float64
	keyScale float64
	// Polynomial coefficients in t: pred = c0 + c1*t + c2*t² + c3*t³.
	// Linear models use c0, c1 only. Radix models use c1 as the
	// position scale applied directly to t.
	c0, c1, c2, c3 float64
}

// sizeBytes is the serialized footprint of one model: kind tag (1 byte,
// rounded into the struct) plus normalization and coefficients. We
// charge the full in-memory struct size.
const modelSizeBytes = 8 * 7

// predict evaluates the model.
func (m *model) predict(key float64) float64 {
	t := (key - m.keyOff) * m.keyScale
	// Clamp to the training range: fitted polynomials are only
	// guaranteed monotone on [0, 1], and extrapolated predictions for
	// out-of-range keys would break the global monotonicity that
	// absent-key validity relies on.
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	switch m.kind {
	case ModelRadix, ModelLinear, ModelLinearSpline:
		return m.c0 + m.c1*t
	default: // cubic
		return m.c0 + t*(m.c1+t*(m.c2+t*m.c3))
	}
}

// fitModel trains a model of the requested kind on (keys[i], pos0+i)
// pairs. keys must be sorted ascending; n may be zero (a constant model
// at pos0 is returned). The returned model is always monotone
// non-decreasing on the training key range.
func fitModel(kind ModelKind, keys []float64, pos0 float64) model {
	n := len(keys)
	if n == 0 {
		return model{kind: ModelLinearSpline, keyScale: 0, c0: pos0}
	}
	lo, hi := keys[0], keys[n-1]
	m := model{kind: kind, keyOff: lo}
	if hi > lo {
		m.keyScale = 1 / (hi - lo)
	} else {
		// All keys equal: constant prediction at the mean position.
		m.kind = ModelLinearSpline
		m.c0 = pos0 + float64(n-1)/2
		return m
	}
	switch kind {
	case ModelRadix:
		// In normalized key space a radix model (key's offset within
		// the range, by bit shift) is the line through the endpoints;
		// it differs from ModelLinearSpline only in inference cost on
		// real hardware, which the cost model accounts for separately.
		m.c0 = pos0
		m.c1 = float64(n - 1)
	case ModelLinearSpline:
		m.c0 = pos0
		m.c1 = float64(n - 1)
	case ModelLinear:
		m.c0, m.c1 = fitLinearOLS(keys, pos0, m.keyOff, m.keyScale)
		if m.c1 < 0 {
			// Monotonicity repair: fall back to the spline through the
			// endpoints, which is always non-decreasing.
			m.c0 = pos0
			m.c1 = float64(n - 1)
			m.kind = ModelLinearSpline
		}
	case ModelCubic:
		c0, c1, c2, c3, ok := fitCubicLS(keys, pos0, m.keyOff, m.keyScale)
		if ok && cubicMonotoneOn01(c1, c2, c3) {
			m.c0, m.c1, m.c2, m.c3 = c0, c1, c2, c3
		} else {
			// Non-monotone or singular fit: fall back to linear.
			return fitModel(ModelLinear, keys, pos0)
		}
	}
	return m
}

// fitLinearOLS computes the least-squares line through
// (t_i, pos0 + i) where t_i is the normalized key.
func fitLinearOLS(keys []float64, pos0, keyOff, keyScale float64) (c0, c1 float64) {
	n := float64(len(keys))
	var sumT, sumY, sumTT, sumTY float64
	for i, k := range keys {
		t := (k - keyOff) * keyScale
		y := pos0 + float64(i)
		sumT += t
		sumY += y
		sumTT += t * t
		sumTY += t * y
	}
	den := n*sumTT - sumT*sumT
	if den == 0 {
		return pos0 + (n-1)/2, 0
	}
	c1 = (n*sumTY - sumT*sumY) / den
	c0 = (sumY - c1*sumT) / n
	return c0, c1
}

// fitCubicLS computes the least-squares cubic through (t_i, pos0+i) by
// solving the 4x4 normal equations with Gaussian elimination. ok is
// false if the system is singular (e.g., too few distinct keys).
func fitCubicLS(keys []float64, pos0, keyOff, keyScale float64) (c0, c1, c2, c3 float64, ok bool) {
	if len(keys) < 4 {
		return 0, 0, 0, 0, false
	}
	// Accumulate moments sum t^k for k=0..6 and sum y t^k for k=0..3.
	var s [7]float64
	var b [4]float64
	for i, k := range keys {
		t := (k - keyOff) * keyScale
		y := pos0 + float64(i)
		tp := 1.0
		for j := 0; j <= 6; j++ {
			s[j] += tp
			if j <= 3 {
				b[j] += y * tp
			}
			tp *= t
		}
	}
	var a [4][5]float64
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			a[r][c] = s[r+c]
		}
		a[r][4] = b[r]
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < 4; col++ {
		piv := col
		for r := col + 1; r < 4; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			return 0, 0, 0, 0, false
		}
		a[col], a[piv] = a[piv], a[col]
		for r := col + 1; r < 4; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < 5; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	var x [4]float64
	for r := 3; r >= 0; r-- {
		v := a[r][4]
		for c := r + 1; c < 4; c++ {
			v -= a[r][c] * x[c]
		}
		x[r] = v / a[r][r]
	}
	return x[0], x[1], x[2], x[3], true
}

// cubicMonotoneOn01 reports whether c1 + 2*c2*t + 3*c3*t² >= 0 for all
// t in [0, 1] (with a small tolerance), i.e. whether the cubic is
// non-decreasing over the normalized training range.
func cubicMonotoneOn01(c1, c2, c3 float64) bool {
	const eps = 1e-9
	d := func(t float64) float64 { return c1 + 2*c2*t + 3*c3*t*t }
	if d(0) < -eps || d(1) < -eps {
		return false
	}
	// Interior critical point of the (quadratic) derivative.
	if c3 != 0 {
		t := -c2 / (3 * c3)
		if t > 0 && t < 1 && d(t) < -eps {
			return false
		}
	}
	return true
}
