package registry

// The built-in catalog: every index family of the benchmark registers
// its sweep here. The sweeps were extracted verbatim from the old
// internal/bench registry so the configuration ladders (and therefore
// every figure) are unchanged.

import (
	"fmt"

	"repro/internal/art"
	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/fast"
	"repro/internal/fst"
	"repro/internal/hashidx"
	"repro/internal/ibtree"
	"repro/internal/pgm"
	"repro/internal/rbs"
	"repro/internal/rmi"
	"repro/internal/rs"
	"repro/internal/wormhole"
)

// strides is the subset-stride sweep used for every tree structure
// ("ten configurations ranging from minimum to maximum size").
var strides = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

func init() {
	Register("RMI", func(keys []core.Key) []NamedBuilder {
		cfgs := rmi.ParetoConfigs(keys, 10)
		out := make([]NamedBuilder, 0, len(cfgs))
		for _, c := range cfgs {
			out = append(out, NamedBuilder{c.String(), rmi.Builder{Config: c}})
		}
		return out
	})
	Register("PGM", func(keys []core.Key) []NamedBuilder {
		var out []NamedBuilder
		for _, eps := range []int{4096, 1024, 512, 256, 128, 64, 32, 16, 8, 4} {
			out = append(out, NamedBuilder{lbl("eps=%d", eps), pgm.Builder{Eps: eps}})
		}
		return out
	})
	Register("RS", func(keys []core.Key) []NamedBuilder {
		var out []NamedBuilder
		type rc struct{ err, bits int }
		for _, c := range []rc{{4096, 4}, {1024, 6}, {512, 8}, {256, 10}, {128, 12},
			{64, 14}, {32, 16}, {16, 18}, {8, 20}, {4, 22}} {
			out = append(out, NamedBuilder{lbl("eps=%d,r=%d", c.err, c.bits),
				rs.Builder{Config: rs.Config{SplineErr: c.err, RadixBits: c.bits}}})
		}
		return out
	})
	Register("RBS", func(keys []core.Key) []NamedBuilder {
		var out []NamedBuilder
		for _, bits := range []int{4, 6, 8, 10, 12, 14, 16, 18, 20, 22} {
			out = append(out, NamedBuilder{lbl("r=%d", bits), rbs.Builder{RadixBits: bits}})
		}
		return out
	})
	Register("BTree", strideSweep(func(s int) core.Builder { return btree.Builder{Stride: s} }))
	Register("IBTree", strideSweep(func(s int) core.Builder { return ibtree.Builder{Stride: s} }))
	Register("ART", strideSweep(func(s int) core.Builder { return art.Builder{Stride: s} }))
	Register("FAST", strideSweep(func(s int) core.Builder { return fast.Builder{Stride: s} }))
	Register("FST", func(keys []core.Key) []NamedBuilder {
		var out []NamedBuilder
		for _, s := range []int{1, 4, 16, 64} {
			out = append(out, NamedBuilder{lbl("stride=%d", s), fst.Builder{Stride: s}})
		}
		return out
	})
	Register("Wormhole", func(keys []core.Key) []NamedBuilder {
		var out []NamedBuilder
		for _, s := range []int{1, 4, 16, 64} {
			out = append(out, NamedBuilder{lbl("stride=%d", s), wormhole.Builder{Stride: s}})
		}
		return out
	})
	Register("BS", func(keys []core.Key) []NamedBuilder {
		return []NamedBuilder{{"", rbs.BinarySearchBuilder{}}}
	})
	Register("RobinHash", func(keys []core.Key) []NamedBuilder {
		return []NamedBuilder{{"lf=0.25", hashidx.RobinHoodBuilder{}}}
	})
	Register("CuckooMap", func(keys []core.Key) []NamedBuilder {
		return []NamedBuilder{{"lf=0.99", hashidx.CuckooBuilder{}}}
	})

	// Compaction rebuild hooks: the learned families re-pick their
	// mid-sweep configuration over the merged key set — RMI re-runs its
	// tuner, PGM/RS re-derive their ladders — because model sizing is a
	// function of the data. Tree and hash families bulk-load with their
	// existing configuration and need no hook.
	for _, fam := range []string{"RMI", "PGM", "RS"} {
		RegisterRebuild(fam, func(prev core.Builder, keys []core.Key) core.Builder {
			if nb, ok := Builder(fam, keys); ok {
				return nb.Builder
			}
			return prev
		})
	}

	// Tier-run hooks: the index of a small LSM run. Flushed deltas are
	// tiny relative to the base, so a run is served by plain binary
	// search until it's big enough (≥ tierLearnedMin keys) that a coarse
	// learned bound — one cheap linear fit per ~epsilon keys — beats the
	// log2(n) last-mile probes. Coarse PGM stands in for all three
	// learned families: its O(n) greedy build is the cheapest learned
	// construction and the run is replaced wholesale at the next merge,
	// so per-family tuning would buy nothing.
	SetTierFallback(func() NamedBuilder {
		return NamedBuilder{"", rbs.BinarySearchBuilder{}}
	})
	for _, fam := range []string{"RMI", "PGM", "RS"} {
		RegisterTier(fam, func(keys []core.Key) (NamedBuilder, string) {
			if len(keys) >= tierLearnedMin {
				lab := lbl("eps=%d", tierEps)
				return NamedBuilder{lab, pgm.Builder{Eps: tierEps}}, ID("PGM", lab)
			}
			return NamedBuilder{"", rbs.BinarySearchBuilder{}}, "BS"
		})
	}
}

// tierLearnedMin is the run size above which a tier run gets a coarse
// learned index instead of binary search; below it the run fits in a
// few cache lines' worth of probe path and construction can't pay off.
const tierLearnedMin = 1 << 14

// tierEps is the error bound of the coarse tier-run PGM: wide enough
// that the build is a single cheap pass with few segments, tight enough
// to cut the last mile to a handful of probes.
const tierEps = 256

func strideSweep(mk func(int) core.Builder) SweepFunc {
	return func(keys []core.Key) []NamedBuilder {
		out := make([]NamedBuilder, 0, len(strides))
		// Large stride = small index first, matching the sweep order of
		// the learned structures.
		for i := len(strides) - 1; i >= 0; i-- {
			out = append(out, NamedBuilder{lbl("stride=%d", strides[i]), mk(strides[i])})
		}
		return out
	}
}

func lbl(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}
