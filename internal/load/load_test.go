package load

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/serve"
)

func testStore(t testing.TB, n int) (*serve.Store, []core.Key, []uint64) {
	t.Helper()
	keys := dataset.MustGenerate(dataset.Amzn, n, 17)
	payloads := make([]uint64, len(keys))
	for i := range payloads {
		payloads[i] = uint64(i)*3 + 7
	}
	st, err := serve.New(keys, payloads, serve.Config{Shards: 4, Family: "PGM"})
	if err != nil {
		t.Fatal(err)
	}
	return st, keys, payloads
}

// oracleChecksum computes the expected read checksum of a stream run
// serially against a map oracle: reads sum the current value of their
// key, writes update it. With concurrent workers only the read-only
// checksum is deterministic, so tests use readFrac=1 streams when
// asserting it.
func oracleChecksum(ops []Op, keys []core.Key, payloads []uint64) uint64 {
	var sum uint64
	for _, op := range ops {
		if op.Kind != Get {
			continue
		}
		pos := core.LowerBound(keys, op.Key)
		if pos < len(keys) && keys[pos] == op.Key {
			sum += payloads[pos]
		}
	}
	return sum
}

func TestMixedOpsShape(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Amzn, 5000, 9)
	for _, readFrac := range []float64{0, 0.5, 0.95, 1} {
		ops := MixedOps(keys, 2000, readFrac, 0.99, 21)
		if len(ops) != 2000 {
			t.Fatalf("readFrac=%g: got %d ops", readFrac, len(ops))
		}
		reads := 0
		for _, op := range ops {
			if op.Kind == Get {
				reads++
			}
		}
		want := float64(len(ops)) * readFrac
		if math.Abs(float64(reads)-want) > 1 {
			t.Fatalf("readFrac=%g: %d reads, want ~%.0f", readFrac, reads, want)
		}
	}
	// Deterministic in seed.
	a := MixedOps(keys, 500, 0.5, 0.99, 21)
	b := MixedOps(keys, 500, 0.5, 0.99, 21)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("MixedOps not deterministic in seed")
		}
	}
}

// TestRunClosedCorrectness checks a read-only closed-loop run end to
// end: every op completes, the checksum matches the serial oracle, and
// the histogram holds exactly one sample per op — for both the per-key
// and the batched read path.
func TestRunClosedCorrectness(t *testing.T) {
	st, keys, payloads := testStore(t, 4000)
	defer st.Close()
	ops := MixedOps(keys, 3000, 1, 0.99, 5)
	want := oracleChecksum(ops, keys, payloads)
	for _, batch := range []int{1, 64} {
		res := RunClosed(st, ops, Config{Workers: 4, Batch: batch})
		if res.Ops != len(ops) || res.Reads != len(ops) || res.Writes != 0 {
			t.Fatalf("batch=%d: ops=%d reads=%d writes=%d", batch, res.Ops, res.Reads, res.Writes)
		}
		if res.Checksum != want {
			t.Fatalf("batch=%d: checksum %d, want %d", batch, res.Checksum, want)
		}
		if res.Hist.Count() != uint64(len(ops)) {
			t.Fatalf("batch=%d: histogram holds %d samples, want %d", batch, res.Hist.Count(), len(ops))
		}
		if res.Throughput <= 0 || res.Elapsed <= 0 {
			t.Fatalf("batch=%d: no throughput/elapsed", batch)
		}
	}
}

// TestRunClosedMixedWrites drives a 50/50 mix and verifies the writes
// actually landed in the store.
func TestRunClosedMixedWrites(t *testing.T) {
	st, keys, _ := testStore(t, 4000)
	defer st.Close()
	ops := MixedOps(keys, 2000, 0.5, 0, 5)
	res := RunClosed(st, ops, Config{Workers: 4})
	if res.Writes == 0 || res.Reads == 0 {
		t.Fatalf("mix degenerate: reads=%d writes=%d", res.Reads, res.Writes)
	}
	if res.Hist.Count() != uint64(res.Ops) {
		t.Fatalf("histogram %d != ops %d", res.Hist.Count(), res.Ops)
	}
	for _, op := range ops {
		if op.Kind != Put {
			continue
		}
		if v, ok := st.Get(op.Key); !ok || v == 0 {
			t.Fatalf("written key %d not readable (v=%d ok=%v)", op.Key, v, ok)
		}
	}
}

// TestRunOpenSchedule checks the open loop's defining property at a
// modest rate: ops complete, latencies are measured from scheduled
// arrivals (so the run lasts at least the schedule's span), and the
// checksum matches.
func TestRunOpenSchedule(t *testing.T) {
	st, keys, payloads := testStore(t, 4000)
	defer st.Close()
	const n = 2000
	const rate = 50_000.0
	ops := MixedOps(keys, n, 1, 0, 5)
	want := oracleChecksum(ops, keys, payloads)
	res := RunOpen(st, ops, Config{Workers: 4, Rate: rate, Seed: 11})
	if res.Ops != n || res.Checksum != want {
		t.Fatalf("ops=%d checksum=%d, want %d/%d", res.Ops, res.Checksum, n, want)
	}
	if res.Hist.Count() != uint64(n) {
		t.Fatalf("histogram holds %d samples, want %d", res.Hist.Count(), n)
	}
	// The schedule spans ~n/rate seconds; an open-loop run cannot finish
	// faster than its last scheduled arrival.
	minSpan := dataset.Arrivals(n, rate, 11)[n-1]
	if res.Elapsed < minSpan {
		t.Fatalf("run finished in %v, before the last scheduled arrival %v", res.Elapsed, minSpan)
	}
	// Achieved throughput approaches the offered rate when the store
	// keeps up (generous bound: within a factor of two).
	if res.Throughput < rate/2 {
		t.Fatalf("achieved %.0f ops/s at offered %.0f", res.Throughput, rate)
	}
}

// TestRunOpenMeasuresFromScheduledArrival pins the coordinated-omission
// property: latency runs from the *scheduled* arrival, so when the
// store cannot keep up, queueing delay accumulates across the backlog.
// One worker at an absurd offered rate puts the whole schedule in the
// past almost immediately — every operation is late, and the i-th
// operation's recorded latency includes the service time of all i-1
// operations queued ahead of it. A send-time (closed-loop) measurement
// would instead report every operation at its bare service time, so
// the signature of scheduled-arrival measurement is a max latency that
// dwarfs the median.
func TestRunOpenMeasuresFromScheduledArrival(t *testing.T) {
	st, keys, _ := testStore(t, 4000)
	defer st.Close()
	const n = 2000
	ops := MixedOps(keys, n, 1, 0, 5)

	// Closed-loop reference: the bare per-operation service time.
	closed := RunClosed(st, ops, Config{Workers: 1})

	res := RunOpen(st, ops, Config{Workers: 1, Rate: 100_000_000, Seed: 3})
	if res.Hist.Count() != uint64(n) {
		t.Fatalf("histogram holds %d samples, want %d", res.Hist.Count(), n)
	}
	med, max := res.Hist.Quantile(0.5), res.Hist.Max()
	// The median arrival waits out ~half the backlog — roughly n/2
	// service times — so it must dwarf the closed-loop median, which a
	// send-time measurement would have reported instead.
	if med < 10*closed.Hist.Quantile(0.5) {
		t.Fatalf("no queueing in open-loop median: open=%dns closed=%dns",
			med, closed.Hist.Quantile(0.5))
	}
	// The last arrivals wait out nearly the whole run: the max must be
	// on the order of the run's span (allowing bucket error and noise).
	if max < res.Elapsed.Nanoseconds()/2 {
		t.Fatalf("max latency %dns does not reflect the %v backlog", max, res.Elapsed)
	}
	if max < med {
		t.Fatalf("max %dns below median %dns", max, med)
	}
}

// waitGoroutines polls until the goroutine count drops back to the
// baseline or the deadline passes, absorbing scheduler stragglers.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 64<<10)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestGeneratorShutdownLeavesNoGoroutines is the satellite leak test:
// after every generator variant returns — including an early abort via
// Stop mid-run — the goroutine count returns to its pre-run baseline.
func TestGeneratorShutdownLeavesNoGoroutines(t *testing.T) {
	st, keys, _ := testStore(t, 4000)
	defer st.Close()
	ops := MixedOps(keys, 5000, 0.9, 0.99, 5)
	st.WaitCompactions()
	baseline := runtime.NumGoroutine()

	RunClosed(st, ops, Config{Workers: 8, Batch: 32})
	waitGoroutines(t, baseline)

	RunOpen(st, ops, Config{Workers: 8, Rate: 2_000_000, Seed: 1})
	waitGoroutines(t, baseline)

	// Early abort: fire Stop while workers are mid-schedule at a rate
	// slow enough that the run would otherwise take ~5s.
	stop := make(chan struct{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(stop)
	}()
	res := RunOpen(st, ops, Config{Workers: 8, Rate: 1000, Seed: 1, Stop: stop})
	if res.Ops >= len(ops) {
		t.Fatalf("Stop did not abort early: %d ops completed", res.Ops)
	}
	waitGoroutines(t, baseline)

	stop2 := make(chan struct{})
	close(stop2) // already fired: closed loop must return almost empty
	res2 := RunClosed(st, ops, Config{Workers: 4, Stop: stop2})
	if res2.Ops >= len(ops) {
		t.Fatalf("pre-fired Stop did not abort closed loop: %d ops", res2.Ops)
	}
	waitGoroutines(t, baseline)
}

// serve.Store is the canonical in-process Target.
var _ Target = (*serve.Store)(nil)

// shedTarget is a fake ErrTarget that refuses every n-th operation
// with a shed error and fails every m-th with a plain error, tracking
// what it actually executed.
type shedTarget struct {
	mu       sync.Mutex
	n        int
	shedMod  int
	errMod   int
	executed int
}

type shedErr struct{}

func (shedErr) Error() string { return "shed: retry later" }
func (shedErr) Shed() bool    { return true }

func (s *shedTarget) disposition() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	if s.shedMod > 0 && s.n%s.shedMod == 0 {
		return shedErr{}
	}
	if s.errMod > 0 && s.n%s.errMod == 0 {
		return errors.New("plain failure")
	}
	s.executed++
	return nil
}

func (s *shedTarget) TryGet(k core.Key) (uint64, bool, error) {
	if err := s.disposition(); err != nil {
		return 0, false, err
	}
	return uint64(k) + 1, true, nil
}

func (s *shedTarget) TryGetBatch(keys []core.Key, out []uint64) (int, error) {
	if err := s.disposition(); err != nil {
		return 0, err
	}
	for i, k := range keys {
		out[i] = uint64(k) + 1
	}
	return len(keys), nil
}

func (s *shedTarget) TryPut(core.Key, uint64) error { return s.disposition() }

// The non-Try surface must never be reached once ErrTarget is
// implemented; panic so a regression is loud.
func (s *shedTarget) Get(core.Key) (uint64, bool)       { panic("load bypassed TryGet") }
func (s *shedTarget) GetBatch([]core.Key, []uint64) int { panic("load bypassed TryGetBatch") }
func (s *shedTarget) Put(core.Key, uint64)              { panic("load bypassed TryPut") }

// TestShedAccounting pins the ErrTarget contract for both generators:
// sheds and errors are counted apart from accepted ops, excluded from
// the histogram, and conservation holds — every operation of the
// stream is accepted, shed, or errored.
func TestShedAccounting(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Amzn, 500, 3)
	ops := MixedOps(keys, 1200, 0.75, 0, 9)
	for name, run := range map[string]func(Target, []Op, Config) *Result{
		"closed":      func(tg Target, o []Op, c Config) *Result { return RunClosed(tg, o, c) },
		"closedBatch": func(tg Target, o []Op, c Config) *Result { c.Batch = 16; return RunClosed(tg, o, c) },
		"open":        func(tg Target, o []Op, c Config) *Result { c.Rate = 5_000_000; return RunOpen(tg, o, c) },
	} {
		tg := &shedTarget{shedMod: 3, errMod: 7}
		res := run(tg, ops, Config{Workers: 4, Seed: 1})
		if res.Sheds == 0 || res.Errors == 0 {
			t.Fatalf("%s: degenerate dispositions: %+v", name, res)
		}
		if res.Ops+res.Sheds+res.Errors != len(ops) {
			t.Fatalf("%s: conservation violated: ops=%d sheds=%d errors=%d stream=%d",
				name, res.Ops, res.Sheds, res.Errors, len(ops))
		}
		if res.Hist.Count() != uint64(res.Ops) {
			t.Fatalf("%s: histogram holds %d samples for %d accepted ops",
				name, res.Hist.Count(), res.Ops)
		}
	}
}

func TestIsShed(t *testing.T) {
	if !IsShed(shedErr{}) || !IsShed(fmt.Errorf("wrapped: %w", shedErr{})) {
		t.Fatal("shed error not recognized")
	}
	if IsShed(errors.New("plain")) || IsShed(nil) {
		t.Fatal("non-shed error recognized as shed")
	}
}

// TestGeneratorRace is the -race stress companion: closed and open
// loops with writes enabled run against background compactions while a
// reader polls store counters — any unsynchronized access in the
// generator/store seam trips the detector.
func TestGeneratorRace(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Amzn, 4000, 17)
	payloads := make([]uint64, len(keys))
	for i := range payloads {
		payloads[i] = uint64(i) + 1
	}
	st, err := serve.New(keys, payloads, serve.Config{
		Shards: 4, Family: "PGM", CompactThreshold: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				_ = st.DeltaLen()
				_ = st.Len()
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	ops := MixedOps(keys, 4000, 0.5, 0.99, 5)
	RunClosed(st, ops, Config{Workers: 8, Batch: 16})
	RunOpen(st, ops, Config{Workers: 8, Rate: 500_000, Seed: 2})
	close(stop)
	st.WaitCompactions()
}
