package bench

// The tiered-run (LSM) write-path experiment: the serve-write
// experiment measures the single-store compaction tradeoff; this one
// sweeps the tiering policy itself. A frozen delta can flush into a
// small tier run (cheap, but every read now probes more runs) or merge
// into the base index (expensive for learned families, which re-tune
// the model). The policy axis — single-run versus tiered at different
// run bounds — makes the compaction-cost-versus-read-amplification
// tradeoff a table: write throughput and compaction time fall as runs
// stack, read p99 and measured read amplification rise, and the
// re-tune-aware merge policy sits between the extremes.

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/load"
	"repro/internal/registry"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/stats"
)

func init() {
	Register(Experiment{"serve-lsm", "tiered-run write path: tier policy sweep over YCSB mixes", serveLSMSweep})
}

// TierPolicy is one point on the experiment's policy axis.
type TierPolicy struct {
	Name     string
	MaxRuns  int     // serve.Config.MaxRuns (1 = classic single-run)
	AmpBound float64 // serve.Config.AmpBound (0 = default)
}

// TierPolicies lists the swept write-path policies: the single-run
// baseline (every compaction re-tunes the shard index) and tiered
// variants at a tight and a loose run bound.
func TierPolicies() []TierPolicy {
	return []TierPolicy{
		{"single", 1, 0},
		{"tier4", 4, 0},
		{"tier8", 8, 0},
	}
}

// LSMResult summarizes one tiered mixed-workload run.
type LSMResult struct {
	OpsPerSec        float64
	WriteNs          float64 // mean write latency
	ReadP50, ReadP99 int64   // read latency quantiles (ns)
	CompactTime      time.Duration
	ReadAmp          float64 // measured run probes per multi-run lookup
	MaxRuns          int     // widest shard at run end
	Flushes          uint64
	MinorMerges      uint64
	MajorMerges      uint64
}

// MeasureLSM drives the load.MixedOps stream (the serve-write stream,
// kept identical so policies are comparable) against st, recording
// every read latency in a histogram for tail quantiles.
func MeasureLSM(e *Env, st *serve.Store, ops int, wl MixedWorkload, seed uint64) LSMResult {
	theta := 0.0
	if wl.Zipfian {
		theta = YCSBTheta
	}
	stream := load.MixedOps(e.Keys, ops, wl.ReadFrac, theta, seed)

	var res LSMResult
	var hist stats.Histogram
	baseCompactTime := st.CompactTime()
	var writeTime time.Duration
	writes := 0
	var sink uint64
	start := time.Now()
	for _, op := range stream {
		switch op.Kind {
		case load.Get:
			t0 := time.Now()
			v, _ := st.Get(op.Key)
			hist.Record(time.Since(t0).Nanoseconds())
			sink += v
		case load.Put:
			t0 := time.Now()
			st.Put(op.Key, op.Payload)
			writeTime += time.Since(t0)
			writes++
		}
	}
	elapsed := time.Since(start)
	res.MaxRuns = st.MaxRunCount() // at load stop, before the drain merges
	st.WaitCompactions()
	_ = sink
	res.OpsPerSec = float64(ops) / elapsed.Seconds()
	if writes > 0 {
		res.WriteNs = float64(writeTime.Nanoseconds()) / float64(writes)
	}
	res.ReadP50 = hist.Quantile(0.50)
	res.ReadP99 = hist.Quantile(0.99)
	res.CompactTime = st.CompactTime() - baseCompactTime
	res.ReadAmp = st.ReadAmp()
	res.Flushes = st.Flushes()
	res.MinorMerges = st.MinorMerges()
	res.MajorMerges = st.MajorMerges()
	return res
}

// serveLSMSweep reports the tier-policy experiment: policy × family
// over zipfian YCSB A (write-heavy) and B (read-heavy).
func serveLSMSweep(r *Run) ([]report.Table, error) {
	o := r.Options
	e, err := r.Env(dataset.Amzn)
	if err != nil {
		return nil, err
	}
	ops := o.Lookups
	const shards = 4
	threshold := ops / 32
	if threshold < 64 {
		threshold = 64
	}
	families := r.Families(registry.WriteFamilies)
	workloads := []MixedWorkload{
		{"A", 0.50, true},
		{"B", 0.95, true},
	}

	tbl := report.New("serve-lsm",
		fmt.Sprintf("Tiered-run write path (amzn, zipfian YCSB, %d shards, compact threshold %d): policy vs compaction cost vs read amplification",
			shards, threshold)).
		Dims("index", "wl", "policy").
		Float("kops/s", "kops/s", 1).
		Float("write(ns)", "ns", 1).
		Float("readp50", "µs", 2).
		Float("readp99", "µs", 2).
		Float("cmp(ms)", "ms", 2).
		Float("readamp", "probes/op", 2).
		Int("runs", "max runs").
		Int("flush", "flushes").
		Int("minor", "minor merges").
		Int("major", "major merges")
	for _, family := range families {
		for _, wl := range workloads {
			for _, pol := range TierPolicies() {
				st, err := serve.New(e.Keys, e.Payloads, serve.Config{
					Shards: shards, Family: family, CompactThreshold: threshold,
					MaxRuns: pol.MaxRuns, AmpBound: pol.AmpBound,
				})
				if err != nil {
					return nil, err
				}
				res := MeasureLSM(e, st, ops, wl, o.Seed)
				tbl.Row([]string{family, wl.Name, pol.Name},
					res.OpsPerSec/1e3, res.WriteNs,
					float64(res.ReadP50)/1e3, float64(res.ReadP99)/1e3,
					float64(res.CompactTime.Nanoseconds())/1e6, res.ReadAmp,
					float64(res.MaxRuns), float64(res.Flushes),
					float64(res.MinorMerges), float64(res.MajorMerges))
				st.Close()
			}
		}
	}
	return []report.Table{*tbl}, nil
}
