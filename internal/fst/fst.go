// Package fst implements a Fast Succinct Trie baseline (Zhang et al.'s
// SuRF / FST, SIGMOD'18; Figure 8 of the paper) over 8-byte big-endian
// keys using a LOUDS-sparse encoding: per-edge label bytes, a has-child
// bitvector, and a LOUDS bitvector marking each node's first edge, with
// rank/select navigation.
//
// The paper evaluates FST as a structure designed for variable-length
// string keys; on fixed 8-byte integer keys its per-byte traversal
// overhead makes it slower than binary search, which is the Figure 8
// result this implementation reproduces.
package fst

import (
	"encoding/binary"
	"errors"

	"repro/internal/core"
)

const keyLen = 8

// Trie is a LOUDS-sparse succinct trie mapping 8-byte keys to values.
type Trie struct {
	labels   []byte
	hasChild bitvector
	louds    bitvector
	values   []int32 // one per leaf edge, in key order
	count    int
}

// NewTrie builds the trie from sorted unique keys with their values.
func NewTrie(keys []core.Key, vals []int32) (*Trie, error) {
	if len(keys) != len(vals) {
		return nil, errors.New("fst: keys/vals length mismatch")
	}
	if len(keys) == 0 {
		return nil, errors.New("fst: empty key set")
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			return nil, errors.New("fst: keys must be sorted and unique")
		}
	}
	t := &Trie{count: len(keys)}

	// Build level by level (BFS). A node is identified by the key range
	// [lo, hi) sharing a byte prefix of length depth.
	type span struct{ lo, hi, depth int }
	queue := []span{{0, len(keys), 0}}
	kb := make([][keyLen]byte, len(keys))
	for i, k := range keys {
		binary.BigEndian.PutUint64(kb[i][:], k)
	}
	for len(queue) > 0 {
		nd := queue[0]
		queue = queue[1:]
		first := true
		i := nd.lo
		for i < nd.hi {
			b := kb[i][nd.depth]
			j := i
			for j < nd.hi && kb[j][nd.depth] == b {
				j++
			}
			t.labels = append(t.labels, b)
			t.louds.append(first)
			first = false
			if nd.depth == keyLen-1 {
				// Final byte: leaf edge. Unique keys make j == i+1.
				t.hasChild.append(false)
				t.values = append(t.values, vals[i])
			} else {
				t.hasChild.append(true)
				queue = append(queue, span{i, j, nd.depth + 1})
			}
			i = j
		}
	}
	t.hasChild.finish()
	t.louds.finish()
	return t, nil
}

// edgeRange returns the half-open edge range [start, end) of node n
// (nodes are numbered in BFS order; node 0 is the root).
func (t *Trie) edgeRange(n int) (int, int) {
	start := 0
	if n > 0 {
		start = t.louds.select1(n + 1)
	}
	end := len(t.labels)
	if n+1 < t.louds.ones {
		end = t.louds.select1(n + 2)
	}
	return start, end
}

// childNode returns the node number reached through inner edge i.
func (t *Trie) childNode(i int) int {
	// Children are laid out in BFS order: edge with the k-th set
	// has-child bit leads to node k (root is node 0).
	return t.hasChild.rank1(i)
}

// valueIndex returns the value slot of leaf edge i.
func (t *Trie) valueIndex(i int) int {
	return i + 1 - t.hasChild.rank1(i) - 1
}

// Ceiling returns the value for the smallest stored key >= x.
func (t *Trie) Ceiling(x core.Key) (val int32, found bool) {
	var kb [keyLen]byte
	binary.BigEndian.PutUint64(kb[:], x)
	vi := t.ceiling(0, kb[:], 0)
	if vi < 0 {
		return 0, false
	}
	return t.values[vi], true
}

// ceiling returns the value index of the smallest key >= kb within the
// subtree rooted at node n (whose path equals kb[:depth]), or -1.
func (t *Trie) ceiling(n int, kb []byte, depth int) int {
	start, end := t.edgeRange(n)
	// Find the first edge with label >= kb[depth].
	i := start
	for i < end && t.labels[i] < kb[depth] {
		i++
	}
	if i == end {
		return -1
	}
	if t.labels[i] == kb[depth] {
		if !t.hasChild.get(i) {
			return t.valueIndex(i) // exact key byte at the leaf level
		}
		if vi := t.ceiling(t.childNode(i), kb, depth+1); vi >= 0 {
			return vi
		}
		i++
		if i == end {
			return -1
		}
	}
	// labels[i] > kb[depth]: everything below is greater; take the
	// minimum key of that subtree.
	return t.minValue(i)
}

// minValue descends through edge i to the smallest key below it.
func (t *Trie) minValue(i int) int {
	for t.hasChild.get(i) {
		n := t.childNode(i)
		i, _ = t.edgeRange(n)
	}
	return t.valueIndex(i)
}

// Count returns the number of stored keys.
func (t *Trie) Count() int { return t.count }

// SizeBytes reports the trie footprint.
func (t *Trie) SizeBytes() int {
	return len(t.labels) + t.hasChild.size() + t.louds.size() + len(t.values)*4
}

// Index adapts Trie to core.Index with the subset-stride size knob.
type Index struct {
	trie   *Trie
	n      int
	stride int
	maxPos int32
}

// Builder builds FST indexes with a fixed stride.
type Builder struct {
	// Stride inserts every Stride-th key. Clamped to at least 1.
	Stride int
}

// Name implements core.Builder.
func (Builder) Name() string { return "FST" }

// Build implements core.Builder.
func (b Builder) Build(keys []core.Key) (core.Index, error) {
	n := len(keys)
	if n == 0 {
		return nil, errors.New("fst: empty key set")
	}
	stride := b.Stride
	if stride < 1 {
		stride = 1
	}
	var (
		sk     []core.Key
		sv     []int32
		maxPos int32
	)
	for i := 0; i < n; i += stride {
		if len(sk) > 0 && sk[len(sk)-1] == keys[i] {
			continue // keep the lower-bound position for duplicates
		}
		sk = append(sk, keys[i])
		sv = append(sv, int32(i))
		maxPos = int32(i)
	}
	t, err := NewTrie(sk, sv)
	if err != nil {
		return nil, err
	}
	return &Index{trie: t, n: n, stride: stride, maxPos: maxPos}, nil
}

// Lookup implements core.Index (same subset bound mapping as ART).
func (idx *Index) Lookup(key core.Key) core.Bound {
	pos, found := idx.trie.Ceiling(key)
	if !found {
		return core.Bound{Lo: int(idx.maxPos) + 1, Hi: idx.n}.Clamp(idx.n)
	}
	lo := int(pos) - idx.stride + 1
	if lo < 0 {
		lo = 0
	}
	return core.Bound{Lo: lo, Hi: int(pos) + 1}
}

// SizeBytes implements core.Index.
func (idx *Index) SizeBytes() int { return idx.trie.SizeBytes() }

// Name implements core.Index.
func (idx *Index) Name() string { return "FST" }
