// Package load implements the concurrent load generators of the
// tail-latency experiments: closed-loop and open-loop drivers that
// push mixed Get/GetBatch/Put operation streams into a Target — a
// serve.Store in process, or a network client pool fronting one — and
// record per-operation latency into per-worker stats.Histograms.
//
// The two loops answer different questions. The closed loop (RunClosed)
// keeps a fixed number of workers saturated — each issues its next
// operation the instant the previous one returns — and so measures the
// store's capacity and its latency *under saturation*. The open loop
// (RunOpen) replays a Poisson arrival schedule fixed before the run:
// each operation has a scheduled arrival instant, workers never issue
// early, and latency is measured from the scheduled arrival, not from
// the moment the operation was actually sent. A store that stalls
// therefore keeps accumulating lateness for every request scheduled
// during the stall — the measurement is free of coordinated omission,
// unlike a closed loop, whose workers politely stop offering load
// whenever the store backs up. See DESIGN.md "Measurement".
//
// Both runners spawn their workers, join them, and merge the
// per-worker histograms before returning: no goroutine outlives the
// call, even on early Stop.
package load

import (
	"errors"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// Target is the operation sink of a generator run: the serve.Store
// read/write surface the generators drive. serve.Store satisfies it
// directly; net.Pool satisfies it over a wire.
type Target interface {
	// Get returns the live payload for key, or false when absent.
	Get(key core.Key) (uint64, bool)
	// GetBatch fills out[i] with the payload of keys[i] (0 when
	// absent) and returns the number found.
	GetBatch(keys []core.Key, out []uint64) int
	// Put inserts or updates key.
	Put(key core.Key, payload uint64)
}

// ErrTarget is the optional Target extension for sinks whose
// operations can be refused or fail — a network client under server
// admission control. When a Target implements it, the generators issue
// every operation through the Try variants: a shed refusal (an error
// whose chain carries Shed() bool == true) counts into Result.Sheds,
// any other error into Result.Errors, and neither lands in the
// accepted-operation histogram — a shed is an explicit fast refusal,
// not a served request, and folding its latency into the histogram
// would let a server flatter its tail by shedding.
type ErrTarget interface {
	Target
	TryGet(key core.Key) (uint64, bool, error)
	TryGetBatch(keys []core.Key, out []uint64) (int, error)
	TryPut(key core.Key, payload uint64) error
}

// shedder is the marker carried by refusal errors; declared structurally
// so load does not import the transport package that sheds.
type shedder interface{ Shed() bool }

// IsShed reports whether err marks a load-shed refusal.
func IsShed(err error) bool {
	var s shedder
	return errors.As(err, &s) && s.Shed()
}

// Kind discriminates the operations of a workload stream.
type Kind uint8

const (
	// Get is a point read of Key.
	Get Kind = iota
	// Put is an insert or update of Key with Payload.
	Put
)

// Op is one operation of a workload stream.
type Op struct {
	Kind    Kind
	Key     core.Key
	Payload uint64
}

// Config configures a generator run.
type Config struct {
	// Workers is the number of concurrent generator goroutines; 0
	// defaults to runtime.NumCPU().
	Workers int

	// Batch groups runs of consecutive read operations within one
	// worker's stream into single GetBatch calls of at most Batch keys
	// (each key in the batch is charged the batch's latency). 0 or 1
	// issues per-key Gets. Ignored by the open loop, which dispatches
	// every arrival individually.
	Batch int

	// Rate is the open loop's target aggregate arrival rate in
	// operations per second; RunOpen requires it positive.
	Rate float64

	// Seed derives the open loop's Poisson arrival schedule.
	Seed uint64

	// Stop, when non-nil, aborts the run early: workers finish their
	// in-flight operation, drain nothing further, and Run returns with
	// the operations completed so far.
	Stop <-chan struct{}
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	return c
}

// Result summarizes one generator run.
type Result struct {
	// Hist holds per-operation latencies, merged across workers. In the
	// open loop a latency spans from the operation's scheduled arrival
	// to its completion (queueing delay included).
	Hist *stats.Histogram

	// Ops, Reads, and Writes count completed (accepted) operations.
	Ops, Reads, Writes int

	// Sheds counts operations the target explicitly refused under
	// admission control (see ErrTarget); Errors counts operations that
	// failed for any other reason. Neither is included in Ops or Hist,
	// so Throughput is goodput: accepted operations per second.
	Sheds, Errors int

	// Elapsed is the wall time of the whole run; Throughput is
	// Ops/Elapsed in operations per second.
	Elapsed    time.Duration
	Throughput float64

	// Checksum sums the payloads of found reads (the paper's
	// keep-the-benchmark-honest device).
	Checksum uint64
}

// worker accumulates one goroutine's share of a run; merged after join.
type worker struct {
	hist          stats.Histogram
	reads, writes int
	sheds, errs   int
	checksum      uint64
}

// merge folds per-worker results into one Result and computes rates.
func mergeWorkers(ws []*worker, elapsed time.Duration) *Result {
	res := &Result{Hist: &stats.Histogram{}, Elapsed: elapsed}
	for _, w := range ws {
		res.Hist.Merge(&w.hist)
		res.Reads += w.reads
		res.Writes += w.writes
		res.Sheds += w.sheds
		res.Errors += w.errs
		res.Checksum += w.checksum
	}
	res.Ops = res.Reads + res.Writes
	if elapsed > 0 {
		res.Throughput = float64(res.Ops) / elapsed.Seconds()
	}
	return res
}

// note classifies a Try-variant failure into the worker's counters.
func (w *worker) note(err error, nOps int) {
	if IsShed(err) {
		w.sheds += nOps
	} else {
		w.errs += nOps
	}
}

// stopped reports whether cfg.Stop has fired (nil Stop never fires).
func stopped(stop <-chan struct{}) bool {
	if stop == nil {
		return false
	}
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// RunClosed drives ops through st with cfg.Workers saturated workers:
// worker w executes ops[w], ops[w+W], ... back to back, timing each
// operation (or each GetBatch flush) individually. All workers are
// joined before RunClosed returns.
func RunClosed(st Target, ops []Op, cfg Config) *Result {
	cfg = cfg.withDefaults()
	if cfg.Batch < 1 {
		cfg.Batch = 1
	}
	ws := make([]*worker, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range ws {
		ws[i] = &worker{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			closedWorker(st, ops, cfg, w, ws[w])
		}(i)
	}
	wg.Wait()
	return mergeWorkers(ws, time.Since(start))
}

func closedWorker(st Target, ops []Op, cfg Config, w int, out *worker) {
	et, _ := st.(ErrTarget)
	keys := make([]core.Key, 0, cfg.Batch)
	vals := make([]uint64, cfg.Batch)
	flush := func() {
		if len(keys) == 0 {
			return
		}
		t0 := time.Now()
		if et != nil {
			if _, err := et.TryGetBatch(keys, vals[:len(keys)]); err != nil {
				out.note(err, len(keys))
				keys = keys[:0]
				return
			}
		} else {
			st.GetBatch(keys, vals[:len(keys)])
		}
		lat := time.Since(t0).Nanoseconds()
		for _, v := range vals[:len(keys)] {
			out.hist.Record(lat)
			out.checksum += v
			out.reads++
		}
		keys = keys[:0]
	}
	for i := w; i < len(ops); i += cfg.Workers {
		if stopped(cfg.Stop) {
			// Keys accumulated toward the next batch were never issued;
			// an abort drops them rather than flushing one more call.
			return
		}
		op := ops[i]
		if op.Kind == Get && cfg.Batch > 1 {
			keys = append(keys, op.Key)
			if len(keys) == cfg.Batch {
				flush()
			}
			continue
		}
		flush() // a write (or unbatched read) breaks the read run
		t0 := time.Now()
		execOp(st, et, op, t0, out)
	}
	flush()
}

// execOp issues one point operation against the target and records its
// outcome: accepted operations land in the histogram (latency measured
// from t0, which the open loop sets to the scheduled arrival), refused
// and failed ones only in their counters.
func execOp(st Target, et ErrTarget, op Op, t0 time.Time, out *worker) {
	switch op.Kind {
	case Get:
		var v uint64
		var ok bool
		if et != nil {
			var err error
			if v, ok, err = et.TryGet(op.Key); err != nil {
				out.note(err, 1)
				return
			}
		} else {
			v, ok = st.Get(op.Key)
		}
		out.hist.Record(time.Since(t0).Nanoseconds())
		if ok {
			out.checksum += v
		}
		out.reads++
	case Put:
		if et != nil {
			if err := et.TryPut(op.Key, op.Payload); err != nil {
				out.note(err, 1)
				return
			}
		} else {
			st.Put(op.Key, op.Payload)
		}
		out.hist.Record(time.Since(t0).Nanoseconds())
		out.writes++
	}
}

// sleepSlack is how far ahead of a scheduled arrival the open loop
// stops sleeping and starts yield-spinning: time.Sleep routinely
// overshoots by tens of microseconds, which at high arrival rates
// would smear the schedule the measurement is defined against.
const sleepSlack = 200 * time.Microsecond

// RunOpen drives ops through st on a Poisson arrival schedule of
// cfg.Rate operations per second (coordinated-omission-free): arrival
// instants are fixed up front from cfg.Seed, worker w serves arrivals
// w, w+W, ..., never issuing one early, and each operation's recorded
// latency runs from its *scheduled* arrival to completion — a worker
// running behind schedule executes late operations immediately and the
// backlog wait lands in the histogram. All workers are joined before
// RunOpen returns.
func RunOpen(st Target, ops []Op, cfg Config) *Result {
	cfg = cfg.withDefaults()
	if cfg.Rate <= 0 {
		panic("load: RunOpen requires a positive Rate")
	}
	arrivals := dataset.Arrivals(len(ops), cfg.Rate, cfg.Seed)
	ws := make([]*worker, cfg.Workers)
	var wg sync.WaitGroup
	epoch := time.Now()
	for i := range ws {
		ws[i] = &worker{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			openWorker(st, ops, arrivals, epoch, cfg, w, ws[w])
		}(i)
	}
	wg.Wait()
	return mergeWorkers(ws, time.Since(epoch))
}

func openWorker(st Target, ops []Op, arrivals []time.Duration, epoch time.Time, cfg Config, w int, out *worker) {
	et, _ := st.(ErrTarget)
	for i := w; i < len(ops); i += cfg.Workers {
		sched := epoch.Add(arrivals[i])
		for {
			if stopped(cfg.Stop) {
				return
			}
			d := time.Until(sched)
			if d <= 0 {
				break
			}
			if d > sleepSlack {
				wait := d - sleepSlack
				if cfg.Stop != nil {
					// The inter-arrival wait can span seconds at low
					// rates; Stop must interrupt it, not wait it out.
					t := time.NewTimer(wait)
					select {
					case <-cfg.Stop:
						t.Stop()
						return
					case <-t.C:
					}
				} else {
					time.Sleep(wait)
				}
			} else {
				runtime.Gosched()
			}
		}
		// Latency is charged from the scheduled arrival: backlog wait
		// for late operations, zero queueing for on-time ones.
		execOp(st, et, ops[i], sched, out)
	}
}
