package dataset

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
)

const testN = 50_000

func checkDataset(t *testing.T, name Name) []core.Key {
	t.Helper()
	keys, err := Generate(name, testN, 1)
	if err != nil {
		t.Fatalf("Generate(%s): %v", name, err)
	}
	if len(keys) != testN {
		t.Fatalf("%s: got %d keys, want %d", name, len(keys), testN)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("%s: keys not strictly increasing at %d: %d <= %d", name, i, keys[i], keys[i-1])
		}
	}
	return keys
}

func TestGenerateAllDatasets(t *testing.T) {
	for _, name := range All() {
		checkDataset(t, name)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, name := range All() {
		a := MustGenerate(name, 10_000, 7)
		b := MustGenerate(name, 10_000, 7)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: not deterministic at %d", name, i)
			}
		}
		c := MustGenerate(name, 10_000, 8)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: different seeds produced identical datasets", name)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate("nope", 10, 1); err == nil {
		t.Error("expected error for unknown dataset")
	}
	if _, err := Generate(Amzn, 0, 1); err == nil {
		t.Error("expected error for n=0")
	}
	if _, err := Generate(Amzn, -5, 1); err == nil {
		t.Error("expected error for negative n")
	}
}

func TestFaceOutliers(t *testing.T) {
	keys := checkDataset(t, Face)
	// The top FaceOutliers keys must sit in the extreme range (>= 2^59)
	// while the bulk stays below 2^50 — this is what breaks radix
	// prefixes in the paper.
	bulkMax := uint64(1) << 50
	outlierMin := uint64(1) << 59
	nOut := 0
	for _, k := range keys {
		if k >= outlierMin {
			nOut++
		} else if k >= bulkMax {
			t.Fatalf("face key %d in the dead zone [2^50, 2^59)", k)
		}
	}
	if nOut < FaceOutliers-5 || nOut > FaceOutliers {
		t.Errorf("face: got %d outliers, want ≈%d", nOut, FaceOutliers)
	}
}

// localLearnability measures how well small pieces of the CDF are
// approximated by a straight line: for each block of 256 consecutive
// keys, fit the line through the block's endpoints and report the mean
// absolute position error as a fraction of the block length. This is
// the property the paper attributes osm's difficulty to ("even small
// pieces of the CDF exhibit difficult-to-model erratic behavior").
func localLearnability(keys []core.Key) float64 {
	const block = 256
	n := len(keys)
	total, blocks := 0.0, 0
	for s := 0; s+block <= n; s += block {
		k0, k1 := float64(keys[s]), float64(keys[s+block-1])
		span := k1 - k0
		if span == 0 {
			continue
		}
		errSum := 0.0
		for i := 0; i < block; i++ {
			pred := (float64(keys[s+i]) - k0) / span * float64(block-1)
			d := pred - float64(i)
			if d < 0 {
				d = -d
			}
			errSum += d
		}
		total += errSum / block / block
		blocks++
	}
	return total / float64(blocks)
}

func TestOSMHarderThanAmzn(t *testing.T) {
	amzn := MustGenerate(Amzn, testN, 1)
	osm := MustGenerate(OSM, testN, 1)
	la, lo := localLearnability(amzn), localLearnability(osm)
	// The paper's discriminating property: osm's CDF is locally erratic,
	// amzn's is locally near-linear. Require a clear separation.
	if lo < 2*la {
		t.Errorf("expected osm local error (%f) >> amzn local error (%f)", lo, la)
	}
}

func TestHilbertRoundTrip(t *testing.T) {
	const order = 8
	for d := uint64(0); d < 1<<(2*order); d += 17 {
		x, y := hilbertXY(order, d)
		if got := hilbertD2(order, x, y); got != d {
			t.Fatalf("hilbert round trip failed: d=%d -> (%d,%d) -> %d", d, x, y, got)
		}
	}
}

func TestHilbertLocality(t *testing.T) {
	// Adjacent curve positions must be adjacent grid cells (the defining
	// property of the Hilbert curve).
	const order = 6
	for d := uint64(0); d < 1<<(2*order)-1; d++ {
		x1, y1 := hilbertXY(order, d)
		x2, y2 := hilbertXY(order, d+1)
		dx := int64(x1) - int64(x2)
		dy := int64(y1) - int64(y2)
		if dx*dx+dy*dy != 1 {
			t.Fatalf("hilbert not contiguous at d=%d: (%d,%d) -> (%d,%d)", d, x1, y1, x2, y2)
		}
	}
}

func TestLookups(t *testing.T) {
	keys := MustGenerate(Amzn, 10_000, 1)
	lk := Lookups(keys, 5000, 1)
	if len(lk) != 5000 {
		t.Fatalf("got %d lookups", len(lk))
	}
	for _, x := range lk {
		i := core.LowerBound(keys, x)
		if i >= len(keys) || keys[i] != x {
			t.Fatalf("lookup key %d not present in dataset", x)
		}
	}
	// Deterministic.
	lk2 := Lookups(keys, 5000, 1)
	for i := range lk {
		if lk[i] != lk2[i] {
			t.Fatal("lookups not deterministic")
		}
	}
}

func TestAbsentLookups(t *testing.T) {
	keys := MustGenerate(Wiki, 10_000, 1)
	lk := AbsentLookups(keys, 1000, 1)
	for _, x := range lk {
		i := core.LowerBound(keys, x)
		if i < len(keys) && keys[i] == x {
			t.Fatalf("absent lookup key %d is present", x)
		}
	}
}

func TestPayloads(t *testing.T) {
	p := Payloads(1000, 3)
	if len(p) != 1000 {
		t.Fatalf("got %d payloads", len(p))
	}
	q := Payloads(1000, 3)
	for i := range p {
		if p[i] != q[i] {
			t.Fatal("payloads not deterministic")
		}
	}
}

func TestTo32(t *testing.T) {
	keys := MustGenerate(Amzn, 20_000, 1)
	k32 := To32(keys)
	if len(k32) != len(keys) {
		t.Fatalf("length mismatch")
	}
	for i := 1; i < len(k32); i++ {
		if k32[i] <= k32[i-1] {
			t.Fatalf("To32 not strictly increasing at %d", i)
		}
	}
}

func TestTo32Face(t *testing.T) {
	// Outlier-heavy data compresses the bulk into a small prefix; the
	// rank-preserving nudge must keep everything unique and in range.
	keys := MustGenerate(Face, 20_000, 1)
	k32 := To32(keys)
	for i := 1; i < len(k32); i++ {
		if k32[i] <= k32[i-1] {
			t.Fatalf("To32(face) not strictly increasing at %d", i)
		}
	}
}

func TestTo32Empty(t *testing.T) {
	if got := To32(nil); len(got) != 0 {
		t.Error("To32(nil) should be empty")
	}
}

func TestCDF(t *testing.T) {
	keys := MustGenerate(Amzn, 10_000, 1)
	xs, ys := CDF(keys, 100)
	if len(xs) != 100 || len(ys) != 100 {
		t.Fatalf("got %d/%d samples", len(xs), len(ys))
	}
	if ys[0] != 0 || ys[99] != 1 {
		t.Errorf("CDF endpoints: %f..%f, want 0..1", ys[0], ys[99])
	}
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1] || xs[i] < xs[i-1] {
			t.Fatal("CDF not monotone")
		}
	}
}

func TestCDFEdgeCases(t *testing.T) {
	if xs, ys := CDF(nil, 10); xs != nil || ys != nil {
		t.Error("CDF(nil) should be nil")
	}
	xs, ys := CDF([]core.Key{5}, 10)
	if len(xs) != 1 || ys[0] != 0 {
		t.Error("CDF single key")
	}
}

func TestRNGUniform(t *testing.T) {
	r := newRNG(1)
	n := 100_000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.float64()
		if v < 0 || v >= 1 {
			t.Fatalf("float64 out of range: %f", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	if mean < 0.49 || mean > 0.51 {
		t.Errorf("uniform mean = %f, want ≈0.5", mean)
	}
}

func TestRNGNorm(t *testing.T) {
	r := newRNG(2)
	n := 100_000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if mean < -0.02 || mean > 0.02 {
		t.Errorf("normal mean = %f, want ≈0", mean)
	}
	if variance < 0.95 || variance > 1.05 {
		t.Errorf("normal variance = %f, want ≈1", variance)
	}
}

func TestRNGIntn(t *testing.T) {
	r := newRNG(3)
	f := func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZipfLookups(t *testing.T) {
	keys := MustGenerate(Amzn, 20000, 5)
	m := 40000
	lk := ZipfLookups(keys, m, 0.99, 9)
	if len(lk) != m {
		t.Fatalf("got %d lookups, want %d", len(lk), m)
	}
	counts := make(map[core.Key]int)
	for _, x := range lk {
		pos := core.LowerBound(keys, x)
		if pos >= len(keys) || keys[pos] != x {
			t.Fatalf("zipf lookup %d not a present key", x)
		}
		counts[x]++
	}
	// Skew: the hottest key must take far more than the uniform share
	// (uniform expectation is m/n = 2), and the distinct-key count must
	// be well below m.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 100 {
		t.Errorf("hottest key drew %d lookups; zipf(0.99) should concentrate far above uniform share 2", max)
	}
	// Determinism in the seed.
	lk2 := ZipfLookups(keys, m, 0.99, 9)
	for i := range lk {
		if lk[i] != lk2[i] {
			t.Fatal("ZipfLookups not deterministic in seed")
		}
	}
	// theta <= 0 degrades to uniform: no key should dominate.
	uni := ZipfLookups(keys, m, 0, 9)
	uc := make(map[core.Key]int)
	umax := 0
	for _, x := range uni {
		uc[x]++
		if uc[x] > umax {
			umax = uc[x]
		}
	}
	if umax > 50 {
		t.Errorf("uniform fallback has a %d-count hot key", umax)
	}
}

func TestInsertKeys(t *testing.T) {
	keys := MustGenerate(Wiki, 10000, 11)
	ins := InsertKeys(keys, 5000, 13)
	if len(ins) != 5000 {
		t.Fatalf("got %d insert keys, want 5000", len(ins))
	}
	seen := make(map[core.Key]struct{}, len(ins))
	for _, k := range ins {
		if pos := core.LowerBound(keys, k); pos < len(keys) && keys[pos] == k {
			t.Fatalf("insert key %d already present in the dataset", k)
		}
		if _, dup := seen[k]; dup {
			t.Fatalf("duplicate insert key %d", k)
		}
		seen[k] = struct{}{}
	}
}

func TestArrivals(t *testing.T) {
	const n = 50_000
	const rate = 100_000.0 // requests/sec
	arr := Arrivals(n, rate, 3)
	if len(arr) != n {
		t.Fatalf("got %d arrivals, want %d", len(arr), n)
	}
	prev := time.Duration(-1)
	for i, a := range arr {
		if a <= prev {
			t.Fatalf("arrival %d not increasing: %v after %v", i, a, prev)
		}
		prev = a
	}
	// The empirical rate of a Poisson process over n events concentrates
	// around the target: n / T_n within a few percent at this n.
	got := float64(n) / arr[n-1].Seconds()
	if got < rate*0.95 || got > rate*1.05 {
		t.Fatalf("empirical rate %.0f, want %.0f ± 5%%", got, rate)
	}
	// Deterministic in seed.
	again := Arrivals(10, rate, 3)
	for i := range again {
		if again[i] != arr[i] {
			t.Fatal("Arrivals not deterministic in seed")
		}
	}
}
