package wormhole

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/indextest"
)

func TestWormholeValidityAllDatasets(t *testing.T) {
	for _, name := range dataset.All() {
		keys := dataset.MustGenerate(name, 5000, 1)
		probes := indextest.ProbesFor(keys)
		for _, stride := range []int{1, 4, 100} {
			idx, err := Builder{Stride: stride}.Build(keys)
			if err != nil {
				t.Fatalf("%s stride=%d: %v", name, stride, err)
			}
			indextest.CheckValidity(t, idx, keys, probes)
		}
	}
}

func TestWormholeSmall(t *testing.T) {
	keys := []core.Key{10, 20, 30}
	idx, err := Builder{Stride: 1}.Build(keys)
	if err != nil {
		t.Fatal(err)
	}
	indextest.CheckValidity(t, idx, keys, indextest.ProbesFor(keys))
	if idx.(*Index).NumLeaves() != 1 {
		t.Errorf("leaves = %d", idx.(*Index).NumLeaves())
	}
}

func TestWormholeManyLeaves(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Face, 50000, 1)
	idx, err := Builder{Stride: 1}.Build(keys)
	if err != nil {
		t.Fatal(err)
	}
	w := idx.(*Index)
	wantLeaves := (len(keys) + LeafSize - 1) / LeafSize
	if w.NumLeaves() != wantLeaves {
		t.Errorf("leaves = %d, want %d", w.NumLeaves(), wantLeaves)
	}
	indextest.CheckValidity(t, idx, keys, keys[:5000])
}

func TestWormholeStride1Exact(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Amzn, 10000, 1)
	idx, _ := Builder{Stride: 1}.Build(keys)
	for i, k := range keys[:2000] {
		b := idx.Lookup(k)
		if !(b.Lo <= i && i < b.Hi) || b.Width() > 1 {
			t.Fatalf("Lookup(%d) = %v, want tight bound at %d", k, b, i)
		}
	}
}

func TestWormholeEmpty(t *testing.T) {
	if _, err := (Builder{}).Build(nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestWormholeDuplicates(t *testing.T) {
	// Duplicate keys spanning multiple leaves stress the anchor
	// walk-back path.
	keys := make([]core.Key, 3*LeafSize)
	for i := range keys {
		if i < 2*LeafSize {
			keys[i] = 777
		} else {
			keys[i] = core.Key(1000 + i)
		}
	}
	idx, err := Builder{Stride: 1}.Build(keys)
	if err != nil {
		t.Fatal(err)
	}
	indextest.CheckValidity(t, idx, keys, indextest.ProbesFor(sample16(keys)))
	b := idx.Lookup(777)
	if b.Lo != 0 {
		t.Errorf("duplicate lookup must reach the first occurrence, got %v", b)
	}
}

func TestWormholeBuilderName(t *testing.T) {
	if (Builder{}).Name() != "Wormhole" {
		t.Error("name")
	}
	keys := dataset.MustGenerate(dataset.OSM, 2000, 1)
	idx := indextest.CheckBuilder(t, Builder{Stride: 2}, keys)
	if idx.Name() != "Wormhole" || idx.SizeBytes() <= 0 {
		t.Error("metadata")
	}
}

// Property: wormhole bounds are valid for arbitrary sorted inputs.
func TestWormholeProperty(t *testing.T) {
	f := func(raw []uint64, x uint64) bool {
		if len(raw) == 0 {
			return true
		}
		keys := make([]core.Key, len(raw))
		copy(keys, raw)
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		idx, err := Builder{Stride: 1}.Build(keys)
		if err != nil {
			return false
		}
		return core.ValidBound(keys, x, idx.Lookup(x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// sample16 returns every 16th key (Go has no step slicing).
func sample16(keys []core.Key) []core.Key {
	out := make([]core.Key, 0, len(keys)/16+1)
	for i := 0; i < len(keys); i += 16 {
		out = append(out, keys[i])
	}
	return out
}
