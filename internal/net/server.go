package net

import (
	"bytes"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/stats"
)

// Server defaults; see Config.
const (
	DefaultCoalesceWindow = 100 * time.Microsecond
	DefaultBatchCap       = 256
	DefaultMaxPending     = 4096
	DefaultMaxConns       = 1024
	defaultOutBuffer      = 1024
)

// Config configures a Server.
type Config struct {
	// CoalesceWindow is both the longest a point lookup waits for
	// companions and the pacing floor between coalesced GetBatch
	// rounds: a lookup arriving at an idle server is served
	// immediately, but under sustained load rounds run at most once
	// per window, so concurrent arrivals pile into one batch. With
	// BatchCap it fixes the server's coalesced-read capacity at
	// BatchCap/CoalesceWindow lookups per second — the measured
	// capacity admission control defends. 0 defaults to
	// DefaultCoalesceWindow.
	CoalesceWindow time.Duration

	// BatchCap is the largest coalesced GetBatch round. 0 defaults to
	// DefaultBatchCap.
	BatchCap int

	// MaxPending bounds the admission queue: requests admitted but not
	// yet answered. A request arriving with the queue full is refused
	// with MsgRetryLater — shed explicitly, never queued without bound
	// and never dropped silently. 0 defaults to DefaultMaxPending.
	MaxPending int

	// MaxConns bounds accepted connections; one past the bound is sent
	// MsgRetryLater and closed. 0 defaults to DefaultMaxConns.
	MaxConns int

	// Metrics, when non-nil, receives the server's observability
	// series: accept/shed/coalescer counters bound as scrape-time funcs
	// over the atomics the server maintains anyway, plus the service
	// latency histogram. The same registry's full snapshot rides every
	// stats frame as Stats.Vars — share one registry between the store
	// and its server to ship both layers in one frame.
	Metrics *obs.Registry

	// Tracer, when non-nil, samples point lookups and records their
	// queue-wait and coalesce-wait phases (share it with the store's
	// Config.Tracer for the route/probe/merge phases of the same
	// stack).
	Tracer *obs.Tracer

	// ReplStat, when non-nil, answers MsgReplStat with this node's
	// replication role, epoch, applied generation, and per-shard applied
	// sequence numbers. Nodes without a replication layer leave it nil
	// and refuse the request.
	ReplStat func() (role uint8, epoch, gen uint64, seqs []uint64)

	// Promote, when non-nil, asks this node to become the primary
	// (drain any replication tail, lift the read-only gate). Invoked
	// from a connection's reader goroutine; it must be safe to call
	// more than once.
	Promote func() error
}

func (c Config) withDefaults() Config {
	if c.CoalesceWindow <= 0 {
		c.CoalesceWindow = DefaultCoalesceWindow
	}
	if c.BatchCap <= 0 {
		c.BatchCap = DefaultBatchCap
	}
	if c.MaxPending <= 0 {
		c.MaxPending = DefaultMaxPending
	}
	if c.MaxConns <= 0 {
		c.MaxConns = DefaultMaxConns
	}
	return c
}

// Server fronts a serve.Store over TCP. Start one with Serve or
// Listen; stop it with Close, which joins every goroutine the server
// started. The server does not own the store: close the store after
// the server, never before.
type Server struct {
	st  *serve.Store
	cfg Config
	ln  net.Listener

	mu     sync.Mutex
	conns  map[*srvConn]struct{}
	closed bool

	getC   chan getReq
	stopC  chan struct{}
	wg     sync.WaitGroup // accept loop + coalescer
	connWG sync.WaitGroup

	// Counters (see Stats).
	connCount    atomic.Int64
	pending      atomic.Int64
	maxPending   atomic.Int64
	accepted     atomic.Uint64
	shed         atomic.Uint64
	shedConns    atomic.Uint64
	droppedConns atomic.Uint64
	batches      atomic.Uint64
	batchedKeys  atomic.Uint64
	flushIdle    atomic.Uint64 // rounds flushed on the idle leading edge
	flushTimer   atomic.Uint64 // rounds flushed by the window timer
	flushFull    atomic.Uint64 // rounds that filled BatchCap
	lat          stats.Histogram

	reg    *obs.Registry
	tracer *obs.Tracer
}

// getReq is one coalescer-queued point lookup.
type getReq struct {
	key core.Key
	id  uint64
	c   *srvConn
	t0  time.Time
	sp  *obs.Span // non-nil on the tracer's sampling stride
}

// Listen starts a Server on a fresh TCP listener at addr
// (e.g. "127.0.0.1:0" for an ephemeral test port).
func Listen(addr string, st *serve.Store, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Serve(ln, st, cfg), nil
}

// Serve starts a Server over an existing listener, which the Server
// takes ownership of (Close closes it).
func Serve(ln net.Listener, st *serve.Store, cfg Config) *Server {
	s := &Server{
		st:    st,
		cfg:   cfg.withDefaults(),
		ln:    ln,
		conns: map[*srvConn]struct{}{},
		stopC: make(chan struct{}),
	}
	// Admission (pending <= MaxPending, enforced before any send)
	// guarantees the channel never fills, so producers never block on
	// it and the coalescer is its only consumer.
	s.getC = make(chan getReq, s.cfg.MaxPending)
	s.reg = s.cfg.Metrics
	s.tracer = s.cfg.Tracer
	s.registerMetrics(s.reg)
	s.wg.Add(2)
	go s.acceptLoop()
	go s.coalescer()
	return s
}

// registerMetrics binds the server's observability series into r as
// scrape-time funcs over the counters the server maintains anyway.
func (s *Server) registerMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	cf := func(a *atomic.Uint64) func() float64 {
		return func() float64 { return float64(a.Load()) }
	}
	r.CounterFunc("sosd_net_accepted_total", cf(&s.accepted))
	r.CounterFunc("sosd_net_shed_total", cf(&s.shed))
	r.CounterFunc("sosd_net_shed_conns_total", cf(&s.shedConns))
	r.CounterFunc("sosd_net_dropped_conns_total", cf(&s.droppedConns))
	r.CounterFunc("sosd_net_batches_total", cf(&s.batches))
	r.CounterFunc("sosd_net_batched_keys_total", cf(&s.batchedKeys))
	r.CounterFunc("sosd_net_flush_idle_total", cf(&s.flushIdle))
	r.CounterFunc("sosd_net_flush_timer_total", cf(&s.flushTimer))
	r.CounterFunc("sosd_net_flush_full_total", cf(&s.flushFull))
	r.GaugeFunc("sosd_net_conns", func() float64 { return float64(s.connCount.Load()) })
	r.GaugeFunc("sosd_net_queue_depth", func() float64 {
		if n := s.pending.Load(); n > 0 {
			return float64(n)
		}
		return 0
	})
	r.GaugeFunc("sosd_net_queue_depth_max", func() float64 { return float64(s.maxPending.Load()) })
	r.AttachHistogram("sosd_net_latency_ns", &s.lat)
}

// Addr reports the listener's address (the dial target).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Stats snapshots the server's counters and latency histogram.
func (s *Server) Stats() *Stats {
	clampU := func(v int64) uint64 {
		if v < 0 {
			return 0
		}
		return uint64(v)
	}
	return &Stats{
		Conns:         clampU(s.connCount.Load()),
		Accepted:      s.accepted.Load(),
		Shed:          s.shed.Load(),
		ShedConns:     s.shedConns.Load(),
		DroppedConns:  s.droppedConns.Load(),
		Batches:       s.batches.Load(),
		BatchedKeys:   s.batchedKeys.Load(),
		QueueDepth:    clampU(s.pending.Load()),
		MaxQueueDepth: clampU(s.maxPending.Load()),
		Latency:       s.lat.Snapshot(),
		Vars:          s.reg.Vars(),
	}
}

// Close stops the server: no new connections, every live connection
// severed, every server goroutine joined. In-flight requests on severed
// connections are abandoned (their clients see a closed connection, not
// silence on a live one). Close is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	err := s.ln.Close()
	for _, c := range conns {
		c.teardown()
	}
	s.connWG.Wait()
	close(s.stopC)
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed (Close) or fatally broken
		}
		if s.connCount.Load() >= int64(s.cfg.MaxConns) {
			// Accept-queue shed: an explicit busy signal, then the
			// connection closes — cheaper than a handshake the request
			// queue would refuse anyway.
			s.shedConns.Add(1)
			var buf bytes.Buffer
			_ = writeMsg(nc, &buf, &Msg{Type: MsgRetryLater})
			_ = nc.Close()
			continue
		}
		c := &srvConn{s: s, nc: nc, outC: make(chan *Msg, defaultOutBuffer), done: make(chan struct{})}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = nc.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.connCount.Add(1)
		s.connWG.Add(1)
		go c.run()
	}
}

// admit claims one admission-queue slot, or sheds: the counter is
// raised optimistically and rolled back on overflow, so concurrent
// admits can never exceed MaxPending. The slot is released by
// release() when the request's response is enqueued (or its
// connection abandoned).
func (s *Server) admit() bool {
	n := s.pending.Add(1)
	if n > int64(s.cfg.MaxPending) {
		s.pending.Add(-1)
		s.shed.Add(1)
		return false
	}
	s.accepted.Add(1)
	for {
		old := s.maxPending.Load()
		if n <= old || s.maxPending.CompareAndSwap(old, n) {
			return true
		}
	}
}

func (s *Server) release() { s.pending.Add(-1) }

// coalescer owns the point-lookup queue: it batches concurrent Gets
// into single store GetBatch rounds, immediately when the server has
// been idle for a window, paced to one round per window under load.
// Remainder past BatchCap stays queued for the next round — that
// queue growing into MaxPending is what makes admission shed.
func (s *Server) coalescer() {
	defer s.wg.Done()
	var pend []getReq
	keys := make([]core.Key, 0, s.cfg.BatchCap)
	vals := make([]uint64, s.cfg.BatchCap)
	fbits := make([]bool, s.cfg.BatchCap)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	timerArmed := false
	var lastFlush time.Time // zero: first flush is unpaced

	arm := func(d time.Duration) {
		if timerArmed {
			return
		}
		if d < 0 {
			d = 0
		}
		timer.Reset(d)
		timerArmed = true
	}
	flush := func(now time.Time, timerFired bool) {
		n := len(pend)
		if n > s.cfg.BatchCap {
			n = s.cfg.BatchCap
		}
		// Classify the round for the coalescer counters: a round that
		// fills its cap is batch-full regardless of what triggered it.
		switch {
		case n == s.cfg.BatchCap:
			s.flushFull.Add(1)
		case timerFired:
			s.flushTimer.Add(1)
		default:
			s.flushIdle.Add(1)
		}
		batch := pend[:n]
		keys = keys[:0]
		for _, g := range batch {
			keys = append(keys, g.key)
			g.sp.Mark(obs.PhaseCoalesceWait)
		}
		// GetBatchFound resolves each key's found bit against the same
		// shard snapshots as the batch (a zero payload is ambiguous in
		// out alone), so a coalesced Get never observes a write that
		// landed after its round.
		s.st.GetBatchFound(keys, vals[:n], fbits[:n])
		for i, g := range batch {
			g.c.send(&Msg{Type: MsgValue, ID: g.id, Val: vals[i], Found: fbits[i]})
			s.lat.Record(time.Since(g.t0).Nanoseconds())
			s.release()
		}
		s.batches.Add(1)
		s.batchedKeys.Add(uint64(n))
		rest := copy(pend, pend[n:])
		for i := rest; i < len(pend); i++ {
			pend[i] = getReq{} // drop conn references
		}
		pend = pend[:rest]
		lastFlush = now
		if len(pend) > 0 {
			arm(s.cfg.CoalesceWindow)
		}
	}

	for {
		select {
		case <-s.stopC:
			// Connections are already severed by Close; just drain the
			// queue so every admitted slot is released.
			for _, g := range pend {
				_ = g
				s.release()
			}
			for {
				select {
				case <-s.getC:
					s.release()
				default:
					timer.Stop()
					return
				}
			}
		case g := <-s.getC:
			g.sp.Mark(obs.PhaseQueueWait)
			pend = append(pend, g)
			now := time.Now()
			if now.Sub(lastFlush) >= s.cfg.CoalesceWindow {
				flush(now, false)
			} else {
				arm(s.cfg.CoalesceWindow - now.Sub(lastFlush))
			}
		case now := <-timer.C:
			timerArmed = false
			if len(pend) > 0 {
				flush(now, true)
			}
		}
	}
}

// srvConn is one accepted connection: a reader loop (run) decoding
// request frames and a writer goroutine draining the response queue,
// torn down together on the first error from either side.
type srvConn struct {
	s    *Server
	nc   net.Conn
	outC chan *Msg
	done chan struct{}
	once sync.Once
}

// teardown severs the connection: the reader unblocks on the closed
// socket, the writer on done. Safe to call from any goroutine, any
// number of times.
func (c *srvConn) teardown() {
	c.once.Do(func() {
		close(c.done)
		_ = c.nc.Close()
	})
}

// send enqueues a response without ever blocking the caller (the
// coalescer must not stall on one slow connection). A connection whose
// client is not draining responses has its queue fill up and is
// severed — a closed connection is an explicit failure at the client,
// unlike a silently dropped response on a live one.
func (c *srvConn) send(m *Msg) {
	select {
	case <-c.done:
	default:
		select {
		case c.outC <- m:
			return
		default:
			c.s.droppedConns.Add(1)
			c.teardown()
		}
	}
}

func (c *srvConn) run() {
	defer c.s.connWG.Done()
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		c.writer()
	}()

	var scratch []byte
	for {
		m, sc, err := readMsg(c.nc, scratch)
		if err != nil {
			break // EOF, severed, or corrupt frame: the stream is over
		}
		scratch = sc
		c.handle(m)
	}
	c.teardown()
	writerWG.Wait()

	c.s.mu.Lock()
	delete(c.s.conns, c)
	c.s.mu.Unlock()
	c.s.connCount.Add(-1)
}

func (c *srvConn) writer() {
	var buf bytes.Buffer
	for {
		select {
		case <-c.done:
			return
		case m := <-c.outC:
			if err := writeMsg(c.nc, &buf, m); err != nil {
				c.teardown()
				return
			}
		}
	}
}

// handle dispatches one decoded request on the reader goroutine.
// Writes and explicit batch lookups execute inline — the store's write
// path is internally synchronized and its GetBatch already runs the
// batched fast path — while point lookups go to the coalescer. Every
// admitted request is answered exactly once; every refusal is an
// explicit MsgRetryLater.
func (c *srvConn) handle(m *Msg) {
	s := c.s
	switch m.Type {
	case MsgStats:
		// Monitoring must work under overload: never admission-gated.
		c.send(&Msg{Type: MsgStatsReply, ID: m.ID, Stats: s.Stats()})
	case MsgTopo:
		// Routing metadata, like monitoring: never admission-gated.
		c.send(&Msg{Type: MsgTopoReply, ID: m.ID, Keys: s.st.Separators()})
	case MsgReplStat:
		if s.cfg.ReplStat == nil {
			c.send(&Msg{Type: MsgError, ID: m.ID, Err: "no replication status"})
			return
		}
		role, epoch, gen, seqs := s.cfg.ReplStat()
		c.send(&Msg{Type: MsgReplStatReply, ID: m.ID, Role: role, Epoch: epoch, Gen: gen, Seqs: seqs})
	case MsgPromote:
		if s.cfg.Promote == nil {
			c.send(&Msg{Type: MsgError, ID: m.ID, Err: "not promotable"})
			return
		}
		if err := s.cfg.Promote(); err != nil {
			c.send(&Msg{Type: MsgError, ID: m.ID, Err: err.Error()})
			return
		}
		c.send(&Msg{Type: MsgOK, ID: m.ID})
	case MsgGet:
		if !s.admit() {
			c.send(&Msg{Type: MsgRetryLater, ID: m.ID})
			return
		}
		// Admission bounds occupancy, so this send cannot block.
		s.getC <- getReq{key: m.Key, id: m.ID, c: c, t0: time.Now(), sp: s.tracer.Sample()}
	case MsgGetBatch:
		if !s.admit() {
			c.send(&Msg{Type: MsgRetryLater, ID: m.ID})
			return
		}
		t0 := time.Now()
		vals := make([]uint64, len(m.Keys))
		found := s.st.GetBatch(m.Keys, vals)
		c.send(&Msg{Type: MsgValueBatch, ID: m.ID, Vals: vals, FoundN: uint32(found)})
		s.lat.Record(time.Since(t0).Nanoseconds())
		s.release()
	case MsgPut:
		if s.st.ReadOnly() {
			c.send(&Msg{Type: MsgError, ID: m.ID, Err: "read-only replica"})
			return
		}
		if !s.admit() {
			c.send(&Msg{Type: MsgRetryLater, ID: m.ID})
			return
		}
		t0 := time.Now()
		s.st.Put(m.Key, m.Val)
		c.send(&Msg{Type: MsgOK, ID: m.ID})
		s.lat.Record(time.Since(t0).Nanoseconds())
		s.release()
	case MsgDelete:
		if s.st.ReadOnly() {
			c.send(&Msg{Type: MsgError, ID: m.ID, Err: "read-only replica"})
			return
		}
		if !s.admit() {
			c.send(&Msg{Type: MsgRetryLater, ID: m.ID})
			return
		}
		t0 := time.Now()
		s.st.Delete(m.Key)
		c.send(&Msg{Type: MsgOK, ID: m.ID})
		s.lat.Record(time.Since(t0).Nanoseconds())
		s.release()
	default:
		c.send(&Msg{Type: MsgError, ID: m.ID, Err: "not a request type"})
	}
}
