package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/binio"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/registry"
)

// buildFamilies returns, for every family with a registered codec, a
// built mid-sweep index over keys.
func buildFamilies(t *testing.T, keys []core.Key) map[string]core.Index {
	t.Helper()
	out := map[string]core.Index{}
	for _, family := range registry.CodecFamilies() {
		nb, ok := registry.Builder(family, keys)
		if !ok {
			t.Fatalf("%s: no builder", family)
		}
		idx, err := nb.Builder.Build(keys)
		if err != nil {
			t.Fatalf("%s: build: %v", family, err)
		}
		out[family] = idx
	}
	return out
}

// TestIndexRoundTripEquivalence is the core codec contract: for every
// family, Encode→Decode must reproduce bit-identical Lookup bounds
// across the full key set, absent keys in every gap neighbourhood, and
// both extremes — i.e. the decoded index is indistinguishable from the
// trained one.
func TestIndexRoundTripEquivalence(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Amzn, 5000, 23)
	dir := t.TempDir()
	for family, idx := range buildFamilies(t, keys) {
		path := filepath.Join(dir, family+".idx")
		if err := WriteIndex(path, idx); err != nil {
			t.Fatalf("%s: write: %v", family, err)
		}
		got, err := ReadIndex(path)
		if err != nil {
			t.Fatalf("%s: read: %v", family, err)
		}
		if got.Name() != idx.Name() {
			t.Fatalf("%s: decoded name %q", family, got.Name())
		}
		if got.SizeBytes() != idx.SizeBytes() {
			t.Errorf("%s: decoded SizeBytes %d != %d", family, got.SizeBytes(), idx.SizeBytes())
		}
		probes := make([]core.Key, 0, 3*len(keys)+4)
		probes = append(probes, 0, ^core.Key(0))
		for _, k := range keys {
			probes = append(probes, k)
			probes = append(probes, k+1) // gap above (absent unless dup-adjacent)
			if k > 0 {
				probes = append(probes, k-1)
			}
		}
		for _, x := range probes {
			want := idx.Lookup(x)
			have := got.Lookup(x)
			if want != have {
				t.Fatalf("%s: Lookup(%d) = %v after decode, want %v", family, x, have, want)
			}
			if !core.ValidBound(keys, x, have) {
				t.Fatalf("%s: decoded bound %v invalid for key %d", family, have, x)
			}
		}
	}
}

// TestIndexFrameCorruption flips every byte of an encoded frame (in
// strides, for speed) and requires a clean error each time.
func TestIndexFrameCorruption(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Amzn, 2000, 7)
	for family, idx := range buildFamilies(t, keys) {
		var buf bytes.Buffer
		if err := EncodeIndex(binio.NewWriter(&buf), idx); err != nil {
			t.Fatalf("%s: encode: %v", family, err)
		}
		data := buf.Bytes()
		if _, err := DecodeIndex(data); err != nil {
			t.Fatalf("%s: clean decode failed: %v", family, err)
		}
		for pos := 0; pos < len(data); pos += 7 {
			mut := append([]byte(nil), data...)
			mut[pos] ^= 0x40
			if _, err := DecodeIndex(mut); err == nil {
				t.Fatalf("%s: bit flip at %d decoded without error", family, pos)
			}
		}
		for cut := 0; cut < len(data); cut += 11 {
			if _, err := DecodeIndex(data[:cut]); err == nil {
				t.Fatalf("%s: truncation at %d decoded without error", family, cut)
			}
		}
	}
}

func TestTableRoundTrip(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Face, 30000, 3)
	payloads := make([]uint64, len(keys))
	for i := range payloads {
		payloads[i] = uint64(i) * 11
	}
	path := filepath.Join(t.TempDir(), "t.tab")
	if err := WriteTable(path, keys, payloads); err != nil {
		t.Fatalf("write: %v", err)
	}
	gk, gp, err := ReadTable(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(gk) != len(keys) || len(gp) != len(payloads) {
		t.Fatalf("lengths %d/%d", len(gk), len(gp))
	}
	for i := range keys {
		if gk[i] != keys[i] || gp[i] != payloads[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
	// The data blocks must start on block boundaries.
	st, _ := os.Stat(path)
	if st.Size()%8 != 0 || st.Size() < int64(16*len(keys)) {
		t.Fatalf("suspicious file size %d", st.Size())
	}
}

func TestTableEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.tab")
	if err := WriteTable(path, nil, nil); err != nil {
		t.Fatalf("write: %v", err)
	}
	gk, gp, err := ReadTable(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(gk) != 0 || len(gp) != 0 {
		t.Fatalf("non-empty result")
	}
}

func TestTableCorruption(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Amzn, 2000, 5)
	payloads := make([]uint64, len(keys))
	path := filepath.Join(t.TempDir(), "t.tab")
	if err := WriteTable(path, keys, payloads); err != nil {
		t.Fatalf("write: %v", err)
	}
	data, _ := os.ReadFile(path)
	for _, pos := range []int{0, 9, 20, 30, 50, 4096, 4104, len(data) - 1} {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 1
		if _, _, err := ReadTableFrom(bytes.NewReader(mut), int64(len(mut))); err == nil {
			t.Errorf("bit flip at %d read without error", pos)
		}
	}
	for _, cut := range []int{0, 10, 59, 4095, 4100, len(data) / 2} {
		if _, _, err := ReadTableFrom(bytes.NewReader(data[:cut]), int64(cut)); err == nil {
			t.Errorf("truncation at %d read without error", cut)
		}
	}
}

func TestWALAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	seed := []Op{{Key: 10, Val: 1}, {Key: 20, Val: 2, Tomb: true}}
	w, err := CreateWAL(path, seed)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	for i := 0; i < 100; i++ {
		if err := w.Append(Op{Key: core.Key(100 + i), Val: uint64(i), Tomb: i%7 == 0}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	w2, ops, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer w2.Close()
	if len(ops) != 102 {
		t.Fatalf("replayed %d ops, want 102", len(ops))
	}
	if ops[0] != seed[0] || ops[1] != seed[1] {
		t.Fatalf("seed ops wrong: %+v", ops[:2])
	}
	for i := 0; i < 100; i++ {
		want := Op{Key: core.Key(100 + i), Val: uint64(i), Tomb: i%7 == 0}
		if ops[2+i] != want {
			t.Fatalf("op %d = %+v, want %+v", i, ops[2+i], want)
		}
	}
}

// TestWALTornTail simulates a crash mid-append: a partial record (and
// then a bit-flipped record) at the tail must end replay cleanly,
// keeping every record before it, and OpenWAL must truncate so new
// appends extend the intact prefix.
func TestWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	w, err := CreateWAL(path, nil)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	for i := 0; i < 10; i++ {
		w.Append(Op{Key: core.Key(i), Val: uint64(i)})
	}
	w.Close()

	// Torn write: append half a record.
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	f.Write(bytes.Repeat([]byte{0xAA}, 13))
	f.Close()

	w2, ops, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("open after torn tail: %v", err)
	}
	if len(ops) != 10 {
		t.Fatalf("replayed %d ops, want 10", len(ops))
	}
	// The torn tail must be gone: a fresh append then a reopen yields 11.
	if err := w2.Append(Op{Key: 99, Val: 99}); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
	w2.Close()
	_, ops, err = OpenWAL(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(ops) != 11 || ops[10].Key != 99 {
		t.Fatalf("after truncate+append: %d ops, last %+v", len(ops), ops[len(ops)-1])
	}

	// Bit flip inside an earlier record: replay stops there.
	data, _ := os.ReadFile(path)
	data[walHeaderLen+3*walRecordLen+5] ^= 1
	ops, _, err = ReplayWAL(data)
	if err != nil {
		t.Fatalf("replay flipped: %v", err)
	}
	if len(ops) != 3 {
		t.Fatalf("replay after mid-log flip: %d ops, want 3", len(ops))
	}

	// A bad header is corruption, not a torn tail.
	data[0] ^= 1
	if _, _, err := ReplayWAL(data); !errors.Is(err, binio.ErrCorrupt) {
		t.Fatalf("bad header: err = %v", err)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := &Manifest{
		Family: "PGM",
		Gen:    7,
		Shards: []ShardMeta{
			{Sep: 0, Codec: "PGM/eps=64", WAL: "shard-0000-g000007.wal", Runs: []RunMeta{
				{Codec: "PGM/eps=64", Table: "shard-0000-g000007-r00.tab", Index: "shard-0000-g000007-r00.idx"},
				{Codec: "BS", Table: "shard-0000-g000007-r01.tab", Tombs: "shard-0000-g000007-r01.tmb"},
			}},
			{Sep: 1000, Codec: "PGM/eps=64", WAL: "shard-0001-g000007.wal", Runs: []RunMeta{
				{Codec: "PGM/eps=64", Table: "shard-0001-g000007-r00.tab"},
			}},
		},
	}
	path := filepath.Join(t.TempDir(), ManifestName)
	if err := WriteManifest(path, m); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Family != m.Family || got.Gen != m.Gen || len(got.Shards) != 2 {
		t.Fatalf("decoded %+v", got)
	}
	if !reflect.DeepEqual(got.Shards, m.Shards) {
		t.Fatalf("shards round-trip diverged:\n got %+v\nwant %+v", got.Shards, m.Shards)
	}
}

func TestManifestRejectsTraversalAndDisorder(t *testing.T) {
	runs := func(rs ...RunMeta) []RunMeta { return rs }
	bad := []*Manifest{
		{Family: "PGM", Shards: []ShardMeta{{Sep: 0, WAL: "w", Runs: runs(RunMeta{Table: "../evil.tab"})}}},
		{Family: "PGM", Shards: []ShardMeta{{Sep: 0, WAL: "sub/dir.wal", Runs: runs(RunMeta{Table: "t"})}}},
		{Family: "PGM", Shards: []ShardMeta{
			{Sep: 5, WAL: "w", Runs: runs(RunMeta{Table: "t"})},
			{Sep: 5, WAL: "w2", Runs: runs(RunMeta{Table: "t2"})}}},
		{Family: "PGM", Shards: []ShardMeta{{Sep: 0, WAL: "w", Runs: runs(RunMeta{Table: ""})}}},
		{Family: "PGM", Shards: []ShardMeta{{Sep: 0, WAL: "w"}}},                                                // no runs
		{Family: "PGM", Shards: []ShardMeta{{Sep: 0, WAL: "w", Runs: runs(RunMeta{Table: "t", Tombs: "tm"})}}}, // tombed base
		{Family: "PGM", Shards: []ShardMeta{{Sep: 0, WAL: "w", Runs: runs(RunMeta{Table: "t"}, RunMeta{Table: "t2", Tombs: "..\\tm"})}}},
	}
	for i, m := range bad {
		var buf bytes.Buffer
		if err := EncodeManifest(binio.NewWriter(&buf), m); err != nil {
			t.Fatalf("case %d encode: %v", i, err)
		}
		if _, err := DecodeManifest(buf.Bytes()); !errors.Is(err, binio.ErrCorrupt) {
			t.Errorf("case %d: err = %v, want ErrCorrupt", i, err)
		}
	}
}

func TestTombsRoundTripAndRejects(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 64, 1000} {
		tombs := make([]bool, n)
		for i := range tombs {
			tombs[i] = i%5 == 0 || i == n-1
		}
		path := filepath.Join(t.TempDir(), "run.tmb")
		if err := WriteTombs(path, tombs); err != nil {
			t.Fatalf("n=%d write: %v", n, err)
		}
		got, err := ReadTombs(path, n)
		if err != nil {
			t.Fatalf("n=%d read: %v", n, err)
		}
		if !reflect.DeepEqual(got, tombs) {
			t.Fatalf("n=%d round trip diverged", n)
		}
		// A count mismatch is corruption, not silent truncation.
		if _, err := ReadTombs(path, n+1); !errors.Is(err, binio.ErrCorrupt) {
			t.Fatalf("n=%d count mismatch: err = %v, want ErrCorrupt", n, err)
		}
		if n == 0 {
			continue
		}
		// Every single-bit flip must be detected (CRC frame), and
		// nonzero padding bits past count must be rejected.
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for pos := 0; pos < len(data); pos++ {
			mut := append([]byte(nil), data...)
			mut[pos] ^= 0x80
			if _, err := DecodeTombs(mut, n); err == nil {
				t.Fatalf("n=%d bit flip at %d decoded without error", n, pos)
			}
		}
	}
}

func TestManifestCorruption(t *testing.T) {
	m := &Manifest{Family: "RMI", Shards: []ShardMeta{{Sep: 0, Codec: "RMI", WAL: "w",
		Runs: []RunMeta{{Codec: "RMI", Table: "t"}}}}}
	var buf bytes.Buffer
	if err := EncodeManifest(binio.NewWriter(&buf), m); err != nil {
		t.Fatalf("encode: %v", err)
	}
	data := buf.Bytes()
	for pos := 0; pos < len(data); pos++ {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x10
		if _, err := DecodeManifest(mut); err == nil {
			t.Fatalf("bit flip at %d decoded without error", pos)
		}
	}
}
