package search

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
)

// allFns names every last-mile search implementation, old and new; the
// property suite holds each of them to the sort.Search oracle.
func allFns() map[string]Fn {
	return map[string]Fn{
		"binary":        BinarySearch,
		"linear":        LinearSearch,
		"interpolation": InterpolationSearch,
		"exponential":   ExponentialSearch,
		"branchless":    BranchlessSearch,
	}
}

// oracle is the reference answer: sort.Search restricted to the bound,
// exactly the formulation the branchless implementations replace.
func oracle(keys []core.Key, x core.Key, b core.Bound) int {
	return b.Lo + sort.Search(b.Hi-b.Lo, func(i int) bool { return keys[b.Lo+i] >= x })
}

// checkAll runs every implementation on one (keys, x, bound) case.
func checkAll(t *testing.T, keys []core.Key, x core.Key, b core.Bound) {
	t.Helper()
	want := oracle(keys, x, b)
	for name, fn := range allFns() {
		if got := fn(keys, x, b); got != want {
			t.Fatalf("%s: search(%d, %v) = %d, want %d (n=%d)", name, x, b, got, want, len(keys))
		}
	}
	// The batched path must agree as well: resolve the case as a batch
	// of one plus a batch including neighbours.
	bs := []core.Bound{b}
	pos := []int{0}
	SearchBatch(keys, []core.Key{x}, bs, pos)
	if pos[0] != want {
		t.Fatalf("SearchBatch: search(%d, %v) = %d, want %d", x, b, pos[0], want)
	}
}

// TestSearchAgainstOracle sweeps the satellite checklist cases: empty
// bounds, width-1 bounds, full-array bounds, duplicate keys, and keys
// below/above the bound, for many sizes including non-powers of two.
func TestSearchAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(200)
		maxVal := 2 + rng.Intn(500) // small ranges force duplicate runs
		keys := sortedKeys(rng, n, maxVal)

		// Full-array bound, random keys (present, absent, extremes).
		full := core.FullBound(n)
		checkAll(t, keys, core.Key(rng.Intn(maxVal+50)), full)
		checkAll(t, keys, 0, full)
		checkAll(t, keys, keys[0], full)
		checkAll(t, keys, keys[n-1], full)
		checkAll(t, keys, keys[n-1]+1, full)
		checkAll(t, keys, ^core.Key(0), full)

		// Valid random bounds around a random key's lower bound.
		for q := 0; q < 20; q++ {
			x := core.Key(rng.Intn(maxVal + 50))
			checkAll(t, keys, x, validBoundFor(rng, keys, x))
		}

		// Width-1 bounds at every position where they are valid.
		for pos := 0; pos < n; pos++ {
			checkAll(t, keys, keys[pos], core.Bound{Lo: pos, Hi: pos + 1})
		}

		// Key below the bound: the bound starts exactly at the lower
		// bound, so every in-bound key is >= x.
		x := keys[n/2]
		lb := core.LowerBound(keys, x)
		checkAll(t, keys, x, core.Bound{Lo: lb, Hi: n})

		// Key above the bound: lb == n, represented as Hi == n.
		above := keys[n-1] + 1
		if above != 0 { // skip on wrap
			checkAll(t, keys, above, core.Bound{Lo: rng.Intn(n + 1), Hi: n})
			checkAll(t, keys, above, core.Bound{Lo: n, Hi: n}) // empty bound
		}
	}
}

// TestSearchBatch holds the pipelined batch path to the scalar oracle
// over whole random batches, including batches larger than any internal
// chunking and bounds of every width class.
func TestSearchBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(3000)
		keys := sortedKeys(rng, n, 4*n+2)
		m := 1 + rng.Intn(700)
		qs := make([]core.Key, m)
		bs := make([]core.Bound, m)
		want := make([]int, m)
		for i := range qs {
			qs[i] = core.Key(rng.Intn(4*n + 100))
			bs[i] = validBoundFor(rng, keys, qs[i])
			want[i] = oracle(keys, qs[i], bs[i])
		}
		pos := make([]int, m)
		SearchBatch(keys, qs, bs, pos)
		for i := range pos {
			if pos[i] != want[i] {
				t.Fatalf("SearchBatch[%d]: search(%d) = %d, want %d", i, qs[i], pos[i], want[i])
			}
		}
	}
}

// TestNarrowBatch checks that the probe rounds preserve bound validity
// and honor the stop width and round cap.
func TestNarrowBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 5000
	keys := sortedKeys(rng, n, 3*n)
	m := 300
	qs := make([]core.Key, m)
	bs := make([]core.Bound, m)
	for i := range qs {
		qs[i] = core.Key(rng.Intn(3*n + 100))
		bs[i] = validBoundFor(rng, keys, qs[i])
	}
	// Narrowed bounds take the closed form Lo <= lb <= Hi (the
	// intermediate-state invariant of binary search); every Fn must
	// still resolve them to the exact lower bound.
	contains := func(keys []core.Key, x core.Key, b core.Bound) bool {
		lb := core.LowerBound(keys, x)
		return b.Lo <= lb && lb <= b.Hi
	}
	// One round halves each wide bound but may not finish the job.
	cp := append([]core.Bound(nil), bs...)
	NarrowBatch(keys, qs, cp, 8, 1)
	for i := range cp {
		if !contains(keys, qs[i], cp[i]) {
			t.Fatalf("round 1 lost bound %d: %v for key %d", i, cp[i], qs[i])
		}
		if w, w0 := cp[i].Width(), bs[i].Width(); w0 > 8 && w > (w0+1)/2 {
			t.Fatalf("round 1 did not halve bound %d: %d -> %d", i, w0, w)
		}
	}
	// Unlimited rounds must reach the stop width everywhere, and every
	// scalar Fn must finish the narrowed bounds to the exact answer.
	NarrowBatch(keys, qs, bs, 8, 0)
	for i := range bs {
		if !contains(keys, qs[i], bs[i]) {
			t.Fatalf("narrowed bound %d lost its key: %v for key %d", i, bs[i], qs[i])
		}
		if bs[i].Width() > 8 {
			t.Fatalf("bound %d not narrowed: width %d", i, bs[i].Width())
		}
		want := core.LowerBound(keys, qs[i])
		for name, fn := range allFns() {
			if got := fn(keys, qs[i], bs[i]); got != want {
				t.Fatalf("%s on narrowed bound %v: search(%d) = %d, want %d", name, bs[i], qs[i], got, want)
			}
		}
	}
}

// FuzzSearch feeds arbitrary key material and a query through every
// implementation and the batch path, checking them against sort.Search
// on the full bound and on a derived valid sub-bound.
func FuzzSearch(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint64(5), uint8(3))
	f.Add([]byte{}, uint64(0), uint8(0))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1}, ^uint64(0), uint8(255))
	f.Fuzz(func(t *testing.T, raw []byte, q uint64, span uint8) {
		if len(raw) < 1 {
			return
		}
		keys := make([]core.Key, 0, len(raw))
		acc := core.Key(0)
		for _, c := range raw {
			acc += core.Key(c) // non-decreasing by construction, dup-heavy
			keys = append(keys, acc)
		}
		n := len(keys)
		x := core.Key(q)
		full := core.FullBound(n)
		want := oracle(keys, x, full)
		for name, fn := range allFns() {
			if got := fn(keys, x, full); got != want {
				t.Fatalf("%s: full-bound search(%d) = %d, want %d", name, x, got, want)
			}
		}
		// A derived valid sub-bound around the lower bound.
		lo := want - int(span)
		if lo < 0 {
			lo = 0
		}
		hi := want + 1 + int(span)
		if hi > n || want == n {
			hi = n
		}
		sub := core.Bound{Lo: lo, Hi: hi}
		for name, fn := range allFns() {
			if got := fn(keys, x, sub); got != want {
				t.Fatalf("%s: sub-bound %v search(%d) = %d, want %d", name, sub, x, got, want)
			}
		}
		bs := []core.Bound{sub}
		pos := []int{0}
		SearchBatch(keys, []core.Key{x}, bs, pos)
		if pos[0] != want {
			t.Fatalf("SearchBatch: sub-bound %v search(%d) = %d, want %d", sub, x, pos[0], want)
		}
	})
}
