package serve

// The write path of the mutable Store: each shard carries a sorted,
// immutable delta buffer of pending writes (upserts and tombstones) on
// top of an ordered set of immutable sorted runs — the base run plus
// the tier runs flushed from earlier deltas (LSM tiering). Writers
// publish a new delta by copy-on-write under the shard's single-writer
// lock; readers always load one consistent (runs, delta, frozen-delta)
// snapshot through the shard's atomic pointer and merge on the fly.
// When a delta grows past the compaction threshold it is frozen and —
// depending on the tiering policy — flushed into a new small run with
// a cheap tier index, or merged into fewer (or one) runs with a full
// index rebuild, republished in one pointer swap. See DESIGN.md
// "Write path".

import (
	"repro/internal/core"
	"repro/internal/table"
)

// delta is an immutable sorted run of pending writes for one shard:
// keys ascending and unique, vals the upserted payloads, tombs marking
// deletions. A delta is never mutated after publication; writers derive
// a new delta with `with` and swap the shard state pointer.
type delta struct {
	keys  []core.Key
	vals  []uint64
	tombs []bool
}

// emptyDelta is the shared zero-length delta; shard states never hold
// a nil active delta, so readers skip nil checks on the hot path.
var emptyDelta = &delta{}

// len reports the number of pending entries (tombstones included).
func (d *delta) len() int { return len(d.keys) }

// get returns the pending write for key: ok reports whether the delta
// holds an entry for key, tomb whether that entry is a deletion.
func (d *delta) get(x core.Key) (val uint64, tomb, ok bool) {
	pos := core.LowerBound(d.keys, x)
	if pos < len(d.keys) && d.keys[pos] == x {
		return d.vals[pos], d.tombs[pos], true
	}
	return 0, false, false
}

// with returns a new delta with the write applied: an existing entry
// for key is replaced, otherwise the entry is inserted at its sorted
// position. The receiver is not modified (copy-on-write), so readers
// holding the old delta are unaffected. Cost is O(len), which the
// compaction threshold keeps bounded.
func (d *delta) with(key core.Key, val uint64, tomb bool) *delta {
	pos := core.LowerBound(d.keys, key)
	if pos < len(d.keys) && d.keys[pos] == key {
		nd := &delta{
			keys:  d.keys, // keys unchanged: share
			vals:  make([]uint64, len(d.vals)),
			tombs: make([]bool, len(d.tombs)),
		}
		copy(nd.vals, d.vals)
		copy(nd.tombs, d.tombs)
		nd.vals[pos] = val
		nd.tombs[pos] = tomb
		return nd
	}
	n := len(d.keys)
	nd := &delta{
		keys:  make([]core.Key, n+1),
		vals:  make([]uint64, n+1),
		tombs: make([]bool, n+1),
	}
	copy(nd.keys, d.keys[:pos])
	copy(nd.vals, d.vals[:pos])
	copy(nd.tombs, d.tombs[:pos])
	nd.keys[pos], nd.vals[pos], nd.tombs[pos] = key, val, tomb
	copy(nd.keys[pos+1:], d.keys[pos:])
	copy(nd.vals[pos+1:], d.vals[pos:])
	copy(nd.tombs[pos+1:], d.tombs[pos:])
	return nd
}

// window returns the half-open sub-run of d with keys in [lo, hi).
func (d *delta) window(lo, hi core.Key) (keys []core.Key, vals []uint64, tombs []bool) {
	start := core.LowerBound(d.keys, lo)
	end := core.LowerBound(d.keys, hi)
	return d.keys[start:end], d.vals[start:end], d.tombs[start:end]
}

// overlay merges d under top: entries of top win on equal keys. It is
// the recovery path when a compaction's index rebuild fails and the
// frozen delta must fold back under the writes that arrived meanwhile.
func (d *delta) overlay(top *delta) *delta {
	if top.len() == 0 {
		return d
	}
	if d.len() == 0 {
		return top
	}
	nd := &delta{
		keys:  make([]core.Key, 0, d.len()+top.len()),
		vals:  make([]uint64, 0, d.len()+top.len()),
		tombs: make([]bool, 0, d.len()+top.len()),
	}
	i, j := 0, 0
	for i < d.len() || j < top.len() {
		if j >= top.len() || (i < d.len() && d.keys[i] < top.keys[j]) {
			nd.keys = append(nd.keys, d.keys[i])
			nd.vals = append(nd.vals, d.vals[i])
			nd.tombs = append(nd.tombs, d.tombs[i])
			i++
			continue
		}
		if i < d.len() && d.keys[i] == top.keys[j] {
			i++
		}
		nd.keys = append(nd.keys, top.keys[j])
		nd.vals = append(nd.vals, top.vals[j])
		nd.tombs = append(nd.tombs, top.tombs[j])
		j++
	}
	return nd
}

// sizeBytes reports the delta's memory footprint.
func (d *delta) sizeBytes() int { return d.len() * 17 } // 8B key + 8B val + 1B tomb

// mergeDelta merges a base run with a delta into a fresh sorted run:
// delta entries shadow every base occurrence of their key (duplicate
// base runs collapse to the single upserted value) and tombstoned keys
// are dropped. The inputs are not modified.
func mergeDelta(bk []core.Key, bv []uint64, d *delta) ([]core.Key, []uint64) {
	outK := make([]core.Key, 0, len(bk)+d.len())
	outV := make([]uint64, 0, len(bk)+d.len())
	i, j := 0, 0
	for i < len(bk) || j < d.len() {
		if j >= d.len() || (i < len(bk) && bk[i] < d.keys[j]) {
			outK = append(outK, bk[i])
			outV = append(outV, bv[i])
			i++
			continue
		}
		x := d.keys[j]
		for i < len(bk) && bk[i] == x {
			i++ // shadowed by the delta entry
		}
		if !d.tombs[j] {
			outK = append(outK, x)
			outV = append(outV, d.vals[j])
		}
		j++
	}
	return outK, outV
}

// mergeLayer is one sorted input of a K-way shard merge: a run's (or
// delta's) key/payload arrays plus optional parallel tombstone bits.
// Only the oldest layer (the shard's base run) may contain duplicate
// keys; every other layer is unique-keyed.
type mergeLayer struct {
	keys  []core.Key
	vals  []uint64
	tombs []bool // nil = no tombstones
}

func runLayer(t *table.Table) mergeLayer {
	return mergeLayer{keys: t.Keys(), vals: t.Payloads(), tombs: t.Tombs()}
}

func deltaLayer(d *delta) mergeLayer {
	return mergeLayer{keys: d.keys, vals: d.vals, tombs: d.tombs}
}

// mergeVisit walks the merged view of layers (ordered oldest first;
// the newest layer holding a key wins) in ascending key order, calling
// visit once per surviving pair. When the oldest layer wins, each of
// its duplicate occurrences is visited individually — matching the
// shape of a base run, where duplicates are original data. Tombstoned
// winners are visited with tomb=true (never skipped here: a minor
// merge must carry tombstones forward, and counting callers must see
// them). Returns false when visit stopped the walk early.
func mergeVisit(layers []mergeLayer, visit func(k core.Key, v uint64, tomb bool) bool) bool {
	idx := make([]int, len(layers))
	for {
		// Smallest key among the layer heads.
		var x core.Key
		have := false
		for l := range layers {
			if idx[l] >= len(layers[l].keys) {
				continue
			}
			if k := layers[l].keys[idx[l]]; !have || k < x {
				x, have = k, true
			}
		}
		if !have {
			return true
		}
		// Newest layer holding x wins; everyone consumes x.
		winner := -1
		for l := range layers {
			if idx[l] < len(layers[l].keys) && layers[l].keys[idx[l]] == x {
				winner = l
			}
		}
		for l := range layers {
			ly := &layers[l]
			n := 0
			for idx[l]+n < len(ly.keys) && ly.keys[idx[l]+n] == x {
				n++
			}
			if l == winner {
				emit := 1
				if l == 0 {
					emit = n // base duplicates are original data: emit each
				}
				for e := 0; e < emit; e++ {
					p := idx[l] + e
					tomb := ly.tombs != nil && ly.tombs[p]
					if !visit(x, ly.vals[p], tomb) {
						return false
					}
				}
			}
			idx[l] += n
		}
	}
}

// mergeLayers materializes the merged view of layers into fresh
// arrays. With dropTombs (a major merge into the base run) tombstoned
// keys are omitted and the returned tombs is nil; without it (a minor
// merge of upper tiers, which must keep shadowing the base) the
// winners' tombstone bits are carried through, with an all-false array
// normalized to nil.
func mergeLayers(layers []mergeLayer, dropTombs bool) ([]core.Key, []uint64, []bool) {
	n := 0
	for _, l := range layers {
		n += len(l.keys)
	}
	outK := make([]core.Key, 0, n)
	outV := make([]uint64, 0, n)
	var outT []bool
	if !dropTombs {
		outT = make([]bool, 0, n)
	}
	any := false
	mergeVisit(layers, func(k core.Key, v uint64, tomb bool) bool {
		if tomb && dropTombs {
			return true
		}
		outK = append(outK, k)
		outV = append(outV, v)
		if !dropTombs {
			outT = append(outT, tomb)
			any = any || tomb
		}
		return true
	})
	if !any {
		outT = nil
	}
	return outK, outV, outT
}

// shardState is the atomically published read view of one shard: the
// ordered run set (oldest first; runs[0] is the base run and the only
// one allowed duplicate keys, newer runs shadow older ones and may
// carry tombstones), the active delta absorbing writes, and (while a
// compaction is in flight) the frozen delta being flushed or merged.
// Every transition — write, freeze, flush, merge, replace — installs a
// fresh shardState under the shard's write lock, so a reader's single
// atomic load always observes a mutually consistent view. runIDs names
// each run's index catalog entry (the manifest codec tag), parallel to
// runs.
type shardState struct {
	runs   []*table.Table
	runIDs []string
	del    *delta // active delta; emptyDelta when clean, never nil
	frozen *delta // delta being compacted; nil when no merge in flight
}

// base returns the shard's base run.
func (s *shardState) base() *table.Table { return s.runs[0] }

// single reports whether reads can use the one-run fast path: exactly
// the base run, which never carries tombstones.
func (s *shardState) single() bool { return len(s.runs) == 1 }

// pending returns the newest pending write for key, consulting the
// active delta first (newer writes shadow frozen ones).
func (s *shardState) pending(x core.Key) (val uint64, tomb, ok bool) {
	if v, tb, hit := s.del.get(x); hit {
		return v, tb, true
	}
	if s.frozen != nil {
		if v, tb, hit := s.frozen.get(x); hit {
			return v, tb, true
		}
	}
	return 0, false, false
}

// deltaLen reports the shard's pending entries across both buffers.
func (s *shardState) deltaLen() int {
	n := s.del.len()
	if s.frozen != nil {
		n += s.frozen.len()
	}
	return n
}

// get serves a merged point read: pending writes shadow the runs,
// newer runs shadow older. probes reports the number of runs probed on
// the multi-run path (0 when the fast path answered) — the numerator
// of the shard's measured read amplification.
func (s *shardState) get(x core.Key) (val uint64, found bool, probes int) {
	if v, tomb, ok := s.pending(x); ok {
		if tomb {
			return 0, false, 0
		}
		return v, true, 0
	}
	if s.single() {
		v, ok := s.base().Get(x)
		return v, ok, 0
	}
	return table.GetRuns(s.runs, x)
}

// getBatch serves a merged batched read into out, with scratch (at
// least len(keys) long) as working space for per-key found bits on the
// multi-run path. A single-run shard takes the base table's batched
// fast path and overlays the (small, bounded) deltas; a tiered shard
// probes the run set newest-first through table.GetBatchRuns. probes
// reports the run probes issued (0 on the fast path).
func (s *shardState) getBatch(keys []core.Key, out []uint64, scratch []bool) (found, probes int) {
	if s.single() {
		found = s.base().GetBatch(keys, out)
		if s.del.len() == 0 && s.frozen == nil {
			return found, 0
		}
		for i, x := range keys {
			v, tomb, ok := s.pending(x)
			if !ok {
				continue
			}
			if _, inBase := s.base().Get(x); inBase {
				found--
			}
			if tomb {
				out[i] = 0
			} else {
				out[i] = v
				found++
			}
		}
		return found, 0
	}
	found, probes = table.GetBatchRuns(s.runs, keys, out, scratch)
	if s.del.len() == 0 && s.frozen == nil {
		return found, probes
	}
	for i, x := range keys {
		v, tomb, ok := s.pending(x)
		if !ok {
			continue
		}
		if scratch[i] {
			found--
		}
		if tomb {
			out[i], scratch[i] = 0, false
		} else {
			out[i], scratch[i] = v, true
			found++
		}
	}
	return found, probes
}

// getBatchFound is getBatch plus per-key found bits, resolved against
// this same shard snapshot: out alone cannot distinguish a zero payload
// from absence.
func (s *shardState) getBatchFound(keys []core.Key, out []uint64, found []bool) (n, probes int) {
	if !s.single() {
		// The multi-run path materializes found bits anyway; resolve
		// them straight into the caller's array.
		return s.getBatch(keys, out, found)
	}
	n, _ = s.getBatch(keys, out, nil)
	for i, x := range keys {
		if out[i] != 0 {
			found[i] = true
			continue
		}
		if _, tomb, ok := s.pending(x); ok {
			found[i] = !tomb // a pending non-tombstone zero is present
		} else {
			_, found[i] = s.base().Get(x)
		}
	}
	return n, 0
}

// scanLayers assembles the shard's merge layers for [lo, hi), ordered
// oldest first: base run, newer runs, frozen delta, active delta.
func (s *shardState) scanLayers(lo, hi core.Key) []mergeLayer {
	layers := make([]mergeLayer, 0, len(s.runs)+2)
	for _, t := range s.runs {
		k, v, tb := t.RangeTombed(lo, hi)
		layers = append(layers, mergeLayer{keys: k, vals: v, tombs: tb})
	}
	if s.frozen != nil {
		k, v, tb := s.frozen.window(lo, hi)
		layers = append(layers, mergeLayer{keys: k, vals: v, tombs: tb})
	}
	k, v, tb := s.del.window(lo, hi)
	layers = append(layers, mergeLayer{keys: k, vals: v, tombs: tb})
	return layers
}

// scan visits the shard's live pairs with key in [lo, hi) in ascending
// order: a K-way merge of active delta, frozen delta, and the run set
// with newest-wins precedence, tombstones dropping their key, and
// duplicate base keys collapsed to their first occurrence. Returns
// false when visit stopped the scan.
func (s *shardState) scan(lo, hi core.Key, visit func(core.Key, uint64) bool) bool {
	var lastKey core.Key
	haveLast := false
	return mergeVisit(s.scanLayers(lo, hi), func(k core.Key, v uint64, tomb bool) bool {
		if tomb {
			return true
		}
		if haveLast && k == lastKey {
			return true // duplicate base occurrence: first one was visited
		}
		lastKey, haveLast = k, true
		return visit(k, v)
	})
}

// liveLen reports the shard's live pair count. The single-run shape
// (base length adjusted by each pending entry's effect — a tombstone
// removes every base occurrence of its key, an upsert collapses a
// duplicate run to one pair or adds a new key) costs one base probe
// per pending entry; a tiered shard pays a full merge walk instead,
// counting pairs exactly as a major merge would emit them.
func (s *shardState) liveLen() int {
	if !s.single() {
		n := 0
		mergeVisit(s.scanLayers(0, ^core.Key(0)), func(k core.Key, v uint64, tomb bool) bool {
			if !tomb {
				n++
			}
			return true
		})
		// The max key is excluded from the [0, ^0) window; count it by hand.
		n += s.liveCountKey(^core.Key(0))
		return n
	}
	n := s.base().Len()
	f := s.frozen
	if f == nil {
		f = emptyDelta
	}
	a := s.del
	i, j := 0, 0
	for i < a.len() || j < f.len() {
		var x core.Key
		var tomb bool
		if j >= f.len() || (i < a.len() && a.keys[i] <= f.keys[j]) {
			x, tomb = a.keys[i], a.tombs[i]
			if j < f.len() && f.keys[j] == x {
				j++
			}
			i++
		} else {
			x, tomb = f.keys[j], f.tombs[j]
			j++
		}
		c := s.base().CountKey(x)
		switch {
		case tomb:
			n -= c
		case c == 0:
			n++
		default:
			n -= c - 1
		}
	}
	return n
}

// liveCountKey reports the live occurrence count of exactly key x
// (newest-wins across deltas and runs; base duplicates count
// individually when the base wins).
func (s *shardState) liveCountKey(x core.Key) int {
	if v, tomb, ok := s.pending(x); ok {
		_ = v
		if tomb {
			return 0
		}
		return 1
	}
	for r := len(s.runs) - 1; r >= 1; r-- {
		if pos, hit := s.runs[r].Find(x); hit {
			if s.runs[r].TombAt(pos) {
				return 0
			}
			return 1
		}
	}
	return s.base().CountKey(x)
}
