// Package indextest provides shared validity-checking helpers for
// index-structure test suites. Every index in the benchmark promises
// the same contract — bounds containing the lower bound for arbitrary
// lookup keys, present or absent, including the extremes of the key
// space — so the oracle-driven probing logic lives here once and each
// structure's tests call it over the benchmark datasets. A structure
// that passes these checks can be dropped into the registry, the
// table layer, and the serving store without further integration work.
package indextest

import (
	"testing"

	"repro/internal/core"
)

// ProbesFor builds a thorough probe set for a sorted key array: every
// key, its absent neighbours, and the extremes of the key space.
func ProbesFor(keys []core.Key) []core.Key {
	probes := make([]core.Key, 0, 3*len(keys)+4)
	for _, k := range keys {
		probes = append(probes, k, k+1)
		if k > 0 {
			probes = append(probes, k-1)
		}
	}
	probes = append(probes, 0, 1, ^core.Key(0), ^core.Key(0)-1)
	return probes
}

// CheckValidity fails the test if idx returns an invalid bound for any
// probe key.
func CheckValidity(t *testing.T, idx core.Index, keys []core.Key, probes []core.Key) {
	t.Helper()
	for _, x := range probes {
		b := idx.Lookup(x)
		if !core.ValidBound(keys, x, b) {
			t.Fatalf("%s: invalid bound %v for key %d (lb=%d, n=%d)",
				idx.Name(), b, x, core.LowerBound(keys, x), len(keys))
			return
		}
	}
}

// CheckBuilder builds idx from the builder and runs the full validity
// probe; it returns the built index for further assertions.
func CheckBuilder(t *testing.T, b core.Builder, keys []core.Key) core.Index {
	t.Helper()
	idx, err := b.Build(keys)
	if err != nil {
		t.Fatalf("%s: build: %v", b.Name(), err)
	}
	CheckValidity(t, idx, keys, ProbesFor(keys))
	return idx
}
