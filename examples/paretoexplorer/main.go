// Pareto explorer: sweep every index family over a chosen dataset and
// print the Pareto-optimal (size, latency) frontier — the analysis
// behind the paper's Figure 7, exposed as a library workflow.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"repro/internal/bench"
	"repro/internal/dataset"
	"repro/internal/registry"
	"repro/internal/search"
)

type point struct {
	family, label string
	sizeMB        float64
	ns            float64
}

func main() {
	name := flag.String("dataset", "amzn", "dataset: amzn, face, osm, wiki")
	n := flag.Int("n", 200_000, "dataset size")
	flag.Parse()

	env, err := bench.NewEnv(dataset.Name(*name), *n, *n/10, 42)
	if err != nil {
		log.Fatal(err)
	}

	var pts []point
	for _, family := range registry.ParetoFamilies {
		for _, nb := range registry.Sweep(family, env.Keys) {
			idx, err := nb.Builder.Build(env.Keys)
			if err != nil {
				continue
			}
			m := bench.MeasureWarm(env, idx, search.BinarySearch)
			pts = append(pts, point{family, nb.Label, bench.MB(idx.SizeBytes()), m.NsPerLookup})
		}
	}

	// Pareto filter: keep points with no strictly smaller AND faster
	// alternative.
	sort.Slice(pts, func(i, j int) bool { return pts[i].sizeMB < pts[j].sizeMB })
	var frontier []point
	bestNs := -1.0
	for _, p := range pts {
		if bestNs < 0 || p.ns < bestNs {
			frontier = append(frontier, p)
			bestNs = p.ns
		}
	}

	fmt.Printf("Pareto frontier for %s (%d keys): %d of %d configurations\n",
		*name, *n, len(frontier), len(pts))
	fmt.Printf("%-8s %-26s %12s %12s\n", "index", "config", "size(MB)", "ns/lookup")
	for _, p := range frontier {
		fmt.Printf("%-8s %-26s %12.4f %12.1f\n", p.family, p.label, p.sizeMB, p.ns)
	}
}
