// Package dataset generates the four benchmark datasets of the paper
// (Section 4.1.2) as synthetic equivalents with matched CDF character,
// plus lookup workloads and payloads.
//
// The paper's datasets are real-world snapshots (Amazon book
// popularity, Facebook user IDs, OSM cell IDs, Wikipedia edit
// timestamps) that are unavailable offline. Each generator here
// reproduces the property of its original that the paper's analysis
// depends on; see DESIGN.md for the substitution rationale.
//
// All keys are unique, sorted uint64 values; all generators are
// deterministic in their seed.
package dataset

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/core"
)

// Name identifies one of the benchmark datasets.
type Name string

const (
	// Amzn mimics Amazon book-popularity keys: a globally smooth,
	// highly learnable CDF with mild local noise.
	Amzn Name = "amzn"
	// Face mimics Facebook user IDs: near-uniform keys plus ~100
	// extreme outliers at the top of the 64-bit range, which wreck
	// radix-table prefixes (the paper's RBS collapse).
	Face Name = "face"
	// OSM mimics OpenStreetMap cell IDs: clustered 2-D locations
	// projected through a Hilbert curve, yielding a locally-erratic,
	// hard-to-learn CDF.
	OSM Name = "osm"
	// Wiki mimics Wikipedia edit timestamps: monotone arrival times
	// with bursty rates and daily periodicity; smooth at large scale
	// with fine-grained structure.
	Wiki Name = "wiki"
)

// All lists the benchmark datasets in the paper's order.
func All() []Name { return []Name{Amzn, Face, OSM, Wiki} }

// DefaultN is the default dataset size. The paper uses 200M keys; this
// reproduction defaults to laptop-scale (see DESIGN.md substitution 2)
// and scales linearly via the harness -scale flag.
const DefaultN = 2_000_000

// FaceOutliers is the number of extreme outlier keys in the face
// dataset, matching the paper's "≈ 100 large outlier keys".
const FaceOutliers = 100

// Generate produces the named dataset with n unique sorted keys.
func Generate(name Name, n int, seed uint64) ([]core.Key, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataset: n must be positive, got %d", n)
	}
	switch name {
	case Amzn:
		return genAmzn(n, seed), nil
	case Face:
		return genFace(n, seed), nil
	case OSM:
		return genOSM(n, seed), nil
	case Wiki:
		return genWiki(n, seed), nil
	default:
		return nil, fmt.Errorf("dataset: unknown dataset %q", name)
	}
}

// MustGenerate is Generate but panics on error; for benchmarks and
// examples where the name is a compile-time constant.
func MustGenerate(name Name, n int, seed uint64) []core.Key {
	keys, err := Generate(name, n, seed)
	if err != nil {
		panic(err)
	}
	return keys
}

// genAmzn builds a smooth popularity-style key set: key values are the
// cumulative sums of positive gaps whose scale drifts slowly (regions
// of locally-linear CDF the paper notes learned structures exploit),
// with mild lognormal noise per gap.
func genAmzn(n int, seed uint64) []core.Key {
	r := newRNG(seed ^ 0xA3A3)
	keys := make([]core.Key, n)
	cur := uint64(1)
	// Slowly drifting gap scale: piecewise segments of ~n/64 keys with
	// gap means that random-walk between 8 and 4096.
	logScale := 5.0 // log2 of mean gap
	segLen := n/64 + 1
	for i := 0; i < n; i++ {
		if i%segLen == 0 {
			logScale += r.norm() * 0.8
			if logScale < 3 {
				logScale = 3
			}
			if logScale > 12 {
				logScale = 12
			}
		}
		mean := math.Exp2(logScale)
		gap := uint64(mean*r.lognorm(0, 0.35)) + 1
		cur += gap
		keys[i] = cur
	}
	return keys
}

// genFace builds near-uniform unique IDs in a mid-range span, then
// replaces the top FaceOutliers keys with extreme outliers in
// (2^59, 2^64), reproducing the paper's prefix-killing skew.
func genFace(n int, seed uint64) []core.Key {
	r := newRNG(seed ^ 0xFACE)
	span := uint64(1) << 50
	keys := uniqueUniform(r, n, 1, span)
	outliers := FaceOutliers
	if outliers > n/2 {
		outliers = n / 2
	}
	lo := uint64(1) << 59
	hi := ^uint64(0)
	for i := 0; i < outliers; i++ {
		keys[n-outliers+i] = lo + r.next()%(hi-lo)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	dedupeInPlaceFill(r, keys, 1, hi)
	return keys
}

// genOSM builds clustered 2-D points (Gaussian clusters on a 2^24 grid,
// mimicking cities and road networks) and projects them through a
// Hilbert curve of order 24, yielding 48-bit cell IDs whose CDF is
// smooth at a distance but erratic at every local scale.
func genOSM(n int, seed uint64) []core.Key {
	r := newRNG(seed ^ 0x05E5)
	const order = 24
	grid := uint64(1) << order
	nClusters := 512
	type cluster struct {
		cx, cy  float64
		sd      float64
		weight  float64
		cumulat float64
	}
	clusters := make([]cluster, nClusters)
	total := 0.0
	for i := range clusters {
		c := &clusters[i]
		c.cx = r.float64() * float64(grid)
		c.cy = r.float64() * float64(grid)
		// Cluster spread varies over three orders of magnitude:
		// dense cities to sparse rural regions.
		c.sd = math.Exp2(6 + r.float64()*12)
		c.weight = r.exp() * r.exp() // heavy-ish tail of cluster sizes
		total += c.weight
		c.cumulat = total
	}
	pick := func() *cluster {
		t := r.float64() * total
		lo, hi := 0, nClusters-1
		for lo < hi {
			mid := (lo + hi) / 2
			if clusters[mid].cumulat < t {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return &clusters[lo]
	}
	seen := make(map[uint64]struct{}, n+n/8)
	keys := make([]core.Key, 0, n)
	for len(keys) < n {
		c := pick()
		x := int64(c.cx + r.norm()*c.sd)
		y := int64(c.cy + r.norm()*c.sd)
		if x < 0 || y < 0 || x >= int64(grid) || y >= int64(grid) {
			continue
		}
		d := hilbertD2(order, uint64(x), uint64(y))
		if _, dup := seen[d]; dup {
			continue
		}
		seen[d] = struct{}{}
		keys = append(keys, d)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// genWiki builds timestamp-style keys: second-resolution arrival times
// with a bursty, periodically modulated rate. The result is monotone
// with smooth large-scale shape and dense/sparse alternation locally.
func genWiki(n int, seed uint64) []core.Key {
	r := newRNG(seed ^ 0x3171)
	keys := make([]core.Key, n)
	// Start around 2001-01-15 in seconds.
	cur := float64(979_516_800)
	burst := 1.0
	for i := 0; i < n; i++ {
		if r.float64() < 0.001 {
			// Regime switch: edit storms and lulls.
			burst = math.Exp2(r.float64()*6 - 3)
		}
		// Daily periodicity on top of the burst level.
		phase := math.Sin(cur / 86400 * 2 * math.Pi)
		rate := burst * (1.2 + phase)
		if rate < 0.05 {
			rate = 0.05
		}
		cur += r.exp()/rate + 0.001
		keys[i] = core.Key(cur * 1000) // millisecond resolution keeps keys unique
	}
	// The additive 0.001s step guarantees strict monotonicity at ms
	// resolution, but verify and repair defensively.
	for i := 1; i < n; i++ {
		if keys[i] <= keys[i-1] {
			keys[i] = keys[i-1] + 1
		}
	}
	return keys
}

// uniqueUniform draws n unique uniform keys in [lo, hi).
func uniqueUniform(r *rng, n int, lo, hi uint64) []core.Key {
	seen := make(map[uint64]struct{}, n+n/8)
	keys := make([]core.Key, 0, n)
	span := hi - lo
	for len(keys) < n {
		k := lo + r.next()%span
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		keys = append(keys, k)
	}
	return keys
}

// dedupeInPlaceFill repairs any duplicates introduced by outlier
// injection: duplicates are nudged to unused values and the slice is
// re-sorted. Duplicates are vanishingly rare; this keeps the contract
// that datasets contain unique keys.
func dedupeInPlaceFill(r *rng, keys []core.Key, lo, hi uint64) {
	for {
		dup := false
		for i := 1; i < len(keys); i++ {
			if keys[i] == keys[i-1] {
				keys[i] = lo + r.next()%(hi-lo)
				dup = true
			}
		}
		if !dup {
			return
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	}
}

// Lookups samples m lookup keys uniformly from keys (with repetition),
// matching the paper's workload of random lookups of present keys.
func Lookups(keys []core.Key, m int, seed uint64) []core.Key {
	r := newRNG(seed ^ 0x100C)
	out := make([]core.Key, m)
	for i := range out {
		out[i] = keys[r.intn(len(keys))]
	}
	return out
}

// AbsentLookups samples m lookup keys that are not present in keys by
// perturbing present keys; useful for validity testing of absent-key
// bounds.
func AbsentLookups(keys []core.Key, m int, seed uint64) []core.Key {
	r := newRNG(seed ^ 0xAB5E)
	out := make([]core.Key, 0, m)
	for len(out) < m {
		k := keys[r.intn(len(keys))] + 1 + uint64(r.intn(3))
		i := core.LowerBound(keys, k)
		if i < len(keys) && keys[i] == k {
			continue
		}
		out = append(out, k)
	}
	return out
}

// Payloads generates n pseudo-random 8-byte payload values. The paper
// attaches 8-byte payloads to every key and sums them during lookups to
// keep results honest.
func Payloads(n int, seed uint64) []uint64 {
	r := newRNG(seed ^ 0x9A71)
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.next()
	}
	return out
}

// To32 rescales 64-bit keys into unique sorted 32-bit keys for the
// key-size experiment (Section 4.2.2), preserving the CDF shape by
// rank-preserving compression into the 32-bit range.
func To32(keys []core.Key) []core.Key32 {
	n := len(keys)
	out := make([]core.Key32, n)
	if n == 0 {
		return out
	}
	minK, maxK := keys[0], keys[n-1]
	span := float64(maxK - minK)
	if span == 0 {
		span = 1
	}
	const maxU32 = float64(^uint32(0) - 1)
	prev := int64(-1)
	for i, k := range keys {
		v := int64(float64(k-minK) / span * maxU32)
		if v <= prev {
			v = prev + 1 // preserve strict ordering/uniqueness
		}
		prev = v
		out[i] = core.Key32(v)
	}
	return out
}

// CDF returns m evenly spaced (key, relative position) samples of the
// dataset's CDF, for Figure 6.
func CDF(keys []core.Key, m int) (xs []core.Key, ys []float64) {
	n := len(keys)
	if m > n {
		m = n
	}
	if n == 0 || m <= 0 {
		return nil, nil
	}
	xs = make([]core.Key, m)
	ys = make([]float64, m)
	if m == 1 || n == 1 {
		xs[0], ys[0] = keys[0], 0
		return xs[:1], ys[:1]
	}
	for i := 0; i < m; i++ {
		idx := i * (n - 1) / (m - 1)
		xs[i] = keys[idx]
		ys[i] = float64(idx) / float64(n-1)
	}
	return xs, ys
}

// Checksum fingerprints a key set: FNV-1a over the little-endian key
// bytes, deterministic across runs and platforms. It is the dataset
// identity printed in startup summaries and recorded in run metadata.
func Checksum(keys []core.Key) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, k := range keys {
		for i := 0; i < 8; i++ {
			b[i] = byte(k >> (8 * i))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}
