// Package core defines the search-bound formulation of index structures
// used throughout the benchmark, following Section 2 of "Benchmarking
// Learned Indexes" (Marcus et al., VLDB 2020).
//
// An index structure over a zero-indexed sorted array D maps an integer
// lookup key x to a search bound [Lo, Hi) that is guaranteed to contain
// the lower bound of x: the position of the smallest key in D that is
// greater than or equal to x. A last-mile search (package search) then
// locates the exact position within the bound.
package core

import "fmt"

// Key is the canonical key type of the benchmark: an unsigned 64-bit
// integer, as in the SOSD datasets. 32-bit experiments use Key32.
type Key = uint64

// Key32 is the key type for the 32-bit experiments (Section 4.2.2).
type Key32 = uint32

// Bound is a half-open search range [Lo, Hi) of positions into the
// underlying sorted array. A valid bound for lookup key x satisfies
// Lo <= LowerBound(x) < Hi (with Hi clamped to len(D) by convention,
// and LowerBound(x) == len(D) represented as Lo == Hi == len(D)).
type Bound struct {
	Lo, Hi int
}

// Width reports the number of positions covered by the bound.
func (b Bound) Width() int { return b.Hi - b.Lo }

// String implements fmt.Stringer.
func (b Bound) String() string { return fmt.Sprintf("[%d,%d)", b.Lo, b.Hi) }

// Clamp restricts the bound to [0, n], preserving Lo <= Hi.
func (b Bound) Clamp(n int) Bound {
	if b.Lo < 0 {
		b.Lo = 0
	}
	if b.Hi > n {
		b.Hi = n
	}
	if b.Lo > b.Hi {
		b.Lo = b.Hi
	}
	return b
}

// Index is an approximate index structure over a sorted array of keys:
// it maps any possible lookup key to a search bound containing the
// key's lower bound. Implementations never return invalid bounds.
type Index interface {
	// Lookup returns a search bound for key. The bound is half-open,
	// clamped to [0, n] where n is the size of the indexed array, and
	// contains the lower bound of key.
	Lookup(key Key) Bound

	// SizeBytes reports the in-memory footprint of the index structure
	// itself, excluding the underlying data array, in bytes. This is
	// the size axis of the paper's Pareto plots.
	SizeBytes() int

	// Name identifies the structure family (e.g. "RMI", "PGM", "BTree").
	Name() string
}

// BatchIndex is an optional extension of Index for structures that can
// amortize bound prediction over a batch of lookup keys (model
// evaluation without per-key interface dispatch, table loads batched
// for the hardware prefetcher). The serving layer uses it when
// available; LookupBatch provides the generic fallback.
type BatchIndex interface {
	Index

	// LookupBatch fills out[i] with a valid search bound for keys[i].
	// len(out) must be >= len(keys). Each bound satisfies the same
	// contract as Lookup.
	LookupBatch(keys []Key, out []Bound)
}

// LookupBatch computes search bounds for a batch of keys, using the
// index's vectorized path when it implements BatchIndex and a scalar
// loop otherwise.
func LookupBatch(idx Index, keys []Key, out []Bound) {
	if bi, ok := idx.(BatchIndex); ok {
		bi.LookupBatch(keys, out)
		return
	}
	for i, x := range keys {
		out[i] = idx.Lookup(x)
	}
}

// Builder constructs an index over a sorted key array. Builders carry
// the structure's tuning configuration (error bounds, branching factors,
// subset-insertion stride, ...), so one Builder value corresponds to one
// point on the paper's size/performance tradeoff curves.
type Builder interface {
	// Build constructs the index. keys must be sorted ascending;
	// duplicates are allowed. The returned index must be valid for
	// every possible lookup key (not only keys present in the array).
	Build(keys []Key) (Index, error)

	// Name identifies the structure family this builder constructs.
	Name() string
}

// LowerBound returns the position of the smallest key in keys that is
// greater than or equal to x, or len(keys) if no such key exists. This
// matches the C++ std::lower_bound semantics adopted by the paper and
// is the reference oracle against which all indexes are validated.
func LowerBound(keys []Key, x Key) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// LowerBound32 is LowerBound for 32-bit keys.
func LowerBound32(keys []Key32, x Key32) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ValidBound reports whether bound b is a correct search bound for
// lookup key x over keys: it must be clamped to [0, len(keys)] and
// contain the lower bound of x. When the lower bound is len(keys)
// (x greater than every key), any bound with Hi == len(keys) is
// accepted, matching the paper's special case LB(max D) = |D|.
func ValidBound(keys []Key, x Key, b Bound) bool {
	n := len(keys)
	if b.Lo < 0 || b.Hi > n || b.Lo > b.Hi {
		return false
	}
	lb := LowerBound(keys, x)
	if lb == n {
		return b.Hi == n
	}
	return b.Lo <= lb && lb < b.Hi
}

// IsSorted reports whether keys is sorted in ascending order
// (duplicates allowed).
func IsSorted(keys []Key) bool {
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return false
		}
	}
	return true
}

// FullBound returns the trivial always-valid bound [0, n).
func FullBound(n int) Bound { return Bound{0, n} }

// BoundAround builds a clamped bound centred on a predicted position
// pos with error margins errLo below and errHi above (both inclusive
// margins, so the bound is [pos-errLo, pos+errHi+1) before clamping).
// It is the common path by which learned structures turn a CDF estimate
// plus error bound into a search bound.
func BoundAround(pos, errLo, errHi, n int) Bound {
	// Clamping the prediction into [0, n] never invalidates the error
	// contract: the true lower bound lies in [0, n], so moving pos
	// toward that range only brings it closer.
	if pos < 0 {
		pos = 0
	}
	if pos > n {
		pos = n
	}
	lo := pos - errLo
	hi := pos + errHi + 1
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if lo > hi {
		lo = hi
	}
	return Bound{lo, hi}
}
