package load

import (
	"repro/internal/core"
	"repro/internal/dataset"
)

// MixedOps builds a YCSB-style operation stream over a sorted key set:
// n operations of which a readFrac fraction are point reads of present
// keys drawn under a scrambled-zipfian distribution with parameter
// theta (theta <= 0 degrades to uniform), and the rest are writes
// alternating between inserting a fresh absent key and updating a
// distribution-drawn present one. Reads and writes interleave at the
// exact ratio (Bresenham scheduling), matching bench.MeasureMixed, so
// write-triggered compactions land mid-read-stream as in a live
// system. Deterministic in seed.
func MixedOps(keys []core.Key, n int, readFrac, theta float64, seed uint64) []Op {
	if readFrac < 0 {
		readFrac = 0
	}
	if readFrac > 1 {
		readFrac = 1
	}
	readKeys := dataset.ZipfLookups(keys, n, theta, seed)
	nWrites := n - int(float64(n)*readFrac)
	var inserts []core.Key
	if nWrites > 0 {
		inserts = dataset.InsertKeys(keys, nWrites/2+1, seed+1)
	}

	ops := make([]Op, 0, n)
	ri, wi, ii := 0, 0, 0
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += readFrac
		if acc >= 1 {
			acc--
			ops = append(ops, Op{Kind: Get, Key: readKeys[ri]})
			ri++
			continue
		}
		var key core.Key
		if wi%2 == 0 {
			key = inserts[ii]
			ii++
		} else {
			key = readKeys[(ri+wi)%len(readKeys)]
		}
		ops = append(ops, Op{Kind: Put, Key: key, Payload: uint64(i) | 1})
		wi++
	}
	return ops
}
