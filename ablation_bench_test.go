package repro

// Ablation benchmarks for the design choices DESIGN.md calls out:
// these probe *why* the headline results look the way they do, beyond
// the paper's own figures.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/pgm"
	"repro/internal/registry"
	"repro/internal/rmi"
	"repro/internal/rs"
	"repro/internal/search"
)

// BenchmarkAblationRMIStage2 compares second-stage model classes at a
// fixed branching factor: the flexibility the paper credits the RMI
// with (Section 3.4, "Model types").
func BenchmarkAblationRMIStage2(b *testing.B) {
	for _, name := range []dataset.Name{dataset.Amzn, dataset.OSM} {
		e := benchEnv(b, name)
		for _, kind := range []rmi.ModelKind{rmi.ModelLinear, rmi.ModelLinearSpline, rmi.ModelCubic} {
			cfg := rmi.Config{Stage1: rmi.ModelLinear, Stage2: kind, Branch: 1024}
			idx, err := rmi.New(e.Keys, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/stage2=%v", name, kind), func(b *testing.B) {
				b.ReportMetric(idx.AvgLog2Error(), "log2err")
				lookupLoop(b, e, idx, search.BinarySearch)
			})
		}
	}
}

// BenchmarkAblationRMIBranch sweeps the branching factor: inference
// cost stays flat while log2 error falls, the tradeoff CDFShop tunes.
func BenchmarkAblationRMIBranch(b *testing.B) {
	e := benchEnv(b, dataset.Amzn)
	for _, branch := range []int{64, 512, 4096, 32768} {
		cfg := rmi.Config{Stage1: rmi.ModelLinear, Stage2: rmi.ModelLinear, Branch: branch}
		idx, err := rmi.New(e.Keys, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("B=%d", branch), func(b *testing.B) {
			b.ReportMetric(idx.AvgLog2Error(), "log2err")
			lookupLoop(b, e, idx, search.BinarySearch)
		})
	}
}

// BenchmarkAblationRSKnobs isolates RadixSpline's two knobs: on skewed
// data (face), radix bits buy little because the prefix space
// collapses, while spline error still works.
func BenchmarkAblationRSKnobs(b *testing.B) {
	for _, name := range []dataset.Name{dataset.Amzn, dataset.Face} {
		e := benchEnv(b, name)
		for _, cfg := range []rs.Config{
			{SplineErr: 256, RadixBits: 8},
			{SplineErr: 256, RadixBits: 20},
			{SplineErr: 8, RadixBits: 8},
			{SplineErr: 8, RadixBits: 20},
		} {
			idx, err := rs.New(e.Keys, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/%v", name, cfg), func(b *testing.B) {
				lookupLoop(b, e, idx, search.BinarySearch)
			})
		}
	}
}

// BenchmarkAblationPGMLevels shows the inter-layer search cost the
// paper's Section 3.4 discussion attributes PGM's slowdown to: as
// epsilon shrinks, levels multiply and each adds a dependent search.
func BenchmarkAblationPGMLevels(b *testing.B) {
	e := benchEnv(b, dataset.OSM)
	for _, eps := range []int{4, 16, 64, 256, 1024} {
		idx, err := pgm.New(e.Keys, eps)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("eps=%d", eps), func(b *testing.B) {
			b.ReportMetric(float64(idx.NumLevels()), "levels")
			b.ReportMetric(float64(idx.NumSegments()), "segments")
			lookupLoop(b, e, idx, search.BinarySearch)
		})
	}
}

// BenchmarkAblationLastMileCrossover locates the bound width where
// linear search overtakes binary search — the threshold behind the
// paper's Figure 11 observation that binary wins at realistic widths.
func BenchmarkAblationLastMileCrossover(b *testing.B) {
	e := benchEnv(b, dataset.Amzn)
	for _, width := range []int{4, 8, 16, 32, 64, 256} {
		// Fixed-width bounds centred on the true position.
		bounds := make([]core.Bound, len(e.Lookups))
		for i, x := range e.Lookups {
			lb := core.LowerBound(e.Keys, x)
			bounds[i] = core.BoundAround(lb, width/2, width/2, len(e.Keys))
		}
		for _, kind := range []search.Kind{search.Binary, search.Linear} {
			fn := search.ByKind(kind)
			b.Run(fmt.Sprintf("w=%d/%s", width, kind), func(b *testing.B) {
				var sum uint64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					j := i % len(e.Lookups)
					pos := fn(e.Keys, e.Lookups[j], bounds[j])
					sum += e.Payloads[pos%len(e.Payloads)]
				}
				_ = sum
			})
		}
	}
}

// BenchmarkAblationSubsetStride verifies the subset-insertion size
// knob's latency cost on the B-Tree: each doubling of stride halves
// size but adds one binary-search step.
func BenchmarkAblationSubsetStride(b *testing.B) {
	e := benchEnv(b, dataset.Wiki)
	for _, nb := range registry.Sweep("BTree", e.Keys) {
		idx, err := nb.Builder.Build(e.Keys)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(nb.Label, func(b *testing.B) {
			lookupLoop(b, e, idx, search.BinarySearch)
		})
	}
}
