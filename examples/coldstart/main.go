// Cold-start walkthrough: the persistence subsystem end to end. The
// source paper shows build/tune cost is a first-class axis of learned
// indexes — an auto-tuned RMI takes orders of magnitude longer to
// produce than any lookup win it buys — and SOSD itself caches built
// indexes on disk to make its sweeps tractable. A serving process has
// the same problem at restart: retraining every shard from scratch
// stalls the fleet. This walkthrough:
//
//  1. builds a tuned-RMI store cold and times it,
//  2. snapshots it (tables block-aligned, indexes as trained
//     parameters, per-shard WALs) and reopens it warm — decode, not
//     retrain — comparing ready-to-serve times,
//  3. writes into the attached store so the WAL absorbs the updates,
//     "crashes" (no shutdown, a torn record at a WAL tail), reopens,
//     and verifies no acknowledged write was lost.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/persist"
	"repro/internal/serve"
)

const (
	n      = 200_000
	family = "RMI"
	shards = 4
)

func main() {
	keys := dataset.MustGenerate(dataset.Amzn, n, 42)
	payloads := make([]uint64, len(keys))
	for i := range payloads {
		payloads[i] = uint64(i)*7 + 1
	}
	dir, err := os.MkdirTemp("", "coldstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Cold: every shard tunes and trains its RMI from raw keys.
	start := time.Now()
	st, err := serve.New(keys, payloads, serve.Config{Shards: shards, Family: family})
	if err != nil {
		log.Fatal(err)
	}
	cold := time.Since(start)
	fmt.Printf("cold build  (%s, %d keys, %d shards): %8.1f ms\n",
		family, n, st.NumShards(), ms(cold))

	// 2. Snapshot and reopen warm: indexes decode from trained
	// parameters, no tuner, no training pass.
	start = time.Now()
	if err := st.Snapshot(dir); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot to %s: %31.1f ms\n", filepath.Base(dir), ms(time.Since(start)))
	st.Close()

	start = time.Now()
	// CompactThreshold -1: no background compaction, so the "crashed"
	// store below can never commit anything behind the recovery's back
	// (a real crash would have killed the process outright).
	warm, err := serve.Open(dir, serve.Config{CompactThreshold: -1})
	if err != nil {
		log.Fatal(err)
	}
	warmT := time.Since(start)
	fmt.Printf("warm open from snapshot: %19.1f ms  (%.0fx faster ready-to-serve)\n",
		ms(warmT), float64(cold)/float64(warmT))

	// 3. The reopened store is attached: writes hit the per-shard WAL
	// before they are acknowledged.
	const writes = 5_000
	oracle := map[core.Key]uint64{}
	for i := 0; i < writes; i++ {
		k := keys[(i*17)%n] + core.Key(i%3) // mix of updates and fresh keys
		warm.Put(k, uint64(1_000_000+i))
		oracle[k] = uint64(1_000_000 + i)
	}
	deleted := map[core.Key]bool{}
	for i := 0; i < writes/10; i++ {
		k := keys[(i*53)%n]
		warm.Delete(k)
		delete(oracle, k)
		deleted[k] = true
	}
	fmt.Printf("wrote %d puts + %d deletes into the attached store\n", writes, writes/10)

	// Crash: no Close, no final snapshot — and a torn half-record at
	// one WAL tail, as a power cut mid-append would leave. Shard files
	// carry generation-suffixed names, so the manifest says which WAL
	// is live.
	man, err := persist.ReadManifest(filepath.Join(dir, persist.ManifestName))
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, man.Shards[1].WAL), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		log.Fatal(err)
	}
	f.Write([]byte{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01, 0x02})
	f.Close()
	fmt.Printf("simulated crash (no shutdown; torn record at %s's tail)\n", man.Shards[1].WAL)

	start = time.Now()
	recovered, err := serve.Open(dir, serve.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery open (snapshot + WAL replay): %5.1f ms\n", ms(time.Since(start)))

	checked := 0
	for k, want := range oracle {
		got, ok := recovered.Get(k)
		if !ok || got != want {
			log.Fatalf("lost write: key %d = (%d,%v), want %d", k, got, ok, want)
		}
		checked++
	}
	for k := range deleted {
		if oracle[k] != 0 {
			continue // re-written after the delete
		}
		if _, ok := recovered.Get(k); ok {
			log.Fatalf("deleted key %d resurrected after recovery", k)
		}
	}
	fmt.Printf("verified %d writes intact and %d deletes honoured after recovery\n", checked, len(deleted))
	recovered.Close()
	// warm is deliberately never closed: it "crashed". Its goroutines
	// and fds die with the process, as they would in the real event.
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
