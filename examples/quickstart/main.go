// Quickstart: build a learned index over a sorted array, look up keys,
// and verify the search-bound contract. This is the benchmark's
// minimal end-to-end path: dataset -> index -> bound -> last-mile
// search -> payload.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rmi"
	"repro/internal/search"
)

func main() {
	// 1. Generate a dataset (a synthetic stand-in for the paper's
	// Amazon book-popularity keys) and per-key payloads.
	const n = 1_000_000
	keys := dataset.MustGenerate(dataset.Amzn, n, 42)
	payloads := dataset.Payloads(n, 42)

	// 2. Train a two-stage RMI. The auto-tuner picks the model types
	// and branching factor for this dataset under a 1 MiB budget.
	cfg := rmi.Tune(keys, 1<<20)
	idx, err := rmi.New(keys, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %v: %.2f KiB, avg log2 error %.2f\n",
		cfg, float64(idx.SizeBytes())/1024, idx.AvgLog2Error())

	// 3. Look up keys: the index returns a search bound guaranteed to
	// contain the key's lower bound; binary search finishes the job.
	lookups := dataset.Lookups(keys, 5, 7)
	for _, x := range lookups {
		b := idx.Lookup(x)
		pos := search.BinarySearch(keys, x, b)
		fmt.Printf("key %20d -> bound %-18v -> position %8d payload %#x\n",
			x, b, pos, payloads[pos])
		if !core.ValidBound(keys, x, b) {
			log.Fatalf("invalid bound for %d", x)
		}
	}

	// 4. Absent keys work identically: the bound brackets the smallest
	// key greater than or equal to the lookup key.
	absent := keys[n/2] + 1
	b := idx.Lookup(absent)
	pos := search.BinarySearch(keys, absent, b)
	fmt.Printf("absent key %d -> lower bound at position %d (key %d)\n", absent, pos, keys[pos])
}
