package persist

// Per-shard write-ahead log: a fixed-header file followed by
// fixed-size, individually-CRC'd records, one per Put/Delete. Appends
// go straight to the OS (group-commit durability is the caller's
// choice via Sync); replay walks records until the first torn or
// corrupt one, which a crash mid-append produces, and truncates the
// tail so later appends extend a clean log. Truncation-at-compaction
// is a whole-file swap: a fresh log seeded with the surviving delta is
// committed over the old one with the same temp+fsync+rename
// discipline as every other artifact.

import (
	"encoding/binary"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/binio"
	"repro/internal/core"
)

var walMagic = []byte("sosdWAL1")

const (
	walHeaderLen = 8 + 4 + 4 // magic, version, reserved
	walRecordLen = 1 + 3 + 8 + 8 + 4

	opPut    = 1
	opDelete = 2
)

// walCRC is CRC32-Castagnoli — per-record checksums only need to catch
// torn writes, and the short polynomial keeps appends cheap.
var walCRC = crc32.MakeTable(crc32.Castagnoli)

// Op is one logged write.
type Op struct {
	Key  core.Key
	Val  uint64
	Tomb bool
}

// WAL is an open, append-only write-ahead log.
type WAL struct {
	f    *os.File
	path string
	n    int // records in the log (replayed + appended)
}

func encodeRecord(buf []byte, op Op) {
	code := byte(opPut)
	if op.Tomb {
		code = opDelete
	}
	buf[0] = code
	buf[1], buf[2], buf[3] = 0, 0, 0
	binary.LittleEndian.PutUint64(buf[4:], op.Key)
	binary.LittleEndian.PutUint64(buf[12:], op.Val)
	binary.LittleEndian.PutUint32(buf[20:], crc32.Checksum(buf[:20], walCRC))
}

func decodeRecord(buf []byte) (Op, bool) {
	want := binary.LittleEndian.Uint32(buf[20:])
	if crc32.Checksum(buf[:20], walCRC) != want {
		return Op{}, false
	}
	code := buf[0]
	if code != opPut && code != opDelete || buf[1] != 0 || buf[2] != 0 || buf[3] != 0 {
		return Op{}, false
	}
	return Op{
		Key:  binary.LittleEndian.Uint64(buf[4:]),
		Val:  binary.LittleEndian.Uint64(buf[12:]),
		Tomb: code == opDelete,
	}, true
}

// ReplayWAL parses a log image: the ops of every intact record in
// order, plus the byte length of the intact prefix. A torn or corrupt
// tail ends replay without error (that is what a crash leaves behind);
// a bad header is corruption.
func ReplayWAL(data []byte) (ops []Op, validLen int64, err error) {
	if len(data) < walHeaderLen {
		return nil, 0, binio.Corruptf("persist: wal shorter than header")
	}
	r := binio.NewReader(data)
	if string(r.Bytes(len(walMagic))) != string(walMagic) {
		return nil, 0, binio.Corruptf("persist: bad wal magic")
	}
	if v := r.U32(); v != FormatVersion {
		return nil, 0, binio.Corruptf("persist: wal format version %d, want %d", v, FormatVersion)
	}
	r.U32() // reserved
	off := int64(walHeaderLen)
	rest := data[walHeaderLen:]
	for len(rest) >= walRecordLen {
		op, ok := decodeRecord(rest[:walRecordLen])
		if !ok {
			break
		}
		ops = append(ops, op)
		rest = rest[walRecordLen:]
		off += walRecordLen
	}
	return ops, off, nil
}

// CreateWAL atomically commits a fresh log at path containing the seed
// ops (the pending delta a snapshot or compaction leaves live) and
// returns it open for appends.
func CreateWAL(path string, seed []Op) (*WAL, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*WAL, error) {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, err
	}
	w := binio.NewWriter(tmp)
	w.Bytes(walMagic)
	w.U32(FormatVersion)
	w.U32(0)
	var buf [walRecordLen]byte
	for _, op := range seed {
		encodeRecord(buf[:], op)
		w.Bytes(buf[:])
	}
	if err := w.Err(); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	fsyncs.Add(1)
	walBytes.Add(uint64(w.Len()))
	// Rename before closing: the fd survives the rename, so the
	// committed file and the append handle are the same inode.
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fail(err)
	}
	if err := syncDir(dir); err != nil {
		tmp.Close()
		return nil, err
	}
	return &WAL{f: tmp, path: path, n: len(seed)}, nil
}

// OpenWAL opens an existing log, replays its intact records, truncates
// any torn tail, and returns the log positioned for appends. The
// replay reads through the same handle appends will use — one open,
// one pass.
func OpenWAL(path string) (*WAL, []Op, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	ops, validLen, err := ReplayWAL(data)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if validLen < int64(len(data)) {
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(validLen, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &WAL{f: f, path: path, n: len(ops)}, ops, nil
}

// Append logs one write. The record reaches the OS before Append
// returns; call Sync for storage durability.
func (w *WAL) Append(op Op) error {
	var buf [walRecordLen]byte
	encodeRecord(buf[:], op)
	if _, err := w.f.Write(buf[:]); err != nil {
		return err
	}
	w.n++
	walAppends.Add(1)
	walBytes.Add(walRecordLen)
	return nil
}

// Sync fsyncs the log.
func (w *WAL) Sync() error {
	fsyncs.Add(1)
	return w.f.Sync()
}

// Len reports the record count (replayed plus appended).
func (w *WAL) Len() int { return w.n }

// Records is Len under its replication-facing name: the count of
// intact records, which is also the offset-space the tail readers
// below address (record i lives at walHeaderLen + i*walRecordLen).
func (w *WAL) Records() int { return w.n }

// TailFrom returns the ops of every intact record from index `from`
// onward, reading positionally through the log's own descriptor — no
// re-open, no whole-file read, and the append offset is untouched, so
// it is safe on a live log whose owner is appending concurrently (the
// shard write lock in serve serializes Append itself; TailFrom only
// ever observes complete records or stops at a partial one). A torn or
// corrupt record ends the read without error, exactly like ReplayWAL;
// from past the end returns nil.
func (w *WAL) TailFrom(from int) ([]Op, error) {
	if from < 0 {
		from = 0
	}
	return tailRecords(w.f, from)
}

// TailWAL reads the ops of records [from, end) of the log at path
// without disturbing any open handle on it: a standalone read-only
// open, a header check, then positional reads. Torn-tail semantics
// match ReplayWAL — the read stops at the first torn or corrupt
// record, which is what a crash mid-append leaves behind.
func TailWAL(path string, from int) ([]Op, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var hdr [walHeaderLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, binio.Corruptf("persist: wal shorter than header")
	}
	if string(hdr[:len(walMagic)]) != string(walMagic) {
		return nil, binio.Corruptf("persist: bad wal magic")
	}
	if v := binary.LittleEndian.Uint32(hdr[len(walMagic):]); v != FormatVersion {
		return nil, binio.Corruptf("persist: wal format version %d, want %d", v, FormatVersion)
	}
	if from < 0 {
		from = 0
	}
	return tailRecords(f, from)
}

// tailRecords reads records [from, ...) via ReadAt in fixed-size
// chunks, stopping at EOF or the first record that fails its CRC.
func tailRecords(f *os.File, from int) ([]Op, error) {
	const chunkRecords = 1024
	var ops []Op
	buf := make([]byte, chunkRecords*walRecordLen)
	off := int64(walHeaderLen) + int64(from)*walRecordLen
	for {
		n, err := f.ReadAt(buf, off)
		whole := n / walRecordLen
		for i := 0; i < whole; i++ {
			op, ok := decodeRecord(buf[i*walRecordLen : (i+1)*walRecordLen])
			if !ok {
				return ops, nil // torn or corrupt tail: clean stop
			}
			ops = append(ops, op)
		}
		off += int64(whole) * walRecordLen
		if err == io.EOF || whole < chunkRecords {
			// Short read: the remainder (if any) is a partial record — a
			// concurrent append in progress or a torn tail. Either way
			// the intact prefix ends here.
			return ops, nil
		}
		if err != nil {
			return ops, err
		}
	}
}

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Close syncs and closes the log.
func (w *WAL) Close() error {
	fsyncs.Add(1)
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
