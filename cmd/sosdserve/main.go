// Command sosdserve runs the network serving front end: it builds a
// serve.Store over a generated dataset and listens for the internal/net
// frame protocol, with request coalescing and admission control. It is
// the long-running half of the serve-net experiment — point sosd's
// client library (or a second machine) at it to measure serving over a
// real network instead of loopback.
//
// Usage:
//
//	sosdserve [-addr host:port] [-dataset name] [-n keys] [-seed s]
//	          [-family f] [-shards k] [-window d] [-batchcap b]
//	          [-maxpending p] [-maxconns c]
//	          [-admin host:port] [-trace-every n] [-journal n]
//	          [-report d]
//	          [-repl host:port | -follow host:port -repldir dir]
//
// With -repl, the server is a replication primary: it opens a second
// listener on the given address that ships snapshots to subscribing
// followers and streams every write applied through the serving port.
// With -follow, the server is a read-only follower instead: it
// bootstraps its store from the primary's replication address (no
// dataset is generated), keeps it current from the WAL stream, and
// serves reads; writes through the serving port are refused until the
// node is promoted (see cmd/sosdrouter). -repldir is the follower's
// durable state directory — restarting with the same directory resumes
// from the last committed position instead of re-bootstrapping.
//
// With -admin, a second HTTP listener serves live observability:
// Prometheus text at /metrics, the flattened registry as JSON at
// /vars, the flush/compaction journal at /events, and the runtime
// profiles under /debug/pprof/. With -report, a one-line self-report
// (throughput, shed, read amp, compactions) prints to stderr at the
// given interval.
//
// The server runs until SIGINT/SIGTERM, then shuts down gracefully and
// prints its final stats (accepted, shed, coalescing, latency tail) to
// stderr. The coalescer's pacing pins service capacity at
// batchcap/window lookups per second; requests past that are refused
// with RetryLater rather than queued without bound.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/dataset"
	"repro/internal/net"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/repl"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	dsName := flag.String("dataset", "amzn", "dataset to generate (amzn, face, osm, wiki)")
	n := flag.Int("n", 200_000, "dataset size in keys")
	seed := flag.Uint64("seed", bench.DefaultSeed, "dataset seed")
	family := flag.String("family", "PGM", "index family for the store's shards")
	shards := flag.Int("shards", 4, "shard count")
	window := flag.Duration("window", net.DefaultCoalesceWindow, "coalescing window (pins capacity with -batchcap)")
	batchCap := flag.Int("batchcap", net.DefaultBatchCap, "max point lookups coalesced into one store batch")
	maxPending := flag.Int("maxpending", net.DefaultMaxPending, "admission limit on in-flight requests; excess is shed")
	maxConns := flag.Int("maxconns", net.DefaultMaxConns, "connection limit; excess accepts are refused")
	adminAddr := flag.String("admin", "", "admin HTTP listener for /metrics, /vars, /events, /debug/pprof (empty = off)")
	traceEvery := flag.Int("trace-every", obs.DefaultTraceEvery, "sample 1-in-N requests for phase tracing (rounded up to a power of two)")
	journalCap := flag.Int("journal", obs.DefaultJournalCap, "flush/compaction journal capacity (events)")
	report := flag.Duration("report", 0, "self-report interval on stderr (0 = off)")
	replAddr := flag.String("repl", "", "replication listener address: act as primary, stream writes to followers (empty = off)")
	followAddr := flag.String("follow", "", "primary's replication address: act as read-only follower (empty = off)")
	replDir := flag.String("repldir", "", "follower state directory (required with -follow)")
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *replAddr != "" && *followAddr != "" {
		fatal(fmt.Errorf("-repl and -follow are mutually exclusive"))
	}
	if *followAddr != "" && *replDir == "" {
		fatal(fmt.Errorf("-follow requires -repldir"))
	}

	known := false
	for _, f := range registry.Families() {
		if f == *family {
			known = true
			break
		}
	}
	if !known {
		fatal(fmt.Errorf("unknown family %q (known: %v)", *family, registry.Families()))
	}

	reg := obs.NewRegistry()
	journal := obs.NewJournal(*journalCap)
	tracer := obs.NewTracer(reg, *traceEvery)
	obs.RegisterPersist(reg)

	netCfg := net.Config{
		CoalesceWindow: *window,
		BatchCap:       *batchCap,
		MaxPending:     *maxPending,
		MaxConns:       *maxConns,
		Metrics:        reg,
		Tracer:         tracer,
	}

	var (
		st       *serve.Store
		pri      *repl.Primary
		fol      *repl.Follower
		checksum uint64
	)
	if *followAddr != "" {
		// Follower: the store comes from the primary's snapshot, not a
		// generated dataset.
		fmt.Fprintf(os.Stderr, "bootstrapping from primary %s into %s...\n", *followAddr, *replDir)
		var err error
		fol, err = repl.StartFollower(repl.FollowerConfig{
			Dir: *replDir, PrimaryAddr: *followAddr,
			Store: serve.Config{Family: *family, Metrics: reg, Journal: journal, Tracer: tracer},
		})
		if err != nil {
			fatal(err)
		}
		defer fol.Stop()
		if err := fol.WaitReady(5 * time.Minute); err != nil {
			fatal(err)
		}
		st = fol.Store()
		netCfg.ReplStat = fol.ReplStatHook()
		netCfg.Promote = fol.PromoteHook()
	} else {
		fmt.Fprintf(os.Stderr, "generating %s, %d keys (seed %d)...\n", *dsName, *n, *seed)
		keys, err := dataset.Generate(dataset.Name(*dsName), *n, *seed)
		if err != nil {
			fatal(err)
		}
		checksum = dataset.Checksum(keys)
		cfg := serve.Config{
			Shards: *shards, Family: *family,
			Metrics: reg, Journal: journal, Tracer: tracer,
		}
		var log *repl.Log
		if *replAddr != "" {
			log = repl.NewLog(*shards)
			cfg.WriteHook = log.Hook()
		}
		st, err = serve.New(keys, dataset.Payloads(*n, *seed), cfg)
		if err != nil {
			fatal(err)
		}
		defer st.Close()
		if *replAddr != "" {
			pri, err = repl.NewPrimary(st, log, *replAddr, repl.PrimaryConfig{})
			if err != nil {
				fatal(err)
			}
			defer pri.Close()
			netCfg.ReplStat = pri.ReplStatHook()
		}
	}

	srv, err := net.Listen(*addr, st, netCfg)
	if err != nil {
		fatal(err)
	}

	var admin *obs.AdminServer
	if *adminAddr != "" {
		admin, err = obs.ListenAdmin(*adminAddr, reg, journal)
		if err != nil {
			fatal(err)
		}
		defer admin.Close()
	}

	// Structured startup summary: everything needed to identify the
	// serving configuration from a log line. The checksum identifies
	// the dataset, the config ID the built index (family + tuned
	// parameters), and the policy triple the compaction behaviour.
	threshold, maxRuns, ampBound := st.Policy()
	capacity := float64(*batchCap) / window.Seconds()
	role := "standalone"
	switch {
	case pri != nil:
		role = "primary repl=" + pri.Addr().String()
	case fol != nil:
		role = "follower primary=" + *followAddr + " dir=" + *replDir
	}
	fmt.Fprintf(os.Stderr,
		"sosdserve up addr=%s role=%s dataset=%s n=%d seed=%d checksum=%016x config=%s shards=%d "+
			"policy=threshold:%d,maxruns:%d,ampbound:%g "+
			"window=%v batchcap=%d capacity=%.0f/s admission=%d conns=%d admin=%s trace=1/%d\n",
		srv.Addr(), role, *dsName, *n, *seed, checksum, st.ConfigIDs()[0], st.NumShards(),
		threshold, maxRuns, ampBound,
		*window, *batchCap, capacity, *maxPending, *maxConns, adminURL(admin), *traceEvery)

	stopReport := make(chan struct{})
	if *report > 0 {
		go selfReport(reg, st, *report, stopReport)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(stopReport)
	fmt.Fprintln(os.Stderr, "shutting down...")
	start := time.Now()
	if err := srv.Close(); err != nil {
		fatal(err)
	}
	s := srv.Stats()
	fmt.Fprintf(os.Stderr, "drained in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(os.Stderr, "accepted %d, shed %d, shed conns %d, dropped conns %d\n",
		s.Accepted, s.Shed, s.ShedConns, s.DroppedConns)
	if s.Batches > 0 {
		fmt.Fprintf(os.Stderr, "coalesced %d lookups into %d batches (mean %.1f keys), max queue depth %d\n",
			s.BatchedKeys, s.Batches, float64(s.BatchedKeys)/float64(s.Batches), s.MaxQueueDepth)
	}
	if s.Latency != nil && s.Latency.Count() > 0 {
		q := s.Latency.Summary()
		fmt.Fprintf(os.Stderr, "service time p50 %.1fµs p99 %.1fµs p99.9 %.1fµs max %.1fµs\n",
			float64(q.P50)/1e3, float64(q.P99)/1e3, float64(q.P999)/1e3, float64(q.Max)/1e3)
	}
	fmt.Fprintf(os.Stderr, "compactions %d (flushes %d, minor %d, major %d), read amp %.2f, journal %d events\n",
		st.Compactions(), st.Flushes(), st.MinorMerges(), st.MajorMerges(), st.ReadAmp(), journal.Total())
	if pri != nil {
		ps := pri.Stats()
		fmt.Fprintf(os.Stderr, "repl primary: %d followers, streamed %d, acked %d, snapshot %d bytes (%d bootstraps, %d resyncs)\n",
			ps.Followers, ps.StreamedOps, ps.AckedOps, ps.SnapBytes, ps.Bootstraps, ps.Resyncs)
	}
	if fol != nil {
		fs := fol.Stats()
		fmt.Fprintf(os.Stderr, "repl follower: applied %d, acked %d, lag %d, resyncs %d, state syncs %d\n",
			fs.AppliedOps, fs.AckedOps, fs.LagOps, fs.Resyncs, fs.StateSyncs)
	}
}

// selfReport prints a periodic one-line progress report from the live
// registry until stop closes. Rates are deltas over the interval.
func selfReport(reg *obs.Registry, st *serve.Store, every time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	var lastAccepted, lastShed float64
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		accepted, _ := reg.Value("sosd_net_accepted_total")
		shed, _ := reg.Value("sosd_net_shed_total")
		depth, _ := reg.Value("sosd_net_queue_depth")
		p99, _ := reg.Value("sosd_net_latency_ns_p99")
		fmt.Fprintf(os.Stderr,
			"report accepted=%.0f (+%.0f) shed=%.0f (+%.0f) depth=%.0f p99=%.1fµs readamp=%.2f runs<=%d compactions=%d delta=%d\n",
			accepted, accepted-lastAccepted, shed, shed-lastShed, depth, p99/1e3,
			st.ReadAmp(), st.MaxRunCount(), st.Compactions(), st.DeltaLen())
		lastAccepted, lastShed = accepted, shed
	}
}

// adminURL renders the admin listener address for the startup line.
func adminURL(a *obs.AdminServer) string {
	if a == nil {
		return "off"
	}
	return "http://" + a.Addr().String()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sosdserve: %v\n", err)
	os.Exit(1)
}
