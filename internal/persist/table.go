package persist

// Table-data serialization: a shard's sorted key array and payload
// array as one block-aligned file. The header block carries the
// element count, the byte offsets of the two data blocks, and a CRC64
// per block, so a loader with an io.ReaderAt can read each array
// directly into its final allocation — no intermediate whole-file
// buffer, no second parse pass — and still verify integrity. On
// little-endian hosts (the wire order) the arrays load zero-copy into
// their backing memory; big-endian hosts fall back to element-wise
// decoding.

import (
	"encoding/binary"
	"hash/crc64"
	"io"
	"os"
	"unsafe"

	"repro/internal/binio"
	"repro/internal/core"
)

// tableBlock is the file alignment unit: the header occupies the first
// block and each data array starts on a block boundary, so direct I/O
// and page-cache reads stay aligned regardless of table size.
const tableBlock = 4096

var tableMagic = []byte("sosdTAB1")

// table header layout, all little-endian, within the first block:
//
//	[8]  magic
//	[4]  format version
//	[8]  count (number of key/payload pairs)
//	[8]  keys block offset
//	[8]  payloads block offset
//	[8]  CRC64 of the keys block bytes
//	[8]  CRC64 of the payloads block bytes
//	[8]  CRC64 of the preceding header bytes
const tableHeaderLen = 8 + 4 + 8 + 8 + 8 + 8 + 8 + 8

var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// u64LEBytes views a uint64 slice as its little-endian byte encoding.
// Zero-copy on little-endian hosts; an explicit encode elsewhere.
func u64LEBytes(s []uint64) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 8*len(s))
	}
	out := make([]byte, 8*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint64(out[8*i:], v)
	}
	return out
}

func alignBlock(n int64) int64 {
	return (n + tableBlock - 1) / tableBlock * tableBlock
}

// WriteTable atomically writes keys and payloads (parallel arrays) as
// a block-aligned table file.
func WriteTable(path string, keys []core.Key, payloads []uint64) error {
	if len(keys) != len(payloads) {
		return binio.Corruptf("persist: keys/payloads length mismatch")
	}
	keyBytes := u64LEBytes(keys)
	payBytes := u64LEBytes(payloads)
	keysOff := int64(tableBlock)
	paysOff := alignBlock(keysOff + int64(len(keyBytes)))
	if len(keys) == 0 {
		paysOff = keysOff
	}
	crcKeys := crc64.Checksum(keyBytes, binio.CRCTable)
	crcPays := crc64.Checksum(payBytes, binio.CRCTable)
	return AtomicWrite(path, func(w *binio.Writer) error {
		w.Bytes(tableMagic)
		w.U32(FormatVersion)
		w.U64(uint64(len(keys)))
		w.U64(uint64(keysOff))
		w.U64(uint64(paysOff))
		w.U64(crcKeys)
		w.U64(crcPays)
		w.U64(w.Sum64())
		pad(w, keysOff-w.Len())
		w.Bytes(keyBytes)
		pad(w, paysOff-w.Len())
		w.Bytes(payBytes)
		return w.Err()
	})
}

func pad(w *binio.Writer, n int64) {
	var zeros [tableBlock]byte
	for n > 0 {
		c := n
		if c > tableBlock {
			c = tableBlock
		}
		w.Bytes(zeros[:c])
		n -= c
	}
}

// ReadTableFrom loads a table file through an io.ReaderAt of known
// size: the header block is read and validated, then each data array
// is read directly into its final allocation and checksummed. size
// caps every allocation, so a corrupt count cannot out-allocate the
// file it claims to describe.
func ReadTableFrom(ra io.ReaderAt, size int64) (keys []core.Key, payloads []uint64, err error) {
	if size < tableHeaderLen {
		return nil, nil, binio.Corruptf("persist: table file too short (%d bytes)", size)
	}
	head := make([]byte, tableHeaderLen)
	if _, err := ra.ReadAt(head, 0); err != nil {
		return nil, nil, err
	}
	r := binio.NewReader(head)
	if string(r.Bytes(len(tableMagic))) != string(tableMagic) {
		return nil, nil, binio.Corruptf("persist: bad table magic")
	}
	if v := r.U32(); v != FormatVersion {
		return nil, nil, binio.Corruptf("persist: table format version %d, want %d", v, FormatVersion)
	}
	count := r.U64()
	keysOff := int64(r.U64())
	paysOff := int64(r.U64())
	crcKeys := r.U64()
	crcPays := r.U64()
	wantHeaderCRC := crc64.Checksum(head[:r.Offset()], binio.CRCTable)
	if got := r.U64(); got != wantHeaderCRC {
		return nil, nil, binio.Corruptf("persist: table header checksum mismatch")
	}
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	if count > uint64(size)/16 {
		return nil, nil, binio.Corruptf("persist: count %d impossible for %d-byte file", count, size)
	}
	blobLen := int64(count) * 8
	if keysOff < tableHeaderLen || keysOff%tableBlock != 0 || paysOff%tableBlock != 0 ||
		(count > 0 && paysOff < keysOff+blobLen) || paysOff+blobLen > size {
		return nil, nil, binio.Corruptf("persist: table block offsets invalid (keys %d, payloads %d, size %d)", keysOff, paysOff, size)
	}
	if count == 0 {
		return nil, nil, nil
	}
	keys = make([]core.Key, count)
	payloads = make([]uint64, count)
	if err := readU64Block(ra, keysOff, keys, crcKeys); err != nil {
		return nil, nil, err
	}
	if err := readU64Block(ra, paysOff, payloads, crcPays); err != nil {
		return nil, nil, err
	}
	if !core.IsSorted(keys) {
		return nil, nil, binio.Corruptf("persist: table keys not sorted")
	}
	return keys, payloads, nil
}

// readU64Block reads one array's bytes straight into dst's backing
// memory (little-endian hosts) and verifies its checksum.
func readU64Block(ra io.ReaderAt, off int64, dst []uint64, want uint64) error {
	if hostLittleEndian {
		b := unsafe.Slice((*byte)(unsafe.Pointer(&dst[0])), 8*len(dst))
		if _, err := ra.ReadAt(b, off); err != nil {
			return err
		}
		if got := crc64.Checksum(b, binio.CRCTable); got != want {
			return binio.Corruptf("persist: table block checksum mismatch")
		}
		return nil
	}
	b := make([]byte, 8*len(dst))
	if _, err := ra.ReadAt(b, off); err != nil {
		return err
	}
	if got := crc64.Checksum(b, binio.CRCTable); got != want {
		return binio.Corruptf("persist: table block checksum mismatch")
	}
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return nil
}

// ReadTable loads a table file from disk via ReadTableFrom.
func ReadTable(path string) (keys []core.Key, payloads []uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	return ReadTableFrom(f, st.Size())
}
