package bench

// The mixed read/write serving experiment: not a figure from the
// paper, which evaluates learned indexes read-only and names update
// support as the open problem. YCSB-style read/write mixes drive the
// mutable store's delta-buffer write path, making the
// rebuild-cost-vs-staleness tradeoff of compaction measurable per
// index family (learned families re-tune and rebuild whole models;
// the B-tree baseline bulk-loads).

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/dataset"
	"repro/internal/load"
	"repro/internal/registry"
	"repro/internal/report"
	"repro/internal/serve"
)

func init() {
	Register(Experiment{"serve-write", "mixed read/write workloads over the mutable store", serveWriteSweep})
}

// YCSBTheta is the zipfian skew parameter of the YCSB core generator.
const YCSBTheta = 0.99

// MixedWorkload describes a YCSB-style operation mix over the mutable
// store. Writes alternate between inserting a fresh key and updating a
// present one; read and update keys follow the workload's distribution.
type MixedWorkload struct {
	Name     string
	ReadFrac float64 // fraction of operations that are point reads
	Zipfian  bool    // zipfian (theta=0.99) vs uniform key choice
}

// MixedWorkloads lists the experiment's YCSB-like mixes: A (50/50
// read/write), B (95/5), and C (read-only), A and B under both zipfian
// and uniform key choice.
func MixedWorkloads() []MixedWorkload {
	return []MixedWorkload{
		{"A", 0.50, true},
		{"A", 0.50, false},
		{"B", 0.95, true},
		{"B", 0.95, false},
		{"C", 1.00, true},
	}
}

// MixedResult summarizes one mixed-workload run.
type MixedResult struct {
	Ops, Reads, Writes int
	ReadNs, WriteNs    float64 // mean per-operation latencies
	OpsPerSec          float64
	Compactions        uint64        // shard compactions completed during the run
	CompactTime        time.Duration // wall time spent merging + rebuilding
	DeltaLen           int           // pending entries at run end (staleness)
	Checksum           uint64
}

// MeasureMixed drives ops operations against st from one client:
// reads draw present keys under the workload's distribution, writes
// alternate inserting a fresh key and updating a distribution-drawn
// present one. Reads and writes interleave at the exact ReadFrac ratio
// (Bresenham scheduling), so compactions triggered by the write stream
// land in the middle of the measured read stream, as in a live system.
// The operation stream is load.MixedOps — the same stream the tail
// experiments replay, keeping serve-write and serve-tail comparable.
func MeasureMixed(e *Env, st *serve.Store, ops int, wl MixedWorkload, seed uint64) MixedResult {
	theta := 0.0
	if wl.Zipfian {
		theta = YCSBTheta
	}
	stream := load.MixedOps(e.Keys, ops, wl.ReadFrac, theta, seed)

	res := MixedResult{Ops: ops}
	baseCompactions := st.Compactions()
	baseCompactTime := st.CompactTime()
	var readTime, writeTime time.Duration
	start := time.Now()
	for _, op := range stream {
		switch op.Kind {
		case load.Get:
			t0 := time.Now()
			v, ok := st.Get(op.Key)
			readTime += time.Since(t0)
			res.Reads++
			if ok {
				res.Checksum += v
			}
		case load.Put:
			t0 := time.Now()
			st.Put(op.Key, op.Payload)
			writeTime += time.Since(t0)
			res.Writes++
		}
	}
	elapsed := time.Since(start)
	// Staleness is read at load stop; compaction counters after the
	// background compactor drains what the run queued, so short runs do
	// not under-report rebuild work still in flight.
	res.DeltaLen = st.DeltaLen()
	st.WaitCompactions()
	if res.Reads > 0 {
		res.ReadNs = float64(readTime.Nanoseconds()) / float64(res.Reads)
	}
	if res.Writes > 0 {
		res.WriteNs = float64(writeTime.Nanoseconds()) / float64(res.Writes)
	}
	res.OpsPerSec = float64(ops) / elapsed.Seconds()
	res.Compactions = st.Compactions() - baseCompactions
	res.CompactTime = st.CompactTime() - baseCompactTime
	return res
}

// writeDist renders a workload's key-choice distribution.
func writeDist(wl MixedWorkload) string {
	if wl.Zipfian {
		return "zipf"
	}
	return "unif"
}

// serveWriteSweep reports the mixed read/write experiment: YCSB-style
// workloads per index family over the mutable sharded store, then a
// compaction-threshold sweep exposing the rebuild-cost-vs-staleness
// tradeoff.
func serveWriteSweep(r *Run) ([]report.Table, error) {
	o := r.Options
	e, err := r.Env(dataset.Amzn)
	if err != nil {
		return nil, err
	}
	ops := o.Lookups
	const shards = 4
	// Sized so workload A's write stream forces several compactions per
	// shard within one run at default scale.
	threshold := ops / 32
	if threshold < 64 {
		threshold = 64
	}
	families := r.Families(registry.WriteFamilies)

	mixed := report.New("serve-write",
		fmt.Sprintf("Mixed read/write workloads (amzn, mid-sweep configs, %d shards, compact threshold %d)",
			shards, threshold)).
		Dims("index", "wl", "dist").
		Float("read%", "%", 0).
		Float("kops/s", "kops/s", 1).
		Float("read(ns)", "ns", 1).
		Float("write(ns)", "ns", 1).
		Int("compact", "compactions").
		Float("cmp(ms)", "ms", 2).
		Int("delta", "entries")
	for _, family := range families {
		for _, wl := range MixedWorkloads() {
			st, err := serve.New(e.Keys, e.Payloads, serve.Config{
				Shards: shards, Family: family, CompactThreshold: threshold,
			})
			if err != nil {
				return nil, err
			}
			res := MeasureMixed(e, st, ops, wl, o.Seed)
			mixed.Row([]string{family, wl.Name, writeDist(wl)},
				wl.ReadFrac*100, res.OpsPerSec/1e3, res.ReadNs, res.WriteNs,
				float64(res.Compactions), float64(res.CompactTime.Nanoseconds())/1e6,
				float64(res.DeltaLen))
			st.Close()
		}
	}

	sweep := report.New("serve-write",
		"Compaction threshold sweep (workload A, zipfian): rebuild cost vs staleness").
		Dims("index", "thresh").
		Float("kops/s", "kops/s", 1).
		Int("compact", "compactions").
		Float("cmp(ms)", "ms", 2).
		Int("delta", "entries")
	wlA := MixedWorkload{Name: "A", ReadFrac: 0.5, Zipfian: true}
	for _, family := range families {
		for _, th := range []int{threshold / 4, threshold, threshold * 4} {
			if th < 16 {
				th = 16
			}
			st, err := serve.New(e.Keys, e.Payloads, serve.Config{
				Shards: shards, Family: family, CompactThreshold: th,
			})
			if err != nil {
				return nil, err
			}
			res := MeasureMixed(e, st, ops, wlA, o.Seed)
			sweep.Row([]string{family, strconv.Itoa(th)},
				res.OpsPerSec/1e3, float64(res.Compactions),
				float64(res.CompactTime.Nanoseconds())/1e6, float64(res.DeltaLen))
			st.Close()
		}
	}
	return []report.Table{*mixed, *sweep}, nil
}
