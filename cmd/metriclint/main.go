// Command metriclint validates a Prometheus text exposition — from a
// file or scraped over HTTP — and optionally checks the serving
// stack's conservation laws on the scraped values. It is the CI gate
// for the /metrics endpoint: obs-smoke starts sosdserve, scrapes it,
// and fails the build if the exposition is malformed or the counters
// contradict each other.
//
// Usage:
//
//	metriclint [-wait d] [-laws] <file | http://host:port/metrics>
//
// With -wait, an HTTP target is retried until it answers or the
// duration elapses (the server may still be starting). With -laws,
// the sosd serving invariants are checked: coalesced keys cannot
// exceed admissions, every frozen delta must have flushed, multi-run
// lookups probe at least one run each, and the latency histogram
// cannot hold more samples than were admitted.
//
// Exit status 0 when clean, 1 with one problem per line on stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

func main() {
	wait := flag.Duration("wait", 0, "retry an HTTP target for this long before giving up")
	laws := flag.Bool("laws", false, "check sosd serving conservation laws on the scraped values")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: metriclint [-wait d] [-laws] <file | url>")
		os.Exit(2)
	}
	target := flag.Arg(0)

	text, err := fetch(target, *wait)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metriclint: %v\n", err)
		os.Exit(1)
	}

	problems := Lint(text)
	if *laws {
		problems = append(problems, CheckLaws(Values(text))...)
	}
	for _, p := range problems {
		fmt.Fprintf(os.Stderr, "metriclint: %s: %s\n", target, p)
	}
	if len(problems) > 0 {
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "metriclint: %s: ok (%d lines)\n", target, strings.Count(text, "\n"))
}

// fetch reads the exposition from a file or an HTTP URL, retrying an
// unreachable URL until wait elapses.
func fetch(target string, wait time.Duration) (string, error) {
	if !strings.HasPrefix(target, "http://") && !strings.HasPrefix(target, "https://") {
		b, err := os.ReadFile(target)
		return string(b), err
	}
	deadline := time.Now().Add(wait)
	for {
		resp, err := http.Get(target)
		if err == nil {
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return "", fmt.Errorf("GET %s: status %d", target, resp.StatusCode)
			}
			b, err := io.ReadAll(resp.Body)
			return string(b), err
		}
		if time.Now().After(deadline) {
			return "", err
		}
		time.Sleep(50 * time.Millisecond)
	}
}
