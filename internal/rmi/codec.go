package rmi

// Binary codec for trained RMIs: Encode serializes the full model state
// (architecture, stage-1 model, per-leaf models and verified error
// margins) so Decode can reconstruct a ready index without re-running
// the trainer or the tuner — the point of snapshot-based cold starts.
// The wire layout is little-endian via binio; framing, versioning and
// checksums are the caller's job (package persist).

import (
	"repro/internal/binio"
)

// wire sizes used for allocation guards: one model is a kind byte plus
// six float64s; a leaf adds four int32s.
const (
	modelWireBytes = 1 + 6*8
	leafWireBytes  = modelWireBytes + 4*4
)

func encodeModel(w *binio.Writer, m *model) {
	w.U8(uint8(m.kind))
	w.F64(m.keyOff)
	w.F64(m.keyScale)
	w.F64(m.c0)
	w.F64(m.c1)
	w.F64(m.c2)
	w.F64(m.c3)
}

func decodeModel(r *binio.Reader) (model, error) {
	var m model
	k := r.U8()
	if k > uint8(ModelRadix) {
		return m, binio.Corruptf("rmi: unknown model kind %d", k)
	}
	m.kind = ModelKind(k)
	m.keyOff = r.FiniteF64()
	m.keyScale = r.FiniteF64()
	m.c0 = r.FiniteF64()
	m.c1 = r.FiniteF64()
	m.c2 = r.FiniteF64()
	m.c3 = r.FiniteF64()
	return m, r.Err()
}

// Encode writes the trained index to w. The output is exactly what
// Decode consumes; it carries no framing or checksum of its own.
func (idx *Index) Encode(w *binio.Writer) error {
	w.U8(uint8(idx.cfg.Stage1))
	w.U8(uint8(idx.cfg.Stage2))
	w.U64(uint64(idx.n))
	encodeModel(w, &idx.stage1)
	w.U32(uint32(len(idx.leaves)))
	for i := range idx.leaves {
		lf := &idx.leaves[i]
		encodeModel(w, &lf.m)
		w.U32(uint32(lf.errLo))
		w.U32(uint32(lf.errHi))
		w.U32(uint32(lf.loPos))
		w.U32(uint32(lf.hiPos))
	}
	return w.Err()
}

// Decode reconstructs a trained index from r without retraining. Every
// structural invariant the lookup path relies on is re-validated, so a
// corrupted input yields an error, never a panic or an oversized
// allocation.
func Decode(r *binio.Reader) (*Index, error) {
	var cfg Config
	cfg.Stage1 = ModelKind(r.U8())
	cfg.Stage2 = ModelKind(r.U8())
	n := r.U64()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if cfg.Stage1 > ModelRadix || cfg.Stage2 > ModelRadix {
		return nil, binio.Corruptf("rmi: unknown stage model kind")
	}
	const maxN = 1 << 48 // far beyond any in-memory array
	if n == 0 || n > maxN {
		return nil, binio.Corruptf("rmi: implausible key count %d", n)
	}
	stage1, err := decodeModel(r)
	if err != nil {
		return nil, err
	}
	branch := r.Count(leafWireBytes)
	if err := r.Err(); err != nil {
		return nil, err
	}
	if branch < 1 {
		return nil, binio.Corruptf("rmi: zero leaves")
	}
	cfg.Branch = branch
	idx := &Index{cfg: cfg, n: int(n), stage1: stage1}
	idx.leaves = make([]leaf, branch)
	for i := range idx.leaves {
		lf := &idx.leaves[i]
		lf.m, err = decodeModel(r)
		if err != nil {
			return nil, err
		}
		lf.errLo = int32(r.U32())
		lf.errHi = int32(r.U32())
		lf.loPos = int32(r.U32())
		lf.hiPos = int32(r.U32())
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	for i := range idx.leaves {
		lf := &idx.leaves[i]
		// Margins must be non-negative and positions inside the data
		// array: clampPredict returns a value in [loPos, hiPos] and
		// BoundAround only clamps the final bound, so wild positions
		// would survive into bounds wider than the array.
		if lf.errLo < 0 || lf.errHi < 0 {
			return nil, binio.Corruptf("rmi: negative error margin in leaf %d", i)
		}
		if lf.loPos < 0 || int(lf.hiPos) >= int(n) || lf.loPos > lf.hiPos {
			return nil, binio.Corruptf("rmi: leaf %d position range [%d,%d] outside data [0,%d)", i, lf.loPos, lf.hiPos, n)
		}
	}
	return idx, nil
}
