package repl

import (
	"bytes"
	"fmt"
	"io"
	stdnet "net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/net"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/serve"
)

// Primary defaults; see PrimaryConfig.
const (
	DefaultHeartbeatEvery = 50 * time.Millisecond
	DefaultStreamBatch    = 1024
)

// PrimaryConfig configures a replication primary.
type PrimaryConfig struct {
	// HeartbeatEvery paces MsgHeartbeat frames to idle followers (a
	// liveness and lag signal). 0 defaults to DefaultHeartbeatEvery.
	HeartbeatEvery time.Duration

	// StreamBatch caps ops per MsgWalBatch frame. 0 defaults to
	// DefaultStreamBatch; clamped to net.MaxWalOps.
	StreamBatch int

	// ChunkSize caps one snapshot-file chunk on the wire. 0 defaults
	// to net.MaxSnapChunk (also the hard cap). Tests shrink it to
	// exercise kills mid-bootstrap.
	ChunkSize int

	// SnapDir is the scratch directory bootstrap snapshots are exported
	// into (one temp dir per bootstrap, removed after shipping). Empty
	// defaults to the OS temp dir.
	SnapDir string

	// Metrics, when non-nil, receives the primary's stream counters.
	Metrics *obs.Registry
}

func (c PrimaryConfig) withDefaults() PrimaryConfig {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = DefaultHeartbeatEvery
	}
	if c.StreamBatch <= 0 {
		c.StreamBatch = DefaultStreamBatch
	}
	if c.StreamBatch > net.MaxWalOps {
		c.StreamBatch = net.MaxWalOps
	}
	if c.ChunkSize <= 0 || c.ChunkSize > net.MaxSnapChunk {
		c.ChunkSize = net.MaxSnapChunk
	}
	return c
}

// Primary streams a store's writes to subscribed followers. It owns a
// dedicated replication listener (separate from the serving port, so a
// bulk snapshot ship can never stall the read path's coalescer) and one
// session per follower connection: subscribe, bootstrap if the
// follower's position is unknown or evicted, then the live tail plus
// heartbeats. Create the store with Config.WriteHook = log.Hook() so
// every write reaches the stream.
type Primary struct {
	st  *serve.Store
	log *Log
	cfg PrimaryConfig
	ln  stdnet.Listener

	mu       sync.Mutex
	sessions map[*session]struct{}
	closed   bool
	wg       sync.WaitGroup

	ackCond *sync.Cond // broadcast on every ack; WaitAcked waits here

	// Stream accounting. Acked counts ops a follower confirmed
	// received, so ackedOps <= streamedOps is a law, not a tendency.
	streamedOps atomic.Uint64
	ackedOps    atomic.Uint64
	snapBytes   atomic.Uint64
	bootstraps  atomic.Uint64
	resyncs     atomic.Uint64
}

// session is one follower's connection: the serve loop is the only
// writer (stream frames and heartbeats), ackLoop the only reader.
type session struct {
	p    *Primary
	nc   stdnet.Conn
	done chan struct{}
	once sync.Once

	mu    sync.Mutex
	start []uint64 // stream position at session start (acks credit from here)
	sent  []uint64 // per-shard seq streamed
	acked []uint64 // per-shard seq acked by the follower
}

// PrimaryStats is a snapshot of the primary's stream accounting.
type PrimaryStats struct {
	Followers   int
	StreamedOps uint64 // ops sent in wal-batch frames
	AckedOps    uint64 // ops followers confirmed received
	SnapBytes   uint64 // snapshot bytes shipped during bootstraps
	Bootstraps  uint64
	Resyncs     uint64 // sessions told to restart from a snapshot
}

// NewPrimary starts a replication primary for st on addr (e.g.
// "127.0.0.1:0"). log must be the same Log st's WriteHook feeds.
func NewPrimary(st *serve.Store, log *Log, addr string, cfg PrimaryConfig) (*Primary, error) {
	if log.NumShards() != st.NumShards() {
		return nil, fmt.Errorf("repl: log has %d shards, store %d", log.NumShards(), st.NumShards())
	}
	ln, err := stdnet.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Primary{st: st, log: log, cfg: cfg.withDefaults(), ln: ln, sessions: map[*session]struct{}{}}
	p.ackCond = sync.NewCond(&p.mu)
	p.registerMetrics(p.cfg.Metrics)
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

func (p *Primary) registerMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	cf := func(a *atomic.Uint64) func() float64 {
		return func() float64 { return float64(a.Load()) }
	}
	r.CounterFunc("sosd_repl_streamed_ops_total", cf(&p.streamedOps))
	r.CounterFunc("sosd_repl_acked_ops_total", cf(&p.ackedOps))
	r.CounterFunc("sosd_repl_snapshot_bytes_total", cf(&p.snapBytes))
	r.CounterFunc("sosd_repl_bootstraps_total", cf(&p.bootstraps))
	r.CounterFunc("sosd_repl_resyncs_total", cf(&p.resyncs))
	r.GaugeFunc("sosd_repl_followers", func() float64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		return float64(len(p.sessions))
	})
}

// Addr is the replication listener's address (the follower dial target).
func (p *Primary) Addr() stdnet.Addr { return p.ln.Addr() }

// Epoch is the primary incarnation identity followers subscribe under.
func (p *Primary) Epoch() uint64 { return p.log.Epoch() }

// ReplStatHook adapts the primary to net.Config.ReplStat for its
// serving port.
func (p *Primary) ReplStatHook() func() (uint8, uint64, uint64, []uint64) {
	return func() (uint8, uint64, uint64, []uint64) {
		return net.RolePrimary, p.log.Epoch(), 0, p.log.Seqs()
	}
}

// Stats snapshots the stream accounting.
func (p *Primary) Stats() PrimaryStats {
	p.mu.Lock()
	followers := len(p.sessions)
	p.mu.Unlock()
	return PrimaryStats{
		Followers:   followers,
		StreamedOps: p.streamedOps.Load(),
		AckedOps:    p.ackedOps.Load(),
		SnapBytes:   p.snapBytes.Load(),
		Bootstraps:  p.bootstraps.Load(),
		Resyncs:     p.resyncs.Load(),
	}
}

// WaitAcked blocks until every connected follower has acknowledged the
// log's current tail (quiesce the writers first, or this chases a
// moving target), or the timeout passes. It returns an error on
// timeout; zero followers satisfies it trivially.
func (p *Primary) WaitAcked(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		p.mu.Lock()
		p.ackCond.Broadcast()
		p.mu.Unlock()
	})
	defer timer.Stop()
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		want := p.log.Seqs()
		caught := true
		for s := range p.sessions {
			s.mu.Lock()
			for i, q := range want {
				if s.acked[i] < q {
					caught = false
					break
				}
			}
			s.mu.Unlock()
			if !caught {
				break
			}
		}
		if caught {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("repl: WaitAcked timed out after %v", timeout)
		}
		p.ackCond.Wait()
	}
}

// Close stops the listener, severs every follower session, and joins
// all primary goroutines. The store is not touched.
func (p *Primary) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	sessions := make([]*session, 0, len(p.sessions))
	for s := range p.sessions {
		sessions = append(sessions, s)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	for _, s := range sessions {
		s.teardown()
	}
	p.wg.Wait()
	return err
}

func (p *Primary) acceptLoop() {
	defer p.wg.Done()
	for {
		nc, err := p.ln.Accept()
		if err != nil {
			return
		}
		s := &session{p: p, nc: nc, done: make(chan struct{})}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			_ = nc.Close()
			continue
		}
		p.sessions[s] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(1)
		go s.serve()
	}
}

func (s *session) teardown() {
	s.once.Do(func() {
		close(s.done)
		_ = s.nc.Close()
	})
}

// serve runs one follower session to completion: handshake, optional
// bootstrap, then the live stream until either side goes away.
func (s *session) serve() {
	p := s.p
	defer func() {
		s.teardown()
		p.mu.Lock()
		delete(p.sessions, s)
		p.ackCond.Broadcast() // WaitAcked must not wait on a gone session
		p.mu.Unlock()
		p.wg.Done()
	}()

	var wbuf bytes.Buffer
	sub, _, err := net.ReadMsg(s.nc, nil)
	if err != nil || sub.Type != net.MsgSubscribe {
		return
	}
	shards := p.st.NumShards()

	// Decide stream-from-position versus bootstrap: an unknown epoch, a
	// malformed vector, or a position the ring has evicted all mean the
	// follower's state cannot be caught up incrementally.
	needBoot := sub.Epoch != p.log.Epoch() || len(sub.Seqs) != shards
	if !needBoot {
		for i, q := range sub.Seqs {
			if _, ok := p.log.TailFrom(i, q, 1); !ok {
				needBoot = true
				break
			}
		}
	}

	s.mu.Lock()
	if needBoot {
		s.start = make([]uint64, shards)
	} else {
		s.start = append([]uint64(nil), sub.Seqs...)
	}
	s.sent = append([]uint64(nil), s.start...)
	s.acked = append([]uint64(nil), s.start...)
	s.mu.Unlock()

	if needBoot {
		if sub.Epoch != 0 || len(sub.Seqs) != 0 {
			p.resyncs.Add(1)
		}
		if err := s.bootstrap(&wbuf); err != nil {
			return
		}
	}

	// Acks flow back on their own goroutine; the stream loop below is
	// the connection's only writer.
	ackDone := make(chan struct{})
	go func() {
		defer close(ackDone)
		s.ackLoop()
	}()

	s.stream(&wbuf)
	s.teardown()
	<-ackDone
}

// bootstrap exports a consistent snapshot (capturing each shard's
// stream position under its write lock), ships every file chunk by
// chunk with the manifest last, and ends with the position vector the
// snapshot corresponds to. The follower commits by renaming the
// manifest into place only when told the ship is complete.
func (s *session) bootstrap(wbuf *bytes.Buffer) error {
	p := s.p
	p.bootstraps.Add(1)
	dir, err := os.MkdirTemp(p.cfg.SnapDir, "repl-snap-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	base := make([]uint64, p.st.NumShards())
	if err := p.st.SnapshotWith(dir, func(i int) { base[i] = p.log.SeqOf(i) }); err != nil {
		return err
	}
	m, err := persist.ReadManifest(filepath.Join(dir, persist.ManifestName))
	if err != nil {
		return err
	}
	// Tell the follower a snapshot is coming (it discards any local
	// state), then ship data files first, manifest last.
	if err := net.WriteMsg(s.nc, wbuf, &net.Msg{Type: net.MsgResync}); err != nil {
		return err
	}
	var names []string
	for _, sm := range m.Shards {
		for _, run := range sm.Runs {
			names = append(names, run.Table)
			if run.Index != "" {
				names = append(names, run.Index)
			}
			if run.Tombs != "" {
				names = append(names, run.Tombs)
			}
		}
		names = append(names, sm.WAL)
	}
	names = append(names, persist.ManifestName)
	for _, name := range names {
		if err := s.shipFile(wbuf, dir, name); err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.start = append([]uint64(nil), base...)
	s.sent = append([]uint64(nil), base...)
	s.acked = append([]uint64(nil), base...)
	s.mu.Unlock()
	return net.WriteMsg(s.nc, wbuf, &net.Msg{
		Type: net.MsgSnapEnd, Epoch: p.log.Epoch(), Gen: m.Gen, Seqs: base,
	})
}

// shipFile streams one snapshot file as MsgSnapFile chunks. Every file
// sends at least one chunk (the last-chunk bit is how the follower
// knows to close and fsync it), so empty files ship too.
func (s *session) shipFile(wbuf *bytes.Buffer, dir, name string) error {
	f, err := os.Open(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, s.p.cfg.ChunkSize)
	var off uint64
	for {
		n, rerr := io.ReadFull(f, buf)
		if rerr != nil && rerr != io.EOF && rerr != io.ErrUnexpectedEOF {
			return rerr
		}
		last := rerr != nil
		msg := &net.Msg{
			Type: net.MsgSnapFile, Name: name, Val: off,
			Found: last, Data: buf[:n],
		}
		if n == 0 && off > 0 {
			// The previous full chunk ended exactly at EOF; it already
			// carried last=false, so send the empty terminator.
			msg.Data = nil
		}
		if err := net.WriteMsg(s.nc, wbuf, msg); err != nil {
			return err
		}
		s.p.snapBytes.Add(uint64(n))
		off += uint64(n)
		if last {
			return nil
		}
	}
}

// stream is the live tail: drain every shard's ring past the session
// cursor, wait for the next append or heartbeat tick, repeat. A
// follower that falls off the ring mid-stream is told to resync and
// the session ends (it reconnects into a fresh bootstrap).
func (s *session) stream(wbuf *bytes.Buffer) {
	p := s.p
	hb := time.NewTicker(p.cfg.HeartbeatEvery)
	defer hb.Stop()
	for {
		ch := p.log.Updated()
		progress := false
		for i := 0; i < p.st.NumShards(); i++ {
			for {
				s.mu.Lock()
				from := s.sent[i]
				s.mu.Unlock()
				ops, ok := p.log.TailFrom(i, from, p.cfg.StreamBatch)
				if !ok {
					p.resyncs.Add(1)
					_ = net.WriteMsg(s.nc, wbuf, &net.Msg{Type: net.MsgResync})
					return
				}
				if len(ops) == 0 {
					break
				}
				err := net.WriteMsg(s.nc, wbuf, &net.Msg{
					Type: net.MsgWalBatch, Shard: uint32(i), Seq: from + 1, Ops: ops,
				})
				if err != nil {
					return
				}
				s.mu.Lock()
				s.sent[i] = from + uint64(len(ops))
				s.mu.Unlock()
				p.streamedOps.Add(uint64(len(ops)))
				progress = true
			}
		}
		if progress {
			continue
		}
		select {
		case <-s.done:
			return
		case <-ch:
		case <-hb.C:
			err := net.WriteMsg(s.nc, wbuf, &net.Msg{
				Type: net.MsgHeartbeat, Epoch: p.log.Epoch(), Seqs: p.log.Seqs(),
			})
			if err != nil {
				return
			}
		}
	}
}

// ackLoop consumes the follower's ack frames, credits the acked-op
// accounting (never past what was streamed), and wakes WaitAcked.
func (s *session) ackLoop() {
	p := s.p
	var scratch []byte
	for {
		m, sc, err := net.ReadMsg(s.nc, scratch)
		if err != nil {
			return
		}
		scratch = sc
		if m.Type != net.MsgAck || len(m.Seqs) != len(s.acked) {
			return
		}
		s.mu.Lock()
		var delta uint64
		for i, q := range m.Seqs {
			if q > s.sent[i] {
				q = s.sent[i] // a law, not trust: acked <= streamed
			}
			if q > s.acked[i] {
				delta += q - s.acked[i]
				s.acked[i] = q
			}
		}
		s.mu.Unlock()
		if delta > 0 {
			p.ackedOps.Add(delta)
		}
		p.mu.Lock()
		p.ackCond.Broadcast()
		p.mu.Unlock()
	}
}
