package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// summaryQuantiles are the quantile series a Histogram exposes.
var summaryQuantiles = []float64{0.5, 0.9, 0.99, 0.999}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): one `# TYPE` line per metric
// family, then its series sorted by label set. Counters and gauges
// emit one series each; histograms emit a summary — quantile-labeled
// series plus _sum and _count. Returns the first write error.
func (r *Registry) WritePrometheus(w io.Writer) error {
	ss := r.snapshot()
	// Group by family so each base name gets exactly one TYPE line with
	// its series contiguous, as the format requires.
	sort.SliceStable(ss, func(i, j int) bool {
		if ss[i].name != ss[j].name {
			return ss[i].name < ss[j].name
		}
		return ss[i].id < ss[j].id
	})
	var b strings.Builder
	prevName := ""
	for _, s := range ss {
		if s.name != prevName {
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.name, s.kind.promType())
			prevName = s.name
		}
		switch s.kind {
		case kindCounter:
			writeSeries(&b, s.id, float64(s.c.Value()))
		case kindGauge:
			writeSeries(&b, s.id, float64(s.g.Value()))
		case kindCounterFunc, kindGaugeFunc:
			writeSeries(&b, s.id, s.fn())
		case kindHistogram:
			h := s.h.h.Snapshot()
			for _, q := range summaryQuantiles {
				id := renderID(s.name, append(append([]Label{}, s.labels...),
					Label{"quantile", strconv.FormatFloat(q, 'g', -1, 64)}))
				writeSeries(&b, id, float64(h.Quantile(q)))
			}
			writeSeries(&b, renderID(s.name+"_sum", s.labels), float64(h.Sum()))
			writeSeries(&b, renderID(s.name+"_count", s.labels), float64(h.Count()))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSeries emits one sample line. Values render with full float64
// round-trip precision; counters and counts are exact below 2^53,
// far beyond any run this system does.
func writeSeries(b *strings.Builder, id string, v float64) {
	b.WriteString(id)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	b.WriteByte('\n')
}
