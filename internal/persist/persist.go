// Package persist is the durability layer of the serving stack: a
// versioned, checksummed, little-endian binary format for built
// indexes (via the per-family codecs in internal/registry), table data
// (block-aligned so large runs load through io.ReaderAt without an
// intermediate copy), per-shard write-ahead logs, and the snapshot
// manifest tying them together. serve.Store composes these into
// Snapshot/Open; this package owns only the bytes.
//
// Crash-safety discipline, used by every artifact: files are written
// to a temp name in the destination directory, fsynced, renamed into
// place, and the directory fsynced — a reader never observes a
// half-written file, only the old version or the new one. Every file
// carries a magic string, a format version, and a trailing CRC64 over
// its full contents (tables checksum each block separately so the
// header can be validated without streaming the data twice). Decoders
// validate every structural invariant and size every allocation
// against the bytes actually present, so corrupt or truncated input
// returns an error wrapped in binio.ErrCorrupt — never a panic, never
// an unbounded allocation. See DESIGN.md "Persistence".
package persist

import (
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"

	"repro/internal/binio"
	"repro/internal/core"
	"repro/internal/registry"
)

// Format version, bumped on any incompatible layout change. Decoders
// reject other versions rather than guessing.
const FormatVersion = 1

// maxTagLen bounds manifest/frame strings (family tags, config IDs,
// file names) — anything longer is corruption.
const maxTagLen = 4096

var indexMagic = []byte("sosdIDX1")

// AtomicWrite writes a file via temp + fsync + rename + directory
// fsync, the commit discipline shared by every persisted artifact.
// write receives a binio.Writer over the temp file.
func AtomicWrite(path string, write func(w *binio.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	w := binio.NewWriter(tmp)
	if err = write(w); err != nil {
		return err
	}
	if err = w.Err(); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	fsyncs.Add(1)
	if err = tmp.Close(); err != nil {
		return err
	}
	snapshotBytes.Add(uint64(w.Len()))
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Best-effort on platforms where directories cannot be fsynced.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	fsyncs.Add(1)
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		// Some filesystems return EINVAL for directory fsync; treat any
		// sync failure as best-effort rather than failing the commit.
		return nil
	}
	return nil
}

// EncodeIndex frames and writes a built index: magic, version, the
// family codec tag, the codec payload, and a trailing CRC64 over
// everything preceding it. Families without a registered codec (and
// the zero-size empty-table index) cannot be encoded; callers fall
// back to rebuild-at-load for those.
func EncodeIndex(w *binio.Writer, idx core.Index) error {
	family := idx.Name()
	codec, ok := registry.CodecFor(family)
	if !ok {
		return fmt.Errorf("persist: no codec for index family %q", family)
	}
	w.Bytes(indexMagic)
	w.U32(FormatVersion)
	w.Str(family)
	if err := codec.Encode(idx, w); err != nil {
		return err
	}
	w.U64(w.Sum64())
	return w.Err()
}

// DecodeIndex reconstructs a built index from an encoded frame,
// verifying magic, version, and checksum before handing the payload to
// the family decoder. The whole frame must be consumed — trailing
// garbage is corruption.
func DecodeIndex(data []byte) (core.Index, error) {
	if len(data) < len(indexMagic)+4+4+8 {
		return nil, binio.Corruptf("persist: index frame too short (%d bytes)", len(data))
	}
	body, err := checkCRCFrame(data)
	if err != nil {
		return nil, err
	}
	r := binio.NewReader(body)
	if string(r.Bytes(len(indexMagic))) != string(indexMagic) {
		return nil, binio.Corruptf("persist: bad index magic")
	}
	if v := r.U32(); v != FormatVersion {
		return nil, binio.Corruptf("persist: index format version %d, want %d", v, FormatVersion)
	}
	family := r.Str(maxTagLen)
	if err := r.Err(); err != nil {
		return nil, err
	}
	codec, ok := registry.CodecFor(family)
	if !ok {
		return nil, binio.Corruptf("persist: no codec for index family %q", family)
	}
	idx, err := codec.Decode(r)
	if err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, binio.Corruptf("persist: %d trailing bytes after index payload", r.Remaining())
	}
	return idx, nil
}

// WriteIndex atomically writes an index frame to path.
func WriteIndex(path string, idx core.Index) error {
	return AtomicWrite(path, func(w *binio.Writer) error { return EncodeIndex(w, idx) })
}

// ReadIndex loads and decodes an index frame from path.
func ReadIndex(path string) (core.Index, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeIndex(data)
}

// checkCRCFrame verifies a file whose last 8 bytes are the CRC64 of
// everything before them, returning the body.
func checkCRCFrame(data []byte) ([]byte, error) {
	if len(data) < 8 {
		return nil, binio.Corruptf("persist: frame shorter than its checksum")
	}
	body := data[:len(data)-8]
	r := binio.NewReader(data[len(data)-8:])
	want := r.U64()
	if got := crc64.Checksum(body, binio.CRCTable); got != want {
		return nil, binio.Corruptf("persist: checksum mismatch (have %x, want %x)", got, want)
	}
	return body, nil
}
