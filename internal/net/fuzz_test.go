package net

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/binio"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/stats"
)

// seedMsgs returns one representative message per protocol type.
func seedMsgs() []*Msg {
	h := &stats.Histogram{}
	h.Record(1500)
	h.Record(90_000)
	h.Record(2_500_000)
	return []*Msg{
		{Type: MsgGet, ID: 1, Key: 42},
		{Type: MsgGetBatch, ID: 2, Keys: []core.Key{1, 5, 9, 1 << 40}},
		{Type: MsgPut, ID: 3, Key: 7, Val: 700},
		{Type: MsgDelete, ID: 4, Key: 7},
		{Type: MsgStats, ID: 5},
		{Type: MsgValue, ID: 6, Val: 700, Found: true},
		{Type: MsgValue, ID: 7, Val: 0, Found: false},
		{Type: MsgValueBatch, ID: 8, FoundN: 2, Vals: []uint64{3, 0, 9}},
		{Type: MsgOK, ID: 9},
		{Type: MsgRetryLater, ID: 10},
		{Type: MsgError, ID: 11, Err: "shard 3: index rebuild in progress"},
		{Type: MsgStatsReply, ID: 12, Stats: &Stats{
			Conns: 2, Accepted: 100, Shed: 3, Batches: 10, BatchedKeys: 60,
			QueueDepth: 1, MaxQueueDepth: 17, Latency: h.Snapshot(),
		}},
		{Type: MsgStatsReply, ID: 13, Stats: &Stats{
			Conns: 1, Accepted: 42, Latency: h.Snapshot(),
			Vars: []obs.Var{
				{Name: "sosd_net_accepted_total", Value: 42},
				{Name: `sosd_shard_runs{shard="0"}`, Value: 3},
				{Name: "sosd_store_read_amp", Value: 1.75},
			},
		}},
		{Type: MsgSubscribe, ID: 14, Epoch: 0xfeed, Gen: 3, Seqs: []uint64{12, 0, 7, 99}},
		{Type: MsgSubscribe, ID: 15, Epoch: 1, Gen: 0}, // fresh follower: no seqs
		{Type: MsgResync, ID: 16},
		{Type: MsgSnapFile, ID: 17, Name: "shard-0001-g000003-r00.tab", Val: 262144,
			Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{Type: MsgSnapFile, ID: 18, Name: "MANIFEST", Val: 0, Found: true, Data: []byte("x")},
		{Type: MsgSnapEnd, ID: 19, Epoch: 0xfeed, Gen: 3, Seqs: []uint64{100, 200}},
		{Type: MsgWalBatch, ID: 20, Shard: 2, Seq: 101, Ops: []persist.Op{
			{Key: 5, Val: 50}, {Key: 9, Tomb: true},
		}},
		{Type: MsgAck, ID: 21, Seqs: []uint64{101, 0}},
		{Type: MsgHeartbeat, ID: 22, Epoch: 0xfeed, Seqs: []uint64{103, 4}},
		{Type: MsgTopo, ID: 23},
		{Type: MsgTopoReply, ID: 24, Gen: 3, Keys: []core.Key{1 << 20, 1 << 40, 1 << 60}},
		{Type: MsgReplStat, ID: 25},
		{Type: MsgReplStatReply, ID: 26, Role: RoleFollower, Epoch: 0xfeed, Gen: 3,
			Seqs: []uint64{101, 4}},
		{Type: MsgPromote, ID: 27},
	}
}

// seedFrame encodes m as a framed wire message (length|body|crc).
func seedFrame(tb testing.TB, m *Msg) []byte {
	tb.Helper()
	var body, framed bytes.Buffer
	b, err := encodeMsg(&body, m)
	if err != nil {
		tb.Fatalf("encode seed type %d: %v", m.Type, err)
	}
	if err := binio.WriteFramed(&framed, b); err != nil {
		tb.Fatal(err)
	}
	return framed.Bytes()
}

// FuzzFrame is the satellite fuzz target over wire-frame decoding. The
// first byte routes: 0 feeds the payload straight to the message
// decoder (the frame layer already stripped), anything else runs the
// full framed path — binio.ReadFramed then decodeMsg — exactly as the
// server's reader loop does. The contract under fuzz: an error or a
// well-formed message, never a panic; and anything that decodes must
// re-encode (the server echoes decoded ids back, so a decoded message
// re-enters the encoder).
func FuzzFrame(f *testing.F) {
	for _, m := range seedMsgs() {
		frame := seedFrame(f, m)
		f.Add(append([]byte{1}, frame...))
		f.Add(append([]byte{0}, frame[4:len(frame)-8]...)) // bare body
	}
	f.Add([]byte{})
	f.Add([]byte{1, 0xff, 0xff, 0xff, 0x7f}) // huge length prefix
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		sel, payload := data[0], data[1:]
		var m *Msg
		var err error
		if sel == 0 {
			m, err = decodeMsg(payload)
		} else {
			var body []byte
			body, err = binio.ReadFramed(bytes.NewReader(payload), nil, MaxFrameBody)
			if err == nil {
				m, err = decodeMsg(body)
			}
		}
		if err != nil {
			if m != nil {
				t.Fatalf("decoder returned both a message and an error: %v", err)
			}
			return
		}
		if m == nil {
			t.Fatal("decoder returned nil message with nil error")
		}
		// Structural invariants the rest of the stack relies on.
		if m.Type == 0 || m.Type >= msgTypeEnd {
			t.Fatalf("decoded message has invalid type %d", m.Type)
		}
		if m.Type == MsgValueBatch && int(m.FoundN) > len(m.Vals) {
			t.Fatalf("decoded FoundN %d > %d vals", m.FoundN, len(m.Vals))
		}
		if m.Type == MsgStatsReply && m.Stats.Latency == nil {
			t.Fatal("decoded stats reply without histogram")
		}
		// Round-trip: a decoded message is always re-encodable, and the
		// re-encoding decodes back to the same wire bytes.
		var buf bytes.Buffer
		body, err := encodeMsg(&buf, m)
		if err != nil {
			t.Fatalf("re-encode of decoded message failed: %v", err)
		}
		if sel == 0 && !bytes.Equal(body, payload) {
			t.Fatalf("re-encode diverged from wire bytes for type %d", m.Type)
		}
	})
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpus under
// testdata/fuzz when NET_WRITE_CORPUS=1 — run it after a protocol
// change and commit the result so `go test -fuzz` always starts from
// valid frames of the current version.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("NET_WRITE_CORPUS") == "" {
		t.Skip("set NET_WRITE_CORPUS=1 to regenerate testdata/fuzz")
	}
	write := func(name string, data []byte) {
		dir := filepath.Join("testdata", "fuzz", "FuzzFrame")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range seedMsgs() {
		frame := seedFrame(t, m)
		name := "type-" + strconv.Itoa(int(m.Type)) + "-id-" + strconv.FormatUint(m.ID, 10)
		write("framed-"+name, append([]byte{1}, frame...))
		write("body-"+name, append([]byte{0}, frame[4:len(frame)-8]...))
		// Keep the error paths in the corpus: a truncation and a CRC-
		// breaking bit flip per type.
		write("trunc-"+name, append([]byte{1}, frame[:len(frame)/2]...))
		flipped := append([]byte{1}, frame...)
		flipped[len(flipped)-4] ^= 0x10
		write("flip-"+name, flipped)
	}
}
