package net

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/load"
	"repro/internal/serve"
)

// The pool is the generators' network target.
var (
	_ load.Target    = (*Pool)(nil)
	_ load.ErrTarget = (*Pool)(nil)
)

// newServed builds a store over n amzn keys and a server fronting it,
// both torn down with the test. Payloads are i*3+7 (never zero, except
// where a test writes zero on purpose).
func newServed(t testing.TB, n int, cfg Config) (*Server, *serve.Store, []core.Key, []uint64) {
	t.Helper()
	keys := dataset.MustGenerate(dataset.Amzn, n, 17)
	payloads := make([]uint64, len(keys))
	for i := range payloads {
		payloads[i] = uint64(i)*3 + 7
	}
	st, err := serve.New(keys, payloads, serve.Config{Shards: 4, Family: "PGM"})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Listen("127.0.0.1:0", st, cfg)
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = srv.Close()
		st.Close()
	})
	return srv, st, keys, payloads
}

func dial(t testing.TB, srv *Server) *Client {
	t.Helper()
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// TestEndToEnd smoke-tests every request type over a live connection.
func TestEndToEnd(t *testing.T) {
	srv, _, keys, payloads := newServed(t, 2000, Config{})
	c := dial(t, srv)

	for _, i := range []int{0, 1, 999, len(keys) - 1} {
		v, ok, err := c.Get(keys[i])
		if err != nil || !ok || v != payloads[i] {
			t.Fatalf("Get(keys[%d]) = %d,%v,%v want %d,true,nil", i, v, ok, err, payloads[i])
		}
	}
	if _, ok, err := c.Get(keys[0] - 1); err != nil || ok {
		t.Fatalf("absent Get: ok=%v err=%v", ok, err)
	}

	batch := []core.Key{keys[5], keys[0] - 1, keys[700], keys[5]}
	out := make([]uint64, len(batch))
	found, err := c.GetBatch(batch, out)
	if err != nil || found != 3 {
		t.Fatalf("GetBatch found=%d err=%v", found, err)
	}
	if out[0] != payloads[5] || out[1] != 0 || out[2] != payloads[700] || out[3] != payloads[5] {
		t.Fatalf("GetBatch values %v", out)
	}

	if err := c.Put(keys[9], 424242); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := c.Get(keys[9]); !ok || v != 424242 {
		t.Fatalf("Put not visible: %d,%v", v, ok)
	}
	if err := c.Delete(keys[9]); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Get(keys[9]); ok {
		t.Fatal("Delete not visible")
	}

	s, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Accepted == 0 || s.Conns != 1 || s.Latency == nil || s.Latency.Count() == 0 {
		t.Fatalf("stats degenerate: %+v", s)
	}
	if s.Shed != 0 {
		t.Fatalf("unexpected sheds in healthy run: %+v", s)
	}
}

// TestZeroPayload pins the zero-value disambiguation: a present key
// whose payload is 0 must read found=true over the wire, both as a
// coalesced point Get and inside a batch's found count.
func TestZeroPayload(t *testing.T) {
	srv, _, keys, _ := newServed(t, 1000, Config{})
	c := dial(t, srv)
	if err := c.Put(keys[3], 0); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get(keys[3])
	if err != nil || !ok || v != 0 {
		t.Fatalf("zero-payload Get = %d,%v,%v want 0,true,nil", v, ok, err)
	}
	out := make([]uint64, 2)
	found, err := c.GetBatch([]core.Key{keys[3], keys[0] - 1}, out)
	if err != nil || found != 1 || out[0] != 0 {
		t.Fatalf("zero-payload GetBatch found=%d out=%v err=%v", found, out, err)
	}
}

// TestConformance is the satellite conformance suite: the network path
// (client → frames → server → coalescer/store) is held to an
// in-process serve.Store oracle over a randomized operation stream.
// Both stores are built from the same data; every operation is applied
// to both; every read must agree exactly — including keys absent,
// tombstoned, zero-valued, and hugging shard boundaries.
func TestConformance(t *testing.T) {
	srv, _, keys, _ := newServed(t, 4000, Config{})
	c := dial(t, srv)

	payloads := make([]uint64, len(keys))
	for i := range payloads {
		payloads[i] = uint64(i)*3 + 7
	}
	oracle, err := serve.New(keys, payloads, serve.Config{Shards: 4, Family: "BTree"})
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()

	// Probe keys: uniform members, absent keys (midpoints and out of
	// range), and every shard-boundary neighborhood. The oracle store
	// has the same shard count, so its separators sit at the same
	// near-equal cuts.
	rng := rand.New(rand.NewSource(42))
	var probes []core.Key
	for i := 0; i < 4; i++ {
		b := i * len(keys) / 4
		for _, off := range []int{-1, 0, 1} {
			if j := b + off; j >= 0 && j < len(keys) {
				probes = append(probes, keys[j], keys[j]+1)
			}
		}
	}
	probes = append(probes, keys[0]-1, keys[len(keys)-1]+1)

	get := func(k core.Key) {
		t.Helper()
		gv, gok, gerr := c.Get(k)
		if gerr != nil {
			t.Fatal(gerr)
		}
		wv, wok := oracle.Get(k)
		if gv != wv || gok != wok {
			t.Fatalf("Get(%d): net %d,%v oracle %d,%v", k, gv, gok, wv, wok)
		}
	}

	for step := 0; step < 3000; step++ {
		var k core.Key
		switch rng.Intn(4) {
		case 0: // uniform member
			k = keys[rng.Intn(len(keys))]
		case 1: // boundary/absent probe
			k = probes[rng.Intn(len(probes))]
		case 2: // random absent-ish
			k = core.Key(rng.Uint64())
		default: // fresh key near a member (insert territory)
			k = keys[rng.Intn(len(keys))] + core.Key(rng.Intn(3))
		}
		switch op := rng.Intn(10); {
		case op < 5:
			get(k)
		case op < 7:
			v := uint64(rng.Intn(5)) // zero payloads on purpose
			if err := c.Put(k, v); err != nil {
				t.Fatal(err)
			}
			oracle.Put(k, v)
		case op < 8:
			if err := c.Delete(k); err != nil {
				t.Fatal(err)
			}
			oracle.Delete(k)
		default: // batch read mixing member/absent/boundary keys
			n := 1 + rng.Intn(16)
			batch := make([]core.Key, n)
			for i := range batch {
				if rng.Intn(2) == 0 {
					batch[i] = keys[rng.Intn(len(keys))]
				} else {
					batch[i] = probes[rng.Intn(len(probes))]
				}
			}
			out := make([]uint64, n)
			gf, err := c.GetBatch(batch, out)
			if err != nil {
				t.Fatal(err)
			}
			wout := make([]uint64, n)
			wf := oracle.GetBatch(batch, wout)
			if gf != wf {
				t.Fatalf("step %d: GetBatch found %d, oracle %d", step, gf, wf)
			}
			for i := range out {
				if out[i] != wout[i] {
					t.Fatalf("step %d: GetBatch[%d] (key %d) = %d, oracle %d",
						step, i, batch[i], out[i], wout[i])
				}
			}
		}
	}
}

// TestConcurrentClientsOrdering checks multiplexing under concurrent
// callers on one shared client: interleaved responses must land on
// their own callers (request ids, not arrival order).
func TestConcurrentClientsOrdering(t *testing.T) {
	srv, _, keys, payloads := newServed(t, 4000, Config{})
	c := dial(t, srv)
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				j := rng.Intn(len(keys))
				v, ok, err := c.Get(keys[j])
				if err != nil {
					done <- err
					return
				}
				if !ok || v != payloads[j] {
					done <- errMismatch(keys[j], v, ok)
					return
				}
			}
			done <- nil
		}(int64(w))
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func errMismatch(k core.Key, v uint64, ok bool) error {
	return &mismatchErr{k, v, ok}
}

type mismatchErr struct {
	k  core.Key
	v  uint64
	ok bool
}

func (e *mismatchErr) Error() string {
	return "mismatched response for key"
}

// TestCoalescing drives concurrent point Gets and asserts they were
// actually coalesced: fewer GetBatch rounds than lookups, with a mean
// batch size clearly above one.
func TestCoalescing(t *testing.T) {
	srv, _, keys, _ := newServed(t, 4000, Config{
		CoalesceWindow: 200 * time.Microsecond,
	})
	pool, err := DialPool(srv.Addr().String(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	ops := load.MixedOps(keys, 4000, 1, 0, 7)
	res := load.RunClosed(pool, ops, load.Config{Workers: 8})
	if res.Ops != len(ops) || res.Errors != 0 {
		t.Fatalf("run degenerate: %+v", res)
	}
	s, err := pool.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.BatchedKeys == 0 || s.Batches == 0 {
		t.Fatalf("no coalescing: %+v", s)
	}
	mean := float64(s.BatchedKeys) / float64(s.Batches)
	if mean < 2 {
		t.Fatalf("mean coalesced batch %.2f < 2 (batches=%d keys=%d)", mean, s.Batches, s.BatchedKeys)
	}
}
