// Package stats implements the statistical machinery of the
// benchmark: the linear-regression analysis of Section 4.3 (ordinary
// least squares with an intercept, standardized coefficients, R², and
// two-sided p-values from the Student t-distribution, computed via the
// regularized incomplete beta function, stdlib only), and the
// log-linear latency Histogram behind the tail-latency experiments
// (lock-free recording, mergeable, quantiles with a documented
// relative-error bound).
package stats

import (
	"errors"
	"fmt"
	"math"
)

// Regression is a fitted OLS model y = b0 + b1*x1 + ... + bk*xk.
type Regression struct {
	// Names labels the predictors (no intercept entry).
	Names []string
	// Coef holds the raw coefficients, intercept first.
	Coef []float64
	// StdCoef holds standardized coefficients (beta weights) per
	// predictor: the number of standard deviations of y moved by one
	// standard deviation of the predictor, holding others fixed.
	StdCoef []float64
	// PValues holds two-sided p-values per predictor (intercept
	// excluded), testing the null hypothesis that the coefficient is
	// zero.
	PValues []float64
	// R2 is the coefficient of determination.
	R2 float64
	// N and DF are the sample size and residual degrees of freedom.
	N, DF int
}

// OLS fits y against the named predictor columns. Every column must
// have len(y) entries.
func OLS(y []float64, names []string, cols ...[]float64) (*Regression, error) {
	n := len(y)
	k := len(cols)
	if k == 0 {
		return nil, errors.New("stats: no predictors")
	}
	if len(names) != k {
		return nil, errors.New("stats: names/columns mismatch")
	}
	for _, c := range cols {
		if len(c) != n {
			return nil, errors.New("stats: column length mismatch")
		}
	}
	if n <= k+1 {
		return nil, fmt.Errorf("stats: need more than %d observations, have %d", k+1, n)
	}

	// Normal equations (X'X) b = X'y with an intercept column.
	p := k + 1
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p+1)
	}
	at := func(row, col int) float64 {
		if col == 0 {
			return 1
		}
		return cols[col-1][row]
	}
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			s := 0.0
			for r := 0; r < n; r++ {
				s += at(r, i) * at(r, j)
			}
			xtx[i][j] = s
		}
		s := 0.0
		for r := 0; r < n; r++ {
			s += at(r, i) * y[r]
		}
		xtx[i][p] = s
	}
	inv, b, err := solveWithInverse(xtx, p)
	if err != nil {
		return nil, err
	}

	// Residuals and R².
	meanY := mean(y)
	ssTot, ssRes := 0.0, 0.0
	for r := 0; r < n; r++ {
		pred := b[0]
		for j := 0; j < k; j++ {
			pred += b[j+1] * cols[j][r]
		}
		ssRes += (y[r] - pred) * (y[r] - pred)
		ssTot += (y[r] - meanY) * (y[r] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}

	df := n - p
	sigma2 := ssRes / float64(df)
	reg := &Regression{
		Names:   append([]string(nil), names...),
		Coef:    b,
		StdCoef: make([]float64, k),
		PValues: make([]float64, k),
		R2:      r2,
		N:       n,
		DF:      df,
	}
	sdY := stddev(y)
	for j := 0; j < k; j++ {
		se := math.Sqrt(sigma2 * inv[j+1][j+1])
		tStat := math.Inf(1)
		if se > 0 {
			tStat = b[j+1] / se
		}
		reg.PValues[j] = 2 * (1 - tCDF(math.Abs(tStat), float64(df)))
		if sdY > 0 {
			reg.StdCoef[j] = b[j+1] * stddev(cols[j]) / sdY
		}
	}
	return reg, nil
}

// solveWithInverse Gaussian-eliminates the augmented system [A | b]
// while also computing A^-1 (needed for coefficient standard errors).
func solveWithInverse(aug [][]float64, p int) (inv [][]float64, x []float64, err error) {
	// Build [A | I | b].
	m := make([][]float64, p)
	for i := 0; i < p; i++ {
		m[i] = make([]float64, 2*p+1)
		copy(m[i][:p], aug[i][:p])
		m[i][p+i] = 1
		m[i][2*p] = aug[i][p]
	}
	for col := 0; col < p; col++ {
		piv := col
		for r := col + 1; r < p; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return nil, nil, errors.New("stats: singular design matrix (collinear predictors)")
		}
		m[col], m[piv] = m[piv], m[col]
		d := m[col][col]
		for c := col; c <= 2*p; c++ {
			m[col][c] /= d
		}
		for r := 0; r < p; r++ {
			if r == col {
				continue
			}
			f := m[r][col]
			if f == 0 {
				continue
			}
			for c := col; c <= 2*p; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	inv = make([][]float64, p)
	x = make([]float64, p)
	for i := 0; i < p; i++ {
		inv[i] = m[i][p : 2*p]
		x[i] = m[i][2*p]
	}
	return inv, x, nil
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

func stddev(xs []float64) float64 {
	m := mean(xs)
	s := 0.0
	for _, v := range xs {
		s += (v - m) * (v - m)
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// tCDF returns P(T <= t) for Student's t with df degrees of freedom,
// t >= 0, via the regularized incomplete beta function.
func tCDF(t, df float64) float64 {
	if math.IsInf(t, 1) {
		return 1
	}
	x := df / (df + t*t)
	ib := regIncBeta(df/2, 0.5, x)
	return 1 - 0.5*ib
}

// regIncBeta computes the regularized incomplete beta function
// I_x(a, b) using the continued-fraction expansion (Numerical Recipes
// style, modified Lentz algorithm).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func betaCF(a, b, x float64) float64 {
	const maxIter = 300
	const eps = 1e-14
	const tiny = 1e-30
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// String renders a compact regression report.
func (r *Regression) String() string {
	s := fmt.Sprintf("R²=%.3f n=%d df=%d\n", r.R2, r.N, r.DF)
	for j, name := range r.Names {
		s += fmt.Sprintf("  %-14s coef=%+.4g std=%+.3f p=%.4g\n",
			name, r.Coef[j+1], r.StdCoef[j], r.PValues[j])
	}
	return s
}
