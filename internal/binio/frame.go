package binio

// Framed-message transport: the length-prefixed, checksummed envelope
// shared by every consumer that moves binio-encoded payloads across a
// byte stream (the network serving front end in internal/net; any
// future log-shipping path). A framed message on the wire is
//
//	u32 n  | n bytes body | u64 CRC64(body)
//
// so a receiver can size its read before touching the body, and a
// corrupt or truncated frame is an ErrCorrupt error, never a panic or
// an unbounded allocation — the same contract the persistence decoders
// already hold.

import (
	"encoding/binary"
	"hash/crc64"
	"io"
)

// frameOverhead is the non-body byte count of a framed message: the
// u32 length prefix plus the u64 CRC trailer.
const frameOverhead = 4 + 8

// WriteFramed writes body to w as one framed message. The body bytes
// are written exactly once; the checksum is computed here, so callers
// hand over raw encoded bytes and nothing else.
func WriteFramed(w io.Writer, body []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	var tail [8]byte
	binary.LittleEndian.PutUint64(tail[:], crc64.Checksum(body, CRCTable))
	_, err := w.Write(tail[:])
	return err
}

// ReadFramed reads one framed message from r, reusing buf when it is
// large enough, and returns the verified body (a view into the
// returned buffer, valid until the next reuse). A length prefix beyond
// maxBody, a short read past the prefix, or a checksum mismatch is an
// ErrCorrupt error; an io.EOF before any prefix byte is returned as
// io.EOF so stream consumers can tell a clean close from a torn frame.
func ReadFramed(r io.Reader, buf []byte, maxBody int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, Corruptf("frame prefix: %v", err)
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n < 0 || n > maxBody {
		return nil, Corruptf("frame length %d exceeds limit %d", n, maxBody)
	}
	need := n + 8
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, Corruptf("frame body: %v", err)
	}
	body := buf[:n]
	want := binary.LittleEndian.Uint64(buf[n:])
	if got := crc64.Checksum(body, CRCTable); got != want {
		return nil, Corruptf("frame checksum mismatch: got %016x want %016x", got, want)
	}
	return body, nil
}
