package dataset

import "time"

// Arrivals returns n request arrival offsets of a Poisson process with
// the given mean rate (requests per second): offsets from the start of
// the run, strictly increasing, with independent exponential
// inter-arrival gaps. This is the arrival schedule of the open-loop
// load generator (internal/load): measuring latency from these
// scheduled instants rather than from actual send times is what makes
// the measurement free of coordinated omission. Deterministic in seed;
// rate must be positive.
func Arrivals(n int, rate float64, seed uint64) []time.Duration {
	if rate <= 0 {
		panic("dataset: Arrivals rate must be positive")
	}
	r := newRNG(seed ^ 0xA221)
	out := make([]time.Duration, n)
	t := 0.0
	prev := time.Duration(-1)
	for i := range out {
		t += r.exp() / rate // seconds
		d := time.Duration(t * float64(time.Second))
		if d <= prev {
			d = prev + 1 // sub-ns gaps collapse at Duration resolution
		}
		out[i] = d
		prev = d
	}
	return out
}
