// SSTable scenario: the paper's motivating workload for read-only
// learned indexes (Section 1 cites LSM-trees whose immutable runs are
// "moving towards immutable read-only data structures").
//
// This example models one immutable sorted run of key/value pairs and
// serves point reads and short range scans through three interchangeable
// indexes — a learned RMI, a PGM index, and a B+tree — comparing their
// footprints on the same data.
package main

import (
	"fmt"
	"log"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/pgm"
	"repro/internal/rmi"
	"repro/internal/search"
)

// sstable is an immutable sorted run with a pluggable index.
type sstable struct {
	keys     []core.Key
	values   []uint64
	index    core.Index
	idxBuild string
}

// get returns the value for key, or false when absent.
func (s *sstable) get(key core.Key) (uint64, bool) {
	b := s.index.Lookup(key)
	pos := search.BinarySearch(s.keys, key, b)
	if pos < len(s.keys) && s.keys[pos] == key {
		return s.values[pos], true
	}
	return 0, false
}

// scan sums the values of all keys in [lo, hi).
func (s *sstable) scan(lo, hi core.Key) (sum uint64, count int) {
	b := s.index.Lookup(lo)
	pos := search.BinarySearch(s.keys, lo, b)
	for pos < len(s.keys) && s.keys[pos] < hi {
		sum += s.values[pos]
		count++
		pos++
	}
	return sum, count
}

func main() {
	const n = 500_000
	// Timestamps, as in a time-series ingest: the wiki generator.
	keys := dataset.MustGenerate(dataset.Wiki, n, 3)
	values := dataset.Payloads(n, 3)

	builders := []struct {
		name  string
		build func() (core.Index, error)
	}{
		{"RMI", func() (core.Index, error) {
			return rmi.New(keys, rmi.Tune(keys, 256<<10))
		}},
		{"PGM", func() (core.Index, error) { return pgm.New(keys, 64) }},
		{"BTree", func() (core.Index, error) { return btree.Builder{Stride: 16}.Build(keys) }},
	}

	for _, b := range builders {
		idx, err := b.build()
		if err != nil {
			log.Fatal(err)
		}
		run := &sstable{keys: keys, values: values, index: idx, idxBuild: b.name}

		// Point reads of present and absent keys.
		hit, ok := run.get(keys[n/3])
		if !ok {
			log.Fatalf("%s: present key missing", b.name)
		}
		if _, ok := run.get(keys[n/3] + 1); ok {
			log.Fatalf("%s: absent key found", b.name)
		}

		// A short range scan, e.g. "all edits in a 10-minute window".
		lo := keys[n/2]
		hi := lo + 600_000 // 600s at millisecond resolution
		sum, count := run.scan(lo, hi)

		fmt.Printf("%-6s index %8.1f KiB: point read=%#x, scan[%d keys] sum=%#x\n",
			b.name, float64(idx.SizeBytes())/1024, hit, count, sum)
	}
}
