package pgm

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

func checkValidity(t *testing.T, idx core.Index, keys []core.Key, probes []core.Key) {
	t.Helper()
	for _, x := range probes {
		b := idx.Lookup(x)
		if !core.ValidBound(keys, x, b) {
			t.Fatalf("%s: invalid bound %v for key %d (lb=%d)", idx.Name(), b, x, core.LowerBound(keys, x))
		}
	}
}

func probesFor(keys []core.Key) []core.Key {
	probes := make([]core.Key, 0, 3*len(keys)+4)
	for _, k := range keys {
		probes = append(probes, k, k+1)
		if k > 0 {
			probes = append(probes, k-1)
		}
	}
	probes = append(probes, 0, 1, ^core.Key(0), ^core.Key(0)-1)
	return probes
}

func TestPGMValidityAllDatasets(t *testing.T) {
	for _, name := range dataset.All() {
		keys := dataset.MustGenerate(name, 5000, 1)
		probes := probesFor(keys)
		for _, eps := range []int{1, 4, 16, 64, 256} {
			idx, err := New(keys, eps)
			if err != nil {
				t.Fatalf("%s eps=%d: %v", name, eps, err)
			}
			checkValidity(t, idx, keys, probes)
		}
	}
}

func TestPGMBoundWidth(t *testing.T) {
	// On unique-key datasets bounds stay within 2*(eps+2)+1: the eps
	// corridor plus the absent-key/rounding margins.
	keys := dataset.MustGenerate(dataset.OSM, 10000, 1)
	for _, eps := range []int{2, 32} {
		idx, _ := New(keys, eps)
		maxW := 2*(eps+2) + 1
		for _, k := range keys {
			if w := idx.Lookup(k).Width(); w > maxW {
				t.Fatalf("eps=%d: bound width %d > %d", eps, w, maxW)
			}
		}
	}
}

func TestPGMEmpty(t *testing.T) {
	if _, err := New(nil, 8); err == nil {
		t.Fatal("expected error on empty keys")
	}
}

func TestPGMSingleKey(t *testing.T) {
	keys := []core.Key{42}
	idx, err := New(keys, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkValidity(t, idx, keys, []core.Key{0, 41, 42, 43, ^core.Key(0)})
	if idx.NumLevels() != 1 || idx.NumSegments() != 1 {
		t.Errorf("single key: levels=%d segments=%d", idx.NumLevels(), idx.NumSegments())
	}
}

func TestPGMDuplicates(t *testing.T) {
	keys := make([]core.Key, 0, 60)
	for i := 0; i < 20; i++ {
		keys = append(keys, 100, 100, 100)
	}
	for i := range keys {
		if i >= 30 {
			keys[i] = core.Key(200 + i)
		}
	}
	// re-sort after the edit
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			t.Fatal("test bug: keys not sorted")
		}
	}
	idx, err := New(keys, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkValidity(t, idx, keys, probesFor(keys))
}

func TestPGMLinearDataOneSegment(t *testing.T) {
	// Perfectly linear data must collapse to a single segment per level.
	keys := make([]core.Key, 10000)
	for i := range keys {
		keys[i] = core.Key(10 * i)
	}
	idx, _ := New(keys, 4)
	if idx.NumSegments() != 1 {
		t.Errorf("linear data produced %d segments, want 1", idx.NumSegments())
	}
	if idx.NumLevels() != 1 {
		t.Errorf("linear data produced %d levels, want 1", idx.NumLevels())
	}
}

func TestPGMEpsSizeTradeoff(t *testing.T) {
	// Smaller epsilon must produce more segments (larger index).
	keys := dataset.MustGenerate(dataset.OSM, 50000, 1)
	small, _ := New(keys, 256)
	large, _ := New(keys, 4)
	if large.SizeBytes() <= small.SizeBytes() {
		t.Errorf("eps=4 size %d should exceed eps=256 size %d", large.SizeBytes(), small.SizeBytes())
	}
}

func TestPGMMoreSegmentsOnOSM(t *testing.T) {
	// The paper: osm needs far more capacity at equal error than amzn.
	n := 50000
	amzn := dataset.MustGenerate(dataset.Amzn, n, 1)
	osm := dataset.MustGenerate(dataset.OSM, n, 1)
	ia, _ := New(amzn, 16)
	io, _ := New(osm, 16)
	if io.NumSegments() <= ia.NumSegments() {
		t.Errorf("osm segments (%d) should exceed amzn (%d)", io.NumSegments(), ia.NumSegments())
	}
}

func TestPGMEpsClamp(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Wiki, 1000, 1)
	idx, err := New(keys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Eps() != 1 {
		t.Errorf("eps=0 should clamp to 1, got %d", idx.Eps())
	}
	checkValidity(t, idx, keys, probesFor(keys))
}

func TestPGMBuilderInterface(t *testing.T) {
	var b core.Builder = Builder{Eps: 16}
	if b.Name() != "PGM" {
		t.Errorf("name = %q", b.Name())
	}
	keys := dataset.MustGenerate(dataset.Face, 3000, 1)
	idx, err := b.Build(keys)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Name() != "PGM" || idx.SizeBytes() <= 0 {
		t.Error("index metadata wrong")
	}
	checkValidity(t, idx, keys, probesFor(keys))
}

func TestPGMLevelsShrink(t *testing.T) {
	keys := dataset.MustGenerate(dataset.OSM, 100000, 1)
	idx, _ := New(keys, 8)
	if idx.NumLevels() < 2 {
		t.Skipf("osm at this size built only %d levels", idx.NumLevels())
	}
	// Each level must be strictly smaller than the one below.
	for li := 1; li < idx.NumLevels(); li++ {
		if len(idx.levels[li]) >= len(idx.levels[li-1]) {
			t.Errorf("level %d (%d segs) not smaller than level %d (%d)",
				li, len(idx.levels[li]), li-1, len(idx.levels[li-1]))
		}
	}
}

func TestPGMAvgLog2Error(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Amzn, 1000, 1)
	idx, _ := New(keys, 7)
	// Bound widths are between 3 (margins floor) and 2*(eps+2)+1, so
	// the mean log2 width must fall in [log2(4), log2(2*9+1+1)].
	got := idx.AvgLog2Error()
	if got < 1 || got > math.Log2(float64(2*(7+2)+2)) {
		t.Errorf("AvgLog2Error = %f out of range", got)
	}
}

func TestFitSegmentsErrorGuarantee(t *testing.T) {
	// Direct property of the corridor filter: every point predicted
	// within eps by its own segment.
	for _, name := range dataset.All() {
		keys := dataset.MustGenerate(name, 20000, 2)
		for _, eps := range []int{1, 8, 64} {
			segs := fitSegments(keys, eps)
			si := 0
			for i, k := range keys {
				for si+1 < len(segs) && segs[si+1].Key <= k {
					si++
				}
				s := segs[si]
				nextPos := len(keys)
				if si+1 < len(segs) {
					nextPos = int(segs[si+1].Pos)
				}
				pred := predict(s, nextPos, k)
				if d := pred - i; d > eps+1 || d < -eps-1 {
					t.Fatalf("%s eps=%d: point %d predicted %d (err %d)", name, eps, i, pred, d)
				}
			}
		}
	}
}

func TestPGMString(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Amzn, 1000, 1)
	idx, _ := New(keys, 8)
	if idx.String() == "" {
		t.Error("empty String()")
	}
}
