package report

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// sampleTables builds a deterministic pair of tables exercising every
// schema feature: float and int metrics, precision, notes, and a
// dimensions-only table.
func sampleTables() []*Table {
	sweep := New("fig7", "Figure 7: performance/size tradeoffs (warm cache, tight loop)").
		Dims("data", "index", "config").
		Float("size(MB)", "MB", 4).
		Float("ns/lookup", "ns", 1).
		Int("probes", "")
	sweep.Row([]string{"amzn", "BS", ""}, 0, 812.5, 18)
	sweep.Row([]string{"amzn", "RMI", "branch=256"}, 1.2345, 96.25, 3)
	sweep.Row([]string{"osm", "PGM", "eps=16"}, 0.0375, 240, 7)
	sweep.Notef("BS is the size-0 binary-search baseline")

	caps := New("table1", "Table 1: search techniques evaluated").
		Dims("Method", "Updates", "Ordered", "Type")
	caps.Row([]string{"PGM", "Yes", "Yes", "Learned"})
	caps.Row([]string{"BTree", "Yes", "Yes", "Tree"})
	return []*Table{sweep, caps}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestTextSinkGolden(t *testing.T) {
	var buf bytes.Buffer
	s := NewText(&buf)
	for _, tb := range sampleTables() {
		if err := s.Table(tb); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(Meta{}); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sample.txt.golden", buf.Bytes())
}

func TestCSVSinkGolden(t *testing.T) {
	var buf bytes.Buffer
	s := NewCSV(&buf)
	for _, tb := range sampleTables() {
		if err := s.Table(tb); err != nil {
			t.Fatal(err)
		}
	}
	meta := Meta{Tool: "sosd", Version: "test", GoVersion: "go1.24", OS: "linux", Arch: "amd64", CPUs: 8,
		Options:  map[string]any{"seed": uint64(0), "n": 20000},
		Datasets: map[string]uint64{"osm/n=20000/seed=0": 7, "amzn/n=20000/seed=0": 9}}
	if err := s.Close(meta); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sample.csv.golden", buf.Bytes())
}

func TestJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSON(&buf)
	tables := sampleTables()
	for _, tb := range tables {
		if err := s.Table(tb); err != nil {
			t.Fatal(err)
		}
	}
	meta := Meta{Tool: "sosd", Version: "abc123", Datasets: map[string]uint64{"amzn/n=10/seed=1": 42}}
	if err := s.Close(meta); err != nil {
		t.Fatal(err)
	}
	doc, err := DecodeDocument(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Meta.Tool != "sosd" || doc.Meta.Version != "abc123" || doc.Meta.Datasets["amzn/n=10/seed=1"] != 42 {
		t.Errorf("meta not preserved: %+v", doc.Meta)
	}
	if len(doc.Tables) != len(tables) {
		t.Fatalf("got %d tables, want %d", len(doc.Tables), len(tables))
	}
	for i, tb := range tables {
		if !reflect.DeepEqual(doc.Tables[i], *tb) {
			t.Errorf("table %d did not round-trip:\ngot  %+v\nwant %+v", i, doc.Tables[i], *tb)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	tables := sampleTables()
	for _, tb := range tables {
		if err := s.Table(tb); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(Meta{Tool: "sosd"}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(tables)+1 {
		t.Fatalf("got %d lines, want %d", len(lines), len(tables)+1)
	}
	for i, tb := range tables {
		var l Line
		if err := json.Unmarshal([]byte(lines[i]), &l); err != nil {
			t.Fatal(err)
		}
		if l.Table == nil || l.Meta != nil {
			t.Fatalf("line %d is not a table record", i)
		}
		if !reflect.DeepEqual(*l.Table, *tb) {
			t.Errorf("table %d did not round-trip", i)
		}
	}
	var last Line
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Meta == nil || last.Meta.Tool != "sosd" {
		t.Errorf("final line is not the meta record: %s", lines[len(lines)-1])
	}
}

func TestRowArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch did not panic")
		}
	}()
	New("x", "").Dims("a").Float("m", "", 1).Row([]string{"v"}) // missing metric
}

func TestValidate(t *testing.T) {
	good := New("x", "").Dims("a").Int("n", "")
	good.Row([]string{"v"}, 1)
	if err := good.Validate(); err != nil {
		t.Errorf("valid table rejected: %v", err)
	}
	bad := &Table{Experiment: "x", Schema: Schema{Dims: []Dim{{Name: "a"}}},
		Rows: []Row{{Dims: []string{"v", "extra"}}}}
	if err := bad.Validate(); err == nil {
		t.Error("arity-broken table accepted")
	}
	unnamed := &Table{}
	if err := unnamed.Validate(); err == nil {
		t.Error("unnamed table accepted")
	}
	badKind := &Table{Experiment: "x", Schema: Schema{Metrics: []Metric{{Name: "m", Kind: "bogus"}}}}
	if err := badKind.Validate(); err == nil {
		t.Error("unknown metric kind accepted")
	}
}

func TestDecodeDocumentRejectsInvalid(t *testing.T) {
	in := `{"meta":{"tool":"sosd","version":"v"},"tables":[{"experiment":"","schema":{},"rows":[]}]}`
	if _, err := DecodeDocument(strings.NewReader(in)); err == nil {
		t.Error("document with unnamed table accepted")
	}
	if _, err := DecodeDocument(strings.NewReader("{nope")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestBuildVersion(t *testing.T) {
	if BuildVersion() == "" {
		t.Error("empty build version")
	}
}

func TestNewMeta(t *testing.T) {
	m := NewMeta("sosd")
	if m.Tool != "sosd" || m.CPUs < 1 || m.GoVersion == "" || m.Started.IsZero() {
		t.Errorf("incomplete meta: %+v", m)
	}
}
