package persist

// The snapshot manifest: the root artifact of a store snapshot,
// naming every shard's boundary separator, its builder codec tag (the
// deterministic registry config ID that built its base index), its WAL
// file, and its ordered run list — the LSM tier set, oldest (base) run
// first, each run a table/index/tombstone file triple. The manifest
// rename is the snapshot's commit point — shard and run files are
// written first, so a crash anywhere leaves either the complete old
// snapshot or the complete new one.

import (
	"os"

	"repro/internal/binio"
	"repro/internal/core"
)

var manifestMagic = []byte("sosdMAN2")

// ManifestName is the manifest's file name inside a snapshot directory.
const ManifestName = "MANIFEST"

// RunMeta describes one persisted sorted run of a shard's tier set.
type RunMeta struct {
	// Codec is the registry config ID ("family" or "family/label") of
	// the builder that produced the run's index. Its family part
	// selects the decode codec; the label lets a rebuild re-select the
	// exact catalog entry.
	Codec string
	// Table, Index and Tombs are file names inside the snapshot
	// directory. Index is empty when the run has no encodable index
	// (no registered codec, or an empty table) and must be rebuilt
	// from the loaded keys; Tombs is empty when the run carries no
	// tombstones.
	Table, Index, Tombs string
}

// ShardMeta describes one persisted shard.
type ShardMeta struct {
	// Sep is the first key owned by the shard (the store's boundary
	// metadata, identical to serve.Store's separator array).
	Sep core.Key
	// Codec is the registry config ID of the shard's base-index
	// builder — the identity a rebuild or re-tune starts from. It
	// normally equals Runs[0].Codec; they differ only when the base
	// index was rebuilt under a configuration the catalog no longer
	// produces.
	Codec string
	// WAL is the shard's write-ahead-log file name inside the snapshot
	// directory.
	WAL string
	// Runs is the shard's tier set, oldest run first: Runs[0] is the
	// base run (never tombstoned), later runs are newer and shadow
	// earlier ones. Every shard has at least the base run.
	Runs []RunMeta
}

// Manifest is a complete snapshot description.
type Manifest struct {
	// Family is the store-level default index family (serve.Config.Family).
	Family string
	// Gen is the commit generation: every manifest commit writes its
	// shard files under fresh generation-suffixed names and bumps Gen,
	// so a crash mid-commit can never pair files of different
	// generations — the old manifest still names the complete old set.
	Gen    uint64
	Shards []ShardMeta
}

// minShardWire and minRunWire are the smallest possible encoded shard
// and run entries, used as allocation guards for the two counts.
const (
	minShardWire = 8 + 4 + 4 + 4 + minRunWire
	minRunWire   = 4 * 4
)

// EncodeManifest writes the manifest with the standard frame: magic,
// version, body, trailing CRC64.
func EncodeManifest(w *binio.Writer, m *Manifest) error {
	w.Bytes(manifestMagic)
	w.U32(FormatVersion)
	w.Str(m.Family)
	w.U64(m.Gen)
	w.U32(uint32(len(m.Shards)))
	for _, s := range m.Shards {
		w.U64(s.Sep)
		w.Str(s.Codec)
		w.Str(s.WAL)
		w.U32(uint32(len(s.Runs)))
		for _, run := range s.Runs {
			w.Str(run.Codec)
			w.Str(run.Table)
			w.Str(run.Index)
			w.Str(run.Tombs)
		}
	}
	w.U64(w.Sum64())
	return w.Err()
}

// DecodeManifest parses and validates a manifest image.
func DecodeManifest(data []byte) (*Manifest, error) {
	body, err := checkCRCFrame(data)
	if err != nil {
		return nil, err
	}
	r := binio.NewReader(body)
	if string(r.Bytes(len(manifestMagic))) != string(manifestMagic) {
		return nil, binio.Corruptf("persist: bad manifest magic")
	}
	if v := r.U32(); v != FormatVersion {
		return nil, binio.Corruptf("persist: manifest format version %d, want %d", v, FormatVersion)
	}
	m := &Manifest{Family: r.Str(maxTagLen)}
	m.Gen = r.U64()
	n := r.Count(minShardWire)
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, binio.Corruptf("persist: manifest has no shards")
	}
	m.Shards = make([]ShardMeta, n)
	for i := range m.Shards {
		s := &m.Shards[i]
		s.Sep = r.U64()
		s.Codec = r.Str(maxTagLen)
		s.WAL = r.Str(maxTagLen)
		nr := r.Count(minRunWire)
		if err := r.Err(); err != nil {
			return nil, err
		}
		if nr < 1 {
			return nil, binio.Corruptf("persist: shard %d has no runs", i)
		}
		s.Runs = make([]RunMeta, nr)
		for j := range s.Runs {
			run := &s.Runs[j]
			run.Codec = r.Str(maxTagLen)
			run.Table = r.Str(maxTagLen)
			run.Index = r.Str(maxTagLen)
			run.Tombs = r.Str(maxTagLen)
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, binio.Corruptf("persist: %d trailing bytes after manifest", r.Remaining())
	}
	for i := range m.Shards {
		s := &m.Shards[i]
		if i > 0 && s.Sep <= m.Shards[i-1].Sep {
			return nil, binio.Corruptf("persist: shard separators not increasing at %d", i)
		}
		if s.WAL == "" {
			return nil, binio.Corruptf("persist: shard %d missing wal file name", i)
		}
		if !safeFileName(s.WAL) {
			return nil, binio.Corruptf("persist: shard %d file name %q escapes the snapshot directory", i, s.WAL)
		}
		if s.Runs[0].Tombs != "" {
			return nil, binio.Corruptf("persist: shard %d base run carries tombstones", i)
		}
		for j := range s.Runs {
			run := &s.Runs[j]
			if run.Table == "" {
				return nil, binio.Corruptf("persist: shard %d run %d missing table file name", i, j)
			}
			for _, name := range []string{run.Table, run.Index, run.Tombs} {
				if !safeFileName(name) {
					return nil, binio.Corruptf("persist: shard %d file name %q escapes the snapshot directory", i, name)
				}
			}
		}
	}
	return m, nil
}

// safeFileName accepts only bare names: a manifest must not be able to
// point the loader outside its own directory.
func safeFileName(name string) bool {
	if name == "" {
		return true // empty index/tombs name = rebuild / no-tombstones marker
	}
	if name == "." || name == ".." {
		return false
	}
	for i := 0; i < len(name); i++ {
		if name[i] == '/' || name[i] == '\\' || name[i] == 0 {
			return false
		}
	}
	return true
}

// WriteManifest atomically commits the manifest to path.
func WriteManifest(path string, m *Manifest) error {
	return AtomicWrite(path, func(w *binio.Writer) error { return EncodeManifest(w, m) })
}

// ReadManifest loads and validates the manifest at path.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeManifest(data)
}
