package perfsim

import (
	"repro/internal/art"
	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/fast"
	"repro/internal/hashidx"
	"repro/internal/pgm"
	"repro/internal/rbs"
	"repro/internal/rmi"
	"repro/internal/rs"
)

// Traced replays index lookups against a simulated Machine, producing
// the counter profiles of Section 4.3. Each Lookup performs the
// structure's inference accesses followed by the last-mile binary
// search over the (shared) data region, exactly mirroring the paper's
// measured loop.
type Traced interface {
	// Lookup simulates one full lookup (inference + last-mile search
	// + one payload access) and returns the bound it resolved.
	Lookup(key core.Key) core.Bound
	Name() string
}

// dataRegions holds the simulated placement of the key and payload
// arrays, shared by every traced structure.
type dataRegions struct {
	m       *Machine
	keys    []core.Key
	keysReg Region
	paysReg Region
}

func newDataRegions(m *Machine, keys []core.Key) *dataRegions {
	return &dataRegions{
		m:       m,
		keys:    keys,
		keysReg: m.Alloc(len(keys) * 8),
		paysReg: m.Alloc(len(keys) * 8),
	}
}

// lastMile simulates the binary search within the bound, touching the
// probed key cache lines and recording the compare branches, then one
// payload read at the final position.
func (d *dataRegions) lastMile(key core.Key, b core.Bound) int {
	lo, hi := b.Lo, b.Hi
	const site = 0x51 // one static branch site: binary search compare
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		d.m.Access(d.keysReg, mid*8, 8)
		taken := d.keys[mid] < key
		d.m.Branch(site, taken)
		d.m.Instr(3)
		if taken {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(d.keys) {
		d.m.Access(d.paysReg, lo*8, 8)
	}
	return lo
}

// --- RMI ---

type tracedRMI struct {
	idx    *rmi.Index
	data   *dataRegions
	leaves Region
	m      *Machine
}

// NewTracedRMI wires an RMI into the machine.
func NewTracedRMI(idx *rmi.Index, m *Machine, keys []core.Key) Traced {
	return &tracedRMI{
		idx:    idx,
		data:   newDataRegions(m, keys),
		leaves: m.Alloc(idx.NumLeaves() * 56),
		m:      m,
	}
}

func (t *tracedRMI) Name() string { return "RMI" }

func (t *tracedRMI) Lookup(key core.Key) core.Bound {
	leaf, _, b := t.idx.Explain(key)
	// Stage-1 model: a handful of FLOPs on register-resident
	// coefficients (the stage-1 model is a single cache line, hot in
	// any realistic loop), then one dependent load of the leaf model.
	t.m.Instr(8)
	t.m.Access(t.leaves, leaf*56, 56)
	t.m.Instr(10)
	t.data.lastMile(key, b)
	return b
}

// --- PGM ---

type tracedPGM struct {
	idx    *pgm.Index
	data   *dataRegions
	levels []Region
	m      *Machine
}

// NewTracedPGM wires a PGM index into the machine.
func NewTracedPGM(idx *pgm.Index, m *Machine, keys []core.Key) Traced {
	sizes := idx.LevelSizes()
	t := &tracedPGM{idx: idx, data: newDataRegions(m, keys), m: m}
	for _, n := range sizes {
		t.levels = append(t.levels, m.Alloc(n*20))
	}
	return t
}

func (t *tracedPGM) Name() string { return "PGM" }

func (t *tracedPGM) Lookup(key core.Key) core.Bound {
	steps, b := t.idx.Explain(key)
	const site = 0x77
	for _, st := range steps {
		// Evaluate the segment at this level: one load + linear math.
		t.m.Access(t.levels[st.Level], st.Seg*20, 20)
		t.m.Instr(8)
		if st.Level > 0 {
			// Binary search of the window in the level below: touch the
			// probed segments' first keys.
			lo, hi := st.WinLo, st.WinHi
			below := t.levels[st.Level-1]
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				t.m.Access(below, mid*20, 8)
				t.m.Branch(site, mid&1 == 0)
				t.m.Instr(3)
				// Direction is data dependent; halve the window.
				if hi-lo <= 1 {
					break
				}
				if mid-lo > hi-mid {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
		}
	}
	t.data.lastMile(key, b)
	return b
}

// --- RS ---

type tracedRS struct {
	idx    *rs.Index
	data   *dataRegions
	radix  Region
	points Region
	m      *Machine
}

// NewTracedRS wires a RadixSpline into the machine.
func NewTracedRS(idx *rs.Index, m *Machine, keys []core.Key) Traced {
	return &tracedRS{
		idx:    idx,
		data:   newDataRegions(m, keys),
		radix:  m.Alloc(idx.SizeBytes() - idx.NumPoints()*12),
		points: m.Alloc(idx.NumPoints() * 12),
		m:      m,
	}
}

func (t *tracedRS) Name() string { return "RS" }

func (t *tracedRS) Lookup(key core.Key) core.Bound {
	e := t.idx.Explain(key)
	// Radix table probe: a shift plus one load (two adjacent entries).
	t.m.Instr(3)
	t.m.Access(t.radix, int(e.Bucket)*4, 8)
	// Binary search the spline points within the window.
	const site = 0x33
	lo, hi := e.WinLo, e.WinHi
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		t.m.Access(t.points, mid*12, 12)
		t.m.Branch(site, mid&1 == 0)
		t.m.Instr(3)
		if hi-lo <= 1 {
			break
		}
		if mid-lo > hi-mid {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	// Interpolation between the two spline points (already touched).
	t.m.Instr(8)
	t.data.lastMile(key, e.Bound)
	return e.Bound
}

// --- RBS ---

type tracedRBS struct {
	idx   *rbs.Index
	data  *dataRegions
	table Region
	m     *Machine
}

// NewTracedRBS wires a radix binary search table into the machine.
func NewTracedRBS(idx *rbs.Index, m *Machine, keys []core.Key) Traced {
	return &tracedRBS{
		idx:   idx,
		data:  newDataRegions(m, keys),
		table: m.Alloc(idx.TableLen() * 4),
		m:     m,
	}
}

func (t *tracedRBS) Name() string { return "RBS" }

func (t *tracedRBS) Lookup(key core.Key) core.Bound {
	b := t.idx.Lookup(key)
	t.m.Instr(3)
	t.m.Access(t.table, int(t.idx.Bucket(key))*4, 8)
	t.data.lastMile(key, b)
	return b
}

// --- B+tree / IBTree ---

type tracedBTree struct {
	idx   *btree.Index
	data  *dataRegions
	nodes Region
	m     *Machine
	path  []int32
	name  string
}

// NewTracedBTree wires a B+tree (or IBTree) into the machine.
func NewTracedBTree(idx *btree.Index, m *Machine, keys []core.Key) Traced {
	const nodeBytes = 32*12 + 64
	return &tracedBTree{
		idx:   idx,
		data:  newDataRegions(m, keys),
		nodes: m.Alloc(idx.NumNodes() * nodeBytes),
		m:     m,
		name:  idx.Name(),
	}
}

func (t *tracedBTree) Name() string { return t.name }

func (t *tracedBTree) Lookup(key core.Key) core.Bound {
	const nodeBytes = 32*12 + 64
	const site = 0x91
	t.path = t.idx.PathIDs(key, t.path[:0])
	for _, id := range t.path {
		// In-node binary search over up to 32 keys: ~5 compares
		// touching about two of the node's cache lines.
		base := int(id) * nodeBytes
		t.m.Access(t.nodes, base, 64)
		t.m.Access(t.nodes, base+128, 64)
		for s := 0; s < 5; s++ {
			t.m.Branch(site, (int(id)+s)&1 == 0)
			t.m.Instr(3)
		}
	}
	b := t.idx.Lookup(key)
	t.data.lastMile(key, b)
	return b
}

// --- ART ---

type tracedART struct {
	idx  *art.Index
	data *dataRegions
	heap Region
	m    *Machine
}

// NewTracedART wires an ART into the machine.
func NewTracedART(idx *art.Index, m *Machine, keys []core.Key) Traced {
	return &tracedART{
		idx:  idx,
		data: newDataRegions(m, keys),
		heap: m.Alloc(idx.SizeBytes()),
		m:    m,
	}
}

func (t *tracedART) Name() string { return "ART" }

func (t *tracedART) Lookup(key core.Key) core.Bound {
	const site = 0xA1
	heapSize := t.heap.size
	offset := 0
	_, pos, found := t.idx.IndexTree().CeilingPath(key, func(st art.NodeStep) {
		// Nodes live at id-proportional offsets in the simulated heap.
		off := (int(st.ID) * 64) % (heapSize - st.SizeBytes)
		if off < 0 {
			off = 0
		}
		t.m.Access(t.heap, off, min(st.SizeBytes, 64))
		t.m.Branch(site, st.ID&1 == 0)
		t.m.Instr(6)
		offset += st.SizeBytes
	})
	var b core.Bound
	if !found {
		b = core.Bound{Lo: int(t.idx.MaxPos()) + 1, Hi: t.idx.N()}.Clamp(t.idx.N())
	} else {
		lo := int(pos) - t.idx.Stride() + 1
		if lo < 0 {
			lo = 0
		}
		b = core.Bound{Lo: lo, Hi: int(pos) + 1}
	}
	t.data.lastMile(key, b)
	return b
}

// --- FAST ---

type tracedFAST struct {
	idx    *fast.Index
	data   *dataRegions
	levels []Region
	m      *Machine
	n      int
	stride int
}

// NewTracedFAST wires a FAST tree into the machine.
func NewTracedFAST(idx *fast.Index, m *Machine, keys []core.Key) Traced {
	t := &tracedFAST{idx: idx, data: newDataRegions(m, keys), m: m,
		n: len(keys), stride: idx.Stride()}
	for _, l := range idx.IndexTree().LevelLens() {
		t.levels = append(t.levels, m.Alloc(l*8))
	}
	return t
}

func (t *tracedFAST) Name() string { return "FAST" }

func (t *tracedFAST) Lookup(key core.Key) core.Bound {
	t.idx.IndexTree().CeilingPath(key, func(level, blockStart, blockLen int) {
		// One blocked node: two cache lines of keys, scanned with
		// predictable branches (FAST's SIMD compare is branch-free;
		// model it as cheap instructions).
		t.m.Access(t.levels[level], blockStart*8, blockLen*8)
		t.m.Instr(blockLen)
	})
	b := t.idx.Lookup(key)
	t.data.lastMile(key, b)
	return b
}

// --- RobinHood ---

type tracedRobin struct {
	tbl   *hashidx.RobinHood
	data  *dataRegions
	slots Region
	m     *Machine
	n     int
}

// NewTracedRobin wires a RobinHood table into the machine.
func NewTracedRobin(tbl *hashidx.RobinHood, m *Machine, keys []core.Key) Traced {
	return &tracedRobin{
		tbl:   tbl,
		data:  newDataRegions(m, keys),
		slots: m.Alloc(tbl.Slots() * 13),
		m:     m,
		n:     len(keys),
	}
}

func (t *tracedRobin) Name() string { return "RobinHash" }

func (t *tracedRobin) Lookup(key core.Key) core.Bound {
	home, probes, found := t.tbl.Probe(key)
	t.m.Instr(4) // hash
	const site = 0xB7
	for p := 0; p < probes; p++ {
		t.m.Access(t.slots, (int(home)+p)*13, 13)
		t.m.Branch(site, p < probes-1)
		t.m.Instr(2)
	}
	if !found {
		return core.FullBound(t.n)
	}
	pos, _ := t.tbl.Get(key)
	t.m.Access(t.data.paysReg, int(pos)*8, 8)
	return core.Bound{Lo: int(pos), Hi: int(pos) + 1}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
