package repl

import (
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/load"
	"repro/internal/persist"
	"repro/internal/serve"
)

var _ load.ErrTarget = (*Router)(nil)

// --- Log unit tests ---

func TestLogSeqAssignment(t *testing.T) {
	l := NewLog(2)
	if l.Epoch() == 0 {
		t.Fatal("zero epoch")
	}
	for i := 0; i < 10; i++ {
		if seq := l.Append(0, persist.Op{Key: uint64(i)}); seq != uint64(i)+1 {
			t.Fatalf("shard 0 append %d got seq %d", i, seq)
		}
	}
	if seq := l.Append(1, persist.Op{Key: 99}); seq != 1 {
		t.Fatalf("shard 1 first seq %d", seq)
	}
	want := []uint64{10, 1}
	for i, q := range l.Seqs() {
		if q != want[i] {
			t.Fatalf("Seqs()[%d] = %d, want %d", i, q, want[i])
		}
	}
	ops, ok := l.TailFrom(0, 4, 0)
	if !ok || len(ops) != 6 || ops[0].Key != 4 {
		t.Fatalf("TailFrom(0,4) = %d ops ok=%v", len(ops), ok)
	}
	ops, ok = l.TailFrom(0, 4, 2)
	if !ok || len(ops) != 2 || ops[1].Key != 5 {
		t.Fatalf("capped TailFrom = %d ops", len(ops))
	}
	if ops, ok := l.TailFrom(0, 10, 0); !ok || len(ops) != 0 {
		t.Fatalf("TailFrom at tip = %d ops ok=%v", len(ops), ok)
	}
}

func TestLogEviction(t *testing.T) {
	l := NewLog(1)
	l.ringCap = 8
	for i := 0; i < 20; i++ {
		l.Append(0, persist.Op{Key: uint64(i)})
	}
	// Ring holds the last 8 ops at most; base advanced past seq 12.
	if _, ok := l.TailFrom(0, 0, 0); ok {
		t.Fatal("evicted position still readable")
	}
	ops, ok := l.TailFrom(0, 19, 0)
	if !ok || len(ops) != 1 || ops[0].Key != 19 {
		t.Fatalf("tip read after eviction: %d ops ok=%v", len(ops), ok)
	}
}

func TestLogNotify(t *testing.T) {
	l := NewLog(1)
	ch := l.Updated()
	select {
	case <-ch:
		t.Fatal("notified before append")
	default:
	}
	l.Append(0, persist.Op{Key: 1})
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("append did not notify")
	}
}

// --- State codec ---

func TestStateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadState(dir); !os.IsNotExist(err) {
		t.Fatalf("fresh dir: %v", err)
	}
	in := &State{Epoch: 0xdeadbeef, Gen: 7, Seqs: []uint64{3, 0, 99}}
	if err := WriteState(dir, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if out.Epoch != in.Epoch || out.Gen != in.Gen || len(out.Seqs) != 3 ||
		out.Seqs[0] != 3 || out.Seqs[2] != 99 {
		t.Fatalf("round trip: %+v", out)
	}
	// A flipped byte is detected.
	path := dir + "/" + StateName
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-12] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadState(dir); err == nil {
		t.Fatal("corrupt state read back clean")
	}
}

// --- Topology helpers for the integration tests ---

// testPrimary is a volatile primary: store + hooked log + repl listener.
func testPrimary(t *testing.T, keys []core.Key, payloads []uint64, shards int) (*serve.Store, *Log, *Primary) {
	t.Helper()
	log := NewLog(shards)
	st, err := serve.New(keys, payloads, serve.Config{
		Shards: shards, Family: "PGM", WriteHook: log.Hook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.NumShards() != shards {
		t.Fatalf("store clamped to %d shards", st.NumShards())
	}
	p, err := NewPrimary(st, log, "127.0.0.1:0", PrimaryConfig{HeartbeatEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return st, log, p
}

func testKeys(t *testing.T, n int) ([]core.Key, []uint64) {
	t.Helper()
	keys, err := dataset.Generate(dataset.Amzn, n, 11)
	if err != nil {
		t.Fatal(err)
	}
	return keys, dataset.Payloads(len(keys), 11)
}

// oracleCheck compares the replica against a map oracle, via full scans.
func oracleCheck(t *testing.T, st *serve.Store, oracle map[core.Key]uint64) {
	t.Helper()
	got := map[core.Key]uint64{}
	st.Scan(0, ^core.Key(0), func(k core.Key, v uint64) bool {
		got[k] = v
		return true
	})
	if len(got) != len(oracle) {
		t.Fatalf("replica holds %d keys, oracle %d", len(got), len(oracle))
	}
	for k, v := range oracle {
		if gv, ok := got[k]; !ok || gv != v {
			t.Fatalf("key %d: replica %d,%v want %d", k, gv, ok, v)
		}
	}
}

// TestFollowerBootstrapAndStream is the happy path: bootstrap from a
// snapshot, apply live writes, verify laws and convergence.
func TestFollowerBootstrapAndStream(t *testing.T) {
	keys, payloads := testKeys(t, 4000)
	st, log, p := testPrimary(t, keys, payloads, 4)
	defer st.Close()
	defer p.Close()

	oracle := map[core.Key]uint64{}
	for i, k := range keys {
		oracle[k] = payloads[i]
	}

	f, err := StartFollower(FollowerConfig{
		Dir: t.TempDir(), PrimaryAddr: p.Addr().String(),
		Store: serve.Config{Family: "PGM"}, SyncEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()
	if err := f.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Live writes after bootstrap: updates, inserts, deletes.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 3000; i++ {
		switch rng.Intn(3) {
		case 0:
			k := keys[rng.Intn(len(keys))]
			v := rng.Uint64()
			st.Put(k, v)
			oracle[k] = v
		case 1:
			k := core.Key(rng.Uint64())
			v := rng.Uint64()
			st.Put(k, v)
			oracle[k] = v
		case 2:
			k := keys[rng.Intn(len(keys))]
			st.Delete(k)
			delete(oracle, k)
		}
	}

	if err := f.WaitCaughtUp(log.Seqs(), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := p.WaitAcked(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Conservation laws: applied <= acked <= streamed.
	ps, fs := p.Stats(), f.Stats()
	if ps.AckedOps > ps.StreamedOps {
		t.Fatalf("acked %d > streamed %d", ps.AckedOps, ps.StreamedOps)
	}
	if fs.AppliedOps > fs.AckedOps {
		t.Fatalf("applied %d > acked %d", fs.AppliedOps, fs.AckedOps)
	}
	if ps.Bootstraps != 1 {
		t.Fatalf("bootstraps = %d, want 1", ps.Bootstraps)
	}

	rst := f.Store()
	if !rst.ReadOnly() {
		t.Fatal("replica is not read-only")
	}
	oracleCheck(t, rst, oracle)

	// The read-only gate refuses direct writes but Apply got through.
	rst.Put(1, 1)
	if rst.ReadOnlyDrops() == 0 {
		t.Fatal("direct write on replica was not dropped")
	}
}

// TestFollowerWarmRestart stops a follower gracefully and restarts it:
// it must resume from REPLSTATE without a second bootstrap.
func TestFollowerWarmRestart(t *testing.T) {
	keys, payloads := testKeys(t, 2000)
	st, log, p := testPrimary(t, keys, payloads, 2)
	defer st.Close()
	defer p.Close()
	dir := t.TempDir()

	f, err := StartFollower(FollowerConfig{
		Dir: dir, PrimaryAddr: p.Addr().String(), Store: serve.Config{Family: "PGM"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		st.Put(keys[i], uint64(i)+1e9)
	}
	if err := f.WaitCaughtUp(log.Seqs(), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	f.Stop()

	for i := 500; i < 1000; i++ {
		st.Put(keys[i], uint64(i)+1e9)
	}
	f2, err := StartFollower(FollowerConfig{
		Dir: dir, PrimaryAddr: p.Addr().String(), Store: serve.Config{Family: "PGM"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Stop()
	if err := f2.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := f2.WaitCaughtUp(log.Seqs(), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if n := p.Stats().Bootstraps; n != 1 {
		t.Fatalf("warm restart re-bootstrapped (%d bootstraps)", n)
	}
	for i := 0; i < 1000; i++ {
		if v, ok := f2.Store().Get(keys[i]); !ok || v != uint64(i)+1e9 {
			t.Fatalf("key %d after warm restart: %d,%v", i, v, ok)
		}
	}
}

// TestFollowerResyncAfterEviction forces the follower off the ring; it
// must recover via a second bootstrap, not diverge or wedge.
func TestFollowerResyncAfterEviction(t *testing.T) {
	keys, payloads := testKeys(t, 2000)
	log := NewLog(2)
	log.ringCap = 256 // tiny ring: easy to fall off
	st, err := serve.New(keys, payloads, serve.Config{
		Shards: 2, Family: "PGM", WriteHook: log.Hook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	p, err := NewPrimary(st, log, "127.0.0.1:0", PrimaryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	dir := t.TempDir()

	f, err := StartFollower(FollowerConfig{
		Dir: dir, PrimaryAddr: p.Addr().String(), Store: serve.Config{Family: "PGM"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	f.Kill() // killed follower misses the next burst entirely

	oracle := map[core.Key]uint64{}
	for i, k := range keys {
		oracle[k] = payloads[i]
	}
	for i := 0; i < 2000; i++ { // far past the 256-op ring
		k := keys[i%len(keys)]
		st.Put(k, uint64(i)+5e9)
		oracle[k] = uint64(i) + 5e9
	}

	f2, err := StartFollower(FollowerConfig{
		Dir: dir, PrimaryAddr: p.Addr().String(), Store: serve.Config{Family: "PGM"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Stop()
	if err := f2.WaitCaughtUp(log.Seqs(), 15*time.Second); err != nil {
		t.Fatal(err)
	}
	oracleCheck(t, f2.Store(), oracle)
	if f2.Stats().Resyncs == 0 && p.Stats().Bootstraps < 2 {
		t.Fatal("eviction recovery did not resync")
	}
}

// TestPromotion turns a caught-up follower writable.
func TestPromotion(t *testing.T) {
	keys, payloads := testKeys(t, 2000)
	st, log, p := testPrimary(t, keys, payloads, 2)
	f, err := StartFollower(FollowerConfig{
		Dir: t.TempDir(), PrimaryAddr: p.Addr().String(), Store: serve.Config{Family: "PGM"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()
	if err := f.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		st.Put(keys[i], uint64(i)+7e9)
	}
	if err := f.WaitCaughtUp(log.Seqs(), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	p.Close()
	st.Close()

	if err := f.Promote(); err != nil {
		t.Fatal(err)
	}
	rst := f.Store()
	if rst.ReadOnly() {
		t.Fatal("promoted store still read-only")
	}
	rst.Put(keys[0], 123456)
	if v, ok := rst.Get(keys[0]); !ok || v != 123456 {
		t.Fatalf("write after promotion: %d,%v", v, ok)
	}
	if v, ok := rst.Get(keys[199]); !ok || v != 199+7e9 {
		t.Fatalf("replicated key after promotion: %d,%v", v, ok)
	}
}
