package bench

// The cold-start experiment: the paper's Figure-9/17 story — build and
// tune cost as a first-class axis, with an auto-tuned RMI orders of
// magnitude more expensive to produce than to use — retold at the
// serving layer. Cold start builds (and for learned families, tunes)
// every shard index from scratch; warm start loads a snapshot, decoding
// trained parameters instead of retraining, exactly as SOSD caches
// built indexes on disk to make its sweeps tractable. The gap is the
// restart-latency win the persistence subsystem buys a server.

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/registry"
	"repro/internal/report"
	"repro/internal/serve"
)

func init() {
	Register(Experiment{"persist", "cold build-from-scratch vs warm load-from-snapshot per family", persistSweep})
}

// PersistFamilies is the family set of the persist experiment: every
// family with a registered snapshot codec, tuned RMI first (the
// paper's extreme build-cost case), plus ART as the codec-less
// rebuild-at-load baseline.
var PersistFamilies = []string{"RMI", "PGM", "RS", "RBS", "BTree", "ART"}

// PersistResult is one family's cold/warm measurement.
type PersistResult struct {
	Family     string
	Cold       time.Duration // New: build + tune every shard from raw keys
	SnapshotT  time.Duration // Snapshot: serialize tables + indexes + WALs
	Warm       time.Duration // Open: load + decode, no retraining
	DiskBytes  int64
	Speedup    float64
	IndexBytes int
}

// MeasurePersist measures one family's cold build vs warm load over
// the environment's data, using dir for the snapshot.
func MeasurePersist(e *Env, family string, shards int, dir string) (PersistResult, error) {
	res := PersistResult{Family: family}

	start := time.Now()
	st, err := serve.New(e.Keys, e.Payloads, serve.Config{Shards: shards, Family: family})
	if err != nil {
		return res, err
	}
	res.Cold = time.Since(start)
	res.IndexBytes = st.SizeBytes()

	start = time.Now()
	if err := st.Snapshot(dir); err != nil {
		st.Close()
		return res, err
	}
	res.SnapshotT = time.Since(start)
	st.Close()
	res.DiskBytes = dirSize(dir)

	start = time.Now()
	warm, err := serve.Open(dir, serve.Config{})
	if err != nil {
		return res, err
	}
	res.Warm = time.Since(start)

	// Ready-to-serve means answering correctly: spot-check the warm
	// store against ground truth before trusting the timing.
	for i := 0; i < len(e.Lookups) && i < 1000; i++ {
		x := e.Lookups[i]
		wantV, wantOK := uint64(0), false
		if pos := core.LowerBound(e.Keys, x); pos < len(e.Keys) && e.Keys[pos] == x {
			wantV, wantOK = e.Payloads[pos], true
		}
		gotV, gotOK := warm.Get(x)
		if gotV != wantV || gotOK != wantOK {
			warm.Close()
			return res, fmt.Errorf("persist: %s warm store wrong for key %d", family, x)
		}
	}
	warm.Close()
	res.Speedup = float64(res.Cold) / float64(res.Warm)
	return res, nil
}

func dirSize(dir string) int64 {
	var total int64
	filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	return total
}

// persistSweep reports the cold-vs-warm table: per family, time to a
// ready-to-serve store from raw keys (cold) vs from a snapshot (warm),
// with snapshot cost and on-disk size. The load dimension records how
// the warm path restored each index: "decode" for families with a
// snapshot codec, "rebuild" for codec-less families rebuilt at load.
func persistSweep(r *Run) ([]report.Table, error) {
	e, err := r.Env(dataset.Amzn)
	if err != nil {
		return nil, err
	}
	const shards = 4
	t := report.New("persist",
		fmt.Sprintf("Persistence: cold build vs warm snapshot load (amzn, n=%d, %d shards)", r.Options.N, shards)).
		Dims("index", "load").
		Float("cold(ms)", "ms", 1).
		Float("warm(ms)", "ms", 1).
		Float("speedup", "x", 1).
		Float("snap(ms)", "ms", 1).
		Float("disk(MB)", "MB", 2)
	for _, family := range r.Families(PersistFamilies) {
		if !registry.Has(family) {
			continue
		}
		dir, err := os.MkdirTemp("", "sosd-persist-*")
		if err != nil {
			return nil, err
		}
		res, err := MeasurePersist(e, family, shards, dir)
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		loadKind := "decode"
		if _, ok := registry.CodecFor(family); !ok {
			loadKind = "rebuild"
		}
		t.Row([]string{family, loadKind},
			float64(res.Cold.Microseconds())/1000,
			float64(res.Warm.Microseconds())/1000,
			res.Speedup,
			float64(res.SnapshotT.Microseconds())/1000,
			float64(res.DiskBytes)/(1<<20))
	}
	return []report.Table{*t}, nil
}
