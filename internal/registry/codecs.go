package registry

// The codec catalog: families that can serialize their built indexes
// register an encode/decode pair here, keyed by family name — the tag
// stored in snapshot manifests. Decode reconstructs a ready core.Index
// from trained parameters without retraining, which is what makes warm
// restarts skip the (for learned families, dominant) build cost.
// Families without a codec still snapshot: the persistence layer falls
// back to recording the key data only and rebuilding the index at load.

import (
	"fmt"
	"sort"

	"repro/internal/binio"
	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/pgm"
	"repro/internal/rbs"
	"repro/internal/rmi"
	"repro/internal/rs"
)

// Codec serializes one family's built indexes. Encode writes the index
// state (trained model parameters, tables, tree entries) to w; Decode
// reconstructs a ready index, validating every structural invariant so
// corrupt input yields an error, never a panic or unbounded allocation.
type Codec struct {
	Encode func(idx core.Index, w *binio.Writer) error
	Decode func(r *binio.Reader) (core.Index, error)
}

var codecs = map[string]Codec{}

// RegisterCodec adds a family's codec to the catalog, panicking on nil
// hooks or duplicates (catalog assembly is init-time, where failing
// loudly is the only useful behaviour).
func RegisterCodec(family string, c Codec) {
	if c.Encode == nil || c.Decode == nil {
		panic(fmt.Sprintf("registry: incomplete codec for family %q", family))
	}
	if _, dup := codecs[family]; dup {
		panic(fmt.Sprintf("registry: duplicate codec for family %q", family))
	}
	codecs[family] = c
}

// CodecFor returns the codec registered for a family; ok is false when
// the family has none (the rebuild-at-load fallback applies).
func CodecFor(family string) (Codec, bool) {
	c, ok := codecs[family]
	return c, ok
}

// CodecFamilies returns every family with a registered codec, sorted.
func CodecFamilies() []string {
	out := make([]string, 0, len(codecs))
	for name := range codecs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// encodeAs adapts a family's concrete Encode method, failing cleanly
// when handed an index of the wrong dynamic type (e.g. a manifest tag
// edited to name the wrong family).
func encodeAs[T core.Index](w *binio.Writer, idx core.Index, enc func(T, *binio.Writer) error) error {
	t, ok := idx.(T)
	if !ok {
		return fmt.Errorf("registry: index %s has type %T, not the registered codec's", idx.Name(), idx)
	}
	return enc(t, w)
}

// decodeAs adapts a family's concrete Decode function, centralizing
// the nil-on-error guard: returning a failed decode's concrete nil
// pointer through the interface would read as non-nil to callers.
func decodeAs[T core.Index](r *binio.Reader, dec func(*binio.Reader) (T, error)) (core.Index, error) {
	idx, err := dec(r)
	if err != nil {
		return nil, err
	}
	return idx, nil
}

func init() {
	RegisterCodec("RMI", Codec{
		Encode: func(idx core.Index, w *binio.Writer) error {
			return encodeAs(w, idx, func(t *rmi.Index, w *binio.Writer) error { return t.Encode(w) })
		},
		Decode: func(r *binio.Reader) (core.Index, error) { return decodeAs(r, rmi.Decode) },
	})
	RegisterCodec("PGM", Codec{
		Encode: func(idx core.Index, w *binio.Writer) error {
			return encodeAs(w, idx, func(t *pgm.Index, w *binio.Writer) error { return t.Encode(w) })
		},
		Decode: func(r *binio.Reader) (core.Index, error) { return decodeAs(r, pgm.Decode) },
	})
	RegisterCodec("RS", Codec{
		Encode: func(idx core.Index, w *binio.Writer) error {
			return encodeAs(w, idx, func(t *rs.Index, w *binio.Writer) error { return t.Encode(w) })
		},
		Decode: func(r *binio.Reader) (core.Index, error) { return decodeAs(r, rs.Decode) },
	})
	RegisterCodec("RBS", Codec{
		Encode: func(idx core.Index, w *binio.Writer) error {
			return encodeAs(w, idx, func(t *rbs.Index, w *binio.Writer) error { return t.Encode(w) })
		},
		Decode: func(r *binio.Reader) (core.Index, error) { return decodeAs(r, rbs.Decode) },
	})
	// BTree and IBTree share one implementation (and so one decoder,
	// which restores the in-node search flavour from the encoded flag);
	// both tags are registered so manifests stay self-describing.
	btreeCodec := Codec{
		Encode: func(idx core.Index, w *binio.Writer) error {
			return encodeAs(w, idx, func(t *btree.Index, w *binio.Writer) error { return t.Encode(w) })
		},
		Decode: func(r *binio.Reader) (core.Index, error) { return decodeAs(r, btree.Decode) },
	}
	RegisterCodec("BTree", btreeCodec)
	RegisterCodec("IBTree", btreeCodec)
}
