package table

// The LSM run-set read path: a shard of the serving layer holds an
// ordered set of sorted runs (oldest first; newer runs shadow older
// ones, and a tombstone in a newer run hides every older occurrence of
// its key). FindBatch is the per-run primitive — the same pipelined
// block machinery as GetBatch, but resolving positions and presence
// bits instead of gathering payloads, so the caller can consult the
// run's tombstone bits. GetBatchRuns composes it across a run set:
// each run is probed once with the still-unresolved subset of the
// batch, newest run first, so the pipelined probe rounds are reused
// per run and the total probe count (the read-amplification numerator)
// falls as keys resolve early.

import (
	"sync"

	"repro/internal/core"
	"repro/internal/search"
)

// FindBatch resolves the lower-bound position of every key: pos[i]
// receives the position (clamped into [0, Len]) and hit[i] whether the
// pair at pos[i] carries keys[i]. len(pos) and len(hit) must be at
// least len(keys). It runs the same block pipeline as GetBatch —
// batched bound prediction, pipelined probe rounds, scalar last mile
// with sorted-probe reuse.
func (t *Table) FindBatch(keys []core.Key, pos []int32, hit []bool) {
	if len(pos) < len(keys) || len(hit) < len(keys) {
		panic("table: FindBatch output shorter than key batch")
	}
	var bounds [batchBlock]core.Bound
	for off := 0; off < len(keys); off += batchBlock {
		end := off + batchBlock
		if end > len(keys) {
			end = len(keys)
		}
		t.findBlock(keys[off:end], pos[off:end], hit[off:end], bounds[:end-off])
	}
}

// findBlock resolves one block of at most batchBlock keys.
func (t *Table) findBlock(chunk []core.Key, pos []int32, hit []bool, bs []core.Bound) {
	core.LookupBatch(t.idx, chunk, bs)

	keys := t.keys
	n := len(keys)
	if n == 0 {
		for i := range chunk {
			pos[i], hit[i] = 0, false
		}
		return
	}
	if n >= pipelineMinKeys {
		search.NarrowBatch(keys, chunk, bs, narrowWidth, maxProbeRounds)
	}

	prevPos := 0
	var prevKey core.Key
	bs = bs[:len(chunk)]
	pos = pos[:len(chunk)]
	hit = hit[:len(chunk)]
	for i, x := range chunk {
		b := bs[i]
		if x >= prevKey && prevPos > b.Lo {
			b.Lo = prevPos
			if b.Lo > b.Hi {
				b.Lo = b.Hi
			}
		}
		p := t.fn(keys, x, b)
		prevPos, prevKey = p, x
		pos[i] = int32(p)
		hit[i] = p < n && keys[p] == x
	}
}

// runScratch is the reusable working set of GetBatchRuns: the gathered
// unresolved-key subset, its per-run probe results, and the two
// ping-pong lists of still-unresolved batch positions.
type runScratch struct {
	keys []core.Key
	pos  []int32
	hit  []bool
	idx  []int32
	next []int32
}

var runScratchPool = sync.Pool{New: func() any { return &runScratch{} }}

func (s *runScratch) ensure(n int) {
	if cap(s.keys) < n {
		s.keys = make([]core.Key, n)
		s.pos = make([]int32, n)
		s.hit = make([]bool, n)
		s.idx = make([]int32, n)
		s.next = make([]int32, n)
	}
}

// GetBatchRuns serves a merged batched lookup across an ordered run
// set: runs[0] is the oldest (base) run, runs[len-1] the newest; a key
// resolves at its newest occurrence, and a tombstone occurrence
// resolves the key as absent, shadowing every older run. out[i]
// receives the live payload of keys[i] (0 when absent) and found[i]
// its presence bit; both must be at least len(keys) long. It returns
// the number of present keys and the total number of per-run probes
// issued — the numerator of the measured read amplification
// (probes/keys == 1 when every key resolves in the newest run).
func GetBatchRuns(runs []*Table, keys []core.Key, out []uint64, found []bool) (hits, probes int) {
	n := len(keys)
	if len(out) < n || len(found) < n {
		panic("table: GetBatchRuns output shorter than key batch")
	}
	if n == 0 {
		return 0, 0
	}
	for i := range keys {
		out[i], found[i] = 0, false
	}

	s := runScratchPool.Get().(*runScratch)
	s.ensure(n)
	active := s.idx[:n]
	for i := range active {
		active[i] = int32(i)
	}
	spare := s.next[:0]

	for r := len(runs) - 1; r >= 0 && len(active) > 0; r-- {
		t := runs[r]
		if t.Len() == 0 {
			continue
		}
		m := len(active)
		probes += m
		sub := s.keys[:m]
		for j, id := range active {
			sub[j] = keys[id]
		}
		t.FindBatch(sub, s.pos[:m], s.hit[:m])
		next := spare[:0]
		for j, id := range active {
			if !s.hit[j] {
				next = append(next, id)
				continue
			}
			p := int(s.pos[j])
			if t.tombs != nil && t.tombs[p] {
				continue // resolved: newest occurrence is a tombstone
			}
			out[id] = t.payloads[p]
			found[id] = true
			hits++
		}
		active, spare = next, active
	}
	s.idx, s.next = s.idx[:cap(s.idx)], s.next[:cap(s.next)]
	runScratchPool.Put(s)
	return hits, probes
}

// RangeTombed returns the keys, payloads, and tombstone bits with key
// in [lo, hi), as views into the table's arrays (zero-copy; callers
// must not mutate them). tombs is nil when the table carries none.
func (t *Table) RangeTombed(lo, hi core.Key) ([]core.Key, []uint64, []bool) {
	start := t.lowerBound(lo)
	if hi < lo {
		hi = lo
	}
	end := t.lowerBound(hi)
	var tombs []bool
	if t.tombs != nil {
		tombs = t.tombs[start:end]
	}
	return t.keys[start:end], t.payloads[start:end], tombs
}

// GetRuns serves a merged point read across an ordered run set (same
// precedence as GetBatchRuns), returning the live payload, whether the
// key is present, and the number of runs probed.
func GetRuns(runs []*Table, key core.Key) (val uint64, ok bool, probes int) {
	for r := len(runs) - 1; r >= 0; r-- {
		t := runs[r]
		if t.Len() == 0 {
			continue
		}
		probes++
		pos, hit := t.Find(key)
		if !hit {
			continue
		}
		if t.tombs != nil && t.tombs[pos] {
			return 0, false, probes
		}
		return t.payloads[pos], true, probes
	}
	return 0, false, probes
}
