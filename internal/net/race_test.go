package net

import (
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/load"
	"repro/internal/serve"
)

// TestConcurrentMixedRace is the satellite -race workload: concurrent
// clients issue mixed reads and writes through the full network stack
// while the store runs background compactions (a low threshold keeps
// them firing) and a Snapshot races the traffic. It asserts only basic
// sanity — the point is the interleavings the race detector watches.
func TestConcurrentMixedRace(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Amzn, 4000, 17)
	payloads := make([]uint64, len(keys))
	for i := range payloads {
		payloads[i] = uint64(i)*3 + 7
	}
	st, err := serve.New(keys, payloads, serve.Config{
		Shards: 4, Family: "PGM", CompactThreshold: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv, err := Listen("127.0.0.1:0", st, Config{CoalesceWindow: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup

	// Closed-loop mixed traffic over one pool, open-loop over another,
	// concurrently: multiplexing, coalescing, and inline writes all
	// active at once.
	wg.Add(1)
	go func() {
		defer wg.Done()
		pool, err := DialPool(srv.Addr().String(), 4)
		if err != nil {
			t.Error(err)
			return
		}
		defer pool.Close()
		ops := load.MixedOps(keys, 6000, 0.5, 0, 11)
		res := load.RunClosed(pool, ops, load.Config{Workers: 8, Batch: 16})
		if res.Errors != 0 {
			t.Errorf("closed-loop errors under race: %+v", res)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		pool, err := DialPool(srv.Addr().String(), 2)
		if err != nil {
			t.Error(err)
			return
		}
		defer pool.Close()
		ops := load.MixedOps(keys, 3000, 0.8, 0, 13)
		res := load.RunOpen(pool, ops, load.Config{Workers: 16, Rate: 20000})
		if res.Errors != 0 {
			t.Errorf("open-loop errors under race: %+v", res)
		}
	}()

	// Snapshot races the traffic: the persistence path walks the same
	// shards the coalescer is batch-reading and the writes are mutating.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := st.Snapshot(t.TempDir()); err != nil {
			t.Errorf("snapshot during traffic: %v", err)
		}
	}()

	// A stats poller exercises the bypass path concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := Dial(srv.Addr().String())
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		for i := 0; i < 50; i++ {
			if _, err := c.Stats(); err != nil {
				t.Errorf("stats poll: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Wait()
	st.WaitCompactions()

	// Post-run sanity through a fresh connection.
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Get(keys[0]); err != nil {
		t.Fatal(err)
	}
}
