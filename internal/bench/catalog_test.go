package bench

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/report"
	"repro/internal/stats"
)

// expectedExperiments is the full catalog: the paper's 17 artifacts
// plus the seven serving-layer experiments. A new experiment must be
// added here (and to the sosd doc comment, which has its own guard).
var expectedExperiments = []string{
	"table1", "fig6", "fig7", "fig8", "table2", "fig9", "fig10",
	"fig11", "fig12", "regress", "fig13", "fig14", "fig15",
	"fig16a", "fig16b", "fig16c", "fig17",
	"persist", "serve", "serve-lsm", "serve-net", "serve-obs", "serve-repl", "serve-tail", "serve-write",
}

func TestCatalogComplete(t *testing.T) {
	exps := Experiments()
	if len(exps) != len(expectedExperiments) {
		t.Errorf("catalog has %d experiments, want %d", len(exps), len(expectedExperiments))
	}
	for _, name := range expectedExperiments {
		exp, ok := Find(name)
		if !ok {
			t.Errorf("experiment %q not registered", name)
			continue
		}
		if exp.Name != name || exp.Desc == "" || exp.Run == nil {
			t.Errorf("experiment %q incompletely registered: %+v", name, exp)
		}
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find returned an unregistered experiment")
	}
}

func TestRegisterRejectsBadEntries(t *testing.T) {
	mustPanic := func(name string, e Experiment) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(e)
	}
	mustPanic("duplicate", Experiment{Name: "fig7", Desc: "dup", Run: fig7})
	mustPanic("nil run", Experiment{Name: "new", Desc: "x"})
	mustPanic("unnamed", Experiment{Desc: "x", Run: fig7})
}

// TestSeedZeroHonored pins the Options contract: an explicit seed of 0
// must survive defaulting (the CLI owns the 42 default, not the
// library — see DefaultSeed).
func TestSeedZeroHonored(t *testing.T) {
	o := Options{N: 100, Lookups: 10, Seed: 0}.withDefaults()
	if o.Seed != 0 {
		t.Errorf("Seed 0 was coerced to %d", o.Seed)
	}
	r := NewRun(Options{N: 100, Lookups: 10})
	if r.Options.Seed != 0 {
		t.Errorf("NewRun coerced seed to %d", r.Options.Seed)
	}
	e0, err := r.Env(dataset.Amzn)
	if err != nil {
		t.Fatal(err)
	}
	e42, err := NewEnv(dataset.Amzn, 100, 10, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if keysChecksum(e0.Keys) == keysChecksum(e42.Keys) {
		t.Error("seed 0 produced the same dataset as seed 42: the old coercion is back")
	}
}

func TestRunRecordsChecksums(t *testing.T) {
	r := NewRun(Options{N: 200, Lookups: 20, Seed: 7})
	if _, err := r.Env(dataset.Amzn); err != nil {
		t.Fatal(err)
	}
	if _, err := r.EnvAt(dataset.OSM, 400, 20); err != nil {
		t.Fatal(err)
	}
	sums := r.DatasetChecksums()
	if len(sums) != 2 {
		t.Fatalf("recorded %d checksums, want 2: %v", len(sums), sums)
	}
	if _, ok := sums["amzn/n=200/seed=7"]; !ok {
		t.Errorf("missing amzn checksum key: %v", sums)
	}
	if _, ok := sums["osm/n=400/seed=7"]; !ok {
		t.Errorf("missing osm checksum key: %v", sums)
	}
}

// TestRegressRows covers the regress experiment's table construction
// without paying for its 2M-key floor: one term row per predictor
// (coefficients skip the intercept) plus the fit-summary note.
func TestRegressRows(t *testing.T) {
	tb := report.New("regress", "t").Dims("model", "term").
		Float("coef", "", 4).Float("std", "beta", 3).Float("p", "", 4)
	reg := &stats.Regression{
		Names:   []string{"cache_misses", "instructions"},
		Coef:    []float64{10, 1.5, 2.5}, // intercept first
		StdCoef: []float64{0.5, 0.6},
		PValues: []float64{0.01, 0.02},
		R2:      0.9, N: 12, DF: 9,
	}
	regressRows(tb, "counters", reg)
	if len(tb.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(tb.Rows))
	}
	if tb.Rows[0].Dims[1] != "cache_misses" || tb.Rows[0].Metrics[0] != 1.5 {
		t.Errorf("first term row wrong: %+v", tb.Rows[0])
	}
	if tb.Rows[1].Dims[1] != "instructions" || tb.Rows[1].Metrics[0] != 2.5 {
		t.Errorf("second term row wrong: %+v", tb.Rows[1])
	}
	if len(tb.Notes) != 1 || !strings.Contains(tb.Notes[0], "R²=0.900") {
		t.Errorf("fit summary note missing: %v", tb.Notes)
	}
	if err := tb.Validate(); err != nil {
		t.Error(err)
	}
}

func TestFilters(t *testing.T) {
	r := NewRun(Options{N: 100, Lookups: 10, Families: []string{"PGM", "RMI"}, Datasets: []string{"osm"}})
	got := r.Families([]string{"RMI", "PGM", "RS", "BTree"})
	if len(got) != 2 || got[0] != "RMI" || got[1] != "PGM" {
		t.Errorf("Families filter = %v", got)
	}
	if r.FamilyAllowed("BTree") || !r.FamilyAllowed("RMI") {
		t.Error("FamilyAllowed disagrees with filter")
	}
	ds := r.Datasets(dataset.All())
	if len(ds) != 1 || ds[0] != dataset.OSM {
		t.Errorf("Datasets filter = %v", ds)
	}

	open := NewRun(Options{N: 100, Lookups: 10})
	if got := open.Families([]string{"A", "B"}); len(got) != 2 {
		t.Errorf("unfiltered Families = %v", got)
	}
	if got := open.Datasets(dataset.All()); len(got) != len(dataset.All()) {
		t.Errorf("unfiltered Datasets = %v", got)
	}
}
