// Command sosd runs the benchmark experiments of "Benchmarking Learned
// Indexes" (Marcus et al., VLDB 2020). Each experiment regenerates one
// table or figure of the paper's evaluation; see DESIGN.md for the
// per-experiment index.
//
// Usage:
//
//	sosd [-n keys] [-lookups m] [-seed s] <experiment> [...]
//
// Experiments: table1 table2 fig6 fig7 fig8 fig9 fig10 fig11 fig12
// fig13 fig14 fig15 fig16a fig16b fig16c fig17 regress serve
// serve-write serve-tail persist all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/bench"
)

var experiments = []struct {
	name string
	desc string
	run  func(io.Writer, bench.Options) error
}{
	{"table1", "capability matrix", func(w io.Writer, _ bench.Options) error { bench.Table1(w); return nil }},
	{"fig6", "dataset CDFs", bench.Fig6},
	{"fig7", "Pareto size/performance sweep, 4 datasets", bench.Fig7},
	{"fig8", "string structures (FST, Wormhole) on integers", bench.Fig8},
	{"table2", "fastest variants vs hash tables", bench.Table2},
	{"fig9", "dataset size scaling 1x..4x", bench.Fig9},
	{"fig10", "32-bit vs 64-bit keys", bench.Fig10},
	{"fig11", "last-mile search functions", bench.Fig11},
	{"fig12", "lookup time vs explanatory metrics", bench.Fig12},
	{"regress", "Section 4.3 OLS analysis", bench.Regress},
	{"fig13", "size vs log2 error (compression view)", bench.Fig13},
	{"fig14", "warm vs cold cache", bench.Fig14},
	{"fig15", "memory-fence (serialized) lookups", bench.Fig15},
	{"fig16a", "threads vs throughput", bench.Fig16a},
	{"fig16b", "size vs throughput at max threads", bench.Fig16b},
	{"fig16c", "cache misses per lookup per second", bench.Fig16c},
	{"fig17", "build times at 1x..4x scale", bench.Fig17},
	{"serve", "serving layer: batched table lookups + sharded store sweep", bench.ServeSweep},
	{"serve-write", "mixed read/write workloads over the mutable store", bench.ServeWriteSweep},
	{"serve-tail", "tail latency: closed vs open-loop (Poisson) load, p50..p99.9 per arrival rate", bench.ServeTailSweep},
	{"persist", "cold build-from-scratch vs warm load-from-snapshot per family", bench.PersistSweep},
}

func main() {
	n := flag.Int("n", 200_000, "dataset size in keys (the paper uses 200M)")
	lookups := flag.Int("lookups", 20_000, "number of lookups per measurement")
	seed := flag.Uint64("seed", 42, "dataset/workload seed")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Usage = usage
	flag.Parse()

	if *list {
		listExperiments(os.Stdout)
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	o := bench.Options{N: *n, Lookups: *lookups, Seed: *seed}

	for _, name := range args {
		if name == "all" {
			for _, exp := range experiments {
				runOne(exp.name, exp.run, o)
			}
			continue
		}
		found := false
		for _, exp := range experiments {
			if exp.name == name {
				runOne(exp.name, exp.run, o)
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "sosd: unknown experiment %q\n", name)
			listExperiments(os.Stderr)
			os.Exit(2)
		}
	}
}

func runOne(name string, run func(io.Writer, bench.Options) error, o bench.Options) {
	start := time.Now()
	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintf(os.Stderr, "sosd: %s: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: sosd [-n keys] [-lookups m] [-seed s] <experiment>...\n\n")
	listExperiments(os.Stderr)
}

func listExperiments(w io.Writer) {
	fmt.Fprintln(w, "experiments:")
	for _, exp := range experiments {
		fmt.Fprintf(w, "  %-8s %s\n", exp.name, exp.desc)
	}
	fmt.Fprintln(w, "  all      run everything")
}
