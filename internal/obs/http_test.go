package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestAdminEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total").Add(12)
	r.GaugeFunc("temp", func() float64 { return 3.5 })
	j := NewJournal(8)
	j.Append(Event{Shard: 1, Kind: "flush", Keys: 100})
	j.Append(Event{Shard: 0, Kind: "major", Keys: 5000})

	srv, err := ListenAdmin("127.0.0.1:0", r, j)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr().String()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ct := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	if !strings.Contains(metrics, "hits_total 12\n") || !strings.Contains(metrics, "temp 3.5\n") {
		t.Fatalf("/metrics missing series:\n%s", metrics)
	}

	varsBody, ct := get("/vars")
	if !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/vars content type %q", ct)
	}
	var vars []Var
	if err := json.Unmarshal([]byte(varsBody), &vars); err != nil {
		t.Fatalf("/vars is not JSON: %v", err)
	}
	if len(vars) != 2 {
		t.Fatalf("/vars has %d entries, want 2", len(vars))
	}

	eventsBody, _ := get("/events")
	var events struct {
		Total   uint64  `json:"total"`
		Evicted uint64  `json:"evicted"`
		Events  []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(eventsBody), &events); err != nil {
		t.Fatalf("/events is not JSON: %v", err)
	}
	if events.Total != 2 || len(events.Events) != 2 || events.Events[1].Kind != "major" {
		t.Fatalf("/events wrong: %+v", events)
	}

	// pprof index must be live even with nil registry and journal.
	if body, _ := get("/debug/pprof/"); !strings.Contains(body, "profile") {
		t.Fatal("/debug/pprof/ index missing profiles")
	}

	// Unknown paths 404 rather than falling into the index page.
	resp, err := http.Get(base + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /nope: status %d, want 404", resp.StatusCode)
	}
}

func TestAdminNilRegistry(t *testing.T) {
	srv, err := ListenAdmin("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/metrics", "/vars", "/events"} {
		resp, err := http.Get("http://" + srv.Addr().String() + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s with nil registry: status %d", path, resp.StatusCode)
		}
	}
}
