package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// AdminMux builds the admin endpoint: Prometheus text at /metrics,
// the flattened JSON snapshot at /vars, the write-path event journal
// at /events, and the standard pprof handlers under /debug/pprof/.
// reg and j may be nil (the endpoints then serve empty documents); the
// pprof handlers are always live — profiling needs no registry.
func AdminMux(reg *Registry, j *Journal) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, reg.Vars())
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, struct {
			Total   uint64  `json:"total"`
			Evicted uint64  `json:"evicted"`
			Events  []Event `json:"events"`
		}{j.Total(), j.Evicted(), j.Events()})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("sosd admin endpoint\n/metrics\n/vars\n/events\n/debug/pprof/\n"))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// AdminServer is a running admin HTTP listener.
type AdminServer struct {
	srv *http.Server
	ln  net.Listener
}

// ListenAdmin starts the admin endpoint on addr (e.g. "127.0.0.1:0"
// for an ephemeral port in tests) and serves it on a background
// goroutine until Close.
func ListenAdmin(addr string, reg *Registry, j *Journal) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	a := &AdminServer{srv: &http.Server{Handler: AdminMux(reg, j)}, ln: ln}
	go func() { _ = a.srv.Serve(ln) }()
	return a, nil
}

// Addr reports the bound listen address.
func (a *AdminServer) Addr() net.Addr { return a.ln.Addr() }

// Close stops the listener and severs open admin connections.
func (a *AdminServer) Close() error { return a.srv.Close() }
