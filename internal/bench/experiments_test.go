package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/search"
)

// Every experiment must run end-to-end at tiny scale and emit its
// table header plus at least a handful of data rows. These are the
// integration tests for the full figure pipeline; numeric shapes are
// asserted in EXPERIMENTS.md from full-scale runs.

func runExperiment(t *testing.T, name string, fn func() error, buf *bytes.Buffer, wantMarkers ...string) {
	t.Helper()
	buf.Reset()
	if err := fn(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	out := buf.String()
	for _, marker := range wantMarkers {
		if !strings.Contains(out, marker) {
			t.Errorf("%s output missing %q:\n%s", name, marker, clip(out))
		}
	}
	if strings.Count(out, "\n") < 4 {
		t.Errorf("%s produced almost no output:\n%s", name, clip(out))
	}
}

func clip(s string) string {
	if len(s) > 600 {
		return s[:600] + "..."
	}
	return s
}

func TestFig7EndToEnd(t *testing.T) {
	var buf bytes.Buffer
	runExperiment(t, "fig7", func() error { return Fig7(&buf, tiny) }, &buf,
		"Figure 7", "amzn", "osm", "wiki", "face", "RMI", "FAST", "baseline")
}

func TestFig8EndToEnd(t *testing.T) {
	var buf bytes.Buffer
	runExperiment(t, "fig8", func() error { return Fig8(&buf, tiny) }, &buf,
		"Figure 8", "FST", "Wormhole")
}

func TestFig9EndToEnd(t *testing.T) {
	var buf bytes.Buffer
	runExperiment(t, "fig9", func() error { return Fig9(&buf, tiny) }, &buf,
		"Figure 9", "16000") // 4x of tiny.N
}

func TestFig10EndToEnd(t *testing.T) {
	var buf bytes.Buffer
	runExperiment(t, "fig10", func() error { return Fig10(&buf, tiny) }, &buf,
		"Figure 10", "BTree32", "FAST32", "32", "64")
}

func TestFig11EndToEnd(t *testing.T) {
	var buf bytes.Buffer
	runExperiment(t, "fig11", func() error { return Fig11(&buf, tiny) }, &buf,
		"Figure 11", "binary", "linear", "interpolation")
}

func TestFig12EndToEnd(t *testing.T) {
	var buf bytes.Buffer
	runExperiment(t, "fig12", func() error { return Fig12(&buf, tiny) }, &buf,
		"Figure 12", "c-miss", "instr")
}

func TestFig14EndToEnd(t *testing.T) {
	var buf bytes.Buffer
	runExperiment(t, "fig14", func() error { return Fig14(&buf, tiny) }, &buf,
		"Figure 14", "warm", "cold")
}

func TestFig15EndToEnd(t *testing.T) {
	var buf bytes.Buffer
	runExperiment(t, "fig15", func() error { return Fig15(&buf, tiny) }, &buf,
		"Figure 15", "fence")
}

func TestFig16aEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	runExperiment(t, "fig16a", func() error { return Fig16a(&buf, tiny) }, &buf,
		"Figure 16a", "Mlookups/s")
}

func TestFig16bEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	runExperiment(t, "fig16b", func() error { return Fig16b(&buf, tiny) }, &buf,
		"Figure 16b", "RMI")
}

func TestFig16cEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	runExperiment(t, "fig16c", func() error { return Fig16c(&buf, tiny) }, &buf,
		"Figure 16c", "miss/op")
}

func TestFig17EndToEnd(t *testing.T) {
	var buf bytes.Buffer
	runExperiment(t, "fig17", func() error { return Fig17(&buf, tiny) }, &buf,
		"Figure 17", "build(ms)", "Wormhole")
}

func TestFig14ColdSlowerThanWarm(t *testing.T) {
	// The defining property of Figure 14 at any scale: evicting the
	// cache between lookups cannot make lookups faster. Assert it on
	// one structure with a safety margin for timer noise.
	e, err := NewEnv("amzn", 20000, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	idx := midVariant(e, "BTree")
	warm := MeasureWarm(e, idx, search.BinarySearch)
	cold := MeasureCold(e, idx, search.BinarySearch, 100)
	if cold.NsPerLookup < warm.NsPerLookup {
		t.Errorf("cold (%f) faster than warm (%f)", cold.NsPerLookup, warm.NsPerLookup)
	}
}

func TestServeTailSweepEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	runExperiment(t, "serve-tail", func() error { return ServeTailSweep(&buf, tiny) }, &buf,
		"Tail latency", "scheduled Poisson arrival", "p99.9", "closed", "open25%", "open80%",
		"RMI", "PGM", "BTree")
}

func TestServeWriteSweepEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	runExperiment(t, "serve-write", func() error { return ServeWriteSweep(&buf, tiny) }, &buf,
		"Mixed read/write", "threshold sweep", "RMI", "PGM", "BTree", "zipf", "unif")
}
