package net

import (
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/serve"
)

// waitGoroutines polls until the goroutine count drops back to the
// baseline or the deadline passes, absorbing scheduler stragglers —
// the same discipline as internal/load's generator leak test.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 64<<10)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerShutdownLeavesNoGoroutines is the satellite leak test: the
// goroutine count returns to its pre-server baseline after a graceful
// stop, after a stop with requests in flight, and after abrupt client
// disconnects — including a half-written frame.
func TestServerShutdownLeavesNoGoroutines(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Amzn, 2000, 17)
	payloads := make([]uint64, len(keys))
	for i := range payloads {
		payloads[i] = uint64(i) + 1
	}
	st, err := serve.New(keys, payloads, serve.Config{Shards: 4, Family: "PGM"})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.WaitCompactions()
	baseline := runtime.NumGoroutine()

	// Graceful: serve real traffic, close clients first, then server.
	srv, err := Listen("127.0.0.1:0", st, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := DialPool(srv.Addr().String(), 4)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]uint64, 64)
	for i := 0; i < 256; i++ {
		if _, _, err := pool.TryGet(keys[i%len(keys)]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pool.TryGetBatch(keys[:64], out); err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, baseline)

	// Mid-request abort: many async calls in flight while both sides
	// shut down, server first (so clients see severed connections).
	srv2, err := Listen("127.0.0.1:0", st, Config{CoalesceWindow: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, _, err := c.Get(keys[(w*100+i)%len(keys)]); err != nil {
					return // connection severed mid-run: expected
				}
			}
		}(w)
	}
	time.Sleep(2 * time.Millisecond) // let requests get in flight
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, baseline)

	// Abrupt client disconnects: full frame then slam, and a torn
	// half-frame. The server must reap both connections.
	srv3, err := Listen("127.0.0.1:0", st, Config{})
	if err != nil {
		t.Fatal(err)
	}
	nc, err := net.Dial("tcp", srv3.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c3 := &Client{nc: nc, waiters: map[uint64]chan *Msg{}, readerDone: make(chan struct{}), epoch: 1}
	go c3.reader(nc, 1, c3.readerDone)
	if _, _, err := c3.Get(keys[0]); err != nil {
		t.Fatal(err)
	}
	_ = nc.Close() // slam without protocol goodbye
	<-c3.readerDone

	nc2, err := net.Dial("tcp", srv3.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// Half a frame: a length prefix promising more than is sent.
	if _, err := nc2.Write([]byte{0xff, 0x00, 0x00, 0x00, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	_ = nc2.Close()

	// Both connections must be reaped before the server closes.
	deadline := time.Now().Add(5 * time.Second)
	for srv3.Stats().Conns != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("server still reports %d conns after disconnects", srv3.Stats().Conns)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := srv3.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, baseline)

	// The store is untouched by all that churn.
	if v, ok := st.Get(keys[1]); !ok || v != payloads[1] {
		t.Fatalf("store damaged after server churn: %d,%v", v, ok)
	}
}
