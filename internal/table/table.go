// Package table implements the end-to-end serving unit of the
// benchmark: a Table owns a sorted key array, its payload array, a
// search-bound index (core.Index) and a last-mile search function, and
// serves the full key→payload path — point reads, range scans, and a
// batched lookup fast path.
//
// The batched path (GetBatch) amortizes the two halves of a lookup
// over a batch: bound prediction goes through core.BatchIndex when the
// index implements it (one call per batch instead of one interface
// dispatch per key), and the last-mile search runs as rounds of
// independent probes across the batch, so the random data-array loads
// of different keys overlap in the memory system instead of
// serializing behind one binary search at a time.
package table

import (
	"errors"

	"repro/internal/core"
	"repro/internal/search"
)

// Table is an immutable sorted run of key/payload pairs served through
// a pluggable index. All read methods are safe for concurrent use.
//
// A Table built with NewTombed additionally carries a tombstone bit per
// pair: the run participates in an LSM-tiered run set where a newer
// run's tombstone must shadow older runs' occurrences of its key. Only
// the run-set read path (GetBatchRuns, Find + TombAt) interprets the
// bits; the plain single-table methods (Get, GetBatch, Range, Scan)
// serve the raw pairs and are reserved for tombstone-free tables.
type Table struct {
	keys     []core.Key
	payloads []uint64
	tombs    []bool // optional tombstone bits, parallel to keys; nil = none
	idx      core.Index
	fn       search.Fn
}

// New wraps existing data in a Table. keys must be sorted ascending
// and the same length as payloads; fn nil defaults to branchless
// binary search (search.BranchlessSearch).
// The Table aliases both slices — callers must not mutate them.
func New(keys []core.Key, payloads []uint64, idx core.Index, fn search.Fn) (*Table, error) {
	if idx == nil {
		return nil, errors.New("table: nil index")
	}
	if len(keys) != len(payloads) {
		return nil, errors.New("table: keys and payloads length mismatch")
	}
	if !core.IsSorted(keys) {
		return nil, errors.New("table: keys not sorted")
	}
	if fn == nil {
		fn = search.BranchlessSearch
	}
	return &Table{keys: keys, payloads: payloads, idx: idx, fn: fn}, nil
}

// NewTombed wraps existing data plus a parallel tombstone-bit array in
// a Table (see the type comment for tombstone semantics). tombs may be
// nil (no tombstones) or exactly len(keys) long; an all-false array is
// normalized to nil so HasTombs stays a cheap run-set fast-path gate.
func NewTombed(keys []core.Key, payloads []uint64, tombs []bool, idx core.Index, fn search.Fn) (*Table, error) {
	t, err := New(keys, payloads, idx, fn)
	if err != nil {
		return nil, err
	}
	if tombs != nil {
		if len(tombs) != len(keys) {
			return nil, errors.New("table: tombs and keys length mismatch")
		}
		for _, tb := range tombs {
			if tb {
				t.tombs = tombs
				break
			}
		}
	}
	return t, nil
}

// Build constructs the index with b and wraps the result in a Table.
func Build(b core.Builder, keys []core.Key, payloads []uint64, fn search.Fn) (*Table, error) {
	idx, err := b.Build(keys)
	if err != nil {
		return nil, err
	}
	return New(keys, payloads, idx, fn)
}

// BuildTombed constructs the index with b and wraps data plus
// tombstone bits in a Table — the constructor of freshly flushed or
// minor-merged LSM runs.
func BuildTombed(b core.Builder, keys []core.Key, payloads []uint64, tombs []bool, fn search.Fn) (*Table, error) {
	idx, err := b.Build(keys)
	if err != nil {
		return nil, err
	}
	return NewTombed(keys, payloads, tombs, idx, fn)
}

// emptyIndex is the index of an empty table: every bound is the empty
// run [0, 0).
type emptyIndex struct{}

func (emptyIndex) Lookup(core.Key) core.Bound { return core.Bound{} }
func (emptyIndex) SizeBytes() int             { return 0 }
func (emptyIndex) Name() string               { return "Empty" }

// Empty returns a zero-length table (e.g. the result of compacting a
// run whose every key was deleted). fn nil defaults to branchless
// binary search.
func Empty(fn search.Fn) *Table {
	t, err := New(nil, nil, emptyIndex{}, fn)
	if err != nil {
		panic(err) // unreachable: nil slices satisfy every New invariant
	}
	return t
}

// Len reports the number of key/payload pairs.
func (t *Table) Len() int { return len(t.keys) }

// Keys returns the table's sorted key array as a view; callers must
// not mutate it. It is the base-run input to the serving layer's
// delta-merge compaction.
func (t *Table) Keys() []core.Key { return t.keys }

// Payloads returns the table's payload array as a view, parallel to
// Keys; callers must not mutate it.
func (t *Table) Payloads() []uint64 { return t.payloads }

// CountKey reports the number of occurrences of key (0 when absent;
// more than 1 only for duplicate-key tables).
func (t *Table) CountKey(key core.Key) int {
	pos := t.lowerBound(key)
	n := 0
	for pos+n < len(t.keys) && t.keys[pos+n] == key {
		n++
	}
	return n
}

// Tombs returns the table's tombstone-bit array as a view (nil when
// the table carries none); callers must not mutate it.
func (t *Table) Tombs() []bool { return t.tombs }

// HasTombs reports whether any pair of the table is a tombstone.
func (t *Table) HasTombs() bool { return t.tombs != nil }

// TombAt reports whether the pair at position pos is a tombstone.
func (t *Table) TombAt(pos int) bool { return t.tombs != nil && t.tombs[pos] }

// Index returns the underlying search-bound index.
func (t *Table) Index() core.Index { return t.idx }

// SizeBytes reports the index footprint (the size axis of the paper's
// tradeoff curves; the data arrays are the same for every index).
func (t *Table) SizeBytes() int { return t.idx.SizeBytes() }

// MinKey returns the smallest key; ok is false for an empty table.
func (t *Table) MinKey() (core.Key, bool) {
	if len(t.keys) == 0 {
		return 0, false
	}
	return t.keys[0], true
}

// MaxKey returns the largest key; ok is false for an empty table.
func (t *Table) MaxKey() (core.Key, bool) {
	if len(t.keys) == 0 {
		return 0, false
	}
	return t.keys[len(t.keys)-1], true
}

// lowerBound resolves the exact lower-bound position of key through
// the index and last-mile search.
func (t *Table) lowerBound(key core.Key) int {
	return t.fn(t.keys, key, t.idx.Lookup(key))
}

// Get returns the payload stored for key, or false when absent. For
// duplicate keys it returns the first occurrence's payload.
func (t *Table) Get(key core.Key) (uint64, bool) {
	pos := t.lowerBound(key)
	if pos < len(t.keys) && t.keys[pos] == key {
		return t.payloads[pos], true
	}
	return 0, false
}

// Find resolves key to its lower-bound position through the index and
// last-mile search; found reports whether the pair at pos actually
// carries key. Unlike Get it exposes the position, which is what the
// LSM run-set read path needs to consult the tombstone bit.
func (t *Table) Find(key core.Key) (pos int, found bool) {
	pos = t.lowerBound(key)
	return pos, pos < len(t.keys) && t.keys[pos] == key
}

// Range returns the keys and payloads with key in [lo, hi), as views
// into the table's arrays (zero-copy; callers must not mutate them).
func (t *Table) Range(lo, hi core.Key) ([]core.Key, []uint64) {
	start := t.lowerBound(lo)
	if hi < lo {
		hi = lo
	}
	end := t.lowerBound(hi)
	return t.keys[start:end], t.payloads[start:end]
}

// Scan visits the pairs with key in [lo, hi) in order, stopping early
// when visit returns false. It returns the number of pairs visited.
func (t *Table) Scan(lo, hi core.Key, visit func(core.Key, uint64) bool) int {
	keys, payloads := t.Range(lo, hi)
	for i := range keys {
		if !visit(keys[i], payloads[i]) {
			return i + 1
		}
	}
	return len(keys)
}

// batchBlock is the GetBatch processing granularity: large enough to
// amortize the per-block passes, small enough that the block's bounds
// and keys stay resident in L1 between passes.
const batchBlock = 256

// narrowWidth is the bound width below which the pipelined probe
// rounds stop and the scalar last mile takes over; past this point the
// whole bound sits in one or two cache lines and independent-probe
// scheduling has nothing left to overlap.
const narrowWidth = 8

// maxProbeRounds caps the pipelined rounds per block. Each round
// halves every active bound, so 16 rounds narrow even a 512k-wide
// bound (the worst sweep configurations) to scalar range.
const maxProbeRounds = 16

// pipelineMinKeys gates the pipelined probe rounds: below ~2 MB of
// keys the data array is cache-resident, every probe hits anyway, and
// the extra bound-array passes only cost; above it the overlapped
// misses win.
const pipelineMinKeys = 1 << 18

// GetBatch looks up a batch of keys: out[i] receives the payload for
// keys[i], or 0 when absent, and the number of keys found is returned.
// len(out) must be at least len(keys). The batch is processed in
// blocks of bounds-prediction, pipelined probe rounds, and scalar
// last-mile; ascending runs within a block additionally narrow each
// bound by the previous key's resolved position (sorted-probe reuse).
func (t *Table) GetBatch(keys []core.Key, out []uint64) int {
	if len(out) < len(keys) {
		panic("table: GetBatch output shorter than key batch")
	}
	found := 0
	var bounds [batchBlock]core.Bound
	for off := 0; off < len(keys); off += batchBlock {
		end := off + batchBlock
		if end > len(keys) {
			end = len(keys)
		}
		found += t.getBlock(keys[off:end], out[off:end], bounds[:end-off])
	}
	return found
}

// getBlock serves one block of at most batchBlock keys.
func (t *Table) getBlock(chunk []core.Key, out []uint64, bs []core.Bound) int {
	// Pass 1: bound prediction, vectorized when the index supports it.
	core.LookupBatch(t.idx, chunk, bs)

	keys, payloads := t.keys, t.payloads
	n := len(keys)
	if n == 0 {
		for i := range out[:len(chunk)] {
			out[i] = 0
		}
		return 0
	}

	// Pass 2: pipelined probe rounds through the batched search layer.
	// Every active bound takes one branchless probe per round; the
	// probes of a round are independent, so their data-array loads
	// overlap instead of chaining like the per-key path's log2(width)
	// dependent misses.
	if n >= pipelineMinKeys {
		search.NarrowBatch(keys, chunk, bs, narrowWidth, maxProbeRounds)
	}

	// Pass 3: scalar last mile on the narrowed bounds, reusing the
	// previous position as a floor whenever the block is locally
	// ascending (LB is monotone in the key, so a later-or-equal key
	// can never land before an earlier key's resolved position). The
	// loop is flat: the floor seed (prevKey=0, prevPos=0) makes the
	// first iteration a no-op without a havePrev flag, and the
	// hit/miss accounting is a clamp + mask instead of a branch the
	// predictor can't learn on mixed hit/miss workloads.
	found := 0
	prevPos := 0
	var prevKey core.Key
	bs = bs[:len(chunk)]
	out = out[:len(chunk)]
	payloads = payloads[:n] // len(payloads)==len(keys): lets BCE drop the gather checks
	for i, x := range chunk {
		b := bs[i]
		if x >= prevKey && prevPos > b.Lo {
			b.Lo = prevPos
			if b.Lo > b.Hi {
				b.Lo = b.Hi
			}
		}
		pos := t.fn(keys, x, b)
		prevPos, prevKey = pos, x
		at := uint(pos)
		if at >= uint(n) {
			at = uint(n) - 1 // conditional move; pos==n loads a dummy slot
		}
		hit := 0
		if pos < n && keys[at] == x {
			hit = 1
		}
		found += hit
		out[i] = payloads[at] * uint64(hit)
	}
	return found
}
