package report

import (
	"runtime"
	"runtime/debug"
	"time"
)

// Meta is the run metadata attached to machine-readable output: what
// produced the tables, from which source revision, with which options,
// over which data. It is finalized at the *end* of a run, because some
// facts (dataset checksums) are only known once the experiments have
// generated their environments.
type Meta struct {
	Tool      string    `json:"tool"`
	Version   string    `json:"version"`
	GoVersion string    `json:"go,omitempty"`
	OS        string    `json:"os,omitempty"`
	Arch      string    `json:"arch,omitempty"`
	CPUs      int       `json:"cpus,omitempty"`
	Started   time.Time `json:"started,omitzero"`
	// Options records the run's knobs (n, lookups, seed, filters) as
	// the producer saw them.
	Options map[string]any `json:"options,omitempty"`
	// Datasets maps each generated environment ("amzn/n=200000/seed=42")
	// to a checksum of its keys, so two runs are comparable only when
	// they measured identical data.
	Datasets map[string]uint64 `json:"datasets,omitempty"`
}

// NewMeta fills the host fields and version for a tool.
func NewMeta(tool string) Meta {
	return Meta{
		Tool:      tool,
		Version:   BuildVersion(),
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Started:   time.Now().UTC(),
	}
}

// BuildVersion returns a git-describe-style identifier of the running
// binary: the embedded VCS revision (shortened, "+dirty" when the
// working tree was modified), the module version for released builds,
// or "devel" when no build info is available (e.g. `go run` without
// VCS stamping).
func BuildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			return v
		}
		return "devel"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "+dirty"
	}
	return rev
}
