package main

// The exposition linter: a strict reader for the subset of the
// Prometheus text format (version 0.0.4) the obs package emits. It is
// deliberately harder to please than a real Prometheus scraper —
// every sample must belong to a declared family, families must be
// contiguous, and series must be unique — because its job is to catch
// registry regressions, not to ingest arbitrary expositions.

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Lint checks the whole exposition for well-formedness and returns
// one problem string per violation (empty means clean).
func Lint(text string) []string {
	var problems []string
	bad := func(line int, format string, args ...any) {
		problems = append(problems, fmt.Sprintf("line %d: %s", line+1, fmt.Sprintf(format, args...)))
	}

	typed := map[string]string{} // family -> declared type
	closed := map[string]bool{}  // family -> samples ended (contiguity)
	seen := map[string]bool{}    // full series id -> emitted
	current := ""                // family whose block we are inside

	lines := strings.Split(text, "\n")
	for i, line := range lines {
		if line == "" {
			if i != len(lines)-1 {
				bad(i, "blank line inside exposition")
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) >= 2 && f[1] == "HELP" {
				continue
			}
			if len(f) != 4 || f[1] != "TYPE" {
				bad(i, "malformed comment %q (want # TYPE <name> <type>)", line)
				continue
			}
			name, typ := f[2], f[3]
			if !validMetricName(name) {
				bad(i, "invalid metric name %q in TYPE", name)
			}
			switch typ {
			case "counter", "gauge", "summary", "histogram", "untyped":
			default:
				bad(i, "unknown metric type %q", typ)
			}
			if _, dup := typed[name]; dup {
				bad(i, "family %q declared twice", name)
			}
			typed[name] = typ
			if current != "" {
				closed[current] = true
			}
			current = name
			continue
		}

		id, value, ok := splitSample(line)
		if !ok {
			bad(i, "malformed sample %q", line)
			continue
		}
		if seen[id] {
			bad(i, "duplicate series %q", id)
		}
		seen[id] = true
		name, labels := splitName(id)
		if !validMetricName(name) {
			bad(i, "invalid metric name %q", name)
			continue
		}
		if lp := lintLabels(labels); lp != "" {
			bad(i, "%s in %q", lp, id)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			bad(i, "unparseable value %q", value)
		}
		family := familyOf(name, typed)
		if family == "" {
			bad(i, "sample %q has no TYPE declaration", name)
			continue
		}
		if family != current {
			bad(i, "sample of family %q inside block of %q (families must be contiguous)", family, current)
		}
		if closed[family] {
			bad(i, "family %q resumed after other samples (families must be contiguous)", family)
		}
	}
	return problems
}

// Values flattens the exposition into series-id -> value, for law
// checking. Malformed lines are skipped (Lint reports them).
func Values(text string) map[string]float64 {
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		id, value, ok := splitSample(line)
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			continue
		}
		out[id] = v
	}
	return out
}

// CheckLaws verifies the serving stack's conservation laws on the
// scraped values. A missing series fails: a law that cannot be
// evaluated is indistinguishable from a broken registry.
func CheckLaws(vals map[string]float64) []string {
	var problems []string
	get := func(id string) (float64, bool) {
		v, ok := vals[id]
		if !ok {
			problems = append(problems, fmt.Sprintf("law needs series %q, not in exposition", id))
		}
		return v, ok
	}
	check := func(desc string, holds bool) {
		if !holds {
			problems = append(problems, "law violated: "+desc)
		}
	}

	if keys, ok1 := get("sosd_net_batched_keys_total"); ok1 {
		if acc, ok2 := get("sosd_net_accepted_total"); ok2 {
			check(fmt.Sprintf("batched keys %v <= accepted %v", keys, acc), keys <= acc)
		}
	}
	if fl, ok1 := get("sosd_store_flushes_total"); ok1 {
		if fr, ok2 := get("sosd_store_delta_freezes_total"); ok2 {
			check(fmt.Sprintf("flushes %v == delta freezes %v", fl, fr), fl == fr)
		}
	}
	if pr, ok1 := get("sosd_store_run_probes_total"); ok1 {
		if mo, ok2 := get("sosd_store_multirun_ops_total"); ok2 {
			check(fmt.Sprintf("run probes %v >= multirun ops %v", pr, mo), pr >= mo)
		}
	}
	if lc, ok1 := get("sosd_net_latency_ns_count"); ok1 {
		if acc, ok2 := get("sosd_net_accepted_total"); ok2 {
			check(fmt.Sprintf("latency count %v <= accepted %v", lc, acc), lc <= acc)
		}
	}
	for id, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			problems = append(problems, fmt.Sprintf("non-finite value in %q", id))
		}
	}
	return problems
}

// splitSample splits "id value" on the last space outside braces —
// label values may contain spaces.
func splitSample(line string) (id, value string, ok bool) {
	depth := 0
	inQuote := false
	cut := -1
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case '{':
			if !inQuote {
				depth++
			}
		case '}':
			if !inQuote {
				depth--
			}
		case ' ':
			if depth == 0 && !inQuote {
				cut = i
			}
		}
	}
	if cut <= 0 || cut == len(line)-1 {
		return "", "", false
	}
	return line[:cut], line[cut+1:], true
}

// splitName splits a series id into base name and the {...} label
// block (empty when unlabelled).
func splitName(id string) (name, labels string) {
	if i := strings.IndexByte(id, '{'); i >= 0 {
		return id[:i], id[i:]
	}
	return id, ""
}

// lintLabels validates a {k="v",...} block; returns "" when clean.
func lintLabels(labels string) string {
	if labels == "" {
		return ""
	}
	if !strings.HasPrefix(labels, "{") || !strings.HasSuffix(labels, "}") {
		return "unbalanced label braces"
	}
	body := labels[1 : len(labels)-1]
	if body == "" {
		return "empty label block"
	}
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq <= 0 || !validLabelName(body[:eq]) {
			return "invalid label name"
		}
		rest := body[eq+1:]
		if len(rest) < 2 || rest[0] != '"' {
			return "unquoted label value"
		}
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return "unterminated label value"
		}
		body = rest[end+1:]
		if body == "" {
			break
		}
		if body[0] != ',' {
			return "missing comma between labels"
		}
		body = body[1:]
	}
	return ""
}

// familyOf maps a sample name to its declared family, accounting for
// the summary pseudo-series (_sum, _count).
func familyOf(name string, typed map[string]string) string {
	if _, ok := typed[name]; ok {
		return name
	}
	for _, suffix := range []string{"_sum", "_count", "_bucket"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if t, ok := typed[base]; ok && (t == "summary" || t == "histogram") {
			return base
		}
	}
	return ""
}

// validMetricName reports [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
