// Package registry is the single catalog of index-structure families:
// every family self-describes as a name plus a sweep constructor that
// yields its configuration ladder (small index to large) for a given
// key set. The benchmark harness, the sosd CLI, and the serving layer
// all consume this one catalog, so adding a family here makes it
// available everywhere at once.
package registry

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// NamedBuilder pairs a builder with its configuration label.
type NamedBuilder struct {
	Label   string
	Builder core.Builder
}

// SweepFunc returns a family's configuration sweep for a key set,
// ordered small index to large. Learned structures tune per dataset,
// mirroring the paper's author-tuned configurations, which is why the
// sweep is a function of the keys rather than a static list.
type SweepFunc func(keys []core.Key) []NamedBuilder

var families = map[string]SweepFunc{}

// Register adds a family to the catalog. It panics on duplicate names:
// two packages claiming one family is a programming error, and the
// catalog is assembled at init time where failing loudly is the only
// useful behaviour.
func Register(family string, fn SweepFunc) {
	if fn == nil {
		panic(fmt.Sprintf("registry: nil sweep for family %q", family))
	}
	if _, dup := families[family]; dup {
		panic(fmt.Sprintf("registry: duplicate family %q", family))
	}
	families[family] = fn
}

// Has reports whether a family is registered.
func Has(family string) bool {
	_, ok := families[family]
	return ok
}

// Families returns every registered family name, sorted.
func Families() []string {
	out := make([]string, 0, len(families))
	for name := range families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Sweep returns the configuration sweep for a registered family, small
// index to large, or nil for an unknown family.
func Sweep(family string, keys []core.Key) []NamedBuilder {
	fn, ok := families[family]
	if !ok {
		return nil
	}
	return fn(keys)
}

// Builder returns the single mid-sweep builder of a family: the
// canonical "one reasonable configuration" used when a caller (e.g. a
// serving shard) wants a family without sweeping. ok is false for an
// unknown family or an empty sweep.
func Builder(family string, keys []core.Key) (NamedBuilder, bool) {
	sweep := Sweep(family, keys)
	if len(sweep) == 0 {
		return NamedBuilder{}, false
	}
	return sweep[len(sweep)/2], true
}

// ID returns the deterministic cross-process identifier of a family
// configuration: "family" for an unlabelled configuration, otherwise
// "family/label". Sweep labels are pure functions of the configuration
// (never of pointers, timestamps, or iteration order), so the same
// config produces the same ID in every process — which is what lets a
// snapshot manifest name the exact catalog entry that built a shard.
// Family names must not contain '/'; labels may.
func ID(family, label string) string {
	if label == "" {
		return family
	}
	return family + "/" + label
}

// ParseID splits an ID back into family and label (label empty for
// unlabelled IDs).
func ParseID(id string) (family, label string) {
	if i := strings.IndexByte(id, '/'); i >= 0 {
		return id[:i], id[i+1:]
	}
	return id, ""
}

// SweepEntry looks up one catalog entry by its stable name: the entry
// of family's sweep over keys whose label matches. ok is false when the
// family is unknown or no entry of the sweep carries the label (e.g. a
// learned family whose tuned ladder changed because the key set did).
func SweepEntry(family, label string, keys []core.Key) (NamedBuilder, bool) {
	for _, nb := range Sweep(family, keys) {
		if nb.Label == label {
			return nb, true
		}
	}
	return NamedBuilder{}, false
}

// RebuildFunc produces the builder used when a serving shard is
// compacted and its index rebuilt: prev is the builder that built the
// shard's current index, keys the merged key set about to be indexed.
// Families whose configuration is tuned per key set (the learned
// structures) register one so compaction re-tunes; families without a
// hook reuse prev, the cheap bulk-load path.
type RebuildFunc func(prev core.Builder, keys []core.Key) core.Builder

var rebuilds = map[string]RebuildFunc{}

// RegisterRebuild adds a family's compaction rebuild hook. Like
// Register, it panics on nil hooks and duplicate registrations.
func RegisterRebuild(family string, fn RebuildFunc) {
	if fn == nil {
		panic(fmt.Sprintf("registry: nil rebuild hook for family %q", family))
	}
	if _, dup := rebuilds[family]; dup {
		panic(fmt.Sprintf("registry: duplicate rebuild hook for family %q", family))
	}
	rebuilds[family] = fn
}

// HasRebuild reports whether a family registered a compaction rebuild
// hook (i.e. whether RebuildBuilder can return a builder other than
// prev).
func HasRebuild(family string) bool {
	_, ok := rebuilds[family]
	return ok
}

// RebuildBuilder returns the builder for re-indexing keys after a
// compaction merge: the family's rebuild hook when registered,
// otherwise prev unchanged. family values not in the catalog (custom
// builders) always reuse prev.
func RebuildBuilder(family string, prev core.Builder, keys []core.Key) core.Builder {
	if fn, ok := rebuilds[family]; ok {
		return fn(prev, keys)
	}
	return prev
}

// TierFunc produces the builder for a small LSM tier run of a family:
// keys is the run about to be indexed — typically one flushed delta or
// a minor merge of a few deltas, so orders of magnitude smaller than
// the shard base. The hook lets a family serve small runs with a cheap
// low-tier index (plain binary search, a coarse PGM) instead of paying
// its full per-base tuning cost on every flush. The returned id is the
// catalog ID of the entry that built the index — the family the
// builder actually belongs to, not necessarily the shard's family — so
// a persisted run can name the exact entry that rebuilds it.
type TierFunc func(keys []core.Key) (nb NamedBuilder, id string)

var tiers = map[string]TierFunc{}

// RegisterTier adds a family's tier-run builder hook. Like Register,
// it panics on nil hooks and duplicate registrations.
func RegisterTier(family string, fn TierFunc) {
	if fn == nil {
		panic(fmt.Sprintf("registry: nil tier hook for family %q", family))
	}
	if _, dup := tiers[family]; dup {
		panic(fmt.Sprintf("registry: duplicate tier hook for family %q", family))
	}
	tiers[family] = fn
}

// HasTier reports whether a family registered a tier-run builder hook.
func HasTier(family string) bool {
	_, ok := tiers[family]
	return ok
}

// TierBuilder returns the builder for indexing a small tier run of
// keys, plus its catalog ID for persistence: the family's tier hook
// when registered, otherwise the zero-cost binary-search fallback
// (families without a hook — and custom builders outside the catalog —
// never pay index construction on a flush).
func TierBuilder(family string, keys []core.Key) (NamedBuilder, string) {
	if fn, ok := tiers[family]; ok {
		return fn(keys)
	}
	return binarySearchTier(), "BS"
}

// binarySearchTier is the universal tier fallback: a no-build index
// whose every bound is the full array, resolved by the last-mile
// search. Registered by the families package as the "BS" catalog entry;
// kept behind a function hook here so registry carries no structure
// dependencies.
var binarySearchTier = func() NamedBuilder {
	panic("registry: tier fallback not wired (families package not linked)")
}

// SetTierFallback wires the binary-search tier fallback; called once at
// init by the families catalog.
func SetTierFallback(fn func() NamedBuilder) { binarySearchTier = fn }

// ParetoFamilies is the structure set of Figure 7.
var ParetoFamilies = []string{"RMI", "PGM", "RS", "RBS", "ART", "BTree", "IBTree", "FAST"}

// StringFamilies is the structure set of Figure 8.
var StringFamilies = []string{"FST", "Wormhole", "RMI", "BTree"}

// Table2Families is the structure set of Table 2.
var Table2Families = []string{"PGM", "RS", "RMI", "BTree", "IBTree", "FAST", "BS", "CuckooMap", "RobinHash"}

// Fig12Families is the structure set of Figure 12.
var Fig12Families = []string{"RMI", "PGM", "RS", "BTree", "ART"}

// Fig16Families is the structure set of Figure 16.
var Fig16Families = []string{"RMI", "PGM", "RS", "RBS", "ART", "BTree", "IBTree", "FAST", "RobinHash"}

// ServeFamilies is the default family set of the sharded serving
// experiments: the three learned structures with a batched bound path
// plus the classic tree baseline.
var ServeFamilies = []string{"RMI", "PGM", "RS", "BTree"}

// WriteFamilies is the family set of the mixed read/write serving
// experiments: the learned structures (whose compactions re-tune and
// rebuild whole models) against the B-tree baseline (whose rebuild is
// a cheap bulk load).
var WriteFamilies = []string{"RMI", "PGM", "RS", "BTree"}
