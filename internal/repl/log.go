// Package repl is the replication subsystem: a primary tails each
// shard's committed write-ahead log plus its live appends and streams
// them to followers over the framed wire protocol; followers bootstrap
// from a shipped snapshot generation, replay the WAL tail into a
// read-only serve.Store, then apply the live stream; a range-aware
// router fans GetBatch across replicas as per-shard sub-batches,
// tracks per-replica lag, and on primary loss promotes the
// most-caught-up follower.
//
// Sequence numbers are per shard and per primary incarnation: a fresh
// primary draws a random epoch and numbers each shard's writes 1, 2,
// 3, … in the exact order they took effect (the hook runs under the
// shard's write lock). A follower's durable position is the
// (epoch, per-shard seq) vector in its REPLSTATE file, written only
// after its own WAL is synced — it may undercount what the store
// already holds, never overcount, so the re-streamed suffix replays
// convergently (last-write-wins ops are idempotent under in-order
// replay).
package repl

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"path/filepath"
	"sync"

	"repro/internal/persist"
)

// DefaultRingOps bounds one shard's in-memory stream ring. A follower
// that falls more than a ring behind is told to resync (bootstrap from
// a fresh snapshot) instead of the primary buffering unboundedly.
const DefaultRingOps = 1 << 16

// Log is the primary's stream source: one in-memory op ring per shard,
// fed by the store's WriteHook, seeded from the committed WAL tail of
// an attached store. Appends assign the per-shard sequence numbers the
// whole subsystem is ordered by.
type Log struct {
	epoch   uint64
	ringCap int

	mu      sync.Mutex
	notifyC chan struct{} // non-nil only while a streamer waits
	shards  []logShard
}

// logShard is one shard's ring: ops[k] carries sequence base+k+1, so
// base is the seq of the last evicted (or zero) record and base+len
// the last assigned.
type logShard struct {
	base uint64
	ops  []persist.Op
}

// NewLog creates a stream log for a store with the given shard count,
// under a fresh random epoch (a primary incarnation identity: a
// follower subscribed under another epoch must resync).
func NewLog(shards int) *Log {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("repl: no entropy for epoch: " + err.Error())
	}
	e := binary.LittleEndian.Uint64(b[:])
	if e == 0 {
		e = 1
	}
	return &Log{epoch: e, ringCap: DefaultRingOps, shards: make([]logShard, shards)}
}

// Epoch is this primary incarnation's identity.
func (l *Log) Epoch() uint64 { return l.epoch }

// NumShards reports the per-shard ring count.
func (l *Log) NumShards() int { return len(l.shards) }

// Hook adapts the log to serve.Config.WriteHook: every write the store
// applies is appended to its shard's ring in apply order.
func (l *Log) Hook() func(shard int, op persist.Op) {
	return func(shard int, op persist.Op) { l.Append(shard, op) }
}

// Append assigns the next sequence number of shard's stream to op and
// returns it, waking any waiting streamer.
func (l *Log) Append(shard int, op persist.Op) uint64 {
	l.mu.Lock()
	s := &l.shards[shard]
	s.ops = append(s.ops, op)
	if len(s.ops) > l.ringCap {
		drop := len(s.ops) - l.ringCap
		s.base += uint64(drop)
		s.ops = append(s.ops[:0:0], s.ops[drop:]...)
	}
	seq := s.base + uint64(len(s.ops))
	ch := l.notifyC
	l.notifyC = nil
	l.mu.Unlock()
	if ch != nil {
		close(ch)
	}
	return seq
}

// SeedFromDir preloads the rings with each shard's committed WAL tail
// — the pending writes a snapshot directory carries past its run
// files. Call once, before any Append, on a primary opened from disk:
// the seeded ops take seqs 1..n exactly as the attached store replays
// them, so a snapshot captured later agrees with the ring.
func (l *Log) SeedFromDir(dir string) error {
	m, err := persist.ReadManifest(filepath.Join(dir, persist.ManifestName))
	if err != nil {
		return err
	}
	if len(m.Shards) != len(l.shards) {
		return fmt.Errorf("repl: manifest has %d shards, log has %d", len(m.Shards), len(l.shards))
	}
	for i, sm := range m.Shards {
		ops, err := persist.TailWAL(filepath.Join(dir, sm.WAL), 0)
		if err != nil {
			return err
		}
		l.shards[i].ops = append(l.shards[i].ops, ops...)
	}
	return nil
}

// Seqs snapshots the last assigned sequence number per shard.
func (l *Log) Seqs() []uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]uint64, len(l.shards))
	for i := range l.shards {
		out[i] = l.shards[i].base + uint64(len(l.shards[i].ops))
	}
	return out
}

// SeqOf reports shard's last assigned sequence number. Safe to call
// from a SnapshotWith capture callback: the callback holds the shard's
// write lock, so the value is exactly the stream position the captured
// state corresponds to.
func (l *Log) SeqOf(shard int) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := &l.shards[shard]
	return s.base + uint64(len(s.ops))
}

// TailFrom copies out shard's ops with sequence numbers in
// (from, from+maxOps]. ok=false means from precedes the ring (the ops
// were evicted): the subscriber must resync from a snapshot.
func (l *Log) TailFrom(shard int, from uint64, maxOps int) (ops []persist.Op, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := &l.shards[shard]
	if from < s.base {
		return nil, false
	}
	start := int(from - s.base)
	if start >= len(s.ops) {
		return nil, true
	}
	end := len(s.ops)
	if maxOps > 0 && end-start > maxOps {
		end = start + maxOps
	}
	return append([]persist.Op(nil), s.ops[start:end]...), true
}

// Updated returns a channel closed by the next Append — the streamer's
// wait point between drained tails.
func (l *Log) Updated() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.notifyC == nil {
		l.notifyC = make(chan struct{})
	}
	return l.notifyC
}
