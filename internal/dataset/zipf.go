package dataset

// Workload generators for the mixed read/write serving experiments:
// zipfian (YCSB-style skewed) lookup streams and fresh-key insert
// streams. Like every generator in this package they are deterministic
// in their seed.

import (
	"math"

	"repro/internal/core"
)

// ZipfLookups samples m lookup keys from keys under a scrambled
// zipfian rank distribution with parameter theta (YCSB's default is
// 0.99): a small set of hot keys receives most lookups, with the hot
// ranks scattered across the key space by a hash so skew does not
// collapse onto one shard of a range-partitioned store. theta must be
// in (0, 1); theta <= 0 degrades to the uniform distribution.
func ZipfLookups(keys []core.Key, m int, theta float64, seed uint64) []core.Key {
	r := newRNG(seed ^ 0x21BF)
	out := make([]core.Key, m)
	if theta <= 0 || len(keys) < 2 {
		for i := range out {
			out[i] = keys[r.intn(len(keys))]
		}
		return out
	}
	z := newZipf(len(keys), theta, r)
	for i := range out {
		out[i] = keys[z.next()]
	}
	return out
}

// zipf draws zipfian ranks in [0, n) via the Gray et al. analytic
// transform (the YCSB core generator), then scrambles each rank with a
// stateless hash so rank 0 (the hottest key) lands at a pseudo-random
// position rather than the smallest key.
type zipf struct {
	r        *rng
	n        int
	theta    float64
	alpha    float64
	zetan    float64
	eta      float64
	scramble uint64
}

func newZipf(n int, theta float64, r *rng) *zipf {
	z := &zipf{r: r, n: n, theta: theta, scramble: r.next()}
	for i := 1; i <= n; i++ {
		z.zetan += 1 / math.Pow(float64(i), theta)
	}
	z.alpha = 1 / (1 - theta)
	zeta2 := 1 + math.Pow(0.5, theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	return z
}

func (z *zipf) next() int {
	u := z.r.float64()
	uz := u * z.zetan
	var rank int
	switch {
	case uz < 1:
		rank = 0
	case uz < 1+math.Pow(0.5, z.theta):
		rank = 1
	default:
		rank = int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	}
	if rank >= z.n {
		rank = z.n - 1
	}
	return int(mix64(uint64(rank)^z.scramble) % uint64(z.n))
}

// mix64 is the splitmix64 finalizer, used as a stateless hash.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// InsertKeys returns m keys absent from keys (and distinct from each
// other), drawn uniformly from the gaps between consecutive keys — the
// insert stream of the mixed-workload experiments. keys must be sorted
// and must have gaps (every benchmark dataset does).
func InsertKeys(keys []core.Key, m int, seed uint64) []core.Key {
	r := newRNG(seed ^ 0x1453)
	seen := make(map[core.Key]struct{}, m+m/8)
	out := make([]core.Key, 0, m)
	for len(out) < m {
		i := r.intn(len(keys))
		var gap uint64
		if i+1 < len(keys) {
			gap = keys[i+1] - keys[i]
		} else {
			gap = 1 << 16 // past the max key: open-ended gap
		}
		if gap < 2 {
			continue
		}
		k := keys[i] + 1 + r.next()%(gap-1)
		if k < keys[i] {
			continue // wrapped past the top of the key space
		}
		if _, dup := seen[k]; dup {
			continue
		}
		if pos := core.LowerBound(keys, k); pos < len(keys) && keys[pos] == k {
			continue // only possible in the open-ended last gap
		}
		seen[k] = struct{}{}
		out = append(out, k)
	}
	return out
}
