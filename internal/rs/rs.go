// Package rs implements the RadixSpline index of Kipf et al.
// (Section 3.2 of the paper): a one-pass greedy linear spline over the
// CDF plus a radix table indexing r-bit prefixes of the spline points.
//
// Lookups extract the key's r-bit prefix, use the radix table to narrow
// the spline-point search, binary search the narrowed range for the
// spline segment containing the key, then linearly interpolate between
// the two surrounding spline points to estimate the position. The
// spline fitting guarantees a user-defined error bound.
package rs

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/core"
)

// Point is a spline point: an actual (key, lower-bound rank) pair from
// the data; the spline is the polyline through consecutive points.
type Point struct {
	Key core.Key
	Pos int32
}

const pointSizeBytes = 8 + 4

// Config holds the two RadixSpline hyperparameters; the paper notes RS
// is easy to tune precisely because these are the only knobs.
type Config struct {
	// SplineErr is the maximum spline interpolation error in positions.
	SplineErr int
	// RadixBits is the number of key-prefix bits indexed by the radix
	// table (table size is 2^RadixBits + 1 offsets).
	RadixBits int
}

// String implements fmt.Stringer.
func (c Config) String() string { return fmt.Sprintf("rs[eps=%d,r=%d]", c.SplineErr, c.RadixBits) }

// Builder builds RadixSpline indexes with a fixed configuration.
type Builder struct {
	Config Config
}

// Name implements core.Builder.
func (b Builder) Name() string { return "RS" }

// Build implements core.Builder.
func (b Builder) Build(keys []core.Key) (core.Index, error) {
	return New(keys, b.Config)
}

// Index is a built RadixSpline.
type Index struct {
	cfg    Config
	n      int
	minKey core.Key
	shift  uint
	radix  []int32 // 2^r+1 offsets into points
	points []Point
	// Verified global search margins (spline error plus absent-key and
	// duplicate-run slack; see computeMargins).
	errLo, errHi int
}

// New builds a RadixSpline over sorted keys.
func New(keys []core.Key, cfg Config) (*Index, error) {
	n := len(keys)
	if n == 0 {
		return nil, errors.New("rs: empty key set")
	}
	if cfg.SplineErr < 1 {
		cfg.SplineErr = 1
	}
	if cfg.RadixBits < 1 {
		cfg.RadixBits = 1
	}
	if cfg.RadixBits > 28 {
		cfg.RadixBits = 28
	}
	idx := &Index{cfg: cfg, n: n, minKey: keys[0]}
	idx.points = fitSpline(keys, cfg.SplineErr)

	// Radix table over the key range: prefix(x) = (x-minKey)>>shift.
	span := keys[n-1] - keys[0]
	spanBits := bits.Len64(span)
	if spanBits > cfg.RadixBits {
		idx.shift = uint(spanBits - cfg.RadixBits)
	}
	tableSize := 1<<cfg.RadixBits + 1
	idx.radix = make([]int32, tableSize)
	// radix[p] = first spline point whose prefix is >= p.
	pi := 0
	for p := 0; p < tableSize; p++ {
		for pi < len(idx.points) && idx.prefix(idx.points[pi].Key) < uint64(p) {
			pi++
		}
		idx.radix[p] = int32(pi)
	}
	idx.errLo, idx.errHi = computeMargins(keys, idx)
	return idx, nil
}

// prefix extracts the radix-table bucket of a key, clamped to the
// table range.
func (idx *Index) prefix(x core.Key) uint64 {
	if x <= idx.minKey {
		return 0
	}
	p := (x - idx.minKey) >> idx.shift
	max := uint64(1)<<idx.cfg.RadixBits - 1
	if p > max {
		p = max
	}
	return p
}

// fitSpline runs the one-pass greedy spline corridor over the distinct
// (key, lower-bound rank) points. Every distinct data point is within
// eps of the resulting polyline.
//
// The corridor invariant: any line through the current base with slope
// in [slopeLo, slopeHi] passes within eps of every point accepted so
// far. A candidate point is accepted iff the chord base→candidate lies
// inside the corridor (so the eventual spline segment, which IS that
// chord, honours every accepted point); the corridor then narrows with
// the candidate's own eps window.
func fitSpline(keys []core.Key, eps int) []Point {
	n := len(keys)
	feps := float64(eps)
	pts := []Point{{Key: keys[0], Pos: 0}}
	baseX, baseY := float64(keys[0]), 0.0
	slopeLo, slopeHi := math.Inf(-1), math.Inf(1)
	prevKey, prevPos := keys[0], int32(0)
	havePrev := false

	rebase := func(k core.Key, pos int32) {
		pts = append(pts, Point{Key: k, Pos: pos})
		baseX, baseY = float64(k), float64(pos)
		slopeLo, slopeHi = math.Inf(-1), math.Inf(1)
	}

	for i := 1; i < n; i++ {
		if keys[i] == keys[i-1] {
			continue // duplicates are represented by their first occurrence
		}
		x, y := float64(keys[i]), float64(i)
		gap := x - baseX
		if gap <= 0 {
			// Distinct uint64 collapsing to one float64: absorb while
			// the vertical error stays within eps, else cut at the
			// current point itself.
			if y-baseY <= feps {
				prevKey, prevPos, havePrev = keys[i], int32(i), true
				continue
			}
			rebase(keys[i], int32(i))
			prevKey, prevPos, havePrev = keys[i], int32(i), true
			continue
		}
		chord := (y - baseY) / gap
		if chord < slopeLo || chord > slopeHi {
			// The chord would violate an earlier point: emit the
			// previous point as a spline point and restart from it.
			if havePrev && prevKey != pts[len(pts)-1].Key {
				rebase(prevKey, prevPos)
				gap = x - baseX
				if gap <= 0 {
					prevKey, prevPos, havePrev = keys[i], int32(i), true
					continue
				}
			} else {
				rebase(keys[i], int32(i))
				prevKey, prevPos, havePrev = keys[i], int32(i), true
				continue
			}
		}
		// Narrow the corridor with the candidate's eps window.
		if lo := (y - feps - baseY) / gap; lo > slopeLo {
			slopeLo = lo
		}
		if hi := (y + feps - baseY) / gap; hi < slopeHi {
			slopeHi = hi
		}
		prevKey, prevPos, havePrev = keys[i], int32(i), true
	}
	if havePrev && pts[len(pts)-1].Key != prevKey {
		pts = append(pts, Point{Key: prevKey, Pos: prevPos})
	}
	return pts
}

// interpolate evaluates the spline at x: the polyline through points
// seg and seg+1. The result is clamped into the segment's rank range.
func (idx *Index) interpolate(seg int, x core.Key) int {
	p0 := idx.points[seg]
	if seg+1 >= len(idx.points) {
		return int(p0.Pos)
	}
	p1 := idx.points[seg+1]
	if x <= p0.Key {
		return int(p0.Pos)
	}
	if x >= p1.Key {
		return int(p1.Pos)
	}
	frac := float64(x-p0.Key) / float64(p1.Key-p0.Key)
	p := float64(p0.Pos) + frac*float64(p1.Pos-p0.Pos)
	return int(math.Round(p))
}

// pointSearch returns the predecessor spline point for x in
// points[lo:hi]: one below the first point whose Key exceeds x
// (clamped at 0). A power-of-two reduction step followed by a halving
// ladder. The comparisons stay branches on purpose: a lone lookup's
// spline-point loads can miss cache, and branch speculation runs those
// misses ahead — a mask/CMOV form chains them serially (measured
// slower per scalar lookup). The batch path uses pointSearchBL, where
// independent neighbours provide the overlap.
func pointSearch(points []Point, x core.Key, lo, hi int) int {
	width := hi - lo
	if width > 0 {
		w := 1 << (bits.Len(uint(width)) - 1)
		if w != width {
			if points[lo+width-w].Key <= x {
				lo += width - w
			}
		}
		for w > 1 {
			half := w >> 1
			if points[lo+half-1].Key <= x {
				lo += half
			}
			w = half
		}
		if points[lo].Key <= x {
			lo++
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// pointSearchBL is pointSearch with every comparison materialized by
// SETcc and folded in with mask arithmetic — no data-dependent
// branches. Used by LookupBatch's evaluation pass, whose iterations
// are independent across keys: out-of-order execution overlaps their
// loads, and removing the mispredict flushes is pure win there.
func pointSearchBL(points []Point, x core.Key, lo, hi int) int {
	width := hi - lo
	if width > 0 {
		w := 1 << (bits.Len(uint(width)) - 1)
		if w != width {
			c := 0
			if points[lo+width-w].Key <= x {
				c = 1
			}
			lo += (width - w) & -c
		}
		for w > 1 {
			half := w >> 1
			c := 0
			if points[lo+half-1].Key <= x {
				c = 1
			}
			lo += half & -c
			w = half
		}
		c := 0
		if points[lo].Key <= x {
			c = 1
		}
		lo += c
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// segmentFor locates the spline segment containing x: the rightmost
// point with Key <= x, restricted to the radix-table window.
func (idx *Index) segmentFor(x core.Key) int {
	p := idx.prefix(x)
	lo, hi := int(idx.radix[p]), int(idx.radix[p+1])
	// The window bounds points with prefix exactly p; the containing
	// segment can start one point earlier.
	if lo > 0 {
		lo--
	}
	if hi > len(idx.points) {
		hi = len(idx.points)
	}
	return pointSearch(idx.points, x, lo, hi)
}

// Lookup implements core.Index.
func (idx *Index) Lookup(key core.Key) core.Bound {
	seg := idx.segmentFor(key)
	pos := idx.interpolate(seg, key)
	return core.BoundAround(pos, idx.errLo, idx.errHi, idx.n)
}

// batchChunk is the LookupBatch processing granularity: the per-chunk
// window scratch lives on the stack and a chunk's keys stay in L1
// between the two passes.
const batchChunk = 64

// LookupBatch implements core.BatchIndex in two passes per chunk:
// pass 1 computes every key's radix-table window (the table loads of
// different keys are independent, so their misses overlap); pass 2
// runs the branchless spline-point search and interpolation over the
// prefetched windows. Bounds are identical to Lookup's.
func (idx *Index) LookupBatch(keys []core.Key, out []core.Bound) {
	errLo, errHi, n := idx.errLo, idx.errHi, idx.n
	npts := len(idx.points)
	var wlo, whi [batchChunk]int32
	for off := 0; off < len(keys); off += batchChunk {
		end := off + batchChunk
		if end > len(keys) {
			end = len(keys)
		}
		chunk := keys[off:end]
		outc := out[off:end]
		for i, x := range chunk {
			p := idx.prefix(x)
			lo, hi := int(idx.radix[p]), int(idx.radix[p+1])
			if lo > 0 {
				lo--
			}
			if hi > npts {
				hi = npts
			}
			wlo[i], whi[i] = int32(lo), int32(hi)
		}
		for i, x := range chunk {
			seg := pointSearchBL(idx.points, x, int(wlo[i]), int(whi[i]))
			pos := idx.interpolate(seg, x)
			outc[i] = core.BoundAround(pos, errLo, errHi, n)
		}
	}
}

// computeMargins verifies the spline against every distinct key and
// the gaps between them, returning global search margins valid for
// arbitrary lower-bound queries (see the analogous reasoning in
// package pgm).
func computeMargins(keys []core.Key, idx *Index) (errLo, errHi int) {
	errLo, errHi = idx.cfg.SplineErr+1, idx.cfg.SplineErr+1
	n := len(keys)
	for i := 0; i < n; {
		k := keys[i]
		j := i
		for j+1 < n && keys[j+1] == k {
			j++
		}
		nr := j + 1
		seg := idx.segmentFor(k)
		pred := idx.interpolate(seg, k)
		if need := pred - i + 1; need > errLo {
			errLo = need
		}
		if need := nr - pred + 1; need > errHi {
			errHi = need
		}
		if j+1 < n {
			segG := idx.segmentFor(keys[j+1])
			predG := idx.interpolate(segG, keys[j+1])
			if need := predG - nr + 1; need > errLo {
				errLo = need
			}
		}
		i = j + 1
	}
	return errLo, errHi
}

// SizeBytes implements core.Index.
func (idx *Index) SizeBytes() int {
	return len(idx.radix)*4 + len(idx.points)*pointSizeBytes
}

// Name implements core.Index.
func (idx *Index) Name() string { return "RS" }

// NumPoints reports the spline point count.
func (idx *Index) NumPoints() int { return len(idx.points) }

// AvgLog2Error returns log2 of the (global) bound width, the paper's
// log2-error metric.
func (idx *Index) AvgLog2Error() float64 {
	return math.Log2(float64(idx.errLo+idx.errHi+1) + 1)
}

// ConfigUsed returns the configuration the index was built with.
func (idx *Index) ConfigUsed() Config { return idx.cfg }

// Explanation records the lookup path internals for the performance-
// counter simulation.
type Explanation struct {
	Bucket       uint64 // radix-table bucket probed
	WinLo, WinHi int    // spline-point binary-search window
	Seg          int    // spline segment selected
	Pos          int    // interpolated position
	Bound        core.Bound
}

// Explain follows exactly the Lookup code path and reports each step.
func (idx *Index) Explain(key core.Key) Explanation {
	p := idx.prefix(key)
	lo, hi := int(idx.radix[p]), int(idx.radix[p+1])
	if lo > 0 {
		lo--
	}
	if hi > len(idx.points) {
		hi = len(idx.points)
	}
	seg := idx.segmentFor(key)
	pos := idx.interpolate(seg, key)
	return Explanation{
		Bucket: p,
		WinLo:  lo,
		WinHi:  hi,
		Seg:    seg,
		Pos:    pos,
		Bound:  core.BoundAround(pos, idx.errLo, idx.errHi, idx.n),
	}
}
