package bench

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/registry"
	"repro/internal/search"
)

// tiny keeps harness tests fast; the real experiments scale via
// Options and the CLI.
var tiny = Options{N: 4000, Lookups: 400, Seed: 7}

func TestEnvChecksum(t *testing.T) {
	e, err := NewEnv(dataset.Amzn, 2000, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := e.Checksum()
	idx := mustBS(e)
	m := MeasureWarm(e, idx, search.BinarySearch)
	if m.Checksum != want {
		t.Fatalf("warm checksum %d != %d", m.Checksum, want)
	}
	cold := MeasureCold(e, idx, search.BinarySearch, 50)
	_ = cold // cold measures a prefix of the workload; only validity of run matters
	fenced := MeasureFenced(e, idx, search.BinarySearch)
	if fenced.NsPerLookup <= 0 {
		t.Fatal("fenced measurement empty")
	}
}

func TestMeasureWarmAllFamilies(t *testing.T) {
	e, err := NewEnv(dataset.Wiki, 3000, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := e.Checksum()
	families := append(append([]string{}, registry.ParetoFamilies...), "FST", "Wormhole", "RobinHash", "CuckooMap", "BS")
	for _, family := range families {
		sweep := registry.Sweep(family, e.Keys)
		if len(sweep) == 0 {
			t.Fatalf("no sweep for %s", family)
		}
		nb := sweep[len(sweep)/2]
		idx, err := nb.Builder.Build(e.Keys)
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		m := MeasureWarm(e, idx, search.BinarySearch)
		if m.Checksum != want {
			t.Fatalf("%s: checksum %d != %d (wrong lookup results)", family, m.Checksum, want)
		}
		if m.NsPerLookup <= 0 {
			t.Fatalf("%s: non-positive latency", family)
		}
	}
}

func TestThroughputScalesOrRuns(t *testing.T) {
	e, err := NewEnv(dataset.Amzn, 5000, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	idx := midVariant(e, "RMI")
	if idx == nil {
		t.Fatal("no RMI variant")
	}
	t1 := MeasureThroughput(e, idx, search.BinarySearch, 1, false)
	tn := MeasureThroughput(e, idx, search.BinarySearch, 4, false)
	if t1 <= 0 || tn <= 0 {
		t.Fatal("non-positive throughput")
	}
}

func TestBestVariant(t *testing.T) {
	e, err := NewEnv(dataset.Amzn, 3000, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Scoring by size must pick the smallest configuration.
	nb, idx, best := BestVariant(e, "PGM", func(e *Env, idx core.Index) float64 {
		return float64(idx.SizeBytes())
	})
	if idx == nil || nb.Label == "" {
		t.Fatal("no variant selected")
	}
	for _, other := range registry.Sweep("PGM", e.Keys) {
		oi, err := other.Builder.Build(e.Keys)
		if err != nil {
			t.Fatal(err)
		}
		if float64(oi.SizeBytes()) < best {
			t.Fatalf("variant %s (%d B) smaller than selected best (%f)",
				other.Label, oi.SizeBytes(), best)
		}
	}
}

func TestExperimentSmoke(t *testing.T) {
	var out strings.Builder
	for _, name := range []string{"table1", "fig6", "table2", "fig13"} {
		out.WriteString(renderCatalog(t, name, tiny))
	}
	for _, want := range []string{"Wormhole", "cdf", "fastest variant", "log2err"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q in experiment output", want)
		}
	}
}

func TestCollectCounters(t *testing.T) {
	rows, err := CollectCounters(Options{N: 3000, Lookups: 300, Seed: 1}, dataset.Amzn, []string{"RMI", "BTree"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 10 {
		t.Fatalf("only %d counter rows", len(rows))
	}
	for _, r := range rows {
		if r.NsPerLookup <= 0 || r.Instructions <= 0 {
			t.Fatalf("empty counters: %+v", r)
		}
	}
}

func TestSweepSpansSizes(t *testing.T) {
	e, err := NewEnv(dataset.OSM, 20000, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, family := range registry.ParetoFamilies {
		sweep := registry.Sweep(family, e.Keys)
		first, err := sweep[0].Builder.Build(e.Keys)
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		last, err := sweep[len(sweep)-1].Builder.Build(e.Keys)
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		if first.SizeBytes() >= last.SizeBytes() {
			t.Errorf("%s: sweep not ordered small->large (%d >= %d)",
				family, first.SizeBytes(), last.SizeBytes())
		}
	}
}

func TestMaxThreads(t *testing.T) {
	ts := MaxThreads()
	if len(ts) == 0 || ts[0] != 1 {
		t.Fatalf("MaxThreads = %v", ts)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatalf("not increasing: %v", ts)
		}
	}
}
