package btree

// Binary codec for the B+tree index adapter. Unlike the learned
// families there are no trained parameters to preserve: the tree's
// entire state is its (subset key, data position) entries, so Encode
// walks the leaf chain and Decode bulk-loads a fresh tree from the
// entries — a single linear pass, not a retrain (the subset-stride
// selection, the only data-dependent choice, is preserved verbatim).
// Little-endian via binio; framing and checksums live in persist.

import (
	"repro/internal/binio"
	"repro/internal/core"
)

const entryWireBytes = 8 + 4

// Encode writes the index (tree entries plus the adapter's stride
// metadata) to w.
func (idx *Index) Encode(w *binio.Writer) error {
	w.U64(uint64(idx.n))
	w.U32(uint32(idx.stride))
	interp := uint8(0)
	if idx.name == "IBTree" {
		interp = 1
	}
	w.U8(interp)
	w.U32(uint32(idx.tree.Count()))
	nd := idx.tree.root
	for !nd.isLeaf() {
		nd = nd.children[0]
	}
	for ; nd != nil; nd = nd.next {
		for i := range nd.keys {
			w.U64(uint64(nd.keys[i]))
			w.U32(uint32(nd.vals[i]))
		}
	}
	return w.Err()
}

// Decode reconstructs the index from r by bulk-loading the entries.
// Entries must be sorted with positions inside [0, n): Lookup turns
// positions directly into search-bound endpoints.
func Decode(r *binio.Reader) (*Index, error) {
	n := r.U64()
	stride := int(r.U32())
	interp := r.U8()
	count := r.Count(entryWireBytes)
	if err := r.Err(); err != nil {
		return nil, err
	}
	const maxN = 1 << 48
	if n == 0 || n > maxN {
		return nil, binio.Corruptf("btree: implausible key count %d", n)
	}
	if stride < 1 || interp > 1 {
		return nil, binio.Corruptf("btree: stride %d, interp flag %d", stride, interp)
	}
	if count < 1 {
		return nil, binio.Corruptf("btree: no entries")
	}
	keys := make([]core.Key, count)
	vals := make([]int32, count)
	for i := 0; i < count; i++ {
		keys[i] = r.U64()
		vals[i] = int32(r.U32())
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	for i := 0; i < count; i++ {
		if i > 0 && keys[i] < keys[i-1] {
			return nil, binio.Corruptf("btree: entries out of order at %d", i)
		}
		if vals[i] < 0 || uint64(vals[i]) >= n {
			return nil, binio.Corruptf("btree: entry %d position %d outside data [0,%d)", i, vals[i], n)
		}
	}
	t, err := NewTree(keys, vals, interp == 1)
	if err != nil {
		return nil, binio.Corruptf("btree: %v", err)
	}
	name := "BTree"
	if interp == 1 {
		name = "IBTree"
	}
	return &Index{tree: t, n: int(n), stride: stride, name: name}, nil
}
