// Package ibtree exposes the interpolating B-Tree baseline (Graefe's
// IBTree, Section 4.1.1 of the paper): a B+tree whose in-node search
// interpolates between the node's endpoint keys instead of binary
// searching. It shares its implementation with package btree, differing
// only in the in-node search strategy.
package ibtree

import (
	"repro/internal/btree"
	"repro/internal/core"
)

// Builder builds interpolating B+tree indexes with a fixed stride.
type Builder struct {
	// Stride inserts every Stride-th key (the paper's subset-insertion
	// size knob).
	Stride int
}

// Name implements core.Builder.
func (b Builder) Name() string { return "IBTree" }

// Build implements core.Builder.
func (b Builder) Build(keys []core.Key) (core.Index, error) {
	return btree.Builder{Stride: b.Stride, Interpolate: true}.Build(keys)
}
