package stats

// Latency histogram for the tail-latency experiments: a fixed-size
// log-linear (HDR-style) histogram over non-negative int64 values
// (nanoseconds in practice) with bounded relative error, lock-free
// concurrent recording, and cheap merging — the per-worker recording
// structure of the load generators in internal/load. See DESIGN.md
// "Measurement".

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

const (
	// histSubBits sets the histogram resolution: each power-of-two
	// major bucket is split into 2^histSubBits linear sub-buckets.
	histSubBits  = 5
	histSubCount = 1 << histSubBits // sub-buckets per major bucket

	// histBuckets covers every non-negative int64 exactly: values
	// below 2*histSubCount map one-to-one, and each further power of
	// two up to bit 62 adds histSubCount sub-buckets (the largest
	// shift bucketIdx can produce is 62-histSubBits).
	histBuckets = (62-histSubBits)*histSubCount + 2*histSubCount
)

// HistMaxRelError is the worst-case relative error of any value
// reported by Histogram.Quantile: a recorded value v is returned as
// the midpoint of a bucket no wider than v/2^histSubBits, so the
// midpoint is within v/2^(histSubBits+1) = v/64 ≈ 1.6% of v. Values
// below 2*histSubCount (64 ns at nanosecond resolution) are exact.
const HistMaxRelError = 1.0 / (2 * histSubCount)

// Histogram is a fixed-bucket log-linear histogram of non-negative
// int64 samples. All methods are safe for concurrent use: Record is a
// single atomic add per sample (plus a CAS loop when the running max
// advances), so any number of goroutines may record into one Histogram
// — or, cheaper, record into per-worker Histograms merged at the end —
// while readers take snapshots and quantiles mid-run.
//
// Concurrent reads are per-counter consistent, not point-in-time
// consistent: a snapshot taken while writers are active may split a
// logically simultaneous pair of samples. Quantiles over such a
// snapshot are still valid for the samples it did capture.
//
// The zero value is ready to use.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

// bucketIdx maps a sample to its bucket. Values in [0, 2*histSubCount)
// map one-to-one; a larger value with highest set bit h keeps
// histSubBits bits of precision below that bit.
func bucketIdx(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < 2*histSubCount {
		return int(u)
	}
	shift := uint(bits.Len64(u) - histSubBits - 1)
	return int(shift)*histSubCount + int(u>>shift)
}

// bucketMid returns the midpoint of bucket idx — the value Quantile
// reports for samples that landed there.
func bucketMid(idx int) int64 {
	if idx < 2*histSubCount {
		return int64(idx)
	}
	shift := uint(idx/histSubCount - 1)
	low := int64(uint64(idx%histSubCount+histSubCount) << shift)
	width := int64(1) << shift
	return low + (width-1)/2
}

// Record adds one sample. Negative samples (possible from clock
// adjustments mid-measurement) are clamped to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIdx(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count reports the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Max reports the largest recorded sample, exactly (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Sum reports the exact sum of recorded samples — with Count, the
// _sum/_count pair of a Prometheus summary exposition.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean reports the exact mean of recorded samples (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Merge adds o's samples into h. It is safe while writers are still
// recording into either histogram (each counter transfers atomically);
// merging a histogram into itself is not supported.
func (h *Histogram) Merge(o *Histogram) {
	for i := range o.counts {
		if c := o.counts[i].Load(); c > 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	om := o.max.Load()
	for {
		cur := h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			return
		}
	}
}

// Snapshot returns an independent copy of the histogram's current
// contents, usable while writers continue to record into h.
func (h *Histogram) Snapshot() *Histogram {
	s := &Histogram{}
	s.Merge(h)
	return s
}

// Quantile returns the q-quantile (0 < q <= 1) of the recorded
// samples by exact counting: the value reported for the ceil(q*n)-th
// smallest sample. The result is the sample's bucket midpoint (clamped
// to the exact maximum, which a top bucket's midpoint could otherwise
// exceed) and so is within HistMaxRelError of the sample itself;
// q == 1 returns the exact maximum. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q >= 1 {
		return h.Max()
	}
	rank := uint64(q * float64(n))
	if float64(rank) < q*float64(n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			v := bucketMid(i)
			// The midpoint of the top occupied bucket can sit above the
			// exact max (a sample in the bucket's lower half); a quantile
			// must never exceed the recorded maximum.
			if m := h.Max(); v > m {
				v = m
			}
			return v
		}
	}
	// Writers racing between count and bucket loads can leave the sum
	// short of n; the max is the safe answer for the top rank.
	return h.Max()
}

// Quantiles is the tail-latency summary reported by every serving
// experiment.
type Quantiles struct {
	P50, P90, P99, P999, Max int64
}

// Summary extracts the standard quantile set in one pass-per-quantile.
func (h *Histogram) Summary() Quantiles {
	return Quantiles{
		P50:  h.Quantile(0.50),
		P90:  h.Quantile(0.90),
		P99:  h.Quantile(0.99),
		P999: h.Quantile(0.999),
		Max:  h.Max(),
	}
}

// String renders the summary compactly (values read as nanoseconds).
func (h *Histogram) String() string {
	s := h.Summary()
	return fmt.Sprintf("n=%d mean=%.0f p50=%d p90=%d p99=%d p99.9=%d max=%d",
		h.Count(), h.Mean(), s.P50, s.P90, s.P99, s.P999, s.Max)
}
