package search

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// BenchmarkLastMile times every last-mile search kind against bound
// widths spanning the paper's error-bound spectrum (1, 8, 64, 1k), on
// a 1M-key array so wide-bound probes actually miss cache. The batch
// rows drive the same workload through SearchBatch in 256-key batches
// — the pipelined path the table layer uses. Run by the bench-smoke CI
// job; compare kinds at fixed width to see the branchless and
// pipelining wins.
func BenchmarkLastMile(b *testing.B) {
	const n = 1 << 20
	const nq = 4096
	const batch = 256
	rng := rand.New(rand.NewSource(42))
	keys := make([]core.Key, n)
	acc := core.Key(0)
	for i := range keys {
		acc += core.Key(1 + rng.Intn(64))
		keys[i] = acc
	}
	qs := make([]core.Key, nq)
	lbs := make([]int, nq)
	for i := range qs {
		pos := rng.Intn(n)
		qs[i] = keys[pos]
		lbs[i] = core.LowerBound(keys, qs[i])
	}

	widths := []int{1, 8, 64, 1024}
	bounds := func(width int) []core.Bound {
		bs := make([]core.Bound, nq)
		for i, lb := range lbs {
			lo := lb - rng.Intn(width)
			if lo < 0 {
				lo = 0
			}
			hi := lo + width
			if hi > n {
				hi = n
			}
			if hi <= lb {
				hi = lb + 1
			}
			bs[i] = core.Bound{Lo: lo, Hi: hi}
		}
		return bs
	}

	kinds := []struct {
		name string
		fn   Fn
	}{
		{"binary", BinarySearch},
		{"branchless", BranchlessSearch},
		{"linear", LinearSearch},
		{"interpolation", InterpolationSearch},
	}
	for _, width := range widths {
		bs := bounds(width)
		for _, k := range kinds {
			b.Run(fmt.Sprintf("%s/w=%d", k.name, width), func(b *testing.B) {
				sink := 0
				for i := 0; i < b.N; i++ {
					q := i % nq
					sink += k.fn(keys, qs[q], bs[q])
				}
				sinkPos = sink
			})
		}
		// One op = one 256-key batch; ns/key makes it comparable to the
		// per-key scalar rows above.
		b.Run(fmt.Sprintf("batch/w=%d", width), func(b *testing.B) {
			scratch := make([]core.Bound, batch)
			pos := make([]int, batch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lo := (i * batch) % (nq - batch)
				copy(scratch, bs[lo:lo+batch])
				SearchBatch(keys, qs[lo:lo+batch], scratch, pos)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/batch, "ns/key")
			sinkPos = pos[0]
		})
	}
}

// sinkPos defeats dead-code elimination of the benchmarked searches.
var sinkPos int
