package serve

import (
	"sort"
	"testing"

	"repro/internal/core"
)

// TestScanAcrossShardBoundaries is the satellite coverage for the
// merged-scan path at shard split points: fresh keys are inserted into
// the uncompacted deltas on *both* sides of every shard edge and base
// keys adjacent to each edge (including the separator itself) are
// tombstoned, then Scan and Range are checked against a map oracle for
// windows straddling, starting at, and ending at each separator —
// before and after compaction.
func TestScanAcrossShardBoundaries(t *testing.T) {
	// Controlled key set: multiples of 10, so ±1 neighbors are free for
	// boundary-straddling inserts.
	const n = 400
	keys := make([]core.Key, n)
	payloads := make([]uint64, n)
	for i := range keys {
		keys[i] = core.Key(1000 + 10*i)
		payloads[i] = uint64(i) + 1
	}
	st, err := New(keys, payloads, Config{
		Shards: 4, Family: "BTree", CompactThreshold: -1, // keep deltas uncompacted
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.NumShards() < 4 {
		t.Fatalf("only %d shards", st.NumShards())
	}

	oracle := make(map[core.Key]uint64, n)
	for i, k := range keys {
		oracle[k] = payloads[i]
	}

	// Separators of shards 1..: the first key of each shard's base run.
	var seps []core.Key
	for i := 1; i < st.NumShards(); i++ {
		seps = append(seps, st.Shard(i).Keys()[0])
	}

	apply := func(put bool, k core.Key, v uint64) {
		if put {
			st.Put(k, v)
			oracle[k] = v
		} else {
			st.Delete(k)
			delete(oracle, k)
		}
	}
	for _, sep := range seps {
		apply(true, sep-1, uint64(sep))   // fresh key just below the edge (last key of the left shard's range)
		apply(true, sep+1, uint64(sep)+1) // fresh key just above the edge
		apply(false, sep, 0)              // tombstone the separator key itself
		apply(false, sep-10, 0)           // tombstone the last base key left of the edge
		apply(true, sep+10, 7777)         // update a base key right of the edge
	}
	if st.DeltaLen() == 0 {
		t.Fatal("deltas unexpectedly empty; boundary writes must be uncompacted")
	}

	check := func(stage string) {
		t.Helper()
		wantAll := make([]core.Key, 0, len(oracle))
		for k := range oracle {
			wantAll = append(wantAll, k)
		}
		sort.Slice(wantAll, func(i, j int) bool { return wantAll[i] < wantAll[j] })

		windows := [][2]core.Key{
			{0, ^core.Key(0)}, // everything
			{keys[0], keys[n-1] + 1},
		}
		for _, sep := range seps {
			windows = append(windows,
				[2]core.Key{sep - 15, sep + 15}, // straddles the edge
				[2]core.Key{sep, sep + 25},      // starts exactly at the separator
				[2]core.Key{sep - 25, sep},      // ends exactly at the separator
				[2]core.Key{sep - 1, sep + 2},   // just the straddling inserts (sep itself tombstoned)
				[2]core.Key{sep, sep},           // empty window at the edge
			)
		}
		for _, win := range windows {
			lo, hi := win[0], win[1]
			var wantK []core.Key
			var wantV []uint64
			for _, k := range wantAll {
				if k >= lo && k < hi {
					wantK = append(wantK, k)
					wantV = append(wantV, oracle[k])
				}
			}
			gotK, gotV := st.Range(lo, hi)
			if len(gotK) != len(wantK) {
				t.Fatalf("%s: Range(%d,%d) returned %d pairs, want %d", stage, lo, hi, len(gotK), len(wantK))
			}
			for i := range gotK {
				if gotK[i] != wantK[i] || gotV[i] != wantV[i] {
					t.Fatalf("%s: Range(%d,%d)[%d] = (%d,%d), want (%d,%d)",
						stage, lo, hi, i, gotK[i], gotV[i], wantK[i], wantV[i])
				}
			}
			// Scan must agree, visit in ascending order, and count visits.
			var scanned []core.Key
			prev := core.Key(0)
			cnt := st.Scan(lo, hi, func(k core.Key, v uint64) bool {
				if len(scanned) > 0 && k <= prev {
					t.Fatalf("%s: Scan(%d,%d) out of order: %d after %d", stage, lo, hi, k, prev)
				}
				prev = k
				scanned = append(scanned, k)
				return true
			})
			if cnt != len(wantK) || len(scanned) != len(wantK) {
				t.Fatalf("%s: Scan(%d,%d) visited %d (returned %d), want %d",
					stage, lo, hi, len(scanned), cnt, len(wantK))
			}
		}

		// Early stop mid-window across a boundary.
		if len(seps) > 0 && len(wantAll) > 3 {
			sep := seps[0]
			stopAfter := 3
			got := st.Scan(sep-15, ^core.Key(0), func(core.Key, uint64) bool {
				stopAfter--
				return stopAfter > 0
			})
			if got != 3 {
				t.Fatalf("%s: early-stopped Scan visited %d, want 3", stage, got)
			}
		}
	}

	check("uncompacted")
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if st.DeltaLen() != 0 {
		t.Fatalf("deltas remain after Compact: %d", st.DeltaLen())
	}
	check("compacted")

	// Len must agree with the oracle throughout.
	if st.Len() != len(oracle) {
		t.Fatalf("Len = %d, want %d", st.Len(), len(oracle))
	}
}

// TestScanBoundaryTombstoneShadowing pins the subtle case: a key
// tombstoned in the active delta of one shard while the *same window*
// spans a neighboring shard whose delta inserts it back-to-back — the
// merged stream must show exactly the live keys, once each.
func TestScanBoundaryTombstoneShadowing(t *testing.T) {
	const n = 100
	keys := make([]core.Key, n)
	payloads := make([]uint64, n)
	for i := range keys {
		keys[i] = core.Key(100 + 10*i)
		payloads[i] = uint64(i) + 1
	}
	st, err := New(keys, payloads, Config{Shards: 2, Family: "PGM", CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.NumShards() != 2 {
		t.Skipf("got %d shards, need 2", st.NumShards())
	}
	sep := st.Shard(1).Keys()[0]

	// Delete then re-insert the separator key (lands in shard 1's
	// delta twice, final state live with a new value), and tombstone
	// the key just left of the edge in shard 0's delta.
	st.Delete(sep)
	st.Put(sep, 424242)
	st.Delete(sep - 10)
	st.Put(sep-5, 99) // fresh key in shard 0's range, adjacent to the edge

	gotK, gotV := st.Range(sep-20, sep+11)
	wantK := []core.Key{sep - 20, sep - 5, sep, sep + 10}
	wantV := []uint64{0, 99, 424242, 0} // zeros filled from base below
	for i, k := range wantK {
		if wantV[i] == 0 {
			pos := core.LowerBound(keys, k)
			wantV[i] = payloads[pos]
		}
	}
	if len(gotK) != len(wantK) {
		t.Fatalf("Range returned %v, want keys %v", gotK, wantK)
	}
	for i := range wantK {
		if gotK[i] != wantK[i] || gotV[i] != wantV[i] {
			t.Fatalf("Range[%d] = (%d,%d), want (%d,%d)", i, gotK[i], gotV[i], wantK[i], wantV[i])
		}
	}
}
