// Package art implements the Adaptive Radix Tree of Leis et al.
// (ICDE'13; Section 4.1.1 of the paper) over fixed-length 8-byte
// big-endian keys, with the four adaptive node sizes (Node4, Node16,
// Node48, Node256) and path compression.
//
// The benchmark uses ART as an ordered index: Ceiling(x) finds the
// smallest stored key >= x by byte-wise traversal, which coincides
// with numeric order for big-endian encodings.
package art

import (
	"encoding/binary"
	"errors"

	"repro/internal/core"
)

const keyLen = 8

type nodeKind uint8

const (
	kindLeaf nodeKind = iota
	kind4
	kind16
	kind48
	kind256
)

// node is a tagged union over the ART node kinds. Leaves store the
// full key and its value; inner nodes store a compressed path prefix
// and children indexed by the next key byte.
type node struct {
	kind   nodeKind
	prefix []byte // compressed path (inner nodes)

	// Leaf payload.
	key core.Key
	val int32

	// Node4/Node16: sorted byte keys with parallel children.
	bytes    []byte
	children []*node

	// Node48: 256-entry indirection into up to 48 children.
	childIdx *[256]uint8 // 0 = empty, else children[childIdx[b]-1]

	// Node256 uses children[b] directly (len 256).

	id int32 // stable node number for the perf-counter simulation
}

func newLeaf(key core.Key, val int32) *node {
	return &node{kind: kindLeaf, key: key, val: val}
}

func keyBytes(key core.Key) [keyLen]byte {
	var b [keyLen]byte
	binary.BigEndian.PutUint64(b[:], key)
	return b
}

// Tree is an adaptive radix tree mapping uint64 keys to positions.
type Tree struct {
	root   *node
	count  int
	counts [5]int // node population per kind, for size accounting
	nextID int32
}

// stamp assigns a fresh id to a newly created node.
func (t *Tree) stamp(n *node) *node {
	n.id = t.nextID
	t.nextID++
	return n
}

// NewTree returns an empty tree.
func NewTree() *Tree { return &Tree{} }

// Count returns the number of stored keys.
func (t *Tree) Count() int { return t.count }

// Insert adds key -> val. Inserting an existing key overwrites its
// value.
func (t *Tree) Insert(key core.Key, val int32) {
	kb := keyBytes(key)
	if t.root == nil {
		t.root = t.stamp(newLeaf(key, val))
		t.counts[kindLeaf]++
		t.count++
		return
	}
	if t.insert(&t.root, kb[:], 0, key, val) {
		t.count++
	}
}

// insert descends to place the leaf; returns false when an existing
// key was overwritten.
func (t *Tree) insert(ref **node, kb []byte, depth int, key core.Key, val int32) bool {
	n := *ref
	if n.kind == kindLeaf {
		if n.key == key {
			n.val = val
			return false
		}
		// Split: create an inner node on the common prefix.
		ob := keyBytes(n.key)
		common := 0
		for depth+common < keyLen && ob[depth+common] == kb[depth+common] {
			common++
		}
		in := t.stamp(&node{kind: kind4, prefix: append([]byte(nil), kb[depth:depth+common]...)})
		t.counts[kind4]++
		nl := t.stamp(newLeaf(key, val))
		t.counts[kindLeaf]++
		in.addChild(ob[depth+common], n)
		in.addChild(kb[depth+common], nl)
		*ref = in
		return true
	}
	// Match the compressed path.
	p := n.prefix
	for i := 0; i < len(p); i++ {
		if kb[depth+i] != p[i] {
			// Prefix mismatch: split the path at i.
			in := t.stamp(&node{kind: kind4, prefix: append([]byte(nil), p[:i]...)})
			t.counts[kind4]++
			n.prefix = append([]byte(nil), p[i+1:]...)
			nl := t.stamp(newLeaf(key, val))
			t.counts[kindLeaf]++
			in.addChild(p[i], n)
			in.addChild(kb[depth+i], nl)
			*ref = in
			return true
		}
	}
	depth += len(p)
	b := kb[depth]
	if child := n.findChild(b); child != nil {
		return t.insert(child, kb, depth+1, key, val)
	}
	nl := t.stamp(newLeaf(key, val))
	t.counts[kindLeaf]++
	t.grow(ref)
	(*ref).addChild(b, nl)
	return true
}

// grow upgrades a full node to the next kind.
func (t *Tree) grow(ref **node) {
	n := *ref
	switch n.kind {
	case kind4:
		if len(n.bytes) < 4 {
			return
		}
		t.counts[kind4]--
		t.counts[kind16]++
		n.kind = kind16
	case kind16:
		if len(n.bytes) < 16 {
			return
		}
		t.counts[kind16]--
		t.counts[kind48]++
		nn := &node{kind: kind48, prefix: n.prefix, childIdx: new([256]uint8), id: n.id}
		nn.children = make([]*node, 0, 48)
		for i, b := range n.bytes {
			nn.children = append(nn.children, n.children[i])
			nn.childIdx[b] = uint8(len(nn.children))
		}
		*ref = nn
	case kind48:
		if len(n.children) < 48 {
			return
		}
		t.counts[kind48]--
		t.counts[kind256]++
		nn := &node{kind: kind256, prefix: n.prefix, children: make([]*node, 256), id: n.id}
		for b := 0; b < 256; b++ {
			if ci := n.childIdx[b]; ci != 0 {
				nn.children[b] = n.children[ci-1]
			}
		}
		*ref = nn
	}
}

// addChild inserts child under byte b, keeping Node4/16 sorted.
func (n *node) addChild(b byte, child *node) {
	switch n.kind {
	case kind4, kind16:
		i := 0
		for i < len(n.bytes) && n.bytes[i] < b {
			i++
		}
		n.bytes = append(n.bytes, 0)
		copy(n.bytes[i+1:], n.bytes[i:])
		n.bytes[i] = b
		n.children = append(n.children, nil)
		copy(n.children[i+1:], n.children[i:])
		n.children[i] = child
	case kind48:
		n.children = append(n.children, child)
		n.childIdx[b] = uint8(len(n.children))
	case kind256:
		n.children[b] = child
	}
}

// findChild returns a reference to the child for byte b, or nil.
func (n *node) findChild(b byte) **node {
	switch n.kind {
	case kind4, kind16:
		for i, nb := range n.bytes {
			if nb == b {
				return &n.children[i]
			}
			if nb > b {
				return nil
			}
		}
		return nil
	case kind48:
		if ci := n.childIdx[b]; ci != 0 {
			return &n.children[ci-1]
		}
		return nil
	case kind256:
		if n.children[b] != nil {
			return &n.children[b]
		}
		return nil
	}
	return nil
}

// childAtOrAfter returns the child with the smallest byte >= b, along
// with whether that byte equals b exactly.
func (n *node) childAtOrAfter(b byte) (child *node, exact bool) {
	switch n.kind {
	case kind4, kind16:
		for i, nb := range n.bytes {
			if nb >= b {
				return n.children[i], nb == b
			}
		}
		return nil, false
	case kind48:
		if ci := n.childIdx[b]; ci != 0 {
			return n.children[ci-1], true
		}
		for bb := int(b) + 1; bb < 256; bb++ {
			if ci := n.childIdx[bb]; ci != 0 {
				return n.children[ci-1], false
			}
		}
		return nil, false
	case kind256:
		if n.children[b] != nil {
			return n.children[b], true
		}
		for bb := int(b) + 1; bb < 256; bb++ {
			if n.children[bb] != nil {
				return n.children[bb], false
			}
		}
		return nil, false
	}
	return nil, false
}

// minLeaf returns the leftmost leaf of the subtree.
func minLeaf(n *node) *node {
	for n.kind != kindLeaf {
		switch n.kind {
		case kind4, kind16:
			n = n.children[0]
		case kind48:
			for b := 0; b < 256; b++ {
				if ci := n.childIdx[b]; ci != 0 {
					n = n.children[ci-1]
					break
				}
			}
		case kind256:
			for b := 0; b < 256; b++ {
				if n.children[b] != nil {
					n = n.children[b]
					break
				}
			}
		}
	}
	return n
}

// Ceiling returns the value of the smallest stored key >= x.
func (t *Tree) Ceiling(x core.Key) (key core.Key, val int32, found bool) {
	if t.root == nil {
		return 0, 0, false
	}
	kb := keyBytes(x)
	lf := ceiling(t.root, kb[:], 0)
	if lf == nil {
		return 0, 0, false
	}
	return lf.key, lf.val, true
}

// ceiling finds the smallest leaf with key >= kb within the subtree,
// assuming the subtree's path so far equals kb[:depth]. Returns nil
// when every key in the subtree is smaller.
func ceiling(n *node, kb []byte, depth int) *node {
	if n.kind == kindLeaf {
		ob := keyBytes(n.key)
		for i := depth; i < keyLen; i++ {
			if ob[i] > kb[i] {
				return n
			}
			if ob[i] < kb[i] {
				return nil
			}
		}
		return n // equal
	}
	// Compare the compressed path against the query.
	for i, pb := range n.prefix {
		if pb > kb[depth+i] {
			return minLeaf(n) // whole subtree is greater
		}
		if pb < kb[depth+i] {
			return nil // whole subtree is smaller
		}
	}
	depth += len(n.prefix)
	child, exact := n.childAtOrAfter(kb[depth])
	if child == nil {
		return nil
	}
	if exact {
		if lf := ceiling(child, kb, depth+1); lf != nil {
			return lf
		}
		// Everything under the exact child is smaller; take the next one.
		next, _ := n.childAtOrAfter(kb[depth] + 1)
		if kb[depth] == 0xFF || next == nil {
			return nil
		}
		return minLeaf(next)
	}
	return minLeaf(child)
}

// Node size accounting, approximating the C++ struct sizes.
const (
	leafBytes    = 16
	node4Bytes   = 16 + 4 + 4*8
	node16Bytes  = 16 + 16 + 16*8
	node48Bytes  = 16 + 256 + 48*8
	node256Bytes = 16 + 256*8
)

// SizeBytes estimates the tree footprint.
func (t *Tree) SizeBytes() int {
	return t.counts[kindLeaf]*leafBytes +
		t.counts[kind4]*node4Bytes +
		t.counts[kind16]*node16Bytes +
		t.counts[kind48]*node48Bytes +
		t.counts[kind256]*node256Bytes
}

// Index adapts Tree to core.Index with the subset-stride size knob.
type Index struct {
	tree   *Tree
	n      int
	stride int
	maxPos int32 // data position of the last subset key
}

// Builder builds ART indexes with a fixed stride.
type Builder struct {
	// Stride inserts every Stride-th key. Clamped to at least 1.
	Stride int
}

// Name implements core.Builder.
func (b Builder) Name() string { return "ART" }

// Build implements core.Builder.
func (b Builder) Build(keys []core.Key) (core.Index, error) {
	n := len(keys)
	if n == 0 {
		return nil, errors.New("art: empty key set")
	}
	stride := b.Stride
	if stride < 1 {
		stride = 1
	}
	t := NewTree()
	var maxPos int32
	for i := 0; i < n; i += stride {
		// ART stores unique keys; for duplicate data keys keep the
		// first (lower-bound) position. Sorted input makes duplicate
		// subset keys adjacent.
		if i > 0 && keys[i] == keys[i-stride] {
			continue
		}
		t.Insert(keys[i], int32(i))
		maxPos = int32(i)
	}
	return &Index{tree: t, n: n, stride: stride, maxPos: maxPos}, nil
}

// Lookup implements core.Index.
func (idx *Index) Lookup(key core.Key) core.Bound {
	_, pos, found := idx.tree.Ceiling(key)
	if !found {
		// Every indexed key is smaller: the lower bound lies after the
		// last subset position.
		return core.Bound{Lo: int(idx.maxPos) + 1, Hi: idx.n}.Clamp(idx.n)
	}
	lo := int(pos) - idx.stride + 1
	if lo < 0 {
		lo = 0
	}
	hi := int(pos) + 1
	return core.Bound{Lo: lo, Hi: hi}
}

// SizeBytes implements core.Index.
func (idx *Index) SizeBytes() int { return idx.tree.SizeBytes() }

// Name implements core.Index.
func (idx *Index) Name() string { return "ART" }

// NodeStep describes one node visited during a lookup, for the
// performance-counter simulation.
type NodeStep struct {
	ID        int32
	SizeBytes int
}

func nodeBytes(k nodeKind) int {
	switch k {
	case kindLeaf:
		return leafBytes
	case kind4:
		return node4Bytes
	case kind16:
		return node16Bytes
	case kind48:
		return node48Bytes
	default:
		return node256Bytes
	}
}

// CeilingPath is Ceiling with a visitor invoked for every node touched
// (including backtracking and min-leaf descents).
func (t *Tree) CeilingPath(x core.Key, visit func(NodeStep)) (core.Key, int32, bool) {
	if t.root == nil {
		return 0, 0, false
	}
	kb := keyBytes(x)
	lf := ceilingVisit(t.root, kb[:], 0, visit)
	if lf == nil {
		return 0, 0, false
	}
	return lf.key, lf.val, true
}

func ceilingVisit(n *node, kb []byte, depth int, visit func(NodeStep)) *node {
	visit(NodeStep{ID: n.id, SizeBytes: nodeBytes(n.kind)})
	if n.kind == kindLeaf {
		ob := keyBytes(n.key)
		for i := depth; i < keyLen; i++ {
			if ob[i] > kb[i] {
				return n
			}
			if ob[i] < kb[i] {
				return nil
			}
		}
		return n
	}
	for i, pb := range n.prefix {
		if pb > kb[depth+i] {
			return minLeafVisit(n, visit)
		}
		if pb < kb[depth+i] {
			return nil
		}
	}
	depth += len(n.prefix)
	child, exact := n.childAtOrAfter(kb[depth])
	if child == nil {
		return nil
	}
	if exact {
		if lf := ceilingVisit(child, kb, depth+1, visit); lf != nil {
			return lf
		}
		next, _ := n.childAtOrAfter(kb[depth] + 1)
		if kb[depth] == 0xFF || next == nil {
			return nil
		}
		return minLeafVisit(next, visit)
	}
	return minLeafVisit(child, visit)
}

func minLeafVisit(n *node, visit func(NodeStep)) *node {
	lf := minLeaf(n)
	// Approximate the visit trail with the leaf itself: min-leaf
	// descents touch one node per remaining byte but those nodes are
	// usually adjacent; the dominant cost is the final leaf line.
	visit(NodeStep{ID: lf.id, SizeBytes: leafBytes})
	return lf
}

// IndexTree exposes the underlying tree of an Index.
func (idx *Index) IndexTree() *Tree { return idx.tree }

// Stride returns the subset stride.
func (idx *Index) Stride() int { return idx.stride }

// N returns the indexed data size.
func (idx *Index) N() int { return idx.n }

// MaxPos returns the data position of the last subset key.
func (idx *Index) MaxPos() int32 { return idx.maxPos }
