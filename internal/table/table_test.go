package table

import (
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/registry"
	"repro/internal/search"
)

// buildTable builds a mid-sweep table for a family over keys, with
// payloads derived from positions so expected values are computable.
func buildTable(t *testing.T, family string, keys []core.Key, fn search.Fn) *Table {
	t.Helper()
	nb, ok := registry.Builder(family, keys)
	if !ok {
		t.Fatalf("no builder for family %s", family)
	}
	payloads := make([]uint64, len(keys))
	for i := range payloads {
		payloads[i] = uint64(i)*2 + 1 // nonzero, position-identifying
	}
	tbl, err := Build(nb.Builder, keys, payloads, fn)
	if err != nil {
		t.Fatalf("%s: %v", family, err)
	}
	return tbl
}

// TestConformanceAllFamilies verifies Get, GetBatch and Range against
// search.Binary ground truth over the raw arrays, for every registered
// family (the hash families degrade to the full bound for absent keys,
// so they too serve arbitrary probes): present keys, absent
// neighbours, and out-of-range probes.
func TestConformanceAllFamilies(t *testing.T) {
	if n := len(registry.Families()); n < 13 {
		t.Fatalf("registry lists only %d families: %v", n, registry.Families())
	}
	keys := dataset.MustGenerate(dataset.OSM, 5000, 11)
	probes := make([]core.Key, 0, 3*len(keys))
	for _, k := range keys {
		probes = append(probes, k, k+1)
		if k > 0 {
			probes = append(probes, k-1)
		}
	}
	probes = append(probes, 0, ^core.Key(0))

	for _, family := range registry.Families() {
		tbl := buildTable(t, family, keys, search.BinarySearch)

		// Ground truth via pure binary search on the raw arrays.
		expect := func(x core.Key) (uint64, bool) {
			pos := search.BinarySearch(keys, x, core.FullBound(len(keys)))
			if pos < len(keys) && keys[pos] == x {
				return uint64(pos)*2 + 1, true
			}
			return 0, false
		}

		for _, x := range probes {
			wantV, wantOK := expect(x)
			gotV, gotOK := tbl.Get(x)
			if gotV != wantV || gotOK != wantOK {
				t.Fatalf("%s: Get(%d) = (%d,%v), want (%d,%v)", family, x, gotV, gotOK, wantV, wantOK)
			}
		}

		out := make([]uint64, len(probes))
		found := tbl.GetBatch(probes, out)
		wantFound := 0
		for i, x := range probes {
			wantV, wantOK := expect(x)
			if wantOK {
				wantFound++
			}
			if out[i] != wantV {
				t.Fatalf("%s: GetBatch out[%d] for key %d = %d, want %d", family, i, x, out[i], wantV)
			}
		}
		if found != wantFound {
			t.Fatalf("%s: GetBatch found %d, want %d", family, found, wantFound)
		}

		// Range over a middle window against LowerBound ground truth.
		lo, hi := keys[len(keys)/4], keys[3*len(keys)/4]
		rk, rv := tbl.Range(lo, hi)
		wantLo := core.LowerBound(keys, lo)
		wantHi := core.LowerBound(keys, hi)
		if len(rk) != wantHi-wantLo || len(rv) != wantHi-wantLo {
			t.Fatalf("%s: Range len %d, want %d", family, len(rk), wantHi-wantLo)
		}
		for i := range rk {
			if rk[i] != keys[wantLo+i] || rv[i] != uint64(wantLo+i)*2+1 {
				t.Fatalf("%s: Range[%d] = (%d,%d), want (%d,%d)",
					family, i, rk[i], rv[i], keys[wantLo+i], uint64(wantLo+i)*2+1)
			}
		}
	}
}

// TestGetBatchSortedAndShuffled checks the batch path on ascending
// batches (sorted-probe reuse engaged) and on shuffled batches
// (opportunistic narrowing disabled) with duplicates present.
func TestGetBatchSortedAndShuffled(t *testing.T) {
	keys := make([]core.Key, 0, 4000)
	for i := 0; i < 1000; i++ {
		k := core.Key(i*37 + 5)
		for d := 0; d < 1+i%4; d++ { // duplicate runs of 1..4
			keys = append(keys, k)
		}
	}
	payloads := make([]uint64, len(keys))
	for i := range payloads {
		payloads[i] = uint64(i) + 1
	}
	for _, family := range []string{"RMI", "PGM", "RS", "RBS", "BTree"} {
		nb, ok := registry.Builder(family, keys)
		if !ok {
			t.Fatalf("no builder for %s", family)
		}
		tbl, err := Build(nb.Builder, keys, payloads, search.BinarySearch)
		if err != nil {
			t.Fatal(err)
		}
		shuffled := dataset.Lookups(keys, 2000, 3)
		sorted := append([]core.Key(nil), shuffled...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, batch := range [][]core.Key{sorted, shuffled} {
			out := make([]uint64, len(batch))
			tbl.GetBatch(batch, out)
			for i, x := range batch {
				pos := core.LowerBound(keys, x)
				var want uint64
				if pos < len(keys) && keys[pos] == x {
					want = payloads[pos]
				}
				if out[i] != want {
					t.Fatalf("%s: batch key %d -> %d, want %d", family, x, out[i], want)
				}
			}
		}
	}
}

// TestBatchIndexAgreement verifies that every BatchIndex
// implementation returns bit-identical bounds to its scalar Lookup.
func TestBatchIndexAgreement(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Face, 4000, 5)
	probes := dataset.Lookups(keys, 1000, 9)
	probes = append(probes, 0, ^core.Key(0), keys[0]-1, keys[len(keys)-1]+1)
	for _, family := range []string{"RMI", "PGM", "RS", "RBS"} {
		nb, ok := registry.Builder(family, keys)
		if !ok {
			t.Fatalf("no builder for %s", family)
		}
		idx, err := nb.Builder.Build(keys)
		if err != nil {
			t.Fatal(err)
		}
		bi, ok := idx.(core.BatchIndex)
		if !ok {
			t.Fatalf("%s does not implement core.BatchIndex", family)
		}
		got := make([]core.Bound, len(probes))
		bi.LookupBatch(probes, got)
		for i, x := range probes {
			if want := idx.Lookup(x); got[i] != want {
				t.Fatalf("%s: LookupBatch bound %v != Lookup bound %v for key %d", family, got[i], want, x)
			}
		}
	}
}

// TestTableValidation covers constructor error paths.
func TestTableValidation(t *testing.T) {
	keys := []core.Key{3, 2, 1}
	if _, err := New(keys, make([]uint64, 3), nil, nil); err == nil {
		t.Error("nil index accepted")
	}
	nb, _ := registry.Builder("BTree", []core.Key{1, 2, 3})
	idx, err := nb.Builder.Build([]core.Key{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(keys, make([]uint64, 3), idx, nil); err == nil {
		t.Error("unsorted keys accepted")
	}
	if _, err := New([]core.Key{1, 2, 3}, make([]uint64, 2), idx, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	tbl, err := New([]core.Key{1, 2, 3}, []uint64{10, 20, 30}, idx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mn, _ := tbl.MinKey(); mn != 1 {
		t.Errorf("MinKey = %d", mn)
	}
	if mx, _ := tbl.MaxKey(); mx != 3 {
		t.Errorf("MaxKey = %d", mx)
	}
	if tbl.Len() != 3 || tbl.Index() == nil || tbl.SizeBytes() <= 0 {
		t.Error("accessor inconsistency")
	}
}

func TestTableViewsAndCount(t *testing.T) {
	keys := []core.Key{1, 4, 4, 4, 9}
	payloads := []uint64{10, 40, 41, 42, 90}
	nb, _ := registry.Builder("BTree", keys)
	tbl, err := Build(nb.Builder, keys, payloads, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Keys(); len(got) != len(keys) || got[0] != 1 || got[4] != 9 {
		t.Errorf("Keys view wrong: %v", got)
	}
	if got := tbl.Payloads(); len(got) != len(payloads) || got[0] != 10 {
		t.Errorf("Payloads view wrong: %v", got)
	}
	for _, c := range []struct {
		key  core.Key
		want int
	}{{1, 1}, {4, 3}, {9, 1}, {5, 0}, {0, 0}, {100, 0}} {
		if got := tbl.CountKey(c.key); got != c.want {
			t.Errorf("CountKey(%d) = %d, want %d", c.key, got, c.want)
		}
	}
}

func TestEmptyTable(t *testing.T) {
	tbl := Empty(nil)
	if tbl.Len() != 0 || tbl.SizeBytes() != 0 {
		t.Fatalf("Empty table: Len=%d SizeBytes=%d", tbl.Len(), tbl.SizeBytes())
	}
	if _, ok := tbl.Get(42); ok {
		t.Error("Get on empty table found a key")
	}
	if _, ok := tbl.MinKey(); ok {
		t.Error("MinKey on empty table ok")
	}
	if k, _ := tbl.Range(0, ^core.Key(0)); len(k) != 0 {
		t.Error("Range on empty table non-empty")
	}
	out := make([]uint64, 3)
	if found := tbl.GetBatch([]core.Key{1, 2, 3}, out); found != 0 {
		t.Errorf("GetBatch on empty table found %d", found)
	}
	if tbl.CountKey(7) != 0 {
		t.Error("CountKey on empty table non-zero")
	}
}
