package ibtree

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/indextest"
)

// TestValidityAcrossStrides runs the shared conformance probe over the
// interpolating B+tree at every sweep stride, on smooth and skewed
// data (interpolation error is distribution-dependent).
func TestValidityAcrossStrides(t *testing.T) {
	for _, name := range []dataset.Name{dataset.Amzn, dataset.Face} {
		keys := dataset.MustGenerate(name, 3000, 9)
		for _, stride := range []int{1, 4, 16, 128} {
			idx := indextest.CheckBuilder(t, Builder{Stride: stride}, keys)
			if idx.Name() != "IBTree" {
				t.Fatalf("Name() = %q", idx.Name())
			}
		}
	}
}

// TestDuplicates checks lower-bound semantics over duplicate runs.
func TestDuplicates(t *testing.T) {
	var keys []core.Key
	for i := 0; i < 500; i++ {
		k := core.Key(i*10 + 3)
		for d := 0; d <= i%3; d++ {
			keys = append(keys, k)
		}
	}
	indextest.CheckBuilder(t, Builder{Stride: 2}, keys)
}

// TestStrideSizeTradeoff verifies the subset-insertion knob: larger
// strides must produce strictly smaller indexes.
func TestStrideSizeTradeoff(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Wiki, 5000, 2)
	small, err := (Builder{Stride: 64}).Build(keys)
	if err != nil {
		t.Fatal(err)
	}
	large, err := (Builder{Stride: 1}).Build(keys)
	if err != nil {
		t.Fatal(err)
	}
	if small.SizeBytes() >= large.SizeBytes() {
		t.Fatalf("stride 64 (%d B) not smaller than stride 1 (%d B)",
			small.SizeBytes(), large.SizeBytes())
	}
}

func TestBuilderName(t *testing.T) {
	if (Builder{}).Name() != "IBTree" {
		t.Fatalf("Builder name = %q", Builder{}.Name())
	}
}
