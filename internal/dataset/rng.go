package dataset

import "math"

// rng is a small deterministic PRNG (splitmix64 core) used by all
// generators so that datasets and workloads are reproducible across
// runs and Go versions, independent of math/rand's evolution.
type rng struct {
	state uint64
}

func newRNG(seed uint64) *rng { return &rng{state: seed} }

// next returns the next 64 random bits (splitmix64).
func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float64 returns a uniform float in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// intn returns a uniform int in [0, n). n must be positive.
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// norm returns a standard normal variate via Box–Muller. It wastes the
// second variate for simplicity; generators are not hot paths.
func (r *rng) norm() float64 {
	u1 := r.float64()
	for u1 == 0 {
		u1 = r.float64()
	}
	u2 := r.float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// exp returns an exponential variate with mean 1.
func (r *rng) exp() float64 {
	u := r.float64()
	for u == 0 {
		u = r.float64()
	}
	return -math.Log(u)
}

// lognorm returns a log-normal variate with the given log-space mean
// and standard deviation.
func (r *rng) lognorm(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.norm())
}
