package registry

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

// allBuiltins is the family set the built-in catalog must provide.
var allBuiltins = []string{
	"RMI", "PGM", "RS", "RBS", "BTree", "IBTree", "ART", "FAST",
	"FST", "Wormhole", "BS", "RobinHash", "CuckooMap",
}

func TestBuiltinCatalogComplete(t *testing.T) {
	for _, f := range allBuiltins {
		if !Has(f) {
			t.Errorf("family %s not registered", f)
		}
	}
	fams := Families()
	if len(fams) < len(allBuiltins) {
		t.Fatalf("Families() lists %d, want >= %d", len(fams), len(allBuiltins))
	}
	for i := 1; i < len(fams); i++ {
		if fams[i] <= fams[i-1] {
			t.Fatalf("Families() not sorted: %v", fams)
		}
	}
	for _, set := range [][]string{ParetoFamilies, StringFamilies, Table2Families,
		Fig12Families, Fig16Families, ServeFamilies} {
		for _, f := range set {
			if !Has(f) {
				t.Errorf("figure family set references unregistered %s", f)
			}
		}
	}
}

func TestSweepsBuildAndValidate(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Wiki, 2000, 1)
	for _, f := range Families() {
		sweep := Sweep(f, keys)
		if len(sweep) == 0 {
			t.Errorf("%s: empty sweep", f)
			continue
		}
		// Build the mid variant and spot-check bound validity.
		nb, ok := Builder(f, keys)
		if !ok {
			t.Fatalf("%s: no canonical builder", f)
		}
		idx, err := nb.Builder.Build(keys)
		if err != nil {
			t.Fatalf("%s(%s): %v", f, nb.Label, err)
		}
		for _, x := range keys[:200] {
			if b := idx.Lookup(x); !core.ValidBound(keys, x, b) {
				t.Fatalf("%s: invalid bound %v for key %d", f, b, x)
			}
		}
	}
}

func TestSweepUnknownFamily(t *testing.T) {
	if Sweep("NoSuchFamily", nil) != nil {
		t.Error("unknown family returned a sweep")
	}
	if Has("NoSuchFamily") {
		t.Error("Has(unknown) = true")
	}
	if _, ok := Builder("NoSuchFamily", nil); ok {
		t.Error("Builder(unknown) ok")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register("RMI", func([]core.Key) []NamedBuilder { return nil })
}

func TestRegisterNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil Register did not panic")
		}
	}()
	Register("SomethingNew", nil)
}

func TestRebuildBuilder(t *testing.T) {
	keys := make([]core.Key, 2000)
	for i := range keys {
		keys[i] = core.Key(i)*7 + 3
	}
	// A family without a hook (trees bulk-load) reuses prev verbatim.
	prevNB, ok := Builder("BTree", keys)
	if !ok {
		t.Fatal("no BTree builder")
	}
	if got := RebuildBuilder("BTree", prevNB.Builder, keys); got != prevNB.Builder {
		t.Error("BTree rebuild did not reuse the previous builder")
	}
	// An unknown family (custom builder) also reuses prev.
	if got := RebuildBuilder("NoSuchFamily", prevNB.Builder, keys); got != prevNB.Builder {
		t.Error("unknown-family rebuild did not reuse the previous builder")
	}
	// Learned families re-tune: the hook must return a usable builder
	// of the same family.
	for _, fam := range []string{"RMI", "PGM", "RS"} {
		nb, ok := Builder(fam, keys)
		if !ok {
			t.Fatalf("no %s builder", fam)
		}
		b := RebuildBuilder(fam, nb.Builder, keys)
		if b == nil {
			t.Fatalf("%s rebuild returned nil", fam)
		}
		if b.Name() != nb.Builder.Name() {
			t.Errorf("%s rebuild switched family to %s", fam, b.Name())
		}
		if _, err := b.Build(keys); err != nil {
			t.Errorf("%s rebuilt builder failed: %v", fam, err)
		}
	}
}

func TestRegisterRebuildDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate RegisterRebuild did not panic")
		}
	}()
	RegisterRebuild("RMI", func(prev core.Builder, _ []core.Key) core.Builder { return prev })
}

func TestConfigIDs(t *testing.T) {
	cases := []struct{ family, label, id string }{
		{"PGM", "eps=64", "PGM/eps=64"},
		{"BTree", "stride=8", "BTree/stride=8"},
		{"RMI", "rmi[linear,cubic,B=512]", "RMI/rmi[linear,cubic,B=512]"},
		{"ART", "", "ART"},
		{"X", "a/b", "X/a/b"}, // labels may contain '/'
	}
	for _, c := range cases {
		if got := ID(c.family, c.label); got != c.id {
			t.Errorf("ID(%q,%q) = %q, want %q", c.family, c.label, got, c.id)
		}
		fam, label := ParseID(c.id)
		if fam != c.family || label != c.label {
			t.Errorf("ParseID(%q) = %q,%q, want %q,%q", c.id, fam, label, c.family, c.label)
		}
	}
}

// TestSweepEntryStableAcrossSweeps is the cross-process lookup
// contract: every entry of a deterministic sweep must be findable by
// its own label, and an unknown label or family must miss cleanly.
func TestSweepEntryStableAcrossSweeps(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Amzn, 2000, 3)
	for _, fam := range []string{"BTree", "IBTree", "RBS", "PGM", "RS", "FST"} {
		for _, nb := range Sweep(fam, keys) {
			got, ok := SweepEntry(fam, nb.Label, keys)
			if !ok {
				t.Fatalf("%s: entry %q not found by label", fam, nb.Label)
			}
			if got.Builder != nb.Builder {
				t.Errorf("%s/%s: resolved different builder", fam, nb.Label)
			}
		}
	}
	if _, ok := SweepEntry("PGM", "eps=999999", keys); ok {
		t.Error("unknown label resolved")
	}
	if _, ok := SweepEntry("NoSuchFamily", "", keys); ok {
		t.Error("unknown family resolved")
	}
}

// TestCodecCatalog verifies every family the persistence subsystem
// promises (the ISSUE's minimum set) has a codec, and that codec
// lookups miss cleanly for families without one.
func TestCodecCatalog(t *testing.T) {
	for _, fam := range []string{"RMI", "PGM", "RS", "RBS", "BTree", "IBTree"} {
		if _, ok := CodecFor(fam); !ok {
			t.Errorf("family %s has no codec", fam)
		}
	}
	if _, ok := CodecFor("ART"); ok {
		t.Error("ART unexpectedly has a codec")
	}
	fams := CodecFamilies()
	for i := 1; i < len(fams); i++ {
		if fams[i] <= fams[i-1] {
			t.Errorf("CodecFamilies not sorted: %v", fams)
		}
	}
}
