package pgm

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestDynamicInsertAndCeiling(t *testing.T) {
	d := NewDynamic(8)
	rng := rand.New(rand.NewSource(1))
	var ref []core.Key
	vals := map[core.Key]uint64{}
	for i := 0; i < 5000; i++ {
		k := core.Key(rng.Uint64() % 1_000_000)
		if _, dup := vals[k]; dup {
			continue
		}
		vals[k] = uint64(i)
		if err := d.Insert(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
		ref = append(ref, k)
	}
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
	if d.Len() != len(ref) {
		t.Fatalf("len = %d, want %d", d.Len(), len(ref))
	}
	for q := 0; q < 2000; q++ {
		x := core.Key(rng.Uint64() % 1_100_000)
		i := core.LowerBound(ref, x)
		k, v, err := d.Ceiling(x)
		if i == len(ref) {
			if err == nil {
				t.Fatalf("Ceiling(%d) = %d, want not-found", x, k)
			}
			continue
		}
		if err != nil || k != ref[i] || v != vals[ref[i]] {
			t.Fatalf("Ceiling(%d) = (%d,%d,%v), want (%d,%d)", x, k, v, err, ref[i], vals[ref[i]])
		}
	}
}

func TestDynamicGet(t *testing.T) {
	d := NewDynamic(4)
	for i := 0; i < 500; i++ {
		if err := d.Insert(core.Key(i*3), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		v, ok := d.Get(core.Key(i * 3))
		if !ok || v != uint64(i) {
			t.Fatalf("Get(%d) = (%d, %v)", i*3, v, ok)
		}
	}
	if _, ok := d.Get(1); ok {
		t.Error("absent key found")
	}
}

func TestDynamicLogarithmicRuns(t *testing.T) {
	d := NewDynamic(8)
	for i := 0; i < 100_000; i++ {
		if err := d.Insert(core.Key(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// The logarithmic method keeps O(log(n/base)) non-empty runs.
	if runs := d.NumRuns(); runs > 14 {
		t.Errorf("too many runs: %d", runs)
	}
	if d.SizeBytes() <= 0 {
		t.Error("size must be positive")
	}
}

func TestDynamicEmpty(t *testing.T) {
	d := NewDynamic(8)
	if _, _, err := d.Ceiling(5); err == nil {
		t.Error("empty dynamic should not find")
	}
	if d.Len() != 0 || d.NumRuns() != 0 {
		t.Error("empty counts wrong")
	}
}

func TestDynamicDuplicates(t *testing.T) {
	d := NewDynamic(2)
	for i := 0; i < 200; i++ {
		if err := d.Insert(42, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if d.Len() != 200 {
		t.Fatalf("len = %d", d.Len())
	}
	k, _, err := d.Ceiling(42)
	if err != nil || k != 42 {
		t.Fatalf("Ceiling(42) = (%d, %v)", k, err)
	}
}

// Property: dynamic PGM behaves like a sorted multiset under random
// insert sequences.
func TestDynamicProperty(t *testing.T) {
	f := func(raw []uint64, x uint64) bool {
		d := NewDynamic(4)
		ref := make([]core.Key, 0, len(raw))
		for i, k := range raw {
			if err := d.Insert(k, uint64(i)); err != nil {
				return false
			}
			ref = append(ref, k)
		}
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		i := core.LowerBound(ref, x)
		k, _, err := d.Ceiling(x)
		if i == len(ref) {
			return err != nil
		}
		return err == nil && k == ref[i]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
