package stats

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestHistogramConcurrentRecordAndSnapshot is the satellite -race
// stress test: many recorders hammer one shared histogram and several
// per-worker histograms while a reader repeatedly snapshots, merges,
// and takes quantiles mid-run. Under -race this proves the lock-free
// recording claim; without it, it still asserts no sample is lost.
func TestHistogramConcurrentRecordAndSnapshot(t *testing.T) {
	const (
		workers    = 8
		perWorker  = 20_000
		totalCount = workers * perWorker
	)
	shared := &Histogram{}
	locals := make([]*Histogram, workers)
	for i := range locals {
		locals[i] = &Histogram{}
	}

	var wg sync.WaitGroup
	var stop atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Cheap deterministic per-worker value stream spanning the
			// exact region, mid buckets, and large values.
			state := uint64(w)*0x9E3779B97F4A7C15 + 1
			for i := 0; i < perWorker; i++ {
				state ^= state << 13
				state ^= state >> 7
				state ^= state << 17
				v := int64(state % (1 << (8 + uint(w)%24)))
				shared.Record(v)
				locals[w].Record(v)
			}
		}(w)
	}

	// Mid-run reader: snapshot the shared histogram and merge the
	// per-worker ones while recording is in flight. Every observation
	// must be internally consistent (quantiles within recorded range,
	// counts monotone).
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		var lastCount uint64
		for !stop.Load() {
			snap := shared.Snapshot()
			if snap.Count() < lastCount {
				t.Error("snapshot count went backwards")
				return
			}
			lastCount = snap.Count()
			if p99 := snap.Quantile(0.99); p99 > snap.Max() {
				t.Errorf("mid-run p99 %d above max %d", p99, snap.Max())
				return
			}
			merged := &Histogram{}
			for _, l := range locals {
				merged.Merge(l)
			}
			if m := merged.Quantile(0.5); m < 0 {
				t.Errorf("mid-run merged median negative: %d", m)
				return
			}
		}
	}()

	wg.Wait()
	stop.Store(true)
	readerWG.Wait()

	if shared.Count() != totalCount {
		t.Fatalf("shared lost samples: %d != %d", shared.Count(), totalCount)
	}
	merged := &Histogram{}
	for _, l := range locals {
		merged.Merge(l)
	}
	if merged.Count() != totalCount {
		t.Fatalf("merged lost samples: %d != %d", merged.Count(), totalCount)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1} {
		if merged.Quantile(q) != shared.Quantile(q) {
			t.Fatalf("per-worker merge diverges from shared at q=%g: %d vs %d",
				q, merged.Quantile(q), shared.Quantile(q))
		}
	}
}
