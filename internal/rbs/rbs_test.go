package rbs

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/indextest"
)

func TestRBSValidityAllDatasets(t *testing.T) {
	for _, name := range dataset.All() {
		keys := dataset.MustGenerate(name, 5000, 1)
		probes := indextest.ProbesFor(keys)
		for _, r := range []int{1, 4, 10, 18} {
			idx, err := New(keys, r)
			if err != nil {
				t.Fatalf("%s r=%d: %v", name, r, err)
			}
			indextest.CheckValidity(t, idx, keys, probes)
		}
	}
}

func TestRBSBoundsShrinkWithBits(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Amzn, 50000, 1)
	lookups := dataset.Lookups(keys, 1000, 2)
	avgWidth := func(idx core.Index) float64 {
		total := 0
		for _, x := range lookups {
			total += idx.Lookup(x).Width()
		}
		return float64(total) / float64(len(lookups))
	}
	small, _ := New(keys, 6)
	large, _ := New(keys, 16)
	if avgWidth(large) >= avgWidth(small) {
		t.Errorf("more bits should shrink bounds: %f vs %f", avgWidth(large), avgWidth(small))
	}
}

func TestRBSFaceCollapse(t *testing.T) {
	// The paper's key RBS result: face's extreme outliers make the
	// radix table nearly useless — the bulk of keys share one prefix,
	// so bounds stay enormous.
	face := dataset.MustGenerate(dataset.Face, 50000, 1)
	amzn := dataset.MustGenerate(dataset.Amzn, 50000, 1)
	rf, _ := New(face, 16)
	ra, _ := New(amzn, 16)
	width := func(idx core.Index, keys []core.Key) float64 {
		total := 0
		for _, x := range keys[:5000] {
			total += idx.Lookup(x).Width()
		}
		return float64(total) / 5000
	}
	wf, wa := width(rf, face), width(ra, amzn)
	if wf < 100*wa {
		t.Errorf("face bounds (%f) should be far wider than amzn (%f)", wf, wa)
	}
}

func TestRBSSize(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Amzn, 1000, 1)
	idx, _ := New(keys, 10)
	want := (1<<10 + 1) * 4
	if idx.SizeBytes() != want {
		t.Errorf("size = %d, want %d", idx.SizeBytes(), want)
	}
}

func TestRBSEmpty(t *testing.T) {
	if _, err := New(nil, 8); err == nil {
		t.Fatal("expected error")
	}
}

func TestRBSSingleKey(t *testing.T) {
	keys := []core.Key{42}
	idx, err := New(keys, 8)
	if err != nil {
		t.Fatal(err)
	}
	indextest.CheckValidity(t, idx, keys, []core.Key{0, 41, 42, 43, ^core.Key(0)})
}

func TestRBSDuplicates(t *testing.T) {
	keys := []core.Key{5, 5, 5, 5, 100, 100, 7000, 7000, 7000, 90000}
	idx, err := New(keys, 6)
	if err != nil {
		t.Fatal(err)
	}
	indextest.CheckValidity(t, idx, keys, indextest.ProbesFor(keys))
}

func TestRBSBitsClamp(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Wiki, 1000, 1)
	idx, err := New(keys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if idx.RadixBits() != 1 {
		t.Errorf("bits=0 should clamp to 1, got %d", idx.RadixBits())
	}
	idx2, _ := New(keys, 99)
	if idx2.RadixBits() > 28 {
		t.Error("bits not clamped high")
	}
	indextest.CheckValidity(t, idx2, keys, indextest.ProbesFor(keys))
}

func TestRBSBuilderInterface(t *testing.T) {
	var b core.Builder = Builder{RadixBits: 12}
	if b.Name() != "RBS" {
		t.Errorf("name %q", b.Name())
	}
	keys := dataset.MustGenerate(dataset.OSM, 2000, 1)
	idx := indextest.CheckBuilder(t, b, keys)
	if idx.Name() != "RBS" {
		t.Error("bad name")
	}
}

func TestBinarySearchBaseline(t *testing.T) {
	var b core.Builder = BinarySearchBuilder{}
	if b.Name() != "BS" {
		t.Errorf("name %q", b.Name())
	}
	keys := dataset.MustGenerate(dataset.Amzn, 1000, 1)
	idx := indextest.CheckBuilder(t, b, keys)
	if idx.SizeBytes() != 0 {
		t.Error("BS must have zero size")
	}
	if idx.Lookup(123).Width() != len(keys) {
		t.Error("BS must return the full bound")
	}
	if _, err := b.Build(nil); err == nil {
		t.Error("expected error on empty")
	}
}
