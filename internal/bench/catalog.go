package bench

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/report"
)

// DefaultSeed is the seed the sosd CLI uses when none is given. The
// library itself never substitutes it: Options.Seed is honored
// verbatim, including an explicit 0, so the default lives in flag
// parsing where a default belongs.
const DefaultSeed uint64 = 42

// Options scales and filters the experiments. Scale 1 corresponds to
// the default laptop-scale dataset size (the paper's 200M keys map to
// dataset.DefaultN).
type Options struct {
	N       int    // dataset size; 0 = dataset.DefaultN/10 (quick)
	Lookups int    // lookup count; 0 = N/10
	Seed    uint64 // dataset/workload seed, used verbatim (see DefaultSeed)

	// Families restricts every family sweep to the named index
	// families; empty means each experiment's default set. Datasets
	// restricts the multi-dataset sweeps likewise; experiments pinned
	// to one dataset (e.g. the amzn-only figures) ignore it.
	Families []string
	Datasets []string
}

func (o Options) withDefaults() Options {
	if o.N == 0 {
		o.N = dataset.DefaultN / 10
	}
	if o.Lookups == 0 {
		o.Lookups = o.N / 10
	}
	return o
}

// Experiment is one catalog entry: a stable name (the CLI argument
// and report.Table.Experiment value), a one-line description, and the
// run function producing typed result tables.
type Experiment struct {
	Name string
	Desc string
	Run  func(*Run) ([]report.Table, error)
}

var (
	catalogMu sync.Mutex
	catalog   []Experiment
	byName    = map[string]int{}
)

// Register adds an experiment to the catalog, in call order (package
// init order makes that the declaration order of the experiment
// files). Like registry.Register it panics on duplicates and nil run
// functions: the catalog is assembled at init time, where failing
// loudly is the only useful behaviour.
func Register(e Experiment) {
	if e.Name == "" || e.Run == nil {
		panic(fmt.Sprintf("bench: experiment %q registered without name or run", e.Name))
	}
	catalogMu.Lock()
	defer catalogMu.Unlock()
	if _, dup := byName[e.Name]; dup {
		panic(fmt.Sprintf("bench: duplicate experiment %q", e.Name))
	}
	byName[e.Name] = len(catalog)
	catalog = append(catalog, e)
}

// Experiments returns the catalog in registration order.
func Experiments() []Experiment {
	catalogMu.Lock()
	defer catalogMu.Unlock()
	return append([]Experiment(nil), catalog...)
}

// Find returns the named experiment.
func Find(name string) (Experiment, bool) {
	catalogMu.Lock()
	defer catalogMu.Unlock()
	i, ok := byName[name]
	if !ok {
		return Experiment{}, false
	}
	return catalog[i], true
}

// Run is the context handed to every experiment: the (defaulted)
// options, plus bookkeeping shared across the run — the checksum of
// every dataset environment generated, which the CLI emits as run
// metadata so two result files are comparable only when they measured
// identical data.
type Run struct {
	Options Options

	mu        sync.Mutex
	checksums map[string]uint64
}

// NewRun prepares a run context. Defaults are applied once here; the
// Seed is kept verbatim (an explicit 0 stays 0).
func NewRun(o Options) *Run {
	return &Run{Options: o.withDefaults(), checksums: map[string]uint64{}}
}

// Env builds the benchmark environment for a dataset at the run's
// scale, recording its key checksum.
func (r *Run) Env(name dataset.Name) (*Env, error) {
	return r.EnvAt(name, r.Options.N, r.Options.Lookups)
}

// EnvAt builds an environment at an explicit scale (the 1x..4x
// scaling sweeps), recording its key checksum.
func (r *Run) EnvAt(name dataset.Name, n, lookups int) (*Env, error) {
	e, err := NewEnv(name, n, lookups, r.Options.Seed)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.checksums[fmt.Sprintf("%s/n=%d/seed=%d", name, n, r.Options.Seed)] = keysChecksum(e.Keys)
	r.mu.Unlock()
	return e, nil
}

// DatasetChecksums returns a copy of the checksums of every
// environment generated so far, keyed "name/n=N/seed=S".
func (r *Run) DatasetChecksums() map[string]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, len(r.checksums))
	for k, v := range r.checksums {
		out[k] = v
	}
	return out
}

// Families filters an experiment's default family set through the
// run's -families option, preserving the experiment's order. With no
// filter the default set passes through unchanged.
func (r *Run) Families(def []string) []string {
	return filterNames(def, r.Options.Families)
}

// FamilyAllowed reports whether a single family passes the filter —
// for experiments whose rows are per-family but not loop-driven.
func (r *Run) FamilyAllowed(family string) bool {
	return nameAllowed(family, r.Options.Families)
}

// Datasets filters an experiment's default dataset sweep through the
// run's -datasets option.
func (r *Run) Datasets(def []dataset.Name) []dataset.Name {
	if len(r.Options.Datasets) == 0 {
		return def
	}
	var out []dataset.Name
	for _, d := range def {
		if nameAllowed(string(d), r.Options.Datasets) {
			out = append(out, d)
		}
	}
	return out
}

func filterNames(def, filter []string) []string {
	if len(filter) == 0 {
		return def
	}
	var out []string
	for _, n := range def {
		if nameAllowed(n, filter) {
			out = append(out, n)
		}
	}
	return out
}

func nameAllowed(name string, filter []string) bool {
	if len(filter) == 0 {
		return true
	}
	for _, f := range filter {
		if f == name {
			return true
		}
	}
	return false
}

// keysChecksum is the dataset fingerprint recorded in run metadata:
// FNV-1a over the key bytes, deterministic across runs and platforms.
func keysChecksum(keys []core.Key) uint64 {
	return dataset.Checksum(keys)
}
