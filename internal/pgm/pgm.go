// Package pgm implements the piecewise geometric model index of
// Ferragina and Vinciguerra (Section 3.3 of the paper).
//
// Each level is an error-bounded piecewise linear regression: the data
// level approximates key -> position to within epsilon, and each level
// above approximates key -> segment number of the level below, built
// bottom-up until the top level is small enough to scan. Lookups
// descend the levels, using the epsilon guarantee to restrict the
// segment search at each step to a 2*(eps+1)+1 window.
//
// Segment construction uses a one-pass shrinking slope-corridor filter
// anchored at each segment's first point. The corridor guarantees the
// epsilon bound exactly; it can emit slightly more segments than the
// optimal convex-hull construction of the PGM paper (bounded by a
// small constant factor), which affects size but never correctness.
// See DESIGN.md.
package pgm

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/core"
)

// Segment is one piece of an error-bounded linear regression: it
// covers points with keys in [Key, nextSegment.Key) and predicts
// Pos + Slope*(x-Key) for the position of x in the level below.
type Segment struct {
	Key   core.Key // first key covered (exact integer for routing)
	Slope float64
	Pos   int32 // position of the first covered point in the level below
}

const segmentSizeBytes = 8 + 8 + 4

// Index is a built PGM index.
type Index struct {
	eps    int
	n      int
	levels [][]Segment // levels[0] indexes the data; levels[k] indexes levels[k-1]
	// Per-segment verified margins for the data level. The corridor
	// guarantees eps for the first occurrence of every present key;
	// these margins additionally cover absent keys, duplicate runs
	// (whose lower-bound rank jumps can exceed eps) and float
	// rounding. For unique-key datasets they stay within eps+2.
	dataErrLo, dataErrHi []int32
}

// Builder constructs PGM indexes with a fixed error bound.
type Builder struct {
	// Eps is the maximum prediction error of every level (the paper's
	// epsilon). Smaller epsilon means more segments (larger index) and
	// tighter search bounds.
	Eps int
}

// Name implements core.Builder.
func (b Builder) Name() string { return "PGM" }

// Build implements core.Builder.
func (b Builder) Build(keys []core.Key) (core.Index, error) {
	return New(keys, b.Eps)
}

// topLevelMax is the segment count at which level construction stops;
// the top level is binary searched directly.
const topLevelMax = 8

// New builds a PGM index over sorted keys with the given epsilon.
func New(keys []core.Key, eps int) (*Index, error) {
	if len(keys) == 0 {
		return nil, errors.New("pgm: empty key set")
	}
	if eps < 1 {
		eps = 1
	}
	idx := &Index{eps: eps, n: len(keys)}

	// Build the data level on (key, position) points, then recursively
	// index each level's first keys until small enough.
	level := fitSegments(keys, eps)
	idx.levels = append(idx.levels, level)
	idx.dataErrLo, idx.dataErrHi = computeDataMargins(keys, level, eps)
	for len(level) > topLevelMax {
		firstKeys := make([]core.Key, len(level))
		for i, s := range level {
			firstKeys[i] = s.Key
		}
		level = fitSegments(firstKeys, eps)
		idx.levels = append(idx.levels, level)
	}
	return idx, nil
}

// computeDataMargins derives, for every data-level segment, search
// margins that are valid for lower-bound queries of arbitrary keys.
// For any query x, let k be the largest distinct data key <= x: the
// lower bound of x is either rank(k) (when x == k) or nextRank(k)
// (when x lies in the gap above k, including above a duplicate run),
// and the routed segment's prediction for x lies between its
// predictions at k and at the next distinct key. Taking margins over
// those extremes at every distinct key covers all queries.
func computeDataMargins(keys []core.Key, segs []Segment, eps int) (errLo, errHi []int32) {
	n, m := len(keys), len(segs)
	errLo = make([]int32, m)
	errHi = make([]int32, m)
	for i := range errLo {
		errLo[i], errHi[i] = int32(eps+1), int32(eps+1)
	}
	si := 0
	for i := 0; i < n; {
		k := keys[i]
		j := i
		for j+1 < n && keys[j+1] == k {
			j++
		}
		nr := j + 1 // lower-bound rank of any key in the gap above k
		for si+1 < m && segs[si+1].Key <= k {
			si++
		}
		nextPos := n
		if si+1 < m {
			nextPos = int(segs[si+1].Pos)
		}
		pred := predict(segs[si], nextPos, k)
		if need := int32(pred - i + 1); need > errLo[si] {
			errLo[si] = need
		}
		if need := int32(nr - pred + 1); need > errHi[si] {
			errHi[si] = need
		}
		if j+1 < n {
			// Gap queries route to this segment but can be predicted as
			// high as the (clamped) prediction at the next distinct key.
			predGap := predict(segs[si], nextPos, keys[j+1])
			if need := int32(predGap - nr + 1); need > errLo[si] {
				errLo[si] = need
			}
		}
		i = j + 1
	}
	return errLo, errHi
}

// fitSegments runs the one-pass corridor filter over (key, rank)
// points, emitting segments that predict positions within eps.
//
// Only the first occurrence of each distinct key is used as a
// constraint point (its rank is the key's lower bound), exactly as the
// reference PGM handles duplicates: predictions then approximate the
// lower-bound rank directly, and constraint x-values are strictly
// increasing so the corridor slopes are always well defined.
func fitSegments(keys []core.Key, eps int) []Segment {
	n := len(keys)
	segs := make([]Segment, 0, 16)
	feps := float64(eps)

	start := 0
	x0 := float64(keys[0])
	slopeLo, slopeHi := math.Inf(-1), math.Inf(1)
	emit := func() {
		// Any slope within the corridor satisfies all constraints;
		// take the midpoint, clamped non-negative (positions are
		// non-decreasing, so a valid non-negative slope exists).
		var slope float64
		switch {
		case math.IsInf(slopeHi, 1) && math.IsInf(slopeLo, -1):
			slope = 0 // single-point segment
		case math.IsInf(slopeHi, 1):
			slope = slopeLo
		case math.IsInf(slopeLo, -1):
			slope = slopeHi
		default:
			slope = (slopeLo + slopeHi) / 2
		}
		if slope < 0 {
			slope = 0 // slopeHi > 0 always holds: ranks increase with keys
		}
		segs = append(segs, Segment{Key: keys[start], Slope: slope, Pos: int32(start)})
	}

	for i := start + 1; i < n; i++ {
		if keys[i] == keys[i-1] {
			continue // duplicate: constrained by its first occurrence
		}
		x := float64(keys[i])
		gap := x - x0
		if gap <= 0 {
			// Distinct uint64 keys can collapse to the same float64;
			// their rank error from the anchor must stay within eps.
			if float64(i-start) <= feps {
				continue
			}
			emit()
			start, x0 = i, x
			slopeLo, slopeHi = math.Inf(-1), math.Inf(1)
			continue
		}
		dy := float64(i - start)
		lo := (dy - feps) / gap
		hi := (dy + feps) / gap
		newLo, newHi := slopeLo, slopeHi
		if lo > newLo {
			newLo = lo
		}
		if hi < newHi {
			newHi = hi
		}
		if newLo > newHi {
			emit()
			start, x0 = i, x
			slopeLo, slopeHi = math.Inf(-1), math.Inf(1)
			continue
		}
		slopeLo, slopeHi = newLo, newHi
	}
	emit()
	return segs
}

// predict evaluates segment s for key x, clamped into [s.Pos, nextPos],
// where nextPos is the first position of the following segment (or the
// size of the level below for the last segment). Clamping against the
// neighbour keeps extrapolation near segment boundaries within the
// epsilon argument (as in the reference implementation).
func predict(s Segment, nextPos int, x core.Key) int {
	p := float64(s.Pos) + s.Slope*(float64(x)-float64(s.Key))
	// Clamp in float space: converting an out-of-range float64 to int
	// is not defined in Go and wraps to the wrong extreme on amd64.
	if p <= float64(s.Pos) {
		return int(s.Pos)
	}
	if p >= float64(nextPos) {
		return nextPos
	}
	return int(math.Round(p))
}

// segSearch returns the predecessor segment for x in segs[lo:hi]: one
// below the first segment whose Key exceeds x (clamped at 0). The
// search is branch-free: one conditional step reduces the window to a
// power-of-two width, then a ladder of exact halvings advances lo by
// half whenever the probed segment key is <= x. The comparisons stay
// branches on purpose: a lone descent's loads miss cache level after
// level, and branch speculation runs those misses ahead — a mask/CMOV
// form would chain them serially (measured ~20% slower per lookup).
// The batch descent uses segSearchBL instead, where independent
// neighbours provide the overlap and mispredict flushes are the
// bottleneck.
func segSearch(segs []Segment, x core.Key, lo, hi int) int {
	width := hi - lo
	if width > 0 {
		w := 1 << (bits.Len(uint(width)) - 1)
		if w != width {
			if segs[lo+width-w].Key <= x {
				lo += width - w
			}
		}
		for w > 1 {
			half := w >> 1
			if segs[lo+half-1].Key <= x {
				lo += half
			}
			w = half
		}
		if segs[lo].Key <= x {
			lo++
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// segSearchBL is segSearch with every comparison materialized by SETcc
// and folded in with mask arithmetic (lo += half & -c) — no
// data-dependent branches. Used by the level-synchronous batch descent:
// its iterations are independent across keys, so out-of-order execution
// overlaps their loads and the only per-iteration hazard left to remove
// is the mispredict flush. (The scalar descent deliberately keeps the
// branchy form; see segSearch.)
func segSearchBL(segs []Segment, x core.Key, lo, hi int) int {
	width := hi - lo
	if width > 0 {
		w := 1 << (bits.Len(uint(width)) - 1)
		if w != width {
			c := 0
			if segs[lo+width-w].Key <= x {
				c = 1
			}
			lo += (width - w) & -c
		}
		for w > 1 {
			half := w >> 1
			c := 0
			if segs[lo+half-1].Key <= x {
				c = 1
			}
			lo += half & -c
			w = half
		}
		c := 0
		if segs[lo].Key <= x {
			c = 1
		}
		lo += c
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// Lookup implements core.Index.
func (idx *Index) Lookup(key core.Key) core.Bound {
	top := idx.levels[len(idx.levels)-1]
	j := segSearch(top, key, 0, len(top))

	// Descend internal levels: each level's segment predicts the
	// segment number in the level below to within eps; search only
	// that window.
	for li := len(idx.levels) - 1; li >= 1; li-- {
		below := idx.levels[li-1]
		lvl := idx.levels[li]
		seg := lvl[j]
		nextPos := len(below)
		if j+1 < len(lvl) {
			nextPos = int(lvl[j+1].Pos)
		}
		pred := predict(seg, nextPos, key)
		lo := pred - idx.eps - 1
		hi := pred + idx.eps + 2
		if lo < 0 {
			lo = 0
		}
		if hi > len(below) {
			hi = len(below)
		}
		j = segSearch(below, key, lo, hi)
	}

	// Data level: predict the position and widen by the segment's
	// verified margins.
	lvl := idx.levels[0]
	seg := lvl[j]
	nextPos := idx.n
	if j+1 < len(lvl) {
		nextPos = int(lvl[j+1].Pos)
	}
	pos := predict(seg, nextPos, key)
	return core.BoundAround(pos, int(idx.dataErrLo[j]), int(idx.dataErrHi[j]), idx.n)
}

// batchChunk is the LookupBatch processing granularity: the per-chunk
// segment-cursor scratch lives on the stack and a chunk's keys stay in
// L1 across the level passes.
const batchChunk = 64

// LookupBatch implements core.BatchIndex with a level-synchronous
// descent: instead of walking each key through every level (a chain of
// dependent segment-array misses per key), the whole chunk advances
// one level per pass. Within a pass the segment searches of different
// keys are independent, so their (random) segment loads overlap in the
// memory system — the same pipelining trick as the table layer's probe
// rounds, applied to the index's internal search. Every pass uses
// exactly the scalar Lookup arithmetic, so batched bounds are
// bit-identical to Lookup's.
func (idx *Index) LookupBatch(keys []core.Key, out []core.Bound) {
	top := idx.levels[len(idx.levels)-1]
	var seg [batchChunk]int32
	for off := 0; off < len(keys); off += batchChunk {
		end := off + batchChunk
		if end > len(keys) {
			end = len(keys)
		}
		chunk := keys[off:end]
		outc := out[off:end]

		for i, x := range chunk {
			seg[i] = int32(segSearchBL(top, x, 0, len(top)))
		}
		for li := len(idx.levels) - 1; li >= 1; li-- {
			below := idx.levels[li-1]
			lvl := idx.levels[li]
			for i, x := range chunk {
				j := int(seg[i])
				s := lvl[j]
				nextPos := len(below)
				if j+1 < len(lvl) {
					nextPos = int(lvl[j+1].Pos)
				}
				pred := predict(s, nextPos, x)
				lo := pred - idx.eps - 1
				hi := pred + idx.eps + 2
				if lo < 0 {
					lo = 0
				}
				if hi > len(below) {
					hi = len(below)
				}
				seg[i] = int32(segSearchBL(below, x, lo, hi))
			}
		}
		lvl := idx.levels[0]
		for i, x := range chunk {
			j := int(seg[i])
			s := lvl[j]
			nextPos := idx.n
			if j+1 < len(lvl) {
				nextPos = int(lvl[j+1].Pos)
			}
			pos := predict(s, nextPos, x)
			outc[i] = core.BoundAround(pos, int(idx.dataErrLo[j]), int(idx.dataErrHi[j]), idx.n)
		}
	}
}

// SizeBytes implements core.Index.
func (idx *Index) SizeBytes() int {
	total := 0
	for _, l := range idx.levels {
		total += len(l) * segmentSizeBytes
	}
	total += 8 * len(idx.dataErrLo) // per-segment margins on the data level
	return total
}

// Name implements core.Index.
func (idx *Index) Name() string { return "PGM" }

// Eps returns the error bound the index was built with.
func (idx *Index) Eps() int { return idx.eps }

// NumLevels reports the number of PLA levels (the paper's discussion of
// PGM lookup cost centres on one cache miss per level).
func (idx *Index) NumLevels() int { return len(idx.levels) }

// NumSegments reports the total segment count across levels.
func (idx *Index) NumSegments() int {
	total := 0
	for _, l := range idx.levels {
		total += len(l)
	}
	return total
}

// String implements fmt.Stringer with a diagnostic summary.
func (idx *Index) String() string {
	return fmt.Sprintf("pgm[eps=%d, levels=%d, segments=%d]", idx.eps, len(idx.levels), idx.NumSegments())
}

// AvgLog2Error returns the mean log2 search-bound width over the data,
// weighted by segment coverage — the paper's log2-error metric.
func (idx *Index) AvgLog2Error() float64 {
	lvl := idx.levels[0]
	total, count := 0.0, 0.0
	for j := range lvl {
		next := idx.n
		if j+1 < len(lvl) {
			next = int(lvl[j+1].Pos)
		}
		occ := float64(next - int(lvl[j].Pos))
		if occ <= 0 {
			continue
		}
		w := float64(idx.dataErrLo[j] + idx.dataErrHi[j] + 1)
		total += occ * math.Log2(w+1)
		count += occ
	}
	if count == 0 {
		return 0
	}
	return total / count
}

// PathStep records one level visited during a lookup, for the
// performance-counter simulation.
type PathStep struct {
	Level int // 0 = data level
	Seg   int // segment evaluated at this level
	// WinLo/WinHi is the segment-search window in the level below
	// (both zero at the data level).
	WinLo, WinHi int
}

// Explain returns the levels visited by Lookup(key) top-down, plus the
// bound. It follows exactly the Lookup code path.
func (idx *Index) Explain(key core.Key) ([]PathStep, core.Bound) {
	steps := make([]PathStep, 0, len(idx.levels))
	top := idx.levels[len(idx.levels)-1]
	j := segSearch(top, key, 0, len(top))
	for li := len(idx.levels) - 1; li >= 1; li-- {
		below := idx.levels[li-1]
		lvl := idx.levels[li]
		seg := lvl[j]
		nextPos := len(below)
		if j+1 < len(lvl) {
			nextPos = int(lvl[j+1].Pos)
		}
		pred := predict(seg, nextPos, key)
		lo := pred - idx.eps - 1
		hi := pred + idx.eps + 2
		if lo < 0 {
			lo = 0
		}
		if hi > len(below) {
			hi = len(below)
		}
		steps = append(steps, PathStep{Level: li, Seg: j, WinLo: lo, WinHi: hi})
		j = segSearch(below, key, lo, hi)
	}
	lvl := idx.levels[0]
	seg := lvl[j]
	nextPos := idx.n
	if j+1 < len(lvl) {
		nextPos = int(lvl[j+1].Pos)
	}
	pos := predict(seg, nextPos, key)
	steps = append(steps, PathStep{Level: 0, Seg: j})
	return steps, core.BoundAround(pos, int(idx.dataErrLo[j]), int(idx.dataErrHi[j]), idx.n)
}

// LevelSizes returns the segment count of each level, data level first.
func (idx *Index) LevelSizes() []int {
	out := make([]int, len(idx.levels))
	for i, l := range idx.levels {
		out[i] = len(l)
	}
	return out
}
