// Branchless last-mile search and prefetch-pipelined batch probes.
//
// The per-lookup budget at production scale is dominated by the last
// mile (Section 4.2.3 of the paper): a handful of data-array loads plus
// the branch mispredicts of a classic binary search. The functions in
// this file attack both terms. BranchlessSearch replaces the
// unpredictable compare-and-branch with a conditional-move ladder over
// power-of-two widths, so the only pipeline hazard left is the load
// itself. LinearSearch (in search.go) uses a sentinel-free
// compare-accumulate block scan with the same property. NarrowBatch and
// SearchBatch then attack the loads: a batch of independent searches is
// advanced one probe step per round, so the random data-array loads of
// different keys are all in flight at once instead of each search
// serializing behind its own log2(width) dependent-miss chain — the
// software-prefetch-style pipelining the table layer's GetBatch
// introduced, pushed down into the search layer where every consumer
// (table probe rounds, index-family batch lookups, bench harnesses)
// can reach it.
package search

import (
	"math/bits"

	"repro/internal/core"
)

// BranchlessSearch locates the lower bound of key within the bound
// using a branch-free fixed-width binary search: one conditional step
// reduces the bound to the largest power-of-two width, then a ladder of
// exact halvings advances lo by (width>>1) whenever the probed key is
// small. Each comparison is materialized with SETcc and folded into lo
// by mask arithmetic (lo += half & -c), so the ladder carries no
// data-dependent branches — the hard-to-predict comparisons of a
// random workload cost no mispredict flushes. The explicit mask form
// matters: a plain `if keys[m] < key { lo += half }` stays a branch,
// because the compiler refuses to put a load's latency on a loop-
// carried dependency via CMOV.
func BranchlessSearch(keys []core.Key, key core.Key, b core.Bound) int {
	lo, width := b.Lo, b.Hi-b.Lo
	if width <= 0 {
		return lo
	}
	// Reduce to a power-of-two width: the lower bound lies in
	// [lo, lo+width]; comparing at lo+width-w either keeps [lo, lo+w]
	// or shifts the base so the remaining window is exactly w wide.
	w := 1 << (bits.Len(uint(width)) - 1)
	if w != width {
		c := 0
		if keys[lo+width-w] < key {
			c = 1
		}
		lo += (width - w) & -c
	}
	// Exact-halving ladder: invariant lb(key) ∈ [lo, lo+w].
	for w > 1 {
		half := w >> 1
		c := 0
		if keys[lo+half-1] < key {
			c = 1
		}
		lo += half & -c
		w = half
	}
	c := 0
	if keys[lo] < key {
		c = 1
	}
	return lo + c
}

// narrowStop is the bound width at which the pipelined rounds of
// NarrowBatch stop: at 8 keys the whole bound spans at most two cache
// lines, every remaining probe hits, and independent-probe scheduling
// has nothing left to overlap.
const narrowStop = 8

// NarrowBatch runs pipelined binary probe rounds over a batch of
// searches: each round advances every bound wider than stopWidth by one
// branchless probe step. The probes of a round touch independent
// cache lines, so the memory system overlaps their misses — the batch
// resolves in ~log2(maxWidth) rounds of parallel loads instead of
// len(qs) serial chains. Bounds are narrowed in place in the closed
// form Lo <= lb <= Hi (a probe that moves Hi can land it exactly on
// the lower bound; every Fn in this package resolves that form
// correctly, exactly as the intermediate states of a classic binary
// search do). stopWidth < 1 defaults to 8; maxRounds <= 0 means no
// cap.
func NarrowBatch(keys []core.Key, qs []core.Key, bs []core.Bound, stopWidth, maxRounds int) {
	if stopWidth < 1 {
		stopWidth = narrowStop
	}
	if maxRounds <= 0 {
		maxRounds = bits.UintSize
	}
	bs = bs[:len(qs)] // one bounds check here, none in the rounds
	for round := 0; round < maxRounds; round++ {
		active := false
		for i := range bs {
			lo, hi := bs[i].Lo, bs[i].Hi
			if hi-lo <= stopWidth {
				continue
			}
			active = true
			mid := int(uint(lo+hi) >> 1)
			if keys[mid] < qs[i] {
				bs[i].Lo = mid + 1
			} else {
				bs[i].Hi = mid
			}
		}
		if !active {
			return
		}
	}
}

// SearchBatch resolves a batch of independent searches: pos[i] receives
// the absolute lower-bound position of qs[i] within bs[i]. Wide bounds
// are first narrowed with pipelined probe rounds (NarrowBatch), then
// each key finishes with the branchless ladder over its residual
// window. bs is consumed as scratch (narrowed in place). len(bs) and
// len(pos) must be at least len(qs).
func SearchBatch(keys []core.Key, qs []core.Key, bs []core.Bound, pos []int) {
	bs = bs[:len(qs)]
	pos = pos[:len(qs)]
	NarrowBatch(keys, qs, bs, narrowStop, 0)
	for i, x := range qs {
		pos[i] = BranchlessSearch(keys, x, bs[i])
	}
}
