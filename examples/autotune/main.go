// Autotune: show how the CDFShop-style tuner adapts the RMI
// architecture to each dataset's CDF — the flexibility/complexity
// tradeoff the paper discusses in Section 3.4.
//
// Easy datasets (amzn, wiki) get cheap linear stages; the erratic osm
// CDF drives the tuner to larger branching factors, and the error
// statistics make the difficulty visible.
package main

import (
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/pgm"
	"repro/internal/rmi"
	"repro/internal/rs"
)

func main() {
	const n = 200_000
	const budget = 512 << 10 // 512 KiB index budget

	fmt.Printf("%-6s %-28s %10s %10s %10s %10s\n",
		"data", "tuned RMI", "rmi KiB", "rmi log2e", "pgm segs", "rs knots")
	for _, name := range dataset.All() {
		keys := dataset.MustGenerate(name, n, 42)

		cfg := rmi.Tune(keys, budget)
		idx, err := rmi.New(keys, cfg)
		if err != nil {
			log.Fatal(err)
		}

		// The bottom-up structures expose the same difficulty through
		// their segment counts at a fixed error.
		p, err := pgm.New(keys, 32)
		if err != nil {
			log.Fatal(err)
		}
		r, err := rs.New(keys, rs.Config{SplineErr: 32, RadixBits: 14})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-6s %-28s %10.1f %10.2f %10d %10d\n",
			name, cfg, float64(idx.SizeBytes())/1024, idx.AvgLog2Error(),
			p.NumSegments(), r.NumPoints())
	}
	fmt.Println("\nHigher log2 error / more segments at equal budget = harder CDF (osm).")
}
