package fst

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/indextest"
)

func TestBitvectorRankSelect(t *testing.T) {
	var bv bitvector
	pattern := make([]bool, 1000)
	rng := rand.New(rand.NewSource(1))
	for i := range pattern {
		pattern[i] = rng.Intn(3) == 0
		bv.append(pattern[i])
	}
	bv.finish()
	ones := 0
	for i, bit := range pattern {
		if bv.get(i) != bit {
			t.Fatalf("get(%d) = %v", i, bv.get(i))
		}
		if bit {
			ones++
			if got := bv.select1(ones); got != i {
				t.Fatalf("select1(%d) = %d, want %d", ones, got, i)
			}
		}
		if got := bv.rank1(i); got != ones {
			t.Fatalf("rank1(%d) = %d, want %d", i, got, ones)
		}
	}
	if bv.ones != ones {
		t.Fatalf("ones = %d, want %d", bv.ones, ones)
	}
}

func TestBitvectorDense(t *testing.T) {
	var bv bitvector
	for i := 0; i < 500; i++ {
		bv.append(true)
	}
	bv.finish()
	for k := 1; k <= 500; k++ {
		if got := bv.select1(k); got != k-1 {
			t.Fatalf("select1(%d) = %d", k, got)
		}
	}
}

func TestBitvectorSparse(t *testing.T) {
	var bv bitvector
	positions := []int{0, 63, 64, 127, 500, 900}
	cur := 0
	for _, p := range positions {
		for cur < p {
			bv.append(false)
			cur++
		}
		bv.append(true)
		cur++
	}
	bv.finish()
	for k, p := range positions {
		if got := bv.select1(k + 1); got != p {
			t.Fatalf("select1(%d) = %d, want %d", k+1, got, p)
		}
	}
}

func TestTrieCeilingMatchesReference(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Amzn, 5000, 1)
	vals := make([]int32, len(keys))
	for i := range vals {
		vals[i] = int32(i)
	}
	tr, err := NewTrie(keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Count() != len(keys) {
		t.Fatalf("count = %d", tr.Count())
	}
	for _, x := range indextest.ProbesFor(keys[:1000]) {
		want := core.LowerBound(keys, x)
		v, found := tr.Ceiling(x)
		if want == len(keys) {
			if found {
				t.Fatalf("Ceiling(%d): found %d, want none", x, v)
			}
			continue
		}
		if !found || v != int32(want) {
			t.Fatalf("Ceiling(%d) = (%d,%v), want %d", x, v, found, want)
		}
	}
}

func TestTrieRejectsBadInput(t *testing.T) {
	if _, err := NewTrie(nil, nil); err == nil {
		t.Error("empty should error")
	}
	if _, err := NewTrie([]core.Key{1, 2}, []int32{0}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := NewTrie([]core.Key{2, 1}, []int32{0, 1}); err == nil {
		t.Error("unsorted should error")
	}
	if _, err := NewTrie([]core.Key{2, 2}, []int32{0, 1}); err == nil {
		t.Error("duplicates should error")
	}
}

func TestTrieSingleKey(t *testing.T) {
	tr, err := NewTrie([]core.Key{0xDEADBEEF}, []int32{7})
	if err != nil {
		t.Fatal(err)
	}
	if v, found := tr.Ceiling(0xDEADBEEF); !found || v != 7 {
		t.Fatalf("exact: (%d,%v)", v, found)
	}
	if v, found := tr.Ceiling(0); !found || v != 7 {
		t.Fatalf("below: (%d,%v)", v, found)
	}
	if _, found := tr.Ceiling(0xDEADBEF0); found {
		t.Fatal("above should not find")
	}
}

func TestTrieAdjacentKeys(t *testing.T) {
	// Keys differing in one bit exercise deep shared paths.
	keys := []core.Key{
		0x1000000000000000, 0x1000000000000001, 0x1000000000000002,
		0x10000000000000FF, 0x1000000000000100,
	}
	vals := []int32{0, 1, 2, 3, 4}
	tr, err := NewTrie(keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if v, found := tr.Ceiling(k); !found || v != int32(i) {
			t.Fatalf("Ceiling(%x) = (%d,%v)", k, v, found)
		}
	}
	if v, found := tr.Ceiling(0x1000000000000003); !found || v != 3 {
		t.Fatalf("gap: (%d,%v)", v, found)
	}
}

func TestFSTIndexValidity(t *testing.T) {
	for _, name := range dataset.All() {
		keys := dataset.MustGenerate(name, 3000, 1)
		probes := indextest.ProbesFor(keys)
		for _, stride := range []int{1, 7, 100} {
			idx, err := Builder{Stride: stride}.Build(keys)
			if err != nil {
				t.Fatalf("%s stride=%d: %v", name, stride, err)
			}
			indextest.CheckValidity(t, idx, keys, probes)
		}
	}
}

func TestFSTDuplicateData(t *testing.T) {
	keys := []core.Key{3, 3, 3, 8, 8, 10, 11, 11, 50}
	for _, stride := range []int{1, 2} {
		idx, err := Builder{Stride: stride}.Build(keys)
		if err != nil {
			t.Fatal(err)
		}
		indextest.CheckValidity(t, idx, keys, indextest.ProbesFor(keys))
	}
}

func TestFSTBuilderName(t *testing.T) {
	if (Builder{}).Name() != "FST" {
		t.Error("name")
	}
	keys := dataset.MustGenerate(dataset.Wiki, 1000, 1)
	idx := indextest.CheckBuilder(t, Builder{Stride: 2}, keys)
	if idx.Name() != "FST" || idx.SizeBytes() <= 0 {
		t.Error("metadata")
	}
}

// Property: trie ceiling agrees with the sorted-array reference.
func TestTrieProperty(t *testing.T) {
	f := func(raw []uint64, x uint64) bool {
		uniq := map[uint64]bool{}
		var keys []core.Key
		for _, k := range raw {
			if !uniq[k] {
				uniq[k] = true
				keys = append(keys, k)
			}
		}
		if len(keys) == 0 {
			return true
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		vals := make([]int32, len(keys))
		for i := range vals {
			vals[i] = int32(i)
		}
		tr, err := NewTrie(keys, vals)
		if err != nil {
			return false
		}
		want := core.LowerBound(keys, x)
		v, found := tr.Ceiling(x)
		if want == len(keys) {
			return !found
		}
		return found && v == int32(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
