// Package bench is the benchmark harness: it builds index structures
// over the benchmark datasets, measures lookups under the paper's
// regimes (warm tight loop, serialized "fenced" loop, cold cache,
// multithreaded), and regenerates every table and figure of the
// paper's evaluation (Section 4). Beyond the paper it measures the
// repo's serving layer: batched and sharded lookup sweeps (serve) and
// YCSB-style mixed read/write workloads over the mutable store
// (serve-write). Experiments self-register in a catalog
// (Register/Experiments/Find) and produce typed report.Tables; the
// sosd CLI renders them through the report sinks. See DESIGN.md for
// the experiment index.
package bench

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/registry"
	"repro/internal/search"
	"repro/internal/table"
)

// Env bundles a dataset with its lookup workload and payloads.
type Env struct {
	Dataset  dataset.Name
	Keys     []core.Key
	Payloads []uint64
	Lookups  []core.Key
}

// NewEnv generates a benchmark environment. n is the dataset size and
// m the number of lookups; the paper uses 200M keys and 10M lookups,
// scaled down per DESIGN.md substitution 2.
func NewEnv(name dataset.Name, n, m int, seed uint64) (*Env, error) {
	keys, err := dataset.Generate(name, n, seed)
	if err != nil {
		return nil, err
	}
	return &Env{
		Dataset:  name,
		Keys:     keys,
		Payloads: dataset.Payloads(n, seed),
		Lookups:  dataset.Lookups(keys, m, seed),
	}, nil
}

// Checksum returns the expected payload sum over the environment's
// lookups; every measurement loop must reproduce it (the paper sums
// payloads "to ensure the results are accurate").
func (e *Env) Checksum() uint64 {
	var sum uint64
	for _, x := range e.Lookups {
		sum += e.Payloads[core.LowerBound(e.Keys, x)]
	}
	return sum
}

// Measurement is one timed lookup run.
type Measurement struct {
	NsPerLookup float64
	Checksum    uint64
}

// MeasureWarm times the paper's standard regime: a tight loop of
// lookups with everything hot in cache, using fn for the last mile.
func MeasureWarm(e *Env, idx core.Index, fn search.Fn) Measurement {
	// One warm-up pass.
	runLookups(e, idx, fn)
	start := time.Now()
	sum := runLookups(e, idx, fn)
	elapsed := time.Since(start)
	return Measurement{
		NsPerLookup: float64(elapsed.Nanoseconds()) / float64(len(e.Lookups)),
		Checksum:    sum,
	}
}

func runLookups(e *Env, idx core.Index, fn search.Fn) uint64 {
	var sum uint64
	for _, x := range e.Lookups {
		b := idx.Lookup(x)
		pos := fn(e.Keys, x, b)
		if pos < len(e.Payloads) {
			sum += e.Payloads[pos]
		}
	}
	return sum
}

// MeasureFenced times the serialized regime of Figure 15: each lookup
// key is made data-dependent on the previous lookup's payload, so the
// CPU cannot overlap consecutive lookups. This replaces the paper's
// mfence, which Go cannot emit (DESIGN.md substitution 4). The
// dependency steers which lookup runs next without changing the key
// distribution.
func MeasureFenced(e *Env, idx core.Index, fn search.Fn) Measurement {
	run := func() (uint64, int) {
		var sum uint64
		n := len(e.Lookups)
		ops := 0
		i := 0
		for ops < n {
			x := e.Lookups[i]
			b := idx.Lookup(x)
			pos := fn(e.Keys, x, b)
			if pos < len(e.Payloads) {
				sum += e.Payloads[pos]
			}
			// The next index depends on the payload just read: a true
			// data dependency chain.
			i = (i + 1 + int(sum&1)) % n
			ops++
		}
		return sum, ops
	}
	run() // warm up
	start := time.Now()
	sum, ops := run()
	elapsed := time.Since(start)
	return Measurement{
		NsPerLookup: float64(elapsed.Nanoseconds()) / float64(ops),
		Checksum:    sum,
	}
}

// thrash is the cold-cache eviction buffer (must exceed the LLC).
var thrash []byte
var thrashOnce sync.Once

// MeasureCold times the cold-cache regime of Figure 14: the cache is
// evicted between lookups by streaming over a buffer larger than the
// LLC. coldOps lookups are measured (full thrashing per lookup makes
// the full workload impractical, as in the paper's flush).
func MeasureCold(e *Env, idx core.Index, fn search.Fn, coldOps int) Measurement {
	thrashOnce.Do(func() { thrash = make([]byte, 64<<20) })
	if coldOps > len(e.Lookups) {
		coldOps = len(e.Lookups)
	}
	var sum uint64
	var total time.Duration
	var sink byte
	for i := 0; i < coldOps; i++ {
		for j := 0; j < len(thrash); j += 64 {
			sink += thrash[j]
		}
		x := e.Lookups[i]
		start := time.Now()
		b := idx.Lookup(x)
		pos := fn(e.Keys, x, b)
		total += time.Since(start)
		if pos < len(e.Payloads) {
			sum += e.Payloads[pos]
		}
	}
	_ = sink
	return Measurement{
		NsPerLookup: float64(total.Nanoseconds()) / float64(coldOps),
		Checksum:    sum,
	}
}

// MeasureThroughput runs the multithreaded regime of Figure 16:
// threads goroutines each execute the full lookup workload; the result
// is aggregate lookups per second. fenced selects the serialized
// per-thread loop.
func MeasureThroughput(e *Env, idx core.Index, fn search.Fn, threads int, fenced bool) float64 {
	if threads < 1 {
		threads = 1
	}
	runLookups(e, idx, fn) // warm caches and fault pages before timing
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			if fenced {
				MeasureFencedOnce(e, idx, fn, tid)
				return
			}
			var sum uint64
			n := len(e.Lookups)
			for i := 0; i < n; i++ {
				x := e.Lookups[(i+tid*7919)%n]
				b := idx.Lookup(x)
				pos := fn(e.Keys, x, b)
				if pos < len(e.Payloads) {
					sum += e.Payloads[pos]
				}
			}
			sink(sum)
		}(t)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	return float64(threads*len(e.Lookups)) / elapsed
}

// MeasureFencedOnce is one serialized pass, offset per thread.
func MeasureFencedOnce(e *Env, idx core.Index, fn search.Fn, tid int) {
	var sum uint64
	n := len(e.Lookups)
	i := (tid * 7919) % n
	for ops := 0; ops < n; ops++ {
		x := e.Lookups[i]
		b := idx.Lookup(x)
		pos := fn(e.Keys, x, b)
		if pos < len(e.Payloads) {
			sum += e.Payloads[pos]
		}
		i = (i + 1 + int(sum&1)) % n
	}
	sink(sum)
}

var sinkVal uint64
var sinkMu sync.Mutex

// sink defeats dead-code elimination for concurrent sums.
func sink(v uint64) {
	sinkMu.Lock()
	sinkVal += v
	sinkMu.Unlock()
}

// MeasureBuild times index construction.
func MeasureBuild(b core.Builder, keys []core.Key) (core.Index, time.Duration, error) {
	start := time.Now()
	idx, err := b.Build(keys)
	return idx, time.Since(start), err
}

// AvgLog2Width measures the empirical mean log2 search-bound width of
// an index over the environment's lookups — the paper's log2-error
// metric, computed uniformly for every structure.
func AvgLog2Width(e *Env, idx core.Index) float64 {
	total := 0.0
	for _, x := range e.Lookups {
		total += float64(search.BinarySteps(idx.Lookup(x).Width()))
	}
	return total / float64(len(e.Lookups))
}

// MaxThreads returns the thread counts swept in Figure 16a.
func MaxThreads() []int {
	max := runtime.NumCPU()
	var out []int
	for t := 1; t <= max; t *= 2 {
		out = append(out, t)
	}
	if out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}

// MB renders a byte count as megabytes.
func MB(bytes int) float64 { return float64(bytes) / (1 << 20) }

// BestVariant builds every configuration of a family and returns the
// one with the lowest warm lookup time (the paper's "fastest variant").
func BestVariant(e *Env, family string, fn func(*Env, core.Index) float64) (registry.NamedBuilder, core.Index, float64) {
	var bestNB registry.NamedBuilder
	var bestIdx core.Index
	best := -1.0
	for _, nb := range registry.Sweep(family, e.Keys) {
		idx, err := nb.Builder.Build(e.Keys)
		if err != nil {
			continue
		}
		v := fn(e, idx)
		if best < 0 || v < best {
			best, bestIdx, bestNB = v, idx, nb
		}
	}
	return bestNB, bestIdx, best
}

// Table wraps the environment's data and a built index into a serving
// Table, the unit measured by the batched regime.
func (e *Env) Table(idx core.Index, fn search.Fn) *table.Table {
	t, err := table.New(e.Keys, e.Payloads, idx, fn)
	if err != nil {
		panic(err) // Env invariants (sorted keys, len match) rule this out
	}
	return t
}

// MeasureWarmBatch times the batched serving regime: the lookup
// workload is driven through Table.GetBatch in fixed-size batches,
// amortizing bound computation and last-mile search. Comparable to
// MeasureWarm on the same environment and index.
func MeasureWarmBatch(e *Env, t *table.Table, batch int) Measurement {
	if batch < 1 {
		batch = ServeBatchSize
	}
	run := func() uint64 {
		var sum uint64
		out := make([]uint64, batch)
		for i := 0; i < len(e.Lookups); i += batch {
			end := i + batch
			if end > len(e.Lookups) {
				end = len(e.Lookups)
			}
			chunk := e.Lookups[i:end]
			t.GetBatch(chunk, out[:len(chunk)])
			for _, v := range out[:len(chunk)] {
				sum += v
			}
		}
		return sum
	}
	run() // warm up
	start := time.Now()
	sum := run()
	elapsed := time.Since(start)
	return Measurement{
		NsPerLookup: float64(elapsed.Nanoseconds()) / float64(len(e.Lookups)),
		Checksum:    sum,
	}
}
