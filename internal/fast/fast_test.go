package fast

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/indextest"
)

func TestFASTValidityAllDatasets(t *testing.T) {
	for _, name := range dataset.All() {
		keys := dataset.MustGenerate(name, 5000, 1)
		probes := indextest.ProbesFor(keys)
		for _, stride := range []int{1, 3, 16, 100, 4999} {
			idx, err := Builder{Stride: stride}.Build(keys)
			if err != nil {
				t.Fatalf("%s stride=%d: %v", name, stride, err)
			}
			indextest.CheckValidity(t, idx, keys, probes)
		}
	}
}

func TestFASTCeilingMatchesReference(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Amzn, 20000, 1)
	tr, err := NewTree(keys)
	if err != nil {
		t.Fatal(err)
	}
	probes := indextest.ProbesFor(keys[:2000])
	for _, x := range probes {
		want := core.LowerBound(keys, x)
		if got := tr.Ceiling(x); got != want {
			t.Fatalf("Ceiling(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestFASTSmallTrees(t *testing.T) {
	for _, n := range []int{1, 2, blockKeys - 1, blockKeys, blockKeys + 1, blockKeys * blockKeys, 1000} {
		keys := make([]core.Key, n)
		for i := range keys {
			keys[i] = core.Key(i*5 + 3)
		}
		tr, err := NewTree(keys)
		if err != nil {
			t.Fatal(err)
		}
		for i, k := range keys {
			if got := tr.Ceiling(k); got != i {
				t.Fatalf("n=%d: Ceiling(%d) = %d, want %d", n, k, got, i)
			}
			if got := tr.Ceiling(k + 1); got != i+1 {
				t.Fatalf("n=%d: Ceiling(%d) = %d, want %d", n, k+1, got, i+1)
			}
		}
		if got := tr.Ceiling(0); got != 0 {
			t.Fatalf("n=%d: Ceiling(0) = %d", n, got)
		}
	}
}

func TestFASTEmpty(t *testing.T) {
	if _, err := NewTree[core.Key](nil); err == nil {
		t.Fatal("expected error")
	}
	if _, err := (Builder{}).Build(nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestFASTDuplicates(t *testing.T) {
	keys := []core.Key{3, 3, 3, 3, 9, 9, 12, 12, 12, 40}
	idx, err := Builder{Stride: 1}.Build(keys)
	if err != nil {
		t.Fatal(err)
	}
	indextest.CheckValidity(t, idx, keys, indextest.ProbesFor(keys))
	idx2, err := Builder{Stride: 3}.Build(keys)
	if err != nil {
		t.Fatal(err)
	}
	indextest.CheckValidity(t, idx2, keys, indextest.ProbesFor(keys))
}

func TestFAST32(t *testing.T) {
	keys := make([]uint32, 3000)
	for i := range keys {
		keys[i] = uint32(i * 11)
	}
	tr, err := NewTree(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if got := tr.Ceiling(k); got != i {
			t.Fatalf("Ceiling(%d) = %d, want %d", k, got, i)
		}
	}
	// 32-bit tree must be about half the size of the 64-bit one.
	keys64 := make([]core.Key, len(keys))
	for i, k := range keys {
		keys64[i] = core.Key(k)
	}
	tr64, _ := NewTree(keys64)
	if tr.SizeBytes()*2 != tr64.SizeBytes() {
		t.Errorf("32-bit size %d, 64-bit size %d", tr.SizeBytes(), tr64.SizeBytes())
	}
}

func TestFASTHeight(t *testing.T) {
	keys := make([]core.Key, blockKeys*blockKeys*blockKeys)
	for i := range keys {
		keys[i] = core.Key(i)
	}
	tr, _ := NewTree(keys)
	if tr.Height() != 3 {
		t.Errorf("height = %d, want 3", tr.Height())
	}
}

func TestFASTSizeShrinksWithStride(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Wiki, 20000, 1)
	full, _ := Builder{Stride: 1}.Build(keys)
	sub, _ := Builder{Stride: 8}.Build(keys)
	if sub.SizeBytes() >= full.SizeBytes() {
		t.Errorf("stride 8 (%d) not smaller than stride 1 (%d)", sub.SizeBytes(), full.SizeBytes())
	}
}

func TestFASTBuilderName(t *testing.T) {
	if (Builder{}).Name() != "FAST" {
		t.Error("name")
	}
	keys := dataset.MustGenerate(dataset.Face, 2000, 1)
	idx := indextest.CheckBuilder(t, Builder{Stride: 2}, keys)
	if idx.Name() != "FAST" {
		t.Error("index name")
	}
}

// Property: Ceiling agrees with the reference lower bound for random
// sorted arrays.
func TestFASTProperty(t *testing.T) {
	f := func(raw []uint64, x uint64) bool {
		if len(raw) == 0 {
			return true
		}
		keys := make([]core.Key, len(raw))
		copy(keys, raw)
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		tr, err := NewTree(keys)
		if err != nil {
			return false
		}
		return tr.Ceiling(x) == core.LowerBound(keys, x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
