package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/indextest"
)

func TestBTreeValidityAllDatasets(t *testing.T) {
	for _, name := range dataset.All() {
		keys := dataset.MustGenerate(name, 5000, 1)
		probes := indextest.ProbesFor(keys)
		for _, stride := range []int{1, 2, 16, 100, 5000, 9999} {
			for _, interp := range []bool{false, true} {
				idx, err := Builder{Stride: stride, Interpolate: interp}.Build(keys)
				if err != nil {
					t.Fatalf("%s stride=%d: %v", name, stride, err)
				}
				indextest.CheckValidity(t, idx, keys, probes)
			}
		}
	}
}

func TestBTreeStride1Exact(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Amzn, 3000, 1)
	idx, _ := Builder{Stride: 1}.Build(keys)
	for i, k := range keys {
		b := idx.Lookup(k)
		if b.Width() != 1 || b.Lo != i {
			t.Fatalf("stride 1 must be exact: key %d got %v want [%d,%d)", k, b, i, i+1)
		}
	}
}

func TestBTreeStrideBoundsWidth(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Wiki, 10000, 1)
	for _, stride := range []int{4, 64} {
		idx, _ := Builder{Stride: stride}.Build(keys)
		for _, k := range keys[:1000] {
			if w := idx.Lookup(k).Width(); w > stride {
				t.Fatalf("stride %d: bound width %d", stride, w)
			}
		}
	}
}

func TestBTreeSizeShrinksWithStride(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Amzn, 20000, 1)
	full, _ := Builder{Stride: 1}.Build(keys)
	half, _ := Builder{Stride: 2}.Build(keys)
	if half.SizeBytes() >= full.SizeBytes() {
		t.Errorf("stride 2 (%d B) should be smaller than stride 1 (%d B)", half.SizeBytes(), full.SizeBytes())
	}
}

func TestBTreeEmpty(t *testing.T) {
	if _, err := (Builder{Stride: 1}).Build(nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestBTreeSingleKey(t *testing.T) {
	keys := []core.Key{42}
	idx, err := Builder{Stride: 1}.Build(keys)
	if err != nil {
		t.Fatal(err)
	}
	indextest.CheckValidity(t, idx, keys, []core.Key{0, 41, 42, 43, ^core.Key(0)})
}

func TestBTreeDuplicates(t *testing.T) {
	keys := []core.Key{5, 5, 5, 9, 9, 9, 9, 9, 14, 20, 20, 31}
	for _, stride := range []int{1, 3} {
		idx, err := Builder{Stride: stride}.Build(keys)
		if err != nil {
			t.Fatal(err)
		}
		indextest.CheckValidity(t, idx, keys, indextest.ProbesFor(keys))
	}
}

func TestBulkLoadStructure(t *testing.T) {
	for _, n := range []int{0, 1, fanout, fanout + 1, fanout * fanout, 12345} {
		keys := make([]uint64, n)
		vals := make([]int32, n)
		for i := range keys {
			keys[i] = uint64(i * 3)
			vals[i] = int32(i)
		}
		tr, err := NewTree(keys, vals, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Count() != n {
			t.Fatalf("count = %d, want %d", tr.Count(), n)
		}
	}
}

func TestCeilingSemantics(t *testing.T) {
	keys := []uint64{10, 20, 30, 40, 50}
	vals := []int32{0, 1, 2, 3, 4}
	tr, _ := NewTree(keys, vals, false)
	cases := []struct {
		x      uint64
		val    int32
		found  bool
		pred   int32
		predOK bool
	}{
		{5, 0, true, 0, false},
		{10, 0, true, 0, false},
		{11, 1, true, 0, true},
		{30, 2, true, 1, true},
		{45, 4, true, 3, true},
		{50, 4, true, 3, true},
		{51, 0, false, 4, true},
	}
	for _, tc := range cases {
		val, found, pred, predOK := tr.Ceiling(tc.x)
		if found != tc.found || predOK != tc.predOK ||
			(found && val != tc.val) || (predOK && pred != tc.pred) {
			t.Errorf("Ceiling(%d) = (%d,%v,%d,%v), want (%d,%v,%d,%v)",
				tc.x, val, found, pred, predOK, tc.val, tc.found, tc.pred, tc.predOK)
		}
	}
}

func TestInsertMaintainsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr, _ := NewTree[uint64](nil, nil, false)
	inserted := make([]uint64, 0, 2000)
	for i := 0; i < 2000; i++ {
		k := uint64(rng.Intn(10000))
		tr.Insert(k, int32(i))
		inserted = append(inserted, k)
		if i%500 == 0 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Count() != 2000 {
		t.Fatalf("count = %d", tr.Count())
	}
	sort.Slice(inserted, func(i, j int) bool { return inserted[i] < inserted[j] })
	// Ceiling of every key must find an entry with a key >= x.
	for _, x := range []uint64{0, 1, 500, 5000, 9999, 10000, 20000} {
		_, found, _, _ := tr.Ceiling(x)
		wantFound := x <= inserted[len(inserted)-1]
		if found != wantFound {
			t.Errorf("Ceiling(%d): found=%v want %v", x, found, wantFound)
		}
	}
}

func TestInsertIntoBulkLoaded(t *testing.T) {
	keys := make([]uint64, 1000)
	vals := make([]int32, 1000)
	for i := range keys {
		keys[i] = uint64(i * 10)
		vals[i] = int32(i)
	}
	tr, _ := NewTree(keys, vals, false)
	for i := 0; i < 500; i++ {
		tr.Insert(uint64(i*20+5), int32(1000+i))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Count() != 1500 {
		t.Fatalf("count = %d", tr.Count())
	}
}

func TestBTree32(t *testing.T) {
	// Generic instantiation at uint32 for the key-size experiment.
	keys := make([]uint32, 5000)
	for i := range keys {
		keys[i] = uint32(i * 7)
	}
	vals := make([]int32, len(keys))
	for i := range vals {
		vals[i] = int32(i)
	}
	tr, err := NewTree(keys, vals, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		val, found, _, _ := tr.Ceiling(k)
		if !found || val != int32(i) {
			t.Fatalf("Ceiling(%d) = (%d, %v)", k, val, found)
		}
	}
}

func TestIBTreeName(t *testing.T) {
	if (Builder{Interpolate: true}).Name() != "IBTree" {
		t.Error("interpolating builder should be IBTree")
	}
	if (Builder{}).Name() != "BTree" {
		t.Error("plain builder should be BTree")
	}
}

func TestHeightGrows(t *testing.T) {
	keys := dataset.MustGenerate(dataset.Amzn, 100000, 1)
	big, _ := Builder{Stride: 1}.Build(keys)
	small, _ := Builder{Stride: 1000}.Build(keys)
	if big.(*Index).Height() <= small.(*Index).Height() {
		t.Errorf("height: %d vs %d", big.(*Index).Height(), small.(*Index).Height())
	}
}

// Property test: tree lookups agree with sort-based reference on
// random data, random strides.
func TestBTreeProperty(t *testing.T) {
	f := func(raw []uint64, strideRaw uint8, x uint64) bool {
		if len(raw) == 0 {
			return true
		}
		keys := make([]core.Key, len(raw))
		copy(keys, raw)
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		stride := int(strideRaw)%8 + 1
		idx, err := Builder{Stride: stride}.Build(keys)
		if err != nil {
			return false
		}
		return core.ValidBound(keys, x, idx.Lookup(x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
