// Package obs is the live observability layer: a dependency-light
// metrics registry (atomic counters, gauges, and histograms reusing
// stats.Histogram, registered under Prometheus-style names with
// labels), a sampled request tracer that decomposes request latency
// into phases, and a bounded in-memory event journal for flushes and
// compactions. The hot path is lock-free — recording into any handle
// is one atomic op — and every handle tolerates a nil receiver, so
// instrumented code pays a single predictable nil check when
// observability is disabled. See DESIGN.md "Observability".
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// Label is one name="value" dimension of a metric series.
type Label struct {
	Key   string
	Value string
}

// Var is one flattened (series id, value) pair — the JSON /vars and
// stats-frame form of a registry snapshot. Histograms flatten into
// _count/_sum/_p50/_p99/_max entries.
type Var struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

func (k kind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "summary"
	}
}

// series is one registered metric instance.
type series struct {
	name   string // base metric name (family)
	id     string // rendered name{labels} identity
	kind   kind
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
	labels []Label
}

// Registry holds named metric series. Registration takes a mutex;
// recording into the returned handles is lock-free. A nil *Registry is
// valid everywhere and hands out nil handles whose methods no-op —
// code instruments unconditionally and the caller decides at
// construction whether the metrics exist.
//
// Series identities (name plus label set) must be unique and a base
// name keeps one metric type; violations panic at registration time,
// like a duplicate bench.Register — they are assembly mistakes, not
// runtime conditions. Register one Store or Server per Registry.
type Registry struct {
	mu     sync.Mutex
	series []*series
	types  map[string]kind
	ids    map[string]struct{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{types: map[string]kind{}, ids: map[string]struct{}{}}
}

// register validates and records one series under the registry lock.
func (r *Registry) register(s *series) {
	if !validName(s.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", s.name))
	}
	for _, l := range s.labels {
		if !validLabelKey(l.Key) {
			panic(fmt.Sprintf("obs: invalid label key %q on %q", l.Key, s.name))
		}
	}
	s.id = renderID(s.name, s.labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if k, ok := r.types[s.name]; ok && k != s.kind {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", s.name, k.promType(), s.kind.promType()))
	}
	if _, dup := r.ids[s.id]; dup {
		panic(fmt.Sprintf("obs: duplicate metric series %q", s.id))
	}
	r.types[s.name] = s.kind
	r.ids[s.id] = struct{}{}
	r.series = append(r.series, s)
}

// Counter registers and returns a monotonically increasing counter.
// Returns nil (a valid no-op handle) on a nil registry.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.register(&series{name: name, kind: kindCounter, c: c, labels: labels})
	return c
}

// Gauge registers and returns a settable integer gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.register(&series{name: name, kind: kindGauge, g: g, labels: labels})
	return g
}

// CounterFunc registers a counter whose value is computed at scrape
// time — the zero-hot-path-cost binding for a cumulative counter the
// instrumented code already maintains (an atomic it increments anyway).
// fn must be safe to call from any goroutine and monotone.
func (r *Registry) CounterFunc(name string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(&series{name: name, kind: kindCounterFunc, fn: fn, labels: labels})
}

// GaugeFunc registers a gauge computed at scrape time. fn must be safe
// to call from any goroutine.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(&series{name: name, kind: kindGaugeFunc, fn: fn, labels: labels})
}

// Histogram registers and returns a fresh latency histogram, exposed
// as a Prometheus summary (p50/p90/p99/p999 quantiles plus _sum and
// _count).
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	h := &Histogram{h: &stats.Histogram{}}
	r.register(&series{name: name, kind: kindHistogram, h: h, labels: labels})
	return h
}

// AttachHistogram exposes an existing stats.Histogram the instrumented
// code already records into (the scrape-time sibling of CounterFunc).
func (r *Registry) AttachHistogram(name string, h *stats.Histogram, labels ...Label) {
	if r == nil || h == nil {
		return
	}
	r.register(&series{name: name, kind: kindHistogram, h: &Histogram{h: h}, labels: labels})
}

// snapshot returns the registered series under the lock; values are
// read outside it (handles are atomic, funcs lock what they need).
func (r *Registry) snapshot() []*series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*series, len(r.series))
	copy(out, r.series)
	return out
}

// Vars flattens the registry into sorted (name, value) pairs — the
// /vars and stats-frame snapshot. Histograms expand into
// _count/_sum/_p50/_p99/_max pseudo-series.
func (r *Registry) Vars() []Var {
	ss := r.snapshot()
	if len(ss) == 0 {
		return nil
	}
	vars := make([]Var, 0, len(ss))
	for _, s := range ss {
		switch s.kind {
		case kindCounter:
			vars = append(vars, Var{s.id, float64(s.c.Value())})
		case kindGauge:
			vars = append(vars, Var{s.id, float64(s.g.Value())})
		case kindCounterFunc, kindGaugeFunc:
			vars = append(vars, Var{s.id, s.fn()})
		case kindHistogram:
			h := s.h.h.Snapshot()
			vars = append(vars,
				Var{s.id + "_count", float64(h.Count())},
				Var{s.id + "_sum", float64(h.Sum())},
				Var{s.id + "_p50", float64(h.Quantile(0.50))},
				Var{s.id + "_p99", float64(h.Quantile(0.99))},
				Var{s.id + "_max", float64(h.Max())},
			)
		}
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Name < vars[j].Name })
	return vars
}

// Value looks one flattened series up by its rendered id (including
// histogram pseudo-series like "name_count"). The second result
// reports whether the series exists.
func (r *Registry) Value(id string) (float64, bool) {
	for _, v := range r.Vars() {
		if v.Name == id {
			return v.Value, true
		}
	}
	return 0, false
}

// Counter is a monotonically increasing counter; one atomic add to
// record. Methods are no-ops on a nil handle.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reports the current count (0 on a nil handle).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable integer gauge. Methods are no-ops on a nil
// handle.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value reports the current value (0 on a nil handle).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram records value distributions (latencies in nanoseconds, by
// convention) into a stats.Histogram. Methods are no-ops on a nil
// handle.
type Histogram struct{ h *stats.Histogram }

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h != nil {
		h.h.Record(v)
	}
}

// Snapshot returns an independent copy of the underlying histogram
// (nil on a nil handle).
func (h *Histogram) Snapshot() *stats.Histogram {
	if h == nil {
		return nil
	}
	return h.h.Snapshot()
}

// renderID renders the canonical series identity: name alone, or
// name{k="v",...} with labels in registration order.
func renderID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// validName reports whether s is a legal metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelKey reports whether s is a legal label name:
// [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelKey(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
