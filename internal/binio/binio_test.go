package binio

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestRoundTripPrimitives(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U8(0xAB)
	w.U32(0xDEADBEEF)
	w.U64(0x0123456789ABCDEF)
	w.I64(-42)
	w.F64(3.14159)
	w.Str("hello")
	w.Bytes([]byte{1, 2, 3})
	if err := w.Err(); err != nil {
		t.Fatalf("write: %v", err)
	}
	if w.Len() != int64(buf.Len()) {
		t.Fatalf("Len %d != buffer %d", w.Len(), buf.Len())
	}

	r := NewReader(buf.Bytes())
	if v := r.U8(); v != 0xAB {
		t.Errorf("U8 = %x", v)
	}
	if v := r.U32(); v != 0xDEADBEEF {
		t.Errorf("U32 = %x", v)
	}
	if v := r.U64(); v != 0x0123456789ABCDEF {
		t.Errorf("U64 = %x", v)
	}
	if v := r.I64(); v != -42 {
		t.Errorf("I64 = %d", v)
	}
	if v := r.F64(); v != 3.14159 {
		t.Errorf("F64 = %v", v)
	}
	if v := r.Str(100); v != "hello" {
		t.Errorf("Str = %q", v)
	}
	if v := r.Bytes(3); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", v)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d", r.Remaining())
	}
	if err := r.Err(); err != nil {
		t.Fatalf("read: %v", err)
	}
}

func TestReaderTruncation(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	if v := r.U64(); v != 0 {
		t.Errorf("truncated U64 = %d, want 0", v)
	}
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", r.Err())
	}
	// Sticky: every later read keeps returning zero values.
	if v := r.U8(); v != 0 {
		t.Errorf("post-error U8 = %d", v)
	}
}

func TestCountGuardsAllocation(t *testing.T) {
	// A 4-byte buffer claiming 2^31 elements must error, not allocate.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U32(1 << 31)
	r := NewReader(buf.Bytes())
	if n := r.Count(8); n != 0 {
		t.Errorf("Count = %d, want 0", n)
	}
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", r.Err())
	}
}

func TestCountAcceptsExactFit(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U32(3)
	for i := 0; i < 3; i++ {
		w.U64(uint64(i))
	}
	r := NewReader(buf.Bytes())
	if n := r.Count(8); n != 3 {
		t.Fatalf("Count = %d, want 3 (err %v)", n, r.Err())
	}
}

func TestStrLimit(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Str("abcdef")
	r := NewReader(buf.Bytes())
	if s := r.Str(3); s != "" || !errors.Is(r.Err(), ErrCorrupt) {
		t.Errorf("Str over limit: %q, err %v", s, r.Err())
	}
}

func TestFiniteF64RejectsNaNInf(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.F64(v)
		r := NewReader(buf.Bytes())
		r.FiniteF64()
		if !errors.Is(r.Err(), ErrCorrupt) {
			t.Errorf("FiniteF64(%v): err = %v, want ErrCorrupt", v, r.Err())
		}
	}
}

func TestWriterReaderCRCAgree(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(12345)
	w.Str("payload")
	want := w.Sum64()

	r := NewReader(buf.Bytes())
	r.U64()
	r.Str(100)
	if got := r.CRCSoFar(); got != want {
		t.Errorf("reader CRC %x != writer CRC %x", got, want)
	}
}
