package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/report"
	"repro/internal/search"
)

// Every experiment must run end-to-end at tiny scale through the
// catalog, and its rendered text must contain its table headers plus a
// handful of data rows. These are the integration tests for the full
// figure pipeline; numeric shapes are asserted in EXPERIMENTS.md from
// full-scale runs.

// renderCatalog runs a catalog experiment and renders its tables
// through the text sink.
func renderCatalog(t *testing.T, name string, o Options) string {
	t.Helper()
	exp, ok := Find(name)
	if !ok {
		t.Fatalf("experiment %q not in catalog", name)
	}
	tables, err := exp.Run(NewRun(o))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	var buf bytes.Buffer
	sink := report.NewText(&buf)
	for i := range tables {
		if tables[i].Experiment != name {
			t.Errorf("%s returned a table labelled %q", name, tables[i].Experiment)
		}
		if err := sink.Table(&tables[i]); err != nil {
			t.Fatalf("%s: render: %v", name, err)
		}
	}
	if err := sink.Close(report.Meta{}); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func runExperiment(t *testing.T, name string, wantMarkers ...string) {
	t.Helper()
	out := renderCatalog(t, name, tiny)
	for _, marker := range wantMarkers {
		if !strings.Contains(out, marker) {
			t.Errorf("%s output missing %q:\n%s", name, marker, clip(out))
		}
	}
	if strings.Count(out, "\n") < 4 {
		t.Errorf("%s produced almost no output:\n%s", name, clip(out))
	}
}

func clip(s string) string {
	if len(s) > 600 {
		return s[:600] + "..."
	}
	return s
}

func TestFig7EndToEnd(t *testing.T) {
	runExperiment(t, "fig7",
		"Figure 7", "amzn", "osm", "wiki", "face", "RMI", "FAST", "baseline")
}

func TestFig8EndToEnd(t *testing.T) {
	runExperiment(t, "fig8", "Figure 8", "FST", "Wormhole")
}

func TestFig9EndToEnd(t *testing.T) {
	runExperiment(t, "fig9", "Figure 9", "16000") // 4x of tiny.N
}

func TestFig10EndToEnd(t *testing.T) {
	runExperiment(t, "fig10", "Figure 10", "BTree32", "FAST32", "32", "64")
}

func TestFig11EndToEnd(t *testing.T) {
	runExperiment(t, "fig11", "Figure 11", "binary", "linear", "interpolation")
}

func TestFig12EndToEnd(t *testing.T) {
	runExperiment(t, "fig12", "Figure 12", "c-miss", "instr")
}

func TestFig14EndToEnd(t *testing.T) {
	runExperiment(t, "fig14", "Figure 14", "warm", "cold")
}

func TestFig15EndToEnd(t *testing.T) {
	runExperiment(t, "fig15", "Figure 15", "fence")
}

func TestFig16aEndToEnd(t *testing.T) {
	runExperiment(t, "fig16a", "Figure 16a", "Mlookups/s")
}

func TestFig16bEndToEnd(t *testing.T) {
	runExperiment(t, "fig16b", "Figure 16b", "RMI")
}

func TestFig16cEndToEnd(t *testing.T) {
	runExperiment(t, "fig16c", "Figure 16c", "miss/op")
}

func TestFig17EndToEnd(t *testing.T) {
	runExperiment(t, "fig17", "Figure 17", "build(ms)", "Wormhole")
}

func TestFig14ColdSlowerThanWarm(t *testing.T) {
	// The defining property of Figure 14 at any scale: evicting the
	// cache between lookups cannot make lookups faster. Assert it on
	// one structure with a safety margin for timer noise.
	e, err := NewEnv("amzn", 20000, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	idx := midVariant(e, "BTree")
	warm := MeasureWarm(e, idx, search.BinarySearch)
	cold := MeasureCold(e, idx, search.BinarySearch, 100)
	if cold.NsPerLookup < warm.NsPerLookup {
		t.Errorf("cold (%f) faster than warm (%f)", cold.NsPerLookup, warm.NsPerLookup)
	}
}

func TestServeTailSweepEndToEnd(t *testing.T) {
	runExperiment(t, "serve-tail",
		"Tail latency", "scheduled Poisson arrival", "p99.9", "closed", "open25%", "open80%",
		"RMI", "PGM", "BTree")
}

func TestServeNetSweepEndToEnd(t *testing.T) {
	runExperiment(t, "serve-net",
		"Network serving", "loopback", "RetryLater", "goodput", "sheds",
		"closed", "open50%", "open120%", "open200%", "PGM")
}

func TestServeWriteSweepEndToEnd(t *testing.T) {
	runExperiment(t, "serve-write",
		"Mixed read/write", "threshold sweep", "RMI", "PGM", "BTree", "zipf", "unif")
}

func TestServeObsSweepEndToEnd(t *testing.T) {
	runExperiment(t, "serve-obs",
		"Observability conservation laws", "law held", "readamp", "traces",
		"closed", "open200%", "PGM")
}

func TestServeReplSweepEndToEnd(t *testing.T) {
	runExperiment(t, "serve-repl",
		"Replicated serving", "speedup", "goodput", "detect+promote", "ready")
}

func TestServeLSMSweepEndToEnd(t *testing.T) {
	runExperiment(t, "serve-lsm",
		"Tiered-run write path", "readamp", "readp99", "single", "tier4", "tier8",
		"RMI", "PGM", "BTree")
}

// TestFamilyDatasetFilters exercises the -families/-datasets options
// on a sweep experiment: only the requested rows may appear.
func TestFamilyDatasetFilters(t *testing.T) {
	o := tiny
	o.Families = []string{"RMI"}
	o.Datasets = []string{"osm"}
	exp, _ := Find("fig7")
	tables, err := exp.Run(NewRun(o))
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) == 0 {
		t.Fatalf("filtered fig7 returned no rows")
	}
	for _, row := range tables[0].Rows {
		if row.Dims[0] != "osm" || row.Dims[1] != "RMI" {
			t.Errorf("filter leaked row %v", row.Dims)
		}
	}
}

// TestRoundTripRepresentative runs three representative experiments at
// smoke scale, writes them through the JSON sink, and unmarshals back:
// dims and metrics must survive byte-for-byte.
func TestRoundTripRepresentative(t *testing.T) {
	for _, name := range []string{"table1", "fig13", "serve"} {
		exp, ok := Find(name)
		if !ok {
			t.Fatalf("experiment %q not in catalog", name)
		}
		run := NewRun(tiny)
		tables, err := exp.Run(run)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var buf bytes.Buffer
		sink := report.NewJSON(&buf)
		for i := range tables {
			if err := sink.Table(&tables[i]); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		meta := report.NewMeta("bench-test")
		meta.Datasets = run.DatasetChecksums()
		if err := sink.Close(meta); err != nil {
			t.Fatal(err)
		}
		doc, err := report.DecodeDocument(&buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if len(doc.Tables) != len(tables) {
			t.Fatalf("%s: %d tables decoded, want %d", name, len(doc.Tables), len(tables))
		}
		for i := range tables {
			got, want := doc.Tables[i], tables[i]
			if got.Experiment != want.Experiment || got.Title != want.Title {
				t.Errorf("%s: table %d header mismatch", name, i)
			}
			if len(got.Rows) != len(want.Rows) {
				t.Fatalf("%s: table %d has %d rows, want %d", name, i, len(got.Rows), len(want.Rows))
			}
			for j := range want.Rows {
				if !equalStrings(got.Rows[j].Dims, want.Rows[j].Dims) ||
					!equalFloats(got.Rows[j].Metrics, want.Rows[j].Metrics) {
					t.Errorf("%s: table %d row %d did not round-trip", name, i, j)
				}
			}
		}
		if name != "table1" && len(doc.Meta.Datasets) == 0 {
			t.Errorf("%s: run recorded no dataset checksums", name)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
