// Command sosdserve runs the network serving front end: it builds a
// serve.Store over a generated dataset and listens for the internal/net
// frame protocol, with request coalescing and admission control. It is
// the long-running half of the serve-net experiment — point sosd's
// client library (or a second machine) at it to measure serving over a
// real network instead of loopback.
//
// Usage:
//
//	sosdserve [-addr host:port] [-dataset name] [-n keys] [-seed s]
//	          [-family f] [-shards k] [-window d] [-batchcap b]
//	          [-maxpending p] [-maxconns c]
//
// The server runs until SIGINT/SIGTERM, then shuts down gracefully and
// prints its final stats (accepted, shed, coalescing, latency tail) to
// stderr. The coalescer's pacing pins service capacity at
// batchcap/window lookups per second; requests past that are refused
// with RetryLater rather than queued without bound.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/dataset"
	"repro/internal/net"
	"repro/internal/registry"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	dsName := flag.String("dataset", "amzn", "dataset to generate (amzn, face, osm, wiki)")
	n := flag.Int("n", 200_000, "dataset size in keys")
	seed := flag.Uint64("seed", bench.DefaultSeed, "dataset seed")
	family := flag.String("family", "PGM", "index family for the store's shards")
	shards := flag.Int("shards", 4, "shard count")
	window := flag.Duration("window", net.DefaultCoalesceWindow, "coalescing window (pins capacity with -batchcap)")
	batchCap := flag.Int("batchcap", net.DefaultBatchCap, "max point lookups coalesced into one store batch")
	maxPending := flag.Int("maxpending", net.DefaultMaxPending, "admission limit on in-flight requests; excess is shed")
	maxConns := flag.Int("maxconns", net.DefaultMaxConns, "connection limit; excess accepts are refused")
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}

	known := false
	for _, f := range registry.Families() {
		if f == *family {
			known = true
			break
		}
	}
	if !known {
		fatal(fmt.Errorf("unknown family %q (known: %v)", *family, registry.Families()))
	}

	fmt.Fprintf(os.Stderr, "generating %s, %d keys (seed %d)...\n", *dsName, *n, *seed)
	keys, err := dataset.Generate(dataset.Name(*dsName), *n, *seed)
	if err != nil {
		fatal(err)
	}
	st, err := serve.New(keys, dataset.Payloads(*n, *seed), serve.Config{
		Shards: *shards, Family: *family,
	})
	if err != nil {
		fatal(err)
	}
	defer st.Close()

	srv, err := net.Listen(*addr, st, net.Config{
		CoalesceWindow: *window,
		BatchCap:       *batchCap,
		MaxPending:     *maxPending,
		MaxConns:       *maxConns,
	})
	if err != nil {
		fatal(err)
	}
	capacity := float64(*batchCap) / window.Seconds()
	fmt.Fprintf(os.Stderr, "serving %s/%s on %s (%d shards, window %v, batch cap %d → capacity %.0f lookups/s, admission %d, conns %d)\n",
		*dsName, *family, srv.Addr(), *shards, *window, *batchCap, capacity, *maxPending, *maxConns)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "shutting down...")
	start := time.Now()
	if err := srv.Close(); err != nil {
		fatal(err)
	}
	s := srv.Stats()
	fmt.Fprintf(os.Stderr, "drained in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(os.Stderr, "accepted %d, shed %d, shed conns %d, dropped conns %d\n",
		s.Accepted, s.Shed, s.ShedConns, s.DroppedConns)
	if s.Batches > 0 {
		fmt.Fprintf(os.Stderr, "coalesced %d lookups into %d batches (mean %.1f keys), max queue depth %d\n",
			s.BatchedKeys, s.Batches, float64(s.BatchedKeys)/float64(s.Batches), s.MaxQueueDepth)
	}
	if s.Latency != nil && s.Latency.Count() > 0 {
		q := s.Latency.Summary()
		fmt.Fprintf(os.Stderr, "service time p50 %.1fµs p99 %.1fµs p99.9 %.1fµs max %.1fµs\n",
			float64(q.P50)/1e3, float64(q.P99)/1e3, float64(q.P999)/1e3, float64(q.Max)/1e3)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sosdserve: %v\n", err)
	os.Exit(1)
}
