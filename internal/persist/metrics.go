package persist

// Package-wide I/O accounting. The persistence layer is a library with
// no registry dependency (obs imports nothing below stats, and persist
// must stay importable from obs-free code), so the counters live here
// as plain atomics and internal/obs binds them into a registry with
// scrape-time funcs.

import "sync/atomic"

var (
	snapshotBytes atomic.Uint64
	walBytes      atomic.Uint64
	walAppends    atomic.Uint64
	fsyncs        atomic.Uint64
)

// Counters is a snapshot of the package-wide I/O accounting, cumulative
// since process start (the persistence layer is file-path-oriented, so
// the counters aggregate across every store in the process).
type Counters struct {
	SnapshotBytes uint64 // bytes committed through the atomic-write path
	WALBytes      uint64 // bytes appended to write-ahead logs (seeds included)
	WALAppends    uint64 // records appended via WAL.Append
	Fsyncs        uint64 // file and directory fsyncs issued
}

// CountersNow reads the current I/O counters.
func CountersNow() Counters {
	return Counters{
		SnapshotBytes: snapshotBytes.Load(),
		WALBytes:      walBytes.Load(),
		WALAppends:    walAppends.Load(),
		Fsyncs:        fsyncs.Load(),
	}
}
