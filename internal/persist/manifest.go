package persist

// The snapshot manifest: the root artifact of a store snapshot,
// naming every shard's boundary separator, its codec tag (the
// deterministic registry config ID that built its index), and its
// table/index/WAL file names. The manifest rename is the snapshot's
// commit point — shard files are written first, so a crash anywhere
// leaves either the complete old snapshot or the complete new one.

import (
	"os"

	"repro/internal/binio"
	"repro/internal/core"
)

var manifestMagic = []byte("sosdMAN1")

// ManifestName is the manifest's file name inside a snapshot directory.
const ManifestName = "MANIFEST"

// ShardMeta describes one persisted shard.
type ShardMeta struct {
	// Sep is the first key owned by the shard (the store's boundary
	// metadata, identical to serve.Store's separator array).
	Sep core.Key
	// Codec is the registry config ID ("family" or "family/label") of
	// the builder that produced the shard's index. Its family part
	// selects the decode codec; the label lets a rebuild re-select the
	// exact catalog entry.
	Codec string
	// Table, Index and WAL are file names inside the snapshot
	// directory. Index is empty when the shard has no encodable index
	// (no registered codec, or an empty table) and must be rebuilt
	// from the loaded keys.
	Table, Index, WAL string
}

// Manifest is a complete snapshot description.
type Manifest struct {
	// Family is the store-level default index family (serve.Config.Family).
	Family string
	// Gen is the commit generation: every manifest commit writes its
	// shard files under fresh generation-suffixed names and bumps Gen,
	// so a crash mid-commit can never pair files of different
	// generations — the old manifest still names the complete old set.
	Gen    uint64
	Shards []ShardMeta
}

// minShardWire is the smallest possible encoded shard entry, used as
// the allocation guard for the shard count.
const minShardWire = 8 + 4*4

// EncodeManifest writes the manifest with the standard frame: magic,
// version, body, trailing CRC64.
func EncodeManifest(w *binio.Writer, m *Manifest) error {
	w.Bytes(manifestMagic)
	w.U32(FormatVersion)
	w.Str(m.Family)
	w.U64(m.Gen)
	w.U32(uint32(len(m.Shards)))
	for _, s := range m.Shards {
		w.U64(s.Sep)
		w.Str(s.Codec)
		w.Str(s.Table)
		w.Str(s.Index)
		w.Str(s.WAL)
	}
	w.U64(w.Sum64())
	return w.Err()
}

// DecodeManifest parses and validates a manifest image.
func DecodeManifest(data []byte) (*Manifest, error) {
	body, err := checkCRCFrame(data)
	if err != nil {
		return nil, err
	}
	r := binio.NewReader(body)
	if string(r.Bytes(len(manifestMagic))) != string(manifestMagic) {
		return nil, binio.Corruptf("persist: bad manifest magic")
	}
	if v := r.U32(); v != FormatVersion {
		return nil, binio.Corruptf("persist: manifest format version %d, want %d", v, FormatVersion)
	}
	m := &Manifest{Family: r.Str(maxTagLen)}
	m.Gen = r.U64()
	n := r.Count(minShardWire)
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, binio.Corruptf("persist: manifest has no shards")
	}
	m.Shards = make([]ShardMeta, n)
	for i := range m.Shards {
		s := &m.Shards[i]
		s.Sep = r.U64()
		s.Codec = r.Str(maxTagLen)
		s.Table = r.Str(maxTagLen)
		s.Index = r.Str(maxTagLen)
		s.WAL = r.Str(maxTagLen)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, binio.Corruptf("persist: %d trailing bytes after manifest", r.Remaining())
	}
	for i := range m.Shards {
		s := &m.Shards[i]
		if i > 0 && s.Sep <= m.Shards[i-1].Sep {
			return nil, binio.Corruptf("persist: shard separators not increasing at %d", i)
		}
		if s.Table == "" || s.WAL == "" {
			return nil, binio.Corruptf("persist: shard %d missing table or wal file name", i)
		}
		for _, name := range []string{s.Table, s.Index, s.WAL} {
			if !safeFileName(name) {
				return nil, binio.Corruptf("persist: shard %d file name %q escapes the snapshot directory", i, name)
			}
		}
	}
	return m, nil
}

// safeFileName accepts only bare names: a manifest must not be able to
// point the loader outside its own directory.
func safeFileName(name string) bool {
	if name == "" {
		return true // empty index name = rebuild marker
	}
	if name == "." || name == ".." {
		return false
	}
	for i := 0; i < len(name); i++ {
		if name[i] == '/' || name[i] == '\\' || name[i] == 0 {
			return false
		}
	}
	return true
}

// WriteManifest atomically commits the manifest to path.
func WriteManifest(path string, m *Manifest) error {
	return AtomicWrite(path, func(w *binio.Writer) error { return EncodeManifest(w, m) })
}

// ReadManifest loads and validates the manifest at path.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeManifest(data)
}
