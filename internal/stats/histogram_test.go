package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// exactQuantile mirrors Histogram.Quantile's rank convention on a
// sorted sample slice: the ceil(q*n)-th smallest sample.
func exactQuantile(sorted []int64, q float64) int64 {
	n := len(sorted)
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// checkQuantiles records samples and asserts every tested quantile is
// within the documented relative-error bound of the exact quantile.
func checkQuantiles(t *testing.T, name string, samples []int64) {
	t.Helper()
	h := &Histogram{}
	for _, v := range samples {
		h.Record(v)
	}
	sorted := append([]int64(nil), samples...)
	for i, v := range sorted {
		if v < 0 {
			sorted[i] = 0 // Record clamps negatives
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	if h.Count() != uint64(len(samples)) {
		t.Fatalf("%s: Count = %d, want %d", name, h.Count(), len(samples))
	}
	if h.Max() != sorted[len(sorted)-1] {
		t.Fatalf("%s: Max = %d, want %d", name, h.Max(), sorted[len(sorted)-1])
	}
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		got := h.Quantile(q)
		want := exactQuantile(sorted, q)
		if q == 1 {
			if got != want {
				t.Fatalf("%s: Quantile(1) = %d, want exact max %d", name, got, want)
			}
			continue
		}
		bound := HistMaxRelError * float64(want)
		if bound < 0.5 {
			bound = 0.5 // exact region: midpoint == value, allow integer slack only
		}
		if math.Abs(float64(got-want)) > bound {
			t.Fatalf("%s: Quantile(%g) = %d, want %d ± %.1f (rel err %.4f > %.4f)",
				name, q, got, want, bound,
				math.Abs(float64(got-want))/float64(want), HistMaxRelError)
		}
	}
}

// TestHistogramQuantileProperty is the satellite property test: on
// randomized uniform, zipf, and bimodal latency distributions the
// histogram's quantiles must match exact sorted-slice quantiles to
// within the documented HistMaxRelError bound.
func TestHistogramQuantileProperty(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		r := rand.New(rand.NewSource(int64(trial) + 1))
		n := 1000 + r.Intn(9000)

		uniform := make([]int64, n)
		for i := range uniform {
			uniform[i] = r.Int63n(5_000_000) // up to 5ms
		}
		checkQuantiles(t, "uniform", uniform)

		// Zipf-ish: heavy-tailed latencies spanning many decades, the
		// shape tail measurement exists for.
		zipfGen := rand.NewZipf(r, 1.2, 1, 1<<30)
		zipf := make([]int64, n)
		for i := range zipf {
			zipf[i] = int64(zipfGen.Uint64()) + 50
		}
		checkQuantiles(t, "zipf", zipf)

		// Bimodal: a fast mode (cache hit) and a slow mode (compaction
		// stall) three orders of magnitude apart.
		bimodal := make([]int64, n)
		for i := range bimodal {
			if r.Float64() < 0.9 {
				bimodal[i] = 100 + r.Int63n(400)
			} else {
				bimodal[i] = 300_000 + r.Int63n(700_000)
			}
		}
		checkQuantiles(t, "bimodal", bimodal)
	}
}

// TestHistogramQuick drives the same property through testing/quick
// with arbitrary sample vectors (including negatives, zeros, and
// extreme values).
func TestHistogramQuick(t *testing.T) {
	prop := func(raw []int64, qSeed uint16) bool {
		if len(raw) == 0 {
			h := &Histogram{}
			return h.Quantile(0.5) == 0 && h.Count() == 0
		}
		h := &Histogram{}
		sorted := make([]int64, len(raw))
		for i, v := range raw {
			h.Record(v)
			if v < 0 {
				v = 0
			}
			sorted[i] = v
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		q := 0.001 + 0.999*float64(qSeed)/math.MaxUint16
		got := h.Quantile(q)
		want := exactQuantile(sorted, q)
		bound := HistMaxRelError * float64(want)
		if bound < 0.5 {
			bound = 0.5
		}
		return math.Abs(float64(got-want)) <= bound
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramBucketRoundTrip pins the bucket layout: every bucket
// index maps back into itself through its midpoint, and bucket
// boundaries are continuous (no value maps below a smaller value's
// bucket).
func TestHistogramBucketRoundTrip(t *testing.T) {
	for idx := 0; idx < histBuckets; idx++ {
		mid := bucketMid(idx)
		if got := bucketIdx(mid); got != idx {
			t.Fatalf("bucketIdx(bucketMid(%d)) = %d", idx, got)
		}
	}
	prev := -1
	for _, v := range []int64{0, 1, 31, 32, 63, 64, 65, 127, 128, 1 << 20, 1<<20 + 1, math.MaxInt64} {
		idx := bucketIdx(v)
		if idx < prev {
			t.Fatalf("bucketIdx not monotone at %d: %d < %d", v, idx, prev)
		}
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketIdx(%d) = %d out of range", v, idx)
		}
		prev = idx
	}
	if got := bucketIdx(-5); got != 0 {
		t.Fatalf("negative sample bucket = %d, want 0", got)
	}
}

// TestHistogramMerge asserts merging k per-worker histograms is
// equivalent to recording everything into one.
func TestHistogramMerge(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	whole := &Histogram{}
	parts := []*Histogram{{}, {}, {}, {}}
	for i := 0; i < 40_000; i++ {
		v := r.Int63n(1 << uint(10+r.Intn(20)))
		whole.Record(v)
		parts[i%len(parts)].Record(v)
	}
	merged := &Histogram{}
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Count() != whole.Count() || merged.Max() != whole.Max() {
		t.Fatalf("merge count/max mismatch: %v vs %v", merged, whole)
	}
	if merged.Mean() != whole.Mean() {
		t.Fatalf("merge mean mismatch: %v vs %v", merged.Mean(), whole.Mean())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1} {
		if merged.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("merge quantile(%g) mismatch: %d vs %d",
				q, merged.Quantile(q), whole.Quantile(q))
		}
	}
}

// FuzzHistogramQuantiles fuzzes the quantile property with a seed
// corpus covering the exact region, bucket edges, and the top of the
// int64 range.
func FuzzHistogramQuantiles(f *testing.F) {
	f.Add(int64(0), int64(1), int64(63), uint16(32768))
	f.Add(int64(64), int64(65), int64(127), uint16(65535))
	f.Add(int64(100), int64(300_000), int64(1_000_000), uint16(990))
	f.Add(int64(-7), int64(0), int64(math.MaxInt64), uint16(1))
	f.Add(int64(1<<40), int64(1<<40+1), int64(1<<41), uint16(50000))
	f.Fuzz(func(t *testing.T, a, b, c int64, qSeed uint16) {
		samples := []int64{a, b, c, a, b}
		h := &Histogram{}
		sorted := make([]int64, len(samples))
		for i, v := range samples {
			h.Record(v)
			if v < 0 {
				v = 0
			}
			sorted[i] = v
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		q := 0.001 + 0.999*float64(qSeed)/math.MaxUint16
		got := h.Quantile(q)
		want := exactQuantile(sorted, q)
		bound := HistMaxRelError * float64(want)
		if bound < 0.5 {
			bound = 0.5
		}
		if math.Abs(float64(got-want)) > bound {
			t.Fatalf("Quantile(%g) = %d, want %d ± %.1f", q, got, want, bound)
		}
		if h.Max() != sorted[len(sorted)-1] {
			t.Fatalf("Max = %d, want %d", h.Max(), sorted[len(sorted)-1])
		}
	})
}
