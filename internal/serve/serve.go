// Package serve implements the many-users serving scenario on top of
// the table layer: a Store range-partitions the keyspace across N
// shards, each an independent, atomically replaceable set of sorted
// runs built from any registered index family, answers batched lookups
// through a fixed goroutine pool, and absorbs writes into per-shard
// delta buffers that a background compactor flushes into small tier
// runs and merges back into the learned indexes under a cost-model
// tiering policy.
//
// Concurrency model: reads (Get, GetBatch, Scan, Range) are lock-free —
// they load each shard's current state (run set + delta buffers)
// through one atomic pointer — and may run from any number of
// goroutines. Writes are single-writer per shard: Put, Delete, and
// Replace serialize on a per-shard mutex, derive the new state off to
// the side (copy-on-write delta, or a freshly built table), and publish
// it with one pointer swap, so readers never block and never observe a
// half-applied write. Compaction freezes a shard's delta, flushes or
// merges off the write lock (writes continue into a fresh active
// delta), and republishes the shard with another swap. See DESIGN.md
// "Write path".
package serve

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/registry"
	"repro/internal/search"
	"repro/internal/table"
)

// DefaultCompactThreshold is the per-shard pending-write count at which
// background compaction kicks in when Config.CompactThreshold is zero.
// It bounds both read-path overlay work and the copy-on-write cost of
// individual writes.
const DefaultCompactThreshold = 4096

// DefaultMaxRuns is the per-shard sorted-run bound when Config.MaxRuns
// is zero: enough tiers that a write burst flushes several deltas
// without forcing an index re-tune, few enough that point reads stay
// within a handful of run probes.
const DefaultMaxRuns = 4

// DefaultAmpBound is the measured read-amplification bound (run probes
// per lookup) when Config.AmpBound is zero: a tiered shard whose
// lookups average more probes than this is merged even below MaxRuns.
const DefaultAmpBound = 2.5

// ampMinWindow is the minimum lookup count in a shard's measurement
// window before read amplification can trigger a merge — below it the
// estimate is noise.
const ampMinWindow = 4096

// ampCheckEvery is the read-op stride between read-path amplification
// evaluations, keeping the trigger check off the per-batch hot path.
const ampCheckEvery = 1024

// probeNsEstimate is the assumed cost in nanoseconds of one extra run
// probe — the unit the tiering policy uses to convert a window's
// lookup count into the read-time value of merging runs away. A
// deliberate round figure for an out-of-cache search descent; only the
// major-versus-minor tip point depends on it, never correctness.
const probeNsEstimate = 100

// Config configures a Store.
type Config struct {
	// Shards is the number of range partitions; 0 defaults to
	// runtime.NumCPU(). Clamped to the number of distinct keys.
	Shards int

	// Family selects the registered index family used for every shard
	// (mid-sweep configuration); empty defaults to "PGM". Ignored when
	// BuilderFor is set.
	Family string

	// BuilderFor, when non-nil, supplies the index builder per shard,
	// allowing heterogeneous stores (e.g. a learned index on smooth
	// shards, a B-tree on adversarial ones).
	BuilderFor func(shard int, keys []core.Key) (core.Builder, error)

	// Search is the last-mile search function; nil defaults to binary.
	Search search.Fn

	// Workers is the goroutine-pool size serving batched lookups; 0
	// defaults to min(Shards, runtime.NumCPU()).
	Workers int

	// CompactThreshold is the number of pending delta entries at which
	// a shard is queued for background compaction. 0 defaults to
	// DefaultCompactThreshold; negative disables background compaction
	// entirely (writes still land, Compact merges on demand).
	CompactThreshold int

	// MaxRuns bounds a shard's sorted-run count: a frozen delta flushes
	// into a new tier run until the shard holds MaxRuns runs, then the
	// tiering policy merges. 0 defaults to DefaultMaxRuns; 1 (or
	// negative) disables tiering — every compaction merges the full
	// shard and re-tunes its index, the classic single-run write path.
	MaxRuns int

	// AmpBound is the measured read-amplification (run probes per
	// lookup, over the window since the shard's last merge) above which
	// a tiered shard is merged even below MaxRuns. 0 defaults to
	// DefaultAmpBound.
	AmpBound float64

	// SyncWrites, for a store attached to a snapshot directory (Open),
	// fsyncs the shard's write-ahead log on every Put/Delete. Off by
	// default: appends still reach the OS immediately (surviving a
	// process crash), and SyncWAL provides an explicit storage barrier.
	SyncWrites bool

	// WriteHook, when non-nil, observes every write applied to the
	// store — Put, Delete, and Apply batches — called under the owning
	// shard's write lock after the WAL append and the state publish, so
	// invocations for one shard arrive in exactly the order the writes
	// took effect. It must be fast and must not call back into the
	// store. The replication primary uses it to assign per-shard
	// sequence numbers and feed its stream log.
	WriteHook func(shard int, op persist.Op)

	// Metrics, when non-nil, receives the store's observability series
	// at construction: per-shard run/delta/read-amp gauges and the
	// compaction counters, all bound as scrape-time funcs over the
	// counters the store maintains anyway — the read and write paths pay
	// nothing. Use a fresh Registry per store (series names collide
	// otherwise).
	Metrics *obs.Registry

	// Journal, when non-nil, records every flush, minor merge, and
	// major merge with the tiering-policy inputs that chose it.
	Journal *obs.Journal

	// Tracer, when non-nil, samples Get/GetBatch requests and records
	// their shard-route / run-probe / merge phase latencies.
	Tracer *obs.Tracer
}

// Store is a sharded, mutable key→payload store. See the package
// comment for the concurrency model.
type Store struct {
	cfg        Config
	seps       []core.Key // seps[i] = first key owned by shard i
	shards     []atomic.Pointer[shardState]
	writeMu    []sync.Mutex   // per-shard single-writer locks
	builders   []core.Builder // last builder used per shard; guarded by writeMu; nil until resolved on warm-opened shards
	builderIDs []string       // registry config ID per shard (manifest codec tag); guarded by writeMu

	builderFor func(shard int, keys []core.Key) (core.Builder, string, error)

	// Persistence state (zero unless the store was opened from a
	// snapshot directory): the attached directory (absolute), one live
	// WAL per shard (slots guarded by writeMu), a mutex serializing
	// snapshot/manifest commits, the last committed generation and
	// manifest entries (guarded by persistMu), the per-shard map of
	// already-committed run files (guarded by persistMu), and the first
	// background persistence failure.
	dir           string
	wals          []*persist.WAL
	persistMu     sync.Mutex
	exportMu      sync.Mutex // serializes foreign-directory Snapshots only
	gen           uint64
	meta          []persist.ShardMeta
	persistedRuns []map[*table.Table]persist.RunMeta
	persistErrMu  sync.Mutex
	persistErr    error

	jobs      chan job
	workersWG sync.WaitGroup
	scratch   sync.Pool // *batchScratch
	closed    atomic.Bool

	// Replica mode: a read-only store refuses Put/Delete/Replace (each
	// refusal counted) while Apply — the replication stream's entry
	// point — still lands batches. Flipped by SetReadOnly at any time.
	readOnly      atomic.Bool
	readOnlyDrops atomic.Uint64

	// Background-compaction work queue. One mutex guards the queue,
	// the per-shard queued flags, the queued-or-running count, and the
	// stop flag; compactCond wakes the compactor when work (or stop)
	// arrives, idleCond wakes WaitCompactions waiters when the count
	// drains to zero. requestCompact never drops a request and Close
	// never races a send — the two liveness holes of the old
	// channel-based queue.
	compactMu      sync.Mutex
	compactCond    *sync.Cond
	idleCond       *sync.Cond
	compactQueue   []int
	compactQueued  []bool
	compactPending int
	compactStop    bool

	compactWG    sync.WaitGroup
	stats        []shardStats // per-shard read-amp accounting and merge-cost EWMAs
	compactions  atomic.Uint64
	compactNs    atomic.Int64
	flushes      atomic.Uint64
	minorMerges  atomic.Uint64
	majorMerges  atomic.Uint64
	deltaFreezes atomic.Uint64 // delta fills frozen for a tier flush

	journal *obs.Journal
	tracer  *obs.Tracer
}

// shardStats carries one shard's measured read-amplification window
// and rebuild-cost estimates. probes/ops accumulate from multi-run
// reads only (a single-run shard has amplification 1 by construction
// and pays no accounting); probes0/ops0 snapshot the window base at
// the shard's last merge. The per-key cost EWMAs are measured from
// actual compactions: major from full-merge index re-tunes, minor from
// tier flushes and tier merges.
type shardStats struct {
	probes, ops   atomic.Int64
	probes0, ops0 atomic.Int64
	sinceCheck    atomic.Int64
	majorNsPerKey atomic.Uint64 // math.Float64bits
	minorNsPerKey atomic.Uint64 // math.Float64bits
}

func ewmaLoad(a *atomic.Uint64) float64 { return math.Float64frombits(a.Load()) }

// ewmaUpdate folds one observation into a cost estimate: seeded by the
// first observation, then smoothed so a single slow or fast merge
// cannot whipsaw the policy.
func ewmaUpdate(a *atomic.Uint64, obs float64) {
	old := math.Float64frombits(a.Load())
	if old == 0 {
		a.Store(math.Float64bits(obs))
		return
	}
	a.Store(math.Float64bits(0.7*old + 0.3*obs))
}

type job struct {
	s       *shardState
	shard   int
	keys    []core.Key
	out     []uint64
	scratch []bool // found-bit working space; the result itself for wantFound jobs
	want    bool   // caller wants the found bits (GetBatchFound)
	found   *atomic.Int64
	wg      *sync.WaitGroup
}

type batchScratch struct {
	shard  []int32
	offs   []int32
	starts []int32
	gkeys  []core.Key
	gout   []uint64
	gfound []bool
	pos    []int32
}

// New builds a Store over sorted keys and payloads. The key array is
// split into contiguous, duplicate-respecting ranges of near-equal
// size; each range becomes one shard with its own index.
func New(keys []core.Key, payloads []uint64, cfg Config) (*Store, error) {
	if len(keys) == 0 {
		return nil, errors.New("serve: empty key set")
	}
	if len(keys) != len(payloads) {
		return nil, errors.New("serve: keys and payloads length mismatch")
	}
	if !core.IsSorted(keys) {
		return nil, errors.New("serve: keys not sorted")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.NumCPU()
	}
	if cfg.Shards > len(keys) {
		cfg.Shards = len(keys)
	}
	if cfg.Family == "" {
		cfg.Family = "PGM"
	}
	if cfg.Search == nil {
		cfg.Search = search.BinarySearch
	}
	if cfg.Workers <= 0 {
		cfg.Workers = cfg.Shards
		if ncpu := runtime.NumCPU(); cfg.Workers > ncpu {
			cfg.Workers = ncpu
		}
	}
	if cfg.CompactThreshold == 0 {
		cfg.CompactThreshold = DefaultCompactThreshold
	}
	normalizeTierConfig(&cfg)

	st := &Store{cfg: cfg}
	if cfg.BuilderFor != nil {
		st.builderFor = wrapBuilderFor(cfg.BuilderFor)
	} else {
		family := cfg.Family
		if !registry.Has(family) {
			return nil, fmt.Errorf("serve: unknown index family %q", family)
		}
		st.builderFor = familyBuilderFor(family)
	}

	// Partition: shard i starts at the i-th near-equal cut, advanced
	// past any duplicate run so one key never straddles two shards.
	n := len(keys)
	starts := make([]int, 0, cfg.Shards)
	prev := -1
	for i := 0; i < cfg.Shards; i++ {
		s := i * n / cfg.Shards
		for s > 0 && s < n && keys[s] == keys[s-1] {
			s++
		}
		if s >= n || s <= prev {
			continue // duplicate-heavy data can exhaust distinct cuts
		}
		starts = append(starts, s)
		prev = s
	}
	nShards := len(starts)
	st.seps = make([]core.Key, nShards)
	st.shards = make([]atomic.Pointer[shardState], nShards)
	st.writeMu = make([]sync.Mutex, nShards)
	st.builders = make([]core.Builder, nShards)
	st.builderIDs = make([]string, nShards)

	// Build shard tables concurrently: builds are independent and the
	// learned families are CPU-bound.
	var wg sync.WaitGroup
	errs := make([]error, nShards)
	for i := 0; i < nShards; i++ {
		lo := starts[i]
		hi := n
		if i+1 < nShards {
			hi = starts[i+1]
		}
		st.seps[i] = keys[lo]
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			t, err := st.buildShard(i, keys[lo:hi], payloads[lo:hi])
			if err != nil {
				errs[i] = err
				return
			}
			st.shards[i].Store(&shardState{
				runs: []*table.Table{t}, runIDs: []string{st.builderIDs[i]}, del: emptyDelta,
			})
		}(i, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	st.start()
	return st, nil
}

// normalizeTierConfig resolves the tiering defaults (shared by New and
// Open).
func normalizeTierConfig(cfg *Config) {
	if cfg.MaxRuns == 0 {
		cfg.MaxRuns = DefaultMaxRuns
	}
	if cfg.AmpBound == 0 {
		cfg.AmpBound = DefaultAmpBound
	}
}

// tiered reports whether flushes may stack tier runs (MaxRuns > 1).
func (st *Store) tiered() bool { return st.cfg.MaxRuns > 1 }

// familyBuilderFor is the registry-backed shard builder used when no
// custom BuilderFor is configured: the family's mid-sweep entry, with
// its catalog label recorded as the shard's codec tag.
func familyBuilderFor(family string) func(int, []core.Key) (core.Builder, string, error) {
	return func(_ int, keys []core.Key) (core.Builder, string, error) {
		nb, ok := registry.Builder(family, keys)
		if !ok {
			return nil, "", fmt.Errorf("serve: empty sweep for family %q", family)
		}
		return nb.Builder, registry.ID(family, nb.Label), nil
	}
}

// start launches the worker pool and the background compactor over the
// already-populated shard array (shared by New and Open).
func (st *Store) start() {
	nShards := len(st.shards)
	st.scratch.New = func() any { return &batchScratch{} }
	st.jobs = make(chan job)
	for w := 0; w < st.cfg.Workers; w++ {
		st.workersWG.Add(1)
		go st.worker()
	}
	// One compactor: merges are CPU-bound index rebuilds, and a single
	// goroutine keeps them off the serving cores; requests queue.
	st.compactCond = sync.NewCond(&st.compactMu)
	st.idleCond = sync.NewCond(&st.compactMu)
	st.compactQueued = make([]bool, nShards)
	st.stats = make([]shardStats, nShards)
	st.journal = st.cfg.Journal
	st.tracer = st.cfg.Tracer
	st.registerMetrics(st.cfg.Metrics)
	st.compactWG.Add(1)
	go st.compactor()
}

// registerMetrics binds the store's observability series into r: every
// counter is a scrape-time func over an atomic the store maintains
// anyway, and every gauge reads the current shard state through the
// same lock-free pointer loads the read path uses — registration adds
// nothing to Get/Put.
func (st *Store) registerMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	cf := func(a *atomic.Uint64) func() float64 {
		return func() float64 { return float64(a.Load()) }
	}
	r.CounterFunc("sosd_store_compactions_total", cf(&st.compactions))
	r.CounterFunc("sosd_store_flushes_total", cf(&st.flushes))
	r.CounterFunc("sosd_store_minor_merges_total", cf(&st.minorMerges))
	r.CounterFunc("sosd_store_major_merges_total", cf(&st.majorMerges))
	r.CounterFunc("sosd_store_delta_freezes_total", cf(&st.deltaFreezes))
	r.CounterFunc("sosd_store_compact_ns_total", func() float64 { return float64(st.compactNs.Load()) })
	r.CounterFunc("sosd_store_run_probes_total", func() float64 {
		var probes int64
		for i := range st.stats {
			probes += st.stats[i].probes.Load()
		}
		return float64(probes)
	})
	r.CounterFunc("sosd_store_multirun_ops_total", func() float64 {
		var ops int64
		for i := range st.stats {
			ops += st.stats[i].ops.Load()
		}
		return float64(ops)
	})
	r.GaugeFunc("sosd_store_read_amp", st.ReadAmp)
	r.GaugeFunc("sosd_store_delta_len", func() float64 { return float64(st.DeltaLen()) })
	r.GaugeFunc("sosd_store_pending_compactions", func() float64 {
		st.compactMu.Lock()
		defer st.compactMu.Unlock()
		return float64(st.compactPending)
	})
	for i := range st.shards {
		lbl := obs.Label{Key: "shard", Value: strconv.Itoa(i)}
		r.GaugeFunc("sosd_shard_runs", func() float64 {
			return float64(len(st.shards[i].Load().runs))
		}, lbl)
		r.GaugeFunc("sosd_shard_delta_len", func() float64 {
			return float64(st.shards[i].Load().deltaLen())
		}, lbl)
		r.GaugeFunc("sosd_shard_read_amp", func() float64 {
			amp, _ := st.windowAmp(i)
			return amp
		}, lbl)
		r.GaugeFunc("sosd_shard_compact_queued", func() float64 {
			st.compactMu.Lock()
			defer st.compactMu.Unlock()
			if st.compactQueued[i] {
				return 1
			}
			return 0
		}, lbl)
	}
}

// windowAmp reads shard i's measured read amplification and lookup
// count over the window since its last merge.
func (st *Store) windowAmp(i int) (amp float64, ops int64) {
	ss := &st.stats[i]
	ops = ss.ops.Load() - ss.ops0.Load()
	if ops > 0 {
		amp = float64(ss.probes.Load()-ss.probes0.Load()) / float64(ops)
	}
	return amp, ops
}

// journalEvent appends one write-path event with the tiering-policy
// inputs as the compactor saw them. No-op without a journal.
func (st *Store) journalEvent(i int, kind string, runsBefore, runsAfter, keys int, dur time.Duration) {
	if st.journal == nil {
		return
	}
	amp, ops := st.windowAmp(i)
	st.journal.Append(obs.Event{
		Shard: i, Kind: kind,
		RunsBefore: runsBefore, RunsAfter: runsAfter, Keys: keys, Dur: dur,
		ReadAmp: amp, WindowOps: ops,
		MajorNs: ewmaLoad(&st.stats[i].majorNsPerKey),
		MinorNs: ewmaLoad(&st.stats[i].minorNsPerKey),
	})
}

// buildShard picks (and records) the shard's builder and constructs its
// table. Callers that can race hold writeMu[i]; during New each shard
// is touched by exactly one goroutine.
func (st *Store) buildShard(i int, keys []core.Key, payloads []uint64) (*table.Table, error) {
	b, id, err := st.builderFor(i, keys)
	if err != nil {
		return nil, err
	}
	st.builders[i] = b
	st.builderIDs[i] = id
	t, err := table.Build(b, keys, payloads, st.cfg.Search)
	if err != nil {
		return nil, fmt.Errorf("serve: shard %d: %w", i, err)
	}
	return t, nil
}

func (st *Store) worker() {
	defer st.workersWG.Done()
	for j := range st.jobs {
		var n, probes int
		if j.want {
			n, probes = j.s.getBatchFound(j.keys, j.out, j.scratch)
		} else {
			n, probes = j.s.getBatch(j.keys, j.out, j.scratch)
		}
		j.found.Add(int64(n))
		if probes > 0 {
			st.noteReads(j.shard, probes, len(j.keys))
		}
		j.wg.Done()
	}
}

// noteReads folds a multi-run read's probe count into the shard's
// amplification window, and every ampCheckEvery ops re-evaluates the
// read-path merge trigger — so a shard whose writes stopped but whose
// reads still pay tiered probes gets merged without waiting for the
// next write.
func (st *Store) noteReads(i, probes, ops int) {
	ss := &st.stats[i]
	ss.probes.Add(int64(probes))
	ss.ops.Add(int64(ops))
	if ss.sinceCheck.Add(int64(ops)) < ampCheckEvery {
		return
	}
	ss.sinceCheck.Store(0)
	s := st.shards[i].Load()
	if len(s.runs) > 1 && s.frozen == nil && st.ampWindowExceeded(i) {
		st.requestCompact(i)
	}
}

// ampWindowExceeded reports whether shard i's measured read
// amplification since its last merge exceeds the configured bound
// (with at least ampMinWindow lookups of evidence).
func (st *Store) ampWindowExceeded(i int) bool {
	ss := &st.stats[i]
	ops := ss.ops.Load() - ss.ops0.Load()
	if ops < ampMinWindow {
		return false
	}
	probes := ss.probes.Load() - ss.probes0.Load()
	return float64(probes) > st.cfg.AmpBound*float64(ops)
}

// resetAmpWindow re-bases shard i's amplification window after a merge
// changed its run structure.
func (st *Store) resetAmpWindow(i int) {
	ss := &st.stats[i]
	ss.probes0.Store(ss.probes.Load())
	ss.ops0.Store(ss.ops.Load())
}

// Close stops the worker pool and the background compactor (draining
// any queued compactions first), then syncs and closes any attached
// write-ahead logs. No reads or writes may be in flight or issued
// after Close; shard states remain readable through Get.
func (st *Store) Close() {
	if st.closed.Swap(true) {
		return
	}
	close(st.jobs)
	st.workersWG.Wait()
	st.compactMu.Lock()
	st.compactStop = true
	st.compactCond.Broadcast()
	st.compactMu.Unlock()
	st.compactWG.Wait()
	for i := range st.wals {
		st.writeMu[i].Lock()
		w := st.wals[i]
		st.wals[i] = nil
		st.writeMu[i].Unlock()
		if w != nil {
			if err := w.Close(); err != nil {
				st.notePersistErr(err)
			}
		}
	}
}

// shardOf routes a key to the shard owning its range: the rightmost
// shard whose separator is <= key (keys below every separator belong
// to shard 0, where they are correctly reported absent). It sits on
// every single Get/Put and GetBatch gather, so the generic sort.Search
// closure (an indirect call per probe plus a mispredict-prone branch)
// is replaced by an inlined branch-free ladder: one conditional step
// reduces the separator count to a power of two, then each halving is
// a compare materialized with SETcc and folded in by mask arithmetic.
func (st *Store) shardOf(x core.Key) int {
	seps := st.seps
	lo, width := 0, len(seps)
	if width > 0 {
		w := 1 << (bits.Len(uint(width)) - 1)
		if w != width {
			c := 0
			if seps[width-w] <= x {
				c = 1
			}
			lo = (width - w) & -c
		}
		for w > 1 {
			half := w >> 1
			c := 0
			if seps[lo+half-1] <= x {
				c = 1
			}
			lo += half & -c
			w = half
		}
		c := 0
		if seps[lo] <= x {
			c = 1
		}
		lo += c
	}
	// lo is now the first separator above x; its predecessor owns the
	// key, with below-all-separators keys clamped into shard 0.
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// NumShards reports the number of range partitions actually built.
func (st *Store) NumShards() int { return len(st.shards) }

// Len reports the total number of live key/payload pairs, counting
// pending inserts and deletions not yet compacted.
func (st *Store) Len() int {
	total := 0
	for i := range st.shards {
		total += st.shards[i].Load().liveLen()
	}
	return total
}

// SizeBytes reports the summed index footprint across every shard's
// runs plus the pending delta buffers.
func (st *Store) SizeBytes() int {
	total := 0
	for i := range st.shards {
		s := st.shards[i].Load()
		for _, t := range s.runs {
			total += t.SizeBytes()
		}
		total += s.del.sizeBytes()
		if s.frozen != nil {
			total += s.frozen.sizeBytes()
		}
	}
	return total
}

// DeltaLen reports the pending (uncompacted) write entries across all
// shards — the staleness axis of the write-path tradeoff.
func (st *Store) DeltaLen() int {
	total := 0
	for i := range st.shards {
		total += st.shards[i].Load().deltaLen()
	}
	return total
}

// Compactions reports the number of completed shard compactions
// (background and manual; flushes and merges both count).
func (st *Store) Compactions() uint64 { return st.compactions.Load() }

// CompactTime reports the cumulative wall time spent flushing deltas,
// merging runs and rebuilding shard indexes — the rebuild-cost axis of
// the write-path tradeoff.
func (st *Store) CompactTime() time.Duration {
	return time.Duration(st.compactNs.Load())
}

// Flushes reports the number of delta-to-tier-run flushes (tiered
// stores only; a single-run store merges instead of flushing).
func (st *Store) Flushes() uint64 { return st.flushes.Load() }

// MinorMerges reports the number of tier-run consolidations that left
// the base run (and its tuned index) untouched.
func (st *Store) MinorMerges() uint64 { return st.minorMerges.Load() }

// MajorMerges reports the number of full-shard merges that rebuilt
// (and for learned families re-tuned) the base index.
func (st *Store) MajorMerges() uint64 { return st.majorMerges.Load() }

// DeltaFreezes reports the number of non-empty delta fills frozen and
// handed to the tier flusher — the independent end of the
// flushes==freezes conservation law (they diverge only when a flush
// build fails, which PersistErr-style accounting would surface).
func (st *Store) DeltaFreezes() uint64 { return st.deltaFreezes.Load() }

// Policy reports the store's effective compaction policy after
// defaulting: the pending-write threshold that triggers a flush, the
// tier run bound, and the read-amplification bound.
func (st *Store) Policy() (threshold, maxRuns int, ampBound float64) {
	return st.cfg.CompactThreshold, st.cfg.MaxRuns, st.cfg.AmpBound
}

// ConfigIDs reports each shard's current index config ID (the registry
// codec tag, tracking re-tunes across major merges).
func (st *Store) ConfigIDs() []string {
	out := make([]string, len(st.builderIDs))
	for i := range out {
		st.writeMu[i].Lock()
		out[i] = st.builderIDs[i]
		st.writeMu[i].Unlock()
	}
	return out
}

// RunCount reports shard i's current sorted-run count (1 = fully
// compacted).
func (st *Store) RunCount(i int) int { return len(st.shards[i].Load().runs) }

// MaxRunCount reports the largest run count across shards.
func (st *Store) MaxRunCount() int {
	m := 0
	for i := range st.shards {
		if n := st.RunCount(i); n > m {
			m = n
		}
	}
	return m
}

// ReadAmp reports the measured read amplification — run probes per
// lookup — accumulated over reads that hit tiered (multi-run) shard
// states. Reads on fully-compacted shards probe exactly one run and
// are not accumulated; a store that never tiered reports 1.
func (st *Store) ReadAmp() float64 {
	var probes, ops int64
	for i := range st.stats {
		probes += st.stats[i].probes.Load()
		ops += st.stats[i].ops.Load()
	}
	if ops == 0 {
		return 1
	}
	return float64(probes) / float64(ops)
}

// Shard returns shard i's current base run (a consistent immutable
// snapshot; pending deltas and newer tier runs are not reflected).
func (st *Store) Shard(i int) *table.Table { return st.shards[i].Load().base() }

// Get returns the live payload for key, or false when absent. Pending
// writes shadow the runs; newer runs shadow older. With a tracer
// configured, the sampled request records its shard-route and
// run-probe phases; every other request pays one atomic add.
func (st *Store) Get(key core.Key) (uint64, bool) {
	if sp := st.tracer.Sample(); sp != nil {
		i := st.shardOf(key)
		sp.Mark(obs.PhaseShardRoute)
		v, ok, probes := st.shards[i].Load().get(key)
		sp.Mark(obs.PhaseRunProbe)
		if probes > 0 {
			st.noteReads(i, probes, 1)
		}
		return v, ok
	}
	i := st.shardOf(key)
	v, ok, probes := st.shards[i].Load().get(key)
	if probes > 0 {
		st.noteReads(i, probes, 1)
	}
	return v, ok
}

// Put inserts or updates key with payload. The write is visible to
// every subsequent read (same or other goroutines) as soon as Put
// returns; it lands in the shard's delta buffer and is flushed or
// merged into the shard's run set by a later compaction.
func (st *Store) Put(key core.Key, payload uint64) {
	st.write(key, payload, false)
}

// Delete removes key. Deleting an absent key is a no-op that still
// costs a tombstone until the next major merge.
func (st *Store) Delete(key core.Key) {
	st.write(key, 0, true)
}

func (st *Store) write(key core.Key, payload uint64, tomb bool) {
	if st.readOnly.Load() {
		// A read-only replica refuses direct writes (the network front
		// end rejects them earlier with an explicit error; this drop
		// counter catches in-process callers).
		st.readOnlyDrops.Add(1)
		return
	}
	i := st.shardOf(key)
	st.writeMu[i].Lock()
	// WAL-before-state: the record must be on its way to disk before
	// any reader can observe the write, or a crash could lose an
	// acknowledged update. WAL failures (disk full, dead device) are
	// stashed rather than dropped: the write stays visible in memory
	// and PersistErr reports the store's durability is degraded.
	op := persist.Op{Key: key, Val: payload, Tomb: tomb}
	if st.wals != nil && st.wals[i] != nil {
		if err := st.wals[i].Append(op); err != nil {
			st.notePersistErr(err)
		} else if st.cfg.SyncWrites {
			if err := st.wals[i].Sync(); err != nil {
				st.notePersistErr(err)
			}
		}
	}
	s := st.shards[i].Load()
	ns := &shardState{runs: s.runs, runIDs: s.runIDs, del: s.del.with(key, payload, tomb), frozen: s.frozen}
	st.shards[i].Store(ns)
	if st.cfg.WriteHook != nil {
		st.cfg.WriteHook(i, op)
	}
	trigger := st.cfg.CompactThreshold > 0 &&
		ns.del.len() >= st.cfg.CompactThreshold && ns.frozen == nil
	st.writeMu[i].Unlock()
	if trigger {
		st.requestCompact(i)
	}
}

// Apply lands a batch of replicated ops on shard i, in op order with
// last-write-wins semantics — the follower half of the replication
// stream. It bypasses the read-only gate (it IS the write path of a
// read-only replica) and fires no WriteHook (a replica does not
// re-stream what it was streamed). Every op is WAL-appended first on
// an attached store, then the whole batch is folded into the shard's
// delta with one copy-on-write publish. Ops must route to shard i.
func (st *Store) Apply(i int, ops []persist.Op) error {
	if i < 0 || i >= len(st.shards) {
		return fmt.Errorf("serve: no shard %d", i)
	}
	if len(ops) == 0 {
		return nil
	}
	for _, op := range ops {
		if st.shardOf(op.Key) != i {
			return fmt.Errorf("serve: apply: key %d routes to shard %d, not %d", op.Key, st.shardOf(op.Key), i)
		}
	}
	st.writeMu[i].Lock()
	if st.wals != nil && st.wals[i] != nil {
		for _, op := range ops {
			if err := st.wals[i].Append(op); err != nil {
				st.notePersistErr(err)
				break
			}
		}
		if st.cfg.SyncWrites {
			if err := st.wals[i].Sync(); err != nil {
				st.notePersistErr(err)
			}
		}
	}
	s := st.shards[i].Load()
	// The batch is newer than everything pending: overlay it on top.
	ns := &shardState{runs: s.runs, runIDs: s.runIDs, del: s.del.overlay(deltaFromOps(ops)), frozen: s.frozen}
	st.shards[i].Store(ns)
	trigger := st.cfg.CompactThreshold > 0 &&
		ns.del.len() >= st.cfg.CompactThreshold && ns.frozen == nil
	st.writeMu[i].Unlock()
	if trigger {
		st.requestCompact(i)
	}
	return nil
}

// SetReadOnly flips the store's replica gate: while set, Put, Delete,
// and Replace are refused (counted in ReadOnlyDrops) and Apply remains
// the only write path. Reads are unaffected.
func (st *Store) SetReadOnly(v bool) { st.readOnly.Store(v) }

// ReadOnly reports whether the store currently refuses direct writes.
func (st *Store) ReadOnly() bool { return st.readOnly.Load() }

// ReadOnlyDrops reports the number of direct writes refused by the
// read-only gate.
func (st *Store) ReadOnlyDrops() uint64 { return st.readOnlyDrops.Load() }

// Separators returns a copy of the shard boundary keys: seps[i] is the
// first key owned by shard i (keys below every separator also route to
// shard 0). The router uses them to partition batches the same way the
// store does.
func (st *Store) Separators() []core.Key {
	return append([]core.Key(nil), st.seps...)
}

// requestCompact queues shard i for background compaction, at most one
// outstanding request per shard (a burst of writes past the threshold
// would otherwise flood the queue with duplicates and starve the other
// shards). The request is never dropped: the queue is unbounded and
// grows under the same mutex that dedupes it, so a shard past its
// threshold is compacted even if its writes stop the moment the
// trigger fires. After Close has stopped the compactor, requests are
// refused under that same mutex — there is no window where a request
// can be accepted and never served.
func (st *Store) requestCompact(i int) {
	st.compactMu.Lock()
	if st.compactStop || st.compactQueued[i] {
		st.compactMu.Unlock()
		return
	}
	st.compactQueued[i] = true
	st.compactQueue = append(st.compactQueue, i)
	st.compactPending++
	st.compactCond.Signal()
	st.compactMu.Unlock()
}

// WaitCompactions blocks until every background compaction queued so
// far has completed, parked on a condition variable (a learned-index
// re-tune runs for milliseconds; spinning would pin a core for the
// duration). Unlike Compact it forces nothing: shards below the
// threshold keep their deltas.
func (st *Store) WaitCompactions() {
	st.compactMu.Lock()
	for st.compactPending > 0 {
		st.idleCond.Wait()
	}
	st.compactMu.Unlock()
}

// compactor serves the work queue. A shard whose active delta refilled
// past the threshold during its own compaction is re-compacted in
// place. On stop the queue is drained before exit, so every accepted
// request completes and WaitCompactions waiters are always released.
// Rebuild errors fold the delta back and stop the loop for that
// request; see compactShard.
func (st *Store) compactor() {
	defer st.compactWG.Done()
	st.compactMu.Lock()
	for {
		for len(st.compactQueue) == 0 && !st.compactStop {
			st.compactCond.Wait()
		}
		if len(st.compactQueue) == 0 {
			st.compactMu.Unlock()
			return // stopped and drained
		}
		i := st.compactQueue[0]
		st.compactQueue = st.compactQueue[1:]
		st.compactQueued[i] = false
		st.compactMu.Unlock()

		for {
			if err := st.compactShard(i, false); err != nil {
				break
			}
			s := st.shards[i].Load()
			if st.cfg.CompactThreshold <= 0 || s.frozen != nil ||
				s.del.len() < st.cfg.CompactThreshold {
				break
			}
		}

		st.compactMu.Lock()
		st.compactPending--
		if st.compactPending == 0 {
			st.idleCond.Broadcast()
		}
	}
}

// compactShard runs one compaction round on shard i: freeze the active
// delta (writes continue into a fresh one, readers continue on the
// frozen snapshot), then off the write lock either flush it into a new
// tier run, consolidate runs per the tiering policy, or — under force,
// the Compact path — merge everything into a single freshly indexed
// base run; finally publish the new run set with one pointer swap. A
// shard already being compacted is a no-op, as is a clean single-run
// shard. A compaction with an empty delta (merge-only: triggered by
// read amplification or force) freezes a fresh empty-delta marker so
// the publish-time conflict check still detects an intervening
// Replace.
func (st *Store) compactShard(i int, force bool) error {
	st.writeMu[i].Lock()
	s := st.shards[i].Load()
	// A clean shard is still compactable when the tiering policy has
	// work pending: a run count over the bound, or a read-amp trigger
	// (the merge-only compaction a pure read load can queue).
	policyPending := st.tiered() && len(s.runs) > 1 &&
		(len(s.runs) > st.cfg.MaxRuns || st.ampWindowExceeded(i))
	if s.frozen != nil || (s.del.len() == 0 && (!force || s.single()) && !policyPending) {
		st.writeMu[i].Unlock()
		return nil
	}
	frozen := s.del
	if !force && st.tiered() && frozen.len() > 0 {
		// A delta fill handed to the flusher: the independent end of the
		// flushes==freezes conservation law the serve-obs experiment (and
		// metriclint) holds the write path to.
		st.deltaFreezes.Add(1)
	}
	if frozen.len() == 0 {
		frozen = &delta{} // unique identity for the merge-only conflict check
	}
	st.shards[i].Store(&shardState{runs: s.runs, runIDs: s.runIDs, del: emptyDelta, frozen: frozen})
	builder := st.builders[i]
	builderID := st.builderIDs[i]
	st.writeMu[i].Unlock()

	start := time.Now()
	res, err := st.buildCompacted(i, s, frozen, builder, builderID, force)

	st.writeMu[i].Lock()
	s2 := st.shards[i].Load()
	if s2.frozen != frozen {
		// A Replace superseded the shard wholesale; drop the work.
		st.writeMu[i].Unlock()
		return nil
	}
	if err != nil {
		// Rebuild failed: fold the frozen delta back under the writes
		// that arrived meanwhile so nothing is lost.
		st.shards[i].Store(&shardState{runs: s2.runs, runIDs: s2.runIDs, del: frozen.overlay(s2.del)})
		st.writeMu[i].Unlock()
		return fmt.Errorf("serve: compact shard %d: %w", i, err)
	}
	st.builders[i] = res.builder
	st.builderIDs[i] = res.builderID // keeps the manifest codec tag tracking re-tunes
	st.shards[i].Store(&shardState{runs: res.runs, runIDs: res.runIDs, del: s2.del})
	st.writeMu[i].Unlock()
	if res.merged {
		st.resetAmpWindow(i)
	}
	st.compactions.Add(1)
	st.compactNs.Add(time.Since(start).Nanoseconds())
	// For an attached store the new run set is made durable now, then
	// the shard's WAL is truncated to the still-pending writes. On
	// failure the old on-disk state stays authoritative — replaying the
	// full old WAL over the old run set reproduces exactly the state
	// just published, so nothing is lost, and PersistErr reports it.
	if st.dir != "" {
		if perr := st.persistShard(i); perr != nil {
			st.notePersistErr(perr)
		}
	}
	return nil
}

// compactResult is the outcome of a compaction's off-lock build phase.
type compactResult struct {
	runs      []*table.Table
	runIDs    []string
	builder   core.Builder
	builderID string
	merged    bool // run structure shrank (minor or major): re-base the amp window
}

// buildCompacted performs a compaction's heavy lifting off the shard's
// write lock: flush the frozen delta to a tier run, and when the
// tiering policy (run count or measured read amplification over the
// bound) demands it, consolidate — a minor merge folds the upper tier
// runs into one tombstone-carrying run and leaves the base index
// untouched, a major merge rewrites the whole shard and re-tunes its
// index. Under force (or with tiering disabled) it always majors: the
// Compact contract is a fully merged, tombstone-free single run.
func (st *Store) buildCompacted(i int, s *shardState, frozen *delta, builder core.Builder, builderID string, force bool) (compactResult, error) {
	runs, runIDs := s.runs, s.runIDs
	if !force && st.tiered() {
		if frozen.len() > 0 {
			t0 := time.Now()
			fr, fid, err := st.buildTierRun(builderID, frozen.keys, frozen.vals, frozen.tombs)
			if err != nil {
				return compactResult{}, err
			}
			ewmaUpdate(&st.stats[i].minorNsPerKey, float64(time.Since(t0).Nanoseconds())/float64(frozen.len()))
			runs = append(append([]*table.Table{}, runs...), fr)
			runIDs = append(append([]string{}, runIDs...), fid)
			st.flushes.Add(1)
			st.journalEvent(i, "flush", len(s.runs), len(runs), frozen.len(), time.Since(t0))
		}
		if len(runs) <= st.cfg.MaxRuns && !st.ampWindowExceeded(i) {
			return compactResult{runs: runs, runIDs: runIDs, builder: builder, builderID: builderID}, nil
		}
		if !st.chooseMajor(i, runs) {
			layers := make([]mergeLayer, 0, len(runs)-1)
			for _, t := range runs[1:] {
				layers = append(layers, runLayer(t))
			}
			t0 := time.Now()
			k, v, tb := mergeLayers(layers, false)
			mr, mid, err := st.buildTierRun(builderID, k, v, tb)
			if err != nil {
				return compactResult{}, err
			}
			if len(k) > 0 {
				ewmaUpdate(&st.stats[i].minorNsPerKey, float64(time.Since(t0).Nanoseconds())/float64(len(k)))
			}
			st.minorMerges.Add(1)
			st.journalEvent(i, "minor", len(runs), 2, len(k), time.Since(t0))
			return compactResult{
				runs:   []*table.Table{runs[0], mr},
				runIDs: []string{runIDs[0], mid},
				builder: builder, builderID: builderID, merged: true,
			}, nil
		}
		// Major path below merges the runs (the flush above already
		// absorbed the frozen delta into the newest run).
		frozen = emptyDelta
	}

	// Major merge: every run plus the frozen delta into one
	// tombstone-free base run with a freshly built (for learned
	// families re-tuned) index.
	layers := make([]mergeLayer, 0, len(runs)+1)
	for _, t := range runs {
		layers = append(layers, runLayer(t))
	}
	layers = append(layers, deltaLayer(frozen))
	t0 := time.Now()
	keys, vals, _ := mergeLayers(layers, true)
	var nt *table.Table
	var err error
	if len(keys) == 0 {
		nt = table.Empty(st.cfg.Search)
	} else {
		// Learned families re-tune for the merged key set via their
		// registry rebuild hook; everyone else reuses the shard's
		// builder. A warm-opened shard has no builder value yet — its
		// codec tag names the catalog entry to resolve lazily, here at
		// first compaction rather than at Open, so warm loads never
		// pay a training cost up front.
		var b core.Builder
		var id string
		b, id, err = resolveRebuild(builder, builderID, keys)
		if err == nil {
			nt, err = table.Build(b, keys, vals, st.cfg.Search)
			if err == nil {
				builder, builderID = b, id
			}
		}
	}
	if err != nil {
		return compactResult{}, err
	}
	if len(keys) > 0 {
		ewmaUpdate(&st.stats[i].majorNsPerKey, float64(time.Since(t0).Nanoseconds())/float64(len(keys)))
	}
	st.majorMerges.Add(1)
	st.journalEvent(i, "major", len(runs), 1, len(keys), time.Since(t0))
	return compactResult{
		runs: []*table.Table{nt}, runIDs: []string{builderID},
		builder: builder, builderID: builderID, merged: true,
	}, nil
}

// chooseMajor decides a triggered consolidation's destination: fold
// the upper tiers into one run (minor — cheap, but the base keeps
// amplifying reads by one extra probe) or rewrite the whole shard
// (major — pays the measured index re-tune). The extra cost of a major
// is estimated from the per-key cost EWMAs measured on this shard's
// own past compactions — a learned family's re-tune prices majors high
// where a B-tree's bulk load prices them near a minor — and weighed
// against the read-amp reduction: the lookups of the current window,
// each saved about one run probe by the deeper merge.
func (st *Store) chooseMajor(i int, runs []*table.Table) bool {
	if len(runs) <= 2 {
		return true // one upper run: a minor merge would be a no-op
	}
	total, upper := 0, 0
	for r, t := range runs {
		total += t.Len()
		if r > 0 {
			upper += t.Len()
		}
	}
	if total == 0 || 2*upper >= total {
		return true // upper tiers rival the base: rewrite once, properly
	}
	ss := &st.stats[i]
	majorNs := ewmaLoad(&ss.majorNsPerKey) * float64(total)
	minorNs := ewmaLoad(&ss.minorNsPerKey) * float64(upper)
	saved := float64(ss.ops.Load()-ss.ops0.Load()) * probeNsEstimate
	return majorNs-minorNs <= saved
}

// buildTierRun indexes a small run (a flushed delta or a minor merge)
// with the cheap tier entry of the shard's family — binary search or a
// coarse learned bound, never the full per-base tuning.
func (st *Store) buildTierRun(builderID string, keys []core.Key, vals []uint64, tombs []bool) (*table.Table, string, error) {
	if len(keys) == 0 {
		return table.Empty(st.cfg.Search), "BS", nil
	}
	family, _ := registry.ParseID(builderID)
	nb, id := registry.TierBuilder(family, keys)
	t, err := table.BuildTombed(nb.Builder, keys, vals, tombs, st.cfg.Search)
	if err != nil {
		return nil, "", err
	}
	return t, id, nil
}

// resolveRebuild picks the builder (and its codec tag) for re-indexing
// a compacted shard. prev non-nil follows the standard rebuild-hook
// path — when the hook re-tunes, the old label no longer describes the
// builder, so the tag degrades to the bare family. prev nil (a
// warm-opened shard) resolves the codec tag against the catalog —
// exact label first, mid-sweep fallback when the tuned ladder no
// longer contains it.
func resolveRebuild(prev core.Builder, id string, keys []core.Key) (core.Builder, string, error) {
	if prev != nil {
		if !registry.HasRebuild(prev.Name()) {
			return prev, id, nil // hookless family: builder and tag unchanged
		}
		b := registry.RebuildBuilder(prev.Name(), prev, keys)
		return b, registry.ID(b.Name(), ""), nil
	}
	family, label := registry.ParseID(id)
	if nb, ok := registry.SweepEntry(family, label, keys); ok {
		return nb.Builder, id, nil
	}
	if nb, ok := registry.Builder(family, keys); ok {
		return nb.Builder, registry.ID(family, nb.Label), nil
	}
	return nil, "", fmt.Errorf("serve: cannot resolve builder for codec tag %q", id)
}

// Compact synchronously merges every shard's runs and pending writes
// into a single tombstone-free base run, waiting out any in-flight
// background compactions. It is safe alongside concurrent reads and
// writes, but it keeps re-merging a shard until its delta is empty and
// one run remains, so a continuous concurrent write load can keep it
// from returning — quiesce writers when a guaranteed-complete
// checkpoint is needed. Intended for checkpoints, tests, and
// read-latency-sensitive phases.
func (st *Store) Compact() error {
	for i := range st.shards {
		for {
			s := st.shards[i].Load()
			if s.frozen != nil {
				runtime.Gosched() // background merge in flight; wait for its publish
				continue
			}
			if s.del.len() == 0 && s.single() {
				break
			}
			if err := st.compactShard(i, true); err != nil {
				return err
			}
		}
	}
	return nil
}

// GetBatch looks up a batch of keys across all shards: out[i] receives
// the live payload for keys[i] (0 when absent) and the number found is
// returned. Keys are gathered per shard, served by the worker pool as
// one batched job per shard (run-set probe plus delta overlay), and
// scattered back, so a batch touching S shards runs on up to S workers
// concurrently.
func (st *Store) GetBatch(keys []core.Key, out []uint64) int {
	if len(out) < len(keys) {
		panic("serve: GetBatch output shorter than key batch")
	}
	return st.getBatchInto(keys, out, nil)
}

// GetBatchFound is GetBatch plus an explicit per-key found bit: a zero
// payload is indistinguishable from absence in out alone, and found[i]
// is resolved against the same per-shard snapshot as the batch itself —
// unlike a follow-up Get, it cannot observe a write that landed after
// the batch was served.
func (st *Store) GetBatchFound(keys []core.Key, out []uint64, found []bool) int {
	if len(out) < len(keys) || len(found) < len(keys) {
		panic("serve: GetBatchFound output shorter than key batch")
	}
	return st.getBatchInto(keys, out, found)
}

func (st *Store) getBatchInto(keys []core.Key, out []uint64, fbits []bool) int {
	n := len(keys)
	if n == 0 {
		return 0
	}
	// One sampling decision per batch: a traced batch records its
	// route/probe/merge phases, every other batch pays one atomic add.
	sp := st.tracer.Sample()
	nShards := len(st.shards)
	s := st.scratch.Get().(*batchScratch)
	s.ensure(n, nShards)

	// Count keys per shard, prefix-sum into gather offsets, then
	// stable-gather so each shard's keys are contiguous.
	counts := s.offs[:nShards+1]
	for i := range counts {
		counts[i] = 0
	}
	for i, x := range keys {
		sh := int32(st.shardOf(x))
		s.shard[i] = sh
		counts[sh+1]++
	}
	for i := 1; i <= nShards; i++ {
		counts[i] += counts[i-1]
	}
	starts := s.starts[:nShards+1]
	copy(starts, counts)
	for i, x := range keys {
		sh := s.shard[i]
		slot := counts[sh]
		counts[sh] = slot + 1
		s.gkeys[slot] = x
		s.pos[i] = slot
	}
	sp.Mark(obs.PhaseShardRoute)

	var wg sync.WaitGroup
	var found atomic.Int64
	for sh := 0; sh < nShards; sh++ {
		lo, hi := starts[sh], starts[sh+1]
		if lo == hi {
			continue
		}
		wg.Add(1)
		st.jobs <- job{
			s:       st.shards[sh].Load(),
			shard:   sh,
			keys:    s.gkeys[lo:hi],
			out:     s.gout[lo:hi],
			scratch: s.gfound[lo:hi],
			want:    fbits != nil,
			found:   &found,
			wg:      &wg,
		}
	}
	wg.Wait()
	sp.Mark(obs.PhaseRunProbe)

	for i := 0; i < n; i++ {
		out[i] = s.gout[s.pos[i]]
	}
	if fbits != nil {
		for i := 0; i < n; i++ {
			fbits[i] = s.gfound[s.pos[i]]
		}
	}
	sp.Mark(obs.PhaseMerge)
	st.scratch.Put(s)
	return int(found.Load())
}

// Scan visits the store's live pairs with key in [lo, hi) in ascending
// key order, stopping early when visit returns false; it returns the
// number of pairs visited. Each shard is scanned at one consistent
// snapshot (pending writes merged in); the snapshots of different
// shards are taken as the scan reaches them.
func (st *Store) Scan(lo, hi core.Key, visit func(core.Key, uint64) bool) int {
	if hi < lo {
		hi = lo
	}
	n := 0
	counting := func(k core.Key, v uint64) bool {
		n++
		return visit(k, v)
	}
	start := st.shardOf(lo)
	for sh := start; sh < len(st.shards); sh++ {
		if sh > start && st.seps[sh] >= hi {
			break
		}
		if !st.shards[sh].Load().scan(lo, hi, counting) {
			break
		}
	}
	return n
}

// Range returns the store's live pairs with key in [lo, hi) as freshly
// allocated slices, merged across shards and pending writes.
func (st *Store) Range(lo, hi core.Key) ([]core.Key, []uint64) {
	var ks []core.Key
	var vs []uint64
	st.Scan(lo, hi, func(k core.Key, v uint64) bool {
		ks = append(ks, k)
		vs = append(vs, v)
		return true
	})
	return ks, vs
}

func (s *batchScratch) ensure(n, nShards int) {
	if cap(s.shard) < n {
		s.shard = make([]int32, n)
		s.gkeys = make([]core.Key, n)
		s.gout = make([]uint64, n)
		s.gfound = make([]bool, n)
		s.pos = make([]int32, n)
	}
	s.shard = s.shard[:n]
	s.gkeys = s.gkeys[:n]
	s.gout = s.gout[:n]
	s.gfound = s.gfound[:n]
	s.pos = s.pos[:n]
	if cap(s.offs) < nShards+1 {
		s.offs = make([]int32, nShards+1)
		s.starts = make([]int32, nShards+1)
	}
	s.offs = s.offs[:nShards+1]
	s.starts = s.starts[:nShards+1]
}

// Replace rebuilds shard i over new data, discarding the shard's
// pending delta writes and tier runs (Replace supersedes them
// wholesale; an in-flight compaction of the shard is abandoned at
// publish time). keys must be sorted, stay within the shard's key
// range (first key equal to the shard's separator, last key below the
// next separator), and match payloads in length. Replace is the
// single-writer path: concurrent writes on one shard serialize,
// readers continue on the old state until the atomic swap.
func (st *Store) Replace(i int, keys []core.Key, payloads []uint64) error {
	if st.readOnly.Load() {
		st.readOnlyDrops.Add(1)
		return errors.New("serve: store is read-only")
	}
	if i < 0 || i >= len(st.shards) {
		return fmt.Errorf("serve: no shard %d", i)
	}
	if len(keys) == 0 {
		return errors.New("serve: empty replacement")
	}
	if keys[0] != st.seps[i] {
		return fmt.Errorf("serve: replacement must start at separator %d, got %d", st.seps[i], keys[0])
	}
	if i+1 < len(st.seps) && keys[len(keys)-1] >= st.seps[i+1] {
		return fmt.Errorf("serve: replacement key %d crosses into shard %d", keys[len(keys)-1], i+1)
	}
	st.writeMu[i].Lock()
	t, err := st.buildShard(i, keys, payloads)
	if err != nil {
		st.writeMu[i].Unlock()
		return err
	}
	st.shards[i].Store(&shardState{runs: []*table.Table{t}, runIDs: []string{st.builderIDs[i]}, del: emptyDelta})
	st.writeMu[i].Unlock()
	// An attached store makes the replacement durable immediately (and
	// truncates the superseded WAL entries with it). The replacement
	// is already published either way, so a commit failure — like the
	// identical failure on the compaction path — degrades durability,
	// not the return value: it is surfaced through PersistErr, and a
	// crash before a later successful commit reverts to the
	// pre-Replace state.
	if st.dir != "" {
		if perr := st.persistShard(i); perr != nil {
			st.notePersistErr(perr)
		}
	}
	return nil
}
