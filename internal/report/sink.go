package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Sink consumes result tables as a run produces them. Streaming sinks
// (text, CSV, JSONL) render each table on arrival; the JSON sink
// buffers the whole document. Close finalizes the output with the run
// metadata — metadata comes last in the contract precisely so that a
// sink can record facts only known at end of run.
type Sink interface {
	Table(*Table) error
	Close(Meta) error
}

// Document is the JSON output shape: one run, its metadata, and every
// table it produced.
type Document struct {
	Meta   Meta    `json:"meta"`
	Tables []Table `json:"tables"`
}

// DecodeDocument parses and validates a JSON document produced by the
// JSON sink.
func DecodeDocument(r io.Reader) (*Document, error) {
	var d Document
	dec := json.NewDecoder(r)
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("report: decode document: %w", err)
	}
	for i := range d.Tables {
		if err := d.Tables[i].Validate(); err != nil {
			return nil, err
		}
	}
	return &d, nil
}

// ---------------------------------------------------------------- text

type textSink struct {
	w     io.Writer
	wrote bool
}

// NewText returns the human-readable sink: each table renders as a
// title line and aligned columns (dimensions left-aligned, metrics
// right-aligned), with footnotes after the rows — the same shape the
// experiments historically printed by hand.
func NewText(w io.Writer) Sink { return &textSink{w: w} }

func (s *textSink) Table(t *Table) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if s.wrote {
		if _, err := fmt.Fprintln(s.w); err != nil {
			return err
		}
	}
	s.wrote = true
	if t.Title != "" {
		if _, err := fmt.Fprintln(s.w, t.Title); err != nil {
			return err
		}
	}
	// Render every cell first, then size each column to its widest cell.
	nd, nm := len(t.Schema.Dims), len(t.Schema.Metrics)
	ncol := nd + nm
	cells := make([][]string, 0, len(t.Rows)+1)
	header := make([]string, ncol)
	for i, d := range t.Schema.Dims {
		header[i] = d.Name
	}
	for i, m := range t.Schema.Metrics {
		header[nd+i] = m.Name
	}
	cells = append(cells, header)
	for _, r := range t.Rows {
		row := make([]string, ncol)
		copy(row, r.Dims)
		for i, m := range t.Schema.Metrics {
			row[nd+i] = formatMetric(m, r.Metrics[i])
		}
		cells = append(cells, row)
	}
	width := make([]int, ncol)
	for _, row := range cells {
		for i, c := range row {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for _, row := range cells {
		b.Reset()
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < nd { // dimensions left-aligned, metrics right-aligned
				b.WriteString(c)
				b.WriteString(strings.Repeat(" ", width[i]-len(c)))
			} else {
				b.WriteString(strings.Repeat(" ", width[i]-len(c)))
				b.WriteString(c)
			}
		}
		if _, err := fmt.Fprintln(s.w, strings.TrimRight(b.String(), " ")); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(s.w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

func (s *textSink) Close(Meta) error { return nil }

// ----------------------------------------------------------------- csv

type csvSink struct {
	w     io.Writer
	wrote bool
}

// NewCSV returns the CSV sink: per table, a `# experiment=...` comment
// line, a header row (dimension names then metric names), and the data
// rows; tables are separated by a blank line and run metadata trails
// as comment lines. A single-experiment run therefore yields one clean
// CSV block.
func NewCSV(w io.Writer) Sink { return &csvSink{w: w} }

func (s *csvSink) Table(t *Table) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if s.wrote {
		if _, err := fmt.Fprintln(s.w); err != nil {
			return err
		}
	}
	s.wrote = true
	if _, err := fmt.Fprintf(s.w, "# experiment=%s title=%q\n", t.Experiment, t.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(s.w)
	nd := len(t.Schema.Dims)
	header := make([]string, nd+len(t.Schema.Metrics))
	for i, d := range t.Schema.Dims {
		header[i] = d.Name
	}
	for i, m := range t.Schema.Metrics {
		header[nd+i] = m.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for _, r := range t.Rows {
		copy(rec, r.Dims)
		for i, m := range t.Schema.Metrics {
			rec[nd+i] = formatMetric(m, r.Metrics[i])
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(s.w, "# note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

func (s *csvSink) Close(meta Meta) error {
	if meta.Tool == "" {
		return nil
	}
	if _, err := fmt.Fprintf(s.w, "\n# meta: tool=%s version=%s go=%s os=%s arch=%s cpus=%d\n",
		meta.Tool, meta.Version, meta.GoVersion, meta.OS, meta.Arch, meta.CPUs); err != nil {
		return err
	}
	// Options and dataset checksums carry the comparability contract
	// (same knobs, same data); keys are sorted so output is stable.
	for _, k := range sortedKeys(meta.Options) {
		if _, err := fmt.Fprintf(s.w, "# meta: option %s=%v\n", k, meta.Options[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(meta.Datasets) {
		if _, err := fmt.Fprintf(s.w, "# meta: dataset %s checksum=%d\n", k, meta.Datasets[k]); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ---------------------------------------------------------------- json

type jsonSink struct {
	w      io.Writer
	tables []Table
}

// NewJSON returns the JSON sink: the run buffers into a single
// Document — {"meta": ..., "tables": [...]} — written at Close, when
// the metadata is complete. Output is pure data: nothing else may be
// written to the same stream.
func NewJSON(w io.Writer) Sink { return &jsonSink{w: w} }

func (s *jsonSink) Table(t *Table) error {
	if err := t.Validate(); err != nil {
		return err
	}
	s.tables = append(s.tables, *t)
	return nil
}

func (s *jsonSink) Close(meta Meta) error {
	if s.tables == nil {
		s.tables = []Table{}
	}
	enc := json.NewEncoder(s.w)
	enc.SetIndent("", "  ")
	return enc.Encode(Document{Meta: meta, Tables: s.tables})
}

// --------------------------------------------------------------- jsonl

// Line is one JSONL record: exactly one of Table or Meta is set, so a
// consumer can stream-dispatch on which field is present.
type Line struct {
	Table *Table `json:"table,omitempty"`
	Meta  *Meta  `json:"meta,omitempty"`
}

type jsonlSink struct {
	enc *json.Encoder
}

// NewJSONL returns the streaming JSON-lines sink: one {"table": ...}
// record per table as it arrives, then a final {"meta": ...} record.
// Suited to appending a run trajectory file record by record.
func NewJSONL(w io.Writer) Sink { return &jsonlSink{enc: json.NewEncoder(w)} }

func (s *jsonlSink) Table(t *Table) error {
	if err := t.Validate(); err != nil {
		return err
	}
	return s.enc.Encode(Line{Table: t})
}

func (s *jsonlSink) Close(meta Meta) error {
	return s.enc.Encode(Line{Meta: &meta})
}
